package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Add(x)
	}
	if w.N() != 5 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-3) > 1e-15 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-2.5) > 1e-12 {
		t.Fatalf("Variance = %v", w.Variance())
	}
	if math.Abs(w.StdErr()-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("StdErr = %v", w.StdErr())
	}
	if w.HalfWidth95() <= 0 {
		t.Fatal("HalfWidth95 not positive")
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var whole, a, b Welford
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		scale := math.Max(1, math.Abs(whole.Mean()))
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6*math.Max(1, whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed state")
	}
	var c Welford
	c.Merge(a)
	if c.N() != 2 || c.Mean() != 2 {
		t.Fatal("merge into empty lost state")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if MaxFloat([]float64{3, -1, 7, 2}) != 7 {
		t.Fatal("MaxFloat wrong")
	}
}

func TestLinInterp(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{10, 20, 0}
	cases := []struct{ x, want float64 }{
		{-5, 10},  // clamp left
		{0, 10},   // node
		{0.5, 15}, // interior
		{1, 20},
		{2, 10},
		{3, 0},
		{9, 0}, // clamp right
	}
	for _, c := range cases {
		if got := LinInterp(xs, ys, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LinInterp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLinInterpMonotoneInputProperty(t *testing.T) {
	// For increasing ys, the interpolant must stay within [min, max].
	xs := []float64{0, 0.5, 1, 2, 4, 8}
	ys := []float64{1, 2, 3, 5, 8, 13}
	r := NewRNG(33)
	for i := 0; i < 1000; i++ {
		x := 10*r.Float64() - 1
		v := LinInterp(xs, ys, x)
		if v < 1 || v > 13 {
			t.Fatalf("interpolant escaped range: f(%v) = %v", x, v)
		}
	}
}
