package farm

import (
	"math"
	"sort"
	"sync"
)

// Fleet is the master's per-worker health book: who is busy with what,
// who completes, who fails, and who straggles. The master updates it on
// every dispatch and every result when Options.Fleet is set; /debug/farm
// serves its Snapshot. One Fleet can outlive many farm runs — the serve
// layer keeps a single Fleet across requests so worker history
// accumulates — and rank identity is per-farm-world (rank 3 is the same
// worker across runs on one backend).
//
// ewmaAlpha weighs the exponentially weighted moving average of task
// duration: 0.2 means the last ~5 tasks dominate, fast enough to catch
// a worker that just started struggling, slow enough to ride out one
// expensive American basket.
const ewmaAlpha = 0.2

// workerState is one worker's live accumulator.
type workerState struct {
	inFlight  int
	completed int64
	retried   int64 // task failures attributed to this worker
	redealt   int64 // tasks dispatched here after failing elsewhere
	ewma      float64
	ewmaSeen  bool
	lastSeen  float64
}

// Fleet aggregates per-worker health. The zero value is not usable;
// create with NewFleet. A nil *Fleet discards updates, so the farm's
// hot path never branches on "is fleet tracking on".
type Fleet struct {
	mu      sync.Mutex
	workers map[int]*workerState
}

// NewFleet returns an empty fleet book.
func NewFleet() *Fleet {
	return &Fleet{workers: make(map[int]*workerState)}
}

func (f *Fleet) worker(rank int) *workerState {
	w := f.workers[rank]
	if w == nil {
		w = &workerState{}
		f.workers[rank] = w
	}
	return w
}

// dispatched records n tasks entering flight on rank at time now.
func (f *Fleet) dispatched(rank, n int, now float64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	w := f.worker(rank)
	w.inFlight += n
	w.lastSeen = now
	f.mu.Unlock()
}

// completed records n tasks leaving flight on rank, each with per-task
// duration dur (batch-mates share the batch round trip, matching the
// farm.task_seconds histogram).
func (f *Fleet) completed(rank, n int, dur, now float64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	w := f.worker(rank)
	w.inFlight -= n
	if w.inFlight < 0 {
		w.inFlight = 0
	}
	w.completed += int64(n)
	w.lastSeen = now
	if !w.ewmaSeen {
		w.ewma, w.ewmaSeen = dur, true
	} else {
		w.ewma += ewmaAlpha * (dur - w.ewma)
	}
	f.mu.Unlock()
}

// taskFailed attributes one task failure to rank.
func (f *Fleet) taskFailed(rank int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.worker(rank).retried++
	f.mu.Unlock()
}

// taskRedealt records a task landing on rank after failing elsewhere.
func (f *Fleet) taskRedealt(rank int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.worker(rank).redealt++
	f.mu.Unlock()
}

// WorkerHealth is one worker's row in a fleet snapshot.
type WorkerHealth struct {
	Rank      int   `json:"rank"`
	InFlight  int   `json:"in_flight"`
	Completed int64 `json:"completed"`
	Retried   int64 `json:"retried"`
	Redealt   int64 `json:"redealt"`
	// EWMASeconds is the exponentially weighted moving average of the
	// worker's per-task duration; 0 until the first completion.
	EWMASeconds float64 `json:"ewma_task_seconds"`
	// LastSeen is the registry-clock time of the last dispatch to or
	// result from this worker.
	LastSeen float64 `json:"last_seen"`
	// StragglerScore is the z-score of this worker's EWMA duration
	// against the fleet (how many standard deviations slower than the
	// mean); 0 when fewer than two workers have completions or the
	// fleet is perfectly uniform. Positive ≈ straggling.
	StragglerScore float64 `json:"straggler_score"`
}

// Snapshot returns every known worker's health, rank-ordered, with
// straggler scores computed against the current fleet.
func (f *Fleet) Snapshot() []WorkerHealth {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	ranks := make([]int, 0, len(f.workers))
	for rank := range f.workers {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	out := make([]WorkerHealth, 0, len(ranks))
	var sum, sumSq float64
	var n int
	for _, rank := range ranks {
		w := f.workers[rank]
		out = append(out, WorkerHealth{
			Rank:        rank,
			InFlight:    w.inFlight,
			Completed:   w.completed,
			Retried:     w.retried,
			Redealt:     w.redealt,
			EWMASeconds: w.ewma,
			LastSeen:    w.lastSeen,
		})
		if w.ewmaSeen {
			sum += w.ewma
			sumSq += w.ewma * w.ewma
			n++
		}
	}
	f.mu.Unlock()
	if n >= 2 {
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if variance > 0 {
			std := math.Sqrt(variance)
			for i := range out {
				if out[i].Completed > 0 {
					out[i].StragglerScore = (out[i].EWMASeconds - mean) / std
				}
			}
		}
	}
	return out
}
