package mpi

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
)

// runCollective executes body concurrently on every rank of a fresh local
// world and waits for completion.
func runCollective(t *testing.T, size int, body func(c Comm)) {
	t.Helper()
	w := NewLocalWorld(size)
	defer w.Close()
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, root := range []int{0, size - 1, size / 2} {
			payload := []byte(fmt.Sprintf("msg-%d-%d", size, root))
			var mu sync.Mutex
			got := map[int][]byte{}
			runCollective(t, size, func(c Comm) {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out, err := Bcast(c, in, root)
				if err != nil {
					t.Errorf("size %d root %d rank %d: %v", size, root, c.Rank(), err)
					return
				}
				mu.Lock()
				got[c.Rank()] = out
				mu.Unlock()
			})
			for r := 0; r < size; r++ {
				if !bytes.Equal(got[r], payload) {
					t.Fatalf("size %d root %d: rank %d got %q", size, root, r, got[r])
				}
			}
		}
	}
}

func TestBcastBadRoot(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	if _, err := Bcast(w.Comm(0), nil, 5); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const size = 8
	var mu sync.Mutex
	before := 0
	runCollective(t, size, func(c Comm) {
		mu.Lock()
		before++
		mu.Unlock()
		if err := Barrier(c); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if before != size {
			t.Errorf("rank %d passed the barrier with only %d arrivals", c.Rank(), before)
		}
	})
}

func TestBarrierSizeOne(t *testing.T) {
	w := NewLocalWorld(1)
	defer w.Close()
	if err := Barrier(w.Comm(0)); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const size = 6
	const root = 2
	var got [][]byte
	runCollective(t, size, func(c Comm) {
		out, err := Gather(c, []byte{byte(c.Rank() * 10)}, root)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == root {
			got = out
		} else if out != nil {
			t.Errorf("rank %d got non-nil gather result", c.Rank())
		}
	})
	if len(got) != size {
		t.Fatalf("gathered %d parts", len(got))
	}
	for r, part := range got {
		if len(part) != 1 || part[0] != byte(r*10) {
			t.Fatalf("part %d = %v", r, part)
		}
	}
}

func TestScatter(t *testing.T) {
	const size = 5
	const root = 0
	parts := make([][]byte, size)
	for i := range parts {
		parts[i] = []byte{byte(i), byte(i * i)}
	}
	var mu sync.Mutex
	got := map[int][]byte{}
	runCollective(t, size, func(c Comm) {
		var in [][]byte
		if c.Rank() == root {
			in = parts
		}
		out, err := Scatter(c, in, root)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		got[c.Rank()] = out
		mu.Unlock()
	})
	for r := 0; r < size; r++ {
		if !bytes.Equal(got[r], parts[r]) {
			t.Fatalf("rank %d got %v, want %v", r, got[r], parts[r])
		}
	}
}

func TestScatterWrongPartCount(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	if _, err := Scatter(w.Comm(0), [][]byte{{1}}, 0); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		var got []float64
		root := size - 1
		runCollective(t, size, func(c Comm) {
			vec := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
			out, err := Reduce(c, vec, OpSum, root)
			if err != nil {
				t.Errorf("size %d rank %d: %v", size, c.Rank(), err)
				return
			}
			if c.Rank() == root {
				got = out
			}
		})
		wantSum := 0.0
		wantSq := 0.0
		for r := 0; r < size; r++ {
			wantSum += float64(r)
			wantSq += float64(r * r)
		}
		want := []float64{wantSum, float64(size), wantSq}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("size %d: reduce = %v, want %v", size, got, want)
			}
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	const size = 7
	var gotMax, gotMin []float64
	runCollective(t, size, func(c Comm) {
		out, err := Reduce(c, []float64{float64(c.Rank())}, OpMax, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			gotMax = out
		}
	})
	runCollective(t, size, func(c Comm) {
		out, err := Reduce(c, []float64{float64(c.Rank())}, OpMin, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			gotMin = out
		}
	})
	if gotMax[0] != size-1 || gotMin[0] != 0 {
		t.Fatalf("max %v min %v", gotMax, gotMin)
	}
}

func TestAllReduce(t *testing.T) {
	const size = 6
	var mu sync.Mutex
	got := map[int][]float64{}
	runCollective(t, size, func(c Comm) {
		out, err := AllReduce(c, []float64{1, float64(c.Rank())}, OpSum)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		got[c.Rank()] = out
		mu.Unlock()
	})
	want := []float64{size, float64(size * (size - 1) / 2)}
	for r := 0; r < size; r++ {
		if len(got[r]) != 2 || got[r][0] != want[0] || got[r][1] != want[1] {
			t.Fatalf("rank %d: %v, want %v", r, got[r], want)
		}
	}
}

func TestCollectivesOverTCP(t *testing.T) {
	hub, workers := startTCPWorld(t, 4)
	var wg sync.WaitGroup
	results := make([][]float64, 4)
	run := func(idx int, c Comm) {
		defer wg.Done()
		out, err := AllReduce(c, []float64{float64(c.Rank() + 1)}, OpSum)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		results[idx] = out
	}
	wg.Add(4)
	go run(0, hub)
	for i, w := range workers {
		go run(i+1, w)
	}
	wg.Wait()
	for i, r := range results {
		if len(r) != 1 || r[0] != 10 { // 1+2+3+4
			t.Fatalf("participant %d: %v", i, r)
		}
	}
}

func TestEncodeDecodeFloats(t *testing.T) {
	vec := []float64{0, -1.5, math.Inf(1), math.Pi}
	back, err := decodeFloats(encodeFloats(vec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if back[i] != vec[i] {
			t.Fatalf("round trip lost %v", vec[i])
		}
	}
	if _, err := decodeFloats([]byte{1, 2, 3}); err == nil {
		t.Fatal("bad length accepted")
	}
}
