package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// mcHestonEuro implements MC_Heston: European calls and puts under Heston
// with the variance advanced by Alfonsi's drift-implicit square-root
// scheme (full-truncation Euler fallback when 4κθ < σᵥ²). It
// cross-validates the semi-analytic CF_Heston pricer and is registered as
// a method in its own right, as Premia ships both. Paths run on the
// multicore pricing kernel. Parameters: "paths", "mcsteps", "threads".
func mcHestonEuro(p *Problem) (Result, error) {
	m, err := hestonFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC_Heston needs paths >= 2 and mcsteps >= 1")
	}
	isCall := p.Option == OptCallEuro
	dt := o.T / float64(steps)
	sqdt := math.Sqrt(dt)
	useAlfonsi := 4*m.Kappa*m.Theta >= m.SigmaV*m.SigmaV
	rho2 := math.Sqrt(1 - m.Rho*m.Rho)
	df := math.Exp(-m.R * o.T)
	// Struct-of-arrays: each path's 2·steps normals (z1, z2 interleaved)
	// are drawn in one batched pass per block, preserving the draw order
	// of the scalar loop, then the sequential variance / log-spot
	// evolution consumes its path's row.
	block := soaBlock / (2 * steps)
	if block < 1 {
		block = 1
	}
	accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford, sc *kernelScratch) {
		g := sc.floats(block * 2 * steps)
		for done := 0; done < n; done += block {
			bn := min(block, n-done)
			rng.NormVec(g[:bn*2*steps])
			for i := 0; i < bn; i++ {
				row := g[i*2*steps : (i+1)*2*steps]
				x := math.Log(m.S0)
				v := m.V0
				for k := 0; k < steps; k++ {
					z1 := row[2*k]
					z2 := row[2*k+1]
					vNew := hestonVarStep(m, v, dt, sqdt*z1, useAlfonsi)
					x += hestonLogSpotIncrement(m, v, vNew, dt, rho2, z2)
					v = vNew
				}
				st := math.Exp(x)
				if isCall {
					accs[0].Add(df * payoffCall(st, o.K))
				} else {
					accs[0].Add(df * payoffPut(st, o.K))
				}
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
		Work: float64(paths) * float64(steps) * 2,
	}, nil
}

// hestonVarStep advances the CIR variance over one step of size dt given
// the Brownian increment dwV, by the Alfonsi scheme or the full-truncation
// Euler fallback.
func hestonVarStep(m hestonParams, v, dt, dwV float64, useAlfonsi bool) float64 {
	if useAlfonsi {
		return alfonsiStep(v, m.Kappa, m.Theta, m.SigmaV, dt, dwV)
	}
	vp := math.Max(v, 0)
	vNew := v + m.Kappa*(m.Theta-vp)*dt + m.SigmaV*math.Sqrt(vp)*dwV
	if vNew < 0 {
		vNew = 0
	}
	return vNew
}

// hestonLogSpotIncrement returns the log-spot increment over one step.
// The correlated part ρ∫√V dW_V is eliminated exactly through the CIR
// dynamics, ∫√V dW_V = (V_{t+Δ} − V_t − κθΔ + κ∫V ds)/σᵥ (Broadie–Kaya),
// with a trapezoidal ∫V ds; this avoids the drift bias that a naive
// √V·(ρ dW_V + …) update suffers when the variance scheme is implicit.
// z2 is the independent standard normal driving the orthogonal part; rho2
// is √(1−ρ²).
func hestonLogSpotIncrement(m hestonParams, v, vNew, dt, rho2, z2 float64) float64 {
	vInt := 0.5 * (math.Max(v, 0) + math.Max(vNew, 0)) * dt // ∫V ds over the step
	intSqrtVdWv := (vNew - v - m.Kappa*m.Theta*dt + m.Kappa*vInt) / m.SigmaV
	return (m.R-m.Div)*dt - 0.5*vInt + m.Rho*intSqrtVdWv + rho2*math.Sqrt(vInt)*z2
}
