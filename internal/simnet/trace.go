package simnet

import (
	"fmt"
	"strings"
)

// TraceEvent is one recorded simulation event.
type TraceEvent struct {
	// T is the virtual time of the event.
	T float64
	// Proc names the process involved.
	Proc string
	// Kind classifies the event: "send", "recv", "compute", "nfs".
	Kind string
	// Detail is a human-readable annotation.
	Detail string
}

// Tracer records simulation events for debugging and post-run analysis.
// Attach one to an engine with Engine.SetTracer before Run; a zero value
// records without bound, or set Limit to cap memory.
type Tracer struct {
	// Events are in emission order (which is virtual-time order).
	Events []TraceEvent
	// Limit caps the number of retained events (0 = unlimited); once
	// full, further events are counted but dropped.
	Limit int
	// Dropped counts events discarded because of Limit.
	Dropped int
}

func (tr *Tracer) emit(t float64, proc, kind, detail string) {
	if tr == nil {
		return
	}
	if tr.Limit > 0 && len(tr.Events) >= tr.Limit {
		tr.Dropped++
		return
	}
	tr.Events = append(tr.Events, TraceEvent{T: t, Proc: proc, Kind: kind, Detail: detail})
}

// Summary renders a compact per-kind count plus the first few events.
func (tr *Tracer) Summary() string {
	var b strings.Builder
	counts := map[string]int{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	fmt.Fprintf(&b, "%d events", len(tr.Events))
	if tr.Dropped > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", tr.Dropped)
	}
	for _, k := range []string{"send", "recv", "compute", "nfs"} {
		if counts[k] > 0 {
			fmt.Fprintf(&b, "  %s=%d", k, counts[k])
		}
	}
	b.WriteString("\n")
	n := len(tr.Events)
	if n > 10 {
		n = 10
	}
	for _, e := range tr.Events[:n] {
		fmt.Fprintf(&b, "%12.6f  %-12s %-8s %s\n", e.T, e.Proc, e.Kind, e.Detail)
	}
	return b.String()
}

// SetTracer attaches a tracer to the engine; pass nil to disable.
func (e *Engine) SetTracer(tr *Tracer) { e.tracer = tr }

// trace emits an event at the current virtual time if tracing is on.
func (e *Engine) trace(proc, kind, detail string) {
	e.tracer.emit(e.now, proc, kind, detail)
}
