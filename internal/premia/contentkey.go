package premia

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// ContentKey returns the problem's content address: a hex SHA-256 of the
// canonical encoding of (asset, model, option, method) plus every
// parameter in sorted key order, with values hashed by their exact IEEE
// 754 bit pattern. Two problems share a key if and only if they would
// compute the same thing, which makes the key safe to use as a cache
// identity for pricing results — the Monte Carlo seed halves ("seed",
// "seedhi") are ordinary parameters and therefore part of the address.
//
// The one exception is the "threads" parameter: it selects how many
// cores the multicore pricing kernel shards the path loop over, and the
// kernel's fixed shard decomposition makes results bit-identical across
// thread counts (see parallel.go), so it is excluded — a price computed
// on 8 threads is a valid cache hit for the same problem on 1.
func (p *Problem) ContentKey() string {
	h := sha256.New()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeStr(p.Asset)
	writeStr(p.Model)
	writeStr(p.Option)
	writeStr(p.Method)
	for _, k := range p.Params.Keys() {
		if k == kernelThreadsKey {
			continue
		}
		writeStr(k)
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.Params[k]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
