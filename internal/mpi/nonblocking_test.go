package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestIsendIrecv(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	rr := Irecv(w.Comm(1), 0, 5)
	if rr.Test() {
		t.Fatal("Irecv completed before any send")
	}
	sr := Isend(w.Comm(0), []byte("async"), 1, 5)
	if _, err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	st, err := rr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Data()) != "async" || st.Source != 0 || st.Tag != 5 {
		t.Fatalf("got %q %+v", rr.Data(), st)
	}
	if !rr.Test() {
		t.Fatal("Test false after completion")
	}
}

func TestIsendCopiesBuffer(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	buf := []byte("original")
	sr := Isend(w.Comm(0), buf, 1, 0)
	buf[0] = 'X' // mutate immediately
	if _, err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	data, _, err := w.Comm(1).Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "original" {
		t.Fatalf("Isend aliased the buffer: %q", data)
	}
}

func TestWaitAll(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	var reqs []*Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, Isend(w.Comm(0), []byte{byte(i)}, 1, i))
	}
	if err := WaitAll(reqs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		data, _, err := w.Comm(1).Recv(0, i)
		if err != nil || data[0] != byte(i) {
			t.Fatalf("tag %d: %v %v", i, data, err)
		}
	}
}

func TestWaitAllPropagatesError(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	bad := Isend(w.Comm(0), nil, 99, 0) // invalid destination
	good := Isend(w.Comm(0), nil, 1, 0)
	if err := WaitAll(bad, good); err == nil {
		t.Fatal("invalid send not reported")
	}
}

func TestSendrecvExchange(t *testing.T) {
	// Two ranks exchanging simultaneously with blocking Send/Recv on an
	// unbuffered transport could deadlock; Sendrecv must not.
	w := NewLocalWorld(2)
	defer w.Close()
	var wg sync.WaitGroup
	out := make([][]byte, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			peer := 1 - r
			data, _, err := Sendrecv(w.Comm(r), []byte{byte(r + 10)}, peer, 1, peer, 1)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			out[r] = data
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sendrecv deadlocked")
	}
	if out[0][0] != 11 || out[1][0] != 10 {
		t.Fatalf("exchange wrong: %v", out)
	}
}

func TestIrecvOverTCP(t *testing.T) {
	hub, workers := startTCPWorld(t, 2)
	rr := Irecv(workers[0], 0, 3)
	if err := hub.Send([]byte("tcp-async"), 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if string(rr.Data()) != "tcp-async" {
		t.Fatalf("got %q", rr.Data())
	}
}
