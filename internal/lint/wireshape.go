package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Wireshape pins the shape of wire-contract structs with golden
// structural hashes. The frame layout, the hello handshake payload and
// the span records shipped across the farm wire are hand-encoded —
// there is no schema compiler to notice that a field was added,
// removed or reordered. A silent shape change is the failure mode the
// versioned protocol exists to prevent: an old worker decodes a new
// master's bytes into garbage, prices stay plausible, and nothing
// fails until production.
//
// Each package owning wire structs carries a wireshape.lock file
// recording, for every pinned struct, a hash over its ordered field
// names, types and tags, together with the protocol version at which
// those shapes were frozen. The analyzer recomputes the hashes: a
// mismatch — or a protocol constant that moved without the lock being
// regenerated — is a diagnostic. `riskvet -write-wireshape` rewrites
// lock files, and refuses to bless a shape change unless the protocol
// version was bumped first.
var Wireshape = &Analyzer{
	Name:  "wireshape",
	Doc:   "wire-contract struct shapes must not change without a proto version bump",
	Match: func(string) bool { return true },
	Run:   runWireshape,
}

// LockFileName is the per-package golden shape record.
const LockFileName = "wireshape.lock"

// WireLock is the on-disk format of a wireshape.lock file.
type WireLock struct {
	Comment    string            `json:"comment,omitempty"`
	ProtoConst string            `json:"proto_const"` // "ProtoLatest" or "mpi.ProtoLatest"
	Proto      int64             `json:"proto"`       // value of ProtoConst when shapes were frozen
	Structs    map[string]string `json:"structs"`     // struct name (optionally pkgname-qualified) -> hash
}

// LoadLock reads dir's wireshape.lock, or returns (nil, nil) when the
// package pins nothing.
func LoadLock(dir string) (*WireLock, error) {
	data, err := os.ReadFile(filepath.Join(dir, LockFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var lock WireLock
	if err := json.Unmarshal(data, &lock); err != nil {
		return nil, fmt.Errorf("lint: %s/%s: %w", dir, LockFileName, err)
	}
	return &lock, nil
}

func runWireshape(pass *Pass) {
	lock, err := LoadLock(pass.Dir)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "%v", err)
		return
	}
	if lock == nil {
		return
	}
	protoVal, protoPos, err := resolveProtoConst(pass.Package, lock.ProtoConst)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "%s: %v", LockFileName, err)
		return
	}
	changed := false
	for _, name := range sortedKeys(lock.Structs) {
		want := lock.Structs[name]
		got, pos, err := StructHash(pass.Package, name)
		if err != nil {
			pass.Reportf(pass.Files[0].Pos(), "%s pins %q: %v", LockFileName, name, err)
			continue
		}
		if got != want {
			changed = true
			pass.Reportf(pos,
				"wire struct %s changed shape (hash %s, recorded %s at proto %d); bump %s and regenerate %s (riskvet -write-wireshape)",
				name, got, want, lock.Proto, lock.ProtoConst, LockFileName)
		}
	}
	if protoVal != lock.Proto && !changed {
		pass.Reportf(protoPos,
			"%s is now %d but %s still records proto %d; regenerate it (riskvet -write-wireshape)",
			lock.ProtoConst, protoVal, LockFileName, lock.Proto)
	}
}

// resolveProtoConst evaluates the integer constant the lock names,
// either in the package itself or in one of its imports (qualified by
// package name, e.g. "mpi.ProtoLatest").
func resolveProtoConst(pkg *Package, name string) (int64, token.Pos, error) {
	scope := pkg.Types.Scope()
	constName := name
	if pkgName, rest, ok := strings.Cut(name, "."); ok {
		scope = nil
		for _, imp := range pkg.Types.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return 0, token.NoPos, fmt.Errorf("proto_const %q: package %s not imported", name, pkgName)
		}
		constName = rest
	}
	obj := scope.Lookup(constName)
	c, ok := obj.(*types.Const)
	if !ok {
		return 0, token.NoPos, fmt.Errorf("proto_const %q is not a constant", name)
	}
	v, ok := constantInt64(c)
	if !ok {
		return 0, token.NoPos, fmt.Errorf("proto_const %q is not an integer constant", name)
	}
	return v, c.Pos(), nil
}

func constantInt64(c *types.Const) (int64, bool) {
	val := c.Val()
	if val == nil {
		return 0, false
	}
	s := val.ExactString()
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err == nil
}

// StructHash computes the structural fingerprint of a named struct:
// sha256 over its ordered field names, fully qualified type strings
// and tags. The name may be qualified by an imported package's name.
func StructHash(pkg *Package, name string) (hash string, pos token.Pos, err error) {
	scope := pkg.Types.Scope()
	structName := name
	if pkgName, rest, ok := strings.Cut(name, "."); ok {
		scope = nil
		for _, imp := range pkg.Types.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return "", token.NoPos, fmt.Errorf("package %s not imported", pkgName)
		}
		structName = rest
	}
	obj := scope.Lookup(structName)
	if obj == nil {
		return "", token.NoPos, fmt.Errorf("no such type")
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return "", token.NoPos, fmt.Errorf("%s is not a type", name)
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return "", token.NoPos, fmt.Errorf("%s is not a struct", name)
	}
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fmt.Fprintf(&b, "%s %s %q\n", f.Name(), types.TypeString(f.Type(), qual), st.Tag(i))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8]), obj.Pos(), nil
}

// RegenerateLock recomputes dir's lock against pkg. It enforces the
// bump rule: if any pinned shape changed while the proto constant
// still has the recorded value, regeneration is refused — bump the
// protocol version first, that is the whole point.
func RegenerateLock(pkg *Package) (changed bool, err error) {
	lock, err := LoadLock(pkg.Dir)
	if err != nil || lock == nil {
		return false, err
	}
	protoVal, _, err := resolveProtoConst(pkg, lock.ProtoConst)
	if err != nil {
		return false, err
	}
	var drifted []string
	next := map[string]string{}
	for _, name := range sortedKeys(lock.Structs) {
		h, _, err := StructHash(pkg, name)
		if err != nil {
			return false, fmt.Errorf("%s pins %q: %w", LockFileName, name, err)
		}
		next[name] = h
		if old := lock.Structs[name]; old != "" && old != h {
			drifted = append(drifted, name)
		}
	}
	same := protoVal == lock.Proto
	if len(drifted) > 0 && same {
		return false, fmt.Errorf("wire structs %s changed shape but %s is still %d; bump the protocol version before regenerating",
			strings.Join(drifted, ", "), lock.ProtoConst, protoVal)
	}
	if same && equalStringMaps(lock.Structs, next) {
		return false, nil
	}
	lock.Proto = protoVal
	lock.Structs = next
	data, err := json.MarshalIndent(lock, "", "  ")
	if err != nil {
		return false, err
	}
	return true, os.WriteFile(filepath.Join(pkg.Dir, LockFileName), append(data, '\n'), 0o644)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func equalStringMaps(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
