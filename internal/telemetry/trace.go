package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext identifies a position in a distributed trace: the trace a
// span belongs to and the span it should parent onto. The zero value
// means "no trace"; spans started without one are metrics-only and never
// enter the trace table. TraceContexts cross process boundaries packed
// into farm task descriptors, which is how a worker's farm.compute span
// ends up parented onto the master's farm.task span.
type TraceContext struct {
	// TraceID groups every span of one request / bench run; 0 = untraced.
	TraceID uint64
	// SpanID is the parent span for children started from this context.
	SpanID uint64
}

// Valid reports whether the context carries a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// randUint64 draws a random non-zero 64-bit value, falling back to the
// wall clock if the system entropy source fails.
func randUint64() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
	//lint:allow wallclock entropy-failure fallback for ID uniqueness, not a time source
	return uint64(time.Now().UnixNano()) | 1
}

// traceIDs steps from a random base in odd strides, so trace IDs are
// unique within a process without paying for an entropy read per
// request, and different processes start from different bases.
var traceIDs atomic.Uint64

func init() { traceIDs.Store(randUint64()) }

// NewTraceID mints a fresh trace ID (never 0).
func NewTraceID() uint64 {
	for {
		if id := traceIDs.Add(0x9e3779b97f4a7c15); id != 0 {
			return id
		}
	}
}

// traceCtxKey keys a TraceContext in a context.Context.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc; invalid contexts are
// not stored, so TraceFromContext stays a reliable "is tracing on" test.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context threaded through ctx.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// Trace-table retention bounds: traces beyond maxTraces evict the oldest
// trace FIFO, and spans beyond maxTraceSpans within one trace are
// dropped, so a hot server's trace memory stays fixed regardless of
// request rate or batch size.
const (
	maxTraces     = 128
	maxTraceSpans = 4096
)

// traceEntry accumulates the spans of one trace as they finish locally
// or arrive from workers. A slice with linear dedupe beats a map here:
// typical traces hold a handful of spans, and the table churns one entry
// per request on a hot server.
type traceEntry struct {
	spans []SpanRecord // arrival order, deduped by span ID on add
}

// traceTable is the registry's bounded store of recently seen traces.
type traceTable struct {
	mu     sync.Mutex
	traces map[uint64]*traceEntry
	order  []uint64 // trace IDs in first-seen order, for FIFO eviction
}

// add files one finished span under its trace, deduplicating by span ID
// (the same record can arrive twice when master and worker share a
// registry: once from Span.End, once shipped back with the results).
func (t *traceTable) add(rec SpanRecord) {
	if rec.TraceID == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traces == nil {
		t.traces = make(map[uint64]*traceEntry)
	}
	e := t.traces[rec.TraceID]
	if e == nil {
		if len(t.order) >= maxTraces {
			oldest := t.order[0]
			t.order = t.order[1:]
			if old := t.traces[oldest]; old != nil {
				e = old // recycle: at steady state eviction funds admission
				e.spans = e.spans[:0]
			}
			delete(t.traces, oldest)
		}
		if e == nil {
			e = &traceEntry{spans: make([]SpanRecord, 0, 4)}
		}
		t.traces[rec.TraceID] = e
		t.order = append(t.order, rec.TraceID)
	}
	for i := range e.spans {
		if e.spans[i].ID == rec.ID {
			return
		}
	}
	if len(e.spans) >= maxTraceSpans {
		return
	}
	e.spans = append(e.spans, rec)
}

// Trace is one reassembled span tree, as retained by the registry.
type Trace struct {
	// TraceID is the tree's trace identifier.
	TraceID uint64
	// Spans holds every retained span of the trace, ordered by start
	// time (ties broken by span ID for determinism).
	Spans []SpanRecord
}

// Duration is the trace's end-to-end extent: latest End minus earliest
// Start over all retained spans.
func (tr Trace) Duration() float64 {
	if len(tr.Spans) == 0 {
		return 0
	}
	lo, hi := tr.Spans[0].Start, tr.Spans[0].End
	for _, s := range tr.Spans[1:] {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return hi - lo
}

// Roots returns the spans whose parent is absent from the trace (the
// request root, plus any orphaned subtrees whose parents were evicted).
func (tr Trace) Roots() []SpanRecord {
	present := make(map[uint64]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		present[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range tr.Spans {
		if s.ParentID == 0 || !present[s.ParentID] {
			roots = append(roots, s)
		}
	}
	return roots
}

// Children returns the spans parented directly on id, in start order.
func (tr Trace) Children(id uint64) []SpanRecord {
	var out []SpanRecord
	for _, s := range tr.Spans {
		if s.ParentID == id {
			out = append(out, s)
		}
	}
	return out
}

// Find returns the first retained span with the given name.
func (tr Trace) Find(name string) (SpanRecord, bool) {
	for _, s := range tr.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanRecord{}, false
}

// Traces returns every retained trace, reassembled, ordered by trace
// ID so repeated snapshots of the same table render identically. Each
// trace's spans are start-ordered.
func (r *Registry) Traces() []Trace {
	if r == nil {
		return nil
	}
	r.traces.mu.Lock()
	ids := make([]uint64, 0, len(r.traces.traces))
	for id := range r.traces.traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Trace, 0, len(ids))
	for _, id := range ids {
		e := r.traces.traces[id]
		tr := Trace{TraceID: id, Spans: make([]SpanRecord, len(e.spans))}
		copy(tr.Spans, e.spans)
		out = append(out, tr)
	}
	r.traces.mu.Unlock()
	for i := range out {
		spans := out[i].Spans
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].Start != spans[b].Start {
				return spans[a].Start < spans[b].Start
			}
			return spans[a].ID < spans[b].ID
		})
	}
	return out
}

// SlowestTraces returns up to n retained traces ordered by descending
// duration — what /debug/traces renders.
func (r *Registry) SlowestTraces(n int) []Trace {
	traces := r.Traces()
	sort.Slice(traces, func(a, b int) bool {
		da, db := traces[a].Duration(), traces[b].Duration()
		if da != db {
			return da > db
		}
		return traces[a].TraceID < traces[b].TraceID
	})
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	return traces
}

// IngestSpans files remotely finished spans into the trace table — the
// master calls it with the SpanRecords a worker shipped back alongside
// its results (time-shifted onto the master clock by the caller).
// Remote spans enter traces only: they were already counted into the
// worker's own histograms, so re-observing them here would double-count
// when master and worker share a registry.
func (r *Registry) IngestSpans(recs []SpanRecord) {
	if r == nil {
		return
	}
	for _, rec := range recs {
		r.traces.add(rec)
	}
}
