package risk

import (
	"fmt"
	"sort"

	"riskbench/internal/premia"
)

// VolToken is the pseudo-parameter name that resolves to each model's own
// volatility parameter ("sigma", "sigma0" or "V0") when a shift is
// applied, so one volatility scenario covers a heterogeneous book.
const VolToken = "@vol"

// RateToken resolves to the model's own short-rate parameter: "r" for
// equity and credit models, "r0" for the Vasicek short-rate model.
const RateToken = "@rate"

// rateParam maps a model to its short-rate parameter name.
func rateParam(p *premia.Problem) string {
	if p.Model == premia.ModelVasicek {
		return "r0"
	}
	return "r"
}

// Shift perturbs one parameter: new = old·(1+Rel) + Abs.
type Shift struct {
	// Param is the parameter name, or VolToken for the model's volatility.
	Param string
	// Rel is the relative bump (0.1 = +10%).
	Rel float64
	// Abs is the absolute bump, applied after the relative one.
	Abs float64
}

// Scenario is a named market move: a set of simultaneous shifts.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Shifts are applied together.
	Shifts []Shift
}

// Base is the identity scenario.
var Base = Scenario{Name: "base"}

// resolveParam turns a shift's parameter (possibly a token) into the
// problem's concrete parameter name; ok is false when the problem has no
// such parameter (e.g. a vol shift on a credit claim).
func resolveParam(sh Shift, p *premia.Problem) (string, bool) {
	name := sh.Param
	switch name {
	case VolToken:
		vp, err := premia.VolParam(p.Model)
		if err != nil {
			return "", false
		}
		name = vp
	case RateToken:
		name = rateParam(p)
	}
	_, ok := p.Params[name]
	return name, ok
}

// AppliesTo reports whether every shift of the scenario resolves to a
// parameter the problem actually carries. Claims outside the scenario's
// risk-factor universe (e.g. a credit claim under an equity spot ladder)
// keep their base value instead of failing the revaluation.
func (sc Scenario) AppliesTo(p *premia.Problem) bool {
	for _, sh := range sc.Shifts {
		if _, ok := resolveParam(sh, p); !ok {
			return false
		}
	}
	return true
}

// Apply returns a copy of the problem with every shift applied. A shift
// whose parameter the problem does not carry is an error: callers decide
// between failing (single-asset books) and skipping via AppliesTo
// (mixed books).
func (sc Scenario) Apply(p *premia.Problem) (*premia.Problem, error) {
	q := p.Clone()
	for _, sh := range sc.Shifts {
		name, ok := resolveParam(sh, p)
		if !ok {
			return nil, fmt.Errorf("risk: scenario %q shifts %q, absent from %s", sc.Name, sh.Param, p)
		}
		old := q.Params[name]
		v := old*(1+sh.Rel) + sh.Abs
		if name == "V0" {
			// Variance bumps square: a +x% volatility move is ≈ +2x% in
			// variance. Translate so VolToken means volatility everywhere.
			v = old*(1+sh.Rel)*(1+sh.Rel) + sh.Abs
		}
		q.Set(name, v)
	}
	return q, nil
}

// Ladder builds one scenario per relative bump of a single parameter,
// named like "S0-10%" / "S0+5%".
func Ladder(param string, rels ...float64) []Scenario {
	out := make([]Scenario, 0, len(rels))
	for _, r := range rels {
		out = append(out, Scenario{
			Name:   fmt.Sprintf("%s%+.0f%%", displayName(param), r*100),
			Shifts: []Shift{{Param: param, Rel: r}},
		})
	}
	return out
}

func displayName(param string) string {
	if param == VolToken {
		return "vol"
	}
	return param
}

// SpotLadder is the standard spot ladder: ±1%, ±2%, ±5%, ±10%, ±20%.
func SpotLadder() []Scenario {
	return Ladder("S0", -0.20, -0.10, -0.05, -0.02, -0.01, 0.01, 0.02, 0.05, 0.10, 0.20)
}

// VolLadder bumps each model's volatility by ±10%, ±25%, ±50% (relative).
func VolLadder() []Scenario {
	return Ladder(VolToken, -0.50, -0.25, -0.10, 0.10, 0.25, 0.50)
}

// RateShifts bumps the short rate by ±10 bp, ±50 bp, ±100 bp (absolute),
// resolving to each model's own rate parameter via RateToken.
func RateShifts() []Scenario {
	bps := []float64{-0.01, -0.005, -0.001, 0.001, 0.005, 0.01}
	out := make([]Scenario, 0, len(bps))
	for _, b := range bps {
		out = append(out, Scenario{
			Name:   fmt.Sprintf("r%+.0fbp", b*10000),
			Shifts: []Shift{{Param: RateToken, Abs: b}},
		})
	}
	return out
}

// StressScenarios are joint moves in the spirit of regulatory stress
// tests: equity crashes with volatility spikes, and a melt-up.
func StressScenarios() []Scenario {
	return []Scenario{
		{Name: "crash-10/vol+25", Shifts: []Shift{{Param: "S0", Rel: -0.10}, {Param: VolToken, Rel: 0.25}}},
		{Name: "crash-20/vol+50", Shifts: []Shift{{Param: "S0", Rel: -0.20}, {Param: VolToken, Rel: 0.50}}},
		{Name: "crash-30/vol+80", Shifts: []Shift{{Param: "S0", Rel: -0.30}, {Param: VolToken, Rel: 0.80}}},
		{Name: "meltup+15/vol-20", Shifts: []Shift{{Param: "S0", Rel: 0.15}, {Param: VolToken, Rel: -0.20}}},
	}
}

// Grid builds the cartesian product of spot and volatility relative
// bumps, the two-dimensional revaluation surface risk systems maintain.
func Grid(spotRels, volRels []float64) []Scenario {
	out := make([]Scenario, 0, len(spotRels)*len(volRels))
	for _, s := range spotRels {
		for _, v := range volRels {
			out = append(out, Scenario{
				Name: fmt.Sprintf("S%+.0f%%/vol%+.0f%%", s*100, v*100),
				Shifts: []Shift{
					{Param: "S0", Rel: s},
					{Param: VolToken, Rel: v},
				},
			})
		}
	}
	return out
}

// VaR returns the empirical value-at-risk at the given confidence level
// from a sample of P&L values (negative = loss): the loss quantile, as a
// positive number. alpha = 0.99 gives the worst 1% loss boundary.
func VaR(pnls []float64, alpha float64) float64 {
	if len(pnls) == 0 {
		return 0
	}
	if alpha <= 0 || alpha >= 1 {
		panic("risk: VaR confidence must be in (0,1)")
	}
	sorted := make([]float64, len(pnls))
	copy(sorted, pnls)
	sort.Float64s(sorted)
	// Lower quantile of the P&L distribution.
	idx := int((1 - alpha) * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	loss := -sorted[idx]
	if loss < 0 {
		return 0
	}
	return loss
}

// ExpectedShortfall returns the average loss beyond the VaR quantile
// (positive number), the coherent companion measure of Basel-style
// frameworks.
func ExpectedShortfall(pnls []float64, alpha float64) float64 {
	if len(pnls) == 0 {
		return 0
	}
	if alpha <= 0 || alpha >= 1 {
		panic("risk: ES confidence must be in (0,1)")
	}
	sorted := make([]float64, len(pnls))
	copy(sorted, pnls)
	sort.Float64s(sorted)
	n := int((1 - alpha) * float64(len(sorted)))
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, v := range sorted[:n] {
		sum += v
	}
	es := -sum / float64(n)
	if es < 0 {
		return 0
	}
	return es
}
