package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"riskbench/internal/bench"
	"riskbench/internal/portfolio"
	"riskbench/internal/risk"
	"riskbench/internal/serve"
	"riskbench/internal/telemetry"
	varisk "riskbench/internal/var"
)

// runVar runs one VaR preset end to end over the effort-scaled
// realistic book: full revaluation (every scenario reprices all 7931
// claims through the farm) and/or delta–gamma (one six-bump sensitivity
// revaluation, then Taylor evaluation per scenario). When verify is
// set, each estimator runs a second time with different kernel thread
// counts and scenario-generation shard counts and the two reports must
// match bit for bit — the end-to-end determinism check.
func runVar(ctx context.Context, presetName, method string, workers int, verify bool, reg *telemetry.Registry) {
	preset, err := varisk.PresetByName(presetName)
	if err != nil {
		fatalf("%v", err)
	}
	doFull := method == "full" || method == "both"
	doDG := method == "deltagamma" || method == "both"
	if !doFull && !doDG {
		fatalf("unknown -varmethod %q (want full, deltagamma or both)", method)
	}
	pf := portfolio.Realistic()
	if err := pf.ScaleEffort(preset.Shrink); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("VaR preset %s: realistic book (%d claims, numerical effort ×%g), horizon %gd, alphas %v\n",
		preset.Name, pf.Size(), preset.Shrink, preset.HorizonDays, preset.Alphas)
	model := varisk.DefaultMarket()
	model.HorizonDays = preset.HorizonDays
	cfg := preset.Config()
	// The content-addressed cache answers the base-scenario column on
	// repeat runs (the verification pass hits it wholesale).
	eng := risk.Engine{Workers: workers, KernelThreads: 1, Telemetry: reg, Cache: serve.NewCache(4*pf.Size(), reg)}

	var fullRep, dgRep *varisk.Report
	if doFull {
		scens, err := model.GenerateParallel(ctx, preset.FullScenarios, preset.Seed, runtime.NumCPU())
		if err != nil {
			fatalf("%v", err)
		}
		start := time.Now()
		fullRep, err = varisk.FullReval(ctx, eng, pf, scens, cfg)
		if err != nil {
			fatalf("full revaluation: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Printf("\nfull revaluation: %d scenarios × %d claims in %.1fs on %d workers (%.3f scenarios/s, %.0f repricings/s)\n",
			len(scens), pf.Size(), elapsed, workers,
			float64(len(scens))/elapsed, float64(len(scens)*pf.Size())/elapsed)
		fmt.Print(fullRep.Format())
		if verify {
			verifyVar(ctx, "full revaluation", fullRep, func(vctx context.Context) (*varisk.Report, error) {
				eng2 := eng
				eng2.KernelThreads = 2
				scens2, err := model.GenerateParallel(vctx, preset.FullScenarios, preset.Seed, 1)
				if err != nil {
					return nil, err
				}
				return varisk.FullReval(vctx, eng2, pf, scens2, cfg)
			})
		}
	}
	if doDG {
		sensStart := time.Now()
		sens, err := varisk.CollectSensitivities(ctx, eng, pf)
		if err != nil {
			fatalf("sensitivities: %v", err)
		}
		sensElapsed := time.Since(sensStart).Seconds()
		scens, err := model.GenerateParallel(ctx, preset.DeltaGammaScenarios, preset.Seed, runtime.NumCPU())
		if err != nil {
			fatalf("%v", err)
		}
		start := time.Now()
		dgRep, err = varisk.DeltaGamma(sens, scens, cfg)
		if err != nil {
			fatalf("delta-gamma: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Printf("\ndelta-gamma: sensitivities in %.1fs (6 bump scenarios, %d wire deltas), %d scenarios evaluated in %.4fs (%.0f scenarios/s)\n",
			sensElapsed, dgRep.WireDeltas, len(scens), elapsed, float64(len(scens))/elapsed)
		fmt.Print(dgRep.Format())
		if verify {
			verifyVar(ctx, "delta-gamma", dgRep, func(vctx context.Context) (*varisk.Report, error) {
				scens2, err := model.GenerateParallel(vctx, preset.DeltaGammaScenarios, preset.Seed, 3)
				if err != nil {
					return nil, err
				}
				return varisk.DeltaGamma(sens, scens2, cfg)
			})
		}
	}
	if fullRep != nil && dgRep != nil {
		f, d := fullRep.Estimates[0], dgRep.Estimates[0]
		diff := 0.0
		if f.VaR != 0 {
			diff = 100 * (d.VaR - f.VaR) / f.VaR
		}
		fmt.Printf("\ndelta-gamma vs full VaR(%.0f%%): %.2f vs %.2f (%+.1f%%; Taylor truncation + sample noise)\n",
			f.Alpha*100, d.VaR, f.VaR, diff)
	}
}

// verifyVar re-runs an estimator with a different threading shape and
// requires the report's estimates to match the first run bit for bit.
func verifyVar(ctx context.Context, what string, rep *varisk.Report, rerun func(context.Context) (*varisk.Report, error)) {
	rep2, err := rerun(ctx)
	if err != nil {
		fatalf("%s verification run: %v", what, err)
	}
	if len(rep.Estimates) != len(rep2.Estimates) {
		fatalf("%s verification: estimate counts differ", what)
	}
	for i, e := range rep.Estimates {
		e2 := rep2.Estimates[i]
		if e.VaR != e2.VaR || e.CVaR != e2.CVaR {
			fatalf("%s verification: VaR(%.2f%%) differs across thread counts: %.17g/%.17g vs %.17g/%.17g",
				what, e.Alpha*100, e.VaR, e.CVaR, e2.VaR, e2.CVaR)
		}
	}
	fmt.Printf("verified: %s bit-identical across thread counts\n", what)
}

// runVarSim expands the preset's outer×inner nested workload into one
// flat batch over the full-effort realistic book and sweeps it on the
// simulated cluster: the paper's Table III shape at VaR scale, plus a
// hierarchical root-master row at the largest CPU count.
func runVarSim(ctx context.Context, presetName string, batch int) {
	preset, err := varisk.PresetByName(presetName)
	if err != nil {
		fatalf("%v", err)
	}
	if batch < 1 {
		batch = 1
	}
	pf := portfolio.Realistic()
	start := time.Now()
	tasks, err := varisk.SimTasks(pf, preset.FullScenarios)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("nested VaR workload (%s preset): %d outer scenarios × %d claims = %d tasks (built in %v)\n",
		preset.Name, preset.FullScenarios, pf.Size(), len(tasks), time.Since(start).Round(time.Millisecond))
	cpuCounts := []int{2, 64, 256, 512}
	rows, err := bench.RunNestedSweep(ctx, tasks, cpuCounts, batch, 8, 32)
	if err != nil {
		fatalf("%v", err)
	}
	title := fmt.Sprintf("Nested simulation sweep, serialized strategy, batch %d (virtual seconds)", batch)
	fmt.Print(bench.FormatNestedRows(title, rows))
	fmt.Printf("(simulated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
}
