package nsp

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the dynamic type of an Object, mirroring Nsp's internal
// class tags.
type Kind uint8

// The object kinds supported by this implementation.
const (
	KindMat    Kind = 1 // real (float64) matrix
	KindBMat   Kind = 2 // boolean matrix
	KindSMat   Kind = 3 // string matrix
	KindList   Kind = 4 // heterogeneous ordered list
	KindHash   Kind = 5 // string-keyed hash table
	KindSerial Kind = 6 // opaque serialized buffer
)

// String returns the Nsp-style one-letter class name.
func (k Kind) String() string {
	switch k {
	case KindMat:
		return "r"
	case KindBMat:
		return "b"
	case KindSMat:
		return "s"
	case KindList:
		return "l"
	case KindHash:
		return "h"
	case KindSerial:
		return "serial"
	case KindIMat:
		return "i"
	case KindCells:
		return "ce"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Object is the interface satisfied by every Nsp value. Objects are
// comparable with deep Equal and serializable through Serialize.
type Object interface {
	// Kind reports the dynamic type tag.
	Kind() Kind
	// Equal reports deep structural equality with another object.
	Equal(Object) bool
}

// Mat is a dense real matrix stored row-major. A 1×1 Mat doubles as a
// scalar, as in Nsp.
type Mat struct {
	Rows, Cols int
	Data       []float64 // length Rows*Cols, row-major
}

// NewMat returns a zero-filled rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("nsp: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Scalar returns a 1×1 matrix holding v.
func Scalar(v float64) *Mat {
	return &Mat{Rows: 1, Cols: 1, Data: []float64{v}}
}

// RowVec returns a 1×n matrix holding a copy of vs.
func RowVec(vs ...float64) *Mat {
	d := make([]float64, len(vs))
	copy(d, vs)
	return &Mat{Rows: 1, Cols: len(vs), Data: d}
}

// Kind implements Object.
func (m *Mat) Kind() Kind { return KindMat }

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// ScalarValue returns the single element of a 1×1 matrix and panics
// otherwise.
func (m *Mat) ScalarValue() float64 {
	if m.Rows != 1 || m.Cols != 1 {
		panic(fmt.Sprintf("nsp: ScalarValue on %dx%d matrix", m.Rows, m.Cols))
	}
	return m.Data[0]
}

// Equal implements Object.
func (m *Mat) Equal(o Object) bool {
	n, ok := o.(*Mat)
	if !ok || m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// String renders the matrix in a compact Nsp-flavoured form.
func (m *Mat) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r (%dx%d)", m.Rows, m.Cols)
	if m.Rows == 1 && m.Cols == 1 {
		fmt.Fprintf(&b, " %g", m.Data[0])
	}
	return b.String()
}

// BMat is a dense boolean matrix stored row-major.
type BMat struct {
	Rows, Cols int
	Data       []bool
}

// NewBMat returns a false-filled rows×cols boolean matrix.
func NewBMat(rows, cols int) *BMat {
	if rows < 0 || cols < 0 {
		panic("nsp: negative matrix dimension")
	}
	return &BMat{Rows: rows, Cols: cols, Data: make([]bool, rows*cols)}
}

// Bool returns a 1×1 boolean matrix holding v.
func Bool(v bool) *BMat {
	return &BMat{Rows: 1, Cols: 1, Data: []bool{v}}
}

// Kind implements Object.
func (m *BMat) Kind() Kind { return KindBMat }

// Equal implements Object.
func (m *BMat) Equal(o Object) bool {
	n, ok := o.(*BMat)
	if !ok || m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// SMat is a dense string matrix stored row-major. A 1×1 SMat is Nsp's
// plain string.
type SMat struct {
	Rows, Cols int
	Data       []string
}

// Str returns a 1×1 string matrix holding s.
func Str(s string) *SMat {
	return &SMat{Rows: 1, Cols: 1, Data: []string{s}}
}

// NewSMat returns an empty-string-filled rows×cols string matrix.
func NewSMat(rows, cols int) *SMat {
	if rows < 0 || cols < 0 {
		panic("nsp: negative matrix dimension")
	}
	return &SMat{Rows: rows, Cols: cols, Data: make([]string, rows*cols)}
}

// Kind implements Object.
func (m *SMat) Kind() Kind { return KindSMat }

// StrValue returns the single element of a 1×1 string matrix and panics
// otherwise.
func (m *SMat) StrValue() string {
	if m.Rows != 1 || m.Cols != 1 {
		panic(fmt.Sprintf("nsp: StrValue on %dx%d string matrix", m.Rows, m.Cols))
	}
	return m.Data[0]
}

// Equal implements Object.
func (m *SMat) Equal(o Object) bool {
	n, ok := o.(*SMat)
	if !ok || m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// List is an ordered heterogeneous sequence of objects.
type List struct {
	Items []Object
}

// NewList returns a list of the given items (which are not copied).
func NewList(items ...Object) *List {
	return &List{Items: items}
}

// Kind implements Object.
func (l *List) Kind() Kind { return KindList }

// Len returns the number of items.
func (l *List) Len() int { return len(l.Items) }

// Add appends an item, mirroring Nsp's add_last.
func (l *List) Add(o Object) { l.Items = append(l.Items, o) }

// Equal implements Object.
func (l *List) Equal(o Object) bool {
	m, ok := o.(*List)
	if !ok || len(l.Items) != len(m.Items) {
		return false
	}
	for i, it := range l.Items {
		if !it.Equal(m.Items[i]) {
			return false
		}
	}
	return true
}

// Hash is a string-keyed table of objects, like Nsp's hash_create values.
type Hash struct {
	m map[string]Object
}

// NewHash returns an empty hash table.
func NewHash() *Hash { return &Hash{m: make(map[string]Object)} }

// Kind implements Object.
func (h *Hash) Kind() Kind { return KindHash }

// Set stores o under key.
func (h *Hash) Set(key string, o Object) {
	if h.m == nil {
		h.m = make(map[string]Object)
	}
	h.m[key] = o
}

// Get returns the object stored under key, with presence flag.
func (h *Hash) Get(key string) (Object, bool) {
	o, ok := h.m[key]
	return o, ok
}

// Del removes the entry stored under key, if any — hash_delete in Nsp.
func (h *Hash) Del(key string) { delete(h.m, key) }

// Len returns the number of entries.
func (h *Hash) Len() int { return len(h.m) }

// Keys returns the keys in sorted order, for deterministic encoding and
// iteration.
func (h *Hash) Keys() []string {
	ks := make([]string, 0, len(h.m))
	for k := range h.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Equal implements Object.
func (h *Hash) Equal(o Object) bool {
	g, ok := o.(*Hash)
	if !ok || len(h.m) != len(g.m) {
		return false
	}
	for k, v := range h.m {
		w, ok := g.m[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}
