package mathutil

import (
	"errors"
	"math"
)

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite within numerical tolerance.
var ErrNotSPD = errors.New("mathutil: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular factor L of the symmetric
// positive-definite n×n matrix A (row-major, length n*n) such that
// A = L Lᵀ. The result is written into l (which may alias a); entries above
// the diagonal of l are zeroed.
func Cholesky(a []float64, n int, l []float64) error {
	if len(a) < n*n || len(l) < n*n {
		panic("mathutil: Cholesky length mismatch")
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return ErrNotSPD
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	return nil
}

// CorrelationMatrix builds the n×n matrix with 1 on the diagonal and rho
// everywhere else, the standard single-factor correlation structure used
// for equity baskets. It panics if rho is outside (-1/(n-1), 1].
func CorrelationMatrix(n int, rho float64) []float64 {
	if n > 1 && (rho <= -1.0/float64(n-1) || rho > 1) {
		panic("mathutil: correlation out of admissible range")
	}
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m[i*n+j] = 1
			} else {
				m[i*n+j] = rho
			}
		}
	}
	return m
}

// MatVecLower computes dst = L v for a lower-triangular row-major n×n
// matrix L, exploiting the triangular structure. dst must not alias v.
func MatVecLower(l []float64, n int, v, dst []float64) {
	if len(l) < n*n || len(v) < n || len(dst) < n {
		panic("mathutil: MatVecLower length mismatch")
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		row := l[i*n : i*n+i+1]
		for k, lik := range row {
			sum += lik * v[k]
		}
		dst[i] = sum
	}
}

// SolveSPD solves A x = rhs for a symmetric positive-definite matrix A
// (row-major n×n) by Cholesky factorisation. x may alias rhs. It allocates
// one n×n scratch factor.
func SolveSPD(a []float64, n int, rhs, x []float64) error {
	l := make([]float64, n*n)
	if err := Cholesky(a, n, l); err != nil {
		return err
	}
	// Forward substitution: L y = rhs.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := rhs[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Backward substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return nil
}
