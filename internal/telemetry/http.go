package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the registry's snapshot as indented JSON, in the
// spirit of expvar's /debug/vars. Wire it wherever convenient:
//
//	http.ListenAndServe(addr, telemetry.Handler(reg))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding a fresh snapshot never fails; ignore client aborts.
		_ = enc.Encode(r.Snapshot())
	})
}

// Mux bundles the standard observability surface of one registry:
//
//	/metrics       Prometheus text format (rank-labelled, deterministic)
//	/metrics.json  the JSON snapshot (the former /metrics payload)
//	/debug/traces  slowest reassembled span trees with phase breakdown
//	/debug/events  the flight-recorder event log as filterable NDJSON
//	/              the JSON snapshot, for backward compatibility with
//	               the original single-handler -telemetry endpoint
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(r))
	mux.Handle("/metrics.json", Handler(r))
	mux.Handle("/debug/traces", TraceHandler(r, DefaultTraceCount))
	mux.Handle("/debug/events", EventsHandler(r))
	mux.Handle("/", Handler(r))
	return mux
}

// DefaultTraceCount is how many trees /debug/traces renders by default.
const DefaultTraceCount = 16

// fmtDur renders a duration in seconds at a human scale.
func fmtDur(sec float64) string {
	switch abs := sec; {
	case abs >= 1 || abs <= -1:
		return fmt.Sprintf("%.3fs", sec)
	case abs >= 1e-3 || abs <= -1e-3:
		return fmt.Sprintf("%.3fms", sec*1e3)
	default:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	}
}

// writeTraceTree renders one span and its subtree, start-ordered.
func writeTraceTree(w *strings.Builder, tr Trace, rec SpanRecord, depth int) {
	fmt.Fprintf(w, "  %s%-*s %10s\n", strings.Repeat("  ", depth),
		40-2*depth, rec.Name, fmtDur(rec.End-rec.Start))
	for _, child := range tr.Children(rec.ID) {
		writeTraceTree(w, tr, child, depth+1)
	}
}

// RenderTraces formats the slowest n reassembled traces as text: one
// indented tree per trace plus a per-phase (span name) duration
// breakdown, master- and worker-side spans interleaved by parent links.
func RenderTraces(r *Registry, n int) string {
	traces := r.SlowestTraces(n)
	var b strings.Builder
	fmt.Fprintf(&b, "%d trace(s) retained, slowest first\n", len(traces))
	for _, tr := range traces {
		fmt.Fprintf(&b, "\ntrace %016x  %s  %d span(s)\n", tr.TraceID, fmtDur(tr.Duration()), len(tr.Spans))
		// Phase breakdown: total duration and count per span name.
		type phase struct {
			total float64
			count int
		}
		phases := map[string]*phase{}
		for _, s := range tr.Spans {
			p := phases[s.Name]
			if p == nil {
				p = &phase{}
				phases[s.Name] = p
			}
			p.total += s.End - s.Start
			p.count++
		}
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Slice(names, func(a, b int) bool { return phases[names[a]].total > phases[names[b]].total })
		b.WriteString("  phases:")
		for _, name := range names {
			p := phases[name]
			fmt.Fprintf(&b, " %s %s (%d)", name, fmtDur(p.total), p.count)
		}
		b.WriteString("\n")
		for _, root := range tr.Roots() {
			writeTraceTree(&b, tr, root, 0)
		}
	}
	return b.String()
}

// TraceHandler serves the slowest-n reassembled trace trees as plain
// text — the /debug/traces endpoint. `?trace=<16-hex-digit ID>` renders
// just that trace (the ID format /debug/events links with), and `?n=`
// overrides the tree count.
func TraceHandler(r *Registry, n int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad count %q", s), http.StatusBadRequest)
				return
			}
			n = v
		}
		if s := q.Get("trace"); s != "" {
			id, err := strconv.ParseUint(s, 16, 64)
			if err != nil || id == 0 {
				http.Error(w, fmt.Sprintf("bad trace ID %q: want 16 hex digits", s), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tr := range r.Traces() {
				if tr.TraceID == id {
					var b strings.Builder
					fmt.Fprintf(&b, "trace %016x  %s  %d span(s)\n", tr.TraceID, fmtDur(tr.Duration()), len(tr.Spans))
					for _, root := range tr.Roots() {
						writeTraceTree(&b, tr, root, 0)
					}
					_, _ = w.Write([]byte(b.String()))
					return
				}
			}
			http.Error(w, fmt.Sprintf("trace %016x not retained", id), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(RenderTraces(r, n)))
	})
}
