package varisk

import (
	"context"
	"math"
	"reflect"
	"testing"

	"riskbench/internal/risk"
)

// TestGenerateBitIdenticalAcrossThreads is the scenario-generator half
// of the determinism contract: the same (seed, n) produces the same
// scenarios bit for bit at any shard count, because scenario i's stream
// depends only on (seed, i), never on the partition.
func TestGenerateBitIdenticalAcrossThreads(t *testing.T) {
	m := DefaultMarket()
	want, err := m.Generate(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 3, 7, 16, 1000} {
		got, err := m.GenerateParallel(context.Background(), 500, 42, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scenarios differ at %d threads", threads)
		}
	}
}

// TestGenerateDistribution sanity-checks the factor model on a large
// sample: unit-mean lognormal spot/vol factors, the configured
// log-volatility, and the sign of the spot–vol correlation.
func TestGenerateDistribution(t *testing.T) {
	m := DefaultMarket()
	n := 20000
	scens, err := m.Generate(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := m.HorizonDays / 252
	var meanS, meanLogS, varLogS, meanLogV, covSV float64
	logS := make([]float64, n)
	logV := make([]float64, n)
	for i, sc := range scens {
		if len(sc.Shifts) != 3 {
			t.Fatalf("scenario %d has %d shifts, want 3", i, len(sc.Shifts))
		}
		xs, xv, _, ok := ShockCoords(sc)
		if !ok {
			t.Fatalf("generated scenario %d does not project", i)
		}
		if xs <= -1 || xv <= -1 {
			t.Fatalf("scenario %d pushes spot or vol negative: xs=%v xv=%v", i, xs, xv)
		}
		meanS += 1 + xs
		logS[i] = math.Log(1 + xs)
		logV[i] = math.Log(1 + xv)
		meanLogS += logS[i]
		meanLogV += logV[i]
	}
	meanS /= float64(n)
	meanLogS /= float64(n)
	meanLogV /= float64(n)
	for i := range logS {
		ds, dv := logS[i]-meanLogS, logV[i]-meanLogV
		varLogS += ds * ds
		covSV += ds * dv
	}
	varLogS /= float64(n)
	// E[1+xs] = 1 by the -σ²h/2 drift correction.
	if math.Abs(meanS-1) > 0.01 {
		t.Errorf("mean gross spot move %v, want ≈1", meanS)
	}
	wantSd := m.SpotVol * math.Sqrt(h)
	if sd := math.Sqrt(varLogS); math.Abs(sd-wantSd) > 0.05*wantSd {
		t.Errorf("log-spot stddev %v, want ≈%v", sd, wantSd)
	}
	if covSV >= 0 {
		t.Errorf("spot–vol covariance %v, want negative (RhoSV=%v)", covSV, m.RhoSV)
	}
}

// TestGenerateOmitsSwitchedOffFactors: zero factor vols drop the shift
// entirely, which is what lets a spot-only backtest book revalue
// without skipping claims that carry no vol or rate parameter.
func TestGenerateOmitsSwitchedOffFactors(t *testing.T) {
	m := MarketModel{SpotVol: 0.2}
	scens, err := m.Generate(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scens {
		if len(sc.Shifts) != 1 || sc.Shifts[0].Param != "S0" {
			t.Fatalf("spot-only model produced shifts %+v", sc.Shifts)
		}
	}
}

func TestGenerateRejectsBadCorrelations(t *testing.T) {
	m := MarketModel{SpotVol: 0.2, VolVol: 0.5, RateVol: 0.01, RhoSV: 0.9, RhoSR: 0.9, RhoVR: -0.9}
	if _, err := m.Generate(10, 1); err == nil {
		t.Fatal("non-positive-definite correlations accepted")
	}
	if _, err := DefaultMarket().Generate(-1, 1); err == nil {
		t.Fatal("negative scenario count accepted")
	}
}

func TestGenerateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DefaultMarket().GenerateParallel(ctx, 1000, 1, 4); err == nil {
		t.Fatal("cancelled generation returned scenarios")
	}
}

func TestShockCoords(t *testing.T) {
	sc := risk.Scenario{Name: "x", Shifts: []risk.Shift{
		{Param: "S0", Rel: -0.05},
		{Param: risk.VolToken, Rel: 0.10},
		{Param: risk.RateToken, Abs: 0.002},
	}}
	xs, xv, xr, ok := ShockCoords(sc)
	if !ok || xs != -0.05 || xv != 0.10 || xr != 0.002 {
		t.Fatalf("ShockCoords = %v %v %v %v", xs, xv, xr, ok)
	}
	bad := []risk.Scenario{
		{Shifts: []risk.Shift{{Param: "S0", Abs: 5}}},            // absolute spot
		{Shifts: []risk.Shift{{Param: risk.VolToken, Abs: 0.1}}}, // absolute vol
		{Shifts: []risk.Shift{{Param: risk.RateToken, Rel: 1}}},  // relative rate
		{Shifts: []risk.Shift{{Param: "K", Rel: 0.1}}},           // arbitrary param
	}
	for i, sc := range bad {
		if _, _, _, ok := ShockCoords(sc); ok {
			t.Errorf("bad scenario %d projected", i)
		}
	}
}

func TestHistoricalGrid(t *testing.T) {
	scens := HistoricalGrid()
	if len(scens) != 8*5+6 {
		t.Fatalf("historical grid has %d scenarios, want 46", len(scens))
	}
	for _, sc := range scens {
		if _, _, _, ok := ShockCoords(sc); !ok {
			t.Errorf("grid scenario %q does not project onto delta–gamma coordinates", sc.Name)
		}
	}
}
