package nsp

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	// Paper Fig. 2: H.A = rand(4,5); H.B = rand(4,1); save; sload; equal.
	dir := t.TempDir()
	path := filepath.Join(dir, "saved.bin")
	h := NewHash()
	a := NewMat(4, 5)
	b := NewMat(4, 1)
	for i := range a.Data {
		a.Data[i] = float64(i) / 7
	}
	for i := range b.Data {
		b.Data[i] = float64(i) * 3
	}
	h.Set("A", a)
	h.Set("B", b)
	if err := Save(path, h); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Fatal("Load did not restore the saved hash")
	}
}

func TestSLoadEqualsSerialize(t *testing.T) {
	// The essential sload property: bytes on disk == serialize(obj).Data,
	// so sload(file).Unserialize() == obj with zero construction cost on
	// the sender.
	dir := t.TempDir()
	path := filepath.Join(dir, "obj.bin")
	l := NewList(Str("problem"), Scalar(3.14), Bool(false))
	if err := Save(path, l); err != nil {
		t.Fatal(err)
	}
	s, err := SLoad(path)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Serialize(l)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(direct) {
		t.Fatal("sload bytes differ from direct serialization")
	}
	back, err := s.Unserialize()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Fatal("sload->unserialize lost the object")
	}
}

func TestSLoadBytes(t *testing.T) {
	l := NewList(Scalar(1))
	s, err := Serialize(l)
	if err != nil {
		t.Fatal(err)
	}
	s2 := SLoadBytes(s.Data)
	back, err := s2.Unserialize()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Fatal("SLoadBytes round trip failed")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
	if _, err := SLoad(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("SLoad of missing file succeeded")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not an nsp file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load of corrupt file succeeded")
	}
}

func TestFileSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := Save(path, Scalar(1)); err != nil {
		t.Fatal(err)
	}
	n, err := FileSize(path)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Serialize(Scalar(1))
	if n != int64(s.Len()) {
		t.Fatalf("FileSize = %d, want %d", n, s.Len())
	}
	if _, err := FileSize(path + ".missing"); err == nil {
		t.Fatal("FileSize of missing file succeeded")
	}
}
