// MPI-layer demo mirroring the paper's Figs. 1–2 and §3.2: spawn slaves,
// send heterogeneous objects with transparent serialization, use the
// probe/buffer/pack path, unseal serials, compress, and sload a saved
// problem straight into a transmissible buffer.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/premia"
)

func main() {
	const tag = 7

	// NSP_spawn(n): start 2 slaves that echo one object back (Fig. 1).
	master, wait := mpi.Spawn(2, func(c mpi.Comm) {
		obj, st, err := mpi.RecvObj(c, 0, mpi.AnyTag)
		if err != nil {
			log.Printf("slave %d: %v", c.Rank(), err)
			return
		}
		if err := mpi.SendObj(c, obj, 0, st.Tag); err != nil {
			log.Printf("slave %d: %v", c.Rank(), err)
		}
	})

	// A=list('string',%t,rand(4,4)); MPI_Send_Obj(A,...).
	mat := nsp.NewMat(4, 4)
	for i := range mat.Data {
		mat.Data[i] = float64(i) / 16
	}
	a := nsp.NewList(nsp.Str("string"), nsp.Bool(true), mat)
	for slave := 1; slave <= 2; slave++ {
		if err := mpi.SendObj(master, a, slave, tag); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		b, st, err := mpi.RecvObj(master, mpi.AnySource, tag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("echo from slave %d: B.equal[A] = %v\n", st.Source, b.Equal(a))
		if i == 0 {
			// Show the object the way an Nsp session would print it.
			fmt.Print(nsp.Display("B", b))
		}
	}
	wait()

	// MPI_Pack / probe / mpibuf / MPI_Unpack (§3.2's second listing).
	h := nsp.NewHash()
	h.Set("A", nsp.RowVec(1, 0))
	h.Set("B", nsp.NewList(nsp.Str("foo"), nsp.RowVec(1, 2, 3, 4), nsp.Str("bar")))
	world := mpi.NewLocalWorld(2)
	defer world.Close()
	packed, err := mpi.Pack(h)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := world.Comm(0).Send(packed.Data, 1, tag); err != nil {
			log.Print(err)
		}
	}()
	st, err := world.Comm(1).Probe(mpi.AnySource, mpi.AnyTag)
	if err != nil {
		log.Fatal(err)
	}
	buf := mpi.NewBuf(st.Bytes) // mpibuf_create(elems)
	data, _, err := world.Comm(1).Recv(st.Source, st.Tag)
	if err != nil {
		log.Fatal(err)
	}
	copy(buf.Data, data)
	h1, err := buf.Unpack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pack/probe/unpack round trip: H1.equal[H] = %v\n", h1.Equal(h))

	// The paper's sparse example: A=sparse(rand(2,2)); S=serialize(A);
	// MPI_Send_Obj(S,...); B=MPI_Recv_Obj → B.equal[A].
	spDense := nsp.NewMat(2, 2)
	for i := range spDense.Data {
		spDense.Data[i] = float64(i+1) / 4
	}
	sp := nsp.SparseFromDense(spDense)
	spSer, err := nsp.Serialize(sp)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := mpi.SendObj(world.Comm(0), spSer, 1, tag); err != nil {
			log.Print(err)
		}
	}()
	spBack, _, err := mpi.RecvObj(world.Comm(1), 0, tag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse round trip: B.equal[A] = %v\n", spBack.Equal(sp))

	// serialize / compress (the paper's 842-byte → 248-byte example).
	seq := nsp.NewMat(1, 100)
	for i := range seq.Data {
		seq.Data[i] = float64(i + 1)
	}
	s, err := nsp.Serialize(seq)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := s.Compress()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialize(1:100): %s, compressed: %s\n", s, cs)

	// save + sload a Premia problem (Fig. 2): the file becomes a Serial
	// without object construction, and unserializes to an equal problem.
	dir, err := os.MkdirTemp("", "mpidemo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fic := filepath.Join(dir, "fic")
	p := premia.New().
		SetModel(premia.ModelHeston).SetOption(premia.OptPutAmer).
		SetMethod(premia.MethodMCAmerAlfonsi).
		Set("S0", 100).Set("r", 0.03).Set("V0", 0.04).Set("kappa", 2).
		Set("theta", 0.04).Set("sigmaV", 0.3).Set("rhoSV", -0.7).
		Set("K", 100).Set("T", 1).Set("paths", 5000).Set("exdates", 20)
	if err := p.Save(fic); err != nil {
		log.Fatal(err)
	}
	serial, err := nsp.SLoad(fic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sload(fic) = %s\n", serial)
	obj, err := serial.Unserialize()
	if err != nil {
		log.Fatal(err)
	}
	back, err := premia.FromNsp(obj)
	if err != nil {
		log.Fatal(err)
	}
	res, err := back.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("American Heston put via sloaded problem: %.4f ± %.4f\n", res.Price, res.PriceCI)
}
