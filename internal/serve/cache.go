package serve

import (
	"container/list"
	"sync"

	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// cacheShards fixes the shard count. Sixteen shards keep lock
// contention negligible at the request rates an in-process farm can
// sustain while staying small enough that per-shard LRU capacity is
// meaningful for modest total capacities.
const cacheShards = 16

// DefaultCacheSize is the total entry capacity used when a Cache is
// created with capacity <= 0.
const DefaultCacheSize = 4096

// Cache is a sharded, content-addressed store of pricing results keyed
// by premia.Problem.ContentKey. Each shard is an independent
// mutex-guarded LRU list, so concurrent readers on different shards
// never contend. It implements risk.PriceCache.
type Cache struct {
	reg    *telemetry.Registry
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	capacity int
}

type cacheEntry struct {
	key string
	res premia.Result
}

// NewCache returns a cache holding at most capacity entries in total
// (DefaultCacheSize when capacity <= 0), reporting hit/miss/eviction
// telemetry to reg (nil disables telemetry, not the cache). The
// capacity is split over the shards with the remainder spread one entry
// each over the first capacity%cacheShards shards, so the per-shard
// budgets sum exactly to the requested total — a ceil division here
// would let the cache overshoot by up to cacheShards-1 entries.
func NewCache(capacity int, reg *telemetry.Registry) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	base, rem := capacity/cacheShards, capacity%cacheShards
	c := &Cache{reg: reg}
	for i := range c.shards {
		c.shards[i].capacity = base
		if i < rem {
			c.shards[i].capacity++
		}
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor picks a shard by FNV-1a over the key. Content keys are
// uniformly distributed hex SHA-256 strings, so any cheap mix spreads
// them evenly.
func (c *Cache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached result for key and refreshes its recency.
func (c *Cache) Get(key string) (premia.Result, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.reg.Counter("serve.cache.misses").Add(1)
		return premia.Result{}, false
	}
	s.lru.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	c.reg.Counter("serve.cache.hits").Add(1)
	return res, true
}

// Put stores res under key, evicting the shard's least recently used
// entries beyond its capacity share.
func (c *Cache) Put(key string, res premia.Result) {
	s := c.shardFor(key)
	evicted := 0
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, res: res})
	for s.lru.Len() > s.capacity {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).key)
		evicted++
	}
	s.mu.Unlock()
	c.reg.Gauge("serve.cache.entries").Add(float64(1 - evicted))
	if evicted > 0 {
		c.reg.Counter("serve.cache.evictions").Add(int64(evicted))
	}
}

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}
