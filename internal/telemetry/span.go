package telemetry

// Span is one timed region of work. Spans form trees via StartChild;
// finishing a span records its duration under "span.<name>" and files a
// SpanRecord carrying the parent link. A nil *Span is a valid no-op, so
// instrumented code can start spans unconditionally.
//
// Spans started under a trace (StartTrace, StartSpanIn, or children of
// such spans) additionally enter the registry's trace table, keyed by
// their TraceID, from which whole request trees are reassembled even
// when parts of the tree finished in another process.
type Span struct {
	reg      *Registry
	id       uint64
	parentID uint64
	traceID  uint64
	name     string
	start    float64
	end      float64
	ended    bool
}

// SpanRecord is a finished span as retained by the registry ring.
type SpanRecord struct {
	// ID is unique within the registry; ParentID is 0 for roots. New
	// registries start their ID sequence at a random base, so records
	// from different registries (= different processes) do not collide
	// when reassembled into one trace.
	ID, ParentID uint64
	// TraceID groups the spans of one distributed trace; 0 = untraced.
	TraceID uint64
	// Name is the span name given to StartSpan/StartChild.
	Name string
	// Start and End are registry-clock readings in seconds.
	Start, End float64
}

// StartSpan opens a root span outside any trace.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, id: r.spanID.Add(1), name: name, start: r.Now()}
}

// StartTrace opens a root span under a freshly minted trace ID — the
// entry point for one serve request or bench run.
func (r *Registry) StartTrace(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, id: r.spanID.Add(1), traceID: NewTraceID(), name: name, start: r.Now()}
}

// StartSpanIn opens a span parented on tc — typically a context that
// arrived from another process (a farm task descriptor) or another
// goroutine (a context.Context). An invalid tc degrades to StartSpan.
func (r *Registry) StartSpanIn(tc TraceContext, name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, id: r.spanID.Add(1), parentID: tc.SpanID, traceID: tc.TraceID, name: name, start: r.Now()}
}

// StartChild opens a child span under s, inheriting its trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	r := s.reg
	return &Span{reg: r, id: r.spanID.Add(1), parentID: s.id, traceID: s.traceID, name: name, start: r.Now()}
}

// ID returns the span's registry-unique ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Context returns the span's position in its trace, for handing to
// children in other goroutines or processes. Zero (invalid) when the
// span is nil or untraced.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.traceID, SpanID: s.id}
}

// End finishes the span and records it; extra calls are ignored. Spans
// are not goroutine-safe: one goroutine owns a span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.end = s.reg.Now()
	s.reg.recordSpan(s.Record())
}

// Record returns the finished span's SpanRecord — what workers ship back
// to the master so its trace table sees the whole tree. Valid only after
// End; a nil or unfinished span yields the zero record.
func (s *Span) Record() SpanRecord {
	if s == nil || !s.ended {
		return SpanRecord{}
	}
	return SpanRecord{ID: s.id, ParentID: s.parentID, TraceID: s.traceID, Name: s.name, Start: s.start, End: s.end}
}
