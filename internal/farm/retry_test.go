package farm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
)

// flakyExecutor fails the first `failures` attempts of each task whose
// name contains the trigger substring, then succeeds. It is shared across
// worker goroutines, hence the mutex.
type flakyExecutor struct {
	mu       sync.Mutex
	trigger  string
	failures int
	attempts map[string]int
}

func newFlaky(trigger string, failures int) *flakyExecutor {
	return &flakyExecutor{trigger: trigger, failures: failures, attempts: make(map[string]int)}
}

func (f *flakyExecutor) Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error) {
	f.mu.Lock()
	f.attempts[name]++
	n := f.attempts[name]
	f.mu.Unlock()
	if strings.Contains(name, f.trigger) && n <= f.failures {
		return nil, fmt.Errorf("injected failure #%d", n)
	}
	return resultHash(name, 42, 0, 0, 1), nil
}

// brokenExecutor always fails.
type brokenExecutor struct{}

func (brokenExecutor) Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error) {
	return nil, errors.New("permanently broken")
}

func runFlakyFarm(t *testing.T, exec Executor, n, workers int, opts Options) []Result {
	t.Helper()
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Name: fmt.Sprintf("job-%02d", i), Data: []byte("x")}
	}
	w := mpi.NewLocalWorld(workers + 1)
	defer w.Close()
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := RunWorker(w.Comm(rank), exec, nil, opts); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	results, err := RunMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, opts)
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	return results
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	// Every task fails once, succeeds on retry: with MaxRetries 2 the farm
	// must deliver every result error-free.
	exec := newFlaky("job", 1)
	results := runFlakyFarm(t, exec, 20, 3, Options{Strategy: SerializedLoad, MaxRetries: 2})
	if len(results) != 20 {
		t.Fatalf("%d results, want 20", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s still failed: %v", r.Name, r.Err)
		}
		if price, ok := ResultField(r, "price"); !ok || price != 42 {
			t.Errorf("%s: price missing after retry", r.Name)
		}
	}
	// Each task was attempted exactly twice.
	for name, n := range exec.attempts {
		if n != 2 {
			t.Errorf("%s attempted %d times, want 2", name, n)
		}
	}
}

func TestNoRetryReportsErrors(t *testing.T) {
	exec := newFlaky("job-0", 1) // job-00..job-09 fail once
	results := runFlakyFarm(t, exec, 15, 2, Options{Strategy: SerializedLoad})
	failed, succeeded := 0, 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			if !strings.Contains(r.Err.Error(), "injected failure") {
				t.Errorf("error lost its cause: %v", r.Err)
			}
		} else {
			succeeded++
		}
	}
	if failed != 10 || succeeded != 5 {
		t.Fatalf("failed=%d succeeded=%d, want 10/5", failed, succeeded)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	results := runFlakyFarm(t, brokenExecutor{}, 8, 2, Options{Strategy: SerializedLoad, MaxRetries: 3})
	if len(results) != 8 {
		t.Fatalf("%d results, want 8", len(results))
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s unexpectedly succeeded", r.Name)
		}
		if r.Value == nil {
			t.Errorf("%s: error result lost its report hash", r.Name)
		}
	}
}

func TestRetryWithinBatches(t *testing.T) {
	// Failures inside multi-task batches are retried individually, and
	// the healthy tasks of the batch are not recomputed.
	exec := newFlaky("job-03", 1)
	results := runFlakyFarm(t, exec, 12, 2, Options{Strategy: SerializedLoad, BatchSize: 4, MaxRetries: 1})
	if len(results) != 12 {
		t.Fatalf("%d results, want 12", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.Name, r.Err)
		}
	}
	for name, n := range exec.attempts {
		want := 1
		if name == "job-03" {
			want = 2
		}
		if n != want {
			t.Errorf("%s attempted %d times, want %d", name, n, want)
		}
	}
}

func TestRetryInHierarchy(t *testing.T) {
	// Pricing errors propagate through sub-masters back to the root with
	// Err set (retries happen at the sub-master tier).
	const groups = 2
	const size = 1 + groups + 4
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = Task{Name: fmt.Sprintf("job-%02d", i), Data: []byte("x")}
	}
	w := mpi.NewLocalWorld(size)
	defer w.Close()
	opts := Options{Strategy: SerializedLoad, MaxRetries: 1}
	exec := newFlaky("job", 1) // every task fails once
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		sub := g + 1
		workers := HierarchyWorkers(size, groups, g)
		wg.Add(1)
		go func(rank int, ws []int) {
			defer wg.Done()
			if err := RunSubMaster(w.Comm(rank), ws, opts); err != nil {
				t.Errorf("sub-master %d: %v", rank, err)
			}
		}(sub, workers)
		for _, wr := range workers {
			wg.Add(1)
			go func(rank, master int) {
				defer wg.Done()
				wopts := opts
				wopts.MasterRank = master
				if err := RunWorker(w.Comm(rank), exec, nil, wopts); err != nil {
					t.Errorf("worker %d: %v", rank, err)
				}
			}(wr, sub)
		}
	}
	results, err := RunRootMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, opts, groups, 3)
	if err != nil {
		t.Fatalf("root: %v", err)
	}
	wg.Wait()
	if len(results) != 10 {
		t.Fatalf("%d results, want 10", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed despite sub-master retry: %v", r.Name, r.Err)
		}
	}
}

func TestSaveLoadResults(t *testing.T) {
	tasks, want := makePortfolio(t, 10)
	results := runLocalFarm(t, tasks, 2, Options{Strategy: SerializedLoad}, nil)
	path := t.TempDir() + "/pb-res.bin"
	if err := SaveResults(path, results); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("%d results back, want %d", len(back), len(results))
	}
	for i, r := range back {
		if r.Name != results[i].Name || r.Worker != results[i].Worker {
			t.Fatalf("entry %d metadata mismatch", i)
		}
		price, ok := ResultField(r, "price")
		if !ok || price != want[r.Name] {
			t.Fatalf("entry %d price %v, want %v", i, price, want[r.Name])
		}
	}
}

func TestSaveLoadResultsWithErrors(t *testing.T) {
	results := runFlakyFarm(t, brokenExecutor{}, 3, 1, Options{Strategy: SerializedLoad})
	path := t.TempDir() + "/err-res.bin"
	if err := SaveResults(path, results); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range back {
		if r.Err == nil {
			t.Fatalf("%s lost its error through persistence", r.Name)
		}
	}
}

func TestLoadResultsRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadResults(dir + "/missing.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
	// A valid nsp file that is not a results list.
	path := dir + "/notlist.bin"
	if err := nsp.Save(path, nsp.Scalar(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResults(path); err == nil {
		t.Fatal("non-list accepted")
	}
}
