package riskbench_test

// End-to-end tests through the public façade only: what a downstream user
// of the module sees.

import (
	"math"
	"strings"
	"testing"

	"riskbench"
)

func TestFacadeQuickstart(t *testing.T) {
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).
		SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	// The canonical textbook value for these parameters.
	if math.Abs(res.Price-10.450583572185565) > 1e-9 {
		t.Errorf("price %v, want 10.4505836", res.Price)
	}
	g, err := riskbench.ComputeGreeks(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Delta-res.Delta) > 1e-12 || g.Vega <= 0 {
		t.Errorf("greeks %+v inconsistent with result %+v", g, res)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelHeston).
		SetOption(riskbench.OptPutAmer).
		SetMethod(riskbench.MethodMCAmerAlfonsi).
		Set("S0", 100).Set("r", 0.03).Set("V0", 0.04).Set("kappa", 2).
		Set("theta", 0.04).Set("sigmaV", 0.3).Set("rhoSV", -0.7).
		Set("K", 100).Set("T", 1).Set("paths", 1000).Set("exdates", 10)
	path := dir + "/fic"
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := riskbench.LoadProblem(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price {
		t.Fatal("reloaded problem prices differently")
	}
}

func TestFacadeMethodsListed(t *testing.T) {
	ms := riskbench.Methods()
	if len(ms) < 15 {
		t.Fatalf("only %d methods exposed", len(ms))
	}
	found := false
	for _, m := range ms {
		if m == riskbench.MethodMCAmerAlfonsi {
			found = true
		}
	}
	if !found {
		t.Error("the paper's example method missing from Methods()")
	}
}

func TestFacadePortfolios(t *testing.T) {
	if n := riskbench.RealisticPortfolio().Size(); n != 7931 {
		t.Errorf("realistic size %d, want 7931", n)
	}
	if n := riskbench.ToyPortfolio(123).Size(); n != 123 {
		t.Errorf("toy size %d", n)
	}
	if n := riskbench.RegressionPortfolio().Size(); n < 150 {
		t.Errorf("regression size %d too small", n)
	}
}

func TestFacadeTableSweep(t *testing.T) {
	spec := riskbench.TableII()
	spec.Portfolio = riskbench.ToyPortfolio(300)
	spec.MaxCPUs = 4
	tbl, err := riskbench.RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	if !strings.Contains(out, "serialized load") {
		t.Errorf("format missing strategy label:\n%s", out)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("%d rows, want 2 (CPUs 2 and 4)", len(tbl.Rows))
	}
}

func TestFacadeRiskRun(t *testing.T) {
	book := riskbench.ToyPortfolio(20)
	val, err := riskbench.RiskEngine{Workers: 2}.Revalue(book, riskbench.StressScenarios())
	if err != nil {
		t.Fatal(err)
	}
	if val.TotalBase() <= 0 {
		t.Error("base value not positive")
	}
	pnls := val.PnLs()
	if len(pnls) != 4 {
		t.Fatalf("%d P&L entries", len(pnls))
	}
	// A long-call book loses in crashes even with the vol spike at these
	// maturities? Not necessarily — just check VaR is finite and ≥ 0.
	if v := riskbench.VaR(pnls, 0.9); v < 0 || math.IsNaN(v) {
		t.Errorf("VaR = %v", v)
	}
}
