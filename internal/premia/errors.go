package premia

import "errors"

// Sentinel errors of the pricing layer. Validation failures wrap these, so
// callers can classify failures with errors.Is across the farm boundary's
// fmt.Errorf chains — e.g. to tell a misconfigured portfolio (unknown
// method) from a data problem (missing parameter).
var (
	// ErrUnknownMethod marks a method name absent from the registry.
	ErrUnknownMethod = errors.New("premia: unknown method")
	// ErrUnknownModel marks a model the selected method does not support
	// (or an asset-class mismatch between problem and method).
	ErrUnknownModel = errors.New("premia: unknown model")
	// ErrUnknownOption marks an option the selected method does not
	// support.
	ErrUnknownOption = errors.New("premia: unknown option")
	// ErrMissingParam marks a required numeric parameter absent from the
	// problem's parameter table.
	ErrMissingParam = errors.New("premia: missing parameter")
)
