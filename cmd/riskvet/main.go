// Command riskvet runs the project's static analysis suite: the six
// analyzers in internal/lint that machine-check the invariants the
// benchmark's verifiability rests on (deterministic randomness, map
// iteration order, the virtual clock, context plumbing, wire struct
// shapes, metric name grammar).
//
// Usage:
//
//	riskvet [packages...]        lint the named module packages (default all)
//	riskvet -list                print the analyzers and what they enforce
//	riskvet -write-wireshape     regenerate wireshape.lock files (refuses
//	                             to bless shape changes without a proto bump)
//
// Exit status is 1 when any diagnostic survives the //lint:allow
// directives, so `make lint` fails the build on a violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"riskbench/internal/lint"
)

func main() {
	var (
		root      = flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		writeLock = flag.Bool("write-wireshape", false, "regenerate wireshape.lock files and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fatal(err)
	}

	if *writeLock {
		if err := writeWireshape(loader); err != nil {
			fatal(err)
		}
		return
	}

	var diags []lint.Diagnostic
	if args := flag.Args(); len(args) > 0 {
		for _, path := range args {
			if !strings.HasPrefix(path, loader.ModulePath) {
				path = loader.ModulePath + "/" + strings.TrimPrefix(path, "./")
			}
			pkg, err := loader.Load(path)
			if err != nil {
				fatal(err)
			}
			diags = append(diags, lint.Run(pkg, lint.All())...)
		}
	} else {
		diags, err = lint.RunAll(loader, lint.All())
		if err != nil {
			fatal(err)
		}
	}
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "riskvet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeWireshape regenerates every wireshape.lock in the module.
func writeWireshape(loader *lint.Loader) error {
	paths, err := loader.ModulePackages()
	if err != nil {
		return err
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		changed, err := lint.RegenerateLock(pkg)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if changed {
			fmt.Printf("riskvet: rewrote %s/%s\n", path, lint.LockFileName)
		}
	}
	return nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("riskvet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riskvet:", err)
	os.Exit(2)
}
