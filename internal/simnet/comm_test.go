package simnet

import (
	"math"
	"strings"
	"testing"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
)

// flatLink has zero costs so logical tests are unpolluted by timing.
var flatLink = LinkConfig{}

func TestSimSendRecv(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	var got []byte
	var st mpi.Status
	e.Go("sender", func(p *Proc) {
		w.Comm(0).Bind(p)
		if err := w.Comm(0).Send([]byte("virtual"), 1, 4); err != nil {
			t.Error(err)
		}
	})
	e.Go("receiver", func(p *Proc) {
		w.Comm(1).Bind(p)
		var err error
		got, st, err = w.Comm(1).Recv(0, 4)
		if err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "virtual" || st.Source != 0 || st.Tag != 4 || st.Bytes != 7 {
		t.Fatalf("got %q %+v", got, st)
	}
}

func TestSimMessageTiming(t *testing.T) {
	link := LinkConfig{Latency: 0.5, Bandwidth: 1000, SendOverhead: 0.1, RecvOverhead: 0.05}
	e := NewEngine()
	w := NewWorld(e, 2, link)
	var sendDone, recvDone float64
	e.Go("sender", func(p *Proc) {
		w.Comm(0).Bind(p)
		if err := w.Comm(0).Send(make([]byte, 1000), 1, 0); err != nil { // 1 s of transfer
			t.Error(err)
		}
		sendDone = p.Now()
	})
	e.Go("receiver", func(p *Proc) {
		w.Comm(1).Bind(p)
		if _, _, err := w.Comm(1).Recv(0, 0); err != nil {
			t.Error(err)
		}
		recvDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Sender: overhead 0.1 + transfer 1.0 = 1.1.
	if math.Abs(sendDone-1.1) > 1e-12 {
		t.Errorf("send done at %v, want 1.1", sendDone)
	}
	// Receiver: arrival 1.1 + latency 0.5, + recv overhead 0.05 = 1.65.
	if math.Abs(recvDone-1.65) > 1e-12 {
		t.Errorf("recv done at %v, want 1.65", recvDone)
	}
}

func TestSimProbeDoesNotConsume(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	e.Go("sender", func(p *Proc) {
		w.Comm(0).Bind(p)
		_ = w.Comm(0).Send([]byte{1, 2, 3}, 1, 7)
	})
	e.Go("receiver", func(p *Proc) {
		c := w.Comm(1)
		c.Bind(p)
		st, err := c.Probe(mpi.AnySource, mpi.AnyTag)
		if err != nil || st.Bytes != 3 {
			t.Errorf("probe %v %v", st, err)
		}
		data, _, err := c.Recv(st.Source, st.Tag)
		if err != nil || len(data) != 3 {
			t.Errorf("recv after probe: %v %v", data, err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimTagSelectivity(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	e.Go("sender", func(p *Proc) {
		w.Comm(0).Bind(p)
		_ = w.Comm(0).Send([]byte("one"), 1, 1)
		_ = w.Comm(0).Send([]byte("two"), 1, 2)
	})
	e.Go("receiver", func(p *Proc) {
		c := w.Comm(1)
		c.Bind(p)
		d2, _, err := c.Recv(0, 2)
		if err != nil || string(d2) != "two" {
			t.Errorf("tag 2: %q %v", d2, err)
		}
		d1, _, err := c.Recv(0, 1)
		if err != nil || string(d1) != "one" {
			t.Errorf("tag 1: %q %v", d1, err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimComputeOccupiesWorker(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 1, flatLink)
	e.Go("w", func(p *Proc) {
		c := w.Comm(0)
		c.Bind(p)
		c.Compute(42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 42 {
		t.Fatalf("clock %v, want 42", e.Now())
	}
}

func TestSimObjectTransmission(t *testing.T) {
	// The mpi object helpers must work over the simulated transport too.
	e := NewEngine()
	w := NewWorld(e, 2, DefaultGigE)
	h := nsp.NewHash()
	h.Set("K", nsp.Scalar(100))
	h.Set("method", nsp.Str("CF_Call"))
	e.Go("m", func(p *Proc) {
		w.Comm(0).Bind(p)
		if err := mpi.SendObj(w.Comm(0), h, 1, 3); err != nil {
			t.Error(err)
		}
	})
	e.Go("s", func(p *Proc) {
		w.Comm(1).Bind(p)
		o, _, err := mpi.RecvObj(w.Comm(1), 0, 3)
		if err != nil {
			t.Error(err)
			return
		}
		if !o.Equal(h) {
			t.Error("object corrupted in simulation")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimRecvBeforeSendBlocks(t *testing.T) {
	// Receiver posts first; sender arrives later; both finish.
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	var recvAt float64
	e.Go("receiver", func(p *Proc) {
		w.Comm(1).Bind(p)
		if _, _, err := w.Comm(1).Recv(mpi.AnySource, mpi.AnyTag); err != nil {
			t.Error(err)
		}
		recvAt = p.Now()
	})
	e.Go("sender", func(p *Proc) {
		w.Comm(0).Bind(p)
		p.Sleep(3)
		_ = w.Comm(0).Send([]byte("late"), 1, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 3 {
		t.Fatalf("recv completed at %v, want 3", recvAt)
	}
}

func TestSimDeadlockWhenNoSender(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	e.Go("receiver", func(p *Proc) {
		w.Comm(1).Bind(p)
		_, _, _ = w.Comm(1).Recv(0, 0)
	})
	if _, ok := e.Run().(*ErrDeadlock); !ok {
		t.Fatal("expected deadlock")
	}
}

func TestSimUnboundCommErrors(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	if err := w.Comm(0).Send(nil, 1, 0); err == nil {
		t.Fatal("unbound send succeeded")
	}
	if _, err := w.Comm(0).Probe(0, 0); err == nil {
		t.Fatal("unbound probe succeeded")
	}
	if _, _, err := w.Comm(0).Recv(0, 0); err == nil {
		t.Fatal("unbound recv succeeded")
	}
}

func TestNFSCacheSemantics(t *testing.T) {
	cfg := NFSConfig{ServerTime: 1, Bandwidth: 1000, Latency: 0.5, CacheHitTime: 0.001}
	e := NewEngine()
	fs := NewNFS(cfg)
	var times []float64
	e.Go("client", func(p *Proc) {
		start := p.Now()
		fs.Read(p, 1, "a.bin", 1000) // miss: 0.5 + (1 + 1) = 2.5
		times = append(times, p.Now()-start)
		start = p.Now()
		fs.Read(p, 1, "a.bin", 1000) // hit: 0.001
		times = append(times, p.Now()-start)
		start = p.Now()
		fs.Read(p, 2, "a.bin", 1000) // different node: miss again
		times = append(times, p.Now()-start)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(times[0]-2.5) > 1e-12 {
		t.Errorf("first read %v, want 2.5", times[0])
	}
	if math.Abs(times[1]-0.001) > 1e-12 {
		t.Errorf("cached read %v, want 0.001", times[1])
	}
	if math.Abs(times[2]-2.5) > 1e-12 {
		t.Errorf("other-node read %v, want 2.5", times[2])
	}
	hits, misses := fs.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats %d/%d", hits, misses)
	}
}

func TestNFSServerContention(t *testing.T) {
	// Two cold clients reading different files queue at the server.
	cfg := NFSConfig{ServerTime: 1, Latency: 0, CacheHitTime: 0}
	e := NewEngine()
	fs := NewNFS(cfg)
	var finish []float64
	for i := 0; i < 2; i++ {
		node := i + 1
		e.Go("client", func(p *Proc) {
			fs.Read(p, node, "file", 0)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finish[0] != 1 || finish[1] != 2 {
		t.Fatalf("finish %v, want [1 2]", finish)
	}
}

func TestNFSWarm(t *testing.T) {
	cfg := NFSConfig{ServerTime: 10, CacheHitTime: 0.01}
	e := NewEngine()
	fs := NewNFS(cfg)
	fs.Warm([]int{1, 2}, []string{"x", "y"})
	e.Go("c", func(p *Proc) {
		fs.Read(p, 1, "x", 100)
		fs.Read(p, 2, "y", 100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() > 0.05 {
		t.Fatalf("warm reads took %v", e.Now())
	}
	if hits, misses := fs.Stats(); hits != 2 || misses != 0 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestNodeSpeedStretchesCompute(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 2, flatLink)
	w.SetSpeed(1, 0.5)
	var fast, slow float64
	e.Go("fast", func(p *Proc) {
		c := w.Comm(0)
		c.Bind(p)
		c.Compute(10)
		fast = p.Now()
	})
	e.Go("slow", func(p *Proc) {
		c := w.Comm(1)
		c.Bind(p)
		c.Compute(10)
		slow = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fast != 10 || slow != 20 {
		t.Fatalf("fast %v slow %v, want 10 and 20", fast, slow)
	}
	if w.BusyTime(0) != 10 || w.BusyTime(1) != 20 {
		t.Fatalf("busy times %v %v", w.BusyTime(0), w.BusyTime(1))
	}
	if u := w.Utilization(1); math.Abs(u-1.0) > 1e-12 {
		t.Fatalf("slow node utilisation %v, want 1", u)
	}
	if u := w.Utilization(0); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("fast node utilisation %v, want 0.5 (idle half the run)", u)
	}
}

func TestSetSpeedRejectsNonPositive(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 1, flatLink)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.SetSpeed(0, 0)
}

func TestComputeZeroIsFree(t *testing.T) {
	e := NewEngine()
	w := NewWorld(e, 1, flatLink)
	e.Go("p", func(p *Proc) {
		c := w.Comm(0)
		c.Bind(p)
		c.Compute(0)
		c.Compute(-1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 || w.BusyTime(0) != 0 {
		t.Fatal("zero compute advanced the clock")
	}
}

func TestTracerRecordsEvents(t *testing.T) {
	e := NewEngine()
	tr := &Tracer{}
	e.SetTracer(tr)
	w := NewWorld(e, 2, flatLink)
	fs := NewNFS(NFSConfig{ServerTime: 0.1, CacheHitTime: 0.001})
	e.Go("sender", func(p *Proc) {
		c := w.Comm(0)
		c.Bind(p)
		c.Compute(1)
		_ = c.Send([]byte("x"), 1, 3)
	})
	e.Go("receiver", func(p *Proc) {
		c := w.Comm(1)
		c.Bind(p)
		_, _, _ = c.Recv(0, 3)
		fs.Read(p, 1, "f.bin", 100)
		fs.Read(p, 1, "f.bin", 100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range tr.Events {
		kinds[ev.Kind]++
	}
	if kinds["compute"] != 1 || kinds["send"] != 1 || kinds["recv"] != 1 || kinds["nfs"] != 2 {
		t.Fatalf("event counts %v", kinds)
	}
	// Times are non-decreasing.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].T < tr.Events[i-1].T {
			t.Fatal("trace out of order")
		}
	}
	sum := tr.Summary()
	for _, want := range []string{"events", "send=1", "nfs=2"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestTracerLimit(t *testing.T) {
	e := NewEngine()
	tr := &Tracer{Limit: 3}
	e.SetTracer(tr)
	w := NewWorld(e, 1, flatLink)
	e.Go("p", func(p *Proc) {
		c := w.Comm(0)
		c.Bind(p)
		for i := 0; i < 10; i++ {
			c.Compute(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 || tr.Dropped != 7 {
		t.Fatalf("events %d dropped %d", len(tr.Events), tr.Dropped)
	}
	if !strings.Contains(tr.Summary(), "dropped") {
		t.Error("summary hides drops")
	}
}

func TestNilTracerIsFree(t *testing.T) {
	// No tracer attached: everything still works (nil receiver emit).
	e := NewEngine()
	w := NewWorld(e, 1, flatLink)
	e.Go("p", func(p *Proc) {
		c := w.Comm(0)
		c.Bind(p)
		c.Compute(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
