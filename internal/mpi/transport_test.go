package mpi

import (
	"bytes"
	"io"
	"os"
	"strings"
	"sync"
	"testing"

	"riskbench/internal/nsp"
)

func TestLookupTransport(t *testing.T) {
	for _, name := range []string{"", "tcp", "unix", "inproc"} {
		tr, err := LookupTransport(name)
		if err != nil {
			t.Fatalf("LookupTransport(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "tcp"
		}
		if tr.Name() != want {
			t.Fatalf("LookupTransport(%q).Name() = %q", name, tr.Name())
		}
	}
	if _, err := LookupTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport looked up without error")
	} else if !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("error %q does not name the transport", err)
	}
	names := Transports()
	for _, want := range []string{"inproc", "tcp", "unix"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("Transports() = %v, missing %q", names, want)
		}
	}
}

func TestRegisterTransportDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterTransport(tcpTransport{})
}

// startTransportWorld is startTCPWorld generalized over the registry.
func startTransportWorld(t *testing.T, transport string, size int) (*HubComm, []*WorkerComm) {
	t.Helper()
	return startWorldWith(t, size, WorldOptions{Transport: transport}, WorldOptions{})
}

// TestTransportWorlds runs the same correctness suite over every
// built-in transport: handshake rank assignment, hub round trips,
// worker-to-worker routing and object transmission.
func TestTransportWorlds(t *testing.T) {
	for _, transport := range []string{"tcp", "unix", "inproc"} {
		t.Run(transport, func(t *testing.T) {
			hub, workers := startTransportWorld(t, transport, 4)
			if hub.Rank() != 0 || hub.Size() != 4 {
				t.Fatalf("hub rank/size = %d/%d", hub.Rank(), hub.Size())
			}
			seen := map[int]bool{}
			for _, w := range workers {
				if w.Size() != 4 || w.Rank() < 1 || w.Rank() > 3 || seen[w.Rank()] {
					t.Fatalf("bad worker rank/size %d/%d", w.Rank(), w.Size())
				}
				seen[w.Rank()] = true
			}

			// Hub → worker → hub echoes, all ranks concurrently.
			var wg sync.WaitGroup
			for _, w := range workers {
				wg.Add(1)
				go func(w *WorkerComm) {
					defer wg.Done()
					data, st, err := w.Recv(0, AnyTag)
					if err != nil {
						return
					}
					_ = w.Send(append(data, byte(w.Rank())), 0, st.Tag)
				}(w)
			}
			for r := 1; r <= 3; r++ {
				if err := hub.Send([]byte{9}, r, 5); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				data, st, err := hub.Recv(AnySource, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(data) != 2 || data[0] != 9 || int(data[1]) != st.Source {
					t.Fatalf("echo mismatch: % x from %d", data, st.Source)
				}
			}
			wg.Wait()

			// Worker to worker via the hub router.
			w1, w2 := workers[0], workers[1]
			go func() { _ = w1.Send([]byte("peer"), w2.Rank(), 9) }()
			data, st, err := w2.Recv(w1.Rank(), 9)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "peer" || st.Source != w1.Rank() {
				t.Fatalf("got %q from %d", data, st.Source)
			}

			// Structured objects survive the framed wire.
			h := nsp.NewHash()
			h.Set("A", nsp.RowVec(3.14, 2.71))
			h.Set("msg", nsp.Str("over "+transport))
			go func() { _ = SendObj(hub, h, 1, 2) }()
			got, _, err := RecvObj(workers[0], 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(h) {
				t.Fatalf("object corrupted over %s", transport)
			}
		})
	}
}

// TestUnixEphemeralSocket checks the unix transport's ephemeral
// addressing: an empty address binds a fresh socket under the temp
// directory, and closing the hub unlinks it.
func TestUnixEphemeralSocket(t *testing.T) {
	hub, err := ListenHubWith("", 2, WorldOptions{Transport: "unix"})
	if err != nil {
		t.Fatal(err)
	}
	path := hub.Addr()
	info, err := os.Lstat(path)
	if err != nil {
		t.Fatalf("socket path %q: %v", path, err)
	}
	if info.Mode()&os.ModeSocket == 0 {
		t.Fatalf("%q is not a socket", path)
	}
	hub.Close()
	if _, err := os.Lstat(path); !os.IsNotExist(err) {
		t.Fatalf("socket %q not unlinked on close (err=%v)", path, err)
	}
}

// TestTransportCloseUnblocksWorker generalizes the shutdown contract:
// closing the hub must unblock a worker parked in Recv, on any
// transport.
func TestTransportCloseUnblocksWorker(t *testing.T) {
	for _, transport := range []string{"tcp", "unix", "inproc"} {
		t.Run(transport, func(t *testing.T) {
			hub, workers := startTransportWorld(t, transport, 2)
			done := make(chan error, 1)
			go func() {
				_, _, err := workers[0].Recv(0, 0)
				done <- err
			}()
			hub.Close()
			if err := <-done; err == nil {
				t.Fatal("worker Recv returned nil after hub close")
			}
		})
	}
}

// BenchmarkFrameCodecRead measures the codec's receive path: after the
// scratch buffer warms up, reading a frame should allocate nothing.
func BenchmarkFrameCodecRead(b *testing.B) {
	payload := make([]byte, 4096)
	var buf bytes.Buffer
	if err := writeFrame(&buf, 1, 0, 3, payload); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	fc := newFrameCodec(ProtoLatest)
	r := bytes.NewReader(frame)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, _, _, err := fc.readFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameCodecWrite measures the send path, which should never
// allocate.
func BenchmarkFrameCodecWrite(b *testing.B) {
	payload := make([]byte, 4096)
	fc := newFrameCodec(ProtoLatest)
	b.SetBytes(int64(len(payload)) + 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fc.writeFrame(io.Discard, 1, 0, 3, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHubRoundTrip measures a full request/response over each real
// transport: one 4 KiB frame out, one back, through the framed hub.
func BenchmarkHubRoundTrip(b *testing.B) {
	for _, transport := range []string{"tcp", "unix", "inproc"} {
		b.Run(transport, func(b *testing.B) {
			hub, err := ListenHubWith("", 2, WorldOptions{Transport: transport})
			if err != nil {
				b.Fatal(err)
			}
			defer hub.Close()
			accepted := make(chan error, 1)
			go func() { accepted <- hub.WaitWorkers() }()
			w, err := DialHubWith(hub.Addr(), WorldOptions{Transport: transport})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			if err := <-accepted; err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					data, st, err := w.Recv(0, AnyTag)
					if err != nil {
						return
					}
					if err := w.Send(data, 0, st.Tag); err != nil {
						return
					}
				}
			}()
			payload := make([]byte, 4096)
			b.SetBytes(2 * int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := hub.Send(payload, 1, 1); err != nil {
					b.Fatal(err)
				}
				if _, _, err := hub.Recv(1, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
