package premia

import (
	"math"
	"testing"

	"riskbench/internal/mathutil"
)

func mertonProblem(option, method string) *Problem {
	return New().
		SetModel(ModelMerton).SetOption(option).SetMethod(method).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0.01).Set("sigma", 0.2).
		Set("lambda", 0.8).Set("muJ", -0.1).Set("sigmaJ", 0.25).
		Set("K", 100).Set("T", 1)
}

func TestMertonDegeneratesToBS(t *testing.T) {
	// λ→0 (no jumps): Merton must equal Black–Scholes.
	p := mertonProblem(OptCallEuro, MethodCFMerton).Set("lambda", 1e-12)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0.01).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-bs.Price) > 1e-8 {
		t.Errorf("Merton λ→0 = %v, BS = %v", res.Price, bs.Price)
	}
}

func TestMertonJumpsRaiseOTMPrices(t *testing.T) {
	// Jump risk fattens the tails: OTM options are worth more than under
	// pure Black–Scholes with the same diffusion volatility.
	merton, err := mertonProblem(OptPutEuro, MethodCFMerton).Set("K", 70).Compute()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := New().SetModel(ModelBS1D).SetOption(OptPutEuro).SetMethod(MethodCFPut).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0.01).Set("sigma", 0.2).
		Set("K", 70).Set("T", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if merton.Price <= bs.Price {
		t.Errorf("Merton OTM put %v not above BS %v", merton.Price, bs.Price)
	}
}

func TestMertonPutCallParity(t *testing.T) {
	call, err := mertonProblem(OptCallEuro, MethodCFMerton).Compute()
	if err != nil {
		t.Fatal(err)
	}
	put, err := mertonProblem(OptPutEuro, MethodCFMerton).Compute()
	if err != nil {
		t.Fatal(err)
	}
	want := 100*math.Exp(-0.01) - 100*math.Exp(-0.05)
	if math.Abs(call.Price-put.Price-want) > 1e-8 {
		t.Errorf("Merton parity: C-P = %v, want %v", call.Price-put.Price, want)
	}
}

func TestMertonCFAgainstMC(t *testing.T) {
	cf, err := mertonProblem(OptCallEuro, MethodCFMerton).Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := mertonProblem(OptCallEuro, MethodMCMerton).Set("paths", 200000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cf.Price - mc.Price); diff > 3*mc.PriceCI {
		t.Errorf("Merton CF %v vs MC %v ± %v", cf.Price, mc.Price, mc.PriceCI)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := mathutil.NewRNG(5)
	for _, mean := range []float64{0.3, 2, 8, 25, 50} {
		var w mathutil.Welford
		for i := 0; i < 50000; i++ {
			w.Add(float64(poisson(rng, mean)))
		}
		if math.Abs(w.Mean()-mean) > 0.05*mean+0.05 {
			t.Errorf("λ=%v: mean %v", mean, w.Mean())
		}
		if math.Abs(w.Variance()-mean) > 0.1*mean+0.1 {
			t.Errorf("λ=%v: variance %v", mean, w.Variance())
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestDigitalKnownValueAndBounds(t *testing.T) {
	// Digital call + digital put = discounted bond.
	call, err := bsProblem(OptDigitalCall, MethodCFDigital, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	put, err := bsProblem(OptDigitalPut, MethodCFDigital, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	df := math.Exp(-0.05)
	if math.Abs(call.Price+put.Price-df) > 1e-12 {
		t.Errorf("digital parity: %v + %v != %v", call.Price, put.Price, df)
	}
	if call.Price <= 0 || call.Price >= df {
		t.Errorf("digital call %v outside (0, %v)", call.Price, df)
	}
	if call.Delta <= 0 {
		t.Errorf("digital call delta %v not positive", call.Delta)
	}
}

func TestDigitalIsStrikeDerivativeOfCall(t *testing.T) {
	// e^{-rT}·N(d2) = −∂C/∂K: check against a finite difference of the
	// vanilla closed form.
	digital, err := bsProblem(OptDigitalCall, MethodCFDigital, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-4
	up, err := bsProblem(OptCallEuro, MethodCFCall, 100+h, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	dn, err := bsProblem(OptCallEuro, MethodCFCall, 100-h, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	want := -(up.Price - dn.Price) / (2 * h)
	if math.Abs(digital.Price-want) > 1e-6 {
		t.Errorf("digital %v vs -dC/dK %v", digital.Price, want)
	}
}

func asianProblem(option string) *Problem {
	return New().
		SetModel(ModelBS1D).SetOption(option).SetMethod(MethodMCAsianCV).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0).Set("sigma", 0.25).
		Set("K", 100).Set("T", 1).Set("fixings", 12)
}

func TestAsianBelowVanilla(t *testing.T) {
	// Averaging reduces volatility: the Asian call is cheaper than the
	// European call with the same strike.
	asian, err := asianProblem(OptAsianCallFix).Set("paths", 50000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).Set("K", 100).Set("T", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if asian.Price >= vanilla.Price {
		t.Errorf("Asian %v not below vanilla %v", asian.Price, vanilla.Price)
	}
	if asian.Price <= 0 {
		t.Errorf("Asian price %v not positive", asian.Price)
	}
}

func TestAsianAboveGeometric(t *testing.T) {
	// Arithmetic mean ≥ geometric mean ⇒ arithmetic Asian call ≥
	// geometric Asian call.
	asian, err := asianProblem(OptAsianCallFix).Set("paths", 100000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	m := bsParams{S0: 100, R: 0.05, Div: 0, Sigma: 0.25}
	geo := geomAsianCF(m, 100, 1, 12, true)
	if asian.Price < geo-3*asian.PriceCI {
		t.Errorf("arithmetic Asian %v below geometric %v", asian.Price, geo)
	}
	// And close: the gap is typically a small fraction of the price.
	if asian.Price > geo*1.1 {
		t.Errorf("arithmetic Asian %v implausibly far above geometric %v", asian.Price, geo)
	}
}

func TestAsianControlVariateReducesVariance(t *testing.T) {
	// The reported CI with the control variate must be far smaller than
	// the plain arithmetic estimator's CI at the same path count.
	p := asianProblem(OptAsianCallFix).Set("paths", 20000)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	// Plain-MC standard error of the arithmetic payoff is ~W/√n where the
	// payoff stdev is a few units of currency; the CV typically cuts the
	// CI by an order of magnitude.
	if res.PriceCI > 0.02 {
		t.Errorf("control-variate CI %v too wide (variance reduction failed?)", res.PriceCI)
	}
	if res.PriceCI <= 0 {
		t.Error("no CI reported")
	}
}

func TestAsianPut(t *testing.T) {
	res, err := asianProblem(OptAsianPutFix).Set("paths", 50000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	m := bsParams{S0: 100, R: 0.05, Div: 0, Sigma: 0.25}
	geo := geomAsianCF(m, 100, 1, 12, false)
	// Arithmetic mean ≥ geometric mean ⇒ the *put* ordering reverses:
	// (K−Ā)⁺ ≤ (K−G)⁺ pathwise.
	if res.Price > geo+3*res.PriceCI+1e-9 {
		t.Errorf("arithmetic Asian put %v above geometric %v", res.Price, geo)
	}
	if res.Price <= 0 {
		t.Errorf("Asian put price %v not positive", res.Price)
	}
}

func TestGeomAsianManyFixingsConverges(t *testing.T) {
	// As n→∞ the discrete geometric Asian approaches the continuous one
	// (σ/√3 volatility, known drift): sanity-check monotone convergence.
	m := bsParams{S0: 100, R: 0.05, Div: 0, Sigma: 0.3}
	// The averaging variance (n+1)(2n+1)/6n² decreases in n, so the call
	// value decreases monotonically toward the continuous limit.
	prev := geomAsianCF(m, 100, 1, 4, true)
	for _, n := range []int{16, 64, 256, 1024} {
		cur := geomAsianCF(m, 100, 1, n, true)
		if cur > prev+1e-12 {
			t.Fatalf("geometric Asian increased from %v to %v at n=%d", prev, cur, n)
		}
		prev = cur
	}
	// Continuous limit: effective vol σ√(1/3), effective carry
	// (r − σ²/6)/2 … just check the n=1024 value is within a few cents of
	// n=4096.
	if math.Abs(geomAsianCF(m, 100, 1, 4096, true)-prev) > 0.01 {
		t.Error("geometric Asian not converging in the number of fixings")
	}
}

func TestLookbackCFAgainstMC(t *testing.T) {
	cf, err := bsProblem(OptLookbackCallFloat, MethodCFLookback, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := bsProblem(OptLookbackCallFloat, MethodMCLookback, 100, 1).
		Set("paths", 60000).Set("mcsteps", 64).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cf.Price - mc.Price); diff > 4*mc.PriceCI+0.05 {
		t.Errorf("lookback CF %v vs bridge-MC %v ± %v", cf.Price, mc.Price, mc.PriceCI)
	}
}

func TestLookbackDominatesATMCall(t *testing.T) {
	// S_T − min S ≥ (S_T − S_0)⁺, so the lookback is worth at least the
	// at-the-money vanilla call.
	lb, err := bsProblem(OptLookbackCallFloat, MethodCFLookback, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	atm, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if lb.Price <= atm.Price {
		t.Errorf("lookback %v not above ATM call %v", lb.Price, atm.Price)
	}
}

func TestLookbackRejectsZeroCarry(t *testing.T) {
	p := bsProblem(OptLookbackCallFloat, MethodCFLookback, 100, 1).
		Set("r", 0.02).Set("divid", 0.02)
	if _, err := p.Compute(); err == nil {
		t.Fatal("zero-carry lookback accepted (formula degenerates)")
	}
}

func TestExoticRegistryEntries(t *testing.T) {
	for _, m := range []string{MethodCFMerton, MethodMCMerton, MethodCFDigital, MethodMCAsianCV, MethodCFLookback, MethodMCLookback} {
		models, options := Compatibles(m)
		if len(models) == 0 || len(options) == 0 {
			t.Errorf("method %s not registered", m)
		}
	}
	if !MethodSupports(MethodCFMerton, ModelMerton, OptPutEuro) {
		t.Error("CF_Merton should price Merton puts")
	}
	if MethodSupports(MethodCFMerton, ModelBS1D, OptPutEuro) {
		t.Error("CF_Merton should not price BS puts")
	}
}

func TestQMCBasketMatchesMC(t *testing.T) {
	base := func(method string) *Problem {
		return New().
			SetModel(ModelBSND).SetOption(OptPutBasketEuro).SetMethod(method).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).
			Set("dim", 10).Set("rho", 0.3).Set("K", 100).Set("T", 1)
	}
	mc, err := base(MethodMCBasket).Set("paths", 200000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := base(MethodQMCBasket).Set("paths", 32768).Set("rotations", 8).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(mc.Price - qmc.Price); diff > 3*(mc.PriceCI+qmc.PriceCI)+0.02 {
		t.Errorf("QMC %v ± %v vs MC %v ± %v", qmc.Price, qmc.PriceCI, mc.Price, mc.PriceCI)
	}
}

func TestQMCBasketDim1MatchesCF(t *testing.T) {
	cf, err := New().SetModel(ModelBS1D).SetOption(OptPutEuro).SetMethod(MethodCFPut).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).Set("K", 100).Set("T", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := New().
		SetModel(ModelBSND).SetOption(OptPutBasketEuro).SetMethod(MethodQMCBasket).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).
		Set("dim", 1).Set("K", 100).Set("T", 1).
		Set("paths", 65536).Set("rotations", 8).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cf.Price - qmc.Price); diff > 0.02 {
		t.Errorf("QMC dim-1 %v vs CF %v (diff %v)", qmc.Price, cf.Price, diff)
	}
}

func TestQMCTighterThanMCAtSameBudget(t *testing.T) {
	// The headline property: at equal path budgets the randomized-QMC CI
	// is materially tighter than the MC CI for a smooth 5-d payoff.
	base := func(method string) *Problem {
		return New().
			SetModel(ModelBSND).SetOption(OptPutBasketEuro).SetMethod(method).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).
			Set("dim", 5).Set("rho", 0.3).Set("K", 100).Set("T", 1).
			Set("paths", 32768)
	}
	mc, err := base(MethodMCBasket).Compute()
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := base(MethodQMCBasket).Set("rotations", 8).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if qmc.PriceCI >= mc.PriceCI {
		t.Errorf("QMC CI %v not tighter than MC CI %v", qmc.PriceCI, mc.PriceCI)
	}
}

func TestQMCRejectsHugeDim(t *testing.T) {
	p := New().SetModel(ModelBSND).SetOption(OptPutBasketEuro).SetMethod(MethodQMCBasket).
		Set("S0", 100).Set("sigma", 0.2).Set("dim", 100).Set("K", 100).Set("T", 1)
	if _, err := p.Compute(); err == nil {
		t.Fatal("dim 100 accepted beyond the Halton table")
	}
}
