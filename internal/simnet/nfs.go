package simnet

// NFSConfig models the shared file system of the paper's cluster.
type NFSConfig struct {
	// ServerTime is the per-request service time at the NFS server
	// (lookup + read syscall handling), in seconds.
	ServerTime float64
	// Bandwidth is the server's streaming throughput in bytes/second,
	// shared by all clients through the FIFO queue.
	Bandwidth float64
	// Latency is the client↔server round-trip latency per request.
	Latency float64
	// CacheHitTime is the cost of reading a file already in the node's
	// client cache.
	CacheHitTime float64
}

// DefaultNFS approximates a departmental NFS server on the same Gigabit
// network: ~200 µs RPC overhead, server shares the GigE pipe, cache hits
// are nearly free.
var DefaultNFS = NFSConfig{
	ServerTime:   200e-6,
	Bandwidth:    100e6,
	Latency:      150e-6,
	CacheHitTime: 8e-6,
}

// NFS is the simulated shared file system: one FIFO server resource plus a
// per-node client cache. The cache is what made the paper's NFS column
// overtake serialized-load at high CPU counts — and what made those
// numbers "highly biased" on repeat runs (§4.2).
type NFS struct {
	cfg    NFSConfig
	server Resource
	// cache[node][path] records client-cached files.
	cache map[int]map[string]bool
	// stats
	hits, misses int
}

// NewNFS creates a cold-cache file system model.
func NewNFS(cfg NFSConfig) *NFS {
	return &NFS{cfg: cfg, cache: make(map[int]map[string]bool)}
}

// ResetClock zeroes the server's queue state. Call it when reusing one
// NFS model (for its client caches) across separate simulation runs: the
// FIFO server's availability timestamp belongs to the previous engine's
// virtual clock and would otherwise stall the new run's cold reads until
// that stale time.
func (n *NFS) ResetClock() {
	n.server = Resource{}
}

// Warm pre-populates every listed node's cache with the given paths,
// modelling the paper's re-run scenario where a previous execution already
// pulled the whole portfolio through NFS.
func (n *NFS) Warm(nodes []int, paths []string) {
	for _, node := range nodes {
		m := n.cache[node]
		if m == nil {
			m = make(map[string]bool, len(paths))
			n.cache[node] = m
		}
		for _, p := range paths {
			m[p] = true
		}
	}
}

// Read charges process p (running on the given node) the virtual cost of
// reading size bytes from path, then returns. A cache hit costs
// CacheHitTime; a miss queues at the server for ServerTime + size/Bandwidth
// and pays the RPC latency, then populates the node's cache.
func (n *NFS) Read(p *Proc, node int, path string, size int) {
	m := n.cache[node]
	if m != nil && m[path] {
		n.hits++
		p.eng.trace(p.name, "nfs", "hit "+path)
		p.Sleep(n.cfg.CacheHitTime)
		return
	}
	n.misses++
	p.eng.trace(p.name, "nfs", "miss "+path)
	p.Sleep(n.cfg.Latency)
	service := n.cfg.ServerTime
	if n.cfg.Bandwidth > 0 {
		service += float64(size) / n.cfg.Bandwidth
	}
	n.server.Use(p, service)
	if m == nil {
		m = make(map[string]bool)
		n.cache[node] = m
	}
	m[path] = true
}

// Stats returns the cache hit/miss counters.
func (n *NFS) Stats() (hits, misses int) { return n.hits, n.misses }
