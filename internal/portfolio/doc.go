// Package portfolio generates the three workloads of the paper's
// evaluation:
//
//   - Regression (§4.1): one instance of every pricing problem the library
//     can solve, at several parameter sets — Premia's non-regression test
//     suite, with a heterogeneous cost spectrum topped by ~30 s American
//     Monte Carlo runs (the flat makespan floor in Table I).
//   - Toy (§4.2): 10,000 plain-vanilla calls priced by closed formula,
//     each almost free to compute, built to expose the cost of the
//     communication strategies.
//   - Realistic (§4.3): the 7931-claim bank portfolio the paper assembles:
//     1952 vanilla calls, 1952 down-and-out barrier calls (PDE), 525
//     40-dimensional basket puts (Monte Carlo), 1025 local-volatility
//     calls (Monte Carlo), 1952 American puts (PDE) and 525
//     7-dimensional American basket puts (Longstaff–Schwartz), with the
//     strike/maturity grids of the paper.
//
// Every item carries both a real premia problem (so live farms can price
// it) and a virtual cost in seconds (so the simulated cluster can replay
// it at 512 CPUs). Virtual costs follow the paper's stated cost spectrum —
// vanillas effectively free, European MC/PDE in the middle, American
// products the most expensive — calibrated so the
// realistic portfolio's total work matches Table III's 2-CPU run and the
// regression suite matches Table I.
package portfolio
