package riskbench

import (
	"context"
	"net/http"
	"sync/atomic"

	"riskbench/internal/bench"
	"riskbench/internal/mpi"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/serve"
	"riskbench/internal/telemetry"
)

// Telemetry is a metrics registry: counters, gauges, latency histograms
// and spans. A nil *Telemetry is a valid no-op sink.
type Telemetry = telemetry.Registry

// Metrics is a frozen JSON-serializable snapshot of a Telemetry registry.
type Metrics = telemetry.Snapshot

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// MetricsHandler serves reg's snapshot as indented JSON, the endpoint the
// CLI tools expose behind their -telemetry flag.
func MetricsHandler(reg *Telemetry) http.Handler { return telemetry.Handler(reg) }

// processSink is the registry last installed by SetTelemetry; Snapshot
// falls back to the package default when none was installed.
var processSink atomic.Pointer[telemetry.Registry]

// SetTelemetry installs reg as the process-wide sink of the layers whose
// hot functions take no registry parameter: the pricing library
// (per-method compute time and work-unit throughput) and the message
// layer (messages/bytes per rank, pack/unpack time). Farm- and
// engine-level metrics are wired per call instead, through WithTelemetry
// or RiskEngine.Telemetry. Pass nil to disable the process-wide layers.
func SetTelemetry(reg *Telemetry) {
	premia.SetTelemetry(reg)
	mpi.SetTelemetry(reg)
	processSink.Store(reg)
}

// Snapshot freezes the process-wide telemetry: the registry installed by
// SetTelemetry, or the shared default registry when none was installed.
func Snapshot() Metrics {
	if reg := processSink.Load(); reg != nil {
		return reg.Snapshot()
	}
	return telemetry.Default.Snapshot()
}

// Sentinel errors of the pricing layer, for errors.Is classification
// through wrapped chains (including errors surfaced by farm results and
// the risk engine).
var (
	ErrUnknownMethod = premia.ErrUnknownMethod
	ErrUnknownModel  = premia.ErrUnknownModel
	ErrUnknownOption = premia.ErrUnknownOption
	ErrMissingParam  = premia.ErrMissingParam
)

// SetKernelThreads installs the process-wide default worker count of the
// multicore pricing kernel: every Problem.Compute whose problem carries
// no explicit "threads" parameter shards its path loop over this many
// goroutines. n < 1 (the initial state) means serial pricing. The result
// of a Monte Carlo method depends only on (seed, paths) — never on the
// thread count — so flipping this knob changes speed, not prices.
func SetKernelThreads(n int) { premia.SetKernelThreads(n) }

// config collects the knobs the functional options set; each consumer
// reads the subset that applies to it.
type config struct {
	workers       int
	batchSize     int
	maxCPUs       int
	kernelThreads int
	strategy      Strategy
	hasStrat      bool
	telemetry     *Telemetry
	cacheSize     int
	hasCache      bool
	maxInflight   int
	transport     string
}

// Option configures RunTableWith and NewEngine. Options not meaningful
// for a consumer are ignored: worker count and batch size configure the
// live risk engine, CPU truncation and the strategy override configure
// table sweeps, and the telemetry sink configures both.
type Option func(*config)

// WithWorkers sets the live engine's pricing-goroutine count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithBatchSize sets how many tasks travel per farm message.
func WithBatchSize(n int) Option {
	return func(c *config) { c.batchSize = n }
}

// WithKernelThreads sets the multicore pricing kernel's goroutine count
// for the claims an engine prices: the live risk engine stamps the value
// onto every task whose problem does not already carry a "threads"
// parameter, so each worker rank shards its Monte Carlo path loops over
// n cores. Prices are unaffected — the kernel's shard decomposition is
// thread-invariant. See also SetKernelThreads for the process-wide
// default.
func WithKernelThreads(n int) Option {
	return func(c *config) { c.kernelThreads = n }
}

// WithMaxCPUs truncates a table sweep's CPU counts, so quick benchmarks
// run a prefix of the paper's row set.
func WithMaxCPUs(n int) Option {
	return func(c *config) { c.maxCPUs = n }
}

// WithStrategy restricts a table sweep to one communication strategy,
// replacing the spec's strategy list.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s; c.hasStrat = true }
}

// WithTelemetry directs metrics into reg: table sweeps collect the
// per-row telemetry report rendered by Table.Format and merge per-run
// metrics into reg; the engine records its farm and phase metrics there.
func WithTelemetry(reg *Telemetry) Option {
	return func(c *config) { c.telemetry = reg }
}

// WithCache installs a sharded, content-addressed result cache holding
// at most entries pricing results (entries <= 0 selects the default
// size). On an engine, PriceBatch reads through it and RevalueContext
// reuses cached base-scenario prices; on a pricing server it is the
// serving-layer cache behind the singleflight group. Identical problems
// — same (model, option, method, params incl. seed) content key —
// return bit-identical cached results.
func WithCache(entries int) Option {
	return func(c *config) { c.cacheSize = entries; c.hasCache = true }
}

// WithTransport selects where an engine's (or pricing server's) farm
// workers live and how frames reach them:
//
//   - "local" or "" (the default): an in-process goroutine world per
//     round — mailboxes, no framing, the fastest same-process shape;
//   - "tcp", "unix", "inproc", or any transport registered with
//     mpi.RegisterTransport: a framed hub world on that transport, with
//     in-process goroutine workers dialing through the real wire — the
//     single-host deployment shape ("unix" skips the TCP/IP stack for
//     same-host pools; "tcp" is what cross-host fleets use).
//
// Framed transports run the versioned wire handshake per connection,
// so mixed-version fleets negotiate down to their common protocol
// subset during rolling upgrades. External worker pools (separate
// processes or hosts) configure risk.NetBackend directly instead.
func WithTransport(name string) Option {
	return func(c *config) { c.transport = name }
}

// WithMaxInflight bounds how many requests a pricing server admits
// concurrently; beyond the bound requests are shed with HTTP 429 +
// Retry-After instead of queueing without limit. Engines ignore it.
func WithMaxInflight(n int) Option {
	return func(c *config) { c.maxInflight = n }
}

// RunTableWith executes a table sweep under a context with options.
// RunTable(spec) is shorthand for RunTableWith(context.Background(),
// spec) with no options.
func RunTableWith(ctx context.Context, spec TableSpec, opts ...Option) (*Table, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.maxCPUs > 0 {
		spec.MaxCPUs = c.maxCPUs
	}
	if c.hasStrat {
		spec.Strategies = []Strategy{c.strategy}
	}
	return bench.RunTableContext(ctx, spec, c.telemetry)
}

// NewEngine returns a live-farm risk engine configured by the options
// (worker count, batch size, kernel threads, result cache, telemetry
// sink).
func NewEngine(opts ...Option) *RiskEngine {
	var c config
	for _, o := range opts {
		o(&c)
	}
	e := c.engine()
	if c.hasCache {
		e.Cache = serve.NewCache(c.cacheSize, c.telemetry)
	}
	return e
}

// engine builds the risk engine the options describe, including the
// farm backend the transport selects.
func (c config) engine() *risk.Engine {
	e := &risk.Engine{Workers: c.workers, BatchSize: c.batchSize, KernelThreads: c.kernelThreads, Telemetry: c.telemetry}
	if c.transport != "" && c.transport != "local" {
		// Goroutine workers over the real wire, each with its own
		// registry so spans travel by frame, not by shared memory.
		e.Backend = &risk.NetBackend{
			Transport: c.transport,
			Spawn:     risk.GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, 0),
		}
	}
	return e
}

// PriceOutcome is one problem's slot in an Engine.PriceBatch answer:
// the result, whether it came from the cache, and the per-problem
// error.
type PriceOutcome = risk.PriceOutcome

// PricingServer is the production pricing service: an HTTP/JSON front
// end (POST /price, POST /batch, GET /healthz, GET /metrics) whose
// dynamic micro-batcher coalesces concurrent requests into farm
// batches, with a content-addressed result cache, singleflight
// suppression of duplicate in-flight prices, and admission control
// (429 + Retry-After on overload). Stop it with Drain for a graceful
// shutdown that lets in-flight farm batches finish.
type PricingServer = serve.Server

// NewPricingServer builds and starts a pricing service over an engine
// configured by the options: worker count, farm batch size (also the
// micro-batcher's flush size), kernel threads, cache capacity
// (WithCache), admission bound (WithMaxInflight), worker transport
// (WithTransport) and telemetry sink.
// Serve its Handler with any http.Server; see cmd/riskserver for the
// deployable wrapper.
func NewPricingServer(opts ...Option) *PricingServer {
	var c config
	for _, o := range opts {
		o(&c)
	}
	cfg := serve.Config{Engine: c.engine(), MaxBatch: c.batchSize, MaxInflight: c.maxInflight, Telemetry: c.telemetry}
	if c.hasCache {
		cfg.CacheSize = c.cacheSize
		if cfg.CacheSize < 0 {
			cfg.CacheSize = 0 // <= 0 means default size, as WithCache documents
		}
	}
	return serve.New(cfg)
}
