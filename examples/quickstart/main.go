// Quickstart: price one option several independent ways and check that
// they agree — the smallest useful tour of the pricing library.
package main

import (
	"fmt"
	"log"

	"riskbench"
)

func main() {
	// An at-the-money European call under Black–Scholes.
	base := func() *riskbench.Problem {
		return riskbench.NewProblem().
			SetModel(riskbench.ModelBS1D).
			SetOption(riskbench.OptCallEuro).
			Set("S0", 100).Set("r", 0.05).Set("divid", 0.02).Set("sigma", 0.25).
			Set("K", 100).Set("T", 1)
	}

	fmt.Println("European call S0=100 K=100 T=1 r=5% q=2% σ=25%")
	fmt.Println()
	for _, m := range []struct {
		method string
		extra  map[string]float64
	}{
		{riskbench.MethodCFCall, nil},
		{riskbench.MethodTreeCRR, map[string]float64{"steps": 2000}},
		{riskbench.MethodFDCrank, map[string]float64{"nodes": 600, "steps": 300}},
		{riskbench.MethodMCEuro, map[string]float64{"paths": 200000}},
	} {
		p := base().SetMethod(m.method)
		for k, v := range m.extra {
			p.Set(k, v)
		}
		res, err := p.Compute()
		if err != nil {
			log.Fatalf("%s: %v", m.method, err)
		}
		ci := ""
		if res.PriceCI > 0 {
			ci = fmt.Sprintf(" ± %.4f", res.PriceCI)
		}
		fmt.Printf("  %-22s price %.4f%s   delta %.4f\n", m.method, res.Price, ci, res.Delta)
	}

	// An American put: the early-exercise premium must be positive.
	amer := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).SetOption(riskbench.OptPutAmer).SetMethod(riskbench.MethodFDBS).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).Set("K", 110).Set("T", 1)
	euro := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).SetOption(riskbench.OptPutEuro).SetMethod(riskbench.MethodCFPut).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).Set("K", 110).Set("T", 1)
	ra, err := amer.Compute()
	if err != nil {
		log.Fatal(err)
	}
	re, err := euro.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("American put %.4f vs European put %.4f (early-exercise premium %.4f)\n",
		ra.Price, re.Price, ra.Price-re.Price)
}
