package mpi

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Transport abstracts the byte pipes a hub/worker world is built on:
// something that can listen for peers and dial a listener. The frame
// codec, handshake and routing above it are transport-independent, so a
// registered transport immediately works with every backend and CLI
// that takes a -transport flag.
type Transport interface {
	// Name is the registry key ("tcp", "unix", "inproc", ...).
	Name() string
	// Listen binds a listener on addr. An empty addr selects a
	// transport-chosen ephemeral address (the ":0" idiom).
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener at addr.
	Dial(addr string) (net.Conn, error)
}

var (
	transportsMu sync.RWMutex
	transports   = make(map[string]Transport)
)

// RegisterTransport adds t to the registry; it panics on a duplicate
// name, like database/sql drivers, because registration is an init-time
// act.
func RegisterTransport(t Transport) {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	if _, dup := transports[t.Name()]; dup {
		panic(fmt.Sprintf("mpi: transport %q registered twice", t.Name()))
	}
	transports[t.Name()] = t
}

// LookupTransport returns the named transport; "" selects tcp, the
// historical default.
func LookupTransport(name string) (Transport, error) {
	if name == "" {
		name = "tcp"
	}
	transportsMu.RLock()
	defer transportsMu.RUnlock()
	t, ok := transports[name]
	if !ok {
		return nil, fmt.Errorf("mpi: unknown transport %q (have %v)", name, transportNamesLocked())
	}
	return t, nil
}

// Transports lists the registered transport names, sorted.
func Transports() []string {
	transportsMu.RLock()
	defer transportsMu.RUnlock()
	return transportNamesLocked()
}

func transportNamesLocked() []string {
	names := make([]string, 0, len(transports))
	for name := range transports {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterTransport(tcpTransport{})
	RegisterTransport(unixTransport{})
	RegisterTransport(&inprocTransport{worlds: make(map[string]*inprocListener)})
}

// tcpTransport is the original cross-host transport.
type tcpTransport struct{}

func (tcpTransport) Name() string { return "tcp" }

func (tcpTransport) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

func (tcpTransport) Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// unixSeq makes ephemeral unix socket paths unique within the process.
var unixSeq atomic.Int64

// unixTransport runs worlds over unix-domain stream sockets: the
// same-host worker-pool shape, skipping the TCP/IP stack entirely. addr
// is a filesystem path; empty picks a fresh socket under the default
// temp directory. The listener unlinks its socket file on Close (the
// net package's unlink-on-close default for listeners it created).
type unixTransport struct{}

func (unixTransport) Name() string { return "unix" }

func (unixTransport) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = filepath.Join(os.TempDir(),
			fmt.Sprintf("riskbench-%d-%d.sock", os.Getpid(), unixSeq.Add(1)))
	} else if info, err := os.Lstat(addr); err == nil && info.Mode()&os.ModeSocket != 0 {
		// A stale socket left by a crashed hub would fail the bind;
		// only ever remove things that are actually sockets.
		_ = os.Remove(addr)
	}
	return net.Listen("unix", addr)
}

func (unixTransport) Dial(addr string) (net.Conn, error) {
	return net.Dial("unix", addr)
}

// inprocTransport runs worlds over in-process net.Pipe pairs: real
// framed wire traffic, zero OS sockets. It exists so the full versioned
// handshake and codec path can run in tests and single-process
// deployments exactly as it does across hosts; the mailbox-based
// LocalWorld remains the fast path that skips framing altogether.
type inprocTransport struct {
	mu     sync.Mutex
	seq    int64
	worlds map[string]*inprocListener
}

func (*inprocTransport) Name() string { return "inproc" }

func (t *inprocTransport) Listen(addr string) (net.Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" {
		t.seq++
		addr = fmt.Sprintf("world-%d", t.seq)
	}
	if _, dup := t.worlds[addr]; dup {
		return nil, fmt.Errorf("mpi: inproc address %q already listening", addr)
	}
	ln := &inprocListener{t: t, addr: addr, accept: make(chan net.Conn), done: make(chan struct{})}
	t.worlds[addr] = ln
	return ln, nil
}

func (t *inprocTransport) Dial(addr string) (net.Conn, error) {
	t.mu.Lock()
	ln := t.worlds[addr]
	t.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("mpi: no inproc listener at %q", addr)
	}
	client, server := net.Pipe()
	select {
	case ln.accept <- server:
		return client, nil
	case <-ln.done:
		return nil, fmt.Errorf("mpi: inproc listener at %q closed", addr)
	}
}

type inprocListener struct {
	t      *inprocTransport
	addr   string
	accept chan net.Conn
	once   sync.Once
	done   chan struct{}
}

func (ln *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-ln.accept:
		return c, nil
	case <-ln.done:
		return nil, net.ErrClosed
	}
}

func (ln *inprocListener) Close() error {
	ln.once.Do(func() {
		close(ln.done)
		ln.t.mu.Lock()
		delete(ln.t.worlds, ln.addr)
		ln.t.mu.Unlock()
	})
	return nil
}

func (ln *inprocListener) Addr() net.Addr { return inprocAddr(ln.addr) }

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }
