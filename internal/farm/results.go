package farm

import (
	"fmt"

	"riskbench/internal/nsp"
)

// SaveResults writes the collected results to path as an nsp list of
// (worker, result) pairs — the paper's master script ends with exactly
// this: save('pb-res.bin', res).
func SaveResults(path string, results []Result) error {
	out := nsp.NewList()
	for _, r := range results {
		pair := nsp.NewList(nsp.Scalar(float64(r.Worker)), r.Value)
		out.Add(pair)
	}
	return nsp.Save(path, out)
}

// LoadResults reads a file written by SaveResults. Error results are
// reconstructed with Err set from their report hashes.
func LoadResults(path string) ([]Result, error) {
	o, err := nsp.Load(path)
	if err != nil {
		return nil, err
	}
	list, ok := o.(*nsp.List)
	if !ok {
		return nil, fmt.Errorf("farm: results file holds %v, want list", o.Kind())
	}
	results := make([]Result, 0, list.Len())
	for i, item := range list.Items {
		pair, ok := item.(*nsp.List)
		if !ok || pair.Len() != 2 {
			return nil, fmt.Errorf("farm: results entry %d malformed", i)
		}
		wm, ok := pair.Items[0].(*nsp.Mat)
		if !ok || wm.Rows != 1 || wm.Cols != 1 {
			return nil, fmt.Errorf("farm: results entry %d has no worker rank", i)
		}
		value := pair.Items[1]
		name, err := resultName(value)
		if err != nil {
			return nil, fmt.Errorf("farm: results entry %d: %w", i, err)
		}
		r := Result{Name: name, Worker: int(wm.ScalarValue()), Value: value}
		if msg, failed := resultError(value); failed {
			r.Err = fmt.Errorf("farm: task %q failed on worker %d: %s", name, r.Worker, msg)
		}
		results = append(results, r)
	}
	return results, nil
}
