package farm

import (
	"context"
	"fmt"

	"riskbench/internal/mpi"
)

// RunStaticMaster is the ablation baseline for the Robin-Hood scheduler:
// tasks are assigned to workers round-robin up front, and a worker only
// ever receives its own pre-assigned tasks (one outstanding at a time, no
// stealing). With heterogeneous task costs this strands work on slow
// queues, which is exactly what the paper's dynamic strategy avoids.
// Cancellation follows RunMaster: drain in-flight batches, stop the
// workers, return ctx.Err().
func RunStaticMaster(ctx context.Context, c mpi.Comm, tasks []Task, loader Loader, opts Options) ([]Result, error) {
	nw := c.Size() - 1
	if nw < 1 {
		return nil, fmt.Errorf("farm: world of size %d has no workers", c.Size())
	}
	if err := validateTasks(tasks); err != nil {
		return nil, err
	}
	batches := splitBatches(tasks, opts.batchSize())
	queues := make([][][]Task, nw)
	for i, b := range batches {
		q := i % nw
		queues[q] = append(queues[q], b)
	}
	pos := make([]int, nw)
	inflight := 0
	var results []Result
	if ctx.Err() == nil {
		for w := 0; w < nw; w++ {
			if len(queues[w]) > 0 {
				if err := sendBatch(c, w+1, queues[w][0], loader, opts, batchTrace{}); err != nil {
					return nil, err
				}
				pos[w] = 1
				inflight++
			}
		}
	}
	for inflight > 0 {
		rep, err := recvResults(c)
		if err != nil {
			return nil, err
		}
		results = append(results, rep.results...)
		from := rep.source
		inflight--
		if ctx.Err() != nil {
			continue // cancelled: drain only
		}
		q := from - 1
		if pos[q] < len(queues[q]) {
			if err := sendBatch(c, from, queues[q][pos[q]], loader, opts, batchTrace{}); err != nil {
				return nil, err
			}
			pos[q]++
			inflight++
		}
	}
	workers := make([]int, nw)
	for i := range workers {
		workers[i] = i + 1
	}
	if err := sendStop(c, workers); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
