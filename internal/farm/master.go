package farm

import (
	"context"
	"fmt"
	"strconv"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/telemetry"
)

// Loader abstracts the master-side preparation of a task's payload bytes
// under a payload-shipping strategy. Live loaders really decode/re-encode
// (FullLoad) or pass the sload bytes through (SerializedLoad); simulated
// loaders charge modelled CPU time instead.
type Loader interface {
	// Load returns the payload for one task. It is not called under
	// NFSLoad.
	Load(t Task, s Strategy) ([]byte, error)
}

// RunMaster drives the Robin-Hood farm over the given communicator (the
// paper's Fig. 4 master part): seed every worker with one batch, then feed
// whichever worker answers first, and finally send each worker the empty
// stop message. Workers are ranks 1..size-1. Results come back in
// completion order.
//
// Cancelling ctx is cooperative: the master stops dispatching new
// batches, drains the batches already in flight, stops the workers, and
// returns ctx.Err(). Transport errors remain fatal and leave the
// workers unstopped.
func RunMaster(ctx context.Context, c mpi.Comm, tasks []Task, loader Loader, opts Options) ([]Result, error) {
	nw := c.Size() - 1
	if nw < 1 {
		return nil, fmt.Errorf("farm: world of size %d has no workers", c.Size())
	}
	if err := validateTasks(tasks); err != nil {
		return nil, err
	}
	workers := make([]int, nw)
	for i := range workers {
		workers[i] = i + 1
	}
	results, err := runBatches(ctx, c, workers, splitBatches(tasks, opts.batchSize()), loader, opts)
	if err != nil {
		if ctx.Err() != nil {
			// Cancellation: the farm is quiescent, so stop the workers
			// before reporting it (best effort — the transport may be
			// part of what is being torn down).
			_ = sendStop(c, workers)
		}
		return nil, err
	}
	if err := sendStop(c, workers); err != nil {
		return nil, err
	}
	return results, nil
}

// validateTasks rejects duplicate task names. Names key the retry
// bookkeeping and the results, so duplicates would silently conflate
// distinct claims; every master entry point (dynamic, static and
// hierarchical root) runs this before dispatching anything.
func validateTasks(tasks []Task) error {
	seen := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if seen[t.Name] {
			return fmt.Errorf("farm: duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// splitBatches groups tasks into batches of at most bs.
func splitBatches(tasks []Task, bs int) [][]Task {
	var batches [][]Task
	for i := 0; i < len(tasks); i += bs {
		end := i + bs
		if end > len(tasks) {
			end = len(tasks)
		}
		batches = append(batches, tasks[i:end])
	}
	return batches
}

// sendBatch ships one batch (descriptor, then payload list if the
// strategy carries payloads) to a worker, recording per-task payload
// preparation time when telemetry is on. A valid bt rides the
// descriptor so the worker can parent its spans onto the master's.
func sendBatch(c mpi.Comm, worker int, b []Task, loader Loader, opts Options, bt batchTrace) error {
	reg := opts.Telemetry
	if err := mpi.SendObj(c, encodeBatch(b, bt), worker, TagTask); err != nil {
		return fmt.Errorf("farm: send descriptor to %d: %w", worker, err)
	}
	if !opts.Strategy.NeedsPayload() {
		return nil
	}
	_, byRef := c.(mpi.ObjRefComm)
	payload := nsp.NewList()
	for _, t := range b {
		if byRef && t.Obj != nil {
			// The communicator passes objects by reference, so the problem
			// ships with no load/serialize step at all.
			payload.Add(t.Obj)
			continue
		}
		start := reg.Now()
		data, err := loader.Load(t, opts.Strategy)
		if err != nil {
			return fmt.Errorf("farm: load %q: %w", t.Name, err)
		}
		reg.Observe("farm.serialize_seconds", reg.Now()-start)
		payload.Add(&nsp.Serial{Data: data})
	}
	if err := mpi.SendObj(c, payload, worker, TagPayload); err != nil {
		return fmt.Errorf("farm: send payload to %d: %w", worker, err)
	}
	return nil
}

// workerReply is everything one result message carries: the priced
// results, the source rank, and the optional telemetry payloads (span
// records, flight-recorder events) with the worker's descriptor-receive
// clock reading for shifting them onto the master clock.
type workerReply struct {
	results []Result
	source  int
	spans   []telemetry.SpanRecord
	events  []telemetry.Event
	recvAt  float64
}

// recvResults receives one result list, converting worker-reported
// pricing failures into Results with Err set. Trailing span and event
// payloads are split off into the reply.
func recvResults(c mpi.Comm) (workerReply, error) {
	var rep workerReply
	st, err := c.Probe(mpi.AnySource, TagResult)
	if err != nil {
		return rep, fmt.Errorf("farm: probe results: %w", err)
	}
	rep.source = st.Source
	obj, _, err := mpi.RecvObj(c, st.Source, TagResult)
	if err != nil {
		return rep, fmt.Errorf("farm: recv result from %d: %w", st.Source, err)
	}
	list, ok := obj.(*nsp.List)
	if !ok {
		return rep, fmt.Errorf("farm: result from %d is %v, want list", st.Source, obj.Kind())
	}
	for _, item := range list.Items {
		if isSpanPayload(item) {
			if rep.spans, rep.recvAt, err = decodeSpanPayload(item); err != nil {
				return rep, err
			}
			continue
		}
		if isEventPayload(item) {
			if rep.events, rep.recvAt, err = decodeEventPayload(item); err != nil {
				return rep, err
			}
			continue
		}
		name, err := resultName(item)
		if err != nil {
			return rep, err
		}
		r := Result{Name: name, Worker: st.Source, Value: item}
		if msg, failed := resultError(item); failed {
			// Value keeps the error hash so hierarchies can forward it.
			r.Err = fmt.Errorf("farm: task %q failed on worker %d: %s", name, st.Source, msg)
		}
		rep.results = append(rep.results, r)
	}
	return rep, nil
}

// queuedBatch is one batch awaiting dispatch plus its enqueue time on
// the telemetry clock (0 when telemetry is off). retryFrom is the rank
// whose failure requeued the batch (0 = fresh dispatch); a retry landing
// on a different rank is a redeal.
type queuedBatch struct {
	tasks     []Task
	enqueued  float64
	retryFrom int
}

// pendingBatch is one batch in flight on a worker: the tasks (for retry
// matching), the dispatch time, and the per-task spans to close on
// arrival of the results.
type pendingBatch struct {
	tasks  []Task
	sentAt float64
	spans  []*telemetry.Span
}

// runBatches Robin-Hoods the batches over the given worker ranks without
// sending the final stop message, so callers can reuse the workers for
// further rounds (the sub-master case). Failed tasks are re-queued as
// single-task batches up to opts.MaxRetries attempts beyond the first;
// tasks that exhaust their budget are reported with Err set.
//
// When opts.Telemetry is set, every task gets a "farm.task" span
// (dispatch → results) under one "farm.run" root span, and the
// queue-wait, serialize and task-latency histograms plus the per-worker
// busy gauges are populated. Durations are read off the registry clock,
// so simulated runs record virtual seconds.
func runBatches(ctx context.Context, c mpi.Comm, workers []int, batches [][]Task, loader Loader, opts Options) ([]Result, error) {
	reg := opts.Telemetry
	// Adopt a distributed trace threaded through ctx (a serve request or
	// bench run); without one the run is metrics-only.
	var runSpan *telemetry.Span
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		runSpan = reg.StartSpanIn(tc, "farm.run")
	} else {
		runSpan = reg.StartSpan("farm.run")
	}
	defer runSpan.End()
	queue := make([]queuedBatch, len(batches))
	now := reg.Now()
	for i, b := range batches {
		queue[i] = queuedBatch{tasks: b, enqueued: now}
	}
	// assigned remembers which batch each worker is busy with, so failed
	// task names can be matched back to their Task values for retry.
	assigned := make(map[int]pendingBatch, len(workers))
	attempts := make(map[string]int)
	var results []Result
	inflight := 0
	send := func(w int) error {
		qb := queue[0]
		queue = queue[1:]
		// The per-task spans open before the send so their IDs can ride
		// the descriptor: the worker parents its farm.compute spans on
		// them.
		pb := pendingBatch{tasks: qb.tasks}
		var bt batchTrace
		if reg != nil {
			for range qb.tasks {
				pb.spans = append(pb.spans, runSpan.StartChild("farm.task"))
			}
			// Trace context rides the descriptor only when the worker
			// negotiated the spans capability: a peer that never said it
			// understands span payloads (an older build joining during a
			// rolling upgrade) gets a plain descriptor, prices it
			// identically, and ships no spans back.
			if tc := runSpan.Context(); tc.Valid() && mpi.PeerCaps(c, w).Has(mpi.CapSpans) {
				bt.traceID = tc.TraceID
				for _, sp := range pb.spans {
					bt.parents = append(bt.parents, sp.ID())
				}
			}
		}
		dispatch := runSpan.StartChild("farm.dispatch")
		err := sendBatch(c, w, qb.tasks, loader, opts, bt)
		dispatch.End()
		if err != nil {
			return err
		}
		pb.sentAt = reg.Now()
		if reg != nil {
			wait := pb.sentAt - qb.enqueued
			for range qb.tasks {
				reg.Observe("farm.queue_wait_seconds", wait)
			}
		}
		opts.Fleet.dispatched(w, len(qb.tasks), pb.sentAt)
		if qb.retryFrom != 0 && qb.retryFrom != w {
			// The retry landed on a different worker than the one that
			// failed it: a redeal, the farm's unit of self-healing.
			opts.Fleet.taskRedealt(w)
			reg.Emit(telemetry.LevelWarn, "farm.task.redeal", runSpan.Context(),
				telemetry.Str("task", qb.tasks[0].Name),
				telemetry.Num("failed_on", float64(qb.retryFrom)),
				telemetry.Num("redealt_to", float64(w)))
		}
		assigned[w] = pb
		inflight++
		return nil
	}
	if ctx.Err() == nil {
		for _, w := range workers {
			if len(queue) == 0 {
				break
			}
			if err := send(w); err != nil {
				return nil, err
			}
		}
	}
	for inflight > 0 {
		rep, err := recvResults(c)
		if err != nil {
			return nil, err
		}
		from := rep.source
		was := assigned[from]
		delete(assigned, from)
		inflight--
		now := reg.Now()
		busy := now - was.sentAt
		opts.Fleet.completed(from, len(was.tasks), busy, now)
		if reg != nil {
			rank := strconv.Itoa(from)
			reg.Gauge("farm.worker." + rank + ".busy_seconds").Add(busy)
			reg.Counter("farm.worker." + rank + ".tasks").Add(int64(len(was.tasks)))
			for range was.tasks {
				// Batch-mates share the round trip: the batch is the unit
				// of dispatch, so its latency is every member's latency.
				reg.Observe("farm.task_seconds", busy)
			}
			for _, sp := range was.spans {
				sp.End()
			}
			// The worker's spans and events are on its own clock; align
			// them by mapping its descriptor-receive instant onto our
			// dispatch instant. In-process farms share the registry, so
			// span copies dedupe against the originals by span ID.
			shift := was.sentAt - rep.recvAt
			if len(rep.spans) > 0 {
				for i := range rep.spans {
					rep.spans[i].Start += shift
					rep.spans[i].End += shift
				}
				reg.IngestSpans(rep.spans)
			}
			if len(rep.events) > 0 {
				for i := range rep.events {
					rep.events[i].When += shift
					rep.events[i].Rank = from
				}
				reg.IngestEvents(rep.events)
			}
		}
		for _, r := range rep.results {
			if r.Err == nil {
				reg.Counter("farm.tasks_completed").Add(1)
				results = append(results, r)
				continue
			}
			opts.Fleet.taskFailed(from)
			attempts[r.Name]++
			if attempts[r.Name] > opts.MaxRetries {
				reg.Counter("farm.task_errors").Add(1)
				reg.Emit(telemetry.LevelError, "farm.task.fail", runSpan.Context(),
					telemetry.Str("task", r.Name),
					telemetry.Num("rank", float64(from)),
					telemetry.Num("attempts", float64(attempts[r.Name])))
				results = append(results, r)
				continue
			}
			retried := false
			for _, t := range was.tasks {
				if t.Name == r.Name {
					queue = append(queue, queuedBatch{tasks: []Task{t}, enqueued: reg.Now(), retryFrom: from})
					reg.Counter("farm.retries").Add(1)
					reg.Emit(telemetry.LevelWarn, "farm.task.retry", runSpan.Context(),
						telemetry.Str("task", r.Name),
						telemetry.Num("rank", float64(from)),
						telemetry.Num("attempt", float64(attempts[r.Name])))
					retried = true
					break
				}
			}
			if !retried {
				// The batch no longer carries the task (should not
				// happen); report the failure rather than lose it.
				results = append(results, r)
			}
		}
		if ctx.Err() != nil {
			continue // cancelled: drain in-flight batches, dispatch nothing new
		}
		if len(queue) > 0 {
			if err := send(from); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// sendStop sends the empty batch to each listed worker.
func sendStop(c mpi.Comm, workers []int) error {
	stop := encodeBatch(nil, batchTrace{})
	for _, w := range workers {
		if err := mpi.SendObj(c, stop, w, TagTask); err != nil {
			return fmt.Errorf("farm: send stop to %d: %w", w, err)
		}
	}
	return nil
}
