// Package mpi provides the message-passing layer of the benchmark: a small
// MPI-2-flavoured API (ranked communicators, tagged sends, blocking
// probe/receive, packed buffers, object transmission) implemented from
// scratch, since Go has no MPI ecosystem:
//
//   - an in-process world where every rank is a goroutine and messages
//     move through mailboxes (the moral equivalent of MPI_Comm_spawn-ing
//     Nsp slaves on one node, paper Fig. 1);
//   - framed hub worlds over pluggable transports: rank 0 listens, workers
//     dial in, and frames are routed through the hub so any rank can
//     message any other rank with a single connection per worker. The
//     transport registry ships tcp (cross-host), unix (same-host worker
//     pools over unix-domain sockets) and inproc (net.Pipe pairs, the full
//     wire path without OS sockets); RegisterTransport adds more.
//
// Hub worlds speak a versioned wire protocol. The connection handshake is
// fixed and v1-compatible (magic in, rank/size out); v2 endpoints then
// exchange hello control frames — invisible to v1 peers — announcing a
// protocol version and a capability set ("spans", "hasdelta"), and settle
// on the minimum version and the capability intersection. Consumers read
// the outcome through the Negotiator interface (PeerProto/PeerCaps), so a
// new master farming to an old worker silently withholds optional payloads
// instead of desynchronizing the stream: rolling fleet upgrades become a
// deploy order, not a flag day. Frame-level violations (oversized lengths,
// malformed hellos) surface as ErrProtocol and drop the connection.
//
// On top of raw byte messages the package offers the paper's object
// primitives: SendObj/RecvObj transmit any nsp.Object by transparent
// serialization (and, as in Nsp, RecvObj "unseals" a received Serial
// object back into the value it wraps), while Pack/Unpack expose the
// MPI_Pack/MPI_Unpack buffer path used by the Fig. 4–5 scripts.
//
// A further implementation of Comm lives in package simnet: a
// discrete-event simulated cluster with the same semantics but virtual
// time, used to reproduce the paper's 2–512 CPU sweeps on one machine.
package mpi
