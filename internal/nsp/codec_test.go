package nsp

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip serializes o and unserializes the result.
func roundTrip(t *testing.T, o Object) Object {
	t.Helper()
	s, err := Serialize(o)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	back, err := s.Unserialize()
	if err != nil {
		t.Fatalf("Unserialize: %v", err)
	}
	return back
}

func TestRoundTripMat(t *testing.T) {
	m := NewMat(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.5
	}
	if !roundTrip(t, m).Equal(m) {
		t.Fatal("matrix round trip lost data")
	}
}

func TestRoundTripEmptyMat(t *testing.T) {
	m := NewMat(0, 0)
	back := roundTrip(t, m)
	if !back.Equal(m) {
		t.Fatal("empty matrix round trip failed")
	}
}

func TestRoundTripSpecialFloats(t *testing.T) {
	m := RowVec(math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64)
	back := roundTrip(t, m).(*Mat)
	for i, v := range m.Data {
		if math.Float64bits(back.Data[i]) != math.Float64bits(v) {
			t.Fatalf("bit pattern changed at %d: %x -> %x", i, math.Float64bits(v), math.Float64bits(back.Data[i]))
		}
	}
	// NaN must round-trip by bit pattern too.
	n := Scalar(math.NaN())
	backN := roundTrip(t, n).(*Mat)
	if !math.IsNaN(backN.Data[0]) {
		t.Fatal("NaN did not survive")
	}
}

func TestRoundTripBMat(t *testing.T) {
	m := NewBMat(2, 3)
	m.Data[0], m.Data[4] = true, true
	if !roundTrip(t, m).Equal(m) {
		t.Fatal("bool matrix round trip lost data")
	}
}

func TestRoundTripSMat(t *testing.T) {
	m := NewSMat(2, 2)
	m.Data = []string{"", "héllo", "a\x00b", "paper"}
	if !roundTrip(t, m).Equal(m) {
		t.Fatal("string matrix round trip lost data")
	}
}

func TestRoundTripNestedList(t *testing.T) {
	// Mirror the paper's example: A=list('string',%t,rand(4,4)).
	inner := NewMat(4, 4)
	for i := range inner.Data {
		inner.Data[i] = rand.Float64()
	}
	l := NewList(Str("string"), Bool(true), inner)
	if !roundTrip(t, l).Equal(l) {
		t.Fatal("list round trip lost data")
	}
}

func TestRoundTripHash(t *testing.T) {
	h := NewHash()
	h.Set("A", RowVec(1, 2, 3, 4))
	h.Set("B", NewList(Str("foo"), RowVec(1, 2, 3, 4), Str("bar")))
	h.Set("empty", NewList())
	if !roundTrip(t, h).Equal(h) {
		t.Fatal("hash round trip lost data")
	}
}

func TestRoundTripNestedSerial(t *testing.T) {
	// Paper: serialize a sparse object, send the Serial inside messages.
	s, err := Serialize(Scalar(42))
	if err != nil {
		t.Fatal(err)
	}
	l := NewList(s, Str("wrapped"))
	back := roundTrip(t, l).(*List)
	innerSerial := back.Items[0].(*Serial)
	inner, err := innerSerial.Unserialize()
	if err != nil {
		t.Fatal(err)
	}
	if !inner.Equal(Scalar(42)) {
		t.Fatal("nested serial content lost")
	}
}

func TestRoundTripDeepNesting(t *testing.T) {
	o := Object(Scalar(1))
	for i := 0; i < 50; i++ {
		o = NewList(o, Str("level"))
	}
	if !roundTrip(t, o).Equal(o) {
		t.Fatal("deep nesting round trip failed")
	}
}

func TestSerializeDeterministic(t *testing.T) {
	h := NewHash()
	h.Set("z", Scalar(1))
	h.Set("a", Scalar(2))
	h.Set("m", Str("x"))
	s1, err := Serialize(h)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Serialize(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Data, s2.Data) {
		t.Fatal("serialization of a hash is not deterministic")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("XXXX\x00\x01"),
		[]byte("NSPB\x00\x09\x01"), // bad version
		[]byte("NSPB\x00\x01\xff"), // unknown kind
		[]byte("NSPB\x00\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff"),        // huge dims
		append([]byte("NSPB\x00\x01\x01\x00\x00\x00\x02\x00\x00\x00"), 2), // truncated data
	}
	for i, data := range cases {
		s := &Serial{Data: data}
		if _, err := s.Unserialize(); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestDecodeTruncatedEverywhere(t *testing.T) {
	// Truncating a valid stream at any point must produce an error, never a
	// panic or a silent success.
	h := NewHash()
	h.Set("A", RowVec(1, 2, 3))
	h.Set("B", NewList(Str("s"), Bool(false)))
	s, err := Serialize(h)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(s.Data); cut++ {
		trunc := &Serial{Data: s.Data[:cut]}
		if _, err := trunc.Unserialize(); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

// genObject builds a random object tree for the property test.
func genObject(r *rand.Rand, depth int) Object {
	kind := r.Intn(8)
	if depth <= 0 {
		kind = r.Intn(3) // leaves only
	}
	switch kind {
	case 0:
		rows, cols := r.Intn(4), r.Intn(4)
		m := NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		return m
	case 1:
		rows, cols := r.Intn(3), r.Intn(3)
		m := NewBMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Intn(2) == 1
		}
		return m
	case 2:
		rows, cols := r.Intn(3), r.Intn(3)
		m := NewSMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = string(rune('a' + r.Intn(26)))
		}
		return m
	case 3:
		n := r.Intn(4)
		l := NewList()
		for i := 0; i < n; i++ {
			l.Add(genObject(r, depth-1))
		}
		return l
	case 4:
		n := r.Intn(4)
		h := NewHash()
		for i := 0; i < n; i++ {
			h.Set(string(rune('A'+i)), genObject(r, depth-1))
		}
		return h
	case 5:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return &Serial{Data: b, Compressed: false}
	case 6:
		rows, cols := r.Intn(3), r.Intn(3)
		m := NewIMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Int63() - r.Int63()
		}
		return m
	default:
		rows, cols := r.Intn(3), r.Intn(3)
		c := NewCells(rows, cols)
		for i := range c.Data {
			if r.Intn(3) > 0 { // leave some cells empty
				c.Data[i] = genObject(r, depth-1)
			}
		}
		return c
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genObject(r, 4))
		},
	}
	f := func(o Object) bool {
		s, err := Serialize(o)
		if err != nil {
			return false
		}
		back, err := s.Unserialize()
		if err != nil {
			return false
		}
		return back.Equal(o) && o.Equal(back)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompressedRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genObject(r, 3))
		},
	}
	f := func(o Object) bool {
		s, err := Serialize(o)
		if err != nil {
			return false
		}
		c, err := s.Compress()
		if err != nil || !c.Compressed {
			return false
		}
		back, err := c.Unserialize()
		if err != nil {
			return false
		}
		return back.Equal(o)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompressShrinksRedundantData(t *testing.T) {
	// Paper's example: serialize(1:100) is 842 bytes, compressed 248.
	m := NewMat(1, 100)
	for i := range m.Data {
		m.Data[i] = float64(i + 1)
	}
	s, err := Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compress()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() >= s.Len() {
		t.Fatalf("compression did not shrink 1:100: %d -> %d", s.Len(), c.Len())
	}
	u, err := c.Uncompress()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(u.Data, s.Data) {
		t.Fatal("uncompress did not restore original bytes")
	}
}

func TestCompressIdempotent(t *testing.T) {
	s, err := Serialize(Scalar(3))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Compress()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.Compress()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("compressing a compressed serial should be a no-op")
	}
	u1, err := s.Uncompress()
	if err != nil {
		t.Fatal(err)
	}
	if u1 != s {
		t.Fatal("uncompressing a raw serial should be a no-op")
	}
}

func TestEqualDistinguishesKinds(t *testing.T) {
	objs := []Object{
		Scalar(1), Bool(true), Str("1"), NewList(Scalar(1)),
		func() Object { h := NewHash(); h.Set("a", Scalar(1)); return h }(),
		&Serial{Data: []byte{1}},
	}
	for i, a := range objs {
		for j, b := range objs {
			if (i == j) != a.Equal(b) {
				t.Errorf("Equal(%v, %v) = %v", a.Kind(), b.Kind(), a.Equal(b))
			}
		}
	}
}

func TestEqualDistinguishesShapes(t *testing.T) {
	a := NewMat(2, 3)
	b := NewMat(3, 2)
	if a.Equal(b) {
		t.Fatal("2x3 equal to 3x2")
	}
	s1 := NewSMat(1, 2)
	s2 := NewSMat(2, 1)
	if s1.Equal(s2) {
		t.Fatal("string shapes conflated")
	}
}

func TestStringRepresentations(t *testing.T) {
	if got := Scalar(2.5).String(); got != "r (1x1) 2.5" {
		t.Errorf("Mat.String() = %q", got)
	}
	s := &Serial{Data: make([]byte, 302)}
	if got := s.String(); got != "<302-bytes> serial" {
		t.Errorf("Serial.String() = %q", got)
	}
	if KindHash.String() != "h" || Kind(99).String() != "Kind(99)" {
		t.Error("Kind.String mismatch")
	}
}
