// Portfolio valuation on a live local farm: the paper's Fig. 4–5 workflow
// end-to-end — generate a portfolio of problem files, farm it over worker
// goroutines with the Robin-Hood scheduler, and compare the three
// communication strategies on real computations.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/portfolio"
)

func main() {
	// A scaled-down cousin of the paper's toy portfolio: 2,000 closed-form
	// vanilla calls, so everything runs in seconds.
	pf := portfolio.Toy(2000)
	tasks, err := pf.Tasks()
	if err != nil {
		log.Fatal(err)
	}
	store := farm.MemStore{}
	for _, t := range tasks {
		store[t.Name] = t.Data
	}
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	fmt.Printf("pricing %d claims on %d live workers\n\n", len(tasks), workers)

	for _, strat := range []farm.Strategy{farm.FullLoad, farm.NFSLoad, farm.SerializedLoad} {
		opts := farm.Options{Strategy: strat}
		world := mpi.NewLocalWorld(workers + 1)
		var wg sync.WaitGroup
		for r := 1; r <= workers; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := farm.RunWorker(world.Comm(rank), farm.LiveExecutor{}, store, opts); err != nil {
					log.Printf("worker %d: %v", rank, err)
				}
			}(r)
		}
		start := time.Now()
		results, err := farm.RunMaster(context.Background(), world.Comm(0), tasks, farm.LiveLoader{}, opts)
		if err != nil {
			log.Fatalf("master (%v): %v", strat, err)
		}
		wg.Wait()
		world.Close()
		sum := 0.0
		perWorker := map[int]int{}
		for _, r := range results {
			price, _ := farm.ResultField(r, "price")
			sum += price
			perWorker[r.Worker]++
		}
		fmt.Printf("%-16s %8v   portfolio value %.2f   tasks/worker %v\n",
			strat, time.Since(start).Round(time.Millisecond), sum, counts(perWorker, workers))
	}
}

func counts(m map[int]int, workers int) []int {
	out := make([]int, workers)
	for w, n := range m {
		out[w-1] = n
	}
	return out
}
