package premia

import (
	"math"
	"testing"
)

func vasicekProblem(option, method string) *Problem {
	return New().SetAsset(AssetRate).
		SetModel(ModelVasicek).SetOption(option).SetMethod(method).
		Set("r0", 0.03).Set("a", 0.6).Set("b", 0.05).Set("sigmaR", 0.015).
		Set("T", 2)
}

func TestVasicekBondBasics(t *testing.T) {
	res, err := vasicekProblem(OptZCBond, MethodCFVasicek).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Price <= 0 || res.Price >= 1 {
		t.Fatalf("ZCB price %v outside (0,1)", res.Price)
	}
	// Longer maturity with positive rates: cheaper bond.
	long, err := vasicekProblem(OptZCBond, MethodCFVasicek).Set("T", 10).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if long.Price >= res.Price {
		t.Fatalf("P(0,10) = %v not below P(0,2) = %v", long.Price, res.Price)
	}
}

func TestVasicekBondZeroVolLimit(t *testing.T) {
	// As σᵣ→0 and a large, r stays near its deterministic path; with
	// r0 = b the bond tends to e^{-bT}.
	p := vasicekProblem(OptZCBond, MethodCFVasicek).
		Set("r0", 0.05).Set("b", 0.05).Set("sigmaR", 1e-9).Set("a", 5)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-0.05 * 2)
	if math.Abs(res.Price-want) > 1e-6 {
		t.Fatalf("flat-rate bond %v, want %v", res.Price, want)
	}
}

func TestVasicekBondMCMatchesCF(t *testing.T) {
	cf, err := vasicekProblem(OptZCBond, MethodCFVasicek).Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := vasicekProblem(OptZCBond, MethodMCVasicek).
		Set("paths", 50000).Set("mcsteps", 100).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cf.Price - mc.Price); diff > 3*mc.PriceCI+2e-4 {
		t.Errorf("ZCB CF %v vs MC %v ± %v", cf.Price, mc.Price, mc.PriceCI)
	}
}

func TestVasicekZCCallMCMatchesCF(t *testing.T) {
	build := func(method string) *Problem {
		return vasicekProblem(OptZCCall, method).Set("S", 4).Set("K", 0.85)
	}
	cf, err := build(MethodCFVasicek).Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := build(MethodMCVasicek).Set("paths", 60000).Set("mcsteps", 100).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if cf.Price <= 0 {
		t.Fatalf("ZC call price %v not positive", cf.Price)
	}
	if diff := math.Abs(cf.Price - mc.Price); diff > 3*mc.PriceCI+2e-4 {
		t.Errorf("ZC call CF %v vs MC %v ± %v", cf.Price, mc.Price, mc.PriceCI)
	}
}

func TestVasicekZCCallBounds(t *testing.T) {
	// 0 <= C <= P(0,S); and C >= P(0,S) − K·P(0,T).
	cf, err := vasicekProblem(OptZCCall, MethodCFVasicek).Set("S", 4).Set("K", 0.85).Compute()
	if err != nil {
		t.Fatal(err)
	}
	m := vasicekParams{R0: 0.03, A: 0.6, B: 0.05, SigmaR: 0.015}
	ps := vasicekBond(m, 4)
	pt := vasicekBond(m, 2)
	lower := math.Max(ps-0.85*pt, 0)
	if cf.Price < lower-1e-12 || cf.Price > ps+1e-12 {
		t.Fatalf("ZC call %v outside [%v, %v]", cf.Price, lower, ps)
	}
}

func TestVasicekValidation(t *testing.T) {
	// Rate methods must not accept equity problems and vice versa.
	wrong := New().SetModel(ModelVasicek).SetOption(OptZCBond).SetMethod(MethodCFVasicek).
		Set("r0", 0.03).Set("a", 0.6).Set("sigmaR", 0.01).Set("T", 1)
	if err := wrong.Validate(); err == nil {
		t.Error("equity-asset Vasicek problem accepted")
	}
	wrong2 := New().SetAsset(AssetRate).SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("S0", 100).Set("sigma", 0.2).Set("K", 100).Set("T", 1)
	if err := wrong2.Validate(); err == nil {
		t.Error("rate-asset equity problem accepted")
	}
	if _, err := vasicekProblem(OptZCCall, MethodCFVasicek).Set("S", 1).Set("K", 0.9).Compute(); err == nil {
		t.Error("S <= T accepted")
	}
	if _, err := vasicekProblem(OptZCBond, MethodCFVasicek).Set("a", -1).Compute(); err == nil {
		t.Error("negative mean reversion accepted")
	}
}

func TestVasicekRoundTrips(t *testing.T) {
	p := vasicekProblem(OptZCCall, MethodCFVasicek).Set("S", 4).Set("K", 0.85)
	h, err := p.ToNsp()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromNsp(h)
	if err != nil {
		t.Fatal(err)
	}
	if back.Asset != AssetRate {
		t.Fatalf("asset lost: %q", back.Asset)
	}
	a, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price {
		t.Fatal("round-tripped rate problem prices differently")
	}
}
