package risk

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/telemetry"
)

// FarmBackend is the seam between the engine and its worker pool: Run
// farms one round of tasks over `workers` workers and returns the
// results. The engine threads its context (including any distributed
// trace riding it) straight through, so worker-side spans reassemble on
// the master regardless of where the workers live. Run must honour ctx
// cancellation; it returns the transport's raw error and lets the
// caller wrap it.
type FarmBackend interface {
	Run(ctx context.Context, tasks []farm.Task, opts farm.Options, workers int) ([]farm.Result, error)
}

// LocalBackend, the engine default, prices on an in-process goroutine
// world: one mpi.LocalWorld per round, workers sharing the engine's
// telemetry registry.
type LocalBackend struct{}

// Run implements FarmBackend on goroutine ranks. Cancellation is
// enforced two ways: the master stops dispatching cooperatively, and the
// local MPI world is closed so blocked workers unblock immediately.
func (LocalBackend) Run(ctx context.Context, tasks []farm.Task, opts farm.Options, nw int) ([]farm.Result, error) {
	world := mpi.NewLocalWorld(nw + 1)
	defer world.Close()
	stopCancel := context.AfterFunc(ctx, func() { world.Close() })
	defer stopCancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, nw+1)
	wopts := opts
	wopts.LocalSpans = true // workers share the master's registry
	for r := 1; r <= nw; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			workerErrs[rank] = farm.RunWorker(world.Comm(rank), farm.LiveExecutor{}, nil, wopts)
		}(r)
	}
	results, err := farm.RunMaster(ctx, world.Comm(0), tasks, farm.LiveLoader{}, opts)
	if err != nil {
		if ctx.Err() != nil {
			world.Close() // unblock any workers still waiting
			wg.Wait()
		}
		return nil, err
	}
	wg.Wait()
	for rank, werr := range workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("risk: worker %d: %w", rank, werr)
		}
	}
	return results, nil
}

// TCPBackend prices each round over real TCP connections: it listens on
// Addr, asks Spawn to start the round's workers dialing in (separate
// processes in deployment, goroutines in tests), and masters the round
// over the hub. Worker-side telemetry lives in whatever registries the
// spawned workers carry; their spans travel back over the wire.
type TCPBackend struct {
	// Addr is the listen address; default "127.0.0.1:0".
	Addr string
	// Spawn must cause `workers` workers to mpi.DialHub(addr) and run
	// farm.RunWorker until the stop message. It returns a wait function
	// joining them (may be nil). Required.
	Spawn func(addr string, workers int) (wait func() error, err error)
}

// Run implements FarmBackend over a TCP hub.
func (b *TCPBackend) Run(ctx context.Context, tasks []farm.Task, opts farm.Options, nw int) ([]farm.Result, error) {
	if b.Spawn == nil {
		return nil, errors.New("risk: TCPBackend needs a Spawn function")
	}
	addr := b.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	hub, err := mpi.ListenHub(addr, nw+1)
	if err != nil {
		return nil, err
	}
	defer hub.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	wait, err := b.Spawn(hub.Addr(), nw)
	if err != nil {
		return nil, err
	}
	if err := <-accepted; err != nil {
		return nil, err
	}
	stopCancel := context.AfterFunc(ctx, func() { hub.Close() })
	defer stopCancel()
	results, err := farm.RunMaster(ctx, hub, tasks, farm.LiveLoader{}, opts)
	if err != nil {
		// Closing the hub unblocks the spawned workers before joining
		// them, so a failed round does not strand the wait.
		hub.Close()
		if wait != nil {
			_ = wait()
		}
		return nil, err
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			return nil, fmt.Errorf("risk: tcp worker: %w", werr)
		}
	}
	return results, nil
}

// GoTCPWorkers returns a TCPBackend Spawn function running each worker
// as a goroutine of this process with its own Comm over the real TCP
// wire — the test and single-machine shape. newRegistry, when non-nil,
// supplies each worker's telemetry registry (a fresh registry per worker
// proves spans travel by wire rather than by shared memory).
func GoTCPWorkers(newRegistry func(worker int) *telemetry.Registry) func(addr string, workers int) (func() error, error) {
	return func(addr string, workers int) (func() error, error) {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			c, err := mpi.DialHub(addr)
			if err != nil {
				return nil, err
			}
			var reg *telemetry.Registry
			if newRegistry != nil {
				reg = newRegistry(i)
			}
			wg.Add(1)
			go func(i int, c mpi.Comm, reg *telemetry.Registry) {
				defer wg.Done()
				defer c.Close()
				errs[i] = farm.RunWorker(c, farm.LiveExecutor{}, nil,
					farm.Options{Strategy: farm.SerializedLoad, Telemetry: reg})
			}(i, c, reg)
		}
		return func() error {
			wg.Wait()
			return errors.Join(errs...)
		}, nil
	}
}
