package premia

import (
	"math"
	"testing"
)

func TestAnalyticGreeksCall(t *testing.T) {
	p := bsProblem(OptCallEuro, MethodCFCall, 100, 1)
	g, err := ComputeGreeks(p, GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Price-res.Price) > 1e-12 {
		t.Errorf("greeks price %v vs compute %v", g.Price, res.Price)
	}
	if math.Abs(g.Delta-res.Delta) > 1e-12 {
		t.Errorf("greeks delta %v vs compute %v", g.Delta, res.Delta)
	}
	if g.Gamma <= 0 {
		t.Errorf("gamma %v not positive", g.Gamma)
	}
	if g.Vega <= 0 {
		t.Errorf("vega %v not positive", g.Vega)
	}
	if g.Rho <= 0 {
		t.Errorf("call rho %v not positive", g.Rho)
	}
}

func TestAnalyticGreeksVsBumped(t *testing.T) {
	// The generic bump engine (forced by using the tree method) must match
	// the analytic formulas to finite-difference accuracy.
	an, err := ComputeGreeks(bsProblem(OptCallEuro, MethodCFCall, 100, 1), GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	tree := bsProblem(OptCallEuro, MethodTreeCRR, 100, 1).Set("steps", 4000)
	bu, err := ComputeGreeks(tree, GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Delta-bu.Delta) > 0.005 {
		t.Errorf("delta: analytic %v vs bumped %v", an.Delta, bu.Delta)
	}
	if math.Abs(an.Gamma-bu.Gamma) > 0.01*an.Gamma+0.002 {
		t.Errorf("gamma: analytic %v vs bumped %v", an.Gamma, bu.Gamma)
	}
	if math.Abs(an.Vega-bu.Vega) > 0.02*an.Vega {
		t.Errorf("vega: analytic %v vs bumped %v", an.Vega, bu.Vega)
	}
	if math.Abs(an.Rho-bu.Rho) > 0.02*math.Abs(an.Rho) {
		t.Errorf("rho: analytic %v vs bumped %v", an.Rho, bu.Rho)
	}
	if math.Abs(an.Theta-bu.Theta) > 0.05*math.Abs(an.Theta) {
		t.Errorf("theta: analytic %v vs bumped %v", an.Theta, bu.Theta)
	}
}

func TestAnalyticGreeksParity(t *testing.T) {
	// Gamma and vega are identical for calls and puts; delta differs by
	// e^{-qT}; rho differs by -K T e^{-rT}.
	call, err := ComputeGreeks(bsProblem(OptCallEuro, MethodCFCall, 110, 2), GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	put, err := ComputeGreeks(bsProblem(OptPutEuro, MethodCFPut, 110, 2), GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(call.Gamma-put.Gamma) > 1e-12 {
		t.Errorf("gamma parity: %v vs %v", call.Gamma, put.Gamma)
	}
	if math.Abs(call.Vega-put.Vega) > 1e-12 {
		t.Errorf("vega parity: %v vs %v", call.Vega, put.Vega)
	}
	wantDeltaDiff := math.Exp(-0.02 * 2)
	if math.Abs(call.Delta-put.Delta-wantDeltaDiff) > 1e-12 {
		t.Errorf("delta parity: %v - %v != %v", call.Delta, put.Delta, wantDeltaDiff)
	}
	wantRhoDiff := 110 * 2 * math.Exp(-0.05*2)
	if math.Abs(call.Rho-put.Rho-wantRhoDiff) > 1e-9 {
		t.Errorf("rho parity: diff %v, want %v", call.Rho-put.Rho, wantRhoDiff)
	}
}

func TestMCGreeksWithCommonRandomNumbers(t *testing.T) {
	// Bump-and-reprice on a Monte Carlo method: common random numbers make
	// the finite differences usable at moderate path counts.
	an, err := ComputeGreeks(bsProblem(OptCallEuro, MethodCFCall, 100, 1), GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	mc := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 100000)
	bu, err := ComputeGreeks(mc, GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Delta-bu.Delta) > 0.02 {
		t.Errorf("MC delta %v vs analytic %v", bu.Delta, an.Delta)
	}
	if math.Abs(an.Vega-bu.Vega) > 0.05*an.Vega+0.5 {
		t.Errorf("MC vega %v vs analytic %v", bu.Vega, an.Vega)
	}
}

func TestAmericanPutGreeks(t *testing.T) {
	p := bsProblem(OptPutAmer, MethodFDBS, 120, 1).Set("nodes", 400).Set("steps", 200)
	g, err := ComputeGreeks(p, GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Delta >= 0 || g.Delta < -1 {
		t.Errorf("American put delta %v outside (-1, 0)", g.Delta)
	}
	if g.Gamma < 0 {
		t.Errorf("American put gamma %v negative", g.Gamma)
	}
	if g.Vega <= 0 {
		t.Errorf("American put vega %v not positive", g.Vega)
	}
	if g.Rho >= 0 {
		t.Errorf("American put rho %v not negative", g.Rho)
	}
}

func TestHestonGreeks(t *testing.T) {
	g, err := ComputeGreeks(hestonProblem(OptCallEuro, MethodCFHeston), GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Delta <= 0 || g.Delta >= 1 {
		t.Errorf("Heston call delta %v", g.Delta)
	}
	if g.Vega <= 0 {
		t.Errorf("Heston vega %v not positive", g.Vega)
	}
	if g.Gamma <= 0 {
		t.Errorf("Heston gamma %v not positive", g.Gamma)
	}
}

func TestGreeksInvalidProblem(t *testing.T) {
	p := New().SetModel("NoSuchModel").SetOption(OptCallEuro).SetMethod(MethodCFCall)
	if _, err := ComputeGreeks(p, GreekBumps{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestGreeksThetaShortMaturity(t *testing.T) {
	// Maturity shorter than the default time bump must not go negative.
	p := bsProblem(OptCallEuro, MethodTreeCRR, 100, 0.001).Set("steps", 50)
	g, err := ComputeGreeks(p, GreekBumps{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(g.Theta) || math.IsInf(g.Theta, 0) {
		t.Fatalf("theta %v for tiny maturity", g.Theta)
	}
}

func TestVegaParamPerModel(t *testing.T) {
	cases := map[string]string{
		ModelBS1D: "sigma", ModelBSND: "sigma", ModelLocVol: "sigma0", ModelHeston: "V0",
	}
	for model, want := range cases {
		got, err := vegaParam(model)
		if err != nil || got != want {
			t.Errorf("vegaParam(%s) = %q, %v", model, got, err)
		}
	}
	if _, err := vegaParam("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}
