package simnet

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is a closure scheduled at a virtual time; seq breaks ties FIFO so
// simulations are deterministic.
type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine owns the virtual clock and the event queue. Create one with
// NewEngine, add processes with Go, then call Run.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	// alive tracks started-but-unfinished processes for deadlock reporting.
	alive map[*Proc]bool
	// tracer, when non-nil, records send/recv/compute/nfs events.
	tracer *Tracer
}

// NewEngine returns an empty simulation.
func NewEngine() *Engine {
	return &Engine{alive: make(map[*Proc]bool)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// schedule enqueues fn at time t (>= now).
func (e *Engine) schedule(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// Proc is a simulated process. Its code runs in a dedicated goroutine but
// only while it holds the engine token, so process code never races with
// the engine or other processes.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	yielded chan struct{}
	done    bool
	// blocked marks a process waiting passively (e.g. on a message) so
	// deadlock reports can name it.
	blocked string
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the engine's virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Go registers a process whose body starts at the current virtual time.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{}), yielded: make(chan struct{})}
	e.alive[p] = true
	go func() {
		<-p.resume
		body(p)
		p.done = true
		p.yielded <- struct{}{}
	}()
	e.schedule(e.now, func() { e.runProc(p) })
	return p
}

// runProc hands the token to p and waits for it to yield or finish.
func (e *Engine) runProc(p *Proc) {
	if p.done || !e.alive[p] {
		return
	}
	p.blocked = ""
	p.resume <- struct{}{}
	<-p.yielded
	if p.done {
		delete(e.alive, p)
	}
}

// yield returns the token to the engine; the process resumes when some
// event calls runProc on it again.
func (p *Proc) yield(reason string) {
	p.blocked = reason
	p.yielded <- struct{}{}
	<-p.resume
}

// Sleep advances the process's clock by d virtual seconds. A non-positive
// d returns immediately without yielding.
func (p *Proc) Sleep(d float64) {
	if d <= 0 {
		return
	}
	e := p.eng
	e.schedule(e.now+d, func() { e.runProc(p) })
	p.yield(fmt.Sprintf("sleep %.6gs", d))
}

// SleepUntil advances the process's clock to absolute time t.
func (p *Proc) SleepUntil(t float64) {
	p.Sleep(t - p.eng.now)
}

// block parks the process until some other event resumes it via wake.
func (p *Proc) block(reason string) {
	p.yield(reason)
}

// wake schedules the process to resume at the current virtual time. It
// must only be called from engine context (inside an event closure or
// another process holding the token).
func (p *Proc) wake() {
	e := p.eng
	e.schedule(e.now, func() { e.runProc(p) })
}

// ErrDeadlock is returned by Run when processes remain blocked with no
// pending events.
type ErrDeadlock struct {
	// Blocked lists the stuck processes and what they were waiting for.
	Blocked []string
}

// Error implements error.
func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("simnet: deadlock with %d blocked processes: %v", len(e.Blocked), e.Blocked)
}

// Run executes events until none remain. It returns an *ErrDeadlock if
// processes are still alive afterwards, nil otherwise.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		ev.fn()
	}
	if len(e.alive) > 0 {
		var names []string
		for p := range e.alive {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, p.blocked))
		}
		sort.Strings(names)
		return &ErrDeadlock{Blocked: names}
	}
	return nil
}
