package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// MethodQMCBasket prices European basket puts by randomised quasi-Monte
// Carlo: rotated Halton points mapped through the inverse normal CDF and
// the correlation Cholesky factor. Several independent rotations provide
// the confidence interval. Parameters: "paths" (total points),
// "rotations" (default 8).
const MethodQMCBasket = "QMC_Basket"

func qmcBasket(p *Problem) (Result, error) {
	m, err := mbsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	rotations := p.Params.Int("rotations", 8)
	if paths < 2 || rotations < 2 {
		return Result{}, fmt.Errorf("premia: QMC_Basket needs paths >= 2 and rotations >= 2")
	}
	if m.Dim > mathutil.MaxHaltonDim {
		return Result{}, fmt.Errorf("premia: QMC_Basket supports dim <= %d, got %d", mathutil.MaxHaltonDim, m.Dim)
	}
	d := m.Dim
	chol := make([]float64, d*d)
	if err := mathutil.Cholesky(mathutil.CorrelationMatrix(d, m.Rho), d, chol); err != nil {
		return Result{}, fmt.Errorf("premia: QMC basket correlation: %w", err)
	}
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
	vol := m.Sigma * math.Sqrt(o.T)
	df := math.Exp(-m.R * o.T)
	perRot := paths / rotations
	if perRot < 1 {
		perRot = 1
	}
	seed := mcSeed(p)
	isCall := p.Option == OptCallBasketEuro
	u := make([]float64, d)
	z := make([]float64, d)
	cz := make([]float64, d)
	st := make([]float64, d)
	// Across-rotation statistics give an unbiased error estimate for the
	// randomised QMC estimator.
	var across mathutil.Welford
	for rot := 0; rot < rotations; rot++ {
		h := mathutil.NewHalton(d, seed+uint64(rot)*0x9e3779b9)
		sum := 0.0
		for i := 0; i < perRot; i++ {
			h.Next(u)
			for j := 0; j < d; j++ {
				z[j] = mathutil.InvNormCDF(u[j])
			}
			mathutil.MatVecLower(chol, d, z, cz)
			for j := 0; j < d; j++ {
				st[j] = m.S0 * math.Exp(drift+vol*cz[j])
			}
			if isCall {
				sum += df * payoffCall(basketValue(st), o.K)
			} else {
				sum += df * payoffPut(basketValue(st), o.K)
			}
		}
		across.Add(sum / float64(perRot))
	}
	return Result{
		Price: across.Mean(), PriceCI: across.HalfWidth95(),
		Work: float64(perRot) * float64(rotations) * float64(d),
	}, nil
}
