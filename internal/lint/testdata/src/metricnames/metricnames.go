// Package metrictest seeds metric/span name literals on both sides of
// the dotted grammar the Prometheus rank-folding exporter parses.
package metrictest

import (
	"fmt"

	"riskbench/internal/telemetry"
)

var reg = telemetry.New()

func good() {
	reg.Counter("serve.cache.hits").Add(1)
	reg.Gauge("farm.queue.depth").Set(3)
	reg.Observe("premia.kernel.shard_seconds", 0.5)
	reg.Counter("farm.worker." + rankString() + ".tasks").Add(1)
	reg.Counter(fmt.Sprintf("mpi.rank%d.bytes_sent", 3)).Add(1)
	reg.StartSpan("risk.price_batch").End()
	reg.Emit(telemetry.LevelWarn, "farm.task.retry", telemetry.TraceContext{})
	reg.EmitCtx(nil, telemetry.LevelInfo, "serve.drain.begin")
	reg.ObserveExemplar("serve.request_seconds", 0.1, telemetry.TraceContext{})
}

func bad() {
	reg.Counter("Requests").Add(1)                            // want `does not match the dotted grammar`
	reg.Gauge("serve").Set(1)                                 // want `does not match the dotted grammar`
	reg.Histogram("serve.Batch.Size").Observe(1)              // want `does not match the dotted grammar`
	reg.Counter("serve." + rankString() + " total").Add(1)    // want `fragment " total"`
	reg.Observe(fmt.Sprintf("farm worker %d", 2), 1.0)        // want `does not match the dotted grammar`
	reg.Emit(telemetry.LevelError, "WorkerDied", telemetry.TraceContext{})           // want `does not match the dotted grammar`
	reg.EmitCtx(nil, telemetry.LevelWarn, "retry happened")                          // want `does not match the dotted grammar`
	reg.ObserveExemplar("latency", 0.1, telemetry.TraceContext{})                    // want `does not match the dotted grammar`
	//lint:allow metricnames fixture: legacy dashboard name kept for continuity
	reg.Counter("Legacy-Series").Add(1)
}

func rankString() string { return "7" }
