package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHandlerConcurrentWriters hammers the metrics endpoint while
// counters, gauges, histograms and spans mutate from many goroutines.
// Every response must be a complete, valid JSON snapshot — the handler
// must never observe a torn registry. Run it under -race (the telemetry
// package is in the Makefile's race target) to catch unsynchronized
// snapshotting.
func TestHandlerConcurrentWriters(t *testing.T) {
	reg := New()
	h := Handler(reg)

	const (
		writers  = 8
		readers  = 4
		requests = 50
	)
	var stop atomic.Bool

	// Writers: mutate every metric kind, including creating new names on
	// the fly so map growth races against snapshotting.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			names := [...]string{"alpha", "beta", "gamma"}
			for i := 0; !stop.Load(); i++ {
				name := names[i%len(names)]
				reg.Counter("hits." + name).Add(1)
				reg.Gauge("depth." + name).Set(float64(i % 17))
				reg.Histogram("lat." + name).Observe(float64(i%100) / 1000)
				sp := reg.StartSpan("work." + name)
				sp.End()
				if w == 0 && i%97 == 0 {
					// Occasionally a brand-new name, forcing map inserts.
					reg.Counter(names[i%len(names)] + ".fresh").Add(1)
				}
			}
		}(w)
	}

	// Readers: each of their responses must decode as a full snapshot.
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < requests; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("response %d: status %d", i, rec.Code)
					continue
				}
				var snap Snapshot
				if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
					t.Errorf("response %d: invalid JSON: %v", i, err)
				}
			}
		}()
	}

	readerWG.Wait()
	stop.Store(true)
	writerWG.Wait()

	// A final request after the dust settles must still be coherent and
	// reflect the writers' activity.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	if snap.Counters["hits.alpha"] == 0 {
		t.Fatalf("final snapshot missing writer activity: %+v", snap.Counters)
	}
	if snap.Spans["work.alpha"].Count == 0 {
		t.Fatalf("final snapshot missing span activity: %+v", snap.Spans)
	}
}
