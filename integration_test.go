package riskbench_test

// End-to-end integration of the paper's full pipeline: generate a
// portfolio of problem files on disk, sload them, farm them over a real
// TCP world with the serialized-load strategy, persist the results (the
// save('pb-res.bin', res) of Fig. 4), and cross-check every price against
// direct computation.

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/portfolio"
	"riskbench/internal/simnet"
)

func TestEndToEndPaperPipeline(t *testing.T) {
	// 1. A portfolio of problem files on disk.
	pf := portfolio.Toy(40)
	dir := t.TempDir()
	paths, err := pf.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	// 2. sload every file into a task (the serialized-load strategy).
	tasks := make([]farm.Task, len(paths))
	for i, path := range paths {
		s, err := nsp.SLoad(path)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = farm.Task{Name: pf.Items[i].Name, Data: s.Data, Cost: pf.Items[i].Cost}
	}

	// 3. A real TCP world: master hub + 3 worker processes (goroutines
	// here, but speaking the wire protocol).
	const size = 4
	hub, err := mpi.ListenHub("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	opts := farm.Options{Strategy: farm.SerializedLoad, BatchSize: 4, MaxRetries: 1}
	var wg sync.WaitGroup
	for i := 1; i < size; i++ {
		wc, err := mpi.DialHub(hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			defer c.Close()
			if err := farm.RunWorker(c, farm.LiveExecutor{}, nil, opts); err != nil {
				t.Errorf("worker: %v", err)
			}
		}(wc)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	results, err := farm.RunMaster(context.Background(), hub, tasks, farm.LiveLoader{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// 4. Persist and reload the results, as the master script does.
	resPath := filepath.Join(dir, "pb-res.bin")
	if err := farm.SaveResults(resPath, results); err != nil {
		t.Fatal(err)
	}
	back, err := farm.LoadResults(resPath)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Every price matches direct computation.
	want := map[string]float64{}
	for _, it := range pf.Items {
		res, err := it.Problem.Compute()
		if err != nil {
			t.Fatal(err)
		}
		want[it.Name] = res.Price
	}
	if len(back) != len(want) {
		t.Fatalf("%d results, want %d", len(back), len(want))
	}
	for _, r := range back {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		price, ok := farm.ResultField(r, "price")
		if !ok || math.Abs(price-want[r.Name]) > 1e-12 {
			t.Fatalf("%s: price %v, want %v", r.Name, price, want[r.Name])
		}
	}
}

func TestEndToEndSimulatedSweepConsistency(t *testing.T) {
	// The simulated makespan at 2 CPUs must approximate the portfolio's
	// total virtual work plus orchestration overhead, and the same tasks
	// must produce consistent speedup across strategies — the global sanity
	// contract behind every table in EXPERIMENTS.md.
	pf := portfolio.Toy(2000)
	tasks, err := pf.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	totalWork := pf.TotalCost()
	for _, strat := range []farm.Strategy{farm.FullLoad, farm.SerializedLoad} {
		t2, err := benchRun(tasks, 2, strat, nil)
		if err != nil {
			t.Fatal(err)
		}
		if t2 < totalWork {
			t.Fatalf("%v: makespan %v below total work %v", strat, t2, totalWork)
		}
		if t2 > 20*totalWork {
			t.Fatalf("%v: makespan %v implausibly above total work %v", strat, t2, totalWork)
		}
	}
	fs := simnet.NewNFS(simnet.DefaultNFS)
	tNFS, err := benchRun(tasks, 2, farm.NFSLoad, fs)
	if err != nil {
		t.Fatal(err)
	}
	if tNFS < totalWork {
		t.Fatalf("NFS makespan %v below total work %v", tNFS, totalWork)
	}
}

// benchRun is a minimal local copy of the bench.Run wiring, kept here so
// the integration test exercises the exported simnet/farm APIs directly.
func benchRun(tasks []farm.Task, cpus int, strat farm.Strategy, fs *simnet.NFS) (float64, error) {
	eng := simnet.NewEngine()
	world := simnet.NewWorld(eng, cpus, simnet.DefaultGigE)
	opts := farm.Options{Strategy: strat}
	costs := farm.DefaultSimCosts
	for r := 1; r < cpus; r++ {
		rank := r
		eng.Go("w", func(p *simnet.Proc) {
			c := world.Comm(rank)
			c.Bind(p)
			var store farm.Store
			if fs != nil {
				store = farm.SimStore{FS: fs, Comm: c}
			}
			_ = farm.RunWorker(c, farm.SimExecutor{Comm: c, Costs: costs}, store, opts)
		})
	}
	var masterErr error
	eng.Go("m", func(p *simnet.Proc) {
		c := world.Comm(0)
		c.Bind(p)
		_, masterErr = farm.RunMaster(context.Background(), c, tasks, farm.SimLoader{Comm: c, Costs: costs}, opts)
	})
	if err := eng.Run(); err != nil {
		return 0, err
	}
	if masterErr != nil {
		return 0, masterErr
	}
	return eng.Now(), nil
}
