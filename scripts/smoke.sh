#!/bin/sh
# End-to-end smoke test for the serving binary: boot riskserver, price
# one request, and assert the health, metrics and trace endpoints all
# respond with the right shape. CI runs this after `make check`.
set -eu

GO=${GO:-go}
ADDR=${SMOKE_ADDR:-127.0.0.1:18080}
tmp=$(mktemp -d)
pid=
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/riskserver" ./cmd/riskserver
"$tmp/riskserver" -addr "$ADDR" -workers 2 -batch 4 -pprof &
pid=$!

ok=
for _ in $(seq 1 50); do
	if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.2
done
[ -n "$ok" ] || { echo "smoke: riskserver did not come up on $ADDR" >&2; exit 1; }

# Capture bodies before grepping: grep -q would close the pipe early
# and make curl report a spurious write error.
curl -fsS "http://$ADDR/price" -d '{"model":"BlackScholes1dim","option":"CallEuro","method":"CF_Call","params":{"S0":100,"r":0.05,"sigma":0.2,"K":100,"T":1}}' >"$tmp/price"
grep -q '"price"' "$tmp/price" || { echo "smoke: /price gave no price" >&2; exit 1; }
curl -fsS "http://$ADDR/risk" >"$tmp/risk"
grep -q '/risk/report' "$tmp/risk" || { echo "smoke: /risk does not describe the risk endpoints" >&2; exit 1; }
curl -fsS "http://$ADDR/risk/report" -d '{"portfolio":{"name":"toy","n":8},"scenarios":{"mode":"mc","n":64},"alphas":[0.99]}' >"$tmp/riskreport"
grep -q '"cvar"' "$tmp/riskreport" || { echo "smoke: /risk/report gave no VaR/CVaR estimates" >&2; exit 1; }
curl -fsS "http://$ADDR/metrics" >"$tmp/metrics"
grep -q '# TYPE ' "$tmp/metrics" || { echo "smoke: /metrics is not Prometheus text" >&2; exit 1; }
curl -fsS "http://$ADDR/metrics.json" >"$tmp/metrics.json"
grep -q '"counters"' "$tmp/metrics.json" || { echo "smoke: /metrics.json is not a JSON snapshot" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/traces" >"$tmp/traces"
grep -q 'serve.request' "$tmp/traces" || { echo "smoke: /debug/traces shows no serve.request trace" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/events?level=warn&n=32" >"$tmp/events" || { echo "smoke: /debug/events not mounted" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/debug/events?level=bogus")
[ "$code" = "400" ] || { echo "smoke: /debug/events accepted a bad level filter (got $code)" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/slo" >"$tmp/slo"
grep -q '"objectives"' "$tmp/slo" || { echo "smoke: /debug/slo gave no objectives" >&2; exit 1; }
grep -q 'price_latency' "$tmp/slo" || { echo "smoke: /debug/slo is missing the default latency objective" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/farm" >"$tmp/farm"
grep -q '"workers"' "$tmp/farm" || { echo "smoke: /debug/farm gave no workers array" >&2; exit 1; }
grep -q '"rank"' "$tmp/farm" || { echo "smoke: /debug/farm shows no worker rows after pricing" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/pprof/cmdline" >/dev/null || { echo "smoke: /debug/pprof not mounted" >&2; exit 1; }
curl -fsS "http://$ADDR/healthz" >/dev/null

echo "smoke: price, /risk, /risk/report, /metrics, /metrics.json, /debug/traces, /debug/events, /debug/slo, /debug/farm, /debug/pprof, /healthz all OK"
