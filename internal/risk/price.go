package risk

import (
	"context"
	"fmt"

	"riskbench/internal/farm"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// PriceCache is a read-through store of pricing results keyed by
// premia.Problem.ContentKey. Implementations must be safe for concurrent
// use; the serving layer's sharded LRU cache is the canonical one. A nil
// cache (the Engine default) disables reuse.
type PriceCache interface {
	// Get returns the cached result for a content key, if present.
	Get(key string) (premia.Result, bool)
	// Put stores a freshly computed result under its content key.
	Put(key string, res premia.Result)
}

// PriceOutcome is one problem's slot in a PriceBatch answer.
type PriceOutcome struct {
	// Result is the pricing result; valid only when Err is nil.
	Result premia.Result
	// Cached reports that the result came from the engine's cache rather
	// than a fresh kernel evaluation in this call. Duplicates of a
	// problem priced within the same batch share the fresh evaluation
	// and report Cached=false.
	Cached bool
	// Err is the per-problem failure (validation or pricing); batch-level
	// failures are returned by PriceBatch itself.
	Err error
}

// stampThreads applies the engine's kernel thread count to a problem,
// cloning first so the caller's problem is never mutated; an explicit
// per-problem "threads" parameter wins.
func (e Engine) stampThreads(p *premia.Problem) *premia.Problem {
	if e.KernelThreads <= 0 {
		return p
	}
	if _, ok := p.Params["threads"]; ok {
		return p
	}
	return p.Clone().Set("threads", float64(e.KernelThreads))
}

// resultFromFarm rebuilds a premia.Result from the hash a live worker
// returned for one task.
func resultFromFarm(r farm.Result) (premia.Result, error) {
	price, ok := farm.ResultField(r, "price")
	if !ok {
		return premia.Result{}, fmt.Errorf("risk: result %q has no price", r.Name)
	}
	ci, _ := farm.ResultField(r, "priceCI")
	delta, _ := farm.ResultField(r, "delta")
	work, _ := farm.ResultField(r, "work")
	hasDelta, _ := farm.ResultField(r, "hasdelta")
	return premia.Result{Price: price, PriceCI: ci, Delta: delta, HasDelta: hasDelta != 0, Work: work}, nil
}

// PriceBatch prices a slice of problems on the engine's live farm in one
// round: the entry point the serving layer's micro-batcher calls, so
// point lookups ride the same Robin-Hood path as portfolio sweeps.
//
// Per problem it (1) answers from the engine's Cache when a result with
// the same content key is already stored, (2) dedupes identical problems
// within the batch so each distinct content key is evaluated exactly
// once, and (3) farms the remaining unique problems over the engine's
// workers. Fresh results are written back to the cache. The outcome
// slice is index-aligned with the input; per-problem validation and
// pricing failures land in PriceOutcome.Err while transport-level
// failures (including context cancellation) are returned as the second
// value.
func (e Engine) PriceBatch(ctx context.Context, problems []*premia.Problem) ([]PriceOutcome, error) {
	reg := e.Telemetry
	// Adopt a distributed trace threaded through ctx (the serving layer
	// mints one per request); PriceBatch never mints its own, so untraced
	// callers stay metrics-only and the farm wire stays trace-free.
	var span *telemetry.Span
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		span = reg.StartSpanIn(tc, "risk.price_batch")
		ctx = telemetry.ContextWithTrace(ctx, span.Context())
	} else {
		span = reg.StartSpan("risk.price_batch")
	}
	defer span.End()
	reg.Counter("risk.price.requests").Add(int64(len(problems)))

	out := make([]PriceOutcome, len(problems))
	// indices of every problem (leader and duplicates) wanting each
	// still-unpriced content key, in input order.
	wanting := make(map[string][]int, len(problems))
	var tasks []farm.Task
	for i, p := range problems {
		if p == nil {
			out[i].Err = fmt.Errorf("risk: nil problem at index %d", i)
			continue
		}
		if err := p.Validate(); err != nil {
			out[i].Err = err
			continue
		}
		key := p.ContentKey()
		if e.Cache != nil {
			if res, ok := e.Cache.Get(key); ok {
				out[i] = PriceOutcome{Result: res, Cached: true}
				reg.Counter("risk.price.cache_hits").Add(1)
				continue
			}
		}
		if _, dup := wanting[key]; dup {
			wanting[key] = append(wanting[key], i)
			reg.Counter("risk.price.deduped").Add(1)
			continue
		}
		wanting[key] = []int{i}
		h, err := e.stampThreads(p).ToNsp()
		if err != nil {
			return nil, err
		}
		// The problem ships as an object: in-process backends pass it by
		// reference with zero serialization, wire backends let the farm
		// loader serialize it on demand.
		tasks = append(tasks, farm.Task{Name: key, Obj: h})
	}
	if len(tasks) == 0 {
		return out, nil
	}
	reg.Counter("risk.price.farmed").Add(int64(len(tasks)))

	// Farm the unique misses over the engine's backend, sized to the
	// work: a two-problem flush does not spin up the full worker
	// complement.
	nw := e.workers()
	if nw > len(tasks) {
		nw = len(tasks)
	}
	opts := farm.Options{Strategy: farm.SerializedLoad, BatchSize: e.batch(), Telemetry: reg, Fleet: e.Fleet}
	results, err := e.backend().Run(ctx, tasks, opts, nw)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("risk: price batch cancelled: %w", ctx.Err())
		}
		return nil, fmt.Errorf("risk: price batch farm: %w", err)
	}

	for _, r := range results {
		idxs := wanting[r.Name]
		if idxs == nil {
			return nil, fmt.Errorf("risk: result for unknown key %q", r.Name)
		}
		if r.Err != nil {
			for _, i := range idxs {
				out[i].Err = r.Err
			}
			continue
		}
		res, err := resultFromFarm(r)
		if err != nil {
			return nil, err
		}
		if e.Cache != nil {
			e.Cache.Put(r.Name, res)
		}
		for _, i := range idxs {
			out[i].Result = res
		}
	}
	return out, nil
}
