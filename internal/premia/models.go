package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// Registered model names.
const (
	ModelBS1D   = "BlackScholes1dim"
	ModelBSND   = "BlackScholesNdim"
	ModelLocVol = "LocalVol1dim"
	ModelHeston = "Heston1dim"
)

// Registered option names.
const (
	OptCallEuro       = "CallEuro"
	OptPutEuro        = "PutEuro"
	OptCallDownOut    = "CallDownOut"
	OptPutAmer        = "PutAmer"
	OptCallAmer       = "CallAmer"
	OptPutBasketEuro  = "PutBasketEuro"
	OptCallBasketEuro = "CallBasketEuro"
	OptPutBasketAmer  = "PutBasketAmer"
)

// bsParams are the parameters of the one-dimensional Black–Scholes model:
// spot, short rate, continuous dividend yield and volatility.
type bsParams struct {
	S0, R, Div, Sigma float64
}

func bsFrom(p *Problem) (bsParams, error) {
	var m bsParams
	var err error
	if m.S0, err = p.Params.NeedPositive("S0"); err != nil {
		return m, err
	}
	if m.Sigma, err = p.Params.NeedPositive("sigma"); err != nil {
		return m, err
	}
	m.R = p.Params.Get("r", 0)
	m.Div = p.Params.Get("divid", 0)
	return m, nil
}

// mbsParams are the parameters of the n-dimensional Black–Scholes model
// with identical marginals and single-factor correlation rho.
type mbsParams struct {
	Dim               int
	S0, R, Div, Sigma float64
	Rho               float64
}

func mbsFrom(p *Problem) (mbsParams, error) {
	var m mbsParams
	base, err := bsFrom(p)
	if err != nil {
		return m, err
	}
	m.S0, m.R, m.Div, m.Sigma = base.S0, base.R, base.Div, base.Sigma
	m.Dim = p.Params.Int("dim", 0)
	if m.Dim < 1 {
		return m, fmt.Errorf("premia: model %s needs dim >= 1", ModelBSND)
	}
	m.Rho = p.Params.Get("rho", 0)
	if m.Dim > 1 && (m.Rho <= -1.0/float64(m.Dim-1) || m.Rho > 1) {
		return m, fmt.Errorf("premia: correlation %v not admissible for dim %d", m.Rho, m.Dim)
	}
	return m, nil
}

// lvParams are the parameters of the parametric local-volatility model
//
//	σ(t, S) = σ0 · (1 + skew·ln(S/S0)) · (1 + term·t)
//
// clamped to [lvMinVol, lvMaxVol]; a smooth, skewed, term-dependent
// surface in the spirit of Dupire-calibrated models, rich enough to make
// Monte Carlo the only applicable method (as in §4.3 of the paper).
type lvParams struct {
	S0, R, Div         float64
	Sigma0, Skew, Term float64
}

const (
	lvMinVol = 0.01
	lvMaxVol = 1.5
)

func lvFrom(p *Problem) (lvParams, error) {
	var m lvParams
	var err error
	if m.S0, err = p.Params.NeedPositive("S0"); err != nil {
		return m, err
	}
	if m.Sigma0, err = p.Params.NeedPositive("sigma0"); err != nil {
		return m, err
	}
	m.R = p.Params.Get("r", 0)
	m.Div = p.Params.Get("divid", 0)
	m.Skew = p.Params.Get("skew", 0)
	m.Term = p.Params.Get("termslope", 0)
	return m, nil
}

// Vol returns the local volatility at time t and spot s.
func (m lvParams) Vol(t, s float64) float64 {
	if s <= 0 {
		return lvMinVol
	}
	v := m.Sigma0 * (1 + m.Skew*math.Log(s/m.S0)) * (1 + m.Term*t)
	if v < lvMinVol {
		return lvMinVol
	}
	if v > lvMaxVol {
		return lvMaxVol
	}
	return v
}

// hestonParams are the parameters of the Heston stochastic-volatility
// model dS = S((r−q)dt + √V dW₁), dV = κ(θ−V)dt + σᵥ√V dW₂ with
// d⟨W₁,W₂⟩ = ρ dt.
type hestonParams struct {
	S0, R, Div                    float64
	V0, Kappa, Theta, SigmaV, Rho float64
}

func hestonFrom(p *Problem) (hestonParams, error) {
	var m hestonParams
	var err error
	if m.S0, err = p.Params.NeedPositive("S0"); err != nil {
		return m, err
	}
	if m.V0, err = p.Params.NeedPositive("V0"); err != nil {
		return m, err
	}
	if m.Kappa, err = p.Params.NeedPositive("kappa"); err != nil {
		return m, err
	}
	if m.Theta, err = p.Params.NeedPositive("theta"); err != nil {
		return m, err
	}
	if m.SigmaV, err = p.Params.NeedPositive("sigmaV"); err != nil {
		return m, err
	}
	m.R = p.Params.Get("r", 0)
	m.Div = p.Params.Get("divid", 0)
	m.Rho = p.Params.Get("rhoSV", 0)
	if m.Rho <= -1 || m.Rho >= 1 {
		return m, fmt.Errorf("premia: Heston correlation %v out of (-1,1)", m.Rho)
	}
	return m, nil
}

// vanillaParams are the parameters shared by every option: strike and
// maturity; barrier options add the barrier level and rebate.
type vanillaParams struct {
	K, T float64
}

func vanillaFrom(p *Problem) (vanillaParams, error) {
	var o vanillaParams
	var err error
	if o.K, err = p.Params.NeedPositive("K"); err != nil {
		return o, err
	}
	if o.T, err = p.Params.NeedPositive("T"); err != nil {
		return o, err
	}
	return o, nil
}

// barrierParams extend vanillaParams with a down barrier and rebate.
type barrierParams struct {
	vanillaParams
	L, Rebate float64
}

func barrierFrom(p *Problem) (barrierParams, error) {
	var o barrierParams
	var err error
	if o.vanillaParams, err = vanillaFrom(p); err != nil {
		return o, err
	}
	if o.L, err = p.Params.NeedPositive("L"); err != nil {
		return o, err
	}
	o.Rebate = p.Params.Get("rebate", 0)
	return o, nil
}

// payoffCall and payoffPut are the terminal payoffs.
func payoffCall(s, k float64) float64 {
	if s > k {
		return s - k
	}
	return 0
}

func payoffPut(s, k float64) float64 {
	if s < k {
		return k - s
	}
	return 0
}

// basketValue returns the equally-weighted average of the components.
func basketValue(s []float64) float64 {
	return mathutil.Mean(s)
}
