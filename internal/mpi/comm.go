package mpi

import (
	"errors"

	"riskbench/internal/nsp"
)

// Wildcards accepted by Probe and Recv, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is returned by operations on a communicator that has been
// closed (locally or because the peer hub shut down).
var ErrClosed = errors.New("mpi: communicator closed")

// Status describes a matched message, like MPI_Status: the actual source
// rank, the actual tag, and the payload size in bytes (MPI_Get_elements
// with a character type).
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Comm is a ranked communicator. All operations are blocking, as in the
// paper's scripts; concurrency comes from running ranks in goroutines or
// processes. Implementations must allow concurrent calls from multiple
// goroutines.
type Comm interface {
	// Rank returns this process's rank in the communicator.
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send transmits data to dest with the given tag. The data is copied;
	// the caller may reuse the slice immediately.
	Send(data []byte, dest, tag int) error
	// Probe blocks until a message matching (source, tag) is available and
	// returns its status without consuming it. Use AnySource/AnyTag as
	// wildcards.
	Probe(source, tag int) (Status, error)
	// Recv blocks until a matching message arrives and returns its payload
	// and status.
	Recv(source, tag int) ([]byte, Status, error)
	// Close releases the communicator; pending and future blocking calls
	// return ErrClosed.
	Close() error
}

// message is the internal representation of an in-flight message. Either
// data (a serialized stream, from Send) or obj (a by-reference object,
// from SendObjRef on same-address-space communicators) is set.
type message struct {
	source int
	tag    int
	data   []byte
	obj    nsp.Object
}

func matches(m message, source, tag int) bool {
	return (source == AnySource || m.source == source) && (tag == AnyTag || m.tag == tag)
}
