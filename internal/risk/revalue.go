package risk

import (
	"context"
	"fmt"
	"strings"

	"riskbench/internal/farm"
	"riskbench/internal/nsp"
	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// Engine revalues portfolios under scenarios on a live local farm.
type Engine struct {
	// Workers is the number of pricing goroutines (default 4).
	Workers int
	// BatchSize groups atomic computations per message (default 16: the
	// bunching the paper's conclusion recommends, which matters here
	// because scenario grids multiply the task count).
	BatchSize int
	// KernelThreads, when > 0, is stamped as the "threads" parameter onto
	// every task whose problem does not already carry one, so each worker
	// shards its Monte Carlo path loops over that many cores via the
	// premia multicore pricing kernel. Prices are unchanged: the kernel's
	// shard decomposition is thread-invariant.
	KernelThreads int
	// Telemetry, when non-nil, receives the revaluation's metrics: the
	// farm's task histograms and spans, phase spans
	// (risk.build/risk.farm/risk.scatter under risk.revalue), task and
	// scenario counters, and per-scenario work-unit gauges.
	Telemetry *telemetry.Registry
	// Cache, when non-nil, is a content-addressed store of pricing
	// results. PriceBatch reads through it and writes fresh results back;
	// RevalueContext reuses cached base-scenario prices (the unshifted
	// problems that repeat verbatim across revaluation runs) and stores
	// the ones it computes. Scenario-shifted problems have distinct
	// content keys and always price fresh.
	Cache PriceCache
	// Backend selects where the farm's workers live: nil (the default)
	// means LocalBackend, an in-process goroutine world per round; a
	// NetBackend farms over a framed mpi transport (tcp, unix, inproc)
	// with per-connection protocol negotiation. Distributed traces
	// thread through either one.
	Backend FarmBackend
	// Fleet, when non-nil, accumulates per-worker health (in-flight,
	// completions, failures, redeals, EWMA durations) across every farm
	// run this engine drives — what /debug/farm serves.
	Fleet *farm.Fleet
}

func (e Engine) backend() FarmBackend {
	if e.Backend == nil {
		return LocalBackend{}
	}
	return e.Backend
}

func (e Engine) workers() int {
	if e.Workers < 1 {
		return 4
	}
	return e.Workers
}

func (e Engine) batch() int {
	if e.BatchSize < 1 {
		return 16
	}
	return e.BatchSize
}

// Valuation holds the revaluation surface of one Engine.Revalue call.
//
// Indexing convention: the surface is Values[s][i] where s indexes
// Scenarios (0-based, the implicit base scenario is NOT a row — it
// lives in Base) and i indexes Items/Base in portfolio order. On the
// farm wire the same pair is encoded in the task name "s%03d/<item>"
// with s001 = Scenarios[0] and s000 = the base scenario, so wire index
// s maps to surface row s-1. Claims outside a scenario's risk-factor
// universe hold their base value in that row. Callers should use the
// Item* accessors rather than recomputing these offsets by hand.
type Valuation struct {
	// Items are the claim names, in portfolio order.
	Items []string
	// Scenarios echoes the input (without the implicit base).
	Scenarios []Scenario
	// Base holds each claim's base-scenario value.
	Base []float64
	// Values[s][i] is claim i's value under scenario s.
	Values [][]float64
	// BaseDelta[i] is claim i's base-scenario spot delta when the pricer
	// reported one (BaseHasDelta[i]); closed-form methods ship it over
	// the wire in the "delta"/"hasdelta" result fields, and cached base
	// results carry it too. Claims without a delta hold zero.
	BaseDelta []float64
	// BaseHasDelta marks which BaseDelta entries are real sensitivities
	// rather than absent ones.
	BaseHasDelta []bool
}

// ItemIndex returns the surface column of the named claim (the i of
// Values[s][i] and Base[i]), or -1 when the valuation has no such claim.
func (v *Valuation) ItemIndex(name string) int {
	for i, it := range v.Items {
		if it == name {
			return i
		}
	}
	return -1
}

// ItemPnL returns claim i's profit-and-loss under scenario s relative
// to its base value: Values[s][i] - Base[i].
func (v *Valuation) ItemPnL(s, i int) float64 {
	return v.Values[s][i] - v.Base[i]
}

// ItemPnLs returns claim i's P&L across every scenario, in scenario
// order — the per-position column the component-VaR attribution in
// internal/var consumes.
func (v *Valuation) ItemPnLs(i int) []float64 {
	out := make([]float64, len(v.Scenarios))
	for s := range v.Scenarios {
		out[s] = v.ItemPnL(s, i)
	}
	return out
}

// TotalBase returns the base portfolio value.
func (v *Valuation) TotalBase() float64 {
	sum := 0.0
	for _, x := range v.Base {
		sum += x
	}
	return sum
}

// ScenarioTotal returns the portfolio value under scenario s.
func (v *Valuation) ScenarioTotal(s int) float64 {
	sum := 0.0
	for _, x := range v.Values[s] {
		sum += x
	}
	return sum
}

// PnL returns the portfolio profit-and-loss of scenario s relative to the
// base valuation.
func (v *Valuation) PnL(s int) float64 {
	return v.ScenarioTotal(s) - v.TotalBase()
}

// PnLs returns the P&L of every scenario, in order.
func (v *Valuation) PnLs() []float64 {
	out := make([]float64, len(v.Scenarios))
	for s := range v.Scenarios {
		out[s] = v.PnL(s)
	}
	return out
}

// Report renders the scenario P&L table with VaR and expected shortfall
// at the given confidence.
func (v *Valuation) Report(alpha float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "base portfolio value: %.2f (%d claims)\n", v.TotalBase(), len(v.Items))
	fmt.Fprintf(&b, "%-24s%16s%16s\n", "scenario", "value", "P&L")
	for s, sc := range v.Scenarios {
		fmt.Fprintf(&b, "%-24s%16.2f%16.2f\n", sc.Name, v.ScenarioTotal(s), v.PnL(s))
	}
	pnls := v.PnLs()
	fmt.Fprintf(&b, "scenario VaR(%.0f%%): %.2f   expected shortfall: %.2f\n",
		alpha*100, VaR(pnls, alpha), ExpectedShortfall(pnls, alpha))
	return b.String()
}

// taskName encodes (scenario, item) into the farm task name; index -1 is
// the base scenario.
func taskName(scenario int, item string) string {
	return fmt.Sprintf("s%03d/%s", scenario+1, item)
}

// Revalue prices every claim under the base parameters and under every
// scenario, farming the scenario×claim cross product over live workers —
// the paper's "huge number of atomic computations" pipeline in miniature.
func (e Engine) Revalue(pf *portfolio.Portfolio, scenarios []Scenario) (*Valuation, error) {
	return e.RevalueContext(context.Background(), pf, scenarios)
}

// RevalueContext is Revalue under a context. Cancellation is enforced
// two ways: the master stops dispatching cooperatively, and the local
// MPI world is closed so blocked workers unblock immediately; the
// context's error is returned.
func (e Engine) RevalueContext(ctx context.Context, pf *portfolio.Portfolio, scenarios []Scenario) (*Valuation, error) {
	reg := e.Telemetry
	// A revaluation is a natural trace root (one bench run / report): mint
	// a trace unless the caller already threads one through ctx.
	var revSpan *telemetry.Span
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		revSpan = reg.StartSpanIn(tc, "risk.revalue")
	} else {
		revSpan = reg.StartTrace("risk.revalue")
	}
	defer revSpan.End()
	val := &Valuation{
		Scenarios:    scenarios,
		Items:        make([]string, len(pf.Items)),
		Base:         make([]float64, len(pf.Items)),
		Values:       make([][]float64, len(scenarios)),
		BaseDelta:    make([]float64, len(pf.Items)),
		BaseHasDelta: make([]bool, len(pf.Items)),
	}
	index := make(map[string]int, len(pf.Items))
	for i, it := range pf.Items {
		val.Items[i] = it.Name
		index[it.Name] = i
	}
	for s := range scenarios {
		val.Values[s] = make([]float64, len(pf.Items))
	}

	// Build the cross product of tasks.
	buildSpan := revSpan.StartChild("risk.build")
	var tasks []farm.Task
	addTask := func(scIdx int, item portfolio.Item, p *premia.Problem) error {
		p = e.stampThreads(p)
		h, err := p.ToNsp()
		if err != nil {
			return err
		}
		ser, err := nsp.Serialize(h)
		if err != nil {
			return err
		}
		tasks = append(tasks, farm.Task{Name: taskName(scIdx, item.Name), Data: ser.Data, Cost: item.Cost})
		return nil
	}
	// skipped[s][i] marks claims outside scenario s's risk-factor
	// universe: they keep their base value (an equity spot ladder does not
	// move the credit book).
	skipped := make([][]bool, len(scenarios))
	for s := range skipped {
		skipped[s] = make([]bool, len(pf.Items))
	}
	// baseKey[i] is claim i's content key, filled only when the engine
	// has a cache: cached base prices skip the farm entirely, computed
	// ones are stored on the way out.
	var baseKey []string
	if e.Cache != nil {
		baseKey = make([]string, len(pf.Items))
	}
	for i, it := range pf.Items {
		cachedBase := false
		if e.Cache != nil {
			baseKey[i] = it.Problem.ContentKey()
			if res, ok := e.Cache.Get(baseKey[i]); ok {
				val.Base[i] = res.Price
				val.BaseDelta[i] = res.Delta
				val.BaseHasDelta[i] = res.HasDelta
				reg.Counter("risk.base_cache_hits").Add(1)
				baseKey[i] = "" // nothing to store back
				cachedBase = true
			}
		}
		if !cachedBase {
			if err := addTask(-1, it, it.Problem); err != nil {
				return nil, err
			}
		}
		for s, sc := range scenarios {
			if !sc.AppliesTo(it.Problem) {
				skipped[s][i] = true
				continue
			}
			shifted, err := sc.Apply(it.Problem)
			if err != nil {
				return nil, err
			}
			if err := addTask(s, it, shifted); err != nil {
				return nil, err
			}
		}
	}

	buildSpan.End()
	reg.Counter("risk.tasks").Add(int64(len(tasks)))
	reg.Counter("risk.scenarios").Add(int64(len(scenarios)))

	// Farm them over the engine's backend, threading the trace so the
	// farm.run span (and the workers' spans beyond it) parent onto
	// risk.farm.
	farmSpan := revSpan.StartChild("risk.farm")
	farmCtx := ctx
	if tc := farmSpan.Context(); tc.Valid() {
		farmCtx = telemetry.ContextWithTrace(ctx, tc)
	}
	opts := farm.Options{Strategy: farm.SerializedLoad, BatchSize: e.batch(), Telemetry: reg, Fleet: e.Fleet}
	results, err := e.backend().Run(farmCtx, tasks, opts, e.workers())
	farmSpan.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("risk: revaluation cancelled: %w", ctx.Err())
		}
		return nil, fmt.Errorf("risk: revaluation farm: %w", err)
	}

	// Scatter results back into the valuation matrix.
	scatterSpan := revSpan.StartChild("risk.scatter")
	defer scatterSpan.End()
	for _, r := range results {
		price, ok := farm.ResultField(r, "price")
		if !ok {
			return nil, fmt.Errorf("risk: result %q has no price", r.Name)
		}
		var scIdx int
		var item string
		// Scan with %d, not the generator's %03d: in a scan the width is a
		// maximum, and a zero-padded minimum width grows past three digits
		// from scenario 1000 on.
		if _, err := fmt.Sscanf(r.Name, "s%d/", &scIdx); err != nil {
			return nil, fmt.Errorf("risk: malformed result name %q", r.Name)
		}
		slash := strings.IndexByte(r.Name, '/')
		item = r.Name[slash+1:]
		i, ok := index[item]
		if !ok {
			return nil, fmt.Errorf("risk: result for unknown claim %q", item)
		}
		// Per-scenario revaluation timing: workers report each task's
		// measured compute time under "seconds" (tasks of one scenario are
		// interleaved across workers, so this is the only place the
		// attribution can happen).
		if reg != nil {
			label := "base"
			if scIdx > 0 {
				label = scenarios[scIdx-1].Name
			}
			if secs, ok := farm.ResultField(r, "seconds"); ok {
				reg.Observe("risk.scenario_seconds."+label, secs)
			}
			reg.Counter("risk.scenario_results." + label).Add(1)
		}
		if scIdx == 0 {
			val.Base[i] = price
			if hd, ok := farm.ResultField(r, "hasdelta"); ok && hd != 0 {
				if d, ok := farm.ResultField(r, "delta"); ok {
					val.BaseDelta[i] = d
					val.BaseHasDelta[i] = true
				}
			}
			if e.Cache != nil && baseKey[i] != "" {
				if res, err := resultFromFarm(r); err == nil {
					e.Cache.Put(baseKey[i], res)
				}
			}
		} else {
			val.Values[scIdx-1][i] = price
		}
	}
	// Skipped (scenario, claim) pairs inherit the base value.
	for s := range scenarios {
		for i := range pf.Items {
			if skipped[s][i] {
				val.Values[s][i] = val.Base[i]
			}
		}
	}
	return val, nil
}

// PortfolioGreeks aggregates claim-level sensitivities into book-level
// totals (simple sums: every claim is long one unit).
type PortfolioGreeks struct {
	// Value is the base book value.
	Value float64
	// Delta, Gamma, Vega, Theta, Rho are the summed sensitivities.
	Delta, Gamma, Vega, Theta, Rho float64
}

// Greeks computes claim-level greeks for every item of the portfolio
// (sequentially — intended for closed-form-dominated books or samples)
// and sums them.
func Greeks(pf *portfolio.Portfolio) (PortfolioGreeks, error) {
	var out PortfolioGreeks
	for _, it := range pf.Items {
		g, err := premia.ComputeGreeks(it.Problem, premia.GreekBumps{})
		if err != nil {
			return out, fmt.Errorf("risk: greeks of %s: %w", it.Name, err)
		}
		out.Value += g.Price
		out.Delta += g.Delta
		out.Gamma += g.Gamma
		out.Vega += g.Vega
		out.Theta += g.Theta
		out.Rho += g.Rho
	}
	return out, nil
}
