package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// ImpliedVol inverts the Black–Scholes formula: it returns the volatility
// at which the European call (or put) with the given parameters has the
// given market price. Newton–Raphson on vega with a bisection safeguard;
// accurate to ~1e-12 in price. It returns an error if the price violates
// the no-arbitrage bounds.
func ImpliedVol(price float64, m bsParams, k, t float64, call bool) (float64, error) {
	if k <= 0 || t <= 0 || m.S0 <= 0 {
		return 0, fmt.Errorf("premia: implied vol needs positive S0, K, T")
	}
	df := math.Exp(-m.R * t)
	dq := math.Exp(-m.Div * t)
	var lower, upper float64
	if call {
		lower = math.Max(m.S0*dq-k*df, 0)
		upper = m.S0 * dq
	} else {
		lower = math.Max(k*df-m.S0*dq, 0)
		upper = k * df
	}
	if price < lower-1e-12 || price > upper+1e-12 {
		return 0, fmt.Errorf("premia: price %v outside arbitrage bounds [%v, %v]", price, lower, upper)
	}

	value := func(sigma float64) (float64, float64) {
		mm := m
		mm.Sigma = sigma
		d1, _ := bsD1D2(mm, k, t)
		vega := m.S0 * dq * mathutil.NormPDF(d1) * math.Sqrt(t)
		var pv float64
		if call {
			pv, _ = bsCallPrice(mm, k, t)
		} else {
			pv, _ = bsPutPrice(mm, k, t)
		}
		return pv, vega
	}

	// Bracket: price is increasing in sigma.
	lo, hi := 1e-6, 5.0
	pLo, _ := value(lo)
	pHi, _ := value(hi)
	if price <= pLo {
		return lo, nil
	}
	if price >= pHi {
		return 0, fmt.Errorf("premia: implied vol above %v", hi)
	}
	sigma := 0.2 // standard seed
	for iter := 0; iter < 100; iter++ {
		pv, vega := value(sigma)
		diff := pv - price
		if math.Abs(diff) < 1e-12*math.Max(1, price) {
			return sigma, nil
		}
		// Shrink the bracket.
		if diff > 0 {
			hi = sigma
		} else {
			lo = sigma
		}
		// Newton step, falling back to bisection when it leaves the
		// bracket or vega vanishes (deep ITM/OTM).
		if vega > 1e-12 {
			next := sigma - diff/vega
			if next > lo && next < hi {
				sigma = next
				continue
			}
		}
		sigma = 0.5 * (lo + hi)
	}
	return sigma, nil
}

// ImpliedVolFromProblem reads the parameters from a vanilla problem and
// inverts the given market price.
func ImpliedVolFromProblem(p *Problem, price float64) (float64, error) {
	m, err := bsFrom(p)
	if err != nil {
		// Implied vol does not need sigma itself: tolerate its absence.
		if p.Params.Get("S0", 0) <= 0 {
			return 0, err
		}
		m = bsParams{
			S0:    p.Params.Get("S0", 0),
			R:     p.Params.Get("r", 0),
			Div:   p.Params.Get("divid", 0),
			Sigma: 0.2,
		}
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return 0, err
	}
	switch p.Option {
	case OptCallEuro:
		return ImpliedVol(price, m, o.K, o.T, true)
	case OptPutEuro:
		return ImpliedVol(price, m, o.K, o.T, false)
	default:
		return 0, fmt.Errorf("premia: implied vol defined for vanilla options, not %q", p.Option)
	}
}
