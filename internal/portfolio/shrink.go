package portfolio

import (
	"fmt"
	"math"
)

// effortFloors are the per-parameter lower bounds ScaleEffort respects:
// below these the numerical methods stop being meaningful (an LSM
// regression needs enough paths to fit its basis, a PDE needs a few
// time steps to be stable).
var effortFloors = []struct {
	key   string
	floor float64
}{
	{"paths", 512},
	{"steps", 16},
	{"mcsteps", 8},
}

// ScaleEffort scales the portfolio's numerical-effort parameters (the
// same paths/steps/mcsteps axes CalibrateCosts shrinks) by factor, in
// place, flooring each at its method-validity minimum. The claim count,
// model mix and relative cost structure — what the farm scheduler sees
// — are preserved; only the per-task arithmetic shrinks. Virtual costs
// are rescaled by each claim's achieved shrink so simulated and live
// scheduling stay consistent. This is how the live VaR presets run the
// full 7931-claim realistic book in minutes instead of hours.
func (pf *Portfolio) ScaleEffort(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("portfolio: effort factor must be in (0,1], got %v", factor)
	}
	for i := range pf.Items {
		it := &pf.Items[i]
		achieved := 1.0
		for _, ef := range effortFloors {
			v, ok := it.Problem.Params[ef.key]
			if !ok {
				continue
			}
			nv := math.Round(v * factor)
			if nv < ef.floor {
				nv = ef.floor
			}
			if nv < v {
				achieved *= nv / v
				it.Problem.Set(ef.key, nv)
			}
		}
		if achieved < 1 {
			it.Cost *= achieved
			if it.Cost < 1e-6 {
				it.Cost = 1e-6
			}
		}
	}
	return nil
}
