package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// scope builds a Match function accepting exactly the given module
// packages (paths relative to the module root, e.g. "internal/farm").
func scope(rel ...string) func(string) bool {
	return func(importPath string) bool {
		for _, r := range rel {
			if strings.HasSuffix(importPath, "/"+r) || importPath == r {
				return true
			}
		}
		return false
	}
}

// pkgFuncCall reports whether call invokes pkgPath.name (e.g.
// "time".Now), resolving the package through the type info so import
// aliases are handled.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	for _, name := range names {
		if sel.Sel.Name == name {
			return name, true
		}
	}
	return "", false
}

// namedType unwraps pointers and aliases down to a *types.Named, or
// nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (through pointers/aliases) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// exprType returns the static type of e, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isTestFile reports whether the file's basename ends in _test.go (the
// loader skips these, but testdata harness files may reintroduce them).
func isTestFile(pkg *Package, f *ast.File) bool {
	name := pkg.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
