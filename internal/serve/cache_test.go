package serve

import (
	"fmt"
	"sync"
	"testing"

	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64, nil)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", premia.Result{Price: 1.5})
	res, ok := c.Get("a")
	if !ok || res.Price != 1.5 {
		t.Fatalf("got %+v ok=%v", res, ok)
	}
	// Overwrite keeps one entry.
	c.Put("a", premia.Result{Price: 2.5})
	if res, _ := c.Get("a"); res.Price != 2.5 {
		t.Fatalf("overwrite lost: %+v", res)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	reg := telemetry.New()
	c := NewCache(32, reg) // 2 per shard
	for i := 0; i < 400; i++ {
		c.Put(fmt.Sprintf("key-%d", i), premia.Result{Price: float64(i)})
	}
	if c.Len() > 32 {
		t.Fatalf("cache grew to %d entries, capacity 32", c.Len())
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.cache.evictions"] == 0 {
		t.Fatal("no evictions recorded")
	}
	if got := snap.Gauges["serve.cache.entries"]; got != float64(c.Len()) {
		t.Fatalf("entries gauge %v, want %v", got, c.Len())
	}
}

// TestCacheCapacityInvariant overfills caches of sizes that do not
// divide evenly by the shard count and checks the total never exceeds
// the requested capacity. The pre-fix ceil division handed every shard
// ⌈capacity/16⌉ entries, overshooting by up to 15 (a NewCache(1) held
// 16 entries).
func TestCacheCapacityInvariant(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 15, 16, 17, 30, 31, 33, 47, 100, 255, 1000, 1023} {
		c := NewCache(capacity, nil)
		total := 0
		for i := range c.shards {
			total += c.shards[i].capacity
		}
		if total != capacity {
			t.Errorf("capacity %d: shard budgets sum to %d", capacity, total)
		}
		for i := 0; i < 3*capacity+17; i++ {
			c.Put(fmt.Sprintf("cap%d-key-%d", capacity, i), premia.Result{Price: float64(i)})
		}
		if got := c.Len(); got > capacity {
			t.Errorf("capacity %d: cache holds %d entries after overfill", capacity, got)
		}
	}
}

func TestCacheLRURecency(t *testing.T) {
	c := NewCache(cacheShards, nil) // 1 entry per shard
	// Find two keys landing on the same shard.
	shard := c.shardFor("k0")
	other := ""
	for i := 1; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == shard {
			other = k
			break
		}
	}
	c.Put("k0", premia.Result{Price: 1})
	c.Put(other, premia.Result{Price: 2}) // evicts k0 (capacity 1)
	if _, ok := c.Get("k0"); ok {
		t.Fatal("LRU kept the older entry beyond capacity")
	}
	if res, ok := c.Get(other); !ok || res.Price != 2 {
		t.Fatal("newest entry evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, telemetry.New())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%64)
				c.Put(k, premia.Result{Price: float64(i)})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}
