package varisk

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"riskbench/internal/portfolio"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// Config tunes a VaR/CVaR estimation.
type Config struct {
	// Alphas are the confidence levels to report (default {0.99}).
	// Component attribution is computed at Alphas[0], so list the level
	// whose tail you want attributed first.
	Alphas []float64
	// HorizonDays is the horizon the scenarios were generated at; it is
	// echoed in the report and anchors the ScaleDays rescaling.
	HorizonDays float64
	// ScaleDays, when > 0 together with HorizonDays, rescales the
	// reported VaR/CVaR to a different horizon by the square-root-of-time
	// rule: VaR(ScaleDays) = VaR(HorizonDays)·sqrt(ScaleDays/HorizonDays).
	// The rule is exact for i.i.d. normal P&L and an approximation
	// everywhere else; the raw PnLs sample stays unscaled.
	ScaleDays float64
	// TopComponents bounds how many per-position attribution rows the
	// report keeps (default 10; the total over all claims is always
	// recorded in ComponentTotal).
	TopComponents int
}

func (cfg Config) withDefaults() Config {
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = []float64{0.99}
	}
	if cfg.TopComponents <= 0 {
		cfg.TopComponents = 10
	}
	return cfg
}

// Validate rejects configurations the estimators cannot evaluate:
// confidence levels outside (0,1) — which risk.VaR/ExpectedShortfall
// would panic on — and a ScaleDays rescaling with no HorizonDays to
// anchor the square-root-of-time rule (scale() would silently return 1).
// Both estimators call it on entry, so user-supplied levels surface as
// errors, not panics.
func (cfg Config) Validate() error {
	for _, a := range cfg.Alphas {
		if !(a > 0 && a < 1) {
			return fmt.Errorf("varisk: confidence level %v outside (0,1)", a)
		}
	}
	if cfg.ScaleDays > 0 && cfg.HorizonDays <= 0 {
		return fmt.Errorf("varisk: ScaleDays %g needs HorizonDays > 0 to anchor the square-root-of-time rescaling", cfg.ScaleDays)
	}
	return nil
}

// scale returns the square-root-of-time horizon rescaling factor.
func (cfg Config) scale() float64 {
	if cfg.ScaleDays > 0 && cfg.HorizonDays > 0 {
		return math.Sqrt(cfg.ScaleDays / cfg.HorizonDays)
	}
	return 1
}

// Estimate is one confidence level's VaR/CVaR pair (losses as positive
// numbers, horizon-scaled per the config).
type Estimate struct {
	Alpha float64
	VaR   float64
	CVaR  float64
}

// Component is one claim's share of the tail loss: the average of its
// P&L over the CVaR tail scenarios, negated and horizon-scaled. The
// components of all claims sum to the book CVaR at the attribution
// level (Euler attribution of expected shortfall). When the tail's
// average P&L is a profit, risk.ExpectedShortfall clamps the book CVaR
// to zero and attribution mirrors the clamp: no components, zero total,
// so the identity holds there too.
type Component struct {
	Name         string
	Contribution float64
}

// Report is the outcome of one VaR estimation.
type Report struct {
	// Method is "full" or "deltagamma".
	Method string
	// BaseValue is the unshocked book value.
	BaseValue float64
	// Scenarios is the P&L sample size.
	Scenarios int
	// HorizonDays/ScaleDays echo the config.
	HorizonDays, ScaleDays float64
	// Estimates holds one row per configured confidence level.
	Estimates []Estimate
	// AttributionAlpha is the level the Components tail was taken at.
	AttributionAlpha float64
	// Components are the largest per-claim tail-loss contributions,
	// descending; ComponentTotal is the sum over ALL claims (= the book
	// CVaR at AttributionAlpha, both clamped to zero when the tail is
	// profit-making).
	Components     []Component
	ComponentTotal float64
	// PnLs is the raw scenario P&L sample, in scenario order, unscaled.
	PnLs []float64
	// WireDeltas counts the claims whose first-order spot term came from
	// the delta already shipped over the farm wire rather than a bump
	// (delta–gamma method only).
	WireDeltas int
}

// estimates evaluates VaR/CVaR at every configured level.
func estimates(pnls []float64, cfg Config) []Estimate {
	scale := cfg.scale()
	out := make([]Estimate, len(cfg.Alphas))
	for i, a := range cfg.Alphas {
		out[i] = Estimate{
			Alpha: a,
			VaR:   risk.VaR(pnls, a) * scale,
			CVaR:  risk.ExpectedShortfall(pnls, a) * scale,
		}
	}
	return out
}

// tailIndices returns the scenario indices of the CVaR tail at alpha:
// the k = max(1, floor((1-alpha)·n)) scenarios with the lowest P&L,
// matching risk.ExpectedShortfall's tail exactly.
func tailIndices(pnls []float64, alpha float64) []int {
	n := len(pnls)
	if n == 0 {
		return nil
	}
	k := int((1 - alpha) * float64(n))
	if k < 1 {
		k = 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pnls[idx[a]] < pnls[idx[b]] })
	return idx[:k]
}

// attribute builds the component rows from a per-claim tail-P&L
// accessor: itemPnL(s, i) is claim i's P&L in tail scenario s.
func attribute(names []string, tail []int, itemPnL func(s, i int) float64, cfg Config) ([]Component, float64) {
	if len(tail) == 0 {
		return nil, 0
	}
	scale := cfg.scale()
	comps := make([]Component, len(names))
	total := 0.0
	for i, name := range names {
		sum := 0.0
		for _, s := range tail {
			sum += itemPnL(s, i)
		}
		c := -sum / float64(len(tail)) * scale
		comps[i] = Component{Name: name, Contribution: c}
		total += c
	}
	sort.Slice(comps, func(a, b int) bool {
		if comps[a].Contribution != comps[b].Contribution {
			return comps[a].Contribution > comps[b].Contribution
		}
		return comps[a].Name < comps[b].Name
	})
	if total <= 0 {
		// The tail's average book P&L is a profit; the estimators clamp
		// CVaR to zero there, so there is no tail loss to attribute and
		// the components-sum-to-CVaR identity keeps holding.
		return nil, 0
	}
	if len(comps) > cfg.TopComponents {
		comps = comps[:cfg.TopComponents]
	}
	return comps, total
}

// FullReval estimates VaR/CVaR by full revaluation: every scenario
// reprices the whole portfolio through the engine's farm (one flat
// scenario×claim batch — the nested-simulation workload), with the
// engine's content-addressed cache answering the base-scenario column
// when it is warm. The per-claim surface feeds the component-VaR
// attribution. Spans: var.full wraps the engine's risk.revalue tree, so
// /debug/traces shows the outer estimation over the inner repricing.
func FullReval(ctx context.Context, eng risk.Engine, pf *portfolio.Portfolio, scens []risk.Scenario, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := eng.Telemetry
	var span *telemetry.Span
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		span = reg.StartSpanIn(tc, "var.full")
	} else {
		span = reg.StartTrace("var.full")
	}
	defer span.End()
	if tc := span.Context(); tc.Valid() {
		ctx = telemetry.ContextWithTrace(ctx, tc)
	}
	val, err := eng.RevalueContext(ctx, pf, scens)
	if err != nil {
		return nil, fmt.Errorf("varisk: full revaluation: %w", err)
	}
	reg.Counter("var.full.reports").Add(1)
	reg.Counter("var.full.scenarios").Add(int64(len(scens)))
	pnls := val.PnLs()
	rep := &Report{
		Method:           "full",
		BaseValue:        val.TotalBase(),
		Scenarios:        len(scens),
		HorizonDays:      cfg.HorizonDays,
		ScaleDays:        cfg.ScaleDays,
		Estimates:        estimates(pnls, cfg),
		AttributionAlpha: cfg.Alphas[0],
		PnLs:             pnls,
	}
	tail := tailIndices(pnls, cfg.Alphas[0])
	rep.Components, rep.ComponentTotal = attribute(val.Items, tail, val.ItemPnL, cfg)
	return rep, nil
}

// Sensitivities are the per-claim derivatives the delta–gamma expansion
// evaluates, taken in the scenario coordinates of ShockCoords: xs is
// the relative spot move, xv the relative volatility move, xr the
// absolute rate move.
type Sensitivities struct {
	// Names are the claim names, portfolio order.
	Names []string
	// Base are the claims' unshocked values; BaseValue is their sum.
	Base      []float64
	BaseValue float64
	// DSpot/D2Spot are ∂V/∂xs and ∂²V/∂xs² per claim; DVol is ∂V/∂xv;
	// DRate is ∂V/∂xr. A claim outside a factor's universe (no spot, no
	// vol, no rate parameter) holds zeros there and is flat in that
	// coordinate.
	DSpot, D2Spot, DVol, DRate []float64
	// FromWire marks claims whose DSpot came from the "delta" field the
	// pricer shipped over the farm wire (rescaled by S0 into move
	// coordinates) instead of the central difference.
	FromWire []bool
	// SpotBump/VolBump/RateBump echo the finite-difference bump sizes.
	SpotBump, VolBump, RateBump float64
}

// Default finite-difference bumps for CollectSensitivities, in
// ShockCoords units: ±1% spot, ±5% relative vol, ±10 bp rate.
const (
	defaultSpotBump = 0.01
	defaultVolBump  = 0.05
	defaultRateBump = 0.001
)

// CollectSensitivities measures the portfolio's delta–gamma–vega–rho
// profile with one six-scenario revaluation through the farm (spot
// up/down, vol up/down, rate up/down around the base). Claims whose
// pricer already reports a spot delta over the wire (hasdelta) use that
// analytic delta — rescaled by S0 into relative-move coordinates — for
// the first-order spot term; everything else falls back to the central
// difference. The result is what DeltaGamma evaluates scenarios
// against, collected once and reused across rounds.
func CollectSensitivities(ctx context.Context, eng risk.Engine, pf *portfolio.Portfolio) (*Sensitivities, error) {
	reg := eng.Telemetry
	var span *telemetry.Span
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		span = reg.StartSpanIn(tc, "var.sensitivities")
	} else {
		span = reg.StartTrace("var.sensitivities")
	}
	defer span.End()
	if tc := span.Context(); tc.Valid() {
		ctx = telemetry.ContextWithTrace(ctx, tc)
	}
	hs, hv, hr := defaultSpotBump, defaultVolBump, defaultRateBump
	scens := []risk.Scenario{
		{Name: "dg-spot-up", Shifts: []risk.Shift{{Param: "S0", Rel: hs}}},
		{Name: "dg-spot-dn", Shifts: []risk.Shift{{Param: "S0", Rel: -hs}}},
		{Name: "dg-vol-up", Shifts: []risk.Shift{{Param: risk.VolToken, Rel: hv}}},
		{Name: "dg-vol-dn", Shifts: []risk.Shift{{Param: risk.VolToken, Rel: -hv}}},
		{Name: "dg-rate-up", Shifts: []risk.Shift{{Param: risk.RateToken, Abs: hr}}},
		{Name: "dg-rate-dn", Shifts: []risk.Shift{{Param: risk.RateToken, Abs: -hr}}},
	}
	val, err := eng.RevalueContext(ctx, pf, scens)
	if err != nil {
		return nil, fmt.Errorf("varisk: sensitivity revaluation: %w", err)
	}
	n := len(val.Items)
	s := &Sensitivities{
		Names:    val.Items,
		Base:     val.Base,
		DSpot:    make([]float64, n),
		D2Spot:   make([]float64, n),
		DVol:     make([]float64, n),
		DRate:    make([]float64, n),
		FromWire: make([]bool, n),
		SpotBump: hs, VolBump: hv, RateBump: hr,
	}
	wire := 0
	for i := 0; i < n; i++ {
		b := val.Base[i]
		s.BaseValue += b
		su, sd := val.Values[0][i], val.Values[1][i]
		s.DSpot[i] = (su - sd) / (2 * hs)
		s.D2Spot[i] = (su - 2*b + sd) / (hs * hs)
		s.DVol[i] = (val.Values[2][i] - val.Values[3][i]) / (2 * hv)
		s.DRate[i] = (val.Values[4][i] - val.Values[5][i]) / (2 * hr)
		if val.BaseHasDelta[i] {
			if s0, ok := pf.Items[i].Problem.Params["S0"]; ok && s0 > 0 {
				// dV/dxs = dV/dS · S0 when xs is the relative spot move.
				s.DSpot[i] = val.BaseDelta[i] * s0
				s.FromWire[i] = true
				wire++
			}
		}
	}
	reg.Counter("var.sensitivities.collected").Add(1)
	reg.Counter("var.sensitivities.wire_deltas").Add(int64(wire))
	return s, nil
}

// DeltaGamma estimates VaR/CVaR from the Taylor expansion of the book
// P&L in the scenario coordinates — no repricing at all, so a scenario
// costs a handful of multiplications instead of a farm batch:
//
//	P&L(xs, xv, xr) ≈ A·xs + ½·G·xs² + V·xv + R·xr
//
// with A/G/V/R the book-aggregated sensitivities. Per-claim terms are
// touched only for the tail scenarios, to build the component
// attribution. Every scenario must project onto ShockCoords; anything
// richer needs FullReval.
func DeltaGamma(sens *Sensitivities, scens []risk.Scenario, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(sens.Names)
	var aggA, aggG, aggV, aggR float64
	wire := 0
	for i := 0; i < n; i++ {
		aggA += sens.DSpot[i]
		aggG += sens.D2Spot[i]
		aggV += sens.DVol[i]
		aggR += sens.DRate[i]
		if sens.FromWire[i] {
			wire++
		}
	}
	pnls := make([]float64, len(scens))
	xss := make([]float64, len(scens))
	xvs := make([]float64, len(scens))
	xrs := make([]float64, len(scens))
	for s, sc := range scens {
		xs, xv, xr, ok := ShockCoords(sc)
		if !ok {
			return nil, fmt.Errorf("varisk: scenario %q does not project onto delta–gamma coordinates", sc.Name)
		}
		xss[s], xvs[s], xrs[s] = xs, xv, xr
		pnls[s] = aggA*xs + 0.5*aggG*xs*xs + aggV*xv + aggR*xr
	}
	rep := &Report{
		Method:           "deltagamma",
		BaseValue:        sens.BaseValue,
		Scenarios:        len(scens),
		HorizonDays:      cfg.HorizonDays,
		ScaleDays:        cfg.ScaleDays,
		Estimates:        estimates(pnls, cfg),
		AttributionAlpha: cfg.Alphas[0],
		PnLs:             pnls,
		WireDeltas:       wire,
	}
	tail := tailIndices(pnls, cfg.Alphas[0])
	itemPnL := func(s, i int) float64 {
		xs := xss[s]
		return sens.DSpot[i]*xs + 0.5*sens.D2Spot[i]*xs*xs + sens.DVol[i]*xvs[s] + sens.DRate[i]*xrs[s]
	}
	rep.Components, rep.ComponentTotal = attribute(sens.Names, tail, itemPnL, cfg)
	return rep, nil
}

// Format renders the report as the CLI's table.
func (r *Report) Format() string {
	var b strings.Builder
	horizon := ""
	if r.HorizonDays > 0 {
		horizon = fmt.Sprintf(", horizon %gd", r.HorizonDays)
		if r.ScaleDays > 0 {
			horizon += fmt.Sprintf(" scaled to %gd", r.ScaleDays)
		}
	}
	fmt.Fprintf(&b, "VaR report (%s, %d scenarios%s)\n", r.Method, r.Scenarios, horizon)
	fmt.Fprintf(&b, "base value: %.2f\n", r.BaseValue)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "alpha", "VaR", "CVaR")
	for _, e := range r.Estimates {
		fmt.Fprintf(&b, "%7.2f%% %14.2f %14.2f\n", e.Alpha*100, e.VaR, e.CVaR)
	}
	if len(r.Components) > 0 {
		fmt.Fprintf(&b, "top components at %.2f%% (CVaR attribution, book total %.2f):\n",
			r.AttributionAlpha*100, r.ComponentTotal)
		for _, c := range r.Components {
			fmt.Fprintf(&b, "  %-28s %14.2f\n", c.Name, c.Contribution)
		}
	}
	return b.String()
}
