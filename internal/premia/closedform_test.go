package premia

import (
	"math"
	"testing"
	"testing/quick"
)

// bsProblem builds a standard one-dimensional Black–Scholes problem.
func bsProblem(option, method string, k, t float64) *Problem {
	return New().
		SetModel(ModelBS1D).SetOption(option).SetMethod(method).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0.02).Set("sigma", 0.25).
		Set("K", k).Set("T", t)
}

func TestCFCallKnownValue(t *testing.T) {
	// Hull-style reference: S=100, K=100, r=5%, q=2%, σ=25%, T=1.
	// Computed independently: d1 = (0.03 + 0.03125)/0.25 = 0.245,
	// C = 100·e^{-0.02}·N(0.245) − 100·e^{-0.05}·N(−0.005).
	p := bsProblem(OptCallEuro, MethodCFCall, 100, 1)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	d1 := 0.245
	d2 := -0.005
	want := 100*math.Exp(-0.02)*0.5*math.Erfc(-d1/math.Sqrt2) - 100*math.Exp(-0.05)*0.5*math.Erfc(-d2/math.Sqrt2)
	if math.Abs(res.Price-want) > 1e-10 {
		t.Errorf("CF call = %.12f, want %.12f", res.Price, want)
	}
	if !res.HasDelta || res.Delta <= 0 || res.Delta >= 1 {
		t.Errorf("call delta = %v, want in (0,1)", res.Delta)
	}
}

func TestCFPutCallParity(t *testing.T) {
	f := func(kSeed, tSeed uint16) bool {
		k := 50 + float64(kSeed%1000)/10 // strikes in [50, 150)
		tt := 0.1 + float64(tSeed%80)/10 // maturities in [0.1, 8.1)
		call, err := bsProblem(OptCallEuro, MethodCFCall, k, tt).Compute()
		if err != nil {
			return false
		}
		put, err := bsProblem(OptPutEuro, MethodCFPut, k, tt).Compute()
		if err != nil {
			return false
		}
		// C − P = S e^{-qT} − K e^{-rT}
		want := 100*math.Exp(-0.02*tt) - k*math.Exp(-0.05*tt)
		if math.Abs(call.Price-put.Price-want) > 1e-9 {
			return false
		}
		// Delta parity: Δc − Δp = e^{-qT}
		return math.Abs(call.Delta-put.Delta-math.Exp(-0.02*tt)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCFCallBounds(t *testing.T) {
	// Arbitrage bounds: max(S e^{-qT} − K e^{-rT}, 0) ≤ C ≤ S e^{-qT}.
	f := func(kSeed, tSeed uint16) bool {
		k := 20 + float64(kSeed%2000)/10
		tt := 0.05 + float64(tSeed%100)/10
		res, err := bsProblem(OptCallEuro, MethodCFCall, k, tt).Compute()
		if err != nil {
			return false
		}
		lower := math.Max(100*math.Exp(-0.02*tt)-k*math.Exp(-0.05*tt), 0)
		upper := 100 * math.Exp(-0.02*tt)
		return res.Price >= lower-1e-12 && res.Price <= upper+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCFCallMonotoneInStrike(t *testing.T) {
	prev := math.Inf(1)
	for k := 60.0; k <= 140; k += 2 {
		res, err := bsProblem(OptCallEuro, MethodCFCall, k, 1).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if res.Price > prev+1e-12 {
			t.Fatalf("call price increased with strike at K=%v", k)
		}
		prev = res.Price
	}
}

func barrierProblem(method string, k, t, l float64) *Problem {
	p := bsProblem(OptCallDownOut, method, k, t)
	p.Set("L", l)
	return p
}

func TestBarrierDegenerateCases(t *testing.T) {
	// Barrier far below spot: the down-and-out call tends to the vanilla.
	res, err := barrierProblem(MethodCFCallDownOut, 100, 1, 1e-6).Compute()
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-vanilla.Price) > 1e-6 {
		t.Errorf("far barrier: %v, vanilla %v", res.Price, vanilla.Price)
	}
	// Spot at the barrier: knocked out, price = discounted rebate (0).
	ko, err := barrierProblem(MethodCFCallDownOut, 100, 1, 100).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if ko.Price != 0 {
		t.Errorf("knocked-out price = %v, want 0", ko.Price)
	}
}

func TestBarrierBelowVanilla(t *testing.T) {
	// A down-and-out call is worth at most the vanilla call and is
	// monotone in the barrier level.
	vanilla, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	prev := vanilla.Price
	for _, l := range []float64{50, 70, 80, 90, 95, 99} {
		res, err := barrierProblem(MethodCFCallDownOut, 100, 1, l).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if res.Price > vanilla.Price+1e-10 {
			t.Errorf("L=%v: barrier %v above vanilla %v", l, res.Price, vanilla.Price)
		}
		if res.Price > prev+1e-10 {
			t.Errorf("L=%v: price %v not decreasing in barrier (prev %v)", l, res.Price, prev)
		}
		prev = res.Price
	}
}

func TestBarrierBothBranches(t *testing.T) {
	// L < K and L > K exercise the two Reiner–Rubinstein branches. Both
	// must be continuous at L = K.
	below, err := barrierProblem(MethodCFCallDownOut, 90, 1, 90-1e-7).Compute()
	if err != nil {
		t.Fatal(err)
	}
	above, err := barrierProblem(MethodCFCallDownOut, 90, 1, 90+1e-7).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(below.Price-above.Price) > 1e-3 {
		t.Errorf("discontinuity at L=K: %v vs %v", below.Price, above.Price)
	}
}

func TestBarrierRebate(t *testing.T) {
	// A positive rebate increases the price; at L >= S0 the price is the
	// discounted rebate exactly.
	base, err := barrierProblem(MethodCFCallDownOut, 100, 1, 90).Compute()
	if err != nil {
		t.Fatal(err)
	}
	withRebate, err := barrierProblem(MethodCFCallDownOut, 100, 1, 90).Set("rebate", 5).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if withRebate.Price <= base.Price {
		t.Errorf("rebate did not increase price: %v <= %v", withRebate.Price, base.Price)
	}
	ko, err := barrierProblem(MethodCFCallDownOut, 100, 1, 120).Set("rebate", 5).Compute()
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * math.Exp(-0.05)
	if math.Abs(ko.Price-want) > 1e-12 {
		t.Errorf("knocked-out rebate = %v, want %v", ko.Price, want)
	}
}

func hestonProblem(option, method string) *Problem {
	return New().
		SetModel(ModelHeston).SetOption(option).SetMethod(method).
		Set("S0", 100).Set("r", 0.03).Set("divid", 0).
		Set("V0", 0.04).Set("kappa", 2).Set("theta", 0.04).
		Set("sigmaV", 0.3).Set("rhoSV", -0.7).
		Set("K", 100).Set("T", 1)
}

func TestHestonCFDegeneratesToBS(t *testing.T) {
	// With σᵥ→0 and V0=θ the variance is frozen at θ: Heston must agree
	// with Black–Scholes at σ = √θ.
	p := hestonProblem(OptCallEuro, MethodCFHeston)
	p.Set("sigmaV", 1e-6).Set("kappa", 1).Set("V0", 0.04).Set("theta", 0.04)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	bs := New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("S0", 100).Set("r", 0.03).Set("sigma", 0.2).Set("K", 100).Set("T", 1)
	want, err := bs.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-want.Price) > 1e-4 {
		t.Errorf("Heston σᵥ→0 = %v, BS = %v", res.Price, want.Price)
	}
}

func TestHestonPutCallParity(t *testing.T) {
	call, err := hestonProblem(OptCallEuro, MethodCFHeston).Compute()
	if err != nil {
		t.Fatal(err)
	}
	put, err := hestonProblem(OptPutEuro, MethodCFHeston).Compute()
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 - 100*math.Exp(-0.03)
	if math.Abs(call.Price-put.Price-want) > 1e-8 {
		t.Errorf("parity violated: C-P = %v, want %v", call.Price-put.Price, want)
	}
}

func TestHestonCFAgainstMC(t *testing.T) {
	cf, err := hestonProblem(OptCallEuro, MethodCFHeston).Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := hestonProblem(OptCallEuro, MethodMCHeston).
		Set("paths", 40000).Set("mcsteps", 100).Compute()
	if err != nil {
		t.Fatal(err)
	}
	// Allow 4 standard errors plus discretisation slack.
	tol := 4*mc.PriceCI/1.96 + 0.05
	if math.Abs(cf.Price-mc.Price) > tol {
		t.Errorf("Heston CF %v vs MC %v ± %v", cf.Price, mc.Price, mc.PriceCI)
	}
}

func TestHestonCFPositive(t *testing.T) {
	res, err := hestonProblem(OptCallEuro, MethodCFHeston).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Price <= 0 || res.Price >= 100 {
		t.Errorf("Heston call price out of bounds: %v", res.Price)
	}
	if res.Delta <= 0 || res.Delta >= 1 {
		t.Errorf("Heston call delta out of bounds: %v", res.Delta)
	}
}

func upBarrierProblem(method string, k, t, u float64) *Problem {
	p := bsProblem(OptCallUpOut, method, k, t)
	p.Set("U", u)
	return p
}

func TestUpOutDegenerateCases(t *testing.T) {
	// Barrier far above spot: tends to the vanilla call.
	far, err := upBarrierProblem(MethodCFCallUpOut, 100, 1, 1e6).Compute()
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(far.Price-vanilla.Price) > 1e-6 {
		t.Errorf("far barrier %v vs vanilla %v", far.Price, vanilla.Price)
	}
	// Barrier at or below the strike: worthless (in-the-money requires
	// crossing the barrier).
	dead, err := upBarrierProblem(MethodCFCallUpOut, 120, 1, 110).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if dead.Price != 0 {
		t.Errorf("U<=K price %v, want 0", dead.Price)
	}
	// Spot at the barrier: knocked out, discounted rebate.
	ko, err := upBarrierProblem(MethodCFCallUpOut, 90, 1, 100).Set("rebate", 3).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ko.Price-3*math.Exp(-0.05)) > 1e-12 {
		t.Errorf("knocked-out rebate %v", ko.Price)
	}
}

func TestUpOutMonotoneInBarrier(t *testing.T) {
	vanilla, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, u := range []float64{105, 115, 130, 160, 250} {
		res, err := upBarrierProblem(MethodCFCallUpOut, 100, 1, u).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if res.Price < prev-1e-10 {
			t.Errorf("U=%v: price %v not increasing (prev %v)", u, res.Price, prev)
		}
		if res.Price > vanilla.Price+1e-10 {
			t.Errorf("U=%v: price %v above vanilla %v", u, res.Price, vanilla.Price)
		}
		prev = res.Price
	}
}

func TestUpOutCFAgainstMC(t *testing.T) {
	cf, err := upBarrierProblem(MethodCFCallUpOut, 100, 1, 130).Compute()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := upBarrierProblem(MethodMCEuro, 100, 1, 130).
		Set("paths", 100000).Set("mcsteps", 50).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cf.Price - mc.Price); diff > 4*mc.PriceCI+0.03 {
		t.Errorf("up-out CF %v vs MC %v ± %v", cf.Price, mc.Price, mc.PriceCI)
	}
}

func TestUpOutPlusUpInEqualsVanilla(t *testing.T) {
	// In-out parity through the hit probability identity is implicit in
	// the construction; verify the complementary structure via rebate = 0:
	// upOutCall + upInCall(=C−upOut) = C by definition, so instead assert
	// the hit probability is within [0,1] and increasing in maturity.
	m := bsParams{S0: 100, R: 0.03, Div: 0.01, Sigma: 0.25}
	prev := 0.0
	for _, tt := range []float64{0.1, 0.5, 1, 2, 5} {
		pr := upInProbability(m, tt, 130)
		if pr < prev-1e-12 || pr < 0 || pr > 1 {
			t.Fatalf("hit prob %v at T=%v (prev %v)", pr, tt, prev)
		}
		prev = pr
	}
}
