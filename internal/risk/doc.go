// Package risk implements the benchmark's raison d'être as stated in the
// paper's introduction: banking regulation requires a daily evaluation of
// the risk of the whole portfolio, which means pricing every claim "for
// various values of these model parameters to measure their
// sensibilities" — around 10⁶ atomic computations per day.
//
// The package turns a portfolio plus a set of parameter scenarios
// (spot/volatility/rate ladders, stress events, full spot×vol grids) into
// that flood of atomic pricing problems, revalues them on the Robin-Hood
// farm, and aggregates scenario P&L, empirical value-at-risk and
// portfolio-level greeks.
package risk
