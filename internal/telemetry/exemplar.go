package telemetry

import (
	"fmt"
	"sync"
)

// Exemplars attach a concrete trace to an aggregate: each histogram
// bucket remembers the most recent traced observation that landed in
// it, so a p99 read is one hop from the span tree that produced it.
// Storage is lazy (one pointer per histogram until the first traced
// observation) and last-write-wins, which makes exemplars deterministic
// under the virtual clock: replaying the same observation sequence
// yields the same exemplar table.

// Exemplar is one sampled (trace, value) pair retained by a histogram
// bucket.
type Exemplar struct {
	// Value is the exact observed value (not the bucket midpoint).
	Value float64
	// TraceID is the trace the observation belonged to.
	TraceID uint64
	// When is the registry-clock time of the observation.
	When float64
}

// exemplarTable holds per-bucket exemplars, guarded by a mutex:
// exemplar writes happen only on traced observations (a small fraction
// of the total) so the lock is off the untraced hot path entirely.
type exemplarTable struct {
	mu  sync.Mutex
	ex  [histBuckets]Exemplar
	set [histBuckets]bool
}

// ObserveExemplar records v like Observe and additionally files
// (traceID, v, when) as the exemplar of v's bucket. traceID 0 degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64, when float64) {
	h.Observe(v)
	if h == nil || traceID == 0 || v != v { // v != v catches NaN, like Observe
		return
	}
	t := h.exemplars()
	i := bucketIndex(v)
	t.mu.Lock()
	t.ex[i] = Exemplar{Value: v, TraceID: traceID, When: when}
	t.set[i] = true
	t.mu.Unlock()
}

// exemplars returns the histogram's exemplar table, creating it on
// first use.
func (h *Histogram) exemplars() *exemplarTable {
	if t := h.ex.Load(); t != nil {
		return t
	}
	t := new(exemplarTable)
	if h.ex.CompareAndSwap(nil, t) {
		return t
	}
	return h.ex.Load()
}

// ExemplarNear returns the exemplar closest (by bucket distance) to
// value v, preferring the higher bucket on ties — the caller asking
// "show me a trace near the p99" would rather see the slower one.
func (h *Histogram) ExemplarNear(v float64) (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	t := h.ex.Load()
	if t == nil {
		return Exemplar{}, false
	}
	want := bucketIndex(v)
	t.mu.Lock()
	defer t.mu.Unlock()
	for d := 0; d < histBuckets; d++ {
		if i := want + d; i < histBuckets && t.set[i] {
			return t.ex[i], true
		}
		if i := want - d; d > 0 && i >= 0 && t.set[i] {
			return t.ex[i], true
		}
	}
	return Exemplar{}, false
}

// WorstExemplarAbove returns the exemplar of the highest populated
// bucket strictly above v's bucket — the worst recent offender past a
// threshold. Used to attach a trace to SLO breach events.
func (h *Histogram) WorstExemplarAbove(v float64) (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	t := h.ex.Load()
	if t == nil {
		return Exemplar{}, false
	}
	floor := bucketIndex(v)
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := histBuckets - 1; i > floor; i-- {
		if t.set[i] {
			return t.ex[i], true
		}
	}
	return Exemplar{}, false
}

// CountAtOrBelow returns how many observations fell into buckets at or
// below v's bucket — the "good" count for a latency objective with
// threshold v. Bucket quantization makes it exact at bucket boundaries
// and at most one bucket (≈9%) generous in between.
func (h *Histogram) CountAtOrBelow(v float64) int64 {
	if h == nil {
		return 0
	}
	hi := bucketIndex(v)
	n := int64(0)
	for i := 0; i <= hi; i++ {
		n += h.buckets[i].Load()
	}
	return n
}

// mergeExemplars copies other's set exemplars into h (last merge wins),
// so Registry.Merge keeps trace links.
func (h *Histogram) mergeExemplars(other *Histogram) {
	ot := other.ex.Load()
	if ot == nil {
		return
	}
	t := h.exemplars()
	ot.mu.Lock()
	exSnap, setSnap := ot.ex, ot.set
	ot.mu.Unlock()
	t.mu.Lock()
	for i := range setSnap {
		if setSnap[i] {
			t.ex[i] = exSnap[i]
			t.set[i] = true
		}
	}
	t.mu.Unlock()
}

// QuantileExemplar is a quantile's exemplar in a Stats snapshot: the
// trace nearest the quantile estimate, rendered as an OpenMetrics
// exemplar by the Prometheus exporter.
type QuantileExemplar struct {
	Quantile float64 `json:"quantile"`
	Value    float64 `json:"value"`
	Trace    string  `json:"trace"`
	When     float64 `json:"when"`
}

// quantileExemplars pairs each quantile estimate with the nearest
// retained exemplar, for Stats.
func (h *Histogram) quantileExemplars(st Stats) []QuantileExemplar {
	if h == nil || h.ex.Load() == nil || st.Count == 0 {
		return nil
	}
	var out []QuantileExemplar
	for _, p := range [...]struct {
		q float64
		v float64
	}{{0.50, st.P50}, {0.95, st.P95}, {0.99, st.P99}} {
		if ex, ok := h.ExemplarNear(p.v); ok {
			out = append(out, QuantileExemplar{
				Quantile: p.q,
				Value:    ex.Value,
				Trace:    fmt.Sprintf("%016x", ex.TraceID),
				When:     ex.When,
			})
		}
	}
	return out
}

// ObserveExemplar records v into the named histogram with tc's trace
// attached as the bucket exemplar, stamped with the registry clock.
// An invalid tc degrades to a plain Observe.
func (r *Registry) ObserveExemplar(name string, v float64, tc TraceContext) {
	if r == nil {
		return
	}
	r.Histogram(name).ObserveExemplar(v, tc.TraceID, r.Now())
}
