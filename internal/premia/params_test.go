package premia

import (
	"math"
	"testing"
)

func TestParamsIntRounding(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{0, 0},
		{2, 2},
		{2.4, 2},
		{2.5, 3},
		{2.6, 3},
		{-2, -2},
		{-2.4, -2}, // int(v+0.5) used to give -1
		{-2.5, -3}, // halves round away from zero
		{-2.6, -3},
		{0.4999, 0},
		{-0.4999, 0},
	} {
		p := Params{"k": tc.v}
		if got := p.Int("k", 99); got != tc.want {
			t.Errorf("Int(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := (Params{}).Int("missing", 7); got != 7 {
		t.Errorf("missing key: got %d, want fallback 7", got)
	}
}

func TestParamsUint64(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want uint64
	}{
		{0, 0},
		{-5, 0},
		{math.NaN(), 0},
		{1.9, 1},
		{20090101, 20090101},
		{1 << 52, 1 << 52},
		{1 << 60, 1 << 60}, // exactly representable above 2^53
		{math.Inf(1), math.MaxUint64},
		{2 * math.Pow(2, 64), math.MaxUint64},
	} {
		p := Params{"k": tc.v}
		if got := p.Uint64("k", 42); got != tc.want {
			t.Errorf("Uint64(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := (Params{}).Uint64("missing", 42); got != 42 {
		t.Errorf("missing key: got %d, want fallback 42", got)
	}
}

// TestSetSeedLargeSeedsSurvive is the regression for the float64 seed
// round trip: seeds at and above 2^53 differ only in bits a float64
// cannot hold, so storing them in a single param conflates them. SetSeed
// splits the halves and mcSeed must reassemble the exact value.
func TestSetSeedLargeSeedsSurvive(t *testing.T) {
	for _, seed := range []uint64{0, 1, 20090101, 1 << 32, (1 << 53) + 1, (1 << 60) + 12345, math.MaxUint64} {
		p := New().SetSeed(seed)
		if got := mcSeed(p); got != seed {
			t.Errorf("mcSeed after SetSeed(%d) = %d", seed, got)
		}
	}
	// Adjacent large seeds must yield different prices; through a single
	// float64 "seed" param they collapse to the same stream.
	mk := func(seed uint64) *Problem {
		return bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 2000).SetSeed(seed)
	}
	a, err := mk((1 << 53) + 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk((1 << 53) + 2).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Price == b.Price {
		t.Errorf("seeds 2^53+1 and 2^53+2 produced the same price %v", a.Price)
	}
	// Small seeds keep their historical meaning through plain Set.
	c, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 2000).Set("seed", 7).Compute()
	if err != nil {
		t.Fatal(err)
	}
	d, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 2000).SetSeed(7).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if c.Price != d.Price {
		t.Errorf("Set(seed,7) price %v != SetSeed(7) price %v", c.Price, d.Price)
	}
}
