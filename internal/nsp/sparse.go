package nsp

// KindSpMat is a sparse real matrix in triplet (COO) form — the paper's
// serialization example serializes exactly such an object:
// A=sparse(rand(2,2)); S=serialize(A); MPI_Send_Obj(S,...).
const KindSpMat Kind = 9

// SpMat is a sparse real matrix storing only its non-zero entries as
// parallel row/column/value triplets, kept sorted in row-major order so
// equality and serialization are canonical.
type SpMat struct {
	Rows, Cols int
	// RowIdx, ColIdx and Val are parallel; entry k is (RowIdx[k],
	// ColIdx[k]) = Val[k]. Triplets are sorted row-major and unique.
	RowIdx, ColIdx []int32
	Val            []float64
}

// NewSpMat returns an empty rows×cols sparse matrix.
func NewSpMat(rows, cols int) *SpMat {
	if rows < 0 || cols < 0 {
		panic("nsp: negative matrix dimension")
	}
	return &SpMat{Rows: rows, Cols: cols}
}

// SparseFromDense converts a dense matrix, dropping exact zeros.
func SparseFromDense(m *Mat) *SpMat {
	s := NewSpMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				s.RowIdx = append(s.RowIdx, int32(i))
				s.ColIdx = append(s.ColIdx, int32(j))
				s.Val = append(s.Val, v)
			}
		}
	}
	return s
}

// Dense converts back to a dense matrix.
func (s *SpMat) Dense() *Mat {
	m := NewMat(s.Rows, s.Cols)
	for k := range s.Val {
		m.Set(int(s.RowIdx[k]), int(s.ColIdx[k]), s.Val[k])
	}
	return m
}

// NNZ returns the number of stored entries.
func (s *SpMat) NNZ() int { return len(s.Val) }

// At returns the entry at (i, j), zero if absent. Linear scan: the type
// exists for transport fidelity, not linear algebra.
func (s *SpMat) At(i, j int) float64 {
	for k := range s.Val {
		if int(s.RowIdx[k]) == i && int(s.ColIdx[k]) == j {
			return s.Val[k]
		}
	}
	return 0
}

// Set stores v at (i, j), inserting in row-major position; setting an
// existing entry overwrites it (including with zero, which keeps an
// explicit zero — call Compact to drop those).
func (s *SpMat) Set(i, j int, v float64) {
	if i < 0 || i >= s.Rows || j < 0 || j >= s.Cols {
		panic("nsp: sparse index out of range")
	}
	pos := len(s.Val)
	for k := range s.Val {
		if int(s.RowIdx[k]) == i && int(s.ColIdx[k]) == j {
			s.Val[k] = v
			return
		}
		if int(s.RowIdx[k]) > i || (int(s.RowIdx[k]) == i && int(s.ColIdx[k]) > j) {
			pos = k
			break
		}
	}
	s.RowIdx = append(s.RowIdx, 0)
	copy(s.RowIdx[pos+1:], s.RowIdx[pos:])
	s.RowIdx[pos] = int32(i)
	s.ColIdx = append(s.ColIdx, 0)
	copy(s.ColIdx[pos+1:], s.ColIdx[pos:])
	s.ColIdx[pos] = int32(j)
	s.Val = append(s.Val, 0)
	copy(s.Val[pos+1:], s.Val[pos:])
	s.Val[pos] = v
}

// Compact removes explicit zeros.
func (s *SpMat) Compact() {
	out := 0
	for k := range s.Val {
		if s.Val[k] != 0 {
			s.RowIdx[out] = s.RowIdx[k]
			s.ColIdx[out] = s.ColIdx[k]
			s.Val[out] = s.Val[k]
			out++
		}
	}
	s.RowIdx = s.RowIdx[:out]
	s.ColIdx = s.ColIdx[:out]
	s.Val = s.Val[:out]
}

// Kind implements Object.
func (s *SpMat) Kind() Kind { return KindSpMat }

// Equal implements Object (structural equality of the triplet form).
func (s *SpMat) Equal(o Object) bool {
	t, ok := o.(*SpMat)
	if !ok || s.Rows != t.Rows || s.Cols != t.Cols || len(s.Val) != len(t.Val) {
		return false
	}
	for k := range s.Val {
		if s.RowIdx[k] != t.RowIdx[k] || s.ColIdx[k] != t.ColIdx[k] || s.Val[k] != t.Val[k] {
			return false
		}
	}
	return true
}
