package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Detrand bans nondeterministic randomness in pricing and kernel code.
// The whole benchmark contract — the same problem prices bit-identically
// at any thread count, on any host — holds because every random draw
// flows from the portfolio seed through mathutil's split PCG64 streams
// (RNG.Split) and leapfrogged Halton sequences. A single global
// math/rand call, or a freshly minted time-derived seed, silently breaks
// reproducibility with no failing test to show for it: prices stay
// plausible, they just stop being verifiable.
//
// The rule: pricing/kernel packages must not import math/rand,
// math/rand/v2 or crypto/rand at all (tests are not loaded and may use
// them freely), and must not seed streams from the clock.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "pricing/kernel code must use mathutil split streams, not math/rand",
	Match: scope(
		"internal/premia",
		"internal/mathutil",
		"internal/farm",
		"internal/risk",
		"internal/portfolio",
		"internal/simnet",
		"internal/var",
	),
	Run: runDetrand,
}

// detrandBannedImports are the stdlib randomness sources whose global
// state (or per-call seeding conventions) cannot reproduce across
// processes and architectures.
var detrandBannedImports = map[string]string{
	"math/rand":    "global stream, process-dependent seeding",
	"math/rand/v2": "global stream, process-dependent seeding",
	"crypto/rand":  "entropy is unreproducible by construction",
}

func runDetrand(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Package, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := detrandBannedImports[path]; ok {
				pass.Reportf(imp.Pos(),
					"import of %s in pricing/kernel code (%s); draw from mathutil split streams instead", path, why)
			}
		}
		// A time.Now() (or UnixNano chain) feeding a callee with Seed,
		// RNG or Source in its name is ad-hoc seeding: it defeats the
		// portfolio seed even when the stream type is deterministic.
		var callStack []*ast.CallExpr
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := pkgFuncCall(pass.Info, call, "time", "Now"); ok {
				for _, outer := range callStack {
					if seedish(calleeName(outer)) {
						pass.Reportf(call.Pos(),
							"clock-derived seed; thread the portfolio seed through Params instead")
						break
					}
				}
			}
			callStack = append(callStack, call)
			for _, arg := range call.Args {
				ast.Inspect(arg, walk)
			}
			ast.Inspect(call.Fun, walk)
			callStack = callStack[:len(callStack)-1]
			return false
		}
		ast.Inspect(f, walk)
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func seedish(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "seed") || strings.Contains(lower, "rng") || strings.Contains(lower, "source")
}
