package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Metricnames checks every metric and span name literal against the
// registry's dotted grammar. The Prometheus exporter parses names
// structurally — "mpi.rank3.bytes_sent" and "farm.worker.7.tasks" fold
// their rank segment into a label, dots become underscores, and the
// first segment becomes the subsystem — so a name that deviates from
//
//	segment ( "." segment )+        segment = [a-z][a-z0-9_]* or a rank number
//
// either breaks rank folding (per-worker series explode into distinct
// metrics) or produces an invalid Prometheus exposition line. The rule
// checks the string literals reaching Registry.Counter / Gauge /
// Histogram / Observe / ObserveExemplar, the span constructors and the
// event emitters (Emit, EmitCtx); names assembled by
// concatenation are checked piecewise (each literal fragment must be
// made of valid segment characters), and fmt.Sprintf formats may use
// %d/%s as a whole dynamic segment.
var Metricnames = &Analyzer{
	Name:  "metricnames",
	Doc:   "metric/span name literals must follow the pkg.noun.verb grammar",
	Match: func(string) bool { return true },
	Run:   runMetricnames,
}

// metricNameMethods maps each telemetry entry point that takes a
// metric, span or event name to the argument index the name occupies.
// Event names share the metric grammar on purpose: the /debug/events
// prefix filter and the exporter's subsystem folding both parse the
// same dotted shape.
var metricNameMethods = map[string]int{
	"Counter":         0,
	"Gauge":           0,
	"Histogram":       0,
	"Observe":         0,
	"ObserveExemplar": 0,
	"StartSpan":       0,
	"StartTrace":      0,
	"StartChild":      0,
	"StartSpanIn":     1,
	"Emit":            1,
	"EmitCtx":         2,
}

const telemetryPkgSuffix = "internal/telemetry"

var (
	// A complete name: at least two dotted segments.
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	// A fragment of a concatenated name: valid segment characters and
	// dots only, and no empty segment except at the cut points.
	metricFragRE = regexp.MustCompile(`^\.?[a-z0-9_]+(\.[a-z0-9_]+)*\.?$`)
	// Sprintf verbs allowed in name formats; each stands in for one
	// rank number or segment ("mpi.rank%d.bytes_sent").
	metricVerbRE = regexp.MustCompile(`%[ds]`)
)

// metricFormatOK validates a Sprintf format by substituting a rank
// digit for each verb and checking the resulting name.
func metricFormatOK(format string) bool {
	return metricNameRE.MatchString(metricVerbRE.ReplaceAllString(format, "7"))
}

func runMetricnames(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Package, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ix, isNamed := metricNameMethods[sel.Sel.Name]
			if !isNamed || len(call.Args) <= ix {
				return true
			}
			if !telemetryReceiver(pass.Info, sel) {
				return true
			}
			checkMetricNameExpr(pass, call.Args[ix])
			return true
		})
	}
}

// telemetryReceiver reports whether sel selects a method on the
// telemetry Registry or Span types.
func telemetryReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	t := exprType(info, sel.X)
	if t == nil {
		return false
	}
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(n.Obj().Pkg().Path(), telemetryPkgSuffix) {
		return false
	}
	return n.Obj().Name() == "Registry" || n.Obj().Name() == "Span"
}

// checkMetricNameExpr validates the expression supplying a name.
func checkMetricNameExpr(pass *Pass, arg ast.Expr) {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return
		}
		s, err := strconv.Unquote(e.Value)
		if err != nil {
			return
		}
		if !metricNameRE.MatchString(s) {
			pass.Reportf(e.Pos(),
				"metric/span name %q does not match the dotted grammar [a-z0-9_] segments, ≥2 segments (rank folding depends on it)", s)
		}
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return
		}
		checkMetricFragments(pass, e)
	case *ast.CallExpr:
		// fmt.Sprintf("farm.worker.%d.tasks", rank): validate the format
		// literal with the verbs standing in for one segment each.
		if name, ok := pkgFuncCall(pass.Info, e, "fmt", "Sprintf"); ok && len(e.Args) > 0 {
			_ = name
			if lit, ok := e.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					return
				}
				if !metricFormatOK(s) {
					pass.Reportf(lit.Pos(),
						"metric/span name format %q does not match the dotted grammar (%%d/%%s stand in for one rank or segment)", s)
				}
			}
		}
	}
}

// checkMetricFragments walks a + concatenation and validates every
// string literal fragment.
func checkMetricFragments(pass *Pass, e ast.Expr) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			checkMetricFragments(pass, x.X)
			checkMetricFragments(pass, x.Y)
		}
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return
		}
		s, err := strconv.Unquote(x.Value)
		if err != nil || s == "" {
			return
		}
		if !metricFragRE.MatchString(s) {
			pass.Reportf(x.Pos(),
				"metric/span name fragment %q has characters outside the dotted grammar", s)
		}
	}
}
