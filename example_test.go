package riskbench_test

// Godoc examples for the public façade: runnable documentation that the
// test runner also verifies.

import (
	"context"
	"fmt"

	"riskbench"
)

// ExampleProblem_Compute prices the textbook at-the-money call.
func ExampleProblem_Compute() {
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).
		SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
	res, err := p.Compute()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("price %.4f delta %.4f\n", res.Price, res.Delta)
	// Output: price 10.4506 delta 0.6368
}

// ExampleComputeGreeks reports the full sensitivity set.
func ExampleComputeGreeks() {
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).
		SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
	g, err := riskbench.ComputeGreeks(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("gamma %.4f vega %.2f\n", g.Gamma, g.Vega)
	// Output: gamma 0.0188 vega 37.52
}

// ExampleImpliedVol inverts a market quote back to its volatility.
func ExampleImpliedVol() {
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).
		SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
	iv, err := riskbench.ImpliedVol(p, 10.450583572185565)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("implied vol %.4f\n", iv)
	// Output: implied vol 0.2000
}

// ExampleWithTransport prices through the framed wire instead of the
// in-process goroutine world: the engine's workers dial a unix-domain-
// socket hub, every connection runs the versioned protocol handshake,
// and prices come back bit-identical to the local path. Swapping "unix"
// for "tcp" is the cross-host deployment shape; external worker pools
// use risk.NetBackend directly.
func ExampleWithTransport() {
	eng := riskbench.NewEngine(
		riskbench.WithTransport("unix"),
		riskbench.WithWorkers(2),
	)
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).
		SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
	out, err := eng.PriceBatch(context.Background(), []*riskbench.Problem{p})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("price %.4f\n", out[0].Result.Price)
	// Output: price 10.4506
}

// ExampleVaR computes the empirical value-at-risk of a P&L sample.
func ExampleVaR() {
	pnl := []float64{-9, -4, -1, 0, 2, 3, 5, 6, 8, 12}
	fmt.Printf("VaR(90%%) = %.1f\n", riskbench.VaR(pnl, 0.9))
	// Output: VaR(90%) = 9.0
}

// ExampleToyPortfolio shows the §4.2 workload's aggregate size.
func ExampleToyPortfolio() {
	pf := riskbench.ToyPortfolio(10000)
	fmt.Printf("%d claims, ~%.0f s of virtual work\n", pf.Size(), pf.TotalCost())
	// Output: 10000 claims, ~2 s of virtual work
}
