package simnet

import (
	"fmt"

	"riskbench/internal/mpi"
)

// LinkConfig models the interconnect. Defaults (DefaultGigE) approximate
// MPI over the paper's Gigabit Ethernet.
type LinkConfig struct {
	// Latency is the one-way wire latency per message in seconds.
	Latency float64
	// Bandwidth is the link throughput in bytes/second.
	Bandwidth float64
	// SendOverhead is CPU time the sender spends per message (packing,
	// syscalls). It serialises a master that feeds many workers.
	SendOverhead float64
	// RecvOverhead is CPU time the receiver spends per message.
	RecvOverhead float64
}

// DefaultGigE is a Gigabit-Ethernet-like parameterisation: ~80 µs MPI
// latency, ~110 MB/s effective bandwidth, tens of microseconds of CPU per
// message at each end.
var DefaultGigE = LinkConfig{
	Latency:      80e-6,
	Bandwidth:    110e6,
	SendOverhead: 25e-6,
	RecvOverhead: 25e-6,
}

// transfer returns the serialisation (bandwidth) time of n bytes.
func (l LinkConfig) transfer(n int) float64 {
	if l.Bandwidth <= 0 {
		return 0
	}
	return float64(n) / l.Bandwidth
}

// World is a simulated cluster: size ranks with mailboxes connected by a
// uniform link. Build it before Run with NewWorld, obtain each rank's
// communicator with Comm, and register one process per rank.
type World struct {
	eng    *Engine
	link   LinkConfig
	comms  []*Comm
	speeds []float64
}

// NewWorld creates a simulated world of the given size with homogeneous
// unit-speed nodes.
func NewWorld(eng *Engine, size int, link LinkConfig) *World {
	if size < 1 {
		panic("simnet: NewWorld with size < 1")
	}
	w := &World{eng: eng, link: link, comms: make([]*Comm, size), speeds: make([]float64, size)}
	for i := range w.comms {
		w.comms[i] = &Comm{world: w, rank: i}
		w.speeds[i] = 1
	}
	return w
}

// SetSpeed sets a node's relative compute speed (1 = nominal, 0.5 = twice
// as slow). It models the heterogeneous and background-loaded nodes of a
// real cluster — one of the effects that separate the paper's measured
// ratios from an ideal simulator. It panics on non-positive factors.
func (w *World) SetSpeed(rank int, factor float64) {
	if factor <= 0 {
		panic("simnet: node speed must be positive")
	}
	w.speeds[rank] = factor
}

// BusyTime returns the cumulative virtual seconds the rank spent
// computing (not waiting), for utilisation reports.
func (w *World) BusyTime(rank int) float64 { return w.comms[rank].busy }

// Utilization returns BusyTime(rank) divided by the elapsed virtual time,
// 0 if the clock has not advanced.
func (w *World) Utilization(rank int) float64 {
	if w.eng.now <= 0 {
		return 0
	}
	return w.comms[rank].busy / w.eng.now
}

// Comm returns rank i's communicator. Bind must be called (once a process
// exists) before the communicator is used.
func (w *World) Comm(i int) *Comm { return w.comms[i] }

// simMessage is an in-flight or delivered message.
type simMessage struct {
	source int
	tag    int
	data   []byte
}

// Comm implements mpi.Comm in virtual time. Each Comm belongs to exactly
// one simulated process, set with Bind.
type Comm struct {
	world *World
	rank  int
	proc  *Proc
	inbox []simMessage
	// busy accumulates compute-occupied virtual time for utilisation
	// reports.
	busy float64
	// waiter is the process blocked in Probe/Recv, if any, with its match
	// pattern.
	waiting    bool
	wantSource int
	wantTag    int
}

var _ mpi.Comm = (*Comm)(nil)

// Bind attaches the communicator to the simulated process that will use
// it. It panics if already bound to a different process.
func (c *Comm) Bind(p *Proc) {
	if c.proc != nil && c.proc != p {
		panic(fmt.Sprintf("simnet: comm of rank %d bound twice", c.rank))
	}
	c.proc = p
}

// Proc returns the bound process.
func (c *Comm) Proc() *Proc { return c.proc }

// Rank implements mpi.Comm.
func (c *Comm) Rank() int { return c.rank }

// Size implements mpi.Comm.
func (c *Comm) Size() int { return len(c.world.comms) }

// Compute occupies the owning process for the given virtual seconds of
// nominal work, stretched by the node's speed factor; it is how simulated
// workers "price" an option whose cost is known.
func (c *Comm) Compute(seconds float64) {
	if seconds <= 0 {
		return
	}
	d := seconds / c.world.speeds[c.rank]
	c.busy += d
	c.world.eng.trace(c.proc.name, "compute", fmt.Sprintf("%.6gs", d))
	c.proc.Sleep(d)
}

// Send implements mpi.Comm: the sender is occupied for the CPU overhead
// plus the wire serialisation time, and the message lands in the
// destination mailbox one latency later.
func (c *Comm) Send(data []byte, dest, tag int) error {
	if c.proc == nil {
		return fmt.Errorf("simnet: comm %d used before Bind", c.rank)
	}
	if dest < 0 || dest >= len(c.world.comms) {
		return fmt.Errorf("simnet: send to invalid rank %d", dest)
	}
	link := c.world.link
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.eng.trace(c.proc.name, "send", fmt.Sprintf("%dB to %d tag %d", len(data), dest, tag))
	c.proc.Sleep(link.SendOverhead + link.transfer(len(data)))
	dst := c.world.comms[dest]
	m := simMessage{source: c.rank, tag: tag, data: cp}
	c.world.eng.schedule(c.world.eng.now+link.Latency, func() {
		dst.inbox = append(dst.inbox, m)
		if dst.waiting && matchesSim(m, dst.wantSource, dst.wantTag) {
			dst.waiting = false
			dst.proc.wake()
		}
	})
	return nil
}

func matchesSim(m simMessage, source, tag int) bool {
	return (source == mpi.AnySource || m.source == source) && (tag == mpi.AnyTag || m.tag == tag)
}

// waitMatch blocks the process until a matching message is in the inbox
// and returns its index.
func (c *Comm) waitMatch(source, tag int) int {
	for {
		for i, m := range c.inbox {
			if matchesSim(m, source, tag) {
				return i
			}
		}
		c.waiting = true
		c.wantSource, c.wantTag = source, tag
		c.proc.block(fmt.Sprintf("recv from %d tag %d", source, tag))
	}
}

// Probe implements mpi.Comm.
func (c *Comm) Probe(source, tag int) (mpi.Status, error) {
	if c.proc == nil {
		return mpi.Status{}, fmt.Errorf("simnet: comm %d used before Bind", c.rank)
	}
	i := c.waitMatch(source, tag)
	m := c.inbox[i]
	return mpi.Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Recv implements mpi.Comm; the receiver pays the per-message CPU
// overhead.
func (c *Comm) Recv(source, tag int) ([]byte, mpi.Status, error) {
	if c.proc == nil {
		return nil, mpi.Status{}, fmt.Errorf("simnet: comm %d used before Bind", c.rank)
	}
	i := c.waitMatch(source, tag)
	m := c.inbox[i]
	c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
	c.world.eng.trace(c.proc.name, "recv", fmt.Sprintf("%dB from %d tag %d", len(m.data), m.source, m.tag))
	c.proc.Sleep(c.world.link.RecvOverhead)
	return m.data, mpi.Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Close implements mpi.Comm; simulated communicators need no teardown
// because the run ends when the event queue drains.
func (c *Comm) Close() error { return nil }

// Resource is a FIFO-queued exclusive server in virtual time (e.g. the
// NFS server): callers are serviced one at a time in request order.
type Resource struct {
	availableAt float64
}

// Use blocks the process until the resource is free, occupies it for
// service seconds, and returns. FIFO order is inherited from the engine's
// deterministic event ordering.
func (r *Resource) Use(p *Proc, service float64) {
	start := r.availableAt
	if p.eng.now > start {
		start = p.eng.now
	}
	r.availableAt = start + service
	p.SleepUntil(r.availableAt)
}
