package bench

import (
	"context"
	"strings"
	"testing"

	"riskbench/internal/portfolio"
	varisk "riskbench/internal/var"
)

// TestNestedSweepShape runs the real nested VaR workload — outer
// scenarios × the toy book — through the simulator at a few CPU counts
// and checks the table's invariants: a row per CPU count plus the
// hierarchical row, near-linear efficiency in the small-cluster regime,
// and a makespan that shrinks as CPUs are added.
func TestNestedSweepShape(t *testing.T) {
	pf := portfolio.Toy(40)
	tasks, err := varisk.SimTasks(pf, 8)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunNestedSweep(context.Background(), tasks, []int{2, 4, 8}, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 3 flat + 1 hierarchical", len(rows))
	}
	if rows[3].Scheduler != Hierarchical || rows[3].CPUs != 8 {
		t.Fatalf("last row %+v, want hierarchical at 8 CPUs", rows[3])
	}
	if rows[0].Ratio != 1 {
		t.Errorf("baseline ratio %v, want 1 (measured against itself)", rows[0].Ratio)
	}
	for i := 1; i < 3; i++ {
		if rows[i].Seconds >= rows[i-1].Seconds {
			t.Errorf("makespan grew from %v to %v at %d CPUs", rows[i-1].Seconds, rows[i].Seconds, rows[i].CPUs)
		}
		if rows[i].Ratio < 0.5 || rows[i].Ratio > 1.1 {
			t.Errorf("ratio %v at %d CPUs out of range", rows[i].Ratio, rows[i].CPUs)
		}
	}
	out := FormatNestedRows("t", rows)
	if !strings.Contains(out, "Ratio") || !strings.Contains(out, "tasks/s") {
		t.Errorf("table missing headers:\n%s", out)
	}
}

func TestNestedSweepRejectsEmpty(t *testing.T) {
	if _, err := RunNestedSweep(context.Background(), nil, []int{2}, 1, 0, 0); err == nil {
		t.Error("empty task batch accepted")
	}
	tasks, err := varisk.SimTasks(portfolio.Toy(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNestedSweep(context.Background(), tasks, nil, 1, 0, 0); err == nil {
		t.Error("empty CPU list accepted")
	}
}
