package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"riskbench/internal/farm"
	"riskbench/internal/portfolio"
	"riskbench/internal/telemetry"
)

func smallSpec() TableSpec {
	return TableSpec{
		Name:       "Table T",
		Caption:    "telemetry smoke sweep.",
		Portfolio:  portfolio.Toy(200),
		CPUCounts:  []int{2, 5},
		Strategies: []farm.Strategy{farm.FullLoad, farm.SerializedLoad},
	}
}

// TestRunTableContextReports checks that a sweep run with a telemetry
// sink fills Row.Reports with task-latency quantiles and occupancy, and
// merges the per-run metrics into the sink under the run prefix.
func TestRunTableContextReports(t *testing.T) {
	sink := telemetry.New()
	tbl, err := RunTableContext(context.Background(), smallSpec(), sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for _, s := range tbl.Spec.Strategies {
			r, ok := row.Reports[s]
			if !ok {
				t.Fatalf("row %d CPUs: no report for %v", row.CPUs, s)
			}
			if r.TaskP50 <= 0 || r.TaskP95 < r.TaskP50 || r.TaskP99 < r.TaskP95 {
				t.Errorf("%d CPUs %v: implausible quantiles p50=%v p95=%v p99=%v",
					row.CPUs, s, r.TaskP50, r.TaskP95, r.TaskP99)
			}
			if len(r.WorkerUtilization) != row.CPUs-1 {
				t.Errorf("%d CPUs %v: %d worker utilizations, want %d",
					row.CPUs, s, len(r.WorkerUtilization), row.CPUs-1)
			}
			if r.MeanUtilization <= 0 || r.MeanUtilization > 1 {
				t.Errorf("%d CPUs %v: mean utilization %v outside (0,1]", row.CPUs, s, r.MeanUtilization)
			}
		}
	}
	// The sink holds each run's metrics under its own prefix.
	n := sink.Histogram("tablet.2cpu.full_load.farm.task_seconds").Count()
	if n == 0 {
		t.Error("sink missing merged farm.task_seconds for the 2-CPU full-load run")
	}
	if got := sink.Counter("tablet.5cpu.serialized_load.farm.tasks_completed").Value(); got == 0 {
		t.Error("sink missing merged farm.tasks_completed for the 5-CPU serialized run")
	}
}

// TestFormatIncludesTelemetryReport checks the human-readable rendering:
// with a sink the formatted table carries per-strategy latency quantiles
// and the per-worker utilization line; without one it stays as before.
func TestFormatIncludesTelemetryReport(t *testing.T) {
	sink := telemetry.New()
	tbl, err := RunTableContext(context.Background(), smallSpec(), sink)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	for _, want := range []string{
		"telemetry: task latency and worker occupancy",
		"p50", "p95", "p99", "mean util", "master busy",
		"per-worker utilization @ 5 CPUs, serialized load:",
		"w1=", "w4=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}

	plain, err := RunTable(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Format(), "telemetry:") {
		t.Error("Format() without a sink should not carry the telemetry section")
	}
}

// TestRunCancelled checks that a cancelled context aborts a simulated
// run with the context's error rather than a deadlock report.
func TestRunCancelled(t *testing.T) {
	tasks, err := portfolio.Toy(50).Tasks()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, RunConfig{Tasks: tasks, CPUs: 4, Strategy: farm.SerializedLoad}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	if _, err := RunTableContext(ctx, smallSpec(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunTableContext returned %v, want context.Canceled", err)
	}
}
