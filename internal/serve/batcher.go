package serve

import (
	"context"
	"time"

	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// PriceFunc prices a batch of problems and returns index-aligned
// outcomes. risk.Engine.PriceBatch is the production implementation;
// tests substitute stubs to count kernel evaluations.
type PriceFunc func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error)

// priceRequest is one problem waiting for a batch slot. done is
// buffered, so the batcher's reply never blocks even when the requester
// has abandoned its deadline. span roots the request's distributed
// trace and queue times its wait for a batch slot; both are nil when
// tracing is off.
type priceRequest struct {
	problem *premia.Problem
	done    chan priceResponse
	span    *telemetry.Span
	queue   *telemetry.Span
}

type priceResponse struct {
	outcome risk.PriceOutcome
	err     error // batch-level failure (transport, cancellation)
}

// batcher coalesces single-problem requests into farm batches: it
// flushes whenever maxBatch requests have accumulated or maxDelay has
// passed since the first request of the current batch — the dynamic
// version of the farm's BatchSize bunching, applied to request traffic
// instead of a pre-built portfolio.
//
// Flushes run synchronously on the batcher goroutine; while one batch
// is pricing, later arrivals accumulate in the bounded input queue and
// form the next batch. Intra-batch parallelism comes from the engine's
// farm workers, inter-request dedup from the server's singleflight
// layer above.
type batcher struct {
	price    PriceFunc
	maxBatch int
	maxDelay time.Duration
	reg      *telemetry.Registry
	ctx      context.Context
	in       chan *priceRequest
	exited   chan struct{}
}

func newBatcher(ctx context.Context, price PriceFunc, maxBatch int, maxDelay time.Duration, queue int, reg *telemetry.Registry) *batcher {
	b := &batcher{
		price:    price,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		reg:      reg,
		ctx:      ctx,
		in:       make(chan *priceRequest, queue),
		exited:   make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit enqueues a request without blocking; false means the queue is
// full and the caller should shed load (429).
func (b *batcher) submit(r *priceRequest) bool {
	select {
	case b.in <- r:
		return true
	default:
		return false
	}
}

// submitWait enqueues a request, blocking until there is queue space or
// the context ends — backpressure for callers that fan one admitted
// request into many problems (the /batch endpoint).
func (b *batcher) submitWait(ctx context.Context, r *priceRequest) error {
	select {
	case b.in <- r:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the batcher after flushing everything already queued. The
// server guarantees no submit is concurrent with close (it drains
// admitted requests first), so closing the channel is safe.
func (b *batcher) close() {
	close(b.in)
	<-b.exited
}

func (b *batcher) loop() {
	defer close(b.exited)
	var (
		buf     []*priceRequest
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(buf) == 0 {
			return
		}
		batch := buf
		buf = nil
		b.reg.Observe("serve.batch.size", float64(len(batch)))
		b.runBatch(batch)
	}
	for {
		select {
		case r, ok := <-b.in:
			if !ok {
				flush()
				return
			}
			buf = append(buf, r)
			if len(buf) >= b.maxBatch {
				b.reg.Counter("serve.batch.flush_size").Add(1)
				flush()
			} else if timer == nil {
				timer = time.NewTimer(b.maxDelay)
				timeout = timer.C
			}
		case <-timeout:
			timer, timeout = nil, nil
			b.reg.Counter("serve.batch.flush_delay").Add(1)
			flush()
		}
	}
}

// runBatch prices one flushed batch and fans the outcomes back out. The
// batch prices under the first traced request's trace — one farm run
// serves the whole batch, so one tree carries its full breakdown; the
// other requests' traces keep their queue timing.
func (b *batcher) runBatch(batch []*priceRequest) {
	problems := make([]*premia.Problem, len(batch))
	ctx := b.ctx
	adopted := false
	for i, r := range batch {
		problems[i] = r.problem
		r.queue.End()
		if !adopted {
			if tc := r.span.Context(); tc.Valid() {
				ctx = telemetry.ContextWithTrace(ctx, tc)
				adopted = true
			}
		}
	}
	out, err := b.price(ctx, problems)
	for i, r := range batch {
		r.span.End()
		if err != nil {
			r.done <- priceResponse{err: err}
			continue
		}
		r.done <- priceResponse{outcome: out[i]}
	}
}
