package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at %d: %d != %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestRNGFloat64OpenRange(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 100000; i++ {
		u := r.Float64Open()
		if u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", u)
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(99)
	var w Welford
	n := 200000
	for i := 0; i < n; i++ {
		w.Add(r.Float64())
	}
	if m := w.Mean(); math.Abs(m-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
	if v := w.Variance(); math.Abs(v-1.0/12) > 0.003 {
		t.Errorf("uniform variance = %v, want ~%v", v, 1.0/12)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(123)
	var w Welford
	n := 200000
	skew := 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		w.Add(x)
		skew += x * x * x
	}
	if m := w.Mean(); math.Abs(m) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if v := w.Variance(); math.Abs(v-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", v)
	}
	if s := skew / float64(n); math.Abs(s) > 0.03 {
		t.Errorf("normal third moment = %v, want ~0", s)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(77)
	a := r.Split(0)
	b := r.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestRNGSplitDeterministic(t *testing.T) {
	a := NewRNG(10).Split(3)
	b := NewRNG(10).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestNormVec(t *testing.T) {
	r := NewRNG(11)
	v := make([]float64, 64)
	r.NormVec(v)
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("NormVec produced %v", x)
		}
	}
	if allZero {
		t.Fatal("NormVec left the slice zeroed")
	}
}

func TestMul64MatchesBig(t *testing.T) {
	// Property: mul64 low word must equal wrapping multiply; high word
	// verified against decomposition arithmetic via quick.Check.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b {
			return false
		}
		// Verify hi by splitting into 32-bit halves with big-enough ints.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		// (a1<<32+a0)(b1<<32+b0) = a1b1<<64 + (a1b0+a0b1)<<32 + a0b0
		carry := ((a0*b0)>>32 + (a1*b0)&0xffffffff + (a0*b1)&0xffffffff) >> 32
		wantHi := a1*b1 + (a1*b0)>>32 + (a0*b1)>>32 + carry
		return hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
