package telemetry

import (
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Exposition-format line grammar: a TYPE comment or a sample line
// `name{label="value",...} value`, where value is a number or the
// exposition tokens +Inf/-Inf (NaN never appears: the exporter drops
// NaN samples instead of poisoning aggregations).
var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$`)
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (-?[0-9]|[+-]Inf).*$`)
)

func renderProm(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestPrometheusLineSyntax checks that every emitted line parses under
// the text exposition grammar, across all metric kinds.
func TestPrometheusLineSyntax(t *testing.T) {
	r := New()
	r.Counter("serve.requests").Add(42)
	r.Counter("mpi.rank3.msgs_sent").Add(7)
	r.Gauge("farm.worker.2.busy_seconds").Add(1.25)
	r.Observe("serve.request_seconds", 0.01)
	r.Observe("serve.request_seconds", 0.03)
	sp := r.StartSpan("farm.compute")
	sp.End()
	out := renderProm(t, r)
	if out == "" {
		t.Fatal("empty exposition")
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promTypeRe.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
		}
	}
}

// TestPrometheusDeterministicOrder renders the same registry twice and
// expects byte-identical output, with family TYPE headers preceding
// their samples exactly once.
func TestPrometheusDeterministicOrder(t *testing.T) {
	r := New()
	for _, name := range []string{"b.z", "a.y", "c.x", "mpi.rank1.n", "mpi.rank0.n"} {
		r.Counter(name).Add(1)
	}
	r.Observe("lat.a", 0.5)
	r.Observe("lat.b", 0.25)
	first := renderProm(t, r)
	if second := renderProm(t, r); first != second {
		t.Fatalf("non-deterministic output:\n--- first\n%s--- second\n%s", first, second)
	}
	seenTypes := map[string]bool{}
	current := ""
	for _, line := range strings.Split(strings.TrimRight(first, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(name)[0]
			if seenTypes[fam] {
				t.Errorf("family %s declared twice", fam)
			}
			seenTypes[fam] = true
			current = fam
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !strings.HasPrefix(name, current) {
			t.Errorf("sample %q outside its family %q", line, current)
		}
	}
}

// TestPrometheusSummaryQuantiles checks the summary rendering of a
// histogram: quantile lines for 0.5/0.95/0.99 plus _sum and _count.
func TestPrometheusSummaryQuantiles(t *testing.T) {
	r := New()
	for i := 1; i <= 100; i++ {
		r.Observe("task.seconds", float64(i)/100)
	}
	out := renderProm(t, r)
	if !strings.Contains(out, "# TYPE task_seconds summary\n") {
		t.Errorf("no summary TYPE line:\n%s", out)
	}
	for _, q := range []string{`task_seconds{quantile="0.5"} `, `task_seconds{quantile="0.95"} `, `task_seconds{quantile="0.99"} `} {
		if !strings.Contains(out, q) {
			t.Errorf("missing quantile line %q in:\n%s", q, out)
		}
	}
	if !strings.Contains(out, "task_seconds_count 100\n") {
		t.Errorf("missing _count line:\n%s", out)
	}
	if !strings.Contains(out, "task_seconds_sum ") {
		t.Errorf("missing _sum line:\n%s", out)
	}
}

// TestPrometheusRankFolding checks that the unbounded per-rank name
// schemes fold into a rank label while the aggregate series keeps the
// bare name, under one family.
func TestPrometheusRankFolding(t *testing.T) {
	r := New()
	r.Counter("mpi.msgs_sent").Add(12)
	r.Counter("mpi.rank0.msgs_sent").Add(7)
	r.Counter("mpi.rank13.msgs_sent").Add(5)
	r.Counter("farm.worker.3.tasks").Add(9)
	r.Gauge("farm.worker.3.busy_seconds").Add(0.5)
	out := renderProm(t, r)
	for _, want := range []string{
		"mpi_msgs_sent 12\n",
		`mpi_msgs_sent{rank="0"} 7` + "\n",
		`mpi_msgs_sent{rank="13"} 5` + "\n",
		`farm_worker_tasks{rank="3"} 9` + "\n",
		`farm_worker_busy_seconds{rank="3"} 0.5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rank13") || strings.Contains(out, "worker_3") {
		t.Errorf("unfolded rank name survived:\n%s", out)
	}
	// One family: exactly one TYPE line for mpi_msgs_sent.
	if got := strings.Count(out, "# TYPE mpi_msgs_sent "); got != 1 {
		t.Errorf("mpi_msgs_sent declared %d times, want 1", got)
	}
}

// TestPrometheusNonFinite checks the non-finite guards: a NaN gauge
// vanishes from the exposition entirely (no sample, no orphan TYPE
// line) while ±Inf render as the exposition tokens, and every emitted
// line still parses.
func TestPrometheusNonFinite(t *testing.T) {
	r := New()
	r.Gauge("g.nan").Set(math.NaN())
	r.Gauge("g.posinf").Set(math.Inf(1))
	r.Gauge("g.neginf").Set(math.Inf(-1))
	r.Gauge("g.ok").Set(1.5)
	out := renderProm(t, r)
	if strings.Contains(out, "g_nan") || strings.Contains(out, "NaN") {
		t.Errorf("NaN gauge leaked into exposition:\n%s", out)
	}
	for _, want := range []string{"g_posinf +Inf\n", "g_neginf -Inf\n", "g_ok 1.5\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
		}
	}
}

// TestPrometheusEmptyHistogram checks that a registered but never
// observed histogram exports only its _sum/_count companions: a
// quantile line would invent an observation that never happened.
func TestPrometheusEmptyHistogram(t *testing.T) {
	r := New()
	r.Histogram("h.cold")
	out := renderProm(t, r)
	if strings.Contains(out, "h_cold{quantile=") {
		t.Errorf("empty histogram emitted quantile lines:\n%s", out)
	}
	for _, want := range []string{"h_cold_count 0\n", "h_cold_sum 0\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusExemplarLine checks the OpenMetrics exemplar suffix on
// summary quantile lines: trace-linked observations surface as
// ` # {trace_id="<16hex>"} value timestamp` and still parse under the
// sample grammar.
func TestPrometheusExemplarLine(t *testing.T) {
	r := New()
	clk := 0.0
	r.SetClock(func() float64 { return clk })
	for i := 1; i <= 100; i++ {
		clk = float64(i)
		r.ObserveExemplar("lat.req", float64(i)/100, TraceContext{TraceID: uint64(i), SpanID: 1})
	}
	out := renderProm(t, r)
	found := false
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "lat_req{quantile=") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("bad exemplar sample line: %q", line)
		}
		if strings.Contains(line, ` # {trace_id="`) {
			found = true
		}
	}
	if !found {
		t.Errorf("no quantile line carries an exemplar:\n%s", out)
	}
	if !strings.Contains(out, `trace_id="0000000000000`) {
		t.Errorf("exemplar trace not rendered as 16-hex:\n%s", out)
	}
}

// TestPrometheusHandlerConcurrent scrapes the handler while writers
// hammer the registry — the exporter's counterpart of the JSON
// handler's concurrent-writers test; run with -race.
func TestPrometheusHandlerConcurrent(t *testing.T) {
	r := New()
	srv := httptest.NewServer(PrometheusHandler(r))
	defer srv.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c.hot").Add(1)
				r.Observe("h.hot", float64(i%100)/100)
				r.Gauge("mpi.rank" + string(rune('0'+w)) + ".g").Set(float64(i))
				sp := r.StartTrace("w.span")
				sp.StartChild("w.child").End()
				sp.End()
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		for _, line := range strings.Split(strings.TrimRight(string(body[:n]), "\n"), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if !promSampleRe.MatchString(line) {
				t.Fatalf("bad sample line under load: %q", line)
			}
		}
	}
	close(stop)
	wg.Wait()
}
