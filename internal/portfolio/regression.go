package portfolio

import (
	"riskbench/internal/mathutil"
	"riskbench/internal/premia"
)

// Virtual base costs (seconds) per method class for the regression suite,
// calibrated so the suite's total work lands near the paper's Table I
// 2-CPU run (838 s) with the longest single test around 30 s — the floor
// that Table I's makespan flattens onto above ~96 CPUs.
var regressionCosts = map[string]float64{
	premia.MethodCFCall:        0.004,
	premia.MethodCFPut:         0.004,
	premia.MethodCFCallDownOut: 0.006,
	premia.MethodCFCallUpOut:   0.006,
	premia.MethodCFHeston:      0.05,
	premia.MethodTreeCRR:       0.3,
	premia.MethodFDCrank:       1.0,
	premia.MethodFDBS:          1.0,
	premia.MethodFDPSOR:        2.0,
	premia.MethodMCEuro:        4.0,
	premia.MethodMCHeston:      8.0,
	premia.MethodMCBasket:      12.0,
	premia.MethodMCLocalVol:    6.0,
	premia.MethodMCAmerLSM:     18.0,
	premia.MethodMCAmerAlfonsi: 30.0,
	premia.MethodCFMerton:      0.01,
	premia.MethodMCMerton:      3.0,
	premia.MethodCFDigital:     0.004,
	premia.MethodMCAsianCV:     5.0,
	premia.MethodCFLookback:    0.004,
	premia.MethodMCLookback:    5.0,
	premia.MethodQMCBasket:     10.0,
	premia.MethodCFVasicek:     0.004,
	premia.MethodMCVasicek:     5.0,
	premia.MethodCFCredit:      0.004,
	premia.MethodMCCredit:      2.0,
}

// regressionVariants is the number of parameter sets per registered
// (method, model, option) combination.
const regressionVariants = 6

// Regression generates the §4.1 workload: Premia's non-regression tests —
// one problem per registered (method, model, option) combination, at
// several strike/maturity variants. Every problem is valid and computable
// by the live executor (with modest numerical parameters).
func Regression() *Portfolio {
	rng := mathutil.NewRNG(41)
	pf := &Portfolio{Name: "regression"}
	for _, method := range premia.Methods() {
		models, options := premia.Compatibles(method)
		for _, model := range models {
			for _, option := range options {
				if !premia.MethodSupports(method, model, option) {
					continue
				}
				for v := 0; v < regressionVariants; v++ {
					p := regressionProblem(method, model, option, v)
					cost := regressionCosts[method] * jitter(rng, 0.3)
					pf.add("regr", p, cost)
				}
			}
		}
	}
	return pf
}

// regressionProblem builds one fully-parameterised, computable problem
// for the given triple and variant index. Numerical parameters are kept
// small so the whole suite also runs live in seconds.
func regressionProblem(method, model, option string, v int) *premia.Problem {
	switch premia.MethodAsset(method) {
	case premia.AssetRate:
		return rateRegressionProblem(method, model, option, v)
	case premia.AssetCredit:
		return creditRegressionProblem(method, model, option, v)
	}
	k := 85 + 10*float64(v%4)   // strikes 85..115
	t := 0.5 + 0.5*float64(v%3) // maturities 0.5..1.5
	p := premia.New().SetModel(model).SetOption(option).SetMethod(method).
		Set("K", k).Set("T", t).Set("S0", spot).Set("r", 0.04).Set("divid", 0.015)
	switch model {
	case premia.ModelBS1D:
		p.Set("sigma", 0.2+0.05*float64(v%2))
	case premia.ModelBSND:
		dim := 2 + 5*(v%2) // alternate 2- and 7-dimensional baskets
		p.Set("sigma", 0.22).Set("dim", float64(dim)).Set("rho", 0.3)
	case premia.ModelLocVol:
		p.Set("sigma0", 0.22).Set("skew", -0.1).Set("termslope", 0.02)
	case premia.ModelHeston:
		p.Set("V0", 0.04).Set("kappa", 2).Set("theta", 0.05).
			Set("sigmaV", 0.4).Set("rhoSV", -0.6)
	case premia.ModelMerton:
		p.Set("sigma", 0.2).Set("lambda", 0.5+0.5*float64(v%2)).
			Set("muJ", -0.1).Set("sigmaJ", 0.2)
	}
	switch method {
	case premia.MethodCFCallDownOut:
		p.Set("L", 0.8*spot)
	case premia.MethodCFCallUpOut:
		p.Set("U", 1.4*spot)
	case premia.MethodFDCrank:
		if option == premia.OptCallDownOut {
			p.Set("L", 0.8*spot)
		}
		if option == premia.OptCallUpOut {
			p.Set("U", 1.4*spot)
		}
		p.Set("nodes", 200).Set("steps", 100)
	case premia.MethodFDBS, premia.MethodFDPSOR:
		p.Set("nodes", 200).Set("steps", 100)
	case premia.MethodTreeCRR:
		p.Set("steps", 400)
	case premia.MethodMCEuro:
		if option == premia.OptCallDownOut {
			p.Set("L", 0.8*spot)
		}
		if option == premia.OptCallUpOut {
			p.Set("U", 1.4*spot)
		}
		p.Set("paths", 20000).Set("mcsteps", 32)
	case premia.MethodMCHeston, premia.MethodMCLocalVol:
		p.Set("paths", 10000).Set("mcsteps", 32)
	case premia.MethodMCBasket:
		p.Set("paths", 20000)
	case premia.MethodMCAmerLSM, premia.MethodMCAmerAlfonsi:
		p.Set("paths", 4000).Set("exdates", 20)
	case premia.MethodMCMerton:
		p.Set("paths", 20000)
	case premia.MethodMCAsianCV:
		p.Set("paths", 10000).Set("fixings", 12)
	case premia.MethodMCLookback:
		p.Set("paths", 10000).Set("mcsteps", 32)
	case premia.MethodQMCBasket:
		p.Set("paths", 8192)
	}
	return p
}

// creditRegressionProblem parameterises the credit products.
func creditRegressionProblem(method, model, option string, v int) *premia.Problem {
	p := premia.New().SetAsset(premia.AssetCredit).
		SetModel(model).SetOption(option).SetMethod(method).
		Set("lambda", 0.01+0.02*float64(v%3)).Set("recovery", 0.4).
		Set("r", 0.03).Set("T", 1+2*float64(v%3))
	if method == premia.MethodMCCredit {
		p.Set("paths", 20000)
	}
	return p
}

// rateRegressionProblem parameterises the interest-rate products.
func rateRegressionProblem(method, model, option string, v int) *premia.Problem {
	p := premia.New().SetAsset(premia.AssetRate).
		SetModel(model).SetOption(option).SetMethod(method).
		Set("r0", 0.02+0.01*float64(v%3)).Set("a", 0.5).Set("b", 0.05).
		Set("sigmaR", 0.01+0.005*float64(v%2)).
		Set("T", 1+float64(v%3))
	if option == premia.OptZCCall {
		t := p.Params["T"]
		p.Set("S", t+2) // bond matures two years after option expiry
		// Strike near the forward bond price keeps the option meaningful.
		p.Set("K", 0.85)
	}
	if method == premia.MethodMCVasicek {
		p.Set("paths", 10000).Set("mcsteps", 50)
	}
	return p
}
