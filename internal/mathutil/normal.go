package mathutil

import "math"

// invSqrt2Pi is 1/sqrt(2*pi).
const invSqrt2Pi = 0.3989422804014326779399460599343818684758586311649346576659258296

// NormPDF returns the standard normal density at x.
func NormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormCDF returns the standard normal cumulative distribution function at
// x, computed from the complementary error function for accuracy in both
// tails.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Acklam's rational approximation coefficients for the inverse normal CDF.
var (
	acklamA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	acklamB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	acklamC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	acklamD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
)

// minNormalFloat is the smallest positive normal float64. For normal p
// the Acklam estimate satisfies |x| ≤ 37.7, where the Halley step's
// Exp(x*x/2) is still finite (Exp overflows at ~709.78); subnormal p
// lies outside the fitted range and takes the reseeded tail branch of
// invNormRefine instead.
const minNormalFloat = 2.2250738585072014e-308

// InvNormCDF returns the inverse of the standard normal CDF using Acklam's
// algorithm refined by one step of Halley's method, accurate to full double
// precision over the refinable range. It returns -Inf for p<=0 and +Inf
// for p>=1.
//
// Tail-domain guarantee: the result is finite and non-NaN for every
// p in (0, 1), down to the smallest subnormal (p ≈ 5e-324) and up to
// 1 - 2⁻⁵³. For subnormal p (below ~2.2e-308) the Acklam estimate is
// extrapolated outside its fitted range and the standard Halley form
// would overflow in Exp(x*x/2); the quantile is instead reseeded from
// the tail asymptotic and polished with density-quotient Halley steps,
// so NormCDF(InvNormCDF(p)) recovers p to within the subnormal
// quantization of p itself. Near 1 the accuracy floor is the 2⁻⁵³
// spacing of doubles at 1: the survival probability 1-p is recovered
// to ~1e-7 relative at p = 1-1e-16.
func InvNormCDF(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	return invNormRefine(invNormAcklam(p), p)
}

// invNormAcklam is the raw Acklam rational approximation over (0,1),
// before refinement.
func invNormAcklam(p float64) float64 {
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((acklamA[0]*r+acklamA[1])*r+acklamA[2])*r+acklamA[3])*r+acklamA[4])*r + acklamA[5]) * q /
			(((((acklamB[0]*r+acklamB[1])*r+acklamB[2])*r+acklamB[3])*r+acklamB[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	}
}

// invNormRefine applies one Halley step to the raw estimate x, pushing the
// ~1e-9 raw accuracy to ~1e-15. In the extreme tails Exp(x*x/2) overflows
// to +Inf and the correction would be Inf/-Inf = NaN; there the step is
// reformulated as a division by the density, which stays nonzero a full
// unit deeper into the tail (|x| ≈ 38.6, past the quantile of the
// smallest subnormal), and iterated, because the raw estimate is
// extrapolated outside Acklam's fitted range and needs more than one
// correction to land.
func invNormRefine(x, p float64) float64 {
	if p < minNormalFloat {
		// Subnormal p: math.Log mis-reads subnormal arguments (returning
		// the min-normal log, which also saturates the raw Acklam branch
		// down here), and the standard Halley form would overflow in
		// Exp(x*x/2). Take the log after an exact power-of-two rescale,
		// reseed from the standard tail asymptotic
		// x ≈ -sqrt(-2 ln p - ln(2π·(-2 ln p))), then polish with
		// density-quotient Halley steps, which stay finite for every
		// representable p.
		u0 := -2 * (math.Log(p*0x1p110) - 110*math.Ln2)
		x = -math.Sqrt(u0 - math.Log(2*math.Pi*u0))
		for i := 0; i < 3; i++ {
			phi := NormPDF(x)
			if phi == 0 {
				break
			}
			u := (NormCDF(x) - p) / phi
			d := u / (1 + x*u/2)
			x -= d
			if math.Abs(d) <= 1e-12*math.Abs(x) {
				break
			}
		}
		return x
	}
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// InvNormCDFBatch fills dst[i] = InvNormCDF(p[i]) for every i, in one
// pass. It is the batched form the struct-of-arrays Monte Carlo kernels
// use to turn uniform draws into normal draws: the Acklam branch
// selection and the Halley refinement constants are amortised over the
// slice, and the results are bit-identical to scalar InvNormCDF calls.
// It panics if len(dst) < len(p).
func InvNormCDFBatch(dst, p []float64) {
	dst = dst[:len(p)]
	for i, pi := range p {
		switch {
		case math.IsNaN(pi):
			dst[i] = math.NaN()
		case pi <= 0:
			dst[i] = math.Inf(-1)
		case pi >= 1:
			dst[i] = math.Inf(1)
		default:
			dst[i] = invNormRefine(invNormAcklam(pi), pi)
		}
	}
}
