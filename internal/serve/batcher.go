package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// PriceFunc prices a batch of problems and returns index-aligned
// outcomes. risk.Engine.PriceBatch is the production implementation;
// tests substitute stubs to count kernel evaluations. The problems
// slice is reused across batches, so implementations must not retain it
// past the call.
type PriceFunc func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error)

// priceRequest is one problem waiting for a batch slot. done is
// buffered, so the batcher's reply never blocks even when the requester
// has abandoned its deadline. span roots the request's distributed
// trace and queue times its wait for a batch slot; both are nil when
// tracing is off.
//
// Descriptors are pooled: acquire with newPriceRequest, return with
// release once the response has been consumed (or the request was never
// enqueued), so the buffered done channel is guaranteed empty for the
// next user.
type priceRequest struct {
	problem *premia.Problem
	done    chan priceResponse
	span    *telemetry.Span
	queue   *telemetry.Span
}

type priceResponse struct {
	outcome risk.PriceOutcome
	err     error // batch-level failure (transport, cancellation)
}

var requestPool = sync.Pool{New: func() any {
	return &priceRequest{done: make(chan priceResponse, 1)}
}}

// newPriceRequest returns a pooled descriptor for one problem, its done
// channel allocated once and reused across requests.
func newPriceRequest(p *premia.Problem) *priceRequest {
	r := requestPool.Get().(*priceRequest)
	r.problem = p
	return r
}

// release returns the descriptor to the pool. The caller must have
// consumed the response (or never enqueued the request): a stale value
// left in done would leak into the descriptor's next life.
func (r *priceRequest) release() {
	r.problem, r.span, r.queue = nil, nil, nil
	requestPool.Put(r)
}

// batcher coalesces single-problem requests into farm batches: it
// flushes whenever maxBatch requests have accumulated or maxDelay has
// passed since the first request of the current batch — the dynamic
// version of the farm's BatchSize bunching, applied to request traffic
// instead of a pre-built portfolio.
//
// Flushes run synchronously on the batcher goroutine; while one batch
// is pricing, later arrivals accumulate in the bounded input queue and
// form the next batch. Intra-batch parallelism comes from the engine's
// farm workers, inter-request dedup from the server's singleflight
// layer above.
type batcher struct {
	price    PriceFunc
	maxBatch int
	maxDelay time.Duration
	reg      *telemetry.Registry
	ctx      context.Context
	in       chan *priceRequest
	exited   chan struct{}

	// problems is runBatch's reusable argument slice for price; both run
	// on the batcher goroutine, so no locking is needed.
	problems []*premia.Problem
}

func newBatcher(ctx context.Context, price PriceFunc, maxBatch int, maxDelay time.Duration, queue int, reg *telemetry.Registry) *batcher {
	b := &batcher{
		price:    price,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		reg:      reg,
		ctx:      ctx,
		in:       make(chan *priceRequest, queue),
		exited:   make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit enqueues a request without blocking; false means the queue is
// full and the caller should shed load (429).
func (b *batcher) submit(r *priceRequest) bool {
	select {
	case b.in <- r:
		return true
	default:
		return false
	}
}

// submitWait enqueues a request, blocking until there is queue space or
// the context ends — backpressure for callers that fan one admitted
// request into many problems (the /batch endpoint).
func (b *batcher) submitWait(ctx context.Context, r *priceRequest) error {
	select {
	case b.in <- r:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the batcher after flushing everything already queued. The
// server guarantees no submit is concurrent with close (it drains
// admitted requests first), so closing the channel is safe.
func (b *batcher) close() {
	close(b.in)
	<-b.exited
}

func (b *batcher) loop() {
	defer close(b.exited)
	// buf and the flush timer are reused across batches: runBatch is
	// synchronous, so once it returns the batch's descriptors belong to
	// their consumers and buf can be truncated in place.
	var (
		buf     []*priceRequest
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if timeout != nil {
			if !timer.Stop() {
				// The timer fired between the maxBatch flush decision and
				// here; drain the stale tick so the reused timer cannot
				// flush the next batch prematurely.
				select {
				case <-timer.C:
				default:
				}
			}
			timeout = nil
		}
		if len(buf) == 0 {
			return
		}
		b.reg.Observe("serve.batch.size", float64(len(buf)))
		b.runBatch(buf)
		for i := range buf {
			buf[i] = nil // descriptors are pooled; drop the stale refs
		}
		buf = buf[:0]
	}
	for {
		select {
		case r, ok := <-b.in:
			if !ok {
				flush()
				return
			}
			buf = append(buf, r)
			if len(buf) >= b.maxBatch {
				b.reg.Counter("serve.batch.flush_size").Add(1)
				flush()
			} else if timeout == nil {
				if timer == nil {
					timer = time.NewTimer(b.maxDelay)
				} else {
					timer.Reset(b.maxDelay)
				}
				timeout = timer.C
			}
		case <-timeout:
			timeout = nil
			b.reg.Counter("serve.batch.flush_delay").Add(1)
			flush()
		}
	}
}

// runBatch prices one flushed batch and fans the outcomes back out. The
// batch prices under the first traced request's trace — one farm run
// serves the whole batch, so one tree carries its full breakdown; the
// other requests' traces keep their queue timing.
func (b *batcher) runBatch(batch []*priceRequest) {
	if cap(b.problems) < len(batch) {
		b.problems = make([]*premia.Problem, len(batch))
	}
	problems := b.problems[:len(batch)]
	ctx := b.ctx
	adopted := false
	for i, r := range batch {
		problems[i] = r.problem
		r.queue.End()
		if !adopted {
			if tc := r.span.Context(); tc.Valid() {
				ctx = telemetry.ContextWithTrace(ctx, tc)
				adopted = true
			}
		}
	}
	out, err := b.price(ctx, problems)
	if err == nil && len(out) != len(batch) {
		// A misbehaving PriceFunc must not panic the batcher goroutine —
		// that would strand every waiter in this and all later batches.
		// Surface the mismatch as a batch-level error instead.
		err = fmt.Errorf("serve: price returned %d outcomes for %d problems", len(out), len(batch))
	}
	for i, r := range batch {
		r.span.End()
		if err != nil {
			r.done <- priceResponse{err: err}
			continue
		}
		r.done <- priceResponse{outcome: out[i]}
	}
}
