package nsp

import (
	"bytes"
	"fmt"
	"os"
)

// Save writes the object to path in the shared binary format. Because the
// file format equals the serialization format, the file content can later
// be re-read either as an object (Load) or as a raw Serial (SLoad).
func Save(path string, o Object) error {
	var buf bytes.Buffer
	if err := encodeStream(&buf, o); err != nil {
		return fmt.Errorf("nsp: save %s: %w", path, err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("nsp: save %s: %w", path, err)
	}
	return nil
}

// Load reads an object previously written by Save.
func Load(path string) (Object, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nsp: load %s: %w", path, err)
	}
	o, err := decodeStream(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("nsp: load %s: %w", path, err)
	}
	return o, nil
}

// SLoad reads the file content directly into a Serial object without
// decoding it — the paper's `sload` primitive (Fig. 2). The Serial can be
// transmitted as-is and unserialized on the receiving side, skipping
// object construction and re-encoding on the sender.
func SLoad(path string) (*Serial, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nsp: sload %s: %w", path, err)
	}
	return &Serial{Data: data}, nil
}

// SLoadBytes wraps already-read file bytes into a Serial, for transports
// (like the simulated NFS server) that obtained the content themselves.
func SLoadBytes(data []byte) *Serial {
	return &Serial{Data: data}
}

// FileSize returns the on-disk size of path, used by the benchmark to
// account for NFS transfer volumes.
func FileSize(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("nsp: stat %s: %w", path, err)
	}
	return info.Size(), nil
}
