package nsp

import (
	"math/rand"
	"testing"
)

func TestSparsePaperExample(t *testing.T) {
	// Paper: A=sparse(rand(2,2)); S=serialize(A); MPI_Send_Obj(S,...);
	// B=MPI_Recv_Obj; B.equal[A] → T.
	dense := NewMat(2, 2)
	r := rand.New(rand.NewSource(1))
	for i := range dense.Data {
		dense.Data[i] = r.Float64()
	}
	a := SparseFromDense(dense)
	s, err := Serialize(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Unserialize()
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(a) {
		t.Fatal("B.equal[A] is false")
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	m := NewMat(4, 5)
	m.Set(0, 0, 1.5)
	m.Set(3, 4, -2)
	m.Set(1, 2, 7)
	s := SparseFromDense(m)
	if s.NNZ() != 3 {
		t.Fatalf("nnz %d, want 3", s.NNZ())
	}
	back := s.Dense()
	if !back.Equal(m) {
		t.Fatal("dense round trip lost data")
	}
	if s.At(3, 4) != -2 || s.At(2, 2) != 0 {
		t.Fatal("At wrong")
	}
}

func TestSparseSetInsertsSorted(t *testing.T) {
	s := NewSpMat(3, 3)
	s.Set(2, 2, 9)
	s.Set(0, 1, 1)
	s.Set(1, 0, 5)
	s.Set(0, 0, 3)
	// Row-major sorted triplets.
	wantR := []int32{0, 0, 1, 2}
	wantC := []int32{0, 1, 0, 2}
	for k := range wantR {
		if s.RowIdx[k] != wantR[k] || s.ColIdx[k] != wantC[k] {
			t.Fatalf("triplets unsorted: %v %v", s.RowIdx, s.ColIdx)
		}
	}
	// Overwrite keeps a single entry.
	s.Set(1, 0, 6)
	if s.NNZ() != 4 || s.At(1, 0) != 6 {
		t.Fatal("overwrite failed")
	}
	// Canonical form equals the dense-derived one.
	if !s.Equal(SparseFromDense(s.Dense())) {
		t.Fatal("triplet order not canonical")
	}
}

func TestSparseCompact(t *testing.T) {
	s := NewSpMat(2, 2)
	s.Set(0, 0, 1)
	s.Set(1, 1, 0) // explicit zero
	if s.NNZ() != 2 {
		t.Fatal("explicit zero not stored")
	}
	s.Compact()
	if s.NNZ() != 1 || s.At(0, 0) != 1 {
		t.Fatal("compact wrong")
	}
}

func TestSparseCodecRejectsBadIndices(t *testing.T) {
	s := NewSpMat(2, 2)
	s.Set(1, 1, 3)
	ser, err := Serialize(s)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the row index to 7 (outside 2x2). Header: magic(4) +
	// version(2) + kind(1) + dims(8) + nnz(4), then row idx.
	ser.Data[4+2+1+8+4+3] = 7
	if _, err := ser.Unserialize(); err == nil {
		t.Fatal("out-of-range sparse index accepted")
	}
}

func TestSparseInContainers(t *testing.T) {
	s := NewSpMat(1, 3)
	s.Set(0, 1, 4)
	l := NewList(s, Str("sparse inside"))
	if !roundTrip(t, l).Equal(l) {
		t.Fatal("sparse-in-list round trip failed")
	}
	if s.Kind() != KindSpMat {
		t.Fatal("kind wrong")
	}
}

func TestSparseSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpMat(2, 2).Set(2, 0, 1)
}
