package varisk

import (
	"context"
	"fmt"
	"math"
	"sync"

	"riskbench/internal/mathutil"
	"riskbench/internal/risk"
)

// MarketModel is the joint distribution of one-period market moves the
// Monte Carlo scenario generator draws from: a three-factor model of
// relative spot moves, relative volatility moves and absolute
// short-rate moves, with lognormal spot and volatility factors (so a
// -99.9% draw cannot push a price or a volatility negative) and a
// normal rate factor, correlated through a 3×3 Cholesky factor.
//
// Factor volatilities are annualized and taken literally: a zero
// SpotVol/VolVol/RateVol switches that factor off entirely and its
// shift is omitted from the generated scenarios, which is how a
// spot-only backtest book avoids skipping claims that carry no
// volatility parameter. Use DefaultMarket for the standard calibration.
type MarketModel struct {
	// SpotVol is the annualized volatility of the relative spot move.
	SpotVol float64
	// VolVol is the annualized volatility of the relative implied-vol
	// move (vol-of-vol).
	VolVol float64
	// RateVol is the annualized volatility of the absolute short-rate
	// move, in rate units (0.009 = 90 bp a year).
	RateVol float64
	// RhoSV, RhoSR, RhoVR are the pairwise factor correlations
	// (spot–vol, spot–rate, vol–rate). The classic equity skew is a
	// negative RhoSV: spot down, vol up.
	RhoSV, RhoSR, RhoVR float64
	// HorizonDays is the move horizon in trading days (10 when zero):
	// factor volatilities scale by sqrt(HorizonDays/TradingDays).
	HorizonDays float64
	// TradingDays is the day-count base (252 when zero).
	TradingDays float64
}

// DefaultMarket is the standard scenario-generator calibration: 20%
// spot vol, 50% vol-of-vol, 90 bp rate vol, -60% spot–vol correlation,
// a mild -20% spot–rate correlation, over a 10-day horizon.
func DefaultMarket() MarketModel {
	return MarketModel{
		SpotVol:     0.20,
		VolVol:      0.50,
		RateVol:     0.009,
		RhoSV:       -0.60,
		RhoSR:       -0.20,
		HorizonDays: 10,
	}
}

// horizon returns the move horizon in years.
func (m MarketModel) horizon() float64 {
	days := m.HorizonDays
	if days <= 0 {
		days = 10
	}
	base := m.TradingDays
	if base <= 0 {
		base = 252
	}
	return days / base
}

// chol returns the lower Cholesky factor of the 3×3 factor correlation
// matrix.
func (m MarketModel) chol() ([]float64, error) {
	c := []float64{
		1, m.RhoSV, m.RhoSR,
		m.RhoSV, 1, m.RhoVR,
		m.RhoSR, m.RhoVR, 1,
	}
	l := make([]float64, 9)
	if err := mathutil.Cholesky(c, 3, l); err != nil {
		return nil, fmt.Errorf("varisk: factor correlations are not positive definite: %w", err)
	}
	return l, nil
}

// Generate draws n Monte Carlo market scenarios from the model. Each
// scenario is a joint (spot, vol, rate) move named "mc%06d"; shifts for
// switched-off factors (zero factor vol) are omitted. Equivalent to
// GenerateParallel with one thread — and, by construction, to any other
// thread count.
func (m MarketModel) Generate(n int, seed uint64) ([]risk.Scenario, error) {
	return m.GenerateParallel(context.Background(), n, seed, 1)
}

// GenerateParallel is Generate sharded over threads goroutines. Every
// scenario's draws come from its own split PCG64 stream, derived from
// the seed and the scenario index alone — never from the shard
// partition — and land in an index-addressed slot, so the output is
// bit-identical at any thread count: the same discipline the multicore
// pricing kernel follows (riskvet detrand). Cancelling ctx abandons the
// generation and returns the context's error.
func (m MarketModel) GenerateParallel(ctx context.Context, n int, seed uint64, threads int) ([]risk.Scenario, error) {
	if n < 0 {
		return nil, fmt.Errorf("varisk: negative scenario count %d", n)
	}
	l, err := m.chol()
	if err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}
	out := make([]risk.Scenario, n)
	if n == 0 {
		return out, nil
	}
	h := m.horizon()
	sqh := math.Sqrt(h)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Each shard owns a private base RNG reseeded per scenario via
			// SplitInto, so shards never share mutable state and scenario i's
			// stream depends only on (seed, i).
			base := mathutil.NewRNG(seed)
			rng := mathutil.NewRNG(0)
			z := make([]float64, 3)
			x := make([]float64, 3)
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				base.SplitInto(rng, uint64(i))
				z[0], z[1], z[2] = rng.Norm(), rng.Norm(), rng.Norm()
				mathutil.MatVecLower(l, 3, z, x)
				out[i] = m.scenario(i, sqh, h, x)
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// scenario maps one correlated standard-normal triple onto a named
// market scenario.
func (m MarketModel) scenario(i int, sqh, h float64, x []float64) risk.Scenario {
	sc := risk.Scenario{Name: fmt.Sprintf("mc%06d", i)}
	if m.SpotVol > 0 {
		rel := math.Exp(m.SpotVol*sqh*x[0]-0.5*m.SpotVol*m.SpotVol*h) - 1
		sc.Shifts = append(sc.Shifts, risk.Shift{Param: "S0", Rel: rel})
	}
	if m.VolVol > 0 {
		rel := math.Exp(m.VolVol*sqh*x[1]-0.5*m.VolVol*m.VolVol*h) - 1
		sc.Shifts = append(sc.Shifts, risk.Shift{Param: risk.VolToken, Rel: rel})
	}
	if m.RateVol > 0 {
		sc.Shifts = append(sc.Shifts, risk.Shift{Param: risk.RateToken, Abs: m.RateVol * sqh * x[2]})
	}
	return sc
}

// ShockCoords projects a scenario onto the (xs, xv, xr) coordinates the
// delta–gamma expansion evaluates in: the relative spot move, the
// relative volatility move and the absolute rate move. ok is false when
// the scenario shifts anything else (an arbitrary parameter, or a
// mixed relative+absolute shift on one of the three factors), in which
// case only full revaluation can price it.
func ShockCoords(sc risk.Scenario) (xs, xv, xr float64, ok bool) {
	for _, sh := range sc.Shifts {
		switch sh.Param {
		case "S0":
			if sh.Abs != 0 {
				return 0, 0, 0, false
			}
			xs += sh.Rel
		case risk.VolToken:
			if sh.Abs != 0 {
				return 0, 0, 0, false
			}
			xv += sh.Rel
		case risk.RateToken:
			if sh.Rel != 0 {
				return 0, 0, 0, false
			}
			xr += sh.Abs
		default:
			return 0, 0, 0, false
		}
	}
	return xs, xv, xr, true
}

// HistoricalGrid is the historical-style fixed shock set: the cartesian
// spot×vol revaluation grid risk desks maintain, extended with the
// absolute rate-shift ladder. Unlike the Monte Carlo generator it has
// no distributional interpretation — VaR over it is a stress summary,
// not a quantile — but it is deterministic without any seed at all.
func HistoricalGrid() []risk.Scenario {
	scens := risk.Grid(
		[]float64{-0.10, -0.05, -0.02, -0.01, 0.01, 0.02, 0.05, 0.10},
		[]float64{-0.25, -0.10, 0, 0.10, 0.25},
	)
	return append(scens, risk.RateShifts()...)
}
