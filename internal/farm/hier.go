package farm

import (
	"context"
	"fmt"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
)

// The hierarchical farm implements the improvement sketched in the
// paper's conclusion: "divide the nodes into sub-groups, each group having
// its own master ... since it has fewer slave processes to monitor the
// speedups would be better". Rank 0 is the root; ranks 1..groups are
// sub-masters; the remaining ranks are workers, split contiguously among
// the groups. The root Robin-Hoods chunks of tasks over the sub-masters,
// and each sub-master Robin-Hoods single tasks over its own workers.

// HierarchyWorkers returns the worker ranks belonging to group g
// (0-based) in a world of the given size with the given number of groups.
func HierarchyWorkers(size, groups, g int) []int {
	if groups < 1 || size < 1+2*groups {
		panic(fmt.Sprintf("farm: hierarchy needs size >= 1+2*groups, got size %d groups %d", size, groups))
	}
	nw := size - 1 - groups
	base := nw / groups
	rem := nw % groups
	start := 1 + groups
	for i := 0; i < g; i++ {
		n := base
		if i < rem {
			n++
		}
		start += n
	}
	n := base
	if g < rem {
		n++
	}
	ws := make([]int, n)
	for i := range ws {
		ws[i] = start + i
	}
	return ws
}

// RunRootMaster distributes the tasks chunk-wise over the sub-masters
// (ranks 1..groups) and returns all results. chunk is the number of tasks
// per sub-master hand-off. Cancellation follows RunMaster: drain
// in-flight chunks, stop the sub-masters (which stop their workers),
// return ctx.Err().
func RunRootMaster(ctx context.Context, c mpi.Comm, tasks []Task, loader Loader, opts Options, groups, chunk int) ([]Result, error) {
	if chunk < 1 {
		chunk = 1
	}
	if err := validateTasks(tasks); err != nil {
		return nil, err
	}
	subs := make([]int, groups)
	for i := range subs {
		subs[i] = i + 1
	}
	results, err := runBatches(ctx, c, subs, splitBatches(tasks, chunk), loader, opts)
	if err != nil {
		if ctx.Err() != nil {
			_ = sendStop(c, subs)
		}
		return nil, err
	}
	if err := sendStop(c, subs); err != nil {
		return nil, err
	}
	return results, nil
}

// passLoader forwards already-prepared payload bytes unchanged; the
// sub-master never redoes the root's object construction. A task holding
// only a by-reference object (received over an in-process link, resent
// over a wire one) is serialized here as the fallback.
type passLoader struct{}

func (passLoader) Load(t Task, s Strategy) ([]byte, error) {
	if t.Data == nil && t.Obj != nil {
		ser, err := nsp.Serialize(t.Obj)
		if err != nil {
			return nil, fmt.Errorf("farm: serialize chunk object: %w", err)
		}
		return ser.Data, nil
	}
	return t.Data, nil
}

// RunSubMaster receives chunks from the root, farms each chunk task-by-
// task over its own workers, and ships the chunk's results back as one
// message. On the root's stop message it stops its workers and returns.
func RunSubMaster(c mpi.Comm, workers []int, opts Options) error {
	for {
		obj, _, err := mpi.RecvObj(c, 0, TagTask)
		if err != nil {
			return fmt.Errorf("farm: sub-master %d recv chunk: %w", c.Rank(), err)
		}
		desc, err := decodeBatch(obj)
		if err != nil {
			return err
		}
		names, costs, sizes := desc.Names, desc.Costs, desc.Sizes
		if len(names) == 0 {
			return sendStop(c, workers)
		}
		tasks := make([]Task, len(names))
		for i := range names {
			tasks[i] = Task{Name: names[i], Cost: costs[i]}
		}
		if opts.Strategy.NeedsPayload() {
			pobj, _, err := mpi.RecvObj(c, 0, TagPayload)
			if err != nil {
				return fmt.Errorf("farm: sub-master %d recv payloads: %w", c.Rank(), err)
			}
			list, ok := pobj.(*nsp.List)
			if !ok || list.Len() != len(names) {
				return fmt.Errorf("farm: sub-master %d: malformed chunk payload", c.Rank())
			}
			for i, item := range list.Items {
				if s, ok := item.(*nsp.Serial); ok {
					tasks[i].Data = s.Data
					continue
				}
				// By-reference chunk item: keep the object; the re-dispatch
				// to this group's workers ships it by reference again (or
				// serializes it via the loader on wire transports).
				tasks[i].Obj = item
			}
		} else {
			// NFS: workers read by name; preserve declared sizes through
			// zero-filled placeholders so descriptors stay truthful.
			for i := range tasks {
				tasks[i].Data = make([]byte, int(sizes[i]))
			}
		}
		// Sub-masters are driven by the root's stop message, not by a
		// context of their own.
		res, err := runBatches(context.Background(), c, workers, splitBatches(tasks, 1), passLoader{}, opts)
		if err != nil {
			return err
		}
		out := nsp.NewList()
		for _, r := range res {
			out.Add(r.Value)
		}
		if err := mpi.SendObj(c, out, 0, TagResult); err != nil {
			return fmt.Errorf("farm: sub-master %d send results: %w", c.Rank(), err)
		}
	}
}
