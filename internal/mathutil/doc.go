// Package mathutil provides the numerical primitives shared by the pricing
// library and the benchmark harness: a deterministic PCG64 random number
// generator with Gaussian variates, the standard normal distribution
// (density, cumulative distribution and its inverse), Cholesky
// factorisation for correlated multi-asset simulation, tridiagonal solvers
// for the finite-difference pricers (including the Brennan–Schwartz
// variant used for American options), least-squares polynomial regression
// for the Longstaff–Schwartz algorithm, and summary statistics for Monte
// Carlo estimators.
//
// Everything here is stdlib-only and allocation-conscious: the solvers and
// the regression accept caller-provided scratch space where it matters for
// the inner loops of the pricers.
package mathutil
