package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// TestEventEmitAndFilter drives the flight recorder under a virtual
// clock and checks stamping, ordering and every filter axis.
func TestEventEmitAndFilter(t *testing.T) {
	r := New()
	clk := 0.0
	r.SetClock(func() float64 { return clk })
	clk = 1
	r.Emit(LevelDebug, "farm.fetch.begin", TraceContext{})
	clk = 2
	r.Emit(LevelWarn, "farm.task.retry", TraceContext{TraceID: 0xabc, SpanID: 1},
		Str("task", "p0001"), Num("rank", 3))
	clk = 3
	r.Emit(LevelError, "mpi.peer.drop", TraceContext{}, Num("rank", 2))
	clk = 4
	r.Emit(LevelInfo, "serve.drain.begin", TraceContext{TraceID: 0xabc, SpanID: 2})

	all := r.Events(EventFilter{})
	if len(all) != 4 {
		t.Fatalf("got %d events, want 4", len(all))
	}
	for i, ev := range all {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want dense ascending", i, ev.Seq)
		}
		if ev.When != float64(i+1) {
			t.Errorf("event %d stamped %v, want virtual clock %d", i, ev.When, i+1)
		}
		if ev.Rank != RankLocal {
			t.Errorf("local event %d has rank %d, want RankLocal", i, ev.Rank)
		}
	}
	retry := all[1]
	if retry.Name != "farm.task.retry" || retry.TraceID != 0xabc || len(retry.Fields) != 2 {
		t.Errorf("unexpected retry event: %+v", retry)
	}
	if v, ok := retry.Fields[0].StrValue(); !ok || v != "p0001" {
		t.Errorf("field 0 = %+v, want Str task=p0001", retry.Fields[0])
	}
	if v, ok := retry.Fields[1].NumValue(); !ok || v != 3 {
		t.Errorf("field 1 = %+v, want Num rank=3", retry.Fields[1])
	}

	if got := r.Events(EventFilter{MinLevel: LevelWarn}); len(got) != 2 {
		t.Errorf("MinLevel warn kept %d events, want 2", len(got))
	}
	if got := r.Events(EventFilter{Prefix: "farm."}); len(got) != 2 {
		t.Errorf("prefix farm. kept %d events, want 2", len(got))
	}
	if got := r.Events(EventFilter{TraceID: 0xabc}); len(got) != 2 {
		t.Errorf("trace filter kept %d events, want 2", len(got))
	}
	if got := r.Events(EventFilter{SinceSeq: 3}); len(got) != 1 || got[0].Seq != 4 {
		t.Errorf("SinceSeq 3 kept %v, want just seq 4", got)
	}
	if got := r.Events(EventFilter{Max: 2}); len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("Max 2 kept %v, want the newest two", got)
	}
}

// TestEventRingEviction fills the ring past capacity and checks the low
// end fell off while the retained window stays dense.
func TestEventRingEviction(t *testing.T) {
	r := New()
	const extra = 100
	for i := 0; i < eventRingCap+extra; i++ {
		r.Emit(LevelInfo, "test.ev.fill", TraceContext{}, Num("i", float64(i)))
	}
	evs := r.Events(EventFilter{})
	if len(evs) != eventRingCap {
		t.Fatalf("retained %d events, want ring capacity %d", len(evs), eventRingCap)
	}
	if evs[0].Seq != extra+1 {
		t.Errorf("oldest retained seq = %d, want %d", evs[0].Seq, extra+1)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not dense at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestEventFieldTruncation checks the per-event attribute cap: extras
// are dropped rather than allocated.
func TestEventFieldTruncation(t *testing.T) {
	r := New()
	fields := make([]Field, maxEventFields+4)
	for i := range fields {
		fields[i] = Num(fmt.Sprintf("f%d", i), float64(i))
	}
	r.Emit(LevelInfo, "test.ev.wide", TraceContext{}, fields...)
	evs := r.Events(EventFilter{})
	if len(evs) != 1 || len(evs[0].Fields) != maxEventFields {
		t.Fatalf("got %d fields, want cap %d", len(evs[0].Fields), maxEventFields)
	}
}

// TestEventsConcurrent hammers the ring with parallel emitters while a
// reader snapshots through active eviction — the -race proof that the
// per-slot mutex keeps emit/read exact, never torn.
func TestEventsConcurrent(t *testing.T) {
	r := New()
	const emitters = 4
	const perEmitter = 2 * eventRingCap // force continuous wrap-around
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			for _, ev := range r.Events(EventFilter{}) {
				// A torn event would pair one emitter's name with
				// another's fields (or a stale field count).
				if len(ev.Fields) != 2 {
					t.Errorf("event %d has %d fields, want 2", ev.Seq, len(ev.Fields))
					return
				}
				w, ok := ev.Fields[0].NumValue()
				if !ok {
					t.Errorf("event %d field 0 not numeric", ev.Seq)
					return
				}
				if want := fmt.Sprintf("test.worker%d.emit", int(w)); ev.Name != want {
					t.Errorf("event %d torn: name %q, fields say %q", ev.Seq, ev.Name, want)
					return
				}
			}
		}
	}()
	for w := 0; w < emitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("test.worker%d.emit", w)
			for i := 0; i < perEmitter; i++ {
				r.Emit(LevelInfo, name, TraceContext{}, Num("w", float64(w)), Num("i", float64(i)))
			}
		}(w)
	}
	wg.Wait()
	close(stopRead)
	readWG.Wait()
	if got := r.EventCursor(); got != emitters*perEmitter {
		t.Errorf("cursor = %d, want %d (every emission claimed one seq)", got, emitters*perEmitter)
	}
}

// TestInternNameStability checks that interning is idempotent and
// identity-stable under concurrency: every interned copy of a name
// shares one backing string.
func TestInternNameStability(t *testing.T) {
	// Build the names at runtime so the compiler cannot pre-share them.
	mk := func(i int) string { return fmt.Sprintf("test.intern.name%d", i%8) }
	canon := make([]string, 8)
	for i := range canon {
		canon[i] = InternName(mk(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				got := InternName(mk(i))
				want := canon[i%8]
				if got != want {
					t.Errorf("InternName(%q) = %q", mk(i), got)
					return
				}
				if unsafe.StringData(got) != unsafe.StringData(want) {
					t.Errorf("InternName(%q) returned a distinct backing string", mk(i))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestIngestEvents checks the master-side fold: ingested events keep
// the caller-assigned rank and clock, get fresh local sequence numbers,
// and their names intern.
func TestIngestEvents(t *testing.T) {
	r := New()
	r.Emit(LevelWarn, "test.local.first", TraceContext{})
	r.IngestEvents([]Event{
		{When: 10, Level: LevelWarn, Name: "farm.compute.error", TraceID: 0x1, Rank: 3,
			Fields: []Field{Str("task", "p0001")}},
		{When: 11, Level: LevelError, Name: "farm.compute.error", Rank: 5},
	})
	evs := r.Events(EventFilter{SinceSeq: 1})
	if len(evs) != 2 {
		t.Fatalf("got %d ingested events, want 2", len(evs))
	}
	if evs[0].Rank != 3 || evs[1].Rank != 5 {
		t.Errorf("ranks = %d,%d, want 3,5", evs[0].Rank, evs[1].Rank)
	}
	if evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Errorf("ingested seqs = %d,%d, want local 2,3", evs[0].Seq, evs[1].Seq)
	}
	if unsafe.StringData(evs[0].Name) != unsafe.StringData(evs[1].Name) {
		t.Error("repeated ingested name not interned to one backing string")
	}
}

// TestEventsHandler exercises /debug/events: NDJSON shape, every query
// filter, and the 400 paths.
func TestEventsHandler(t *testing.T) {
	r := New()
	r.Emit(LevelInfo, "serve.drain.begin", TraceContext{})
	r.Emit(LevelWarn, "farm.task.retry", TraceContext{TraceID: 0xbeef, SpanID: 1}, Num("rank", 2))
	r.Emit(LevelError, "farm.task.fail", TraceContext{TraceID: 0xbeef, SpanID: 2})
	srv := httptest.NewServer(EventsHandler(r))
	defer srv.Close()

	get := func(query string) []eventJSON {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", query, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
			t.Errorf("content type %q, want NDJSON", ct)
		}
		var out []eventJSON
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ej eventJSON
			if err := json.Unmarshal(sc.Bytes(), &ej); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			out = append(out, ej)
		}
		return out
	}

	if got := get(""); len(got) != 3 {
		t.Errorf("unfiltered: %d lines, want 3", len(got))
	}
	if got := get("?level=warn"); len(got) != 2 {
		t.Errorf("level=warn: %d lines, want 2", len(got))
	}
	if got := get("?prefix=farm.task."); len(got) != 2 {
		t.Errorf("prefix: %d lines, want 2", len(got))
	}
	got := get("?trace=000000000000beef")
	if len(got) != 2 || got[0].Trace != "000000000000beef" {
		t.Errorf("trace filter: %+v", got)
	}
	if got := get("?n=1"); len(got) != 1 || got[0].Name != "farm.task.fail" {
		t.Errorf("n=1 should keep the newest: %+v", got)
	}
	for _, bad := range []string{"?level=loud", "?trace=xyz", "?trace=0", "?n=-1"} {
		resp, err := srv.Client().Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestEmitAllocs pins the steady-state allocation budget of Emit: the
// fields are copied into slot-resident storage, so emitting must not
// allocate more than the ≤1 alloc/op bench-guard budget.
func TestEmitAllocs(t *testing.T) {
	r := New()
	tc := TraceContext{TraceID: 1, SpanID: 1}
	r.Emit(LevelWarn, "test.alloc.warm", tc, Num("a", 1), Str("b", "x")) // create the ring outside the measurement
	got := testing.AllocsPerRun(1000, func() {
		r.Emit(LevelWarn, "test.alloc.probe", tc, Num("a", 1), Str("b", "x"))
	})
	if got > 1 {
		t.Errorf("Emit allocates %.1f/op, budget is ≤1", got)
	}
}

// BenchmarkEventEmit is the bench-guard's alloc probe for the emit hot
// path (budget: ≤1 alloc/op, see scripts/bench_guard.sh).
func BenchmarkEventEmit(b *testing.B) {
	r := New()
	tc := TraceContext{TraceID: 1, SpanID: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(LevelWarn, "bench.ev.emit", tc, Num("rank", 3), Str("task", "p0001"))
	}
}
