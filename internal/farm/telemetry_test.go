package farm

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"

	"riskbench/internal/mpi"
	"riskbench/internal/telemetry"
)

// TestFarmTelemetrySpansMatchTasks runs a live farm with a telemetry
// registry and checks the instrumentation's core invariant: one
// "farm.task" span (master side) and one "farm.compute" span (worker
// side) per task priced, all under a single "farm.run" root.
func TestFarmTelemetrySpansMatchTasks(t *testing.T) {
	const workers = 3
	tasks, want := makePortfolio(t, 40)
	reg := telemetry.New()
	opts := Options{Strategy: SerializedLoad, BatchSize: 4, Telemetry: reg}
	results := runLocalFarm(t, tasks, workers, opts, nil)
	checkResults(t, results, want)

	n := int64(len(tasks))
	if got := reg.SpanCount("farm.run"); got != 1 {
		t.Errorf("farm.run spans = %d, want 1", got)
	}
	if got := reg.SpanCount("farm.task"); got != n {
		t.Errorf("farm.task spans = %d, want %d", got, n)
	}
	if got := reg.SpanCount("farm.compute"); got != n {
		t.Errorf("farm.compute spans = %d, want %d", got, n)
	}
	if got := reg.Histogram("farm.task_seconds").Count(); got != n {
		t.Errorf("farm.task_seconds count = %d, want %d", got, n)
	}
	if got := reg.Histogram("farm.queue_wait_seconds").Count(); got != n {
		t.Errorf("farm.queue_wait_seconds count = %d, want %d", got, n)
	}
	if got := reg.Counter("farm.tasks_completed").Value(); got != n {
		t.Errorf("farm.tasks_completed = %d, want %d", got, n)
	}
	if got := reg.Counter("farm.task_errors").Value(); got != 0 {
		t.Errorf("farm.task_errors = %d, want 0", got)
	}
	var perWorker int64
	for r := 1; r <= workers; r++ {
		perWorker += reg.Counter("farm.worker." + strconv.Itoa(r) + ".tasks").Value()
	}
	if perWorker != n {
		t.Errorf("per-worker task counters sum to %d, want %d", perWorker, n)
	}

	// Every finished farm.task span must link to the farm.run root.
	var runID uint64
	for _, rec := range reg.FinishedSpans() {
		if rec.Name == "farm.run" {
			runID = rec.ID
		}
	}
	if runID == 0 {
		t.Fatal("no finished farm.run span recorded")
	}
	taskSpans := 0
	for _, rec := range reg.FinishedSpans() {
		if rec.Name != "farm.task" {
			continue
		}
		taskSpans++
		if rec.ParentID != runID {
			t.Fatalf("farm.task span %d has parent %d, want farm.run %d", rec.ID, rec.ParentID, runID)
		}
		if rec.End < rec.Start {
			t.Fatalf("farm.task span %d ends (%v) before it starts (%v)", rec.ID, rec.End, rec.Start)
		}
	}
	if int64(taskSpans) != n {
		t.Errorf("finished farm.task records = %d, want %d", taskSpans, n)
	}
}

// TestFarmMasterCancelled checks the cooperative-cancellation contract: a
// cancelled master dispatches nothing, still stops its workers (so they
// exit cleanly), and reports the context's error.
func TestFarmMasterCancelled(t *testing.T) {
	const workers = 2
	tasks, _ := makePortfolio(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := mpi.NewLocalWorld(workers + 1)
	defer w.Close()
	opts := Options{Strategy: SerializedLoad}
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := RunWorker(w.Comm(rank), LiveExecutor{}, nil, opts); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	_, err := RunMaster(ctx, w.Comm(0), tasks, LiveLoader{}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled master returned %v, want context.Canceled", err)
	}
	wg.Wait() // workers must have received the stop message
}

// TestStaticMasterCancelled is the same contract for the static ablation
// scheduler.
func TestStaticMasterCancelled(t *testing.T) {
	const workers = 2
	tasks, _ := makePortfolio(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := mpi.NewLocalWorld(workers + 1)
	defer w.Close()
	opts := Options{Strategy: SerializedLoad}
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := RunWorker(w.Comm(rank), LiveExecutor{}, nil, opts); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	_, err := RunStaticMaster(ctx, w.Comm(0), tasks, LiveLoader{}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled static master returned %v, want context.Canceled", err)
	}
	wg.Wait()
}

// TestFarmDistributedTrace runs master and workers on SEPARATE
// registries — the separate-process shape — under a traced context, and
// checks that the master reassembles one complete span tree: worker-side
// farm.compute spans travel back over the wire and parent onto the
// master's farm.task spans.
func TestFarmDistributedTrace(t *testing.T) {
	const workers = 3
	tasks, want := makePortfolio(t, 12)
	master := telemetry.New()
	w := mpi.NewLocalWorld(workers + 1)
	defer w.Close()
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			wopts := Options{Strategy: SerializedLoad, BatchSize: 2, Telemetry: telemetry.New()}
			if err := RunWorker(w.Comm(rank), LiveExecutor{}, nil, wopts); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	root := master.StartTrace("bench.run")
	ctx := telemetry.ContextWithTrace(context.Background(), root.Context())
	opts := Options{Strategy: SerializedLoad, BatchSize: 2, Telemetry: master}
	results, err := RunMaster(ctx, w.Comm(0), tasks, LiveLoader{}, opts)
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	root.End()
	wg.Wait()
	checkResults(t, results, want)

	traces := master.Traces()
	if len(traces) != 1 {
		t.Fatalf("master retains %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != root.Context().TraceID {
		t.Fatalf("trace ID %x, want %x", tr.TraceID, root.Context().TraceID)
	}
	byID := make(map[uint64]telemetry.SpanRecord, len(tr.Spans))
	count := map[string]int{}
	for _, s := range tr.Spans {
		byID[s.ID] = s
		count[s.Name]++
	}
	n := len(tasks)
	if count["farm.task"] != n || count["farm.compute"] != n {
		t.Fatalf("span counts %v, want %d farm.task and %d farm.compute", count, n, n)
	}
	if count["farm.run"] != 1 || count["bench.run"] != 1 {
		t.Fatalf("span counts %v, want one farm.run under one bench.run", count)
	}
	// Every worker-side span must link onto a master-side span of the
	// right kind, and nest within it on the master clock.
	for _, s := range tr.Spans {
		switch s.Name {
		case "farm.compute":
			parent, ok := byID[s.ParentID]
			if !ok || parent.Name != "farm.task" {
				t.Fatalf("farm.compute parent = %+v, want a farm.task span", parent)
			}
			if s.Start < parent.Start || s.End > parent.End {
				t.Errorf("farm.compute [%v,%v] not nested in farm.task [%v,%v]",
					s.Start, s.End, parent.Start, parent.End)
			}
		case "farm.fetch":
			if parent, ok := byID[s.ParentID]; !ok || parent.Name != "farm.task" {
				t.Fatalf("farm.fetch parent = %+v, want a farm.task span", parent)
			}
		case "farm.task", "farm.dispatch":
			if parent, ok := byID[s.ParentID]; !ok || parent.Name != "farm.run" {
				t.Fatalf("%s parent = %+v, want the farm.run span", s.Name, parent)
			}
		case "farm.run":
			if s.ParentID != root.ID() {
				t.Fatalf("farm.run parent = %d, want bench.run %d", s.ParentID, root.ID())
			}
		}
	}
}
