package nsp

import (
	"fmt"
	"strings"
)

// Display renders an object in Nsp's interactive format, the one the
// paper's listings show:
//
//	B = l (3)
//	(
//	(1) = s (1x1)
//	string
//	(2) = b (1x1)
//	| T |
//	(3) = r (4x4)
//	| 0.89259 0.69284 0.10172 0.85434 |
//	...
//	)
func Display(name string, o Object) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s = ", name)
	display(&b, o, "")
	return b.String()
}

func display(b *strings.Builder, o Object, indent string) {
	if o == nil {
		fmt.Fprintf(b, "<nil>\n")
		return
	}
	switch v := o.(type) {
	case *Mat:
		fmt.Fprintf(b, "r (%dx%d)\n", v.Rows, v.Cols)
		for i := 0; i < v.Rows; i++ {
			b.WriteString(indent + "|")
			for j := 0; j < v.Cols; j++ {
				fmt.Fprintf(b, " %.5g", v.At(i, j))
			}
			b.WriteString(" |\n")
		}
	case *IMat:
		fmt.Fprintf(b, "i (%dx%d)\n", v.Rows, v.Cols)
		for i := 0; i < v.Rows; i++ {
			b.WriteString(indent + "|")
			for j := 0; j < v.Cols; j++ {
				fmt.Fprintf(b, " %d", v.At(i, j))
			}
			b.WriteString(" |\n")
		}
	case *BMat:
		fmt.Fprintf(b, "b (%dx%d)\n", v.Rows, v.Cols)
		for i := 0; i < v.Rows; i++ {
			b.WriteString(indent + "|")
			for j := 0; j < v.Cols; j++ {
				if v.Data[i*v.Cols+j] {
					b.WriteString(" T")
				} else {
					b.WriteString(" F")
				}
			}
			b.WriteString(" |\n")
		}
	case *SMat:
		fmt.Fprintf(b, "s (%dx%d)\n", v.Rows, v.Cols)
		for i := 0; i < v.Rows; i++ {
			for j := 0; j < v.Cols; j++ {
				fmt.Fprintf(b, "%s%s\n", indent, v.Data[i*v.Cols+j])
			}
		}
	case *List:
		fmt.Fprintf(b, "l (%d)\n%s(\n", v.Len(), indent)
		for i, item := range v.Items {
			fmt.Fprintf(b, "%s(%d) = ", indent, i+1)
			display(b, item, indent+"  ")
		}
		fmt.Fprintf(b, "%s)\n", indent)
	case *Hash:
		fmt.Fprintf(b, "h (%d)\n%s(\n", v.Len(), indent)
		for _, k := range v.Keys() {
			item, _ := v.Get(k)
			fmt.Fprintf(b, "%s%s = ", indent, k)
			display(b, item, indent+"  ")
		}
		fmt.Fprintf(b, "%s)\n", indent)
	case *Cells:
		fmt.Fprintf(b, "ce (%dx%d)\n%s{\n", v.Rows, v.Cols, indent)
		for i := 0; i < v.Rows; i++ {
			for j := 0; j < v.Cols; j++ {
				fmt.Fprintf(b, "%s(%d,%d) = ", indent, i+1, j+1)
				item := v.At(i, j)
				if item == nil {
					b.WriteString("{}\n")
					continue
				}
				display(b, item, indent+"  ")
			}
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case *SpMat:
		fmt.Fprintf(b, "sp (%dx%d, %d nnz)\n", v.Rows, v.Cols, v.NNZ())
		for k := range v.Val {
			fmt.Fprintf(b, "%s(%d,%d) = %.5g\n", indent, v.RowIdx[k]+1, v.ColIdx[k]+1, v.Val[k])
		}
	case *Serial:
		fmt.Fprintf(b, "%s\n", v.String())
	default:
		fmt.Fprintf(b, "%v\n", o.Kind())
	}
}
