package telemetry

import "time"

// This file is the single place production code touches the wall
// clock. Everything else reads time through a Registry's clock
// (Registry.Now), which simnet replaces with a virtual clock — that is
// what lets a laptop replay a 512-core cluster with durations that
// mean virtual seconds. The riskvet wallclock analyzer bans raw
// time.Now/time.Since in the timing-bearing packages; the two escapes
// below exist for the cases that genuinely need wall time and are the
// sanctioned way to get it.

// processStart anchors the wall clock; only differences of clock
// readings are meaningful, and time.Since uses the monotone clock.
//
//lint:allow wallclock this is the definition of the wall clock itself
var processStart = time.Now()

// wallSeconds is the default registry clock: monotone seconds since
// process start.
//
//lint:allow wallclock this is the definition of the wall clock itself
func wallSeconds() float64 { return time.Since(processStart).Seconds() }

// Wall returns monotone wall seconds since process start — the
// fallback time source where no registry exists (a farm worker running
// without telemetry still stamps compute seconds into result hashes).
// Code holding a registry should use Registry.Now instead so it
// virtualizes.
func Wall() float64 { return wallSeconds() }

// Deadline converts a timeout into an absolute wall-clock deadline for
// network I/O (net.Conn.SetReadDeadline and friends). I/O deadlines
// are kernel-enforced and cannot be virtualized, so this is wall time
// by design; routing them through here keeps raw time.Now out of the
// transports and makes every remaining wall read auditable.
//
//lint:allow wallclock I/O deadlines are kernel-enforced wall time by design
func Deadline(timeout time.Duration) time.Time { return time.Now().Add(timeout) }
