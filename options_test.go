package riskbench_test

// Tests of the functional-options façade: RunTableWith, NewEngine and the
// telemetry wiring, through the public API only.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"riskbench"
	"riskbench/internal/portfolio"
)

// TestRunTableWithTelemetry is the headline contract: a sweep run with a
// telemetry option formats per-strategy p50/p95 task latency and
// per-worker utilization alongside the paper's time/speedup columns.
func TestRunTableWithTelemetry(t *testing.T) {
	spec := riskbench.TableII()
	spec.Portfolio = riskbench.ToyPortfolio(300)
	reg := riskbench.NewTelemetry()
	tbl, err := riskbench.RunTableWith(context.Background(), spec,
		riskbench.WithMaxCPUs(4), riskbench.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	for _, want := range []string{"p50", "p95", "mean util", "per-worker utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// The caller's registry accumulated the per-run metrics.
	snap := reg.Snapshot()
	found := false
	for name := range snap.Histograms {
		if strings.HasSuffix(name, "farm.task_seconds") {
			found = true
			break
		}
	}
	if !found {
		t.Error("telemetry registry has no merged farm.task_seconds histogram")
	}
}

func TestRunTableWithStrategyOverride(t *testing.T) {
	spec := riskbench.TableII() // normally three strategies
	spec.Portfolio = riskbench.ToyPortfolio(200)
	tbl, err := riskbench.RunTableWith(context.Background(), spec,
		riskbench.WithMaxCPUs(2), riskbench.WithStrategy(riskbench.FullLoad))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Spec.Strategies) != 1 || tbl.Spec.Strategies[0] != riskbench.FullLoad {
		t.Errorf("strategies = %v, want [full load]", tbl.Spec.Strategies)
	}
}

func TestRunTableWithCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := riskbench.TableII()
	spec.Portfolio = riskbench.ToyPortfolio(100)
	if _, err := riskbench.RunTableWith(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

// TestNewEngineTelemetry checks that an engine built from options records
// the revaluation's phases and farm metrics into the given registry.
func TestNewEngineTelemetry(t *testing.T) {
	reg := riskbench.NewTelemetry()
	eng := riskbench.NewEngine(
		riskbench.WithWorkers(2), riskbench.WithBatchSize(8), riskbench.WithTelemetry(reg))
	book := riskbench.ToyPortfolio(20)
	val, err := eng.Revalue(book, riskbench.StressScenarios())
	if err != nil {
		t.Fatal(err)
	}
	if val.TotalBase() <= 0 {
		t.Error("base value not positive")
	}
	snap := reg.Snapshot()
	for _, span := range []string{"risk.revalue", "risk.build", "risk.farm", "risk.scatter", "farm.run"} {
		if snap.Spans[span].Count == 0 {
			t.Errorf("no %s span recorded", span)
		}
	}
	// One farm task per (claim, applicable scenario) pair plus the base
	// pass; the exact count depends on scenario universes, but it is at
	// least one base valuation per claim.
	if got := snap.Counters["risk.tasks"]; got < 20 {
		t.Errorf("risk.tasks = %d, want >= 20", got)
	}
	if snap.Histograms["farm.task_seconds"].Count == 0 {
		t.Error("farm.task_seconds histogram empty")
	}
	// Per-scenario revaluation timing: every claim is priced once under
	// the base scenario, each with a worker-measured compute time.
	if got := snap.Histograms["risk.scenario_seconds.base"].Count; got != 20 {
		t.Errorf("risk.scenario_seconds.base count = %d, want 20", got)
	}
}

func TestEngineRevalueCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := riskbench.NewEngine(riskbench.WithWorkers(2))
	_, err := eng.RevalueContext(ctx, riskbench.ToyPortfolio(10), riskbench.StressScenarios())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled revaluation returned %v, want context.Canceled", err)
	}
}

// TestSetTelemetrySnapshot checks the process-wide wiring: after
// SetTelemetry, pricing computations show up in riskbench.Snapshot().
func TestSetTelemetrySnapshot(t *testing.T) {
	reg := riskbench.NewTelemetry()
	riskbench.SetTelemetry(reg)
	defer riskbench.SetTelemetry(nil)
	p := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).
		SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
	if _, err := p.Compute(); err != nil {
		t.Fatal(err)
	}
	snap := riskbench.Snapshot()
	if snap.Counters["premia.computes"] == 0 {
		t.Error("premia.computes not counted after SetTelemetry")
	}
	if snap.Histograms["premia.compute_seconds."+riskbench.MethodCFCall].Count == 0 {
		t.Error("per-method compute histogram empty")
	}
}

// TestMetricsHandler checks the HTTP endpoint the -telemetry flag mounts.
func TestMetricsHandler(t *testing.T) {
	reg := riskbench.NewTelemetry()
	reg.Counter("demo.count").Add(3)
	srv := httptest.NewServer(riskbench.MetricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap riskbench.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["demo.count"] != 3 {
		t.Errorf("endpoint counters = %v, want demo.count=3", snap.Counters)
	}
}

// TestSentinelsExported checks the façade error re-exports classify a
// failure produced deep inside the pricing layer.
func TestSentinelsExported(t *testing.T) {
	p := riskbench.NewProblem().SetMethod("bogus")
	_, err := p.Compute()
	if !errors.Is(err, riskbench.ErrUnknownMethod) {
		t.Fatalf("errors.Is(%v, ErrUnknownMethod) = false", err)
	}
}

// TestNewEngineKernelThreads checks the WithKernelThreads plumbing end to
// end: the engine stamps the thread count onto its tasks, the workers
// price on the multicore kernel, and the estimate matches a serial run
// bit for bit (the kernel's determinism contract).
func TestNewEngineKernelThreads(t *testing.T) {
	mc := riskbench.NewProblem().
		SetModel(riskbench.ModelBS1D).SetOption(riskbench.OptCallEuro).
		SetMethod(riskbench.MethodMCEuro).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1).Set("paths", 5000)
	pf := &riskbench.Portfolio{Name: "mc", Items: []portfolio.Item{
		{Name: "mc-call", Problem: mc, Cost: 1},
	}}

	reg := riskbench.NewTelemetry()
	riskbench.SetTelemetry(reg)
	defer riskbench.SetTelemetry(nil)

	run := func(threads int) *riskbench.Valuation {
		eng := riskbench.NewEngine(riskbench.WithWorkers(2), riskbench.WithKernelThreads(threads))
		val, err := eng.Revalue(pf, nil)
		if err != nil {
			t.Fatal(err)
		}
		return val
	}
	serial := run(1)
	pooled := run(4)
	if serial.Base[0] != pooled.Base[0] {
		t.Errorf("kernel threads changed the price: %v vs %v", serial.Base[0], pooled.Base[0])
	}
	if reg.Snapshot().Counters["premia.kernel.runs"] == 0 {
		t.Error("kernel never ran under the engine")
	}
}

// TestEngineWithCache exercises the façade's cache option: a second
// PriceBatch over the same problems answers from the cache with
// bit-identical results.
func TestEngineWithCache(t *testing.T) {
	eng := riskbench.NewEngine(riskbench.WithWorkers(2), riskbench.WithCache(128))
	probs := []*riskbench.Problem{
		riskbench.NewProblem().
			SetModel(riskbench.ModelBS1D).SetOption(riskbench.OptCallEuro).
			SetMethod(riskbench.MethodMCEuro).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
			Set("K", 100).Set("T", 1).Set("paths", 2000).SetSeed(99),
	}
	cold, err := eng.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	if cold[0].Err != nil || warm[0].Err != nil {
		t.Fatalf("pricing errors: %v / %v", cold[0].Err, warm[0].Err)
	}
	if !warm[0].Cached {
		t.Fatal("second PriceBatch missed the cache")
	}
	if warm[0].Result != cold[0].Result {
		t.Fatalf("cached result %+v differs from fresh %+v", warm[0].Result, cold[0].Result)
	}
}

// TestNewPricingServer drives the façade-built server end to end: a
// price request, a cache hit, health and metrics.
func TestNewPricingServer(t *testing.T) {
	reg := riskbench.NewTelemetry()
	srv := riskbench.NewPricingServer(
		riskbench.WithWorkers(2), riskbench.WithBatchSize(4),
		riskbench.WithCache(1024), riskbench.WithMaxInflight(32),
		riskbench.WithTelemetry(reg))
	defer srv.Close()

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/price", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		return w
	}
	body := `{"model":"BlackScholes1dim","option":"CallEuro","method":"CF_Call",
		"params":{"S0":100,"r":0.05,"sigma":0.2,"K":100,"T":1}}`
	w1 := post(body)
	if w1.Code != 200 {
		t.Fatalf("first price: status %d body %s", w1.Code, w1.Body.String())
	}
	w2 := post(body)
	var r1, r2 struct {
		Price  float64 `json:"price"`
		Cached bool    `json:"cached"`
	}
	if err := json.Unmarshal(w1.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Price != r1.Price {
		t.Fatalf("cache replay mismatch: %+v vs %+v", r2, r1)
	}
	req := httptest.NewRequest("GET", "/healthz", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("healthz: %d", w.Code)
	}
	if reg.Snapshot().Counters["serve.requests"] != 2 {
		t.Errorf("serve.requests = %d, want 2", reg.Snapshot().Counters["serve.requests"])
	}
}
