package bench

import (
	"context"
	"fmt"
	"strings"

	"riskbench/internal/farm"
	"riskbench/internal/portfolio"
	"riskbench/internal/simnet"
	"riskbench/internal/telemetry"
)

// TableSpec describes one of the paper's tables: a workload swept over
// CPU counts for one or more communication strategies.
type TableSpec struct {
	// Name labels the table ("Table I", …).
	Name string
	// Caption reproduces the paper's caption.
	Caption string
	// Portfolio generates the workload.
	Portfolio *portfolio.Portfolio
	// CPUCounts are the paper's row values.
	CPUCounts []int
	// Strategies are the compared communication strategies (columns).
	Strategies []farm.Strategy
	// SharedNFS keeps one NFS cache across all rows of the sweep,
	// reproducing the paper's warm-cache bias in repeat runs; when false a
	// cold cache is used per row.
	SharedNFS bool
	// MaxCPUs optionally truncates CPUCounts (0 = keep all), so quick
	// benchmarks can run a prefix of the table.
	MaxCPUs int
}

// Cell is one (time, ratio) measurement.
type Cell struct {
	// Time is the simulated makespan in seconds.
	Time float64
	// Ratio is the paper's speedup ratio T(2)/((n−1)·T(n)).
	Ratio float64
}

// StratReport is the telemetry of one (CPU count, strategy) run: the
// task-latency quantiles of the farm and the occupancy of its nodes, in
// virtual seconds. It is only collected when the sweep is given a
// telemetry sink.
type StratReport struct {
	// TaskP50, TaskP95 and TaskP99 are quantiles of the per-task
	// dispatch→result latency.
	TaskP50, TaskP95, TaskP99 float64
	// MasterBusy is the master's compute-occupied time.
	MasterBusy float64
	// WorkerUtilization is each worker's busy fraction of the makespan,
	// by rank; MeanUtilization averages it.
	WorkerUtilization []float64
	MeanUtilization   float64
}

// Row is one CPU count's measurements across strategies.
type Row struct {
	// CPUs is the row's CPU count.
	CPUs int
	// Cells maps strategy → measurement.
	Cells map[farm.Strategy]Cell
	// Reports maps strategy → telemetry; nil unless the sweep ran with
	// a telemetry sink.
	Reports map[farm.Strategy]StratReport
}

// Table is a completed sweep.
type Table struct {
	// Spec echoes the input.
	Spec TableSpec
	// Rows are in CPU-count order.
	Rows []Row
}

// TableI reproduces the paper's Table I: speedups of the Premia
// non-regression tests, serialized-load strategy, 2–256 CPUs.
func TableI() TableSpec {
	return TableSpec{
		Name:       "Table I",
		Caption:    "Speedup table for the non-regression tests of Premia.",
		Portfolio:  portfolio.Regression(),
		CPUCounts:  []int{2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256},
		Strategies: []farm.Strategy{farm.SerializedLoad},
	}
}

// TableII reproduces Table II: the 10,000-vanilla toy portfolio compared
// across the three communication strategies, 2–50 CPUs, with the NFS
// cache shared across rows as in the paper's biased repeat runs.
func TableII() TableSpec {
	return TableSpec{
		Name:       "Table II",
		Caption:    "Comparison of the different ways of carrying out the communications (toy portfolio).",
		Portfolio:  portfolio.Toy(10000),
		CPUCounts:  []int{2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50},
		Strategies: []farm.Strategy{farm.FullLoad, farm.NFSLoad, farm.SerializedLoad},
		SharedNFS:  true,
	}
}

// TableIII reproduces Table III: the realistic 7931-claim portfolio
// across the three strategies, 2–512 CPUs.
func TableIII() TableSpec {
	return TableSpec{
		Name:       "Table III",
		Caption:    "Comparison of the different ways of carrying out the communications (realistic portfolio).",
		Portfolio:  portfolio.Realistic(),
		CPUCounts:  []int{2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512},
		Strategies: []farm.Strategy{farm.FullLoad, farm.NFSLoad, farm.SerializedLoad},
		SharedNFS:  true,
	}
}

// RunTable executes the sweep without telemetry, as the paper does.
func RunTable(spec TableSpec) (*Table, error) {
	return RunTableContext(context.Background(), spec, nil)
}

// RunTableContext executes the sweep under a context. When sink is
// non-nil, every (CPU count, strategy) run additionally collects task
// latency and node occupancy into Row.Reports (rendered by Format), and
// the per-run metrics are merged into sink under a
// "<table>.<cpus>cpu.<strategy>." prefix.
func RunTableContext(ctx context.Context, spec TableSpec, sink *telemetry.Registry) (*Table, error) {
	tasks, err := spec.Portfolio.Tasks()
	if err != nil {
		return nil, err
	}
	counts := spec.CPUCounts
	if spec.MaxCPUs > 0 {
		var trimmed []int
		for _, n := range counts {
			if n <= spec.MaxCPUs {
				trimmed = append(trimmed, n)
			}
		}
		counts = trimmed
	}
	table := &Table{Spec: spec}
	baseline := map[farm.Strategy]float64{}
	// Per-strategy persistent NFS when SharedNFS (warm across rows).
	shared := map[farm.Strategy]*simnet.NFS{}
	for _, n := range counts {
		row := Row{CPUs: n, Cells: map[farm.Strategy]Cell{}}
		if sink != nil {
			row.Reports = map[farm.Strategy]StratReport{}
		}
		for _, strat := range spec.Strategies {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var fs *simnet.NFS
			if strat == farm.NFSLoad {
				if spec.SharedNFS {
					if shared[strat] == nil {
						shared[strat] = simnet.NewNFS(simnet.DefaultNFS)
					}
					fs = shared[strat]
				} else {
					fs = simnet.NewNFS(simnet.DefaultNFS)
				}
			}
			rc := RunConfig{Tasks: tasks, CPUs: n, Strategy: strat, FS: fs}
			var t float64
			if sink == nil {
				t, err = Run(ctx, rc)
				if err != nil {
					return nil, fmt.Errorf("bench: %s, %d CPUs, %v: %w", spec.Name, n, strat, err)
				}
			} else {
				// One fresh registry per run keeps rows and strategies
				// from contaminating each other's histograms.
				reg := telemetry.New()
				rc.Telemetry = reg
				stats, err := RunWithStats(ctx, rc)
				if err != nil {
					return nil, fmt.Errorf("bench: %s, %d CPUs, %v: %w", spec.Name, n, strat, err)
				}
				t = stats.Makespan
				lat := reg.Histogram("farm.task_seconds")
				row.Reports[strat] = StratReport{
					TaskP50:           lat.Quantile(0.50),
					TaskP95:           lat.Quantile(0.95),
					TaskP99:           lat.Quantile(0.99),
					MasterBusy:        stats.MasterBusy,
					WorkerUtilization: stats.WorkerUtilization,
					MeanUtilization:   stats.MeanUtilization,
				}
				sink.Merge(reg, fmt.Sprintf("%s.%dcpu.%s.", strings.ReplaceAll(strings.ToLower(spec.Name), " ", ""), n, strategySlug(strat)))
			}
			cell := Cell{Time: t}
			if b, ok := baseline[strat]; ok {
				cell.Ratio = b / (float64(n-1) * t)
			} else {
				baseline[strat] = t
				cell.Ratio = 1
			}
			row.Cells[strat] = cell
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// strategySlug is a metric-name-friendly strategy label.
func strategySlug(s farm.Strategy) string {
	return strings.ReplaceAll(s.String(), " ", "_")
}

// Format renders the table in the paper's layout: one row per CPU count
// with Time and Speedup-ratio columns per strategy.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s\n", t.Spec.Name, t.Spec.Caption)
	fmt.Fprintf(&b, "%-8s", "CPUs")
	for range t.Spec.Strategies {
		fmt.Fprintf(&b, "%14s%14s", "Time", "Speedup")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, s := range t.Spec.Strategies {
		label := s.String()
		fmt.Fprintf(&b, "%14s%14s", label, label)
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-8d", row.CPUs)
		for _, s := range t.Spec.Strategies {
			c := row.Cells[s]
			fmt.Fprintf(&b, "%14.4f%14.6f", c.Time, c.Ratio)
		}
		b.WriteString("\n")
	}
	t.formatReports(&b)
	return b.String()
}

// formatReports appends the per-sweep telemetry section: task-latency
// quantiles and worker occupancy per (CPU count, strategy), collected
// when the sweep ran with a telemetry sink.
func (t *Table) formatReports(b *strings.Builder) {
	any := false
	for _, row := range t.Rows {
		if len(row.Reports) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString("\ntelemetry: task latency and worker occupancy (virtual seconds)\n")
	fmt.Fprintf(b, "%-8s%-18s%12s%12s%12s%13s%14s\n",
		"CPUs", "strategy", "p50", "p95", "p99", "mean util", "master busy")
	for _, row := range t.Rows {
		for _, s := range t.Spec.Strategies {
			r, ok := row.Reports[s]
			if !ok {
				continue
			}
			fmt.Fprintf(b, "%-8d%-18s%12.6f%12.6f%12.6f%12.1f%%%13.3fs\n",
				row.CPUs, s.String(), r.TaskP50, r.TaskP95, r.TaskP99,
				100*r.MeanUtilization, r.MasterBusy)
		}
	}
	// Per-worker utilization of the largest run, the paper's "many
	// nodes are waiting for some more work to do" view. Small worlds
	// are listed rank by rank; large ones are summarized.
	last := t.Rows[len(t.Rows)-1]
	for _, s := range t.Spec.Strategies {
		r, ok := last.Reports[s]
		if !ok || len(r.WorkerUtilization) == 0 {
			continue
		}
		fmt.Fprintf(b, "per-worker utilization @ %d CPUs, %s:", last.CPUs, s.String())
		if len(r.WorkerUtilization) <= 16 {
			for i, u := range r.WorkerUtilization {
				fmt.Fprintf(b, " w%d=%.1f%%", i+1, 100*u)
			}
		} else {
			min, max := r.WorkerUtilization[0], r.WorkerUtilization[0]
			for _, u := range r.WorkerUtilization {
				if u < min {
					min = u
				}
				if u > max {
					max = u
				}
			}
			fmt.Fprintf(b, " min=%.1f%% mean=%.1f%% max=%.1f%% (%d workers)",
				100*min, 100*r.MeanUtilization, 100*max, len(r.WorkerUtilization))
		}
		b.WriteString("\n")
	}
}
