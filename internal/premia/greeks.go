package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// Greeks are the risk sensitivities of one claim, the "other risk
// features such as delta, gamma, vega" the paper's introduction names as
// the point of daily risk evaluation.
type Greeks struct {
	// Price is the base price (re-reported for convenience).
	Price float64
	// Delta is ∂V/∂S.
	Delta float64
	// Gamma is ∂²V/∂S².
	Gamma float64
	// Vega is ∂V/∂σ (per unit of volatility; for Heston, ∂V/∂√V0).
	Vega float64
	// Theta is −∂V/∂T (value decay per year of shrinking maturity).
	Theta float64
	// Rho is ∂V/∂r.
	Rho float64
}

// bsGreeks returns the full analytic sensitivity set of a European option
// under one-dimensional Black–Scholes; used both as the fast path for the
// closed-form methods and as the oracle the bump engine is tested
// against.
func bsGreeks(m bsParams, k, t float64, call bool) Greeks {
	d1, d2 := bsD1D2(m, k, t)
	df := math.Exp(-m.R * t)
	dq := math.Exp(-m.Div * t)
	st := math.Sqrt(t)
	pdf := mathutil.NormPDF(d1)
	var g Greeks
	if call {
		g.Price = m.S0*dq*mathutil.NormCDF(d1) - k*df*mathutil.NormCDF(d2)
		g.Delta = dq * mathutil.NormCDF(d1)
		g.Rho = k * t * df * mathutil.NormCDF(d2)
		g.Theta = -m.S0*dq*pdf*m.Sigma/(2*st) -
			m.R*k*df*mathutil.NormCDF(d2) + m.Div*m.S0*dq*mathutil.NormCDF(d1)
	} else {
		g.Price = k*df*mathutil.NormCDF(-d2) - m.S0*dq*mathutil.NormCDF(-d1)
		g.Delta = -dq * mathutil.NormCDF(-d1)
		g.Rho = -k * t * df * mathutil.NormCDF(-d2)
		g.Theta = -m.S0*dq*pdf*m.Sigma/(2*st) +
			m.R*k*df*mathutil.NormCDF(-d2) - m.Div*m.S0*dq*mathutil.NormCDF(-d1)
	}
	g.Gamma = dq * pdf / (m.S0 * m.Sigma * st)
	g.Vega = m.S0 * dq * pdf * st
	return g
}

// VolParam returns the name of the volatility-like parameter of the given
// model ("sigma", "sigma0" or "V0"), so generic risk scenarios can bump
// volatility across heterogeneous books.
func VolParam(model string) (string, error) { return vegaParam(model) }

// vegaParam returns the volatility-like parameter the bump engine shifts
// for the problem's model.
func vegaParam(model string) (string, error) {
	switch model {
	case ModelBS1D, ModelBSND:
		return "sigma", nil
	case ModelLocVol:
		return "sigma0", nil
	case ModelHeston:
		return "V0", nil
	default:
		return "", fmt.Errorf("premia: no vega parameter for model %q", model)
	}
}

// GreekBumps controls the relative bump sizes of ComputeGreeks. The zero
// value selects the defaults.
type GreekBumps struct {
	// Spot is the relative S0 bump for delta/gamma (default 1%).
	Spot float64
	// Vol is the relative volatility bump for vega (default 1%).
	Vol float64
	// Rate is the absolute r bump for rho (default 10 bp).
	Rate float64
	// Time is the absolute maturity bump in years for theta (default
	// 1/365, one calendar day).
	Time float64
}

func (b GreekBumps) withDefaults() GreekBumps {
	if b.Spot == 0 {
		b.Spot = 0.01
	}
	if b.Vol == 0 {
		b.Vol = 0.01
	}
	if b.Rate == 0 {
		b.Rate = 0.001
	}
	if b.Time == 0 {
		b.Time = 1.0 / 365
	}
	return b
}

// ComputeGreeks returns the full sensitivity set of any registered
// problem. Closed-form Black–Scholes vanillas use the analytic formulas;
// everything else is bumped and repriced with common random numbers (the
// problems share the seed parameter, so Monte Carlo noise largely cancels
// in the differences — the standard practice the paper's risk-evaluation
// context assumes).
func ComputeGreeks(p *Problem, bumps GreekBumps) (Greeks, error) {
	if err := p.Validate(); err != nil {
		return Greeks{}, err
	}
	// Analytic fast path.
	if p.Model == ModelBS1D && (p.Method == MethodCFCall || p.Method == MethodCFPut) {
		m, err := bsFrom(p)
		if err != nil {
			return Greeks{}, err
		}
		o, err := vanillaFrom(p)
		if err != nil {
			return Greeks{}, err
		}
		return bsGreeks(m, o.K, o.T, p.Method == MethodCFCall), nil
	}
	b := bumps.withDefaults()
	price := func(q *Problem) (float64, error) {
		res, err := q.Compute()
		if err != nil {
			return 0, err
		}
		return res.Price, nil
	}
	base, err := price(p)
	if err != nil {
		return Greeks{}, err
	}
	g := Greeks{Price: base}

	s0, err := p.Params.NeedPositive("S0")
	if err != nil {
		return Greeks{}, err
	}
	hs := b.Spot * s0
	up, err := price(p.Clone().Set("S0", s0+hs))
	if err != nil {
		return Greeks{}, err
	}
	dn, err := price(p.Clone().Set("S0", s0-hs))
	if err != nil {
		return Greeks{}, err
	}
	g.Delta = (up - dn) / (2 * hs)
	g.Gamma = (up - 2*base + dn) / (hs * hs)

	vp, err := vegaParam(p.Model)
	if err != nil {
		return Greeks{}, err
	}
	vol, err := p.Params.NeedPositive(vp)
	if err != nil {
		return Greeks{}, err
	}
	hv := b.Vol * vol
	vUp, err := price(p.Clone().Set(vp, vol+hv))
	if err != nil {
		return Greeks{}, err
	}
	vDn, err := price(p.Clone().Set(vp, vol-hv))
	if err != nil {
		return Greeks{}, err
	}
	if p.Model == ModelHeston {
		// Report Heston vega per unit of initial *volatility* √V0, which
		// makes magnitudes comparable to Black–Scholes vega.
		dPdV := (vUp - vDn) / (2 * hv)
		g.Vega = dPdV * 2 * math.Sqrt(vol)
	} else {
		g.Vega = (vUp - vDn) / (2 * hv)
	}

	r := p.Params.Get("r", 0)
	rUp, err := price(p.Clone().Set("r", r+b.Rate))
	if err != nil {
		return Greeks{}, err
	}
	rDn, err := price(p.Clone().Set("r", r-b.Rate))
	if err != nil {
		return Greeks{}, err
	}
	g.Rho = (rUp - rDn) / (2 * b.Rate)

	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Greeks{}, err
	}
	ht := b.Time
	if ht >= t {
		ht = t / 2
	}
	tDn, err := price(p.Clone().Set("T", t-ht)) // shorter maturity
	if err != nil {
		return Greeks{}, err
	}
	g.Theta = (tDn - base) / ht
	return g, nil
}
