package varisk

import (
	"context"
	"math"
	"testing"

	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
)

func callProblem(k float64) *premia.Problem {
	return premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
		Set("S0", 100).Set("r", 0.04).Set("sigma", 0.2).Set("K", k).Set("T", 1)
}

func mcProblem(k float64, paths int) *premia.Problem {
	return premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodMCEuro).
		Set("S0", 100).Set("r", 0.04).Set("sigma", 0.2).Set("K", k).Set("T", 1).
		Set("paths", float64(paths))
}

// smallBook is a tiny all-closed-form call book: exact prices, so any
// disagreement between estimators is the estimator's own error.
func smallBook() *portfolio.Portfolio {
	pf := &portfolio.Portfolio{Name: "book"}
	for i, k := range []float64{80, 90, 100, 110, 120} {
		pf.Items = append(pf.Items, portfolio.Item{
			Name:    "call-" + string(rune('a'+i)),
			Problem: callProblem(k),
			Cost:    0.001,
		})
	}
	return pf
}

// TestKupiecCoverage backtests the full-revaluation VaR the way a
// regulator would: estimate VaR on one scenario sample, count
// exceedances on an independent sample, and accept only if the Kupiec
// proportion-of-failures likelihood ratio stays under the χ²(1) 99%
// critical value. The book is closed-form Black–Scholes and the market
// model spot-only, so the only randomness is the scenario draw itself.
func TestKupiecCoverage(t *testing.T) {
	pf := smallBook()
	m := MarketModel{SpotVol: 0.25, HorizonDays: 10}
	eng := risk.Engine{Workers: 4}
	cfg := Config{Alphas: []float64{0.95}, HorizonDays: 10}
	const n = 2000

	scens, err := m.Generate(n, 1001)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FullReval(context.Background(), eng, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Estimates[0].VaR
	if v <= 0 {
		t.Fatalf("VaR(95%%) = %v, want positive for a long call book under spot risk", v)
	}

	// Independent sample, independent seed.
	scens2, err := m.Generate(n, 2002)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := FullReval(context.Background(), eng, pf, scens2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := 0
	for _, pnl := range rep2.PnLs {
		if pnl < -v {
			x++
		}
	}
	p := 1 - cfg.Alphas[0]
	lr := kupiecLR(n, x, p)
	if lr > 6.635 { // χ²(1) at 99%
		t.Fatalf("Kupiec LR = %v with %d/%d exceedances at p=%v, rejects coverage", lr, x, n, p)
	}
}

// kupiecLR is the proportion-of-failures likelihood ratio statistic.
func kupiecLR(n, x int, p float64) float64 {
	if x == 0 {
		return -2 * float64(n) * math.Log(1-p)
	}
	phat := float64(x) / float64(n)
	return -2 * (float64(n-x)*math.Log((1-p)/(1-phat)) + float64(x)*math.Log(p/phat))
}

// TestDeltaGammaMatchesFullOnSmallShocks: for small joint moves the
// Taylor expansion must agree with full revaluation scenario by
// scenario — this pins the coordinate conventions (relative spot,
// relative vol, absolute rate) between the two estimators.
func TestDeltaGammaMatchesFullOnSmallShocks(t *testing.T) {
	pf := smallBook()
	eng := risk.Engine{Workers: 4}
	scens := []risk.Scenario{
		{Name: "s-up", Shifts: []risk.Shift{{Param: "S0", Rel: 0.002}}},
		{Name: "s-dn", Shifts: []risk.Shift{{Param: "S0", Rel: -0.002}}},
		{Name: "v-up", Shifts: []risk.Shift{{Param: risk.VolToken, Rel: 0.005}}},
		{Name: "r-dn", Shifts: []risk.Shift{{Param: risk.RateToken, Abs: -0.0002}}},
		{Name: "joint", Shifts: []risk.Shift{
			{Param: "S0", Rel: -0.003}, {Param: risk.VolToken, Rel: 0.004}, {Param: risk.RateToken, Abs: 0.0001},
		}},
	}
	cfg := Config{Alphas: []float64{0.8}}
	full, err := FullReval(context.Background(), eng, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := CollectSensitivities(context.Background(), eng, pf)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-form BS ships its delta over the wire; the spot term should
	// be analytic for the whole book.
	if sens.BaseValue != full.BaseValue {
		t.Errorf("base value %v vs %v", sens.BaseValue, full.BaseValue)
	}
	dg, err := DeltaGamma(sens, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dg.WireDeltas != pf.Size() {
		t.Errorf("wire deltas = %d, want %d (CF_Call reports delta)", dg.WireDeltas, pf.Size())
	}
	for i := range scens {
		f, d := full.PnLs[i], dg.PnLs[i]
		tol := 0.02*math.Abs(f) + 0.01
		if math.Abs(f-d) > tol {
			t.Errorf("scenario %q: full P&L %v vs delta-gamma %v", scens[i].Name, f, d)
		}
	}
}

func TestDeltaGammaRejectsUnprojectableScenario(t *testing.T) {
	sens, err := CollectSensitivities(context.Background(), risk.Engine{Workers: 2}, smallBook())
	if err != nil {
		t.Fatal(err)
	}
	_, err = DeltaGamma(sens, []risk.Scenario{{Name: "k", Shifts: []risk.Shift{{Param: "K", Rel: 0.1}}}}, Config{})
	if err == nil {
		t.Fatal("strike shock evaluated by Taylor expansion")
	}
}

// TestFullRevalBitIdenticalAcrossKernelThreads is the estimator half of
// the determinism contract: a Monte Carlo book prices bit-identically
// at any multicore kernel thread count, so the VaR does too.
func TestFullRevalBitIdenticalAcrossKernelThreads(t *testing.T) {
	pf := &portfolio.Portfolio{Name: "mc"}
	for i, k := range []float64{90, 100, 110} {
		pf.Items = append(pf.Items, portfolio.Item{
			Name: "mc-" + string(rune('a'+i)), Problem: mcProblem(k, 4000), Cost: 0.01,
		})
	}
	scens, err := DefaultMarket().Generate(16, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alphas: []float64{0.9}, HorizonDays: 10}
	var want *Report
	for _, threads := range []int{1, 2, 4} {
		eng := risk.Engine{Workers: 2, KernelThreads: threads}
		rep, err := FullReval(context.Background(), eng, pf, scens, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep
			continue
		}
		for i := range want.PnLs {
			if rep.PnLs[i] != want.PnLs[i] {
				t.Fatalf("kernel threads %d: P&L[%d] = %.17g, want %.17g", threads, i, rep.PnLs[i], want.PnLs[i])
			}
		}
		if rep.Estimates[0].VaR != want.Estimates[0].VaR || rep.Estimates[0].CVaR != want.Estimates[0].CVaR {
			t.Fatalf("kernel threads %d: estimates differ", threads)
		}
	}
}

// TestComponentsSumToCVaR: Euler attribution over the same tail set as
// ExpectedShortfall means the per-claim contributions over ALL claims
// sum to the book CVaR at the attribution level, for both estimators.
func TestComponentsSumToCVaR(t *testing.T) {
	pf := smallBook()
	eng := risk.Engine{Workers: 4}
	scens, err := DefaultMarket().Generate(400, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alphas: []float64{0.95}, HorizonDays: 10, TopComponents: 100}
	full, err := FullReval(context.Background(), eng, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := CollectSensitivities(context.Background(), eng, pf)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := DeltaGamma(sens, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Report{full, dg} {
		cvar := rep.Estimates[0].CVaR
		if diff := math.Abs(rep.ComponentTotal - cvar); diff > 1e-9*(1+math.Abs(cvar)) {
			t.Errorf("%s: component total %v vs CVaR %v", rep.Method, rep.ComponentTotal, cvar)
		}
		if len(rep.Components) != pf.Size() {
			t.Errorf("%s: %d component rows, want %d", rep.Method, len(rep.Components), pf.Size())
		}
		sum := 0.0
		for _, c := range rep.Components {
			sum += c.Contribution
		}
		if diff := math.Abs(sum - rep.ComponentTotal); diff > 1e-9*(1+math.Abs(sum)) {
			t.Errorf("%s: kept rows sum %v vs total %v with all rows kept", rep.Method, sum, rep.ComponentTotal)
		}
	}
}

// TestHorizonScaling: ScaleDays applies the square-root-of-time rule to
// the estimates (and components) but leaves the raw P&L sample alone.
func TestHorizonScaling(t *testing.T) {
	sens, err := CollectSensitivities(context.Background(), risk.Engine{Workers: 2}, smallBook())
	if err != nil {
		t.Fatal(err)
	}
	scens, err := DefaultMarket().Generate(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := DeltaGamma(sens, scens, Config{Alphas: []float64{0.95}, HorizonDays: 10})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := DeltaGamma(sens, scens, Config{Alphas: []float64{0.95}, HorizonDays: 10, ScaleDays: 20})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Estimates[0].VaR * math.Sqrt(2)
	if diff := math.Abs(scaled.Estimates[0].VaR - want); diff > 1e-12*(1+want) {
		t.Errorf("scaled VaR %v, want %v", scaled.Estimates[0].VaR, want)
	}
	for i := range base.PnLs {
		if base.PnLs[i] != scaled.PnLs[i] {
			t.Fatal("scaling touched the raw P&L sample")
		}
	}
}

// TestConfigValidate: user-supplied confidence levels surface as errors
// from both estimators — before any repricing — instead of risk.VaR
// panics, and a ScaleDays rescaling without a horizon is rejected
// rather than silently ignored.
func TestConfigValidate(t *testing.T) {
	pf := smallBook()
	eng := risk.Engine{Workers: 2}
	sens, err := CollectSensitivities(context.Background(), eng, pf)
	if err != nil {
		t.Fatal(err)
	}
	scens := []risk.Scenario{{Name: "s", Shifts: []risk.Shift{{Param: "S0", Rel: -0.01}}}}
	for _, alphas := range [][]float64{{1.5}, {1}, {0}, {-1}, {0.95, 1}, {math.NaN()}} {
		if _, err := DeltaGamma(sens, scens, Config{Alphas: alphas}); err == nil {
			t.Errorf("delta-gamma accepted alphas %v", alphas)
		}
		if _, err := FullReval(context.Background(), eng, pf, scens, Config{Alphas: alphas}); err == nil {
			t.Errorf("full revaluation accepted alphas %v", alphas)
		}
	}
	if _, err := DeltaGamma(sens, scens, Config{ScaleDays: 10}); err == nil {
		t.Error("ScaleDays without HorizonDays accepted")
	}
	if err := (Config{Alphas: []float64{0.95}, HorizonDays: 10, ScaleDays: 20}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestProfitTailClampsAttribution: when every scenario is a gain the
// estimators clamp VaR/CVaR to zero; attribution mirrors that clamp —
// no components, zero total — instead of reporting a negative
// ComponentTotal that the clamped CVaR no longer matches.
func TestProfitTailClampsAttribution(t *testing.T) {
	sens, err := CollectSensitivities(context.Background(), risk.Engine{Workers: 2}, smallBook())
	if err != nil {
		t.Fatal(err)
	}
	// A long call book gains on every up-move, so the whole P&L sample —
	// the CVaR tail included — is profit.
	scens := []risk.Scenario{
		{Name: "up1", Shifts: []risk.Shift{{Param: "S0", Rel: 0.01}}},
		{Name: "up2", Shifts: []risk.Shift{{Param: "S0", Rel: 0.02}}},
		{Name: "up5", Shifts: []risk.Shift{{Param: "S0", Rel: 0.05}}},
	}
	rep, err := DeltaGamma(sens, scens, Config{Alphas: []float64{0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Estimates[0].CVaR != 0 {
		t.Fatalf("CVaR = %v, want 0 on an all-profit sample", rep.Estimates[0].CVaR)
	}
	if rep.ComponentTotal != 0 || len(rep.Components) != 0 {
		t.Errorf("attribution total %v over %d rows, want zero/none like the clamped CVaR",
			rep.ComponentTotal, len(rep.Components))
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name || p.FullScenarios < 1 || p.DeltaGammaScenarios < p.FullScenarios {
			t.Errorf("preset %q ill-formed: %+v", name, p)
		}
		cfg := p.Config().withDefaults()
		if len(cfg.Alphas) == 0 {
			t.Errorf("preset %q has no alphas", name)
		}
	}
	if _, err := PresetByName("xxl"); err == nil {
		t.Error("unknown preset accepted")
	}
}
