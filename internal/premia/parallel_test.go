package premia

import (
	"fmt"
	"testing"

	"riskbench/internal/telemetry"
)

// kernelProblems enumerates one modest-sized problem per method that runs
// on the multicore pricing kernel, for the thread-invariance suite.
func kernelProblems() map[string]*Problem {
	return map[string]*Problem{
		"MC_Euro": bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
			Set("paths", 20000),
		"MC_Euro_antithetic": bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
			Set("paths", 20000).Set("antithetic", 1),
		"MC_Euro_barrier": barrierProblem(MethodMCEuro, 100, 1, 90).
			Set("paths", 5000).Set("mcsteps", 16),
		"MC_Basket": basketProblem(4).Set("paths", 10000),
		"QMC_Basket": basketProblem(4).SetMethod(MethodQMCBasket).
			Set("paths", 8192).Set("rotations", 8),
		"MC_LocalVol": New().SetModel(ModelLocVol).SetOption(OptCallEuro).
			SetMethod(MethodMCLocalVol).
			Set("S0", 100).Set("r", 0.05).Set("sigma0", 0.25).Set("skew", -0.2).
			Set("K", 100).Set("T", 1).
			Set("paths", 5000).Set("mcsteps", 16),
		"MC_Heston": hestonProblem(OptCallEuro, MethodMCHeston).
			Set("paths", 5000).Set("mcsteps", 16),
		"LSM": bsProblem(OptPutAmer, MethodMCAmerLSM, 100, 1).
			Set("paths", 5000).Set("exdates", 20),
		"LSM_Alfonsi": hestonProblem(OptPutAmer, MethodMCAmerAlfonsi).
			Set("paths", 4000).Set("exdates", 20),
	}
}

// TestKernelBitIdenticalAcrossThreads is the kernel's determinism
// contract: the shard decomposition depends only on (seed, paths), so a
// serial run and an 8-thread run must agree bit for bit — price,
// confidence interval and delta. Run under -race via `make check`, this
// also exercises the pool for data races.
func TestKernelBitIdenticalAcrossThreads(t *testing.T) {
	for name, base := range kernelProblems() {
		base := base
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial, err := base.Clone().Set("threads", 1).Compute()
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := base.Clone().Set("threads", 8).Compute()
			if err != nil {
				t.Fatal(err)
			}
			if serial.Price != parallel.Price || serial.PriceCI != parallel.PriceCI || serial.Delta != parallel.Delta {
				t.Errorf("threads=1 %v ± %v (delta %v) != threads=8 %v ± %v (delta %v)",
					serial.Price, serial.PriceCI, serial.Delta,
					parallel.Price, parallel.PriceCI, parallel.Delta)
			}
			// No "threads" parameter means the process default (serial
			// here), which must sit on the same decomposition.
			def, err := base.Clone().Compute()
			if err != nil {
				t.Fatal(err)
			}
			if def.Price != serial.Price {
				t.Errorf("default threads price %v != threads=1 price %v", def.Price, serial.Price)
			}
		})
	}
}

// TestKernelProcessDefaultThreads checks the SetKernelThreads plumbing:
// the process default applies when a problem has no "threads" parameter,
// changes nothing about the numbers, and loses to an explicit parameter.
func TestKernelProcessDefaultThreads(t *testing.T) {
	base := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 20000)
	serial, err := base.Clone().Compute()
	if err != nil {
		t.Fatal(err)
	}
	SetKernelThreads(4)
	defer SetKernelThreads(0)
	pooled, err := base.Clone().Compute()
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Price != serial.Price || pooled.PriceCI != serial.PriceCI {
		t.Errorf("process default 4 threads changed the estimate: %v ± %v vs %v ± %v",
			pooled.Price, pooled.PriceCI, serial.Price, serial.PriceCI)
	}
	explicit, err := base.Clone().Set("threads", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Price != serial.Price {
		t.Errorf("explicit threads=1 under process default 4: %v vs %v", explicit.Price, serial.Price)
	}
}

func TestKernelRejectsBadThreads(t *testing.T) {
	if _, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
		Set("paths", 1000).Set("threads", -1).Compute(); err == nil {
		t.Fatal("negative threads accepted")
	}
	if _, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
		Set("paths", 1000).Set("threads", 0).Compute(); err == nil {
		t.Fatal("zero threads accepted")
	}
}

// TestKernelTelemetry checks the per-shard histogram and the
// parallel-efficiency gauge reach the package sink.
func TestKernelTelemetry(t *testing.T) {
	reg := telemetry.New()
	SetTelemetry(reg)
	defer SetTelemetry(nil)
	if _, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
		Set("paths", 20000).Set("threads", 4).Compute(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["premia.kernel.runs"] == 0 {
		t.Error("kernel run not counted")
	}
	hist, ok := snap.Histograms["premia.kernel.shard_seconds"]
	if !ok || hist.Count == 0 {
		t.Error("no per-shard compute histogram recorded")
	}
	eff, ok := snap.Gauges["premia.kernel.efficiency"]
	if !ok {
		t.Error("no parallel-efficiency gauge recorded")
	} else if eff < 0 {
		t.Errorf("negative efficiency %v", eff)
	}
}

// benchKernel prices p repeatedly, reporting paths/op via b.N.
func benchKernel(b *testing.B, p *Problem) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := p.Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelMCEuro compares serial vs sharded throughput of the
// scalar European MC pricer (`make bench` runs these with -benchtime=1x
// as a smoke test; run with the default benchtime to measure speedup).
func BenchmarkKernelMCEuro(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchKernel(b, bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
				Set("paths", 2000000).Set("threads", float64(threads)))
		})
	}
}

// BenchmarkKernelMCBasket is the paper's 40-dimensional basket put
// workload on the kernel.
func BenchmarkKernelMCBasket(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchKernel(b, basketProblem(40).
				Set("paths", 50000).Set("threads", float64(threads)))
		})
	}
}

// BenchmarkKernelMCHeston covers a path-dependent (stepped) scheme.
func BenchmarkKernelMCHeston(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchKernel(b, hestonProblem(OptCallEuro, MethodMCHeston).
				Set("paths", 100000).Set("mcsteps", 64).Set("threads", float64(threads)))
		})
	}
}
