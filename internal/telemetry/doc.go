// Package telemetry is a zero-dependency metrics and tracing layer for
// the benchmark's hot paths: atomic counters and gauges, lock-free
// log-bucketed histograms with quantile estimation, and lightweight
// spans with parent/child links.
//
// Everything hangs off a *Registry. A nil *Registry is a valid no-op
// sink, so instrumented code can hold one unconditionally:
//
//	reg.Counter("farm.tasks").Add(1)   // safe even when reg == nil
//
// Registries default to a wall clock but accept any monotone
// seconds-valued clock via SetClock, which is how the discrete-event
// cluster simulator records virtual durations instead of wall time.
//
// Snapshot freezes every metric into a plain, JSON-serializable value;
// Handler exposes that snapshot over HTTP in the style of expvar.
package telemetry
