package mpi

import (
	"fmt"

	"riskbench/internal/nsp"
)

// Buf is a packing buffer, the analogue of the mpibuf object created at
// Nsp level and handed to MPI_Recv. Its contents are a serialized nsp
// object stream.
type Buf struct {
	// Data holds the packed bytes.
	Data []byte
}

// NewBuf returns a receive buffer of the given capacity, like
// mpibuf_create(elems).
func NewBuf(n int) *Buf { return &Buf{Data: make([]byte, n)} }

// Pack serializes an object into a packing buffer (MPI_Pack).
func Pack(o nsp.Object) (*Buf, error) {
	s, err := nsp.Serialize(o)
	if err != nil {
		return nil, fmt.Errorf("mpi: pack: %w", err)
	}
	return &Buf{Data: s.Data}, nil
}

// Unpack decodes the buffer back into an object (MPI_Unpack).
func (b *Buf) Unpack() (nsp.Object, error) {
	o, err := nsp.SLoadBytes(b.Data).Unserialize()
	if err != nil {
		return nil, fmt.Errorf("mpi: unpack: %w", err)
	}
	return o, nil
}

// ObjRefComm is implemented by communicators whose ranks share one
// address space (LocalComm) and can therefore pass nsp objects by
// reference, skipping the serialize/deserialize round trip entirely.
// SendObj and RecvObj use the fast path transparently when the
// communicator offers it.
//
// Reference passing keeps the ownership contract of a real wire send:
// the sender must not mutate the object after SendObjRef returns, and
// the receiver owns what RecvObjRef hands back. By-reference messages
// never touch the byte layer, so they are invisible to the
// mpi.bytes_*/mpi.msgs_* counters.
type ObjRefComm interface {
	Comm
	// SendObjRef delivers o to dest by reference.
	SendObjRef(o nsp.Object, dest, tag int) error
	// RecvObjRef receives the next matching message, whether it was sent
	// by reference (returned as-is, Serials unsealed) or as bytes
	// (decoded like RecvObj).
	RecvObjRef(source, tag int) (nsp.Object, Status, error)
}

// SendObj transmits any nsp object by transparent serialization, the
// MPI_Send_Obj primitive. Sending a *nsp.Serial ships its bytes without a
// second encoding pass, which is what makes the serialized-load strategy
// cheap on the master. On an ObjRefComm the object travels by reference
// and is never serialized at all.
func SendObj(c Comm, o nsp.Object, dest, tag int) error {
	if rc, ok := c.(ObjRefComm); ok {
		return rc.SendObjRef(o, dest, tag)
	}
	reg := sink.Load()
	if s, ok := o.(*nsp.Serial); ok && !s.Compressed {
		// The serial already holds a full stream: ship it as-is.
		countMsg(reg, c.Rank(), "sent", len(s.Data))
		return c.Send(s.Data, dest, tag)
	}
	start := reg.Now()
	s, err := nsp.Serialize(o)
	if err != nil {
		return fmt.Errorf("mpi: send obj: %w", err)
	}
	if reg != nil {
		reg.Observe("mpi.pack_seconds", reg.Now()-start)
		countMsg(reg, c.Rank(), "sent", len(s.Data))
	}
	return c.Send(s.Data, dest, tag)
}

// decodeObjStream decodes a serialized stream and unseals one top-level
// Serial, the receive-side convention shared by RecvObj and the byte
// fallback of RecvObjRef implementations.
func decodeObjStream(data []byte) (nsp.Object, error) {
	o, err := nsp.SLoadBytes(data).Unserialize()
	if err != nil {
		return nil, fmt.Errorf("mpi: recv obj: %w", err)
	}
	if s, ok := o.(*nsp.Serial); ok {
		inner, err := s.Unserialize()
		if err != nil {
			return nil, fmt.Errorf("mpi: recv obj unseal: %w", err)
		}
		o = inner
	}
	return o, nil
}

// RecvObj receives an object sent by SendObj (MPI_Recv_Obj). As in Nsp,
// if the transmitted object is itself a Serial (compressed or not), it is
// unsealed once so the caller gets the wrapped value directly. On an
// ObjRefComm, by-reference messages come back without a decode pass.
func RecvObj(c Comm, source, tag int) (nsp.Object, Status, error) {
	if rc, ok := c.(ObjRefComm); ok {
		return rc.RecvObjRef(source, tag)
	}
	data, st, err := c.Recv(source, tag)
	if err != nil {
		return nil, st, err
	}
	reg := sink.Load()
	countMsg(reg, c.Rank(), "recv", len(data))
	start := reg.Now()
	o, err := decodeObjStream(data)
	if err != nil {
		return nil, st, err
	}
	if reg != nil {
		reg.Observe("mpi.unpack_seconds", reg.Now()-start)
	}
	return o, st, nil
}
