package mpi

import (
	"errors"
	"io"
	"strconv"
	"sync/atomic"

	"riskbench/internal/telemetry"
)

// sink is the package-level telemetry registry. SendObj and RecvObj are
// free functions mirroring the MPI_Send_Obj/MPI_Recv_Obj primitives and
// take no registry parameter, so instrumentation is wired through this
// process-wide sink; nil (the default) disables it.
var sink atomic.Pointer[telemetry.Registry]

// SetTelemetry installs the registry receiving message-layer metrics:
// "mpi.msgs_sent"/"mpi.bytes_sent"/"mpi.msgs_recv"/"mpi.bytes_recv"
// counters (aggregate and per local rank as "mpi.rank<N>.*") and
// "mpi.pack_seconds"/"mpi.unpack_seconds" serialization histograms. Pass
// nil to disable. Typically wired through the riskbench façade's
// SetTelemetry.
func SetTelemetry(r *telemetry.Registry) {
	sink.Store(r)
}

// emitPeerEvent files the loss of a peer connection into the flight
// recorder, graded by how it died: a clean EOF is an orderly disconnect
// (info), a protocol violation is an error, anything else — resets,
// timeouts, half-closed sockets — is a warning. Callers suppress the
// events caused by their own Close.
func emitPeerEvent(rank int, err error) {
	reg := sink.Load()
	if reg == nil {
		return
	}
	name, level := "mpi.peer.drop", telemetry.LevelWarn
	switch {
	case errors.Is(err, ErrProtocol):
		name, level = "mpi.peer.protocol_error", telemetry.LevelError
	case errors.Is(err, io.EOF):
		name, level = "mpi.peer.disconnect", telemetry.LevelInfo
	}
	reg.Emit(level, name, telemetry.TraceContext{},
		telemetry.Num("rank", float64(rank)), telemetry.Str("err", err.Error()))
}

// countMsg records one object-level message of n bytes in direction dir
// ("sent" or "recv") at the given local rank.
func countMsg(reg *telemetry.Registry, rank int, dir string, n int) {
	if reg == nil {
		return
	}
	reg.Counter("mpi.msgs_" + dir).Add(1)
	reg.Counter("mpi.bytes_" + dir).Add(int64(n))
	pre := "mpi.rank" + strconv.Itoa(rank) + "."
	reg.Counter(pre + "msgs_" + dir).Add(1)
	reg.Counter(pre + "bytes_" + dir).Add(int64(n))
}
