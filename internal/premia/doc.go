// Package premia is a from-scratch Go reimplementation of the slice of the
// Premia financial library exercised by the Premia/Nsp/MPI benchmark: the
// pricing and hedging of equity derivatives under several models with
// several numerical methods.
//
// A pricing problem is the triple (model, option, method) plus a flat
// parameter set, exactly as in Premia where one writes
//
//	P = premia_create()
//	P.set_model[str="BlackScholes1dim"]
//	P.set_option[str="CallEuro"]
//	P.set_method[str="CF_Call"]
//	P.compute[]
//
// Models: one-dimensional Black–Scholes, multi-dimensional Black–Scholes
// with single-factor correlation, a parametric local-volatility model and
// the Heston stochastic-volatility model.
//
// Options: European calls and puts, down-and-out barrier calls, American
// puts, European basket puts and American basket puts.
//
// Methods: closed formulas (Black–Scholes, Reiner–Rubinstein barrier,
// semi-analytic Heston by Fourier inversion), Cox–Ross–Rubinstein trees,
// Crank–Nicolson finite differences (with Brennan–Schwartz and PSOR
// treatments of the American obstacle), Monte Carlo (exact Black–Scholes
// sampling, Euler for local volatility, Alfonsi's drift-implicit
// square-root scheme for Heston) and Longstaff–Schwartz American Monte
// Carlo.
//
// Problems serialize to the nsp object model and to an XDR byte format, so
// they can be saved to architecture-independent files, reloaded, and
// shipped to remote workers by the farm package using any of the paper's
// three communication strategies.
package premia
