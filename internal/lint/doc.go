// Package lint is the project's static analysis suite: a set of
// analyzers that machine-check the invariants the benchmark's
// verifiability story rests on, built entirely on the standard
// library's go/ast, go/parser and go/types (no third-party analysis
// framework).
//
// The repo's correctness claims — bit-identical prices at any thread
// count, virtual-clock telemetry that simulates a 512-core cluster on a
// laptop, traces that survive process hops, a wire format that never
// changes shape without a version bump — are structural properties of
// the source, not runtime behaviors a unit test can pin. Each analyzer
// here turns one of those hand-enforced review rules into a positioned
// compile-time diagnostic:
//
//	detrand      pricing/kernel code must draw randomness from the
//	             split mathutil streams, never global math/rand
//	maporder     no float/string reduction or wire-bound append may
//	             depend on map iteration order
//	wallclock    telemetry, farm, mpi, serve and portfolio production
//	             code read time only through the telemetry clock
//	ctxflow      exported blocking/goroutine-spawning functions in
//	             farm, risk and serve accept and propagate a Context
//	wireshape    wire-contract struct shapes are pinned by golden
//	             hashes in wireshape.lock; changing one without a
//	             protocol version bump fails the build
//	metricnames  metric and span name literals follow the dotted
//	             pkg.noun.verb grammar the Prometheus rank-folding
//	             exporter parses
//
// Deliberate exceptions are annotated in the source, never silently
// skipped:
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above suppresses that analyzer's
// diagnostics there. Directives are themselves checked: an unknown
// analyzer name, a missing reason, or a directive that suppresses
// nothing is an error, so stale exemptions cannot accrete.
//
// cmd/riskvet is the command-line driver; `make lint` runs it over the
// whole module and is part of `make check`.
package lint
