// Package detrandtest seeds one violation per detrand sub-rule and one
// checked exemption, for the golden-file harness.
package detrandtest

import (
	"math/rand" // want `import of math/rand`
	"time"

	//lint:allow detrand fixture: deliberate, documented exemption
	crand "crypto/rand"
)

// globalDraw uses the global math/rand stream (the import itself is the
// diagnostic; prices drawn this way cannot reproduce across processes).
func globalDraw() float64 { return rand.Float64() }

// entropyDraw is covered by the allow directive on the import above.
func entropyDraw() byte {
	var b [1]byte
	crand.Read(b[:])
	return b[0]
}

// clockSeed seeds a source from the wall clock, defeating the
// portfolio seed even though the source itself is deterministic.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `clock-derived seed`
}
