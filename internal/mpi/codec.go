package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
)

// maxFrame bounds a frame payload (64 MiB), protecting against corrupt
// length headers. An oversized length is an ErrProtocol: the stream can
// no longer be trusted to be frame-aligned and the connection must be
// closed.
const maxFrame = 64 << 20

// maxRetainedBuf caps how much scratch memory a codec keeps between
// frames; a single outsized frame gets a one-shot buffer instead of
// pinning it forever.
const maxRetainedBuf = 1 << 20

// frameCodec encodes and decodes wire frames for one negotiated
// protocol version. The v1 and v2 frame layouts are identical —
// dest(int32) src(int32) tag(int32) len(uint32) payload — but the codec
// owns the version explicitly so a future layout change is a new codec,
// not a silent drift, and so the receive path can reuse one scratch
// buffer per connection instead of allocating per frame.
//
// A codec is owned by a single goroutine (or externally serialized, as
// the write side of a conn is by its mutex); it is not safe for
// unsynchronized concurrent use.
type frameCodec struct {
	ver     int
	scratch []byte
	// hdr is the header staging area. Living on the long-lived codec
	// rather than the stack keeps it from escaping per call through the
	// io.Reader/io.Writer interface, making both paths allocation-free.
	hdr [16]byte
}

func newFrameCodec(ver int) *frameCodec { return &frameCodec{ver: ver} }

// readFrame reads one frame. The returned payload aliases the codec's
// scratch buffer and is valid only until the next readFrame call;
// retain() it before handing it to anything that outlives the loop
// iteration.
func (fc *frameCodec) readFrame(r io.Reader) (dest, src, tag int, payload []byte, err error) {
	if _, err = io.ReadFull(r, fc.hdr[:]); err != nil {
		return
	}
	dest = int(int32(binary.BigEndian.Uint32(fc.hdr[0:])))
	src = int(int32(binary.BigEndian.Uint32(fc.hdr[4:])))
	tag = int(int32(binary.BigEndian.Uint32(fc.hdr[8:])))
	n := binary.BigEndian.Uint32(fc.hdr[12:])
	if n > maxFrame {
		err = fmt.Errorf("%w: frame of %d bytes exceeds %d-byte limit", ErrProtocol, n, maxFrame)
		return
	}
	if int(n) <= cap(fc.scratch) {
		payload = fc.scratch[:n]
	} else {
		payload = make([]byte, n)
		if n <= maxRetainedBuf {
			fc.scratch = payload
		}
	}
	_, err = io.ReadFull(r, payload)
	return
}

// retain copies a payload out of the scratch buffer, for frames whose
// bytes escape the read loop (mailbox deliveries). Frames that are
// forwarded or decoded in place skip the copy — that is the pooling
// win.
func (fc *frameCodec) retain(payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// writeFrame encodes one frame. It allocates nothing; the header is
// staged in the codec and the payload is written through.
func (fc *frameCodec) writeFrame(w io.Writer, dest, src, tag int, payload []byte) error {
	binary.BigEndian.PutUint32(fc.hdr[0:], uint32(int32(dest)))
	binary.BigEndian.PutUint32(fc.hdr[4:], uint32(int32(src)))
	binary.BigEndian.PutUint32(fc.hdr[8:], uint32(int32(tag)))
	binary.BigEndian.PutUint32(fc.hdr[12:], uint32(len(payload)))
	if _, err := w.Write(fc.hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrame is the stateless form used where no codec exists yet (the
// pre-negotiation handshake).
func writeFrame(w io.Writer, dest, src, tag int, payload []byte) error {
	return (&frameCodec{ver: ProtoV1}).writeFrame(w, dest, src, tag, payload)
}
