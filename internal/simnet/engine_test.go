package simnet

import (
	"math"
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at []float64
	e.Go("p", func(p *Proc) {
		p.Sleep(1.5)
		at = append(at, p.Now())
		p.Sleep(0.5)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 1.5 || at[1] != 2.0 {
		t.Fatalf("timestamps %v", at)
	}
	if e.Now() != 2.0 {
		t.Fatalf("final clock %v", e.Now())
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-3)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || e.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, e.Now())
	}
}

func TestParallelProcsOverlap(t *testing.T) {
	// Two processes sleeping 10s each in parallel: makespan 10, not 20.
	e := NewEngine()
	for i := 0; i < 2; i++ {
		e.Go("worker", func(p *Proc) { p.Sleep(10) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Fatalf("makespan %v, want 10", e.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			e.Go(name, func(p *Proc) {
				p.Sleep(1)
				order = append(order, name)
				p.Sleep(1)
				order = append(order, name)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("length changed")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("nondeterministic interleaving: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) {
		p.block("waiting forever")
	})
	err := e.Run()
	dl, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("blocked list %v", dl.Blocked)
	}
}

func TestSleepUntil(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.SleepUntil(5)
		p.SleepUntil(3) // already past: no-op
		if p.Now() != 5 {
			t.Errorf("now = %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceFIFOQueue(t *testing.T) {
	// Three processes requesting a 1-second service at t=0 finish at 1, 2,
	// 3 seconds: the resource serialises them.
	e := NewEngine()
	var r Resource
	var finish []float64
	for i := 0; i < 3; i++ {
		e.Go("client", func(p *Proc) {
			r.Use(p, 1)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(finish[i]-want[i]) > 1e-12 {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceIdleThenBusy(t *testing.T) {
	e := NewEngine()
	var r Resource
	var second float64
	e.Go("a", func(p *Proc) {
		r.Use(p, 2) // occupies [0,2)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(5) // arrives when the resource is idle again
		r.Use(p, 1)
		second = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 6 {
		t.Fatalf("second finish %v, want 6 (no spurious queueing)", second)
	}
}
