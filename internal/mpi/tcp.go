package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpMagic opens every handshake so stray connections are rejected early.
const tcpMagic = "RBMPI1"

// maxFrame bounds a frame payload (64 MiB), protecting against corrupt
// length headers.
const maxFrame = 64 << 20

// frame layout: dest(int32) src(int32) tag(int32) len(uint32) payload.
func writeFrame(w io.Writer, dest, src, tag int, payload []byte) error {
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(int32(dest)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(src)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(int32(tag)))
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (dest, src, tag int, payload []byte, err error) {
	var hdr [16]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	dest = int(int32(binary.BigEndian.Uint32(hdr[0:])))
	src = int(int32(binary.BigEndian.Uint32(hdr[4:])))
	tag = int(int32(binary.BigEndian.Uint32(hdr[8:])))
	n := binary.BigEndian.Uint32(hdr[12:])
	if n > maxFrame {
		err = fmt.Errorf("mpi: frame of %d bytes exceeds limit", n)
		return
	}
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return
}

// conn wraps a TCP connection with a write lock and buffered writer so
// multiple goroutines can send frames.
type conn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, w: bufio.NewWriter(c)}
}

func (cn *conn) send(dest, src, tag int, payload []byte) error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if err := writeFrame(cn.w, dest, src, tag, payload); err != nil {
		return err
	}
	return cn.w.Flush()
}

// HubComm is rank 0 of a TCP world: it listens, hands out ranks, routes
// worker-to-worker frames and delivers dest-0 frames to its own mailbox.
type HubComm struct {
	size    int
	mbox    *mailbox
	ln      net.Listener
	workers []*conn // index 1..size-1
	once    sync.Once
	wg      sync.WaitGroup
}

var _ Comm = (*HubComm)(nil)

// ListenHub binds the hub's listener on addr (which may use port 0) and
// returns immediately; call WaitWorkers to accept the workers. The
// two-phase split lets callers learn Addr before workers dial in.
func ListenHub(addr string, size int) (*HubComm, error) {
	if size < 2 {
		return nil, fmt.Errorf("mpi: hub world needs size >= 2, got %d", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: hub listen: %w", err)
	}
	return &HubComm{size: size, mbox: newMailbox(), ln: ln, workers: make([]*conn, size)}, nil
}

// WaitWorkers accepts exactly size-1 workers (assigning ranks 1..size-1
// in connection order) and starts the router. It must be called once,
// before any Send/Probe/Recv on the hub.
func (h *HubComm) WaitWorkers() error {
	for rank := 1; rank < h.size; rank++ {
		c, err := h.ln.Accept()
		if err != nil {
			h.Close()
			return fmt.Errorf("mpi: hub accept: %w", err)
		}
		if err := h.handshake(c, rank); err != nil {
			c.Close()
			h.Close()
			return err
		}
		h.workers[rank] = newConn(c)
	}
	for rank := 1; rank < h.size; rank++ {
		h.wg.Add(1)
		go h.route(rank)
	}
	return nil
}

// NewHub is the one-shot form: listen on addr and block until all size-1
// workers have joined.
func NewHub(addr string, size int) (*HubComm, error) {
	h, err := ListenHub(addr, size)
	if err != nil {
		return nil, err
	}
	if err := h.WaitWorkers(); err != nil {
		return nil, err
	}
	return h, nil
}

// Addr returns the address the hub is listening on, useful when addr was
// ":0".
func (h *HubComm) Addr() string { return h.ln.Addr().String() }

func (h *HubComm) handshake(c net.Conn, rank int) error {
	magic := make([]byte, len(tcpMagic))
	if _, err := io.ReadFull(c, magic); err != nil {
		return fmt.Errorf("mpi: hub handshake read: %w", err)
	}
	if string(magic) != tcpMagic {
		return fmt.Errorf("mpi: bad handshake magic %q", magic)
	}
	var reply [8]byte
	binary.BigEndian.PutUint32(reply[0:], uint32(rank))
	binary.BigEndian.PutUint32(reply[4:], uint32(h.size))
	if _, err := c.Write(reply[:]); err != nil {
		return fmt.Errorf("mpi: hub handshake write: %w", err)
	}
	return nil
}

// route reads frames from one worker and forwards them.
func (h *HubComm) route(rank int) {
	defer h.wg.Done()
	cn := h.workers[rank]
	r := bufio.NewReader(cn.c)
	for {
		dest, src, tag, payload, err := readFrame(r)
		if err != nil {
			// Worker gone: deliver nothing further from it. The hub keeps
			// serving the other ranks.
			return
		}
		if dest == 0 {
			h.mbox.put(message{source: src, tag: tag, data: payload})
			continue
		}
		if dest > 0 && dest < h.size {
			if w := h.workers[dest]; w != nil {
				_ = w.send(dest, src, tag, payload) // best effort, like the wire
			}
		}
	}
}

// Rank implements Comm.
func (h *HubComm) Rank() int { return 0 }

// Size implements Comm.
func (h *HubComm) Size() int { return h.size }

// Send implements Comm.
func (h *HubComm) Send(data []byte, dest, tag int) error {
	if dest <= 0 || dest >= h.size {
		return fmt.Errorf("mpi: hub send to invalid rank %d", dest)
	}
	return h.workers[dest].send(dest, 0, tag, data)
}

// Probe implements Comm.
func (h *HubComm) Probe(source, tag int) (Status, error) {
	return h.mbox.probe(source, tag)
}

// Recv implements Comm.
func (h *HubComm) Recv(source, tag int) ([]byte, Status, error) {
	m, err := h.mbox.recv(source, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Close implements Comm: it closes the listener and every worker
// connection, unblocking all pending operations everywhere.
func (h *HubComm) Close() error {
	h.once.Do(func() {
		h.ln.Close()
		for _, w := range h.workers {
			if w != nil {
				w.c.Close()
			}
		}
		h.mbox.close()
		h.wg.Wait()
	})
	return nil
}

// WorkerComm is a rank >= 1 endpoint connected to a hub.
type WorkerComm struct {
	rank int
	size int
	mbox *mailbox
	cn   *conn
	once sync.Once
}

var _ Comm = (*WorkerComm)(nil)

// DialHub connects to a hub, learns this process's rank and the world
// size from the handshake, and starts the receive loop.
func DialHub(addr string) (*WorkerComm, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: dial hub: %w", err)
	}
	if _, err := c.Write([]byte(tcpMagic)); err != nil {
		c.Close()
		return nil, fmt.Errorf("mpi: worker handshake: %w", err)
	}
	var reply [8]byte
	if _, err := io.ReadFull(c, reply[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("mpi: worker handshake read: %w", err)
	}
	w := &WorkerComm{
		rank: int(binary.BigEndian.Uint32(reply[0:])),
		size: int(binary.BigEndian.Uint32(reply[4:])),
		mbox: newMailbox(),
		cn:   newConn(c),
	}
	go w.recvLoop()
	return w, nil
}

func (w *WorkerComm) recvLoop() {
	r := bufio.NewReader(w.cn.c)
	for {
		_, src, tag, payload, err := readFrame(r)
		if err != nil {
			w.mbox.close()
			return
		}
		w.mbox.put(message{source: src, tag: tag, data: payload})
	}
}

// Rank implements Comm.
func (w *WorkerComm) Rank() int { return w.rank }

// Size implements Comm.
func (w *WorkerComm) Size() int { return w.size }

// Send implements Comm; frames to any destination travel via the hub.
func (w *WorkerComm) Send(data []byte, dest, tag int) error {
	if dest < 0 || dest >= w.size {
		return fmt.Errorf("mpi: worker send to invalid rank %d", dest)
	}
	return w.cn.send(dest, w.rank, tag, data)
}

// Probe implements Comm.
func (w *WorkerComm) Probe(source, tag int) (Status, error) {
	return w.mbox.probe(source, tag)
}

// Recv implements Comm.
func (w *WorkerComm) Recv(source, tag int) ([]byte, Status, error) {
	m, err := w.mbox.recv(source, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Close implements Comm.
func (w *WorkerComm) Close() error {
	w.once.Do(func() {
		w.cn.c.Close()
		w.mbox.close()
	})
	return nil
}
