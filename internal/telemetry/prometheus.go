package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition of a registry
// snapshot. Dotted metric names become underscore names; the per-rank
// name schemes ("mpi.rank<N>.*", "farm.worker.<N>.*") are folded into a
// bounded `rank` label so rank count does not multiply metric names;
// histograms export as summaries (p50/p95/p99 quantile lines plus _sum
// and _count); span aggregates export as *_spans_total and
// *_span_seconds_total counters. Output ordering is deterministic:
// families sort by name, series within a family by label set.

// promSample is one output line: an optional name suffix (the summary
// type's _sum/_count companions), a label set, a formatted value and an
// optional OpenMetrics exemplar suffix.
type promSample struct {
	suffix   string // "", "_sum" or "_count"
	labels   string // rendered label block, "" or `{rank="3"}`
	value    string
	exemplar string // rendered ` # {trace_id="..."} value ts`, or ""
}

// promFamily is one metric family: a TYPE line plus its samples.
type promFamily struct {
	typ     string // counter | gauge | summary
	samples []promSample
}

// promName converts a dotted metric name to a Prometheus metric name,
// extracting a rank label from the unbounded per-rank segments:
//
//	mpi.rank3.msgs_sent     -> mpi_msgs_sent{rank="3"}
//	farm.worker.7.busy_...  -> farm_worker_busy_...{rank="7"}
//
// The aggregate, rank-less series of the same family keeps the bare
// name, so both appear under one family.
func promName(name string) (out string, rank string) {
	segs := strings.Split(name, ".")
	kept := segs[:0]
	for i, seg := range segs {
		if rank == "" {
			if n, rest := strings.CutPrefix(seg, "rank"); rest && isDigits(n) && n != "" {
				rank = n
				continue
			}
			if i > 0 && segs[i-1] == "worker" && isDigits(seg) && seg != "" {
				rank = seg
				continue
			}
		}
		kept = append(kept, seg)
	}
	return sanitizeMetricName(strings.Join(kept, "_")), rank
}

func isDigits(s string) bool {
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// sanitizeMetricName maps arbitrary metric names onto the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelBlock renders an ordered label list into `{k="v",...}` ("" when
// empty).
func labelBlock(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sampleValue formats v for a sample line, guarding against values the
// exposition line grammar cannot carry cleanly: NaN samples are dropped
// (a NaN gauge poisons every aggregation over it) and ±Inf renders as
// the exposition tokens "+Inf"/"-Inf".
func sampleValue(v float64) (string, bool) {
	switch {
	case math.IsNaN(v):
		return "", false
	case math.IsInf(v, 1):
		return "+Inf", true
	case math.IsInf(v, -1):
		return "-Inf", true
	default:
		return formatFloat(v), true
	}
}

// renderExemplar formats the OpenMetrics exemplar suffix for quantile q
// (` # {trace_id="<hex>"} <value> <timestamp>`), or "" when the
// snapshot carries none for that quantile.
func renderExemplar(exs []QuantileExemplar, q float64) string {
	for _, e := range exs {
		if e.Quantile == q {
			return fmt.Sprintf(` # {trace_id="%s"} %s %s`, e.Trace, formatFloat(e.Value), formatFloat(e.When))
		}
	}
	return ""
}

// WritePrometheus renders a snapshot in the Prometheus text format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{typ: typ}
			fams[name] = f
		}
		return f
	}
	add := func(name, typ string, rankLabels []string, value string) {
		f := family(name, typ)
		f.samples = append(f.samples, promSample{labels: labelBlock(rankLabels...), value: value})
	}
	// suffixOrder keeps a summary family's lines in the canonical
	// quantiles → _sum → _count order.
	suffixOrder := map[string]int{"": 0, "_sum": 1, "_count": 2}
	rankKV := func(rank string) []string {
		if rank == "" {
			return nil
		}
		return []string{"rank", rank}
	}

	for name, v := range s.Counters {
		n, rank := promName(name)
		add(n, "counter", rankKV(rank), strconv.FormatInt(v, 10))
	}
	for name, v := range s.Gauges {
		if val, ok := sampleValue(v); ok {
			n, rank := promName(name)
			add(n, "gauge", rankKV(rank), val)
		}
	}
	for name, st := range s.Histograms {
		n, rank := promName(name)
		f := family(n, "summary")
		base := rankKV(rank)
		// A never-observed histogram has no quantiles; emitting p50=0
		// would invent an observation, so only _sum/_count appear.
		if st.Count > 0 {
			for _, q := range [...]struct {
				label string
				q     float64
				v     float64
			}{{"0.5", 0.50, st.P50}, {"0.95", 0.95, st.P95}, {"0.99", 0.99, st.P99}} {
				val, ok := sampleValue(q.v)
				if !ok {
					continue
				}
				kv := append(append([]string{}, base...), "quantile", q.label)
				f.samples = append(f.samples, promSample{
					labels:   labelBlock(kv...),
					value:    val,
					exemplar: renderExemplar(st.Exemplars, q.q),
				})
			}
		}
		sum, ok := sampleValue(st.Sum)
		if !ok {
			sum = "0"
		}
		f.samples = append(f.samples,
			promSample{suffix: "_sum", labels: labelBlock(base...), value: sum},
			promSample{suffix: "_count", labels: labelBlock(base...), value: strconv.FormatInt(st.Count, 10)})
	}
	for name, st := range s.Spans {
		n, rank := promName(name)
		add(n+"_spans_total", "counter", rankKV(rank), strconv.FormatInt(st.Count, 10))
		if val, ok := sampleValue(st.TotalSeconds); ok {
			add(n+"_span_seconds_total", "counter", rankKV(rank), val)
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.samples, func(a, b int) bool {
			sa, sb := f.samples[a], f.samples[b]
			if suffixOrder[sa.suffix] != suffixOrder[sb.suffix] {
				return suffixOrder[sa.suffix] < suffixOrder[sb.suffix]
			}
			return sa.labels < sb.labels
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, smp := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s%s\n", name, smp.suffix, smp.labels, smp.value, smp.exemplar); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusHandler serves the registry in the Prometheus text format —
// what /metrics exposes on the pricing service and both CLIs (the JSON
// snapshot moved to /metrics.json).
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Client aborts are the only failure mode; nothing to do about them.
		_ = WritePrometheus(w, r.Snapshot())
	})
}
