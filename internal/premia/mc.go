package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// Default Monte Carlo sizes. The paper uses 10⁶ samples for the realistic
// portfolio; unit tests override "paths" downward for speed.
const (
	mcDefaultPaths = 100000
	mcDefaultSteps = 64
	mcSeedKey      = "seed"
	mcSeedHiKey    = "seedhi"
	mcDefaultSeed  = 20090101
)

// mcSeed assembles the Monte Carlo seed. Params values are float64, which
// represents only 53-bit integers exactly, so full-width 64-bit seeds
// travel as two 32-bit halves — "seed" (low) and "seedhi" (high), written
// together by Problem.SetSeed. Problems carrying just "seed" keep their
// historical meaning.
func mcSeed(p *Problem) uint64 {
	lo := p.Params.Uint64(mcSeedKey, mcDefaultSeed)
	hi := p.Params.Uint64(mcSeedHiKey, 0)
	return hi<<32 | lo
}

// mcEuro implements MC_Euro: Monte Carlo under one-dimensional
// Black–Scholes with exact lognormal terminal sampling for vanilla
// payoffs, and a Brownian-bridge-corrected Euler path for the
// down-and-out barrier call. Paths run on the multicore pricing kernel
// (see parallel.go). Parameters: "paths", "threads",
// "mcsteps" (barrier only).
func mcEuro(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Euro needs paths >= 2, got %d", paths)
	}

	switch p.Option {
	case OptCallEuro, OptPutEuro:
		o, err := vanillaFrom(p)
		if err != nil {
			return Result{}, err
		}
		isCall := p.Option == OptCallEuro
		antithetic := p.Params.Get("antithetic", 0) != 0
		drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
		vol := m.Sigma * math.Sqrt(o.T)
		df := math.Exp(-m.R * o.T)
		eval := func(g float64) (pay, dpay float64) {
			st := m.S0 * math.Exp(drift+vol*g)
			if isCall {
				pay = payoffCall(st, o.K)
				if st > o.K {
					dpay = st / m.S0 // pathwise delta of a call
				}
			} else {
				pay = payoffPut(st, o.K)
				if st < o.K {
					dpay = -st / m.S0
				}
			}
			return pay, dpay
		}
		var accs []mathutil.Welford
		if antithetic {
			// Pair each draw with its mirror: the averaged pair is one
			// sample with strictly smaller variance for monotone payoffs.
			// The kernel shards over pairs, so each pair stays on one
			// stream.
			accs, err = runPathKernel(p, paths/2, 2, func(rng *mathutil.RNG, n int, accs []mathutil.Welford) {
				for i := 0; i < n; i++ {
					g := rng.Norm()
					p1, d1 := eval(g)
					p2, d2 := eval(-g)
					accs[0].Add(df * (p1 + p2) / 2)
					accs[1].Add(df * (d1 + d2) / 2)
				}
			})
		} else {
			accs, err = runPathKernel(p, paths, 2, func(rng *mathutil.RNG, n int, accs []mathutil.Welford) {
				for i := 0; i < n; i++ {
					pay, dpay := eval(rng.Norm())
					accs[0].Add(df * pay)
					accs[1].Add(df * dpay)
				}
			})
		}
		if err != nil {
			return Result{}, err
		}
		return Result{
			Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
			Delta: accs[1].Mean(), HasDelta: true,
			Work: float64(paths),
		}, nil

	case OptCallUpOut:
		return mcCallUpOut(p)

	case OptCallDownOut:
		o, err := barrierFrom(p)
		if err != nil {
			return Result{}, err
		}
		if m.S0 <= o.L {
			return Result{Price: o.Rebate * math.Exp(-m.R*o.T), HasDelta: false, Work: 1}, nil
		}
		steps := p.Params.Int("mcsteps", mcDefaultSteps)
		if steps < 1 {
			return Result{}, fmt.Errorf("premia: MC_Euro barrier needs mcsteps >= 1")
		}
		dt := o.T / float64(steps)
		drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * dt
		vol := m.Sigma * math.Sqrt(dt)
		df := math.Exp(-m.R * o.T)
		lnL := math.Log(o.L)
		sig2dt := m.Sigma * m.Sigma * dt
		accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford) {
			for i := 0; i < n; i++ {
				x := math.Log(m.S0)
				alive := true
				// Survival probability of the Brownian bridge between the
				// discrete monitoring dates removes the discretisation bias.
				survival := 1.0
				for k := 0; k < steps && alive; k++ {
					xNext := x + drift + vol*rng.Norm()
					if xNext <= lnL {
						alive = false
						break
					}
					// P(bridge from x to xNext dips below lnL).
					pHit := math.Exp(-2 * (x - lnL) * (xNext - lnL) / sig2dt)
					survival *= 1 - pHit
					x = xNext
				}
				pay := o.Rebate
				if alive {
					st := math.Exp(x)
					pay = survival*payoffCall(st, o.K) + (1-survival)*o.Rebate
				}
				accs[0].Add(df * pay)
			}
		})
		if err != nil {
			return Result{}, err
		}
		return Result{
			Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
			Work: float64(paths) * float64(steps),
		}, nil
	}
	return Result{}, fmt.Errorf("premia: MC_Euro does not price %q", p.Option)
}

// mcBasket implements MC_Basket: a European put on the equally-weighted
// average of dim correlated Black–Scholes assets, sampled exactly at
// maturity through the Cholesky factor of the correlation matrix. This is
// the paper's "40-dimensional basket put, 10⁶ samples" workload.
//
// Paths run on the multicore pricing kernel: the optional "threads"
// parameter sizes the goroutine pool, while the shard decomposition (and
// therefore the estimate) depends only on (seed, paths) — see
// parallel.go.
func mcBasket(p *Problem) (Result, error) {
	m, err := mbsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Basket needs paths >= 2, got %d", paths)
	}
	d := m.Dim
	chol := make([]float64, d*d)
	if err := mathutil.Cholesky(mathutil.CorrelationMatrix(d, m.Rho), d, chol); err != nil {
		return Result{}, fmt.Errorf("premia: basket correlation: %w", err)
	}
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
	vol := m.Sigma * math.Sqrt(o.T)
	df := math.Exp(-m.R * o.T)

	isCall := p.Option == OptCallBasketEuro
	accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford) {
		z := make([]float64, d)
		cz := make([]float64, d)
		st := make([]float64, d)
		for i := 0; i < n; i++ {
			rng.NormVec(z)
			mathutil.MatVecLower(chol, d, z, cz)
			for j := 0; j < d; j++ {
				st[j] = m.S0 * math.Exp(drift+vol*cz[j])
			}
			if isCall {
				accs[0].Add(df * payoffCall(basketValue(st), o.K))
			} else {
				accs[0].Add(df * payoffPut(basketValue(st), o.K))
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
		Work: float64(paths) * float64(d),
	}, nil
}

// mcLocalVol implements MC_LocalVol: log-Euler simulation under the
// parametric local-volatility surface, sharded over the multicore pricing
// kernel. Parameters: "paths", "mcsteps", "threads".
func mcLocalVol(p *Problem) (Result, error) {
	m, err := lvFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC_LocalVol needs paths >= 2 and mcsteps >= 1")
	}
	isCall := p.Option == OptCallEuro
	dt := o.T / float64(steps)
	sqdt := math.Sqrt(dt)
	df := math.Exp(-m.R * o.T)
	accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford) {
		for i := 0; i < n; i++ {
			s := m.S0
			t := 0.0
			for k := 0; k < steps; k++ {
				sig := m.Vol(t, s)
				s *= math.Exp((m.R-m.Div-0.5*sig*sig)*dt + sig*sqdt*rng.Norm())
				t += dt
			}
			var pay float64
			if isCall {
				pay = payoffCall(s, o.K)
			} else {
				pay = payoffPut(s, o.K)
			}
			accs[0].Add(df * pay)
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
		Work: float64(paths) * float64(steps),
	}, nil
}
