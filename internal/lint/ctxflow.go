package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context plumbing on the concurrency-bearing API
// surface. Cancellation in this system is cooperative end to end — a
// served request's deadline has to reach the farm master's select
// loops, and a drained server must be able to abandon a batch mid
// flight — which only works if every exported function that spawns
// goroutines or blocks on channel traffic accepts a context.Context
// and actually threads it onward. A blocking entry point without a
// context is a leak in the cancellation graph: callers above it cannot
// enforce deadlines on anything below it.
//
// The rule: in farm, risk and serve, an exported function or method
// whose body contains a go statement, select, channel send/receive, or
// sync.WaitGroup.Wait must either take a context.Context parameter
// (and use it) or carry one in a field of its receiver. Deliberate
// exceptions — wire-driven shutdown, fire-and-forget spawn helpers —
// are annotated with //lint:allow ctxflow.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking/spawning functions accept and propagate context.Context",
	Match: scope(
		"internal/farm",
		"internal/risk",
		"internal/serve",
		"internal/var",
	),
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Package, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			kind := blockingKind(fn.Body)
			if kind == "" {
				continue
			}
			ctxParam := contextParam(pass, fn)
			if ctxParam == nil {
				if receiverCarriesContext(pass, fn) {
					continue
				}
				pass.Reportf(fn.Name.Pos(),
					"exported %s %s but takes no context.Context; cancellation cannot reach it", fn.Name.Name, kind)
				continue
			}
			if ctxParam.Name == "_" || !identUsed(fn.Body, ctxParam.Name) {
				pass.Reportf(fn.Name.Pos(),
					"%s accepts a context.Context but never propagates it", fn.Name.Name)
			}
		}
	}
}

// blockingKind classifies why a body is concurrency-bearing, or "".
func blockingKind(body *ast.BlockStmt) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			kind = "spawns goroutines"
		case *ast.SelectStmt:
			kind = "blocks on select"
		case *ast.SendStmt:
			kind = "blocks on channel sends"
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				kind = "blocks on channel receives"
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				kind = "blocks on Wait"
			}
		}
		return kind == ""
	})
	return kind
}

// contextParam returns the identifier of the first context.Context
// parameter, or nil. A parameter list like (ctx context.Context) has
// one name per field; unnamed parameters return a synthetic "_".
func contextParam(pass *Pass, fn *ast.FuncDecl) *ast.Ident {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		t := exprType(pass.Info, field.Type)
		if t == nil || !isNamed(t, "context", "Context") {
			continue
		}
		if len(field.Names) == 0 {
			return ast.NewIdent("_")
		}
		return field.Names[0]
	}
	return nil
}

// receiverCarriesContext reports whether the method's receiver struct
// has a context.Context field — the pattern used by long-lived objects
// (a server, a batcher) that bind their lifecycle context at
// construction.
func receiverCarriesContext(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := exprType(pass.Info, fn.Recv.List[0].Type)
	n := namedType(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isNamed(st.Field(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}
