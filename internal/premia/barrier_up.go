package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// OptCallUpOut is an up-and-out call: it pays (S_T − K)⁺ unless the spot
// touches the upper barrier "U" before expiry, in which case the rebate
// (paid at expiry) is received instead.
const OptCallUpOut = "CallUpOut"

// MethodCFCallUpOut prices it by the Reiner–Rubinstein closed formula.
const MethodCFCallUpOut = "CF_CallUpOut"

// upBarrierFrom reads the up-barrier option's parameters.
func upBarrierFrom(p *Problem) (barrierParams, error) {
	var o barrierParams
	var err error
	if o.vanillaParams, err = vanillaFrom(p); err != nil {
		return o, err
	}
	if o.L, err = p.Params.NeedPositive("U"); err != nil {
		return o, err
	}
	o.Rebate = p.Params.Get("rebate", 0)
	return o, nil
}

// cfCallUpOut prices the up-and-out call in closed form
// (Reiner–Rubinstein). With U <= K the payoff region is entirely beyond
// the barrier, so the option is worth only its rebate.
func cfCallUpOut(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := upBarrierFrom(p)
	if err != nil {
		return Result{}, err
	}
	u := o.L // barrier level
	if m.S0 >= u {
		return Result{Price: o.Rebate * math.Exp(-m.R*o.T), HasDelta: true, Work: 1}, nil
	}
	price := upOutCall(m, o.K, o.T, u)
	if o.Rebate != 0 {
		price += o.Rebate * math.Exp(-m.R*o.T) * upInProbability(m, o.T, u)
	}
	const h = 1e-4
	upBump, dnBump := m, m
	upBump.S0 = m.S0 * (1 + h)
	dnBump.S0 = m.S0 * (1 - h)
	delta := (upOutCall(upBump, o.K, o.T, u) - upOutCall(dnBump, o.K, o.T, u)) / (2 * h * m.S0)
	return Result{Price: price, Delta: delta, HasDelta: true, Work: 2}, nil
}

// upOutCall is the rebate-free Reiner–Rubinstein up-and-out call for
// S0 < U.
func upOutCall(m bsParams, k, t, u float64) float64 {
	if u <= k {
		// Any in-the-money terminal spot lies beyond the barrier: the
		// option cannot pay.
		return 0
	}
	sig2 := m.Sigma * m.Sigma
	lambda := (m.R - m.Div + 0.5*sig2) / sig2
	st := m.Sigma * math.Sqrt(t)
	dq := math.Exp(-m.Div * t)
	df := math.Exp(-m.R * t)
	hs := u / m.S0
	x1 := math.Log(m.S0/u)/st + lambda*st
	y := math.Log(u*u/(m.S0*k))/st + lambda*st
	y1 := math.Log(u/m.S0)/st + lambda*st
	// Up-and-in call (H > K), Haug's formula:
	cui := m.S0*dq*mathutil.NormCDF(x1) - k*df*mathutil.NormCDF(x1-st) -
		m.S0*dq*math.Pow(hs, 2*lambda)*(mathutil.NormCDF(-y)-mathutil.NormCDF(-y1)) +
		k*df*math.Pow(hs, 2*lambda-2)*(mathutil.NormCDF(-y+st)-mathutil.NormCDF(-y1+st))
	c, _ := bsCallPrice(m, k, t)
	v := c - cui
	if v < 0 {
		return 0
	}
	return v
}

// upInProbability is the risk-neutral probability of touching the upper
// barrier u before t, for a rebate paid at expiry.
func upInProbability(m bsParams, t, u float64) float64 {
	if m.S0 >= u {
		return 1
	}
	mu := m.R - m.Div - 0.5*m.Sigma*m.Sigma
	st := m.Sigma * math.Sqrt(t)
	b := math.Log(u / m.S0) // positive
	return mathutil.NormCDF((-b+mu*t)/st) + math.Exp(2*mu*b/(m.Sigma*m.Sigma))*mathutil.NormCDF((-b-mu*t)/st)
}

// mcCallUpOut prices the up-and-out call by Monte Carlo with the
// Brownian-bridge correction for the upper barrier. Parameters: "paths",
// "mcsteps".
func mcCallUpOut(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := upBarrierFrom(p)
	if err != nil {
		return Result{}, err
	}
	u := o.L
	if m.S0 >= u {
		return Result{Price: o.Rebate * math.Exp(-m.R*o.T), Work: 1}, nil
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC up-and-out needs paths >= 2 and mcsteps >= 1")
	}
	rng := mathutil.NewRNG(mcSeed(p))
	dt := o.T / float64(steps)
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * dt
	vol := m.Sigma * math.Sqrt(dt)
	sig2dt := m.Sigma * m.Sigma * dt
	df := math.Exp(-m.R * o.T)
	lnU := math.Log(u)
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		x := math.Log(m.S0)
		alive := true
		survival := 1.0
		for k := 0; k < steps && alive; k++ {
			xNext := x + drift + vol*rng.Norm()
			if xNext >= lnU {
				alive = false
				break
			}
			pHit := math.Exp(-2 * (lnU - x) * (lnU - xNext) / sig2dt)
			survival *= 1 - pHit
			x = xNext
		}
		pay := o.Rebate
		if alive {
			st := math.Exp(x)
			pay = survival*payoffCall(st, o.K) + (1-survival)*o.Rebate
		}
		w.Add(df * pay)
	}
	return Result{
		Price: w.Mean(), PriceCI: w.HalfWidth95(),
		Work: float64(paths) * float64(steps),
	}, nil
}
