package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// pdeGrid is the log-space finite-difference grid shared by the PDE
// pricers: x = ln S on [xmin, xmax] with mi+1 nodes, n time steps.
type pdeGrid struct {
	xmin, dx float64
	mi       int // number of space intervals (nodes = mi+1)
	n        int // time steps
	dt       float64
}

func (g pdeGrid) x(i int) float64 { return g.xmin + float64(i)*g.dx }
func (g pdeGrid) s(i int) float64 { return math.Exp(g.x(i)) }

// pdeDefaultNodes and pdeDefaultSteps size the grid when the problem does
// not override them.
const (
	pdeDefaultNodes = 400
	pdeDefaultSteps = 256
	pdeWidthStds    = 5.0
)

// newVanillaGrid centres the grid on ln S0 with a ±5σ√T (+drift) width and
// makes ln S0 an exact node so no interpolation error enters the price.
func newVanillaGrid(m bsParams, t float64, nodes, steps int) pdeGrid {
	width := pdeWidthStds*m.Sigma*math.Sqrt(t) + math.Abs(m.R-m.Div-0.5*m.Sigma*m.Sigma)*t
	if width < 0.5 {
		width = 0.5
	}
	mi := nodes
	if mi%2 != 0 {
		mi++
	}
	x0 := math.Log(m.S0)
	dx := 2 * width / float64(mi)
	return pdeGrid{xmin: x0 - width, dx: dx, mi: mi, n: steps, dt: t / float64(steps)}
}

// newBarrierGrid anchors the lower edge exactly at the barrier ln L (where
// the Dirichlet knock-out condition holds) and extends upward.
func newBarrierGrid(m bsParams, t, l float64, nodes, steps int) pdeGrid {
	width := pdeWidthStds*m.Sigma*math.Sqrt(t) + math.Abs(m.R-m.Div-0.5*m.Sigma*m.Sigma)*t
	if width < 0.5 {
		width = 0.5
	}
	xmin := math.Log(l)
	xmax := math.Log(m.S0) + width
	mi := nodes
	dx := (xmax - xmin) / float64(mi)
	return pdeGrid{xmin: xmin, dx: dx, mi: mi, n: steps, dt: t / float64(steps)}
}

// newBarrierUpGrid anchors the upper edge exactly at the barrier ln U and
// extends downward.
func newBarrierUpGrid(m bsParams, t, u float64, nodes, steps int) pdeGrid {
	width := pdeWidthStds*m.Sigma*math.Sqrt(t) + math.Abs(m.R-m.Div-0.5*m.Sigma*m.Sigma)*t
	if width < 0.5 {
		width = 0.5
	}
	xmax := math.Log(u)
	xmin := math.Log(m.S0) - width
	mi := nodes
	dx := (xmax - xmin) / float64(mi)
	return pdeGrid{xmin: xmin, dx: dx, mi: mi, n: steps, dt: t / float64(steps)}
}

// pdeCoeffs returns the constant tridiagonal coefficients of the
// Black–Scholes operator in log space:
//
//	A V|_i = ½σ²(V_{i+1}−2V_i+V_{i-1})/dx² + μ(V_{i+1}−V_{i-1})/(2dx) − rV_i
func pdeCoeffs(m bsParams, g pdeGrid) (alpha, beta, gamma float64) {
	sig2 := m.Sigma * m.Sigma
	mu := m.R - m.Div - 0.5*sig2
	alpha = 0.5*sig2/(g.dx*g.dx) - mu/(2*g.dx)
	beta = -sig2/(g.dx*g.dx) - m.R
	gamma = 0.5*sig2/(g.dx*g.dx) + mu/(2*g.dx)
	return
}

// pdeSolver carries the per-run scratch buffers of a Crank–Nicolson
// backward induction over the interior nodes 1..mi-1.
type pdeSolver struct {
	g                   pdeGrid
	m                   bsParams
	alpha, beta, gamma  float64
	v                   []float64 // current layer, nodes 0..mi
	sub, diag, sup, rhs []float64 // interior tridiagonal system
	scratch             []float64
	psi                 []float64 // interior obstacle (American), nil otherwise
	// boundary returns the Dirichlet values at remaining time tau.
	boundary func(tau float64) (lo, hi float64)
}

func newPDESolver(m bsParams, g pdeGrid, terminal func(s float64) float64, boundary func(tau float64) (lo, hi float64)) *pdeSolver {
	ps := &pdeSolver{g: g, m: m, boundary: boundary}
	ps.alpha, ps.beta, ps.gamma = pdeCoeffs(m, g)
	ps.v = make([]float64, g.mi+1)
	for i := range ps.v {
		ps.v[i] = terminal(g.s(i))
	}
	ni := g.mi - 1
	ps.sub = make([]float64, ni)
	ps.diag = make([]float64, ni)
	ps.sup = make([]float64, ni)
	ps.rhs = make([]float64, ni)
	ps.scratch = make([]float64, ni)
	return ps
}

// run performs the backward induction. theta=1 steps (implicit Euler) are
// used for the first rannacher steps to damp the payoff kink, then
// Crank–Nicolson (theta=½).
func (ps *pdeSolver) run(t float64) error {
	g := ps.g
	ni := g.mi - 1
	const rannacher = 2
	for step := 0; step < g.n; step++ {
		theta := 0.5
		if step < rannacher {
			theta = 1.0
		}
		tauNew := float64(step+1) * g.dt // remaining time after this step
		loNew, hiNew := ps.boundary(tauNew)
		a, b, c := ps.alpha, ps.beta, ps.gamma
		for i := 0; i < ni; i++ {
			ps.sub[i] = -theta * g.dt * a
			ps.diag[i] = 1 - theta*g.dt*b
			ps.sup[i] = -theta * g.dt * c
			vi := ps.v[i+1]
			rhs := vi
			if theta < 1 {
				om := (1 - theta) * g.dt
				lower := ps.v[i]
				upper := ps.v[i+2]
				rhs += om * (a*lower + b*vi + c*upper)
			}
			ps.rhs[i] = rhs
		}
		// Fold the new-time Dirichlet boundaries into the first/last
		// equations; the old-time boundary values enter through the
		// explicit stencil via v[0] and v[mi], which still hold them.
		ps.rhs[0] += theta * g.dt * a * loNew
		ps.rhs[ni-1] += theta * g.dt * c * hiNew
		interior := ps.v[1:g.mi]
		var err error
		if ps.psi != nil {
			err = mathutil.SolveTridiagBS(ps.sub, ps.diag, ps.sup, ps.rhs, ps.psi, interior, ps.scratch)
		} else {
			err = mathutil.SolveTridiag(ps.sub, ps.diag, ps.sup, ps.rhs, interior, ps.scratch)
		}
		if err != nil {
			return fmt.Errorf("premia: PDE step %d: %w", step, err)
		}
		ps.v[0], ps.v[g.mi] = loNew, hiNew
	}
	return nil
}

// readout fits a quadratic through the three grid nodes bracketing S0 and
// returns the interpolated price and delta dV/dS.
func (ps *pdeSolver) readout(s0 float64) (price, delta float64) {
	g := ps.g
	x0 := math.Log(s0)
	i := int((x0 - g.xmin) / g.dx)
	if i < 1 {
		i = 1
	}
	if i > g.mi-1 {
		i = g.mi - 1
	}
	xm, xc, xp := g.x(i-1), g.x(i), g.x(i+1)
	vm, vc, vp := ps.v[i-1], ps.v[i], ps.v[i+1]
	// Lagrange quadratic in x and its derivative.
	l0 := (x0 - xc) * (x0 - xp) / ((xm - xc) * (xm - xp))
	l1 := (x0 - xm) * (x0 - xp) / ((xc - xm) * (xc - xp))
	l2 := (x0 - xm) * (x0 - xc) / ((xp - xm) * (xp - xc))
	price = vm*l0 + vc*l1 + vp*l2
	d0 := ((x0 - xc) + (x0 - xp)) / ((xm - xc) * (xm - xp))
	d1 := ((x0 - xm) + (x0 - xp)) / ((xc - xm) * (xc - xp))
	d2 := ((x0 - xm) + (x0 - xc)) / ((xp - xm) * (xp - xc))
	dvdx := vm*d0 + vc*d1 + vp*d2
	delta = dvdx / s0 // dV/dS = dV/dx · dx/dS
	return price, delta
}

// fdCrankNicolson implements FD_CrankNicolson for European calls, puts and
// down-and-out barrier calls. Method parameters: "nodes", "steps".
func fdCrankNicolson(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	nodes := p.Params.Int("nodes", pdeDefaultNodes)
	steps := p.Params.Int("steps", pdeDefaultSteps)
	if nodes < 8 || steps < 1 {
		return Result{}, fmt.Errorf("premia: FD grid too small (%d nodes, %d steps)", nodes, steps)
	}
	switch p.Option {
	case OptCallEuro, OptPutEuro:
		o, err := vanillaFrom(p)
		if err != nil {
			return Result{}, err
		}
		g := newVanillaGrid(m, o.T, nodes, steps)
		isCall := p.Option == OptCallEuro
		terminal := func(s float64) float64 {
			if isCall {
				return payoffCall(s, o.K)
			}
			return payoffPut(s, o.K)
		}
		smin, smax := g.s(0), g.s(g.mi)
		boundary := func(tau float64) (lo, hi float64) {
			if isCall {
				return 0, smax*math.Exp(-m.Div*tau) - o.K*math.Exp(-m.R*tau)
			}
			return o.K*math.Exp(-m.R*tau) - smin*math.Exp(-m.Div*tau), 0
		}
		ps := newPDESolver(m, g, terminal, boundary)
		if err := ps.run(o.T); err != nil {
			return Result{}, err
		}
		price, delta := ps.readout(m.S0)
		return Result{Price: price, Delta: delta, HasDelta: true, Work: float64(g.n) * float64(g.mi)}, nil

	case OptCallDownOut:
		o, err := barrierFrom(p)
		if err != nil {
			return Result{}, err
		}
		if m.S0 <= o.L {
			return Result{Price: o.Rebate * math.Exp(-m.R*o.T), HasDelta: true, Work: 1}, nil
		}
		g := newBarrierGrid(m, o.T, o.L, nodes, steps)
		terminal := func(s float64) float64 { return payoffCall(s, o.K) }
		smax := g.s(g.mi)
		boundary := func(tau float64) (lo, hi float64) {
			return o.Rebate * math.Exp(-m.R*tau), smax*math.Exp(-m.Div*tau) - o.K*math.Exp(-m.R*tau)
		}
		ps := newPDESolver(m, g, terminal, boundary)
		if err := ps.run(o.T); err != nil {
			return Result{}, err
		}
		price, delta := ps.readout(m.S0)
		return Result{Price: price, Delta: delta, HasDelta: true, Work: float64(g.n) * float64(g.mi)}, nil

	case OptCallUpOut:
		o, err := upBarrierFrom(p)
		if err != nil {
			return Result{}, err
		}
		u := o.L
		if m.S0 >= u {
			return Result{Price: o.Rebate * math.Exp(-m.R*o.T), HasDelta: true, Work: 1}, nil
		}
		g := newBarrierUpGrid(m, o.T, u, nodes, steps)
		terminal := func(s float64) float64 {
			// Terminal payoff capped by the knock-out region above U.
			if s >= u {
				return o.Rebate
			}
			return payoffCall(s, o.K)
		}
		boundary := func(tau float64) (lo, hi float64) {
			// Deep OTM at the bottom; knocked out (rebate at expiry) at U.
			return 0, o.Rebate * math.Exp(-m.R*tau)
		}
		ps := newPDESolver(m, g, terminal, boundary)
		if err := ps.run(o.T); err != nil {
			return Result{}, err
		}
		price, delta := ps.readout(m.S0)
		return Result{Price: price, Delta: delta, HasDelta: true, Work: float64(g.n) * float64(g.mi)}, nil
	}
	return Result{}, fmt.Errorf("premia: FD_CrankNicolson does not price %q", p.Option)
}

// fdAmericanCommon builds the grid/obstacle shared by the two American
// finite-difference methods.
func fdAmericanCommon(p *Problem) (*pdeSolver, bsParams, vanillaParams, error) {
	m, err := bsFrom(p)
	if err != nil {
		return nil, m, vanillaParams{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return nil, m, o, err
	}
	nodes := p.Params.Int("nodes", pdeDefaultNodes)
	steps := p.Params.Int("steps", pdeDefaultSteps)
	if nodes < 8 || steps < 1 {
		return nil, m, o, fmt.Errorf("premia: FD grid too small (%d nodes, %d steps)", nodes, steps)
	}
	g := newVanillaGrid(m, o.T, nodes, steps)
	terminal := func(s float64) float64 { return payoffPut(s, o.K) }
	smin := g.s(0)
	boundary := func(tau float64) (lo, hi float64) {
		// American put: immediate exercise value at the low edge.
		return o.K - smin, 0
	}
	ps := newPDESolver(m, g, terminal, boundary)
	ps.psi = make([]float64, g.mi-1)
	for i := range ps.psi {
		ps.psi[i] = payoffPut(g.s(i+1), o.K)
	}
	return ps, m, o, nil
}

// fdBrennanSchwartz implements FD_BrennanSchwartz: Crank–Nicolson with the
// Brennan–Schwartz direct solver projecting onto the exercise obstacle.
func fdBrennanSchwartz(p *Problem) (Result, error) {
	ps, m, o, err := fdAmericanCommon(p)
	if err != nil {
		return Result{}, err
	}
	if err := ps.run(o.T); err != nil {
		return Result{}, err
	}
	price, delta := ps.readout(m.S0)
	return Result{Price: price, Delta: delta, HasDelta: true, Work: float64(ps.g.n) * float64(ps.g.mi)}, nil
}

// fdPSOR implements FD_PSOR: the same discretisation solved as a linear
// complementarity problem by projected SOR at every step. Method
// parameters: "omega" (default 1.4), "tol" (1e-9), "maxiter" (2000).
func fdPSOR(p *Problem) (Result, error) {
	ps, m, _, err := fdAmericanCommon(p)
	if err != nil {
		return Result{}, err
	}
	omega := p.Params.Get("omega", 1.4)
	tol := p.Params.Get("tol", 1e-9)
	maxIter := p.Params.Int("maxiter", 2000)
	g := ps.g
	ni := g.mi - 1
	totalIters := 0
	const rannacher = 2
	for step := 0; step < g.n; step++ {
		theta := 0.5
		if step < rannacher {
			theta = 1.0
		}
		tauNew := float64(step+1) * g.dt
		loNew, hiNew := ps.boundary(tauNew)
		a, b, c := ps.alpha, ps.beta, ps.gamma
		for i := 0; i < ni; i++ {
			ps.sub[i] = -theta * g.dt * a
			ps.diag[i] = 1 - theta*g.dt*b
			ps.sup[i] = -theta * g.dt * c
			vi := ps.v[i+1]
			rhs := vi
			if theta < 1 {
				om := (1 - theta) * g.dt
				rhs += om * (a*ps.v[i] + b*vi + c*ps.v[i+2])
			}
			ps.rhs[i] = rhs
		}
		ps.rhs[0] += theta * g.dt * a * loNew
		ps.rhs[ni-1] += theta * g.dt * c * hiNew
		interior := ps.v[1:g.mi]
		iters, err := mathutil.PSOR(ps.sub, ps.diag, ps.sup, ps.rhs, ps.psi, interior, omega, tol, maxIter)
		if err != nil {
			return Result{}, fmt.Errorf("premia: FD_PSOR step %d: %w", step, err)
		}
		totalIters += iters
		ps.v[0], ps.v[g.mi] = loNew, hiNew
	}
	price, delta := ps.readout(m.S0)
	return Result{Price: price, Delta: delta, HasDelta: true, Work: float64(totalIters) * float64(ni)}, nil
}
