// Package wiretest seeds the wireshape cases: a pinned struct whose
// recorded hash still matches, one that drifted without a version
// bump, and one annotated deliberate drift.
package wiretest

// ProtoLatest mirrors the mpi protocol constant the lock records.
const ProtoLatest = 2

// Pinned matches its recorded golden hash.
type Pinned struct {
	Dest, Src, Tag int32
	Len            uint32
}

// Drifted grew a field since its hash was recorded, with no version
// bump — the silent wire break the analyzer exists to catch.
type Drifted struct { // want `changed shape`
	Version uint16
	Caps    uint32
	Extra   string
}

// AllowedDrift documents a deliberate mismatch (e.g. a struct mid
// migration) with a checked exemption.
//
//lint:allow wireshape fixture: migration in flight, tracked elsewhere
type AllowedDrift struct {
	Window uint32
}
