package mpi

// Non-blocking operations in the MPI-2 style: Isend/Irecv return a
// Request immediately; Wait blocks until the transfer completes. They are
// implemented with goroutines over the blocking primitives, so they work
// on the live transports (local and TCP). The simulated transport's
// single-token process model is inherently blocking, so simnet
// communicators should not be used with these helpers.

// Request tracks an in-flight non-blocking operation.
type Request struct {
	done   chan struct{}
	data   []byte
	status Status
	err    error
}

// Wait blocks until the operation completes and returns its status (and,
// for receives, leaves the payload available via Data).
func (r *Request) Wait() (Status, error) {
	<-r.done
	return r.status, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Data returns the received payload after Wait on an Irecv request; nil
// for sends or incomplete requests.
func (r *Request) Data() []byte {
	if !r.Test() {
		return nil
	}
	return r.data
}

// Isend starts a non-blocking send. The payload is copied before Isend
// returns, so the caller may immediately reuse the slice.
func Isend(c Comm, data []byte, dest, tag int) *Request {
	cp := make([]byte, len(data))
	copy(cp, data)
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = c.Send(cp, dest, tag)
		r.status = Status{Source: c.Rank(), Tag: tag, Bytes: len(cp)}
	}()
	return r
}

// Irecv starts a non-blocking receive matching (source, tag), wildcards
// allowed.
func Irecv(c Comm, source, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.data, r.status, r.err = c.Recv(source, tag)
	}()
	return r
}

// WaitAll waits for every request and returns the first error, if any.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sendrecv performs a simultaneous send and receive, the classic
// deadlock-free exchange (MPI_Sendrecv).
func Sendrecv(c Comm, sendData []byte, dest, sendTag, source, recvTag int) ([]byte, Status, error) {
	sreq := Isend(c, sendData, dest, sendTag)
	data, st, err := c.Recv(source, recvTag)
	if _, serr := sreq.Wait(); serr != nil && err == nil {
		return nil, st, serr
	}
	return data, st, err
}
