package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// The credit asset class, reflecting Premia's addition of "credit risk
// models and derivatives": a reduced-form constant-intensity default
// model with defaultable zero-coupon bonds and credit default swaps.
const (
	// AssetCredit is the credit asset class.
	AssetCredit = "credit"
	// ModelConstHazard is the reduced-form model with constant default
	// intensity "lambda" and recovery rate "recovery" ∈ [0,1).
	ModelConstHazard = "ConstantIntensity1dim"
	// OptDefaultableBond is a zero-coupon bond of maturity T paying 1 at
	// T if no default, and the recovery fraction at T otherwise.
	OptDefaultableBond = "DefaultableBond"
	// OptCDS is a credit default swap of maturity T with quarterly
	// premium payments; its "price" is the par spread (per year).
	OptCDS = "CDS"
	// MethodCFCredit prices both in closed form.
	MethodCFCredit = "CF_Credit"
	// MethodMCCredit prices both by simulating exponential default times.
	MethodMCCredit = "MC_Credit"
)

// creditParams are the reduced-form model parameters.
type creditParams struct {
	Lambda, Recovery, R float64
}

func creditFrom(p *Problem) (creditParams, error) {
	var m creditParams
	var err error
	if m.Lambda, err = p.Params.NeedPositive("lambda"); err != nil {
		return m, err
	}
	m.Recovery = p.Params.Get("recovery", 0.4)
	if m.Recovery < 0 || m.Recovery >= 1 {
		return m, fmt.Errorf("premia: recovery %v outside [0,1)", m.Recovery)
	}
	m.R = p.Params.Get("r", 0)
	return m, nil
}

// cdsLegs returns the protection leg PV and the risky annuity (premium
// leg PV per unit of spread) for quarterly premiums over maturity t.
func cdsLegs(m creditParams, t float64) (protection, annuity float64) {
	// Protection: (1−R)·∫₀ᵀ λ e^{-(r+λ)s} ds, default compensated at the
	// default time.
	u := m.R + m.Lambda
	protection = (1 - m.Recovery) * m.Lambda / u * (1 - math.Exp(-u*t))
	// Premium: quarterly accrual paid at each t_i if no default by t_i.
	const freq = 4.0
	n := int(t*freq + 0.5)
	if n < 1 {
		n = 1
	}
	dt := t / float64(n)
	for i := 1; i <= n; i++ {
		ti := float64(i) * dt
		annuity += dt * math.Exp(-u*ti)
	}
	return protection, annuity
}

// cfCredit implements CF_Credit.
func cfCredit(p *Problem) (Result, error) {
	m, err := creditFrom(p)
	if err != nil {
		return Result{}, err
	}
	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Result{}, err
	}
	switch p.Option {
	case OptDefaultableBond:
		survival := math.Exp(-m.Lambda * t)
		price := math.Exp(-m.R*t) * (survival + m.Recovery*(1-survival))
		return Result{Price: price, Work: 1}, nil
	case OptCDS:
		protection, annuity := cdsLegs(m, t)
		return Result{Price: protection / annuity, Work: 1}, nil
	}
	return Result{}, fmt.Errorf("premia: CF_Credit does not price %q", p.Option)
}

// mcCredit implements MC_Credit by drawing exponential default times.
// Parameters: "paths".
func mcCredit(p *Problem) (Result, error) {
	m, err := creditFrom(p)
	if err != nil {
		return Result{}, err
	}
	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Credit needs paths >= 2")
	}
	rng := mathutil.NewRNG(mcSeed(p))
	drawDefault := func() float64 {
		return -math.Log(rng.Float64Open()) / m.Lambda
	}
	switch p.Option {
	case OptDefaultableBond:
		df := math.Exp(-m.R * t)
		var w mathutil.Welford
		for i := 0; i < paths; i++ {
			if drawDefault() > t {
				w.Add(df)
			} else {
				w.Add(df * m.Recovery)
			}
		}
		return Result{Price: w.Mean(), PriceCI: w.HalfWidth95(), Work: float64(paths)}, nil
	case OptCDS:
		// Estimate both legs, then form the par spread; the CI follows
		// from the delta method on the ratio (reported approximately via
		// the protection leg's relative error).
		const freq = 4.0
		n := int(t*freq + 0.5)
		if n < 1 {
			n = 1
		}
		dt := t / float64(n)
		var prot, annu mathutil.Welford
		for i := 0; i < paths; i++ {
			tau := drawDefault()
			if tau <= t {
				prot.Add((1 - m.Recovery) * math.Exp(-m.R*tau))
			} else {
				prot.Add(0)
			}
			a := 0.0
			for k := 1; k <= n; k++ {
				ti := float64(k) * dt
				if tau > ti {
					a += dt * math.Exp(-m.R*ti)
				}
			}
			annu.Add(a)
		}
		if annu.Mean() <= 0 {
			return Result{}, fmt.Errorf("premia: MC_Credit degenerate annuity")
		}
		spread := prot.Mean() / annu.Mean()
		relErr := 0.0
		if prot.Mean() > 0 {
			relErr = prot.HalfWidth95() / prot.Mean()
		}
		return Result{Price: spread, PriceCI: spread * relErr, Work: float64(paths)}, nil
	}
	return Result{}, fmt.Errorf("premia: MC_Credit does not price %q", p.Option)
}
