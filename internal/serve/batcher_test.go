package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// recordingPrice returns a PriceFunc that records flushed batch sizes
// and prices each problem as its strike (no kernel involved).
func recordingPrice(mu *sync.Mutex, sizes *[]int) PriceFunc {
	return func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		mu.Lock()
		*sizes = append(*sizes, len(problems))
		mu.Unlock()
		out := make([]risk.PriceOutcome, len(problems))
		for i, p := range problems {
			out[i] = risk.PriceOutcome{Result: premia.Result{Price: p.Params["K"]}}
		}
		return out, nil
	}
}

func batchProblem(k float64) *premia.Problem {
	return premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("K", k).Set("T", 1)
}

func TestBatcherFlushOnSize(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	b := newBatcher(context.Background(), recordingPrice(&mu, &sizes), 4, time.Hour, 64, telemetry.New())
	defer b.close()
	reqs := make([]*priceRequest, 4)
	for i := range reqs {
		reqs[i] = &priceRequest{problem: batchProblem(float64(90 + i)), done: make(chan priceResponse, 1)}
		if !b.submit(reqs[i]) {
			t.Fatal("submit rejected")
		}
	}
	// maxDelay is an hour: only the size trigger can flush.
	for i, r := range reqs {
		select {
		case resp := <-r.done:
			if resp.err != nil || resp.outcome.Result.Price != float64(90+i) {
				t.Fatalf("request %d: %+v", i, resp)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never answered", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("flushed batches %v, want one batch of 4", sizes)
	}
}

func TestBatcherFlushOnDelay(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	b := newBatcher(context.Background(), recordingPrice(&mu, &sizes), 100, 5*time.Millisecond, 64, telemetry.New())
	defer b.close()
	reqs := make([]*priceRequest, 3)
	for i := range reqs {
		reqs[i] = &priceRequest{problem: batchProblem(float64(90 + i)), done: make(chan priceResponse, 1)}
		b.submit(reqs[i])
	}
	for i, r := range reqs {
		select {
		case resp := <-r.done:
			if resp.err != nil {
				t.Fatalf("request %d: %v", i, resp.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never answered: delay flush missing", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("flushed batches %v, want one underfull batch of 3", sizes)
	}
}

func TestBatcherQueueFull(t *testing.T) {
	gate := make(chan struct{})
	price := func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		<-gate
		return make([]risk.PriceOutcome, len(problems)), nil
	}
	b := newBatcher(context.Background(), price, 1, time.Hour, 2, telemetry.New())
	// First request flushes immediately and blocks the loop in the gated
	// price func; the next two fill the queue.
	first := &priceRequest{problem: batchProblem(90), done: make(chan priceResponse, 1)}
	if !b.submit(first) {
		t.Fatal("first submit rejected")
	}
	// Wait for the loop to pick up the first request so the queue is empty.
	deadline := time.Now().Add(5 * time.Second)
	queued := []*priceRequest{}
	for len(queued) < 2 {
		r := &priceRequest{problem: batchProblem(91), done: make(chan priceResponse, 1)}
		if b.submit(r) {
			queued = append(queued, r)
		} else if time.Now().After(deadline) {
			t.Fatal("queue never accepted two requests")
		}
	}
	if b.submit(&priceRequest{problem: batchProblem(92), done: make(chan priceResponse, 1)}) {
		t.Fatal("submit accepted beyond queue capacity")
	}
	close(gate)
	b.close()
	for _, r := range append([]*priceRequest{first}, queued...) {
		select {
		case <-r.done:
		case <-time.After(5 * time.Second):
			t.Fatal("queued request dropped on close")
		}
	}
}

// TestBatcherShortPriceSlice feeds the batcher a PriceFunc that returns
// fewer outcomes than problems. Pre-fix the out-of-range index panicked
// the batcher goroutine, stranding every queued request; now the whole
// batch fails with a batch-level error and the loop keeps serving.
func TestBatcherShortPriceSlice(t *testing.T) {
	price := func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		return make([]risk.PriceOutcome, len(problems)-1), nil
	}
	b := newBatcher(context.Background(), price, 2, time.Hour, 64, telemetry.New())
	defer b.close()
	for round := 0; round < 2; round++ {
		reqs := make([]*priceRequest, 2)
		for i := range reqs {
			reqs[i] = &priceRequest{problem: batchProblem(float64(90 + i)), done: make(chan priceResponse, 1)}
			if !b.submit(reqs[i]) {
				t.Fatalf("round %d: submit %d rejected", round, i)
			}
		}
		for i, r := range reqs {
			select {
			case resp := <-r.done:
				if resp.err == nil {
					t.Fatalf("round %d request %d: want error for short outcome slice", round, i)
				}
			case <-time.After(5 * time.Second):
				// Round 2 hanging would mean the loop goroutine died on round 1.
				t.Fatalf("round %d request %d never answered", round, i)
			}
		}
	}
}

func TestBatcherCloseFlushesRemainder(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	b := newBatcher(context.Background(), recordingPrice(&mu, &sizes), 100, time.Hour, 64, telemetry.New())
	r := &priceRequest{problem: batchProblem(95), done: make(chan priceResponse, 1)}
	b.submit(r)
	b.close() // neither size nor delay fired: close must flush
	select {
	case resp := <-r.done:
		if resp.err != nil || resp.outcome.Result.Price != 95 {
			t.Fatalf("bad close-flush response: %+v", resp)
		}
	default:
		t.Fatal("close dropped the buffered request")
	}
}
