// Command riskbench reproduces the paper's evaluation tables on the
// simulated cluster, or runs a live local farm over a generated
// portfolio.
//
// Reproduce a table (time and speedup ratio per CPU count):
//
//	riskbench -table 3
//	riskbench -table 2 -maxcpus 16
//
// Run every table, like the paper's evaluation section:
//
//	riskbench -all
//
// Run a live farm (goroutine workers, real pricing) over a portfolio:
//
//	riskbench -live -portfolio toy -n 2000 -workers 8 -strategy serialized
//
// Run a VaR preset end to end over the (effort-scaled) 7931-claim
// realistic book — full revaluation and delta–gamma, with a
// cross-thread bit-identity verification pass:
//
//	riskbench -var small
//	riskbench -var large -varmethod deltagamma
//
// Simulate the nested outer×inner VaR workload on the simnet cluster
// (flat Robin-Hood sweep plus a hierarchical root-master row):
//
//	riskbench -var medium -varsim
//
// List the registered pricing methods:
//
//	riskbench -methods
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"riskbench/internal/bench"
	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

func main() {
	var (
		tableN    = flag.Int("table", 0, "reproduce table 1, 2 or 3 on the simulator")
		all       = flag.Bool("all", false, "reproduce all three tables")
		maxCPUs   = flag.Int("maxcpus", 0, "truncate the table's CPU counts (0 = full sweep)")
		live      = flag.Bool("live", false, "run a live farm with real pricing instead of the simulator")
		pfName    = flag.String("portfolio", "toy", "live portfolio: toy | regression | realistic | mixed")
		n         = flag.Int("n", 1000, "toy portfolio size (live mode)")
		workers   = flag.Int("workers", runtime.NumCPU(), "live worker count")
		stratName = flag.String("strategy", "serialized", "communication strategy: full | nfs | serialized")
		batch     = flag.Int("batch", 1, "tasks per message batch")
		transport = flag.String("transport", "local", "live worker transport: local (in-process goroutines) or a framed mpi transport (tcp | unix | inproc)")
		varName   = flag.String("var", "", "run a VaR preset (small | medium | large) over the scaled realistic book")
		varMethod = flag.String("varmethod", "both", "VaR estimator: full | deltagamma | both")
		varSim    = flag.Bool("varsim", false, "simulate the nested outer×inner VaR workload on the simnet cluster (-var selects the preset)")
		noVerify  = flag.Bool("noverify", false, "skip the VaR cross-thread bit-identity verification pass")
		methods   = flag.Bool("methods", false, "list registered pricing methods and exit")
		util      = flag.Bool("utilization", false, "report worker utilization across CPU counts on the simulator")
		selftest  = flag.Bool("selftest", false, "run the §4.1 non-regression suite live and report per-method results")
		calibrate = flag.Bool("calibrate", false, "measure per-class costs on this machine before simulating (-table mode)")
		telAddr   = flag.String("telemetry", "", "serve metrics (Prometheus /metrics, JSON /metrics.json) and /debug/traces on this address (e.g. :9090)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -telemetry address")
	)
	flag.Parse()

	// Ctrl-C or SIGTERM cancels the run cooperatively: masters stop
	// dispatching, drain in-flight batches and shut their workers down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// reg is nil (a no-op sink) unless -telemetry is given.
	var reg *telemetry.Registry
	if *telAddr != "" {
		reg = telemetry.Default
		premia.SetTelemetry(reg)
		mpi.SetTelemetry(reg)
		handler := http.Handler(telemetry.Mux(reg))
		if *pprofOn {
			handler = withPprof(handler)
		}
		go func() {
			if err := http.ListenAndServe(*telAddr, handler); err != nil {
				fmt.Fprintf(os.Stderr, "riskbench: telemetry server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/ (/metrics, /metrics.json, /debug/traces)\n", *telAddr)
	} else if *pprofOn {
		fatalf("-pprof needs -telemetry <addr> to serve on")
	}

	switch {
	case *selftest:
		runSelfTest(ctx, *workers, reg)
	case *util:
		runUtilization(ctx, *pfName, *n, *stratName, *batch)
	case *methods:
		for _, m := range premia.Methods() {
			models, options := premia.Compatibles(m)
			fmt.Printf("%-34s models=%v options=%v\n", m, models, options)
		}
	case *all:
		for _, spec := range []bench.TableSpec{bench.TableI(), bench.TableII(), bench.TableIII()} {
			spec.MaxCPUs = *maxCPUs
			runTable(ctx, spec, *calibrate, reg)
		}
	case *tableN != 0:
		var spec bench.TableSpec
		switch *tableN {
		case 1:
			spec = bench.TableI()
		case 2:
			spec = bench.TableII()
		case 3:
			spec = bench.TableIII()
		default:
			fatalf("unknown table %d (want 1, 2 or 3)", *tableN)
		}
		spec.MaxCPUs = *maxCPUs
		runTable(ctx, spec, *calibrate, reg)
	case *varSim:
		name := *varName
		if name == "" {
			name = "small"
		}
		runVarSim(ctx, name, *batch)
	case *varName != "":
		runVar(ctx, *varName, *varMethod, *workers, !*noVerify, reg)
	case *live:
		runLive(ctx, *pfName, *n, *workers, *stratName, *transport, *batch, reg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "riskbench: "+format+"\n", args...)
	os.Exit(1)
}

// withPprof mounts the net/http/pprof handlers in front of h; the
// handlers are reachable only through this explicit mount, never via
// http.DefaultServeMux.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func runTable(ctx context.Context, spec bench.TableSpec, calibrate bool, reg *telemetry.Registry) {
	if calibrate {
		fmt.Fprintln(os.Stderr, "calibrating per-class costs on this machine...")
		if err := spec.Portfolio.CalibrateCosts(0.01); err != nil {
			fatalf("calibrate: %v", err)
		}
		fmt.Fprintf(os.Stderr, "calibrated total work: %.1f s\n", spec.Portfolio.TotalCost())
	}
	start := time.Now()
	tbl, err := bench.RunTableContext(ctx, spec, reg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(tbl.Format())
	fmt.Printf("(simulated on %d claims in %v wall time)\n\n", spec.Portfolio.Size(), time.Since(start).Round(time.Millisecond))
}

func parseStrategy(name string) farm.Strategy {
	switch name {
	case "full":
		return farm.FullLoad
	case "nfs":
		return farm.NFSLoad
	case "serialized":
		return farm.SerializedLoad
	default:
		fatalf("unknown strategy %q (want full, nfs or serialized)", name)
		panic("unreachable")
	}
}

func buildPortfolio(name string, n int) *portfolio.Portfolio {
	switch name {
	case "toy":
		return portfolio.Toy(n)
	case "regression":
		return portfolio.Regression()
	case "mixed":
		return portfolio.Mixed(n)
	case "realistic":
		fmt.Fprintln(os.Stderr, "note: live realistic portfolio uses the paper's full Monte Carlo sizes; this takes hours")
		return portfolio.Realistic()
	default:
		fatalf("unknown portfolio %q", name)
		panic("unreachable")
	}
}

// runSelfTest is the live counterpart of the paper's §4.1 non-regression
// runs: every registered pricing problem is farmed over local workers,
// and per-method counts, timings and sanity checks are reported.
func runSelfTest(ctx context.Context, workers int, reg *telemetry.Registry) {
	pf := portfolio.Regression()
	tasks, err := pf.Tasks()
	if err != nil {
		fatalf("%v", err)
	}
	opts := farm.Options{Strategy: farm.SerializedLoad, Telemetry: reg}
	wopts := opts
	wopts.LocalSpans = true // workers share the process registry
	world := mpi.NewLocalWorld(workers + 1)
	defer world.Close()
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := farm.RunWorker(world.Comm(rank), farm.LiveExecutor{}, nil, wopts); err != nil {
				fmt.Fprintf(os.Stderr, "worker %d: %v\n", rank, err)
			}
		}(r)
	}
	root := reg.StartTrace("bench.run")
	start := time.Now()
	results, err := farm.RunMaster(telemetry.ContextWithTrace(ctx, root.Context()), world.Comm(0), tasks, farm.LiveLoader{}, opts)
	if err != nil {
		fatalf("master: %v", err)
	}
	root.End()
	wg.Wait()
	elapsed := time.Since(start)

	methodOf := map[string]string{}
	for _, it := range pf.Items {
		methodOf[it.Name] = it.Problem.Method
	}
	type stat struct{ n, bad int }
	perMethod := map[string]*stat{}
	for _, r := range results {
		m := methodOf[r.Name]
		s := perMethod[m]
		if s == nil {
			s = &stat{}
			perMethod[m] = s
		}
		s.n++
		price, ok := farm.ResultField(r, "price")
		if r.Err != nil || !ok || price != price /* NaN */ || price < -1e-9 {
			s.bad++
		}
	}
	fmt.Printf("non-regression suite: %d problems in %v on %d workers\n\n",
		len(results), elapsed.Round(time.Millisecond), workers)
	fmt.Printf("%-34s%8s%8s\n", "method", "tests", "failed")
	failed := 0
	for _, m := range premia.Methods() {
		s := perMethod[m]
		if s == nil {
			continue
		}
		fmt.Printf("%-34s%8d%8d\n", m, s.n, s.bad)
		failed += s.bad
	}
	if failed > 0 {
		fatalf("%d tests failed", failed)
	}
	fmt.Println("\nall tests passed")
}

func runUtilization(ctx context.Context, pfName string, n int, stratName string, batch int) {
	strat := parseStrategy(stratName)
	pf := buildPortfolio(pfName, n)
	tasks, err := pf.Tasks()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("worker utilization, portfolio %s (%d claims), %s strategy, batch %d\n",
		pf.Name, pf.Size(), strat, batch)
	fmt.Printf("%8s %12s %14s %14s\n", "CPUs", "Time (s)", "mean util", "master busy")
	for _, cpus := range []int{2, 4, 8, 16, 32, 64, 128} {
		rc := bench.RunConfig{Tasks: tasks, CPUs: cpus, Strategy: strat, BatchSize: batch}
		if strat == farm.NFSLoad {
			fatalf("utilization mode does not support the NFS strategy")
		}
		stats, err := bench.RunWithStats(ctx, rc)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%8d %12.3f %13.1f%% %13.3fs\n",
			cpus, stats.Makespan, 100*stats.MeanUtilization, stats.MasterBusy)
	}
}

func runLive(ctx context.Context, pfName string, n, workers int, stratName, transport string, batch int, reg *telemetry.Registry) {
	strat := parseStrategy(stratName)
	pf := buildPortfolio(pfName, n)
	tasks, err := pf.Tasks()
	if err != nil {
		fatalf("%v", err)
	}
	var store farm.Store
	if strat == farm.NFSLoad {
		ms := farm.MemStore{}
		for _, t := range tasks {
			ms[t.Name] = t.Data
		}
		store = ms
	}
	opts := farm.Options{Strategy: strat, BatchSize: batch, Telemetry: reg}
	var wg sync.WaitGroup
	var master mpi.Comm
	var closeWorld func()
	if transport == "" || transport == "local" {
		// The default shape: a goroutine world with shared mailboxes, no
		// framing, workers writing spans into the process registry.
		wopts := opts
		wopts.LocalSpans = true // workers share the process registry
		world := mpi.NewLocalWorld(workers + 1)
		closeWorld = world.Close
		for r := 1; r <= workers; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := farm.RunWorker(world.Comm(rank), farm.LiveExecutor{}, store, wopts); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: %v\n", rank, err)
				}
			}(r)
		}
		master = world.Comm(0)
	} else {
		// A framed hub world on the chosen transport: goroutine workers
		// dial through the real wire, negotiate the protocol per
		// connection, and ship spans back by frame from their own
		// registries.
		if _, err := mpi.LookupTransport(transport); err != nil {
			fatalf("%v (or \"local\")", err)
		}
		hub, err := mpi.ListenHubWith("", workers+1, mpi.WorldOptions{Transport: transport})
		if err != nil {
			fatalf("%v", err)
		}
		closeWorld = func() { hub.Close() }
		// Workers dial from their own goroutines: the hub only accepts
		// connections inside WaitWorkers, so dialing before it runs would
		// deadlock on the handshake reply.
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := mpi.DialHubWith(hub.Addr(), mpi.WorldOptions{Transport: transport})
				if err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: dial %s hub: %v\n", i+1, transport, err)
					return
				}
				defer c.Close()
				wopts := opts
				wopts.Telemetry = telemetry.New() // spans travel by frame, not shared memory
				if err := farm.RunWorker(c, farm.LiveExecutor{}, store, wopts); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: %v\n", i+1, err)
				}
			}(i)
		}
		if err := hub.WaitWorkers(); err != nil {
			fatalf("%v", err)
		}
		master = hub
	}
	defer closeWorld()
	root := reg.StartTrace("bench.run")
	start := time.Now()
	results, err := farm.RunMaster(telemetry.ContextWithTrace(ctx, root.Context()), master, tasks, farm.LiveLoader{}, opts)
	if err != nil {
		fatalf("master: %v", err)
	}
	root.End()
	wg.Wait()
	elapsed := time.Since(start)
	sum := 0.0
	for _, r := range results {
		price, _ := farm.ResultField(r, "price")
		sum += price
	}
	shape := transport
	if shape == "" {
		shape = "local"
	}
	fmt.Printf("portfolio %s: priced %d claims in %v with %d %s workers (%s strategy, batch %d)\n",
		pf.Name, len(results), elapsed.Round(time.Millisecond), workers, shape, strat, batch)
	fmt.Printf("aggregate portfolio value: %.4f\n", sum)
}
