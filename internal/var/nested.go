package varisk

import (
	"context"
	"fmt"
	"sync"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/portfolio"
	"riskbench/internal/risk"
)

// SimTasks expands the nested-simulation workload — outer market
// scenarios × inner per-claim repricings — into the one flat farm batch
// the master actually schedules: outer copies of every claim, named
// "o%05d/<claim>". This is the simulator-facing shape (the riskbench
// -varsim sweeps): payload bytes and virtual costs are shared across
// the outer copies, so a million-task batch costs one serialization
// pass over the portfolio, not outer of them. The live estimators don't
// use it — FullReval builds real shifted problems through
// risk.RevalueContext instead — but the scheduling traffic is
// identical, which is the point of simulating it.
func SimTasks(pf *portfolio.Portfolio, outer int) ([]farm.Task, error) {
	if outer < 1 {
		return nil, fmt.Errorf("varisk: need at least 1 outer scenario, got %d", outer)
	}
	base, err := pf.Tasks()
	if err != nil {
		return nil, err
	}
	out := make([]farm.Task, 0, outer*len(base))
	for o := 0; o < outer; o++ {
		for _, t := range base {
			out = append(out, farm.Task{
				Name: fmt.Sprintf("o%05d/%s", o+1, t.Name),
				Data: t.Data, // shared across outer copies by design
				Cost: t.Cost,
			})
		}
	}
	return out, nil
}

// HierBackend is a risk.FarmBackend that prices each round over the
// paper's hierarchical topology on an in-process world: a root master
// (farm.RunRootMaster) hands task chunks to Groups sub-masters, each
// Robin-Hood-farming its own worker group. Plugging it into
// risk.Engine.Backend runs the whole VaR revaluation — the outer×inner
// nested batch included — through the hierarchical path with live
// pricing, which is how the estimator tests exercise RunRootMaster
// outside the simulator.
type HierBackend struct {
	// Groups is the sub-master count (default 2).
	Groups int
	// Chunk is the root→sub-master hand-off size in tasks (default 8).
	Chunk int
}

// Run implements risk.FarmBackend. The nw workers are spread over the
// groups per farm.HierarchyWorkers; nw must be at least Groups so every
// sub-master has a worker. Cancellation closes the local world, which
// unblocks every rank.
func (b HierBackend) Run(ctx context.Context, tasks []farm.Task, opts farm.Options, nw int) ([]farm.Result, error) {
	groups := b.Groups
	if groups < 1 {
		groups = 2
	}
	chunk := b.Chunk
	if chunk < 1 {
		chunk = 8
	}
	if nw < groups {
		nw = groups
	}
	size := 1 + groups + nw
	world := mpi.NewLocalWorld(size)
	defer world.Close()
	stopCancel := context.AfterFunc(ctx, func() { world.Close() })
	defer stopCancel()
	wopts := opts
	wopts.LocalSpans = true // all ranks share the engine's registry
	var wg sync.WaitGroup
	errs := make([]error, size)
	for g := 0; g < groups; g++ {
		sub := g + 1
		ws := farm.HierarchyWorkers(size, groups, g)
		wg.Add(1)
		go func(sub int, ws []int) {
			defer wg.Done()
			errs[sub] = farm.RunSubMaster(world.Comm(sub), ws, wopts)
		}(sub, ws)
		for _, wr := range ws {
			wg.Add(1)
			go func(rank, master int) {
				defer wg.Done()
				ropts := wopts
				ropts.MasterRank = master
				errs[rank] = farm.RunWorker(world.Comm(rank), farm.LiveExecutor{}, nil, ropts)
			}(wr, sub)
		}
	}
	results, err := farm.RunRootMaster(ctx, world.Comm(0), tasks, farm.LiveLoader{}, opts, groups, chunk)
	if err != nil {
		// Whatever the cause, close the world so every rank unblocks, then
		// wait for them: returning while goroutines may still be writing
		// errs would leak them past Run.
		world.Close()
		wg.Wait()
		return nil, err
	}
	wg.Wait()
	for rank, rerr := range errs {
		if rerr != nil {
			return nil, fmt.Errorf("varisk: hier rank %d: %w", rank, rerr)
		}
	}
	return results, nil
}

// assert the seam at compile time.
var _ risk.FarmBackend = HierBackend{}
