package mathutil

import "math"

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// HalfWidth95 returns the half-width of the asymptotic 95% confidence
// interval around the mean.
func (w *Welford) HalfWidth95() float64 {
	return 1.959963984540054 * w.StdErr()
}

// Merge folds another accumulator into w (parallel Welford combination),
// so per-goroutine accumulators can be reduced deterministically.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxFloat returns the maximum of xs; it panics on an empty slice.
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		panic("mathutil: MaxFloat of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// LinInterp returns the piecewise-linear interpolation of (xs, ys) at x,
// clamping outside the grid. xs must be strictly increasing and the two
// slices the same non-zero length. Used by the local-volatility surface.
func LinInterp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || len(ys) != n {
		panic("mathutil: LinInterp length mismatch")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}
