package riskbench_test

// The benchmark harness regenerating every table of the paper's
// evaluation (its Figures 1–5 are code listings, not data plots; the data
// artifacts are Tables I–III), plus the ablation benches DESIGN.md calls
// out and micro-benchmarks of the hot paths. Table benches report the
// simulated makespans as custom metrics: sim_s_<CPUs>cpu[_<strategy>].
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one table's rows:
//
//	go test -bench=BenchmarkTableIII -v

import (
	"context"
	"fmt"
	"testing"

	"riskbench/internal/bench"
	"riskbench/internal/farm"
	"riskbench/internal/mathutil"
	"riskbench/internal/nsp"
	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
)

// reportTable runs the sweep once per benchmark iteration and attaches
// the paper-comparable numbers as metrics.
func reportTable(b *testing.B, spec bench.TableSpec) {
	b.Helper()
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.RunTable(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range tbl.Rows {
		for _, s := range spec.Strategies {
			label := fmt.Sprintf("sim_s_%dcpu", row.CPUs)
			if len(spec.Strategies) > 1 {
				switch s {
				case farm.FullLoad:
					label += "_full"
				case farm.NFSLoad:
					label += "_nfs"
				case farm.SerializedLoad:
					label += "_ser"
				}
			}
			b.ReportMetric(row.Cells[s].Time, label)
		}
	}
}

// BenchmarkTableI regenerates Table I: speedups of the Premia
// non-regression suite, serialized load, 2–256 CPUs.
func BenchmarkTableI(b *testing.B) {
	reportTable(b, bench.TableI())
}

// BenchmarkTableII regenerates Table II: the 10,000-vanilla toy portfolio
// across the three communication strategies, 2–50 CPUs.
func BenchmarkTableII(b *testing.B) {
	reportTable(b, bench.TableII())
}

// BenchmarkTableIII regenerates Table III: the realistic 7931-claim
// portfolio across the three strategies, 2–512 CPUs.
func BenchmarkTableIII(b *testing.B) {
	reportTable(b, bench.TableIII())
}

// BenchmarkAblationScheduling compares Robin-Hood against static block
// assignment on the heterogeneous regression suite at 17 CPUs.
func BenchmarkAblationScheduling(b *testing.B) {
	tasks, err := portfolio.Regression().Tasks()
	if err != nil {
		b.Fatal(err)
	}
	var dyn, static float64
	for i := 0; i < b.N; i++ {
		if dyn, err = bench.Run(context.Background(), bench.RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad}); err != nil {
			b.Fatal(err)
		}
		if static, err = bench.Run(context.Background(), bench.RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad, Scheduler: bench.StaticBlock}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dyn, "sim_s_robinhood")
	b.ReportMetric(static, "sim_s_static")
}

// BenchmarkAblationBatching sweeps the batch size on the
// communication-bound toy portfolio at 17 CPUs (the latency fix proposed
// in the paper's §4.1/conclusion).
func BenchmarkAblationBatching(b *testing.B) {
	tasks, err := portfolio.Toy(10000).Tasks()
	if err != nil {
		b.Fatal(err)
	}
	for _, bs := range []int{1, 5, 20, 100} {
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t, err = bench.Run(context.Background(), bench.RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad, BatchSize: bs})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(t, "sim_s")
		})
	}
}

// BenchmarkAblationHierarchy compares the flat master against sub-master
// hierarchies on the toy portfolio at 129 CPUs (the conclusion's proposed
// improvement).
func BenchmarkAblationHierarchy(b *testing.B) {
	tasks, err := portfolio.Toy(10000).Tasks()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flat", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			t, err = bench.Run(context.Background(), bench.RunConfig{Tasks: tasks, CPUs: 129, Strategy: farm.SerializedLoad})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(t, "sim_s")
	})
	for _, groups := range []int{4, 8} {
		b.Run(fmt.Sprintf("groups%d", groups), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t, err = bench.Run(context.Background(), bench.RunConfig{
					Tasks: tasks, CPUs: 129, Strategy: farm.SerializedLoad,
					Scheduler: bench.Hierarchical, Groups: groups, Chunk: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(t, "sim_s")
		})
	}
}

// BenchmarkAblationCompression compares raw and flate-compressed problem
// payloads on a bandwidth-starved link (the paper's "compressed
// serialization" future development).
func BenchmarkAblationCompression(b *testing.B) {
	tasks, err := portfolio.Toy(10000).Tasks()
	if err != nil {
		b.Fatal(err)
	}
	ctasks, err := bench.CompressTasks(tasks)
	if err != nil {
		b.Fatal(err)
	}
	slow := bench.RunConfig{CPUs: 17, Strategy: farm.SerializedLoad}
	slow.Link.Latency = 80e-6
	slow.Link.Bandwidth = 1e6
	slow.Link.SendOverhead = 25e-6
	slow.Link.RecvOverhead = 25e-6
	b.Run("raw", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			rc := slow
			rc.Tasks = tasks
			if t, err = bench.Run(context.Background(), rc); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(t, "sim_s")
	})
	b.Run("compressed", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			rc := slow
			rc.Tasks = ctasks
			if t, err = bench.Run(context.Background(), rc); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(t, "sim_s")
	})
}

// BenchmarkSerializePath measures the live master-side cost difference
// between the full-load path (decode + re-encode) and the serialized-load
// path (byte pass-through) — the asymmetry behind Table II's columns.
func BenchmarkSerializePath(b *testing.B) {
	p := premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("K", 100).Set("T", 1)
	h, err := p.ToNsp()
	if err != nil {
		b.Fatal(err)
	}
	s, err := nsp.Serialize(h)
	if err != nil {
		b.Fatal(err)
	}
	task := farm.Task{Name: "bench", Data: s.Data}
	b.Run("full", func(b *testing.B) {
		loader := farm.LiveLoader{}
		for i := 0; i < b.N; i++ {
			if _, err := loader.Load(task, farm.FullLoad); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serialized", func(b *testing.B) {
		loader := farm.LiveLoader{}
		for i := 0; i < b.N; i++ {
			if _, err := loader.Load(task, farm.SerializedLoad); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPricing measures each live method class once, the per-claim
// costs that §4.3's spectrum describes.
func BenchmarkPricing(b *testing.B) {
	cases := []struct {
		name string
		p    *premia.Problem
	}{
		{"VanillaCF", premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("K", 100).Set("T", 1)},
		{"BarrierPDE", premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptCallDownOut).SetMethod(premia.MethodFDCrank).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("K", 100).Set("T", 1).
			Set("L", 75).Set("nodes", 400).Set("steps", 364)},
		{"AmericanPDE", premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptPutAmer).SetMethod(premia.MethodFDBS).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("K", 100).Set("T", 1).
			Set("nodes", 400).Set("steps", 364)},
		{"BasketMC40d", premia.New().
			SetModel(premia.ModelBSND).SetOption(premia.OptPutBasketEuro).SetMethod(premia.MethodMCBasket).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("dim", 40).Set("rho", 0.3).
			Set("K", 100).Set("T", 1).Set("paths", 10000)},
		{"LocalVolMC", premia.New().
			SetModel(premia.ModelLocVol).SetOption(premia.OptCallEuro).SetMethod(premia.MethodMCLocalVol).
			Set("S0", 100).Set("r", 0.05).Set("sigma0", 0.2).Set("skew", -0.15).
			Set("K", 100).Set("T", 1).Set("paths", 10000).Set("mcsteps", 64)},
		{"AmericanLSM7d", premia.New().
			SetModel(premia.ModelBSND).SetOption(premia.OptPutBasketAmer).SetMethod(premia.MethodMCAmerLSM).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("dim", 7).Set("rho", 0.3).
			Set("K", 100).Set("T", 1).Set("paths", 5000).Set("exdates", 25)},
		{"HestonCF", premia.New().
			SetModel(premia.ModelHeston).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFHeston).
			Set("S0", 100).Set("r", 0.03).Set("V0", 0.04).Set("kappa", 2).Set("theta", 0.04).
			Set("sigmaV", 0.3).Set("rhoSV", -0.7).Set("K", 100).Set("T", 1)},
		{"HestonAmerAlfonsiLSM", premia.New().
			SetModel(premia.ModelHeston).SetOption(premia.OptPutAmer).SetMethod(premia.MethodMCAmerAlfonsi).
			Set("S0", 100).Set("r", 0.03).Set("V0", 0.04).Set("kappa", 2).Set("theta", 0.04).
			Set("sigmaV", 0.3).Set("rhoSV", -0.7).Set("K", 100).Set("T", 1).
			Set("paths", 5000).Set("exdates", 25)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.p.Compute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSerialization measures the nsp wire codec on a realistic
// problem hash.
func BenchmarkSerialization(b *testing.B) {
	h, err := portfolio.Realistic().Items[0].Problem.ToNsp()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nsp.Serialize(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	s, err := nsp.Serialize(h)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unserialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Unserialize(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compress", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Compress(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRNG measures the deterministic PCG64 generator against its
// role in the Monte Carlo inner loops.
func BenchmarkRNG(b *testing.B) {
	r := mathutil.NewRNG(1)
	b.Run("Uint64", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += r.Uint64()
		}
		_ = sink
	})
	b.Run("Norm", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += r.Norm()
		}
		_ = sink
	})
}

// BenchmarkRiskRevaluation measures the live throughput of the risk
// engine (claims × scenarios per second) on a closed-form book — the
// paper's "huge number of atomic computations" pipeline.
func BenchmarkRiskRevaluation(b *testing.B) {
	book := portfolio.Mixed(100)
	scens := append(append(risk.SpotLadder(), risk.VolLadder()...), risk.StressScenarios()...)
	eng := risk.Engine{Workers: 4}
	atomic := book.Size() * (len(scens) + 1)
	var val *risk.Valuation
	for i := 0; i < b.N; i++ {
		var err error
		val, err = eng.Revalue(book, scens)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = val
	b.ReportMetric(float64(atomic), "atomic_computations")
}
