package nsp

import (
	"math"
	"testing"
)

func TestIMatRoundTrip(t *testing.T) {
	m := NewIMat(2, 3)
	m.Data = []int64{1, -2, math.MaxInt64, math.MinInt64, 0, 42}
	if !roundTrip(t, m).Equal(m) {
		t.Fatal("int matrix round trip lost data")
	}
}

func TestIMatAccessors(t *testing.T) {
	m := NewIMat(2, 2)
	m.Set(1, 0, -7)
	if m.At(1, 0) != -7 || m.At(0, 0) != 0 {
		t.Fatal("At/Set wrong")
	}
	if IntScalar(5).At(0, 0) != 5 {
		t.Fatal("IntScalar wrong")
	}
	if m.Kind() != KindIMat || m.Kind().String() != "i" {
		t.Fatal("kind wrong")
	}
}

func TestIMatEqual(t *testing.T) {
	a := NewIMat(1, 2)
	b := NewIMat(2, 1)
	if a.Equal(b) {
		t.Fatal("shape conflated")
	}
	c := NewIMat(1, 2)
	c.Data[1] = 9
	if a.Equal(c) {
		t.Fatal("values conflated")
	}
	if a.Equal(NewMat(1, 2)) {
		t.Fatal("kind conflated")
	}
}

func TestCellsRoundTrip(t *testing.T) {
	c := NewCells(2, 2)
	c.Set(0, 0, Str("corner"))
	c.Set(0, 1, RowVec(1, 2))
	c.Set(1, 1, NewList(Bool(true), IntScalar(3)))
	// (1,0) left empty deliberately.
	back := roundTrip(t, c).(*Cells)
	if !back.Equal(c) {
		t.Fatal("cells round trip lost data")
	}
	if back.At(1, 0) != nil {
		t.Fatal("empty cell became non-nil")
	}
	if back.At(0, 0).(*SMat).StrValue() != "corner" {
		t.Fatal("cell content wrong")
	}
}

func TestCellsEqualEmptyPattern(t *testing.T) {
	a := NewCells(1, 2)
	b := NewCells(1, 2)
	a.Set(0, 0, Scalar(1))
	if a.Equal(b) {
		t.Fatal("different emptiness patterns conflated")
	}
	b.Set(0, 0, Scalar(1))
	if !a.Equal(b) {
		t.Fatal("equal cells not equal")
	}
	if a.Kind().String() != "ce" {
		t.Fatal("kind label wrong")
	}
}

func TestCellsInsideHashAndList(t *testing.T) {
	c := NewCells(1, 1)
	c.Set(0, 0, Str("deep"))
	h := NewHash()
	h.Set("cells", c)
	l := NewList(h, NewIMat(1, 1))
	if !roundTrip(t, l).Equal(l) {
		t.Fatal("nested cells round trip failed")
	}
}

func TestNewIMatPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIMat(-1, 2)
}

func TestNewCellsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCells(2, -1)
}
