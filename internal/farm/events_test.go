package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/telemetry"
)

func fieldNum(ev telemetry.Event, key string) (float64, bool) {
	for _, f := range ev.Fields {
		if f.Key == key {
			return f.NumValue()
		}
	}
	return 0, false
}

func fieldStr(ev telemetry.Event, key string) (string, bool) {
	for _, f := range ev.Fields {
		if f.Key == key {
			return f.StrValue()
		}
	}
	return "", false
}

// TestFleetAccounting drives the fleet book directly through one
// dispatch/complete/fail/redeal cycle and checks every counter, the
// EWMA update and the rank-sorted snapshot.
func TestFleetAccounting(t *testing.T) {
	f := NewFleet()
	f.dispatched(2, 3, 1.0)
	snap := f.Snapshot()
	if len(snap) != 1 || snap[0].Rank != 2 || snap[0].InFlight != 3 {
		t.Fatalf("after dispatch: %+v", snap)
	}
	f.completed(2, 3, 0.5, 2.0)
	f.taskFailed(2)
	f.taskRedealt(1)
	snap = f.Snapshot()
	if len(snap) != 2 || snap[0].Rank != 1 || snap[1].Rank != 2 {
		t.Fatalf("snapshot not rank-sorted: %+v", snap)
	}
	if snap[0].Redealt != 1 {
		t.Errorf("rank 1 redealt = %d, want 1", snap[0].Redealt)
	}
	w2 := snap[1]
	if w2.InFlight != 0 || w2.Completed != 3 || w2.Retried != 1 {
		t.Errorf("rank 2 state = %+v", w2)
	}
	if w2.EWMASeconds != 0.5 {
		t.Errorf("first completion EWMA = %v, want the raw duration 0.5", w2.EWMASeconds)
	}
	if w2.LastSeen != 2.0 {
		t.Errorf("last seen = %v, want 2.0", w2.LastSeen)
	}
	// Second completion moves the EWMA by alpha of the difference.
	f.dispatched(2, 1, 3.0)
	f.completed(2, 1, 1.0, 4.0)
	snap = f.Snapshot()
	want := 0.5 + ewmaAlpha*(1.0-0.5)
	if got := snap[1].EWMASeconds; got != want {
		t.Errorf("EWMA after second completion = %v, want %v", got, want)
	}
	// A completion for an unknown rank must not drive in-flight negative.
	f.completed(9, 2, 0.1, 5.0)
	for _, w := range f.Snapshot() {
		if w.InFlight < 0 {
			t.Errorf("rank %d in-flight went negative: %d", w.Rank, w.InFlight)
		}
	}
	// A nil fleet discards everything without panicking.
	var nf *Fleet
	nf.dispatched(1, 1, 0)
	nf.completed(1, 1, 0, 0)
	nf.taskFailed(1)
	nf.taskRedealt(1)
	if nf.Snapshot() != nil {
		t.Error("nil fleet snapshot not nil")
	}
}

// TestFleetStragglerScore pins the z-score: a worker 3× slower than its
// uniform peers scores clearly positive, the peers negative, and a
// worker with no completions stays at zero.
func TestFleetStragglerScore(t *testing.T) {
	f := NewFleet()
	for rank, dur := range map[int]float64{1: 1.0, 2: 1.0, 3: 4.0} {
		f.dispatched(rank, 1, 0)
		f.completed(rank, 1, dur, 1)
	}
	f.dispatched(4, 1, 2) // dispatched but never completed
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("%d workers, want 4", len(snap))
	}
	if s := snap[2].StragglerScore; s < 1 {
		t.Errorf("slow worker z-score = %v, want > 1", s)
	}
	if snap[0].StragglerScore >= 0 || snap[1].StragglerScore >= 0 {
		t.Errorf("fast workers score positive: %+v", snap[:2])
	}
	if snap[3].StragglerScore != 0 {
		t.Errorf("completion-less worker scored %v, want 0", snap[3].StragglerScore)
	}
	// Uniform fleet: zero variance, all scores zero.
	u := NewFleet()
	for rank := 1; rank <= 3; rank++ {
		u.dispatched(rank, 1, 0)
		u.completed(rank, 1, 0.25, 1)
	}
	for _, w := range u.Snapshot() {
		if w.StragglerScore != 0 {
			t.Errorf("uniform fleet rank %d scored %v, want 0", w.Rank, w.StragglerScore)
		}
	}
}

// TestEventPayloadRoundtrip packs a mixed batch of events through the
// wire codec and expects everything except Seq (assigned at ingest) and
// Rank (attributed by the master) to survive bit-exactly.
func TestEventPayloadRoundtrip(t *testing.T) {
	evs := []telemetry.Event{
		{
			When: 1.5, Level: telemetry.LevelWarn, Name: "farm.compute.error",
			TraceID: 0xdeadbeefcafef00d,
			Fields: []telemetry.Field{
				telemetry.Str("task", "job-01"),
				telemetry.Str("err", "boom"),
				telemetry.Num("attempt", 2),
			},
		},
		{
			When: 2.5, Level: telemetry.LevelError, Name: "farm.worker.exit",
			Fields: []telemetry.Field{telemetry.Num("rank", 3)},
		},
		// Same name again: the intern table must map both to one entry.
		{When: 3.25, Level: telemetry.LevelWarn, Name: "farm.compute.error"},
	}
	h := encodeEventPayload(evs, 42.5)
	if !isEventPayload(h) {
		t.Fatal("encoded payload not recognised")
	}
	if isEventPayload(resultHash("job-01", 1, 0, 0, 1)) {
		t.Fatal("task result misrecognised as event payload")
	}
	got, recvAt, err := decodeEventPayload(h)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if recvAt != 42.5 {
		t.Errorf("recvAt = %v, want 42.5", recvAt)
	}
	if len(got) != len(evs) {
		t.Fatalf("%d events back, want %d", len(got), len(evs))
	}
	for i, ev := range got {
		want := evs[i]
		if ev.Name != want.Name || ev.Level != want.Level || ev.When != want.When || ev.TraceID != want.TraceID {
			t.Errorf("event %d = %+v, want %+v", i, ev, want)
		}
		if ev.Rank != telemetry.RankLocal {
			t.Errorf("event %d rank = %d before attribution, want RankLocal", i, ev.Rank)
		}
		if len(ev.Fields) != len(want.Fields) {
			t.Errorf("event %d has %d fields, want %d", i, len(ev.Fields), len(want.Fields))
			continue
		}
		for j, f := range ev.Fields {
			if f.Key != want.Fields[j].Key || f.Value() != want.Fields[j].Value() {
				t.Errorf("event %d field %d = %v=%v, want %v=%v",
					i, j, f.Key, f.Value(), want.Fields[j].Key, want.Fields[j].Value())
			}
		}
	}
}

// TestEventPayloadRejectsMalformed feeds the decoder the corruptions a
// hostile or skewed peer could ship: wrong container type, missing
// arrays, dangling intern indices and disagreeing lengths.
func TestEventPayloadRejectsMalformed(t *testing.T) {
	if _, _, err := decodeEventPayload(nsp.Scalar(1)); err == nil {
		t.Error("non-hash payload accepted")
	}
	base := func() []telemetry.Event {
		return []telemetry.Event{{
			When: 1, Level: telemetry.LevelWarn, Name: "farm.compute.error",
			Fields: []telemetry.Field{telemetry.Str("task", "job-01")},
		}}
	}
	corrupt := []struct {
		name   string
		mutate func(h *nsp.Hash)
	}{
		{"missing levels", func(h *nsp.Hash) { h.Del(eventLevels) }},
		{"name index out of range", func(h *nsp.Hash) {
			m := nsp.NewMat(1, 1)
			m.Data[0] = 7
			h.Set(eventNameIx, m)
		}},
		{"fractional field count", func(h *nsp.Hash) {
			m := nsp.NewMat(1, 1)
			m.Data[0] = 0.5
			h.Set(eventNFields, m)
		}},
		{"field count overruns arrays", func(h *nsp.Hash) {
			m := nsp.NewMat(1, 1)
			m.Data[0] = 9
			h.Set(eventNFields, m)
		}},
		{"trace halves truncated", func(h *nsp.Hash) { h.Set(eventTraces, nsp.NewMat(1, 1)) }},
		{"string value index dangles", func(h *nsp.Hash) { h.Set(eventStrs, nsp.NewSMat(1, 0)) }},
		{"recvat malformed", func(h *nsp.Hash) { h.Set(eventRecvAt, nsp.NewMat(1, 2)) }},
	}
	for _, tc := range corrupt {
		h := encodeEventPayload(base(), 1)
		tc.mutate(h)
		if _, _, err := decodeEventPayload(h); err == nil {
			t.Errorf("%s: corrupted payload accepted", tc.name)
		}
	}
}

// runEventFarm runs one farm with a distinct telemetry registry per
// rank — the distributed shape, where worker events can only reach the
// master over the wire — and returns the results plus the master's
// registry and fleet.
func runEventFarm(t *testing.T, execs map[int]Executor, tasks []Task, mopts Options) ([]Result, *telemetry.Registry, *Fleet) {
	t.Helper()
	mopts.Telemetry = telemetry.New()
	mopts.Fleet = NewFleet()
	w := mpi.NewLocalWorld(len(execs) + 1)
	defer w.Close()
	var wg sync.WaitGroup
	for r := 1; r <= len(execs); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			wopts := mopts
			wopts.Telemetry = telemetry.New()
			wopts.Fleet = nil
			if err := RunWorker(w.Comm(rank), execs[rank], nil, wopts); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	results, err := RunMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, mopts)
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	return results, mopts.Telemetry, mopts.Fleet
}

// TestFarmRetryEventsAttributed injects one transient worker failure
// and checks the flight recorder end to end: the master logs a
// farm.task.retry naming the failing rank, the worker's own
// farm.compute.error ships over the negotiated events capability and
// lands rank-attributed in the master's log, and the fleet book charges
// the failure to the right worker.
func TestFarmRetryEventsAttributed(t *testing.T) {
	exec := newFlaky("job-02", 1)
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = Task{Name: fmt.Sprintf("job-%02d", i), Data: []byte("x")}
	}
	results, reg, fleet := runEventFarm(t,
		map[int]Executor{1: exec, 2: exec},
		tasks, Options{Strategy: SerializedLoad, MaxRetries: 2})
	if len(results) != 6 {
		t.Fatalf("%d results, want 6", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.Name, r.Err)
		}
	}
	retries := reg.Events(telemetry.EventFilter{Prefix: "farm.task.retry"})
	if len(retries) != 1 {
		t.Fatalf("got %d farm.task.retry events, want 1", len(retries))
	}
	rt := retries[0]
	if rt.Level != telemetry.LevelWarn {
		t.Errorf("retry level = %v, want warn", rt.Level)
	}
	if task, _ := fieldStr(rt, "task"); task != "job-02" {
		t.Errorf("retry task = %q, want job-02", task)
	}
	failRank, ok := fieldNum(rt, "rank")
	if !ok || (failRank != 1 && failRank != 2) {
		t.Fatalf("retry rank field = %v ok=%v, want a worker rank", failRank, ok)
	}
	if attempt, _ := fieldNum(rt, "attempt"); attempt != 1 {
		t.Errorf("retry attempt = %v, want 1", attempt)
	}
	// The worker's own compute-error event crossed the wire and was
	// folded in with the failing rank stamped on it.
	cerrs := reg.Events(telemetry.EventFilter{Prefix: "farm.compute.error"})
	if len(cerrs) != 1 {
		t.Fatalf("got %d farm.compute.error events, want 1 shipped from the worker", len(cerrs))
	}
	if got := cerrs[0].Rank; got != int(failRank) {
		t.Errorf("compute error attributed to rank %d, want %d", got, int(failRank))
	}
	if errMsg, _ := fieldStr(cerrs[0], "err"); errMsg == "" {
		t.Error("compute error event lost its err field")
	}
	// Fleet: the failure is charged to the failing worker, and every
	// dispatch (6 tasks + 1 retry) completed somewhere.
	var retried, completed int64
	for _, w := range fleet.Snapshot() {
		retried += w.Retried
		completed += w.Completed
		if w.Rank == int(failRank) && w.Retried != 1 {
			t.Errorf("rank %d retried = %d, want 1", w.Rank, w.Retried)
		}
		if w.InFlight != 0 {
			t.Errorf("rank %d still in flight after the run: %d", w.Rank, w.InFlight)
		}
	}
	if retried != 1 || completed != 7 {
		t.Errorf("fleet totals retried=%d completed=%d, want 1/7", retried, completed)
	}
}

// rankedExec fails one named task instantly and prices everything else
// after a fixed delay, so tests can choreograph which worker is free
// when a retry comes up for dispatch.
type rankedExec struct {
	fail  string
	delay time.Duration
}

func (e rankedExec) Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error) {
	if name == e.fail {
		return nil, errors.New("injected failure")
	}
	time.Sleep(e.delay)
	return resultHash(name, 42, 0, 0, 1), nil
}

// TestFarmRedealEvent forces a retry to land on a different rank than
// the one that failed it. Rank 1 fails "poison" instantly and is then
// kept busy on a slow filler; rank 2 frees up first and takes the
// retry — a redeal, logged with both ranks and booked to the fleet.
func TestFarmRedealEvent(t *testing.T) {
	tasks := []Task{
		{Name: "poison", Data: []byte("x")},
		{Name: "fill-a", Data: []byte("x")},
		{Name: "fill-b", Data: []byte("x")},
	}
	// Seeding sends poison→1 and fill-a→2. Rank 1 fails poison at once;
	// the master requeues it behind fill-b and hands rank 1 the slow
	// fill-b. Rank 2 finishes fill-a long before rank 1 returns, so the
	// poison retry is redealt to rank 2.
	results, reg, fleet := runEventFarm(t,
		map[int]Executor{
			1: rankedExec{fail: "poison", delay: 300 * time.Millisecond},
			2: rankedExec{delay: 30 * time.Millisecond},
		},
		tasks, Options{Strategy: SerializedLoad, MaxRetries: 2})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.Name, r.Err)
		}
		if r.Name == "poison" && r.Worker != 2 {
			t.Errorf("poison priced on rank %d, want the redeal target 2", r.Worker)
		}
	}
	redeals := reg.Events(telemetry.EventFilter{Prefix: "farm.task.redeal"})
	if len(redeals) != 1 {
		t.Fatalf("got %d farm.task.redeal events, want 1", len(redeals))
	}
	rd := redeals[0]
	if task, _ := fieldStr(rd, "task"); task != "poison" {
		t.Errorf("redeal task = %q, want poison", task)
	}
	if from, _ := fieldNum(rd, "failed_on"); from != 1 {
		t.Errorf("redeal failed_on = %v, want 1", from)
	}
	if to, _ := fieldNum(rd, "redealt_to"); to != 2 {
		t.Errorf("redeal redealt_to = %v, want 2", to)
	}
	var r1, r2 WorkerHealth
	for _, w := range fleet.Snapshot() {
		switch w.Rank {
		case 1:
			r1 = w
		case 2:
			r2 = w
		}
	}
	if r1.Retried != 1 {
		t.Errorf("rank 1 retried = %d, want 1", r1.Retried)
	}
	if r2.Redealt != 1 {
		t.Errorf("rank 2 redealt = %d, want 1", r2.Redealt)
	}
}
