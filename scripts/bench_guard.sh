#!/bin/sh
# bench_guard.sh — allocation-regression gate.
#
# Re-runs the allocation-critical benchmarks with -benchmem and compares
# bytes/op and allocs/op against the budgets recorded in
# BENCH_alloc.json: the mpi codec paths (engineered to zero allocs), the
# served-request path (pooled descriptors + object passthrough), the
# Monte Carlo kernel path (pooled arenas + struct-of-arrays buffers),
# and the flight recorder's event emit (slot-resident ring buffers,
# budgeted at one alloc per emit for the field copy).
# allocs/op must not exceed its budget at all; bytes/op gets 25% + 16B
# headroom for size-class noise. Any regression fails the build — that
# is the point: the allocation-free hot paths stay that way by machine
# check, not by reviewer memory.
#
# Usage: sh scripts/bench_guard.sh  (or: make benchguard)
set -eu
cd "$(dirname "$0")/.."

BUDGETS=BENCH_alloc.json
BENCHTIME="${BENCHTIME:-1000x}"
# The serve benchmark coalesces concurrent requests and carries one-time
# server setup (fleet book, SLO monitor, exemplar tables), so it needs
# enough iterations for both to settle; the kernel benchmark prices 2M
# paths per op, so a handful of iterations is already seconds of work.
# The event benchmark's op is ~200ns but its first emit allocates the
# whole 2048-slot ring, so it needs volume to amortize that to zero.
SERVE_BENCHTIME="${SERVE_BENCHTIME:-2000x}"
KERNEL_BENCHTIME="${KERNEL_BENCHTIME:-5x}"
VAR_BENCHTIME="${VAR_BENCHTIME:-200x}"
EVENT_BENCHTIME="${EVENT_BENCHTIME:-100000x}"

out=$(go test -bench 'BenchmarkFrameCodec|BenchmarkHubRoundTrip' -benchmem -benchtime "$BENCHTIME" -run '^$' ./internal/mpi)
out="$out
$(go test -bench 'BenchmarkServeTracing' -benchmem -benchtime "$SERVE_BENCHTIME" -run '^$' ./internal/serve)
$(go test -bench 'BenchmarkKernelMCEuro/threads=1$' -benchmem -benchtime "$KERNEL_BENCHTIME" -run '^$' ./internal/premia)
$(go test -bench 'BenchmarkVaRDeltaGamma$' -benchmem -benchtime "$VAR_BENCHTIME" -run '^$' ./internal/var)
$(go test -bench 'BenchmarkEventEmit$' -benchmem -benchtime "$EVENT_BENCHTIME" -run '^$' ./internal/telemetry)"
printf '%s\n' "$out"

printf '%s\n' "$out" | awk -v budgets="$BUDGETS" '
BEGIN {
    # Parse the one-object-per-line results array of BENCH_alloc.json.
    while ((getline line < budgets) > 0) {
        if (line !~ /"case"/) continue
        name = line; sub(/.*"case":[ \t]*"/, "", name); sub(/".*/, "", name)
        b = line; sub(/.*"bytes_per_op":[ \t]*/, "", b); sub(/[,} ].*/, "", b)
        a = line; sub(/.*"allocs_per_op":[ \t]*/, "", a); sub(/[,} ].*/, "", a)
        bytes[name] = b + 0
        allocs[name] = a + 0
        seen[name] = 0
    }
    close(budgets)
    fail = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in bytes)) next
    seen[name] = 1
    gotB = ""; gotA = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "B/op") gotB = $i + 0
        if ($(i+1) == "allocs/op") gotA = $i + 0
    }
    if (gotB == "" || gotA == "") {
        printf "bench_guard: %s: could not parse -benchmem fields\n", name
        fail = 1
        next
    }
    limB = bytes[name] * 1.25 + 16
    if (gotA > allocs[name]) {
        printf "bench_guard: %s: %d allocs/op exceeds budget %d\n", name, gotA, allocs[name]
        fail = 1
    }
    if (gotB > limB) {
        printf "bench_guard: %s: %d B/op exceeds budget %d (+25%%+16)\n", name, gotB, bytes[name]
        fail = 1
    }
}
END {
    for (name in seen) {
        if (!seen[name]) {
            printf "bench_guard: budgeted case %s did not run\n", name
            fail = 1
        }
    }
    if (fail) {
        print "bench_guard: FAIL — allocation budgets exceeded (see BENCH_alloc.json)"
        exit 1
    }
    print "bench_guard: OK — all cases within BENCH_alloc.json budgets"
}
'
