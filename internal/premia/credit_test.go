package premia

import (
	"math"
	"testing"
)

func creditProblem(option, method string) *Problem {
	return New().SetAsset(AssetCredit).
		SetModel(ModelConstHazard).SetOption(option).SetMethod(method).
		Set("lambda", 0.02).Set("recovery", 0.4).Set("r", 0.03).Set("T", 5)
}

func TestDefaultableBondBasics(t *testing.T) {
	res, err := creditProblem(OptDefaultableBond, MethodCFCredit).Compute()
	if err != nil {
		t.Fatal(err)
	}
	riskFree := math.Exp(-0.03 * 5)
	if res.Price <= 0 || res.Price >= riskFree {
		t.Fatalf("defaultable bond %v outside (0, %v)", res.Price, riskFree)
	}
	// Riskier issuer: cheaper bond.
	risky, err := creditProblem(OptDefaultableBond, MethodCFCredit).Set("lambda", 0.2).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if risky.Price >= res.Price {
		t.Fatalf("λ=0.2 bond %v not below λ=0.02 bond %v", risky.Price, res.Price)
	}
	// Zero hazard limit → risk-free bond.
	safe, err := creditProblem(OptDefaultableBond, MethodCFCredit).Set("lambda", 1e-12).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(safe.Price-riskFree) > 1e-9 {
		t.Fatalf("λ→0 bond %v, want %v", safe.Price, riskFree)
	}
}

func TestCDSParSpread(t *testing.T) {
	res, err := creditProblem(OptCDS, MethodCFCredit).Compute()
	if err != nil {
		t.Fatal(err)
	}
	// The classic credit-triangle approximation: spread ≈ (1−R)·λ = 120bp.
	approx := 0.6 * 0.02
	if math.Abs(res.Price-approx) > 0.1*approx {
		t.Fatalf("CDS spread %v far from credit triangle %v", res.Price, approx)
	}
	// Spread increases with hazard and decreases with recovery.
	hi, _ := creditProblem(OptCDS, MethodCFCredit).Set("lambda", 0.05).Compute()
	if hi.Price <= res.Price {
		t.Error("spread not increasing in hazard")
	}
	rec, _ := creditProblem(OptCDS, MethodCFCredit).Set("recovery", 0.8).Compute()
	if rec.Price >= res.Price {
		t.Error("spread not decreasing in recovery")
	}
}

func TestCreditMCMatchesCF(t *testing.T) {
	for _, option := range []string{OptDefaultableBond, OptCDS} {
		cf, err := creditProblem(option, MethodCFCredit).Compute()
		if err != nil {
			t.Fatal(err)
		}
		mc, err := creditProblem(option, MethodMCCredit).Set("paths", 200000).Compute()
		if err != nil {
			t.Fatal(err)
		}
		tol := 3*mc.PriceCI + 1e-4*cf.Price
		if diff := math.Abs(cf.Price - mc.Price); diff > tol {
			t.Errorf("%s: CF %v vs MC %v ± %v", option, cf.Price, mc.Price, mc.PriceCI)
		}
	}
}

func TestCreditValidation(t *testing.T) {
	if _, err := creditProblem(OptCDS, MethodCFCredit).Set("recovery", 1.5).Compute(); err == nil {
		t.Error("recovery > 1 accepted")
	}
	if _, err := creditProblem(OptCDS, MethodCFCredit).Set("lambda", -1).Compute(); err == nil {
		t.Error("negative hazard accepted")
	}
	wrongAsset := New().SetModel(ModelConstHazard).SetOption(OptCDS).SetMethod(MethodCFCredit).
		Set("lambda", 0.02).Set("T", 5)
	if err := wrongAsset.Validate(); err == nil {
		t.Error("equity-asset credit problem accepted")
	}
}
