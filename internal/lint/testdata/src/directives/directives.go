// Package dirtest seeds the three directive-hygiene failures: a stale
// exemption, an unknown analyzer name, and a missing reason. Each is a
// diagnostic in its own right — that is what keeps //lint:allow from
// becoming a silent skip list.
package dirtest

// stale: nothing on the next line violates maporder.
//
//lint:allow maporder this suppresses nothing
var x = 1

//lint:allow nosuchrule the analyzer name is wrong
var y = 2

//lint:allow metricnames
var z = 3

var _ = x + y + z
