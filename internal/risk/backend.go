package risk

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/telemetry"
)

// FarmBackend is the seam between the engine and its worker pool: Run
// farms one round of tasks over `workers` workers and returns the
// results. The engine threads its context (including any distributed
// trace riding it) straight through, so worker-side spans reassemble on
// the master regardless of where the workers live. Run must honour ctx
// cancellation; it returns the transport's raw error and lets the
// caller wrap it.
type FarmBackend interface {
	Run(ctx context.Context, tasks []farm.Task, opts farm.Options, workers int) ([]farm.Result, error)
}

// LocalBackend, the engine default, prices on an in-process goroutine
// world: one mpi.LocalWorld per round, workers sharing the engine's
// telemetry registry.
type LocalBackend struct{}

// Run implements FarmBackend on goroutine ranks. Cancellation is
// enforced two ways: the master stops dispatching cooperatively, and the
// local MPI world is closed so blocked workers unblock immediately.
func (LocalBackend) Run(ctx context.Context, tasks []farm.Task, opts farm.Options, nw int) ([]farm.Result, error) {
	world := mpi.NewLocalWorld(nw + 1)
	defer world.Close()
	stopCancel := context.AfterFunc(ctx, func() { world.Close() })
	defer stopCancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, nw+1)
	wopts := opts
	wopts.LocalSpans = true // workers share the master's registry
	for r := 1; r <= nw; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			workerErrs[rank] = farm.RunWorker(world.Comm(rank), farm.LiveExecutor{}, nil, wopts)
		}(r)
	}
	results, err := farm.RunMaster(ctx, world.Comm(0), tasks, farm.LiveLoader{}, opts)
	if err != nil {
		if ctx.Err() != nil {
			world.Close() // unblock any workers still waiting
			wg.Wait()
		}
		return nil, err
	}
	wg.Wait()
	for rank, werr := range workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("risk: worker %d: %w", rank, werr)
		}
	}
	return results, nil
}

// NetBackend prices each round over a framed mpi transport: it listens
// on Addr via the named transport, asks Spawn to start the round's
// workers dialing in (separate processes in deployment, goroutines in
// tests), and masters the round over the hub. The hub runs the
// versioned handshake with every worker, so a mixed-version pool —
// mid-rolling-upgrade — negotiates each connection down to the common
// protocol subset and the round still completes with identical prices.
// Worker-side telemetry lives in whatever registries the spawned
// workers carry; their spans travel back over the wire when the
// negotiation allows it.
type NetBackend struct {
	// Transport names a registered mpi transport: "tcp" (the default,
	// cross-host), "unix" (same-host worker pools over unix-domain
	// sockets) or "inproc" (net.Pipe worlds, the full wire path with no
	// OS sockets).
	Transport string
	// Addr is the listen address in the transport's own format; empty
	// selects a transport-chosen ephemeral address (127.0.0.1:0 for
	// tcp, a fresh temp-dir socket path for unix).
	Addr string
	// Proto pins the hub's wire-protocol version (mpi.ProtoV1 or
	// mpi.ProtoV2); 0 speaks the latest. Compatibility tests pin
	// adjacent versions; deployments leave it alone.
	Proto int
	// Spawn must cause `workers` workers to mpi.DialHubWith the given
	// transport and address and run farm.RunWorker until the stop
	// message. It returns a wait function joining them (may be nil).
	// Required.
	Spawn func(transport, addr string, workers int) (wait func() error, err error)
}

// Run implements FarmBackend over a hub world on the configured
// transport.
func (b *NetBackend) Run(ctx context.Context, tasks []farm.Task, opts farm.Options, nw int) ([]farm.Result, error) {
	if b.Spawn == nil {
		return nil, errors.New("risk: NetBackend needs a Spawn function")
	}
	hub, err := mpi.ListenHubWith(b.Addr, nw+1, mpi.WorldOptions{Transport: b.Transport, Proto: b.Proto})
	if err != nil {
		return nil, err
	}
	defer hub.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	wait, err := b.Spawn(b.Transport, hub.Addr(), nw)
	if err != nil {
		return nil, err
	}
	if err := <-accepted; err != nil {
		return nil, err
	}
	stopCancel := context.AfterFunc(ctx, func() { hub.Close() })
	defer stopCancel()
	results, err := farm.RunMaster(ctx, hub, tasks, farm.LiveLoader{}, opts)
	if err != nil {
		// Closing the hub unblocks the spawned workers before joining
		// them, so a failed round does not strand the wait.
		hub.Close()
		if wait != nil {
			_ = wait()
		}
		return nil, err
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			return nil, fmt.Errorf("risk: %s worker: %w", hub.Addr(), werr)
		}
	}
	return results, nil
}

// GoNetWorkers returns a NetBackend Spawn function running each worker
// as a goroutine of this process with its own Comm over the real wire —
// the test and single-machine shape. newRegistry, when non-nil,
// supplies each worker's telemetry registry (a fresh registry per
// worker proves spans travel by wire rather than by shared memory).
// proto pins the workers' wire-protocol version; 0 speaks the latest.
//
// The spawned workers deliberately take no context: worker shutdown is
// wire-driven — RunWorker returns on the master's stop message or when
// the hub closes the connection — and the returned wait function is
// the join point the backend already owns.
//
//lint:allow ctxflow worker shutdown is wire-driven (stop frames / hub close), not context-driven
func GoNetWorkers(newRegistry func(worker int) *telemetry.Registry, proto int) func(transport, addr string, workers int) (func() error, error) {
	return func(transport, addr string, workers int) (func() error, error) {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			c, err := mpi.DialHubWith(addr, mpi.WorldOptions{Transport: transport, Proto: proto})
			if err != nil {
				return nil, err
			}
			var reg *telemetry.Registry
			if newRegistry != nil {
				reg = newRegistry(i)
			}
			wg.Add(1)
			go func(i int, c mpi.Comm, reg *telemetry.Registry) {
				defer wg.Done()
				defer c.Close()
				errs[i] = farm.RunWorker(c, farm.LiveExecutor{}, nil,
					farm.Options{Strategy: farm.SerializedLoad, Telemetry: reg})
			}(i, c, reg)
		}
		return func() error {
			wg.Wait()
			return errors.Join(errs...)
		}, nil
	}
}

// TCPBackend prices each round over real TCP connections.
//
// Deprecated: TCPBackend is NetBackend fixed to the tcp transport; new
// code should set NetBackend{Transport: "tcp"} (or any other registered
// transport) directly. The shim remains so existing constructors keep
// compiling through the transition.
type TCPBackend struct {
	// Addr is the listen address; default "127.0.0.1:0".
	Addr string
	// Spawn must cause `workers` workers to mpi.DialHub(addr) and run
	// farm.RunWorker until the stop message. It returns a wait function
	// joining them (may be nil). Required.
	Spawn func(addr string, workers int) (wait func() error, err error)
}

// Run implements FarmBackend over a TCP hub by delegating to
// NetBackend.
func (b *TCPBackend) Run(ctx context.Context, tasks []farm.Task, opts farm.Options, nw int) ([]farm.Result, error) {
	if b.Spawn == nil {
		return nil, errors.New("risk: TCPBackend needs a Spawn function")
	}
	nb := &NetBackend{
		Transport: "tcp",
		Addr:      b.Addr,
		Spawn: func(_, addr string, workers int) (func() error, error) {
			return b.Spawn(addr, workers)
		},
	}
	return nb.Run(ctx, tasks, opts, nw)
}

// GoTCPWorkers returns a TCPBackend Spawn function running each worker
// as a goroutine of this process over the real TCP wire.
//
// Deprecated: use GoNetWorkers, which spawns over any registered
// transport and can pin a protocol version for compatibility tests.
func GoTCPWorkers(newRegistry func(worker int) *telemetry.Registry) func(addr string, workers int) (func() error, error) {
	spawn := GoNetWorkers(newRegistry, 0)
	return func(addr string, workers int) (func() error, error) {
		return spawn("tcp", addr, workers)
	}
}
