package varisk

import (
	"context"
	"strings"
	"testing"

	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

func TestSimTasksShape(t *testing.T) {
	pf := smallBook()
	tasks, err := SimTasks(pf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3*pf.Size() {
		t.Fatalf("%d tasks, want %d", len(tasks), 3*pf.Size())
	}
	if !strings.HasPrefix(tasks[0].Name, "o00001/") || !strings.HasPrefix(tasks[2*pf.Size()].Name, "o00003/") {
		t.Fatalf("task names %q, %q", tasks[0].Name, tasks[2*pf.Size()].Name)
	}
	// Payload bytes are shared across outer copies: one serialization
	// pass builds the million-task batch.
	if &tasks[0].Data[0] != &tasks[pf.Size()].Data[0] {
		t.Error("outer copies do not share payload bytes")
	}
	if tasks[0].Cost != tasks[pf.Size()].Cost {
		t.Error("outer copies disagree on cost")
	}
	if _, err := SimTasks(pf, 0); err == nil {
		t.Error("zero outer scenarios accepted")
	}
}

// TestHierBackendMatchesLocal runs the same revaluation through the
// default local backend and through the hierarchical root-master
// topology; the per-claim surfaces must match bit for bit — scheduling
// topology must never leak into prices.
func TestHierBackendMatchesLocal(t *testing.T) {
	pf := smallBook()
	scens := risk.SpotLadder()
	want, err := risk.Engine{Workers: 4}.Revalue(pf, scens)
	if err != nil {
		t.Fatal(err)
	}
	eng := risk.Engine{Workers: 4, Backend: HierBackend{Groups: 2, Chunk: 4}}
	got, err := eng.Revalue(pf, scens)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want.Values {
		for i := range want.Values[s] {
			if got.Values[s][i] != want.Values[s][i] {
				t.Fatalf("value[%d][%d] = %.17g over hierarchy, %.17g locally", s, i, got.Values[s][i], want.Values[s][i])
			}
		}
	}
	for i := range want.Base {
		if got.Base[i] != want.Base[i] {
			t.Fatalf("base[%d] differs across backends", i)
		}
	}
}

// TestFullRevalOverHierBackend is the nested simulation live: the
// outer×inner batch scheduled by farm.RunRootMaster through sub-master
// groups, with the estimates matching the flat local run exactly.
func TestFullRevalOverHierBackend(t *testing.T) {
	pf := smallBook()
	scens, err := DefaultMarket().Generate(24, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alphas: []float64{0.9}, HorizonDays: 10}
	flat, err := FullReval(context.Background(), risk.Engine{Workers: 4}, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := FullReval(context.Background(), risk.Engine{Workers: 4, Backend: HierBackend{Groups: 2, Chunk: 2}}, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat.PnLs {
		if flat.PnLs[i] != hier.PnLs[i] {
			t.Fatalf("P&L[%d] = %.17g over hierarchy, %.17g flat", i, hier.PnLs[i], flat.PnLs[i])
		}
	}
	if flat.Estimates[0] != hier.Estimates[0] {
		t.Fatalf("estimates differ: %+v vs %+v", hier.Estimates[0], flat.Estimates[0])
	}
}

// TestFullRevalOverNetBackend prices the VaR batch over the framed
// in-process transport — the same wire path as a real worker fleet.
func TestFullRevalOverNetBackend(t *testing.T) {
	pf := smallBook()
	scens, err := DefaultMarket().Generate(12, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alphas: []float64{0.9}, HorizonDays: 10}
	flat, err := FullReval(context.Background(), risk.Engine{Workers: 2}, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := risk.Engine{
		Workers: 2,
		Backend: &risk.NetBackend{
			Transport: "inproc",
			Spawn:     risk.GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, 0),
		},
	}
	net, err := FullReval(context.Background(), eng, pf, scens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat.PnLs {
		if flat.PnLs[i] != net.PnLs[i] {
			t.Fatalf("P&L[%d] differs over the net backend", i)
		}
	}
}

func TestHierBackendCancellation(t *testing.T) {
	pf := smallBook()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := risk.Engine{Workers: 4, Backend: HierBackend{Groups: 2, Chunk: 2}}
	if _, err := eng.RevalueContext(ctx, pf, risk.SpotLadder()); err == nil {
		t.Fatal("cancelled hierarchical revaluation succeeded")
	}
}
