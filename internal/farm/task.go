package farm

import (
	"errors"
	"fmt"
	"math"

	"riskbench/internal/nsp"
	"riskbench/internal/telemetry"
)

// Strategy selects how problems travel from master to worker; the values
// correspond to the columns of the paper's Tables II and III.
type Strategy int

// The three communication strategies of the paper.
const (
	FullLoad Strategy = iota
	NFSLoad
	SerializedLoad
)

// String returns the paper's label for the strategy.
func (s Strategy) String() string {
	switch s {
	case FullLoad:
		return "full load"
	case NFSLoad:
		return "NFS"
	case SerializedLoad:
		return "serialized load"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NeedsPayload reports whether the master ships problem bytes itself
// (true) or lets the worker fetch them from the shared store (false).
func (s Strategy) NeedsPayload() bool { return s != NFSLoad }

// Message tags of the farm protocol.
const (
	// TagTask carries a batch descriptor (names, costs, sizes); an empty
	// batch tells the worker to stop, like the paper's [''] message.
	TagTask = 1
	// TagPayload carries the batch's problem payloads as a list of
	// serials (FullLoad and SerializedLoad only).
	TagPayload = 2
	// TagResult carries the batch's results back as a list of hashes.
	TagResult = 3
)

// Task is one pricing job of the portfolio.
type Task struct {
	// Name identifies the task; under NFSLoad it is the path the worker
	// reads from the shared store.
	Name string
	// Data is the problem's save-file content (nsp-serialized stream).
	Data []byte
	// Obj, when set, is the problem object itself. On communicators that
	// pass objects by reference (in-process worlds) it travels to the
	// worker without any serialization; on wire transports the loader
	// serializes it on demand. The object must not be mutated after the
	// task is handed to the farm.
	Obj nsp.Object
	// Cost is the task's virtual compute time in seconds, used by
	// simulated executors; live executors ignore it.
	Cost float64
}

// Result is one priced task as collected by the master.
type Result struct {
	// Name echoes the task name.
	Name string
	// Worker is the rank that computed the task.
	Worker int
	// Value is the result object produced by the worker's Executor (the
	// error-report hash when Err is set).
	Value nsp.Object
	// Err holds the worker-side pricing error, if the task failed on
	// every attempt.
	Err error
}

// Options configures a farm run.
type Options struct {
	// Strategy selects the communication strategy (default FullLoad).
	Strategy Strategy
	// BatchSize groups this many tasks per message exchange (default 1,
	// the paper's setting; larger values implement the latency
	// amortisation proposed in the conclusion).
	BatchSize int
	// MasterRank is the rank workers talk to (default 0); sub-masters in
	// a hierarchy override it.
	MasterRank int
	// MaxRetries is how many times the master re-farms a task whose
	// pricing failed on a worker (each retry goes to whichever worker is
	// free, usually a different one). Tasks failing every attempt come
	// back with Result.Err set. Transport and protocol errors are always
	// fatal regardless of this setting.
	MaxRetries int
	// Telemetry, when non-nil, receives the farm's metrics and spans:
	// queue-wait/serialize/task-latency histograms and per-task spans on
	// the master, fetch/compute histograms and spans on workers, and
	// per-worker busy gauges. Durations are read off the registry clock,
	// so a registry bound to a simulation clock records virtual seconds.
	// Nil (the default) disables instrumentation entirely.
	Telemetry *telemetry.Registry
	// LocalSpans declares that this worker shares its telemetry registry
	// with the master (in-process worlds): its finished spans land in the
	// master's trace table directly, so shipping them back with the
	// results would only be deduplicated away. Workers skip the span
	// payload and the event payload; masters ignore the flag.
	LocalSpans bool
	// Fleet, when non-nil, receives per-worker health updates from the
	// master: in-flight counts, completions, failures, redeals and EWMA
	// task durations, served at /debug/farm. Workers ignore it. One
	// Fleet may span many runs so worker history accumulates.
	Fleet *Fleet
}

func (o Options) batchSize() int {
	if o.BatchSize < 1 {
		return 1
	}
	return o.BatchSize
}

// descriptor field keys. The trace fields are present only on traced
// batches, so untraced runs keep the exact pre-tracing wire format.
const (
	descNames   = "names"
	descCosts   = "costs"
	descSizes   = "sizes"
	descTrace   = "trace"   // trace ID as a 1x2 matrix of 32-bit halves
	descParents = "parents" // per-task parent span IDs, 1x2k halves
)

// splitU64 / joinU64 carry 64-bit IDs through nsp float matrices as
// exact high/low 32-bit halves; a single float64 cannot hold them.
func splitU64(m *nsp.Mat, i int, v uint64) {
	m.Data[2*i] = float64(v >> 32)
	m.Data[2*i+1] = float64(uint32(v))
}

func joinU64(m *nsp.Mat, i int) (uint64, error) {
	hi, lo := m.Data[2*i], m.Data[2*i+1]
	const lim = 1 << 32
	if hi != math.Trunc(hi) || lo != math.Trunc(lo) || hi < 0 || lo < 0 || hi >= lim || lo >= lim {
		return 0, fmt.Errorf("id halves (%v, %v) out of range", hi, lo)
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// batchTrace is the trace context a batch carries over the wire: the
// trace ID plus one parent span ID per task, so a worker's farm.compute
// spans parent directly onto the master's farm.task spans.
type batchTrace struct {
	traceID uint64
	parents []uint64
}

func (bt batchTrace) valid() bool { return bt.traceID != 0 && len(bt.parents) > 0 }

// batchDesc is a decoded batch descriptor: task stubs (Data is not
// carried by the descriptor; sizes preserve the payload byte counts)
// plus the batch's trace context, if any.
type batchDesc struct {
	Names []string
	Costs []float64
	Sizes []float64
	Trace batchTrace
}

// encodeBatch builds the descriptor hash for a batch of tasks. An empty
// batch is the stop message. A valid bt (one parent per task) rides the
// descriptor; an invalid one leaves the descriptor untraced.
func encodeBatch(tasks []Task, bt batchTrace) *nsp.Hash {
	k := len(tasks)
	names := nsp.NewSMat(1, k)
	costs := nsp.NewMat(1, k)
	sizes := nsp.NewMat(1, k)
	for i, t := range tasks {
		names.Data[i] = t.Name
		costs.Data[i] = t.Cost
		sizes.Data[i] = float64(len(t.Data))
	}
	h := nsp.NewHash()
	h.Set(descNames, names)
	h.Set(descCosts, costs)
	h.Set(descSizes, sizes)
	if bt.valid() && len(bt.parents) == k {
		trace := nsp.NewMat(1, 2)
		splitU64(trace, 0, bt.traceID)
		parents := nsp.NewMat(1, 2*k)
		for i, p := range bt.parents {
			splitU64(parents, i, p)
		}
		h.Set(descTrace, trace)
		h.Set(descParents, parents)
	}
	return h
}

// decodeBatch parses a descriptor hash back into a batchDesc.
func decodeBatch(o nsp.Object) (batchDesc, error) {
	var d batchDesc
	h, ok := o.(*nsp.Hash)
	if !ok {
		return d, fmt.Errorf("farm: descriptor is %v, want hash", o.Kind())
	}
	nv, ok1 := h.Get(descNames)
	cv, ok2 := h.Get(descCosts)
	sv, ok3 := h.Get(descSizes)
	if !ok1 || !ok2 || !ok3 {
		return d, errors.New("farm: descriptor missing fields")
	}
	nm, ok1 := nv.(*nsp.SMat)
	cm, ok2 := cv.(*nsp.Mat)
	sm, ok3 := sv.(*nsp.Mat)
	if !ok1 || !ok2 || !ok3 {
		return d, errors.New("farm: descriptor fields have wrong types")
	}
	k := len(nm.Data)
	if len(cm.Data) != k || len(sm.Data) != k {
		return d, errors.New("farm: descriptor field lengths disagree")
	}
	d.Names, d.Costs, d.Sizes = nm.Data, cm.Data, sm.Data
	if tv, ok := h.Get(descTrace); ok {
		tm, ok := tv.(*nsp.Mat)
		if !ok || len(tm.Data) != 2 {
			return d, errors.New("farm: descriptor trace field malformed")
		}
		traceID, err := joinU64(tm, 0)
		if err != nil {
			return d, fmt.Errorf("farm: descriptor trace ID: %w", err)
		}
		pv, ok := h.Get(descParents)
		if !ok {
			return d, errors.New("farm: traced descriptor missing parents")
		}
		pm, ok := pv.(*nsp.Mat)
		if !ok || len(pm.Data) != 2*k {
			return d, errors.New("farm: descriptor parents malformed")
		}
		parents := make([]uint64, k)
		for i := range parents {
			if parents[i], err = joinU64(pm, i); err != nil {
				return d, fmt.Errorf("farm: descriptor parent %d: %w", i, err)
			}
		}
		d.Trace = batchTrace{traceID: traceID, parents: parents}
	}
	return d, nil
}

// Span-payload field keys. A traced worker appends one extra hash,
// marked by spanMarker, to its result list, carrying the SpanRecords it
// finished for the batch plus its descriptor-receive clock reading (so
// the master can shift worker clocks onto its own).
const (
	spanMarker  = "__spans"
	spanIDs     = "ids" // 1x2n matrix of 32-bit ID halves
	spanParents = "parents"
	spanTraces  = "traces"
	spanNames   = "names"  // intern table: the distinct span names
	spanNameIx  = "nameix" // per-span index into the intern table
	spanStarts  = "starts"
	spanEnds    = "ends"
	spanRecvAt  = "recvat"
)

// encodeSpanPayload packs finished worker spans for the trip back to the
// master. recvAt is the worker clock at descriptor receipt. Names are
// interned (a batch's spans repeat a handful of names) and IDs travel as
// split 32-bit halves, keeping the payload free of per-span strings.
func encodeSpanPayload(recs []telemetry.SpanRecord, recvAt float64) *nsp.Hash {
	n := len(recs)
	ids := nsp.NewMat(1, 2*n)
	parents := nsp.NewMat(1, 2*n)
	traces := nsp.NewMat(1, 2*n)
	nameIx := nsp.NewMat(1, n)
	starts := nsp.NewMat(1, n)
	ends := nsp.NewMat(1, n)
	var uniq []string
	for i, rec := range recs {
		splitU64(ids, i, rec.ID)
		splitU64(parents, i, rec.ParentID)
		splitU64(traces, i, rec.TraceID)
		ix := -1
		for j, s := range uniq {
			if s == rec.Name {
				ix = j
				break
			}
		}
		if ix < 0 {
			ix = len(uniq)
			uniq = append(uniq, rec.Name)
		}
		nameIx.Data[i] = float64(ix)
		starts.Data[i] = rec.Start
		ends.Data[i] = rec.End
	}
	names := nsp.NewSMat(1, len(uniq))
	copy(names.Data, uniq)
	h := nsp.NewHash()
	h.Set(spanMarker, nsp.Scalar(1))
	h.Set(spanIDs, ids)
	h.Set(spanParents, parents)
	h.Set(spanTraces, traces)
	h.Set(spanNames, names)
	h.Set(spanNameIx, nameIx)
	h.Set(spanStarts, starts)
	h.Set(spanEnds, ends)
	h.Set(spanRecvAt, nsp.Scalar(recvAt))
	return h
}

// isSpanPayload reports whether a result-list item is a span payload
// rather than a task result.
func isSpanPayload(o nsp.Object) bool {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return false
	}
	_, ok = h.Get(spanMarker)
	return ok
}

// decodeSpanPayload unpacks a span payload hash.
func decodeSpanPayload(o nsp.Object) ([]telemetry.SpanRecord, float64, error) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return nil, 0, errors.New("farm: span payload is not a hash")
	}
	get := func(key string) (nsp.Object, error) {
		v, ok := h.Get(key)
		if !ok {
			return nil, fmt.Errorf("farm: span payload missing %q", key)
		}
		return v, nil
	}
	mat := func(key string) (*nsp.Mat, error) {
		v, err := get(key)
		if err != nil {
			return nil, err
		}
		m, ok := v.(*nsp.Mat)
		if !ok {
			return nil, fmt.Errorf("farm: span payload %q has wrong type", key)
		}
		return m, nil
	}
	ids, err := mat(spanIDs)
	if err != nil {
		return nil, 0, err
	}
	parents, err := mat(spanParents)
	if err != nil {
		return nil, 0, err
	}
	traces, err := mat(spanTraces)
	if err != nil {
		return nil, 0, err
	}
	nv, err := get(spanNames)
	if err != nil {
		return nil, 0, err
	}
	names, ok := nv.(*nsp.SMat)
	if !ok {
		return nil, 0, fmt.Errorf("farm: span payload %q has wrong type", spanNames)
	}
	nameIx, err := mat(spanNameIx)
	if err != nil {
		return nil, 0, err
	}
	starts, err := mat(spanStarts)
	if err != nil {
		return nil, 0, err
	}
	ends, err := mat(spanEnds)
	if err != nil {
		return nil, 0, err
	}
	rv, err := mat(spanRecvAt)
	if err != nil || len(rv.Data) != 1 {
		return nil, 0, errors.New("farm: span payload recvat malformed")
	}
	n := len(nameIx.Data)
	if len(ids.Data) != 2*n || len(parents.Data) != 2*n || len(traces.Data) != 2*n ||
		len(starts.Data) != n || len(ends.Data) != n {
		return nil, 0, errors.New("farm: span payload field lengths disagree")
	}
	recs := make([]telemetry.SpanRecord, n)
	for i := range recs {
		if recs[i].ID, err = joinU64(ids, i); err != nil {
			return nil, 0, fmt.Errorf("farm: span payload id %d: %w", i, err)
		}
		if recs[i].ParentID, err = joinU64(parents, i); err != nil {
			return nil, 0, fmt.Errorf("farm: span payload parent %d: %w", i, err)
		}
		if recs[i].TraceID, err = joinU64(traces, i); err != nil {
			return nil, 0, fmt.Errorf("farm: span payload trace %d: %w", i, err)
		}
		ix := int(nameIx.Data[i])
		if float64(ix) != nameIx.Data[i] || ix < 0 || ix >= len(names.Data) {
			return nil, 0, fmt.Errorf("farm: span payload name index %d out of range", i)
		}
		recs[i].Name = names.Data[ix]
		recs[i].Start = starts.Data[i]
		recs[i].End = ends.Data[i]
	}
	return recs, rv.Data[0], nil
}

// resultHash builds the standard result object returned by executors.
func resultHash(name string, price, ci, delta, work float64) *nsp.Hash {
	h := nsp.NewHash()
	h.Set("name", nsp.Str(name))
	h.Set("price", nsp.Scalar(price))
	h.Set("priceCI", nsp.Scalar(ci))
	h.Set("delta", nsp.Scalar(delta))
	h.Set("work", nsp.Scalar(work))
	return h
}

// errorResultHash builds the result object reporting a pricing failure.
func errorResultHash(name, msg string) *nsp.Hash {
	h := nsp.NewHash()
	h.Set("name", nsp.Str(name))
	h.Set("error", nsp.Str(msg))
	return h
}

// resultError extracts the failure message from a result object, if any.
func resultError(o nsp.Object) (string, bool) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return "", false
	}
	v, ok := h.Get("error")
	if !ok {
		return "", false
	}
	s, ok := v.(*nsp.SMat)
	if !ok || s.Rows != 1 || s.Cols != 1 {
		return "", false
	}
	return s.StrValue(), true
}

// ResultField extracts a scalar field from a result object collected by
// the master, with a presence flag.
func ResultField(r Result, field string) (float64, bool) {
	h, ok := r.Value.(*nsp.Hash)
	if !ok {
		return 0, false
	}
	v, ok := h.Get(field)
	if !ok {
		return 0, false
	}
	m, ok := v.(*nsp.Mat)
	if !ok || m.Rows != 1 || m.Cols != 1 {
		return 0, false
	}
	return m.ScalarValue(), true
}

// resultName extracts the echoed task name from a result object.
func resultName(o nsp.Object) (string, error) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return "", fmt.Errorf("farm: result is %v, want hash", o.Kind())
	}
	v, ok := h.Get("name")
	if !ok {
		return "", errors.New("farm: result missing name")
	}
	s, ok := v.(*nsp.SMat)
	if !ok || s.Rows != 1 || s.Cols != 1 {
		return "", errors.New("farm: result name is not a string")
	}
	return s.StrValue(), nil
}
