package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
		{-6, 9.865876450376946e-10},
	}
	for _, c := range cases {
		got := NormCDF(c.x)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)) && math.Abs(got-c.want) > 1e-15 {
			t.Errorf("NormCDF(%v) = %.17g, want %.17g", c.x, got, c.want)
		}
	}
}

func TestNormPDFKnownValues(t *testing.T) {
	if got := NormPDF(0); math.Abs(got-invSqrt2Pi) > 1e-16 {
		t.Errorf("NormPDF(0) = %v", got)
	}
	if got := NormPDF(1); math.Abs(got-0.24197072451914337) > 1e-15 {
		t.Errorf("NormPDF(1) = %v", got)
	}
}

func TestInvNormCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-8, 0.001, 0.02425, 0.1, 0.25, 0.5, 0.75, 0.9, 0.97575, 0.999, 1 - 1e-8} {
		x := InvNormCDF(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-11*math.Max(p, 1e-3) && math.Abs(back-p) > 1e-14 {
			t.Errorf("NormCDF(InvNormCDF(%g)) = %g", p, back)
		}
	}
}

func TestInvNormCDFEdges(t *testing.T) {
	if !math.IsInf(InvNormCDF(0), -1) {
		t.Error("InvNormCDF(0) should be -Inf")
	}
	if !math.IsInf(InvNormCDF(1), 1) {
		t.Error("InvNormCDF(1) should be +Inf")
	}
	if !math.IsNaN(InvNormCDF(math.NaN())) {
		t.Error("InvNormCDF(NaN) should be NaN")
	}
	if InvNormCDF(0.5) != 0 {
		// Acklam central branch at exactly 0.5 gives 0 before refinement;
		// refinement keeps it 0 up to floating error.
		if math.Abs(InvNormCDF(0.5)) > 1e-15 {
			t.Errorf("InvNormCDF(0.5) = %v", InvNormCDF(0.5))
		}
	}
}

// TestInvNormCDFTailRoundTrip walks log-spaced probabilities down to
// p = 1e-320 (deep in the subnormal range) and checks that InvNormCDF
// stays finite and round-trips through NormCDF. Beyond p ≈ 1e-310 the
// refinement runs in its density-quotient form on subnormal
// intermediates, so the tolerance widens there: at p = 1e-320 the
// probability itself has only ~11 mantissa bits left.
func TestInvNormCDFTailRoundTrip(t *testing.T) {
	for k := 1; k <= 320; k++ {
		p := math.Pow(10, -float64(k))
		x := InvNormCDF(p)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("InvNormCDF(1e-%d) = %v, want finite", k, x)
		}
		back := NormCDF(x)
		tol := 1e-8
		if k > 300 {
			tol = 1e-2
		}
		if math.Abs(back-p) > tol*p {
			t.Errorf("NormCDF(InvNormCDF(1e-%d)) = %g, want %g (rel %g)", k, back, p, math.Abs(back-p)/p)
		}
	}
}

// TestInvNormCDFUpperTailRoundTrip mirrors the lower-tail walk near 1:
// for p = 1-10^-k the round trip is checked on the survival side via
// 0.5*Erfc(x/√2), since NormCDF(x) itself rounds to 1.0 there and would
// hide any tail error.
func TestInvNormCDFUpperTailRoundTrip(t *testing.T) {
	for k := 1; k <= 16; k++ {
		p := 1 - math.Pow(10, -float64(k))
		if p >= 1 {
			break
		}
		x := InvNormCDF(p)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("InvNormCDF(1-1e-%d) = %v, want finite", k, x)
		}
		// The accuracy floor near 1 is the 2⁻⁵³ spacing of doubles: the
		// Halley residual NormCDF(x)-p is quantized to ~1.1e-16 absolute,
		// which shows up as ~1e-7 relative in the recovered survival.
		q := 1 - p // the exactly-representable complement
		surv := 0.5 * math.Erfc(x/math.Sqrt2)
		if math.Abs(surv-q) > 1e-6*q {
			t.Errorf("survival(InvNormCDF(1-1e-%d)) = %g, want %g", k, surv, q)
		}
	}
}

// TestInvNormCDFExtremeEdges pins the tail-domain guarantee at the very
// ends of (0,1): the smallest subnormal and the largest double below 1
// must map to finite quantiles of the right sign, not NaN — the
// pre-fix Halley step returned Inf/-Inf = NaN here.
func TestInvNormCDFExtremeEdges(t *testing.T) {
	// At 5e-324 the Acklam fit is extrapolated well past its q ≈ 37.6
	// design range, so only finiteness and a deep-tail magnitude are
	// guaranteed, not the usual accuracy.
	lo := InvNormCDF(math.SmallestNonzeroFloat64) // p = 5e-324
	if math.IsNaN(lo) || math.IsInf(lo, 0) || lo > -35 {
		t.Errorf("InvNormCDF(5e-324) = %v, want finite below -35", lo)
	}
	hi := InvNormCDF(math.Nextafter(1, 0)) // p = 1 - 2^-53
	if math.IsNaN(hi) || math.IsInf(hi, 0) || hi < 8 {
		t.Errorf("InvNormCDF(1-2^-53) = %v, want finite above 8", hi)
	}
}

// TestInvNormCDFBatchBitIdentical checks that the batched form used by
// the SoA kernels is bit-for-bit the scalar function, including the
// edge conventions for 0, 1, NaN and subnormal inputs.
func TestInvNormCDFBatchBitIdentical(t *testing.T) {
	ps := []float64{
		0, 1, math.NaN(), -0.5, 2,
		math.SmallestNonzeroFloat64, 1e-320, 1e-300, 1e-100, 1e-12,
		0.02425, 0.3, 0.5, 0.7, 1 - 0.02425, 0.999, 1 - 1e-12, math.Nextafter(1, 0),
	}
	rng := NewRNG(7)
	for i := 0; i < 100; i++ {
		ps = append(ps, rng.Float64Open())
	}
	dst := make([]float64, len(ps))
	InvNormCDFBatch(dst, ps)
	for i, p := range ps {
		want := InvNormCDF(p)
		if math.IsNaN(want) {
			if !math.IsNaN(dst[i]) {
				t.Errorf("batch[%d] = %v, want NaN", i, dst[i])
			}
			continue
		}
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Errorf("batch[%d] for p=%g: %x, scalar %x", i, p, math.Float64bits(dst[i]), math.Float64bits(want))
		}
	}
}

func TestInvNormCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return InvNormCDF(pa) <= InvNormCDF(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 10)
		return math.Abs(NormCDF(x)+NormCDF(-x)-1) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
