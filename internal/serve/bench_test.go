package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"riskbench/internal/risk"
)

// benchPost drives one request through the handler like postJSON, but
// builds the request struct directly instead of going through
// httptest.NewRequest, whose http.ReadRequest parse allocates a 4 KiB
// bufio reader per call. The benchmarks measure the serving path, so
// the harness should not dominate the allocation profile.
func benchPost(s *Server, path, body string) *httptest.ResponseRecorder {
	req := &http.Request{
		Method:     http.MethodPost,
		URL:        &url.URL{Path: path},
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(body)),
		Host:       "example.com",
		RemoteAddr: "192.0.2.1:1234",
		RequestURI: path,
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// BenchmarkServeBatching measures request throughput of an in-process
// server at micro-batch sizes 1, 16 and 64 — the serving-layer analogue
// of the farm's BatchSize sweep — and, at the recommended batch-16
// setting, across the farm worker transports (local goroutine world vs
// the framed hub over tcp, unix and inproc). Every request is a distinct
// cheap closed-form problem, so the cache never hits and each request
// costs one real pricing — what varies is how many ride per farm flush
// and which wire carries them. On one host the unix transport should
// beat tcp: same framed path, no TCP/IP stack.
//
//	go test -bench BenchmarkServeBatching ./internal/serve
func BenchmarkServeBatching(b *testing.B) {
	cases := []struct {
		batch     int
		transport string
	}{
		{1, "local"}, {16, "local"}, {64, "local"},
		{16, "tcp"}, {16, "unix"}, {16, "inproc"},
	}
	for _, tc := range cases {
		size := tc.batch
		b.Run(fmt.Sprintf("batch=%d/transport=%s", size, tc.transport), func(b *testing.B) {
			eng := &risk.Engine{Workers: 4, BatchSize: size}
			if tc.transport != "local" {
				eng.Backend = &risk.NetBackend{Transport: tc.transport, Spawn: risk.GoNetWorkers(nil, 0)}
			}
			s := New(Config{
				Engine:   eng,
				MaxBatch: size,
				MaxDelay: 200 * time.Microsecond,
				// Distinct strikes → no cache reuse; keep the map small.
				CacheSize:   1024,
				MaxInflight: 4096,
				MaxQueue:    4096,
			})
			defer s.Close()
			var next atomic.Int64
			// Many client goroutines per core, so batches can fill even
			// on small machines — the point is coalescing concurrent
			// requests, not saturating CPUs.
			b.SetParallelism(128)
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := 50 + float64(next.Add(1)%100000)/1000
					w := benchPost(s, "/price", cfBody(k))
					if w.Code != http.StatusOK {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
			})
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "req/s")
			}
		})
	}
}

// BenchmarkServeEvents measures the flight recorder's toll on the
// serving hot path at the recommended batch-16 setting: identical load
// with the event log + SLO monitor on and off. The steady-state request
// path emits no events at all (events mark anomalies — rejects,
// deadline misses, breaches), so the measurable cost is the SLO
// monitor's background tick plus the disabled-check branches; the gap
// should stay within the 5% ISSUE budget.
//
//	go test -bench BenchmarkServeEvents ./internal/serve
func BenchmarkServeEvents(b *testing.B) {
	for _, events := range []bool{true, false} {
		name := "events=on"
		if !events {
			name = "events=off"
		}
		b.Run(name, func(b *testing.B) {
			s := New(Config{
				Engine:        &risk.Engine{Workers: 4, BatchSize: 16},
				MaxBatch:      16,
				MaxDelay:      200 * time.Microsecond,
				CacheSize:     1024,
				MaxInflight:   4096,
				MaxQueue:      4096,
				DisableEvents: !events,
			})
			defer s.Close()
			var next atomic.Int64
			b.SetParallelism(128)
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := 50 + float64(next.Add(1)%100000)/1000
					w := benchPost(s, "/price", cfBody(k))
					if w.Code != http.StatusOK {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
			})
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "req/s")
			}
		})
	}
}

// BenchmarkServeTracing measures the cost of per-request distributed
// tracing at the recommended batch-16 setting: identical load with
// tracing on and off. The trace machinery is a handful of span
// allocations plus hex codec on the farm wire per request, so the
// on/off gap should stay within a few percent (the ISSUE budget is 5%).
//
//	go test -bench BenchmarkServeTracing ./internal/serve
func BenchmarkServeTracing(b *testing.B) {
	for _, tracing := range []bool{true, false} {
		name := "tracing=on"
		if !tracing {
			name = "tracing=off"
		}
		b.Run(name, func(b *testing.B) {
			s := New(Config{
				Engine:         &risk.Engine{Workers: 4, BatchSize: 16},
				MaxBatch:       16,
				MaxDelay:       200 * time.Microsecond,
				CacheSize:      1024,
				MaxInflight:    4096,
				MaxQueue:       4096,
				DisableTracing: !tracing,
			})
			defer s.Close()
			var next atomic.Int64
			b.SetParallelism(128)
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := 50 + float64(next.Add(1)%100000)/1000
					w := benchPost(s, "/price", cfBody(k))
					if w.Code != http.StatusOK {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
			})
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "req/s")
			}
		})
	}
}
