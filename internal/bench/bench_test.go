package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"riskbench/internal/farm"
	"riskbench/internal/portfolio"
	"riskbench/internal/simnet"
)

func uniformTasks(n int, cost float64) []farm.Task {
	tasks := make([]farm.Task, n)
	for i := range tasks {
		tasks[i] = farm.Task{Name: fmt.Sprintf("u%05d", i), Data: make([]byte, 300), Cost: cost}
	}
	return tasks
}

func TestRunRejectsBadConfigs(t *testing.T) {
	tasks := uniformTasks(10, 1)
	if _, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 1, Strategy: farm.SerializedLoad}); err == nil {
		t.Error("1 CPU accepted")
	}
	if _, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 4, Strategy: farm.NFSLoad}); err == nil {
		t.Error("NFS without FS accepted")
	}
	if _, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 5, Strategy: farm.SerializedLoad, Scheduler: Hierarchical, Groups: 4}); err == nil {
		t.Error("hierarchy without enough CPUs accepted")
	}
}

func TestRunLinearRegime(t *testing.T) {
	// Long tasks, few workers: near-perfect speedup ratio, like the top
	// rows of every table.
	tasks := uniformTasks(400, 1.0)
	t2, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 2, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 8, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	ratio := t2 / (7 * t8)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("speedup ratio %v in the linear regime, want ≈1", ratio)
	}
}

func TestTableIShape(t *testing.T) {
	spec := TableI()
	spec.MaxCPUs = 64
	tbl, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cpus int) Cell {
		for _, r := range tbl.Rows {
			if r.CPUs == cpus {
				return r.Cells[farm.SerializedLoad]
			}
		}
		t.Fatalf("row %d missing", cpus)
		return Cell{}
	}
	// Paper: almost linear for <= 16 CPUs, collapsing afterwards.
	if r := get(16).Ratio; r < 0.8 {
		t.Errorf("ratio at 16 CPUs = %v, want near-linear (>0.8)", r)
	}
	if r64, r16 := get(64).Ratio, get(16).Ratio; r64 > 0.65*r16 {
		t.Errorf("no collapse: ratio 64 = %v vs 16 = %v", r64, r16)
	}
	// Monotone makespan.
	prev := get(2).Time
	for _, cpus := range []int{4, 6, 8, 10, 16, 32, 64} {
		cur := get(cpus).Time
		if cur > prev*1.01 {
			t.Errorf("makespan increased at %d CPUs: %v -> %v", cpus, prev, cur)
		}
		prev = cur
	}
}

func TestTableIIShape(t *testing.T) {
	spec := TableII()
	spec.Portfolio = portfolio.Toy(3000) // smaller for test speed, same regime
	spec.MaxCPUs = 16
	tbl, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		full := row.Cells[farm.FullLoad].Time
		ser := row.Cells[farm.SerializedLoad].Time
		if ser >= full {
			t.Errorf("%d CPUs: serialized %v not faster than full %v (the paper's only objective comparison)",
				row.CPUs, ser, full)
		}
	}
	// Cold first row: NFS slower than serialized; warm later rows at high
	// CPU counts: NFS faster (the paper's crossover).
	first := tbl.Rows[0]
	if first.Cells[farm.NFSLoad].Time <= first.Cells[farm.SerializedLoad].Time {
		t.Errorf("cold NFS %v not slower than serialized %v",
			first.Cells[farm.NFSLoad].Time, first.Cells[farm.SerializedLoad].Time)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last.Cells[farm.NFSLoad].Time >= last.Cells[farm.SerializedLoad].Time {
		t.Errorf("warm NFS %v not faster than serialized %v at %d CPUs",
			last.Cells[farm.NFSLoad].Time, last.Cells[farm.SerializedLoad].Time, last.CPUs)
	}
}

func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full realistic sweep is slow")
	}
	spec := TableIII()
	spec.MaxCPUs = 128
	tbl, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for _, s := range spec.Strategies {
			c := row.Cells[s]
			// Paper: "computation times are fairly the same no matter how
			// the objects are sent" and ratios stay above 0.8 well past
			// 100 CPUs.
			if row.CPUs <= 128 && c.Ratio < 0.8 {
				t.Errorf("%d CPUs %v: ratio %v below the paper's >0.8 regime", row.CPUs, s, c.Ratio)
			}
		}
		full := row.Cells[farm.FullLoad].Time
		ser := row.Cells[farm.SerializedLoad].Time
		if diff := (full - ser) / full; diff < -0.05 || diff > 0.25 {
			t.Errorf("%d CPUs: strategies diverge too much: full %v vs serialized %v", row.CPUs, full, ser)
		}
	}
}

func TestSchedulingAblation(t *testing.T) {
	// Heterogeneous costs: Robin Hood must beat static assignment.
	pf := portfolio.Regression()
	tasks, err := pf.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad, Scheduler: StaticBlock})
	if err != nil {
		t.Fatal(err)
	}
	if dyn >= static {
		t.Errorf("Robin Hood %v not faster than static %v on heterogeneous tasks", dyn, static)
	}
}

func TestHierarchicalAblation(t *testing.T) {
	// Communication-bound workload at high CPU counts: sub-masters relieve
	// the root (the paper's proposed improvement).
	tasks := uniformTasks(4000, 0.0)
	flat, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 65, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 65, Strategy: farm.SerializedLoad,
		Scheduler: Hierarchical, Groups: 4, Chunk: 32})
	if err != nil {
		t.Fatal(err)
	}
	if hier >= flat {
		t.Errorf("hierarchy %v not faster than flat %v on a communication-bound workload", hier, flat)
	}
}

func TestBatchingAblation(t *testing.T) {
	tasks := uniformTasks(4000, 0.0)
	single, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 17, Strategy: farm.SerializedLoad, BatchSize: 25})
	if err != nil {
		t.Fatal(err)
	}
	if batched >= single {
		t.Errorf("batch 25 %v not faster than batch 1 %v", batched, single)
	}
}

func TestRunDeterministic(t *testing.T) {
	tasks := uniformTasks(500, 0.02)
	a, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 9, Strategy: farm.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 9, Strategy: farm.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestNFSClockResetAcrossRuns(t *testing.T) {
	// Regression test for the stale-server-clock bug: reusing one NFS
	// model across engine runs must not stall the second run.
	tasks := uniformTasks(200, 0.001)
	fs := simnet.NewNFS(simnet.DefaultNFS)
	t1, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 4, Strategy: farm.NFSLoad, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 4, Strategy: farm.NFSLoad, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if t2 > t1 {
		t.Fatalf("warm rerun slower than cold run: %v vs %v", t2, t1)
	}
}

func TestFormatContainsPaperLabels(t *testing.T) {
	spec := TableII()
	spec.Portfolio = portfolio.Toy(50)
	spec.MaxCPUs = 4
	tbl, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	for _, want := range []string{"Table II", "full load", "NFS", "serialized load", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestSchedulerStrings(t *testing.T) {
	if RobinHood.String() != "robin-hood" || StaticBlock.String() != "static" || Hierarchical.String() != "hierarchical" {
		t.Error("scheduler names wrong")
	}
	if Scheduler(9).String() == "" {
		t.Error("unknown scheduler empty")
	}
}

func TestCompressionAblation(t *testing.T) {
	pf := portfolio.Toy(2000)
	tasks, err := pf.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	ctasks, err := CompressTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	rawB, compB := CompressionSavings(tasks, ctasks)
	if compB >= rawB {
		t.Fatalf("compression did not shrink payloads: %d -> %d", rawB, compB)
	}
	// On a bandwidth-starved link the compressed payloads win.
	slow := simnet.LinkConfig{Latency: 80e-6, Bandwidth: 1e6, SendOverhead: 25e-6, RecvOverhead: 25e-6}
	raw, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 9, Strategy: farm.SerializedLoad, Link: slow})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(context.Background(), RunConfig{Tasks: ctasks, CPUs: 9, Strategy: farm.SerializedLoad, Link: slow})
	if err != nil {
		t.Fatal(err)
	}
	if comp >= raw {
		t.Errorf("compressed payloads %v not faster than raw %v on a slow link", comp, raw)
	}
}

func TestSlowNodesDegradeSpeedup(t *testing.T) {
	tasks := uniformTasks(400, 0.5)
	clean, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 9, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 9, Strategy: farm.SerializedLoad,
		SlowFraction: 0.5, SlowFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if hetero <= clean {
		t.Errorf("heterogeneous run %v not slower than clean %v", hetero, clean)
	}
	// Robin Hood adapts: makespan stays below the all-slow worst case
	// (every task at half speed would double the clean time).
	if hetero >= 2*clean {
		t.Errorf("Robin Hood failed to adapt: %v vs clean %v", hetero, clean)
	}
	// Static assignment on the same heterogeneous cluster is hurt more.
	static, err := Run(context.Background(), RunConfig{Tasks: tasks, CPUs: 9, Strategy: farm.SerializedLoad,
		Scheduler: StaticBlock, SlowFraction: 0.5, SlowFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if static <= hetero {
		t.Errorf("static %v not slower than Robin Hood %v on slow nodes", static, hetero)
	}
}

func TestRunWithStatsUtilization(t *testing.T) {
	// Compute-bound run: workers near fully busy; master barely busy.
	tasks := uniformTasks(400, 1.0)
	stats, err := RunWithStats(context.Background(), RunConfig{Tasks: tasks, CPUs: 5, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.WorkerUtilization) != 4 {
		t.Fatalf("%d utilization entries", len(stats.WorkerUtilization))
	}
	if stats.MeanUtilization < 0.95 {
		t.Errorf("compute-bound mean utilization %v, want ≈1", stats.MeanUtilization)
	}
	if stats.MasterBusy > 0.1*stats.Makespan {
		t.Errorf("master busy %v of %v on a compute-bound run", stats.MasterBusy, stats.Makespan)
	}
	// Communication-bound run: workers mostly idle (the paper's "many
	// nodes are waiting for some more work to do").
	idleTasks := uniformTasks(2000, 0.0)
	idle, err := RunWithStats(context.Background(), RunConfig{Tasks: idleTasks, CPUs: 33, Strategy: farm.SerializedLoad})
	if err != nil {
		t.Fatal(err)
	}
	if idle.MeanUtilization > 0.3 {
		t.Errorf("communication-bound mean utilization %v, want low", idle.MeanUtilization)
	}
}

func TestRunWithStatsRejectsHierarchical(t *testing.T) {
	if _, err := RunWithStats(context.Background(), RunConfig{Tasks: uniformTasks(5, 1), CPUs: 7, Scheduler: Hierarchical}); err == nil {
		t.Fatal("hierarchical accepted")
	}
}
