package portfolio

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"riskbench/internal/premia"
)

func TestRealisticComposition(t *testing.T) {
	pf := Realistic()
	if pf.Size() != 7931 {
		t.Fatalf("realistic portfolio has %d claims, want 7931 (paper §4.3)", pf.Size())
	}
	counts := map[string]int{}
	for _, it := range pf.Items {
		class := strings.SplitN(it.Name, "-", 2)[0]
		counts[class]++
	}
	want := map[string]int{
		"vanilla": 1952, "barrier": 1952, "basket": 525,
		"locvol": 1025, "amerpde": 1952, "amermc": 525,
	}
	for class, n := range want {
		if counts[class] != n {
			t.Errorf("class %s: %d claims, want %d", class, counts[class], n)
		}
	}
}

func TestRealisticTotalWorkMatchesTableIII(t *testing.T) {
	pf := Realistic()
	total := pf.TotalCost()
	// The paper's 2-CPU (1-worker) run took 5770 s; the virtual total work
	// must land in that neighbourhood.
	if total < 4500 || total > 7000 {
		t.Fatalf("total virtual work %.0f s, want ≈5770 s", total)
	}
	if m := pf.MaxCost(); m > 30 {
		t.Errorf("max claim cost %.1f s too large for Table III's 512-CPU makespan of ~20 s", m)
	}
}

func TestRealisticCostOrdering(t *testing.T) {
	pf := Realistic()
	classTotal := map[string]float64{}
	classCount := map[string]int{}
	for _, it := range pf.Items {
		class := strings.SplitN(it.Name, "-", 2)[0]
		classTotal[class] += it.Cost
		classCount[class]++
	}
	avg := func(c string) float64 { return classTotal[c] / float64(classCount[c]) }
	// §4.3: vanillas almost instantaneous; American products the longest.
	if avg("vanilla") > 0.01 {
		t.Errorf("vanilla average cost %.4f s not near-instantaneous", avg("vanilla"))
	}
	if avg("amermc") <= avg("locvol") || avg("amermc") <= avg("barrier") {
		t.Errorf("American MC average %.2f not the most expensive (locvol %.2f, barrier %.2f)",
			avg("amermc"), avg("locvol"), avg("barrier"))
	}
}

func TestRealisticProblemsValid(t *testing.T) {
	pf := Realistic()
	for _, it := range pf.Items {
		if err := it.Problem.Validate(); err != nil {
			t.Fatalf("%s: %v", it.Name, err)
		}
		if it.Cost <= 0 || math.IsNaN(it.Cost) {
			t.Fatalf("%s: cost %v", it.Name, it.Cost)
		}
	}
}

func TestRealisticSampleComputesLive(t *testing.T) {
	// One claim per class must actually price when MC sizes are reduced.
	pf := Realistic()
	seen := map[string]bool{}
	for _, it := range pf.Items {
		class := strings.SplitN(it.Name, "-", 2)[0]
		if seen[class] {
			continue
		}
		seen[class] = true
		p := it.Problem.Clone()
		// Shrink numerical effort so the test stays fast.
		if _, ok := p.Params["paths"]; ok {
			p.Set("paths", 2000)
		}
		if _, ok := p.Params["mcsteps"]; ok {
			p.Set("mcsteps", 16)
		}
		if _, ok := p.Params["exdates"]; ok {
			p.Set("exdates", 10)
		}
		if _, ok := p.Params["steps"]; ok && p.Method != premia.MethodTreeCRR {
			p.Set("steps", 60)
		}
		if _, ok := p.Params["nodes"]; ok {
			p.Set("nodes", 120)
		}
		res, err := p.Compute()
		if err != nil {
			t.Fatalf("%s (%s): %v", it.Name, p, err)
		}
		if math.IsNaN(res.Price) || res.Price < 0 {
			t.Fatalf("%s: price %v", it.Name, res.Price)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("found %d classes, want 6", len(seen))
	}
}

func TestToyPortfolio(t *testing.T) {
	pf := Toy(10000)
	if pf.Size() != 10000 {
		t.Fatalf("toy size %d", pf.Size())
	}
	// All closed-form vanillas, all cheap.
	for _, it := range pf.Items[:100] {
		if it.Problem.Method != premia.MethodCFCall {
			t.Fatalf("%s uses %s", it.Name, it.Problem.Method)
		}
		if it.Cost > 0.01 {
			t.Fatalf("%s cost %v not near-free", it.Name, it.Cost)
		}
	}
	// Total ≈ 10000 × 0.2 ms ≈ 2 s of work: the 1-worker run of Table II
	// is dominated by communication, not compute.
	if total := pf.TotalCost(); total < 1 || total > 4 {
		t.Errorf("toy total work %.2f s, want ≈2 s", total)
	}
}

func TestRegressionSuite(t *testing.T) {
	pf := Regression()
	if pf.Size() < 150 {
		t.Fatalf("regression suite has only %d tests", pf.Size())
	}
	total := pf.TotalCost()
	// Table I: 2-CPU run took 838 s; the generator targets that order of
	// magnitude.
	if total < 400 || total > 2000 {
		t.Errorf("regression total work %.0f s, want same order as 838 s", total)
	}
	// The makespan floor of Table I (~30 s above 96 CPUs) comes from the
	// longest single test.
	if m := pf.MaxCost(); m < 15 || m > 80 {
		t.Errorf("longest regression test %.1f s, want ≈30 s", m)
	}
}

func TestRegressionCoversEveryMethod(t *testing.T) {
	pf := Regression()
	used := map[string]bool{}
	for _, it := range pf.Items {
		used[it.Problem.Method] = true
	}
	for _, m := range premia.Methods() {
		if !used[m] {
			t.Errorf("method %s not covered by the regression suite", m)
		}
	}
}

func TestRegressionAllComputeLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live regression pricing is slow")
	}
	pf := Regression()
	// Price one variant of each distinct triple for real.
	seen := map[string]bool{}
	for _, it := range pf.Items {
		key := it.Problem.Model + "/" + it.Problem.Option + "/" + it.Problem.Method
		if seen[key] {
			continue
		}
		seen[key] = true
		res, err := it.Problem.Compute()
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if math.IsNaN(res.Price) || res.Price < -1e-9 {
			t.Fatalf("%s: price %v", key, res.Price)
		}
	}
}

func TestTasksRoundTrip(t *testing.T) {
	pf := Toy(50)
	tasks, err := pf.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 50 {
		t.Fatalf("%d tasks", len(tasks))
	}
	for i, task := range tasks {
		if task.Name != pf.Items[i].Name || task.Cost != pf.Items[i].Cost {
			t.Fatalf("task %d metadata mismatch", i)
		}
		if len(task.Data) < 50 {
			t.Fatalf("task %d payload only %d bytes", i, len(task.Data))
		}
	}
}

func TestSaveDirAndReload(t *testing.T) {
	pf := Toy(5)
	dir := t.TempDir()
	paths, err := pf.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("%d paths", len(paths))
	}
	back, err := premia.Load(filepath.Join(dir, pf.Items[0].Name+".bin"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pf.Items[0].Problem.Compute()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if got.Price != want.Price {
		t.Fatal("reloaded problem prices differently")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := Realistic(), Realistic()
	if a.Size() != b.Size() {
		t.Fatal("sizes differ")
	}
	for i := range a.Items {
		if a.Items[i].Cost != b.Items[i].Cost || a.Items[i].Name != b.Items[i].Name {
			t.Fatalf("item %d differs between generations", i)
		}
	}
}

func TestCalibrateCosts(t *testing.T) {
	pf := Toy(50)
	before := make([]float64, len(pf.Items))
	for i, it := range pf.Items {
		before[i] = it.Cost
	}
	if err := pf.CalibrateCosts(0.5); err != nil {
		t.Fatal(err)
	}
	// Positive, finite, and relative jitter preserved.
	ratio := pf.Items[0].Cost / before[0]
	for i, it := range pf.Items {
		if it.Cost <= 0 || math.IsNaN(it.Cost) || math.IsInf(it.Cost, 0) {
			t.Fatalf("item %d cost %v", i, it.Cost)
		}
		r := it.Cost / before[i]
		if math.Abs(r-ratio) > 1e-9*ratio {
			t.Fatalf("item %d scaled by %v, class by %v", i, r, ratio)
		}
	}
}

func TestCalibrateCostsRealisticSample(t *testing.T) {
	if testing.Short() {
		t.Skip("live calibration prices one claim per class")
	}
	// A thin slice of the realistic portfolio: one claim per class.
	full := Realistic()
	seen := map[string]bool{}
	pf := &Portfolio{Name: "slice"}
	for _, it := range full.Items {
		class := strings.SplitN(it.Name, "-", 2)[0]
		if seen[class] {
			continue
		}
		seen[class] = true
		pf.Items = append(pf.Items, it)
	}
	if err := pf.CalibrateCosts(0.01); err != nil {
		t.Fatal(err)
	}
	for _, it := range pf.Items {
		if it.Cost <= 0 {
			t.Fatalf("%s calibrated to %v", it.Name, it.Cost)
		}
	}
}

func TestCalibrateCostsRejectsBadShrink(t *testing.T) {
	pf := Toy(5)
	if err := pf.CalibrateCosts(0); err == nil {
		t.Fatal("shrink 0 accepted")
	}
	if err := pf.CalibrateCosts(1.5); err == nil {
		t.Fatal("shrink > 1 accepted")
	}
}

func TestMixedPortfolio(t *testing.T) {
	pf := Mixed(200)
	if pf.Size() != 200 {
		t.Fatalf("size %d", pf.Size())
	}
	classes := map[string]int{}
	for _, it := range pf.Items {
		if err := it.Problem.Validate(); err != nil {
			t.Fatalf("%s: %v", it.Name, err)
		}
		classes[strings.SplitN(it.Name, "-", 2)[0]]++
	}
	if classes["eq"] != 120 || classes["rate"] != 50 || classes["credit"] != 30 {
		t.Fatalf("class split %v", classes)
	}
	// Every claim prices live.
	for _, it := range pf.Items {
		res, err := it.Problem.Compute()
		if err != nil {
			t.Fatalf("%s: %v", it.Name, err)
		}
		if math.IsNaN(res.Price) || res.Price < 0 {
			t.Fatalf("%s: price %v", it.Name, res.Price)
		}
	}
}

func TestMixedPortfolioFarms(t *testing.T) {
	// The mixed book survives the full serialization + farm path.
	pf := Mixed(60)
	tasks, err := pf.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 60 {
		t.Fatalf("%d tasks", len(tasks))
	}
	// Serialize/rebuild one rate and one credit claim explicitly.
	for _, i := range []int{40, 55} {
		h, err := pf.Items[i].Problem.ToNsp()
		if err != nil {
			t.Fatal(err)
		}
		back, err := premia.FromNsp(h)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pf.Items[i].Problem.Compute()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Compute()
		if err != nil {
			t.Fatal(err)
		}
		if a.Price != b.Price {
			t.Fatalf("item %d: price changed through nsp round trip", i)
		}
	}
}
