// Package nsp reimplements the slice of the Nsp scientific-software object
// system that the Premia/Nsp/MPI benchmark relies on: a small set of typed
// values (real matrices, boolean matrices, string matrices, heterogeneous
// lists, hash tables and opaque serial buffers), a binary serialization
// format shared between in-memory serials and on-disk save files, optional
// flate compression of serials, and an XDR-style architecture-independent
// codec used to persist pricing problems.
//
// The crucial property reproduced from Nsp is that the on-disk save format
// IS the serialization format: SLoad can therefore turn a saved file into a
// transmissible Serial object without ever reconstructing the value — the
// "serialized load" communication strategy of the paper (its Fig. 2).
package nsp
