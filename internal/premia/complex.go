package premia

import "math/cmplx"

// Thin aliases over math/cmplx so the pricing formulas read like the
// mathematical notation in the references.

func cmplxExp(z complex128) complex128  { return cmplx.Exp(z) }
func cmplxLog(z complex128) complex128  { return cmplx.Log(z) }
func cmplxSqrt(z complex128) complex128 { return cmplx.Sqrt(z) }
