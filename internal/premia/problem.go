package premia

import (
	"bytes"
	"errors"
	"fmt"

	"riskbench/internal/nsp"
)

// Problem is the Go counterpart of Premia's PremiaModel object: the choice
// of an asset class, a model for the underlying, a financial product and a
// numerical method, plus the flat parameter set. The zero value is not
// usable; start from New.
type Problem struct {
	// Asset is the asset class; only "equity" is registered, as in the
	// paper's experiments.
	Asset string
	// Model names the dynamics of the underlying (see models.go).
	Model string
	// Option names the financial product.
	Option string
	// Method names the numerical method used by Compute.
	Method string
	// Params holds every numeric parameter of the triple.
	Params Params
}

// Result holds the output of a pricing computation, mirroring the
// get_method_results content of Premia (price, delta and Monte Carlo
// confidence half-widths when applicable).
type Result struct {
	// Price is the computed option price.
	Price float64
	// PriceCI is the 95% confidence half-width for Monte Carlo methods and
	// 0 for deterministic methods.
	PriceCI float64
	// Delta is the first derivative of the price with respect to spot.
	Delta float64
	// HasDelta reports whether the method computed a delta.
	HasDelta bool
	// Work is an abstract operation count (grid nodes × steps, paths ×
	// steps, …) that the benchmark's cluster simulator converts into
	// virtual compute time; it makes task costs reproducible without
	// depending on host speed.
	Work float64
}

// New returns an empty problem for the equity asset class with default
// spot/rate parameters, like premia_create followed by set_asset.
func New() *Problem {
	return &Problem{Asset: "equity", Params: Params{}}
}

// SetAsset selects the asset class ("equity" by default, "rate" for the
// interest-rate products).
func (p *Problem) SetAsset(name string) *Problem { p.Asset = name; return p }

// SetModel selects the model by name; unknown names are rejected at
// Compute time so problems can be built before the registry is consulted.
func (p *Problem) SetModel(name string) *Problem { p.Model = name; return p }

// SetOption selects the financial product by name.
func (p *Problem) SetOption(name string) *Problem { p.Option = name; return p }

// SetMethod selects the numerical method by name.
func (p *Problem) SetMethod(name string) *Problem { p.Method = name; return p }

// Set assigns one parameter and returns the problem for chaining.
func (p *Problem) Set(key string, v float64) *Problem {
	if p.Params == nil {
		p.Params = Params{}
	}
	p.Params[key] = v
	return p
}

// SetSeed stores the Monte Carlo seed with full 64-bit fidelity. Params
// values are float64, which represents only 53-bit integers exactly, so
// the seed is split into two 32-bit halves — "seed" (low) and "seedhi"
// (high) — each of which survives the float round trip; mcSeed
// reassembles them. Seeds below 2^32 may equivalently be set through
// Set("seed", …), as before.
func (p *Problem) SetSeed(seed uint64) *Problem {
	p.Set(mcSeedKey, float64(seed&0xffffffff))
	return p.Set(mcSeedHiKey, float64(seed>>32))
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	return &Problem{Asset: p.Asset, Model: p.Model, Option: p.Option, Method: p.Method, Params: p.Params.Clone()}
}

// String renders the triple compactly for logs and error messages.
func (p *Problem) String() string {
	return fmt.Sprintf("%s/%s/%s/%s", p.Asset, p.Model, p.Option, p.Method)
}

// Validate checks that the triple is registered and compatible, without
// computing anything. Failures wrap the package's sentinel errors
// (ErrUnknownMethod, ErrUnknownModel, ErrUnknownOption) for errors.Is.
func (p *Problem) Validate() error {
	spec, ok := methods[p.Method]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownMethod, p.Method)
	}
	if spec.asset != p.Asset {
		return fmt.Errorf("%w: method %q belongs to asset class %q, problem says %q", ErrUnknownModel, p.Method, spec.asset, p.Asset)
	}
	if !spec.models[p.Model] {
		return fmt.Errorf("%w: method %q does not support model %q", ErrUnknownModel, p.Method, p.Model)
	}
	if !spec.options[p.Option] {
		return fmt.Errorf("%w: method %q does not support option %q", ErrUnknownOption, p.Method, p.Option)
	}
	return nil
}

// Compute runs the selected numerical method and returns its result. It is
// the P.compute[] of the paper's scripts.
func (p *Problem) Compute() (Result, error) {
	if err := p.Validate(); err != nil {
		countError()
		return Result{}, err
	}
	res, err := instrument(p.Method, methods[p.Method].fn, p)
	if err != nil {
		countError()
		return Result{}, err
	}
	return res, nil
}

// errNil guards the nsp bridge against nil receivers.
var errNil = errors.New("premia: nil problem")

// ToNsp converts the problem into an nsp hash table, the form in which
// problems travel through the message-passing layer.
func (p *Problem) ToNsp() (*nsp.Hash, error) {
	if p == nil {
		return nil, errNil
	}
	h := nsp.NewHash()
	h.Set("asset", nsp.Str(p.Asset))
	h.Set("model", nsp.Str(p.Model))
	h.Set("option", nsp.Str(p.Option))
	h.Set("method", nsp.Str(p.Method))
	params := nsp.NewHash()
	for k, v := range p.Params {
		params.Set(k, nsp.Scalar(v))
	}
	h.Set("params", params)
	return h, nil
}

// FromNsp rebuilds a problem from the hash produced by ToNsp.
func FromNsp(o nsp.Object) (*Problem, error) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return nil, fmt.Errorf("premia: expected hash, got %v", o.Kind())
	}
	p := New()
	for field, dst := range map[string]*string{
		"asset": &p.Asset, "model": &p.Model, "option": &p.Option, "method": &p.Method,
	} {
		v, ok := h.Get(field)
		if !ok {
			return nil, fmt.Errorf("premia: hash missing field %q", field)
		}
		s, ok := v.(*nsp.SMat)
		if !ok || s.Rows != 1 || s.Cols != 1 {
			return nil, fmt.Errorf("premia: field %q is not a string", field)
		}
		*dst = s.StrValue()
	}
	pv, ok := h.Get("params")
	if !ok {
		return nil, errors.New("premia: hash missing field \"params\"")
	}
	ph, ok := pv.(*nsp.Hash)
	if !ok {
		return nil, errors.New("premia: params field is not a hash")
	}
	for _, k := range ph.Keys() {
		v, _ := ph.Get(k)
		m, ok := v.(*nsp.Mat)
		if !ok || m.Rows != 1 || m.Cols != 1 {
			return nil, fmt.Errorf("premia: parameter %q is not a scalar", k)
		}
		p.Params[k] = m.ScalarValue()
	}
	return p, nil
}

// MarshalXDR encodes the problem in the architecture-independent XDR
// format used by the PremiaModel save method.
func (p *Problem) MarshalXDR() ([]byte, error) {
	var buf bytes.Buffer
	e := nsp.NewXDREncoder(&buf)
	e.PutString("PREMIA1")
	e.PutString(p.Asset)
	e.PutString(p.Model)
	e.PutString(p.Option)
	e.PutString(p.Method)
	keys := p.Params.Keys()
	e.PutInt(len(keys))
	for _, k := range keys {
		e.PutString(k)
		e.PutFloat64(p.Params[k])
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalXDR decodes a problem encoded by MarshalXDR.
func UnmarshalXDR(data []byte) (*Problem, error) {
	d := nsp.NewXDRDecoder(bytes.NewReader(data))
	if tag := d.String(); tag != "PREMIA1" {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("premia: bad XDR tag %q", tag)
	}
	p := New()
	p.Asset = d.String()
	p.Model = d.String()
	p.Option = d.String()
	p.Method = d.String()
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("premia: unreasonable XDR parameter count %d", n)
	}
	for i := 0; i < n; i++ {
		k := d.String()
		v := d.Float64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		p.Params[k] = v
	}
	return p, nil
}

// Save writes the problem to a file via the nsp object format, so the file
// can be consumed by Load, nsp.Load or nsp.SLoad (the serialized-load
// strategy of the paper).
func (p *Problem) Save(path string) error {
	h, err := p.ToNsp()
	if err != nil {
		return err
	}
	return nsp.Save(path, h)
}

// Load reads a problem written by Save.
func Load(path string) (*Problem, error) {
	o, err := nsp.Load(path)
	if err != nil {
		return nil, err
	}
	return FromNsp(o)
}
