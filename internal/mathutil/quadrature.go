package mathutil

import "math"

// GaussLegendre computes the n nodes and weights of the Gauss–Legendre
// quadrature rule on [-1, 1] by Newton iteration on the Legendre
// polynomial, the classical Golub-free construction. It is used by the
// semi-analytic Heston pricer to evaluate the inversion integrals.
func GaussLegendre(n int) (nodes, weights []float64) {
	if n <= 0 {
		panic("mathutil: GaussLegendre with n <= 0")
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Chebyshev-based initial guess for the i-th root.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			// Evaluate P_n(x) and its derivative by the recurrence.
			p0, p1 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p2 := p1
				p1 = p0
				p0 = ((2*float64(j)+1)*x*p1 - float64(j)*p2) / float64(j+1)
			}
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}

// Integrate applies the quadrature rule (nodes, weights on [-1,1]) to f
// over [a, b] by affine change of variable.
func Integrate(f func(float64) float64, a, b float64, nodes, weights []float64) float64 {
	half := (b - a) / 2
	mid := (a + b) / 2
	sum := 0.0
	for i, x := range nodes {
		sum += weights[i] * f(mid+half*x)
	}
	return half * sum
}
