package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric supporting both Set and atomic Add; it
// doubles as a float accumulator (busy seconds, work units). A nil
// *Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: geometric buckets from histLo upward with
// growth factor 2^(1/8) per bucket (≈9% relative width, so quantile
// estimates carry at most ≈4.5% relative error when read at the bucket
// midpoint). Bucket 0 collects everything ≤ histLo; the last bucket
// collects the overflow. The span histLo·g^histBuckets reaches past 1e5
// seconds, wide enough for nanosecond pack times and day-long sweeps in
// the same metric.
const (
	histLo      = 1e-9
	histBuckets = 376
)

var (
	histLogGrowth = math.Ln2 / 8 // log of 2^(1/8)
	histGrowth    = math.Exp(histLogGrowth)
)

func bucketIndex(v float64) int {
	if !(v > histLo) { // also catches NaN and non-positives
		return 0
	}
	i := 1 + int(math.Log(v/histLo)/histLogGrowth)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketMid returns the representative value of bucket i (its geometric
// midpoint), used for quantile and mean estimation.
func bucketMid(i int) float64 {
	if i == 0 {
		return histLo
	}
	return histLo * math.Exp((float64(i)-0.5)*histLogGrowth)
}

// Histogram is a lock-free histogram of positive observations (usually
// durations in seconds). All methods are safe for concurrent use; a nil
// *Histogram discards updates.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits; valid once count > 0
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64

	// ex holds per-bucket exemplars (exemplar.go), allocated on the
	// first traced observation.
	ex atomic.Pointer[exemplarTable]
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.updateExtremes(v, v)
}

// minStoreBits encodes v for the min slot: the all-zero bit pattern is
// the "unseeded" sentinel, so an observed value of exactly +0 is stored
// as -0 (numerically equal, distinct bits).
func minStoreBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b == 0 {
		return math.Float64bits(math.Copysign(0, -1))
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts.
// It returns 0 when the histogram is empty. Concurrent writers make the
// walk a consistent-enough snapshot, not an exact one.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := int64(0)
	var counts [histBuckets]int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// merge folds other's buckets and aggregates into h.
func (h *Histogram) merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	n := other.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.updateExtremes(other.Min(), other.Max())
	h.mergeExemplars(other)
}

func (h *Histogram) updateExtremes(min, max float64) {
	for {
		old := h.minBits.Load()
		if old != 0 && math.Float64frombits(old) <= min {
			break
		}
		if h.minBits.CompareAndSwap(old, minStoreBits(min)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if old != 0 && math.Float64frombits(old) >= max {
			break
		}
		if h.maxBits.CompareAndSwap(old, minStoreBits(max)) {
			break
		}
	}
}

// Stats summarizes the histogram for snapshots and reports.
type Stats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Exemplars links each quantile to the nearest retained traced
	// observation; empty when the histogram never saw a traced value.
	Exemplars []QuantileExemplar `json:"exemplars,omitempty"`
}

// Stats returns the current summary.
func (h *Histogram) Stats() Stats {
	if h == nil {
		return Stats{}
	}
	st := Stats{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	st.Exemplars = h.quantileExemplars(st)
	return st
}
