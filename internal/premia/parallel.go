package premia

import (
	"fmt"
	"sync"
	"sync/atomic"

	"riskbench/internal/mathutil"
)

// The multicore pricing kernel: a sharded path-simulation runtime shared
// by the Monte Carlo methods of this package. The paper prices each
// option on a single processor; this layer is the natural extension once
// nodes are multi-core (the unused second core of the paper's Xeons): a
// worker rank can spend every local core on one pricing task.
//
// Determinism contract: the path budget is always decomposed into the
// same shards — each with its own RNG stream derived by Split from the
// problem seed, and its own accumulators — and the per-shard statistics
// are merged in shard order. The thread count only decides how many
// goroutines consume the shard queue, so an estimate depends solely on
// (seed, paths): threads=1 and threads=K return bit-identical results.

// kernelShards is the fixed shard count of the kernel (fewer only when
// there are fewer paths than shards). 64 shards keep the pool busy on any
// realistic core count while leaving each shard enough paths to amortise
// its RNG split, and — being independent of the thread count — keep the
// decomposition, and therefore the estimate, thread-invariant.
const kernelShards = 64

// kernelThreadsKey is the per-problem override of the kernel pool size.
const kernelThreadsKey = "threads"

// kernelDefaultThreads holds the process-wide default pool size installed
// by SetKernelThreads; values < 1 mean serial execution.
var kernelDefaultThreads atomic.Int64

// SetKernelThreads installs the process-wide default worker count of the
// multicore pricing kernel, used by every Compute whose problem carries
// no explicit "threads" parameter. n < 1 (and the initial state) selects
// serial execution. Typically wired through the riskbench façade.
func SetKernelThreads(n int) {
	kernelDefaultThreads.Store(int64(n))
}

// kernelThreads resolves the pool size for one problem: its "threads"
// parameter if present, else the process default.
func kernelThreads(p *Problem) (int, error) {
	def := int(kernelDefaultThreads.Load())
	if def < 1 {
		def = 1
	}
	threads := p.Params.Int(kernelThreadsKey, def)
	if threads < 1 {
		return 0, fmt.Errorf("premia: %s needs threads >= 1, got %d", p.Method, threads)
	}
	return threads, nil
}

// shardCounts partitions n paths over min(kernelShards, n) shards as
// evenly as possible. The split depends only on n.
func shardCounts(n int) []int {
	shards := kernelShards
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	counts := make([]int, shards)
	base, rem := n/shards, n%shards
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

// kernelRun executes body(0), …, body(shards-1) on a pool of threads
// goroutines (inline when one suffices), handing shards out through an
// atomic cursor. Which goroutine runs which shard is scheduling-dependent,
// but every shard's work must be self-contained (own RNG, own output
// slots), so the assignment cannot influence results. Per-shard compute
// times go to the "premia.kernel.shard_seconds" histogram and each run
// sets the "premia.kernel.efficiency" gauge (busy time over threads×wall,
// 1.0 meaning perfect scaling) in the package telemetry sink.
func kernelRun(threads, shards int, body func(shard int)) {
	if shards < 1 {
		return
	}
	if threads > shards {
		threads = shards
	}
	reg := sink.Load()
	var durs []float64
	var t0 float64
	run := body
	if reg != nil {
		durs = make([]float64, shards)
		t0 = reg.Now()
		run = func(s int) {
			start := reg.Now()
			body(s)
			durs[s] = reg.Now() - start
		}
	}
	if threads <= 1 {
		for s := 0; s < shards; s++ {
			run(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(threads)
		for t := 0; t < threads; t++ {
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= shards {
						return
					}
					run(s)
				}
			}()
		}
		wg.Wait()
	}
	if reg != nil {
		busy := 0.0
		for _, d := range durs {
			reg.Observe("premia.kernel.shard_seconds", d)
			busy += d
		}
		reg.Counter("premia.kernel.runs").Add(1)
		if wall := reg.Now() - t0; wall > 0 {
			reg.Gauge("premia.kernel.efficiency").Set(busy / (float64(threads) * wall))
		}
	}
}

// soaBlock is the unit granularity of the struct-of-arrays method loops:
// normal draws, path evolution and payoff evaluation each run as tight
// batched passes over contiguous scratch buffers of at most this many
// float64 (32 KiB), large enough to amortise per-call overhead and small
// enough to stay cache-resident.
const soaBlock = 4096

// kernelScratch is one shard's reusable buffer arena. Method bodies draw
// their working []float64 from it instead of allocating, so a shard's
// buffers are reused across blocks within a run and — through the arena
// pool — across runs. Buffers are only valid until the shard body
// returns; bodies must not retain them.
type kernelScratch struct {
	rng  mathutil.RNG // the shard's stream, reseeded by SplitInto per run
	accs []mathutil.Welford
	bufs [][]float64
	next int
}

// floats returns a scratch []float64 of length n with arbitrary contents,
// reusing a previously grown buffer when one is large enough.
func (s *kernelScratch) floats(n int) []float64 {
	if s.next < len(s.bufs) && cap(s.bufs[s.next]) >= n {
		b := s.bufs[s.next][:n]
		s.next++
		return b
	}
	b := make([]float64, n)
	if s.next < len(s.bufs) {
		s.bufs[s.next] = b
	} else {
		s.bufs = append(s.bufs, b)
	}
	s.next++
	return b
}

// welford returns n zeroed accumulators backed by the scratch.
func (s *kernelScratch) welford(n int) []mathutil.Welford {
	if cap(s.accs) < n {
		s.accs = make([]mathutil.Welford, n)
	}
	s.accs = s.accs[:n]
	for i := range s.accs {
		s.accs[i] = mathutil.Welford{}
	}
	return s.accs
}

// kernelArena holds one kernel run's per-shard scratches. Arenas are
// pooled across runs (concurrent runs each draw their own arena, so the
// per-shard buffers never contend), which is what makes the steady-state
// path-generation loop allocation-free.
type kernelArena struct {
	shards []kernelScratch
}

var arenaPool = sync.Pool{New: func() any { return new(kernelArena) }}

// getArena returns a pooled arena sized to `shards`, with every scratch
// rewound so its buffers are reusable.
func getArena(shards int) *kernelArena {
	a := arenaPool.Get().(*kernelArena)
	if cap(a.shards) < shards {
		old := a.shards
		a.shards = make([]kernelScratch, shards)
		copy(a.shards, old[:cap(old)])
	}
	a.shards = a.shards[:shards]
	for i := range a.shards {
		a.shards[i].next = 0
	}
	return a
}

func putArena(a *kernelArena) { arenaPool.Put(a) }

// runPathKernel simulates n independent units (paths, antithetic pairs,
// …) through the kernel: body runs once per shard with the shard's own
// decorrelated RNG stream, its unit count, naccs fresh accumulators, and
// the shard's scratch arena for struct-of-arrays buffers. The per-shard
// accumulators are merged in shard order, so the returned statistics
// depend only on (seed, n), never on the thread count.
func runPathKernel(p *Problem, n, naccs int, body func(rng *mathutil.RNG, n int, accs []mathutil.Welford, scratch *kernelScratch)) ([]mathutil.Welford, error) {
	threads, err := kernelThreads(p)
	if err != nil {
		return nil, err
	}
	counts := shardCounts(n)
	base := mathutil.NewRNG(mcSeed(p))
	a := getArena(len(counts))
	defer putArena(a)
	kernelRun(threads, len(counts), func(s int) {
		sc := &a.shards[s]
		base.SplitInto(&sc.rng, uint64(s))
		body(&sc.rng, counts[s], sc.welford(naccs), sc)
	})
	merged := make([]mathutil.Welford, naccs)
	for s := range a.shards {
		for j := range merged {
			merged[j].Merge(a.shards[s].accs[j])
		}
	}
	return merged, nil
}

// runIndexedKernel is the lower-level shape for methods that write
// per-path results into pre-allocated disjoint slices (the LSM
// path-generation phase): body receives the shard index, the shard's
// global unit offset and count, the shard's RNG stream, and the shard's
// scratch arena.
func runIndexedKernel(p *Problem, n int, body func(shard, start, count int, rng *mathutil.RNG, scratch *kernelScratch)) error {
	threads, err := kernelThreads(p)
	if err != nil {
		return err
	}
	counts := shardCounts(n)
	starts := make([]int, len(counts))
	for i := 1; i < len(counts); i++ {
		starts[i] = starts[i-1] + counts[i-1]
	}
	base := mathutil.NewRNG(mcSeed(p))
	a := getArena(len(counts))
	defer putArena(a)
	kernelRun(threads, len(counts), func(s int) {
		sc := &a.shards[s]
		base.SplitInto(&sc.rng, uint64(s))
		body(s, starts[s], counts[s], &sc.rng, sc)
	})
	return nil
}
