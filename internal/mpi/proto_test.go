package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// fastHello keeps the v1-classification quiet period short in tests.
const fastHello = 50 * time.Millisecond

// startWorldWith builds a hub plus size-1 dialled workers with explicit
// per-endpoint options, for exercising mixed-version worlds.
func startWorldWith(t *testing.T, size int, hubOpts, workerOpts WorldOptions) (*HubComm, []*WorkerComm) {
	t.Helper()
	if hubOpts.HelloWait == 0 {
		hubOpts.HelloWait = fastHello
	}
	hub, err := ListenHubWith("", size, hubOpts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	workers := make([]*WorkerComm, 0, size-1)
	for i := 1; i < size; i++ {
		workerOpts := workerOpts
		workerOpts.Transport = hubOpts.Transport
		w, err := DialHubWith(hub.Addr(), workerOpts)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		workers = append(workers, w)
	}
	if err := <-accepted; err != nil {
		t.Fatalf("accept: %v", err)
	}
	t.Cleanup(func() {
		hub.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return hub, workers
}

func TestHelloRoundTrip(t *testing.T) {
	for _, info := range []peerInfo{
		{proto: ProtoV1, caps: 0},
		{proto: ProtoV2, caps: CapSpans},
		{proto: ProtoV2, caps: AllCaps},
	} {
		got, err := decodeHello(encodeHello(info))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", info, err)
		}
		if got != info {
			t.Fatalf("hello round trip: got %+v, want %+v", got, info)
		}
	}
}

func TestHelloMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short":          []byte("HEL"),
		"bad magic":      append([]byte("NOPE"), 0, 2, 0, 0),
		"version zero":   append(helloMagic[:], 0, 0, 0, 0),
		"truncated list": append(helloMagic[:], 0, 2, 0, 1),
		"truncated name": append(helloMagic[:], 0, 2, 0, 1, 10, 'x'),
	}
	for name, payload := range cases {
		if _, err := decodeHello(payload); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: decodeHello = %v, want ErrProtocol", name, err)
		}
	}
}

// TestHelloUnknownCapSkipped checks forward compatibility: a future
// peer's unknown capability names must parse cleanly and fold out of the
// negotiated set instead of failing the handshake.
func TestHelloUnknownCapSkipped(t *testing.T) {
	payload := append([]byte{}, helloMagic[:]...)
	payload = binary.BigEndian.AppendUint16(payload, 3) // a future version
	payload = binary.BigEndian.AppendUint16(payload, 2)
	payload = append(payload, byte(len("spans")))
	payload = append(payload, "spans"...)
	payload = append(payload, byte(len("quantum")))
	payload = append(payload, "quantum"...)
	info, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.proto != 3 || info.caps != CapSpans {
		t.Fatalf("got %+v, want proto 3 caps spans", info)
	}
	settled := negotiate(peerInfo{proto: ProtoV2, caps: AllCaps}, info)
	if settled.proto != ProtoV2 || settled.caps != CapSpans {
		t.Fatalf("negotiated %+v, want proto 2 caps spans", settled)
	}
}

// TestCompatNegotiationMatrix pins the per-connection outcome for every
// pairing of adjacent protocol versions: same-version pairs keep the
// full feature set (v1 by legacy assumption, v2 by explicit handshake)
// while mixed pairs downgrade to the baseline on whichever side knows
// the peer might not understand the extras.
func TestCompatNegotiationMatrix(t *testing.T) {
	type view struct {
		proto int
		caps  CapSet
	}
	cases := []struct {
		name        string
		hubProto    int
		workerProto int
		hubView     view // the hub's negotiated view of the worker
		workerView  view // the worker's negotiated view of the hub
	}{
		{"v2 hub, v2 worker", ProtoV2, ProtoV2, view{ProtoV2, AllCaps}, view{ProtoV2, AllCaps}},
		{"v2 hub, v1 worker", ProtoV2, ProtoV1, view{ProtoV1, 0}, view{ProtoV1, AllCaps}},
		{"v1 hub, v2 worker", ProtoV1, ProtoV2, view{ProtoV1, AllCaps}, view{ProtoV1, 0}},
		{"v1 hub, v1 worker", ProtoV1, ProtoV1, view{ProtoV1, AllCaps}, view{ProtoV1, AllCaps}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hub, workers := startWorldWith(t, 2,
				WorldOptions{Transport: "inproc", Proto: tc.hubProto},
				WorldOptions{Proto: tc.workerProto})
			if got := (view{hub.PeerProto(1), hub.PeerCaps(1)}); got != tc.hubView {
				t.Errorf("hub view of worker = %+v, want %+v", got, tc.hubView)
			}
			w := workers[0]
			if got := (view{w.PeerProto(0), w.PeerCaps(0)}); got != tc.workerView {
				t.Errorf("worker view of hub = %+v, want %+v", got, tc.workerView)
			}
			// The mixed world must still move application frames.
			go func() {
				if data, st, err := w.Recv(0, AnyTag); err == nil {
					_ = w.Send(data, 0, st.Tag)
				}
			}()
			if err := hub.Send([]byte("ping"), 1, 7); err != nil {
				t.Fatal(err)
			}
			data, _, err := hub.Recv(1, 7)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "ping" {
				t.Fatalf("echo = %q", data)
			}
		})
	}
}

// TestCompatCapabilityIntersection checks that announced capability sets
// intersect rather than merge.
func TestCompatCapabilityIntersection(t *testing.T) {
	hub, workers := startWorldWith(t, 2,
		WorldOptions{Transport: "inproc", Proto: ProtoV2, Caps: CapSpans},
		WorldOptions{Proto: ProtoV2})
	if got := hub.PeerCaps(1); got != CapSpans {
		t.Errorf("hub caps = %v, want spans only", got)
	}
	if got := workers[0].PeerCaps(0); got != CapSpans {
		t.Errorf("worker caps = %v, want spans only", got)
	}
}

// TestCommWithoutNegotiator checks the package helpers' fallback: an
// in-process world has no handshake and both ends are the same build, so
// everything is assumed implemented.
func TestCommWithoutNegotiator(t *testing.T) {
	world := NewLocalWorld(2)
	defer world.Close()
	c := world.Comm(0)
	if got := PeerCaps(c, 1); got != AllCaps {
		t.Errorf("PeerCaps on local world = %v, want AllCaps", got)
	}
	if got := PeerProto(c, 1); got != ProtoLatest {
		t.Errorf("PeerProto on local world = %v, want latest", got)
	}
}

func TestOversizedFrameIsProtocolError(t *testing.T) {
	var buf bytes.Buffer
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[12:], maxFrame+1)
	buf.Write(hdr[:])
	fc := newFrameCodec(ProtoLatest)
	_, _, _, _, err := fc.readFrame(&buf)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized frame read = %v, want ErrProtocol", err)
	}
}

// TestHubDropsOversizedPeer is the satellite acceptance test: a peer
// announcing an oversized frame must have its connection closed — the
// stream is unsynchronized — while the hub keeps serving the healthy
// ranks.
func TestHubDropsOversizedPeer(t *testing.T) {
	hub, err := ListenHubWith("127.0.0.1:0", 3, WorldOptions{HelloWait: fastHello})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()

	good, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	// A raw connection that handshakes correctly, then declares a frame
	// larger than the protocol allows.
	bad, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte(wireMagic)); err != nil {
		t.Fatal(err)
	}
	var reply [8]byte
	if _, err := io.ReadFull(bad, reply[:]); err != nil {
		t.Fatal(err)
	}
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[12:], maxFrame+1)
	if _, err := bad.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}

	// The offender gets dropped: its connection reaches EOF once the
	// hub's router rejects the frame. Drain the hub's hello frame first.
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	discard := make([]byte, 256)
	for {
		if _, err := bad.Read(discard); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatal("oversized peer's connection was not closed")
			}
			break // EOF or reset: the hub dropped us
		}
	}

	// The healthy rank keeps working.
	go func() {
		if data, st, err := good.Recv(0, AnyTag); err == nil {
			_ = good.Send(data, 0, st.Tag)
		}
	}()
	if err := hub.Send([]byte("alive"), good.Rank(), 4); err != nil {
		t.Fatal(err)
	}
	data, _, err := hub.Recv(good.Rank(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "alive" {
		t.Fatalf("echo = %q", data)
	}
}

// TestHelloInvisibleToV1Mailbox documents why the handshake is backward
// compatible: a hello's addressing (source and tag -2) can never match
// the named receives the farm protocol performs, so a v1 worker that
// mailboxed one would still never see it.
func TestHelloInvisibleToV1Mailbox(t *testing.T) {
	mb := newMailbox()
	mb.put(message{source: helloSrc, tag: helloTag, data: encodeHello(peerInfo{proto: ProtoV2, caps: AllCaps})})
	mb.put(message{source: 0, tag: 1, data: []byte("task")})
	m, err := mb.recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.data) != "task" {
		t.Fatalf("recv = %q, want the task frame", m.data)
	}
}

func TestNegotiateIsCommutativeOnCaps(t *testing.T) {
	a := peerInfo{proto: ProtoV2, caps: CapSpans}
	b := peerInfo{proto: ProtoV2, caps: AllCaps}
	ab, ba := negotiate(a, b), negotiate(b, a)
	if ab != ba {
		t.Fatalf("negotiate not symmetric: %+v vs %+v", ab, ba)
	}
	if ab.caps != CapSpans {
		t.Fatalf("caps = %v, want intersection (spans)", ab.caps)
	}
}

func TestCapSetString(t *testing.T) {
	for want, s := range map[string]CapSet{
		"none":                  0,
		"spans":                 CapSpans,
		"hasdelta":              CapHasDelta,
		"events":                CapEvents,
		"hasdelta,spans":        CapSpans | CapHasDelta,
		"events,hasdelta,spans": AllCaps,
	} {
		if got := s.String(); got != want {
			t.Errorf("CapSet(%d).String() = %q, want %q", s, got, want)
		}
	}
}
