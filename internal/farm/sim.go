package farm

import (
	"riskbench/internal/nsp"
	"riskbench/internal/simnet"
)

// SimCosts are the virtual CPU costs of the strategy-dependent software
// paths, calibrated so the simulated Table II reproduces the paper's
// shape: full-load pays an object construction round on the master that
// serialized-load avoids, and every strategy pays a small per-task
// orchestration cost at both ends.
type SimCosts struct {
	// FullLoadFixed + FullLoadPerByte·size is the master's cost to read a
	// file, build the object and re-serialise it (the "full load" column).
	FullLoadFixed   float64
	FullLoadPerByte float64
	// SLoadFixed + SLoadPerByte·size is the master's cost of the direct
	// file→serial path ("serialized load").
	SLoadFixed   float64
	SLoadPerByte float64
	// UnpackFixed + UnpackPerByte·size is the worker's cost to unpack and
	// rebuild the problem before pricing.
	UnpackFixed   float64
	UnpackPerByte float64
}

// DefaultSimCosts is calibrated against the paper's Table II (10,000
// closed-form vanillas): the serialized-load column flattens near the
// master's ≈0.18 ms/task occupancy, the full-load column near ≈0.4 ms,
// and NFS near ≈0.08 ms once the cache is warm.
var DefaultSimCosts = SimCosts{
	FullLoadFixed:   120e-6,
	FullLoadPerByte: 300e-9,
	SLoadFixed:      45e-6,
	SLoadPerByte:    30e-9,
	UnpackFixed:     80e-6,
	UnpackPerByte:   150e-9,
}

// SimLoader charges the master's strategy-dependent virtual CPU time and
// passes the real problem bytes through so wire sizes stay faithful.
type SimLoader struct {
	// Comm is the master's simulated communicator (provides Compute).
	Comm *simnet.Comm
	// Costs is the cost model (DefaultSimCosts if zero-valued fields are
	// acceptable to the caller).
	Costs SimCosts
}

// Load implements Loader.
func (l SimLoader) Load(t Task, s Strategy) ([]byte, error) {
	n := float64(len(t.Data))
	switch s {
	case FullLoad:
		l.Comm.Compute(l.Costs.FullLoadFixed + l.Costs.FullLoadPerByte*n)
	case SerializedLoad:
		l.Comm.Compute(l.Costs.SLoadFixed + l.Costs.SLoadPerByte*n)
	}
	return t.Data, nil
}

// SimExecutor advances the worker's virtual clock by the task's declared
// cost plus the unpack overhead, instead of really pricing.
type SimExecutor struct {
	// Comm is this worker's simulated communicator.
	Comm *simnet.Comm
	// Costs is the cost model shared with the master.
	Costs SimCosts
}

// Execute implements Executor.
func (e SimExecutor) Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error) {
	e.Comm.Compute(e.Costs.UnpackFixed + e.Costs.UnpackPerByte*float64(size) + cost)
	return resultHash(name, 0, 0, 0, cost), nil
}

// SimStore models the shared NFS mount: reads charge the simnet NFS model
// on this worker's node and return no bytes (simulated executors do not
// look at payloads).
type SimStore struct {
	// FS is the simulated file system shared by all workers of a run.
	FS *simnet.NFS
	// Comm identifies the node (rank) doing the reads.
	Comm *simnet.Comm
}

// Read implements Store.
func (s SimStore) Read(name string, size int) ([]byte, error) {
	s.FS.Read(s.Comm.Proc(), s.Comm.Rank(), name, size)
	return nil, nil
}
