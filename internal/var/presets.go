package varisk

import "fmt"

// Preset is one of the benchmark's standard VaR workload sizes (the
// small/medium/large Monte Carlo VaR configurations of the
// nvidia-jetson financial-modeling workload, adapted to this farm):
// riskbench -var runs them end to end over the scaled realistic book
// and BENCH_var.json records their scenarios/sec.
type Preset struct {
	// Name is "small", "medium" or "large".
	Name string
	// DeltaGammaScenarios is the Monte Carlo sample size for the
	// delta–gamma estimator (cheap per scenario: no repricing).
	DeltaGammaScenarios int
	// FullScenarios is the sample size for full revaluation, where every
	// scenario reprices all 7931 claims through the farm — the outer
	// count of the nested outer×inner workload.
	FullScenarios int
	// Alphas are the confidence levels reported.
	Alphas []float64
	// HorizonDays is the market-move horizon.
	HorizonDays float64
	// Shrink is the numerical-effort scale applied to the realistic
	// book's paths/steps counts for live runs (portfolio.ScaleEffort),
	// keeping the claim mix and task count of the paper's portfolio at a
	// tractable per-task cost.
	Shrink float64
	// Seed is the scenario-stream seed, fixed per preset so runs are
	// reproducible bit for bit.
	Seed uint64
}

// SmallPreset is the quick configuration: 1000 delta–gamma scenarios,
// 32 full revaluations.
func SmallPreset() Preset {
	return Preset{
		Name:                "small",
		DeltaGammaScenarios: 1000,
		FullScenarios:       32,
		Alphas:              []float64{0.95, 0.99},
		HorizonDays:         10,
		Shrink:              1e-3,
		Seed:                20090417,
	}
}

// MediumPreset doubles the full-revaluation outer count and widens the
// confidence grid.
func MediumPreset() Preset {
	return Preset{
		Name:                "medium",
		DeltaGammaScenarios: 5000,
		FullScenarios:       64,
		Alphas:              []float64{0.90, 0.95, 0.99},
		HorizonDays:         10,
		Shrink:              1e-3,
		Seed:                20090417,
	}
}

// LargePreset is the stress configuration: 10000 delta–gamma scenarios
// and a 128-scenario full revaluation — over a million inner repricing
// tasks against the 7931-claim book.
func LargePreset() Preset {
	return Preset{
		Name:                "large",
		DeltaGammaScenarios: 10000,
		FullScenarios:       128,
		Alphas:              []float64{0.90, 0.95, 0.975, 0.99, 0.995},
		HorizonDays:         10,
		Shrink:              1e-3,
		Seed:                20090417,
	}
}

// PresetByName resolves "small" | "medium" | "large".
func PresetByName(name string) (Preset, error) {
	switch name {
	case "small":
		return SmallPreset(), nil
	case "medium":
		return MediumPreset(), nil
	case "large":
		return LargePreset(), nil
	default:
		return Preset{}, fmt.Errorf("varisk: unknown preset %q (want small, medium or large)", name)
	}
}

// Config returns the estimator configuration the preset implies.
func (p Preset) Config() Config {
	return Config{Alphas: p.Alphas, HorizonDays: p.HorizonDays}
}
