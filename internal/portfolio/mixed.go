package portfolio

import (
	"riskbench/internal/mathutil"
	"riskbench/internal/premia"
)

// Mixed generates a multi-asset-class book — equity derivatives plus
// interest-rate and credit products — an extension beyond the paper's
// equity-only §4.3 portfolio, reflecting its remark that Premia "is able
// to price derivatives on many different kinds of underlying assets such
// as interest rates, commodities, credits". The book holds roughly n
// claims split 60% equity / 25% rates / 15% credit.
func Mixed(n int) *Portfolio {
	rng := mathutil.NewRNG(2026)
	pf := &Portfolio{Name: "mixed"}
	nEquity := n * 60 / 100
	nRates := n * 25 / 100
	nCredit := n - nEquity - nRates

	for i := 0; i < nEquity; i++ {
		k := spot * (0.8 + 0.01*float64(i%41))
		t := 0.25 + 0.25*float64(i%12)
		var p *premia.Problem
		switch i % 3 {
		case 0:
			p = premia.New().
				SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
				Set("S0", spot).Set("r", 0.04).Set("divid", 0.01).Set("sigma", 0.22).
				Set("K", k).Set("T", t)
		case 1:
			p = premia.New().
				SetModel(premia.ModelBS1D).SetOption(premia.OptPutEuro).SetMethod(premia.MethodCFPut).
				Set("S0", spot).Set("r", 0.04).Set("divid", 0.01).Set("sigma", 0.22).
				Set("K", k).Set("T", t)
		default:
			p = premia.New().
				SetModel(premia.ModelBS1D).SetOption(premia.OptDigitalCall).SetMethod(premia.MethodCFDigital).
				Set("S0", spot).Set("r", 0.04).Set("divid", 0.01).Set("sigma", 0.22).
				Set("K", k).Set("T", t)
		}
		pf.add("eq", p, 0.0008*jitter(rng, 0.2))
	}
	for i := 0; i < nRates; i++ {
		t := 1 + float64(i%9)
		p := premia.New().SetAsset(premia.AssetRate).
			SetModel(premia.ModelVasicek).SetMethod(premia.MethodCFVasicek).
			Set("r0", 0.03).Set("a", 0.5).Set("b", 0.05).Set("sigmaR", 0.012).
			Set("T", t)
		if i%2 == 0 {
			p.SetOption(premia.OptZCBond)
		} else {
			p.SetOption(premia.OptZCCall).Set("S", t+2).Set("K", 0.85)
		}
		pf.add("rate", p, 0.0008*jitter(rng, 0.2))
	}
	for i := 0; i < nCredit; i++ {
		p := premia.New().SetAsset(premia.AssetCredit).
			SetModel(premia.ModelConstHazard).SetMethod(premia.MethodCFCredit).
			Set("lambda", 0.01+0.005*float64(i%6)).Set("recovery", 0.4).
			Set("r", 0.03).Set("T", 1+float64(i%7))
		if i%2 == 0 {
			p.SetOption(premia.OptDefaultableBond)
		} else {
			p.SetOption(premia.OptCDS)
		}
		pf.add("credit", p, 0.0008*jitter(rng, 0.2))
	}
	return pf
}
