package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The event log is the registry's flight recorder: a bounded ring of
// discrete occurrences (worker died, task redealt, limit breached,
// deadline missed) that complements the aggregate metrics and the span
// trees. Metrics say *how much*, traces say *where the time went*,
// events say *what happened* — and carry the trace ID that links the
// three views together.
//
// The ring is fixed-capacity and allocation-free at steady state: an
// atomic cursor assigns each emission its slot, so emitters never
// contend with each other; a per-slot mutex orders the (rare)
// wrap-around overwrite against snapshot readers, which is what keeps
// concurrent emit/read exact under the race detector rather than
// seqlock-approximate. Field values are copied into slot-resident
// arrays, names are interned when they arrive from the wire, and the
// variadic field slices never escape, so Emit stays at 0 allocs/op.

// Level grades an event's severity. The zero value is LevelDebug, so a
// zero EventFilter passes everything.
type Level int8

// The event severity levels. Workers ship LevelWarn and above back to
// their master; LevelDebug and LevelInfo stay local.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLevel maps a lowercase level name back to its Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown level %q (want debug, info, warn or error)", s)
	}
}

// Field is one typed key/value attribute of an event: either a string
// or a number, never both. Construct with Str or Num.
type Field struct {
	// Key names the attribute ("task", "rank", "err").
	Key   string
	str   string
	num   float64
	isStr bool
}

// Str builds a string-valued field.
func Str(key, value string) Field { return Field{Key: key, str: value, isStr: true} }

// Num builds a number-valued field.
func Num(key string, value float64) Field { return Field{Key: key, num: value} }

// StrValue returns the string value and whether the field is a string.
func (f Field) StrValue() (string, bool) { return f.str, f.isStr }

// NumValue returns the numeric value and whether the field is a number.
func (f Field) NumValue() (float64, bool) { return f.num, !f.isStr }

// Value returns the field's value as string or float64.
func (f Field) Value() any {
	if f.isStr {
		return f.str
	}
	return f.num
}

// RankLocal marks an event emitted by this process rather than ingested
// from a worker.
const RankLocal = -1

// Event is one recorded occurrence.
type Event struct {
	// Seq is the emission index in this registry's log, ascending and
	// dense; eviction drops the low end.
	Seq uint64
	// When is the registry clock at emission (virtual under simnet).
	When float64
	// Level grades the severity.
	Level Level
	// Name identifies the occurrence kind in the same dotted
	// pkg.noun.verb grammar as metric names ("farm.task.redeal").
	Name string
	// TraceID links the event to a distributed trace; 0 = untraced.
	TraceID uint64
	// Rank is the worker rank the event was ingested from, or RankLocal
	// for events of this process.
	Rank int
	// Fields carries the attributes. In snapshots the slice is owned by
	// the caller; inside the ring it aliases slot storage.
	Fields []Field
}

// Ring geometry: eventRingCap bounds retained events (a power of two so
// the slot index is a mask); maxEventFields bounds the attributes one
// event can carry — extras are dropped, never allocated.
const (
	eventRingCap   = 2048
	maxEventFields = 8
)

// eventSlot holds one ring position. seq tells readers which emission
// currently occupies the slot (0 = never written).
type eventSlot struct {
	mu  sync.Mutex
	seq uint64
	ev  Event
	buf [maxEventFields]Field
}

// eventLog is the bounded event ring, created lazily on first use so
// registries that never emit events pay nothing.
type eventLog struct {
	cursor atomic.Uint64 // last assigned seq; 0 = nothing emitted
	slots  []eventSlot
}

func newEventLog() *eventLog {
	return &eventLog{slots: make([]eventSlot, eventRingCap)}
}

// emit files one event, claiming the next slot with a single atomic
// add. ev.Seq is assigned here; ev.Fields is copied into slot storage
// (truncated at maxEventFields).
func (l *eventLog) emit(ev Event) uint64 {
	seq := l.cursor.Add(1)
	s := &l.slots[(seq-1)&uint64(len(l.slots)-1)]
	s.mu.Lock()
	s.seq = seq
	n := copy(s.buf[:], ev.Fields)
	ev.Seq = seq
	ev.Fields = s.buf[:n]
	s.ev = ev
	s.mu.Unlock()
	return seq
}

// eventLog returns the registry's ring, creating it on first use.
func (r *Registry) eventLog() *eventLog {
	if l := r.events.Load(); l != nil {
		return l
	}
	l := newEventLog()
	if r.events.CompareAndSwap(nil, l) {
		return l
	}
	return r.events.Load()
}

// Emit files one event into the registry's flight recorder, stamped
// with the registry clock. tc links the event to a distributed trace
// (pass TraceContext{} for untraced events). Fields beyond the
// per-event cap are dropped. Nil registries discard events.
func (r *Registry) Emit(level Level, name string, tc TraceContext, fields ...Field) {
	if r == nil {
		return
	}
	r.eventLog().emit(Event{When: r.Now(), Level: level, Name: name, TraceID: tc.TraceID, Rank: RankLocal, Fields: fields})
}

// EmitCtx is Emit with the trace context extracted from ctx — the form
// for call sites that already thread a request context.
func (r *Registry) EmitCtx(ctx context.Context, level Level, name string, fields ...Field) {
	if r == nil {
		return
	}
	tc, _ := TraceFromContext(ctx)
	r.eventLog().emit(Event{When: r.Now(), Level: level, Name: name, TraceID: tc.TraceID, Rank: RankLocal, Fields: fields})
}

// EventCursor returns the sequence number of the most recent emission
// (0 when nothing was emitted). Workers snapshot it before a batch so
// they can ship exactly the batch's events.
func (r *Registry) EventCursor() uint64 {
	if r == nil {
		return 0
	}
	l := r.events.Load()
	if l == nil {
		return 0
	}
	return l.cursor.Load()
}

// IngestEvents files remotely emitted events into the log — the master
// calls it with the events a worker shipped back alongside its results,
// When already shifted onto the master clock and Rank set to the
// worker's rank by the caller. Names are interned so repeated wire
// decodes of the same name share one string.
func (r *Registry) IngestEvents(evs []Event) {
	if r == nil || len(evs) == 0 {
		return
	}
	l := r.eventLog()
	for _, ev := range evs {
		ev.Name = InternName(ev.Name)
		l.emit(ev)
	}
}

// internTable bounds the interned-name store: names originate from
// wire decodes, so an endless stream of distinct names must not grow
// memory without bound. Past the cap, names pass through un-interned.
const maxInternedNames = 4096

var (
	internedNames sync.Map // string -> string
	internedCount atomic.Int64
)

// InternName returns the canonical instance of name: the first string
// ever interned with that content. Event ingestion uses it so the ring
// holds one copy of each distinct name regardless of how many wire
// messages carried it.
func InternName(name string) string {
	if v, ok := internedNames.Load(name); ok {
		return v.(string)
	}
	if internedCount.Load() >= maxInternedNames {
		return name
	}
	v, loaded := internedNames.LoadOrStore(name, name)
	if !loaded {
		internedCount.Add(1)
	}
	return v.(string)
}

// EventFilter selects events out of the log. The zero value passes
// everything retained.
type EventFilter struct {
	// MinLevel drops events below this severity.
	MinLevel Level
	// Prefix, when non-empty, keeps only events whose name starts with
	// it ("farm." selects the farm subsystem).
	Prefix string
	// TraceID, when non-zero, keeps only events of that trace.
	TraceID uint64
	// SinceSeq drops events with Seq <= SinceSeq.
	SinceSeq uint64
	// Max bounds the result length, keeping the newest; 0 = unbounded.
	Max int
}

func (f EventFilter) pass(ev Event) bool {
	if ev.Level < f.MinLevel {
		return false
	}
	if f.TraceID != 0 && ev.TraceID != f.TraceID {
		return false
	}
	if f.Prefix != "" && !strings.HasPrefix(ev.Name, f.Prefix) {
		return false
	}
	return true
}

// Events snapshots the retained events matching f, oldest first. Field
// slices are copied, so the result stays valid while emitters keep
// writing. Events overwritten mid-snapshot are skipped, never torn.
func (r *Registry) Events(f EventFilter) []Event {
	if r == nil {
		return nil
	}
	l := r.events.Load()
	if l == nil {
		return nil
	}
	hi := l.cursor.Load()
	lo := uint64(1)
	if hi > uint64(len(l.slots)) {
		lo = hi - uint64(len(l.slots)) + 1
	}
	if f.SinceSeq+1 > lo {
		lo = f.SinceSeq + 1
	}
	var out []Event
	for seq := lo; seq <= hi; seq++ {
		s := &l.slots[(seq-1)&uint64(len(l.slots)-1)]
		s.mu.Lock()
		if s.seq != seq {
			s.mu.Unlock()
			continue // evicted (or not yet written) under our feet
		}
		ev := s.ev
		ev.Fields = append([]Field(nil), ev.Fields...)
		s.mu.Unlock()
		if f.pass(ev) {
			out = append(out, ev)
		}
	}
	if f.Max > 0 && len(out) > f.Max {
		out = out[len(out)-f.Max:]
	}
	return out
}

// eventJSON is the NDJSON wire form of one event.
type eventJSON struct {
	Seq    uint64         `json:"seq"`
	When   float64        `json:"when"`
	Level  string         `json:"level"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace,omitempty"`
	Rank   *int           `json:"rank,omitempty"`
	Fields map[string]any `json:"fields,omitempty"`
}

func toEventJSON(ev Event) eventJSON {
	j := eventJSON{Seq: ev.Seq, When: ev.When, Level: ev.Level.String(), Name: ev.Name}
	if ev.TraceID != 0 {
		j.Trace = fmt.Sprintf("%016x", ev.TraceID)
	}
	if ev.Rank != RankLocal {
		rank := ev.Rank
		j.Rank = &rank
	}
	if len(ev.Fields) > 0 {
		j.Fields = make(map[string]any, len(ev.Fields))
		for _, f := range ev.Fields {
			j.Fields[f.Key] = f.Value()
		}
	}
	return j
}

// DefaultEventCount bounds how many events /debug/events returns when
// the request does not say.
const DefaultEventCount = 256

// EventsHandler serves the registry's event log as NDJSON, one event
// per line, oldest first — the /debug/events endpoint. Query
// parameters filter the log:
//
//	level=warn        minimum severity (debug|info|warn|error)
//	prefix=farm.      name prefix
//	trace=4a1f...     16-hex-digit trace ID (cross-links /debug/traces)
//	n=100             maximum events returned (default 256)
func EventsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f := EventFilter{Max: DefaultEventCount}
		q := req.URL.Query()
		if s := q.Get("level"); s != "" {
			lv, err := ParseLevel(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			f.MinLevel = lv
		}
		f.Prefix = q.Get("prefix")
		if s := q.Get("trace"); s != "" {
			id, err := strconv.ParseUint(s, 16, 64)
			if err != nil || id == 0 {
				http.Error(w, fmt.Sprintf("bad trace ID %q: want 16 hex digits", s), http.StatusBadRequest)
				return
			}
			f.TraceID = id
		}
		if s := q.Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad count %q", s), http.StatusBadRequest)
				return
			}
			f.Max = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		enc := json.NewEncoder(w)
		for _, ev := range r.Events(f) {
			if err := enc.Encode(toEventJSON(ev)); err != nil {
				return
			}
		}
	})
}
