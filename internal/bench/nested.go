package bench

import (
	"context"
	"fmt"
	"strings"

	"riskbench/internal/farm"
)

// NestedRow is one CPU count's measurement of the nested-simulation
// (outer scenarios × inner repricings) VaR workload on the simulator.
type NestedRow struct {
	// CPUs is the simulated node count (1 master + workers, or
	// 1 root + sub-masters + workers for the hierarchical row).
	CPUs int
	// Scheduler ran the row (RobinHood or Hierarchical).
	Scheduler Scheduler
	// Seconds is the virtual makespan.
	Seconds float64
	// Ratio is the paper's efficiency ratio T(2)/((n−1)·T(n)), measured
	// against the flat 2-CPU baseline.
	Ratio float64
	// TasksPerSec is inner repricings per virtual second.
	TasksPerSec float64
}

// RunNestedSweep sweeps the flat Robin-Hood scheduler over cpuCounts on
// the nested task batch (varisk.SimTasks output), then adds one
// hierarchical row at the largest CPU count with hierGroups sub-masters
// (skipped when hierGroups <= 0) — the RunRootMaster-at-scale data
// point. The serialized-load strategy is used throughout, matching the
// live engine's default.
func RunNestedSweep(ctx context.Context, tasks []farm.Task, cpuCounts []int, batch, hierGroups, hierChunk int) ([]NestedRow, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("bench: nested sweep needs tasks")
	}
	if len(cpuCounts) == 0 {
		return nil, fmt.Errorf("bench: nested sweep needs CPU counts")
	}
	var rows []NestedRow
	baseline := 0.0
	for _, cpus := range cpuCounts {
		t, err := Run(ctx, RunConfig{Tasks: tasks, CPUs: cpus, Strategy: farm.SerializedLoad, BatchSize: batch})
		if err != nil {
			return nil, fmt.Errorf("bench: nested sweep at %d CPUs: %w", cpus, err)
		}
		if baseline == 0 {
			baseline = t
		}
		rows = append(rows, nestedRow(cpus, RobinHood, t, baseline, len(tasks)))
	}
	if hierGroups > 0 {
		cpus := cpuCounts[len(cpuCounts)-1]
		t, err := Run(ctx, RunConfig{
			Tasks: tasks, CPUs: cpus, Strategy: farm.SerializedLoad, BatchSize: batch,
			Scheduler: Hierarchical, Groups: hierGroups, Chunk: hierChunk,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: nested hierarchical at %d CPUs: %w", cpus, err)
		}
		rows = append(rows, nestedRow(cpus, Hierarchical, t, baseline, len(tasks)))
	}
	return rows, nil
}

func nestedRow(cpus int, sched Scheduler, t, baseline float64, tasks int) NestedRow {
	row := NestedRow{CPUs: cpus, Scheduler: sched, Seconds: t}
	if t > 0 {
		row.TasksPerSec = float64(tasks) / t
		if cpus > 1 {
			row.Ratio = baseline / (float64(cpus-1) * t)
		}
	}
	return row
}

// FormatNestedRows renders a nested sweep in the style of the paper's
// tables.
func FormatNestedRows(title string, rows []NestedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8s %14s %12s %8s %14s\n", "CPUs", "scheduler", "Time (s)", "Ratio", "tasks/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14s %12.3f %8.3f %14.1f\n", r.CPUs, r.Scheduler, r.Seconds, r.Ratio, r.TasksPerSec)
	}
	return b.String()
}
