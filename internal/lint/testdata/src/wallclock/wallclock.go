// Package walltest seeds raw wall-clock reads for the wallclock
// analyzer, next to the forms it must accept (durations, sleeps, and
// annotated deliberate wall reads).
package walltest

import (
	"time"

	"riskbench/internal/telemetry"
)

// spanTimestamp stamps an event off the raw wall clock, so under a
// virtual clock the reading is in the wrong time domain.
func spanTimestamp() float64 {
	return float64(time.Now().UnixNano()) // want `raw time.Now`
}

// elapsed measures with time.Since, same problem.
func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `raw time.Since`
}

// virtualized reads the registry clock — the sanctioned path.
func virtualized(reg *telemetry.Registry) float64 {
	return reg.Now()
}

// sleeping takes a duration, not a timestamp; scheduling is fine.
func sleeping() {
	time.Sleep(time.Millisecond)
}

// ioDeadline is the documented escape: kernel-enforced I/O deadlines
// are wall time by design.
func ioDeadline(timeout time.Duration) time.Time {
	//lint:allow wallclock fixture: I/O deadlines are kernel wall time
	return time.Now().Add(timeout)
}
