package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// postJSON runs one request through the server's handler in process.
func postJSON(s *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func getPath(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

const mcBody = `{"model":"BlackScholes1dim","option":"CallEuro","method":"MC_Euro",
	"params":{"S0":100,"r":0.04,"sigma":0.2,"K":100,"T":1,"paths":4000},"seed":12345}`

func cfBody(k float64) string {
	return fmt.Sprintf(`{"model":"BlackScholes1dim","option":"CallEuro","method":"CF_Call",
	"params":{"S0":100,"r":0.04,"sigma":0.2,"K":%g,"T":1}}`, k)
}

// countingEngine wraps a real engine's PriceBatch and counts how many
// problems reach the kernel (i.e. were not absorbed by cache,
// singleflight or batch dedup).
func countingEngine(evals *atomic.Int64) PriceFunc {
	eng := &risk.Engine{Workers: 4}
	return func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		evals.Add(int64(len(problems)))
		return eng.PriceBatch(ctx, problems)
	}
}

// The headline contract: N concurrent identical requests produce
// exactly one kernel evaluation, and every response carries the same
// bit-identical price.
func TestSingleflightOneKernelEvaluation(t *testing.T) {
	var evals atomic.Int64
	reg := telemetry.New()
	s := New(Config{Price: countingEngine(&evals), MaxDelay: time.Millisecond, Telemetry: reg})
	defer s.Close()

	const n = 32
	codes := make([]int, n)
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(s, "/price", mcBody)
			codes[i], bodies[i] = w.Code, w.Body.String()
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, codes[i], bodies[i])
		}
	}
	var want resultJSON
	if err := json.Unmarshal([]byte(bodies[0]), &want); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		var got resultJSON
		if err := json.Unmarshal([]byte(bodies[i]), &got); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Price) != math.Float64bits(want.Price) ||
			math.Float64bits(got.PriceCI) != math.Float64bits(want.PriceCI) {
			t.Fatalf("response %d differs: %s vs %s", i, bodies[i], bodies[0])
		}
	}
	// The problems are identical: dedup must collapse them to one
	// kernel evaluation however the requests landed in batches.
	if got := evals.Load(); got != 1 {
		t.Fatalf("kernel evaluations = %d, want exactly 1", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.singleflight.shared"]+snap.Counters["serve.cache.hits"] != n-1 {
		t.Fatalf("shared+hits = %d+%d, want %d duplicates absorbed",
			snap.Counters["serve.singleflight.shared"], snap.Counters["serve.cache.hits"], n-1)
	}

	// A later request is a pure cache hit, bit-identical to the fresh price.
	w := postJSON(s, "/price", mcBody)
	var cached resultJSON
	if err := json.Unmarshal(w.Body.Bytes(), &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("follow-up request missed the cache")
	}
	if math.Float64bits(cached.Price) != math.Float64bits(want.Price) {
		t.Fatal("cached price is not bit-identical to the fresh price")
	}
	if got := evals.Load(); got != 1 {
		t.Fatalf("cache hit still evaluated the kernel (evals=%d)", got)
	}
}

// A burst over the admission limit gets 429 + Retry-After, not queue
// collapse; the server keeps serving afterwards.
func TestAdmissionControlBurst(t *testing.T) {
	gate := make(chan struct{})
	price := func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		<-gate
		out := make([]risk.PriceOutcome, len(problems))
		for i := range out {
			out[i] = risk.PriceOutcome{Result: premia.Result{Price: 1}}
		}
		return out, nil
	}
	reg := telemetry.New()
	s := New(Config{Price: price, MaxInflight: 2, MaxBatch: 1, MaxDelay: time.Millisecond, Telemetry: reg})
	defer s.Close()

	var wg sync.WaitGroup
	slow := make([]*httptest.ResponseRecorder, 2)
	for i := range slow {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slow[i] = postJSON(s, "/price", cfBody(float64(90+i)))
		}(i)
	}
	// Wait until both slow requests are admitted and counted inflight.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("slow requests never occupied the inflight slots")
		}
		time.Sleep(time.Millisecond)
	}

	// The burst: everything beyond the limit is shed with 429.
	for i := 0; i < 8; i++ {
		w := postJSON(s, "/price", cfBody(float64(200+i)))
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("burst request %d: status %d, want 429", i, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	if got := reg.Snapshot().Counters["serve.rejected.inflight"]; got != 8 {
		t.Fatalf("rejected.inflight = %d, want 8", got)
	}

	close(gate)
	wg.Wait()
	for i, w := range slow {
		if w.Code != http.StatusOK {
			t.Fatalf("slow request %d: status %d body %s", i, w.Code, w.Body.String())
		}
	}
	// No collapse: the server still prices after the burst.
	if w := postJSON(s, "/price", cfBody(95)); w.Code != http.StatusOK {
		t.Fatalf("post-burst request: status %d", w.Code)
	}
}

// Drain lets every admitted request finish — zero dropped responses —
// and refuses new work with 503.
func TestDrainZeroDroppedResponses(t *testing.T) {
	gate := make(chan struct{})
	price := func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		<-gate
		out := make([]risk.PriceOutcome, len(problems))
		for i, p := range problems {
			out[i] = risk.PriceOutcome{Result: premia.Result{Price: p.Params["K"]}}
		}
		return out, nil
	}
	s := New(Config{Price: price, MaxInflight: 64, MaxBatch: 4, MaxDelay: time.Millisecond})

	const n = 16
	codes := make([]int, n)
	prices := make([]resultJSON, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(s, "/price", cfBody(float64(50+i)))
			codes[i] = w.Code
			_ = json.Unmarshal(w.Body.Bytes(), &prices[i])
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests admitted", s.inflight.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Draining is visible immediately: health flips and new work is refused.
	for {
		if w := getPath(s, "/healthz"); w.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if w := postJSON(s, "/price", cfBody(99)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", w.Code)
	}

	close(gate) // let the in-flight batches complete
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("in-flight request %d dropped: status %d", i, codes[i])
		}
		if prices[i].Price != float64(50+i) {
			t.Fatalf("in-flight request %d got price %v, want %v", i, prices[i].Price, float64(50+i))
		}
	}
}

// End-to-end through the real engine: cached and uncached Monte Carlo
// prices are bit-identical.
func TestRealEngineCachedBitIdentical(t *testing.T) {
	s := New(Config{Engine: &risk.Engine{Workers: 2}, MaxDelay: time.Millisecond})
	defer s.Close()
	w1 := postJSON(s, "/price", mcBody)
	if w1.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", w1.Code, w1.Body.String())
	}
	w2 := postJSON(s, "/price", mcBody)
	var fresh, cached resultJSON
	if err := json.Unmarshal(w1.Body.Bytes(), &fresh); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &cached); err != nil {
		t.Fatal(err)
	}
	if fresh.Cached || !cached.Cached {
		t.Fatalf("cached flags: first=%v second=%v", fresh.Cached, cached.Cached)
	}
	if math.Float64bits(fresh.Price) != math.Float64bits(cached.Price) ||
		math.Float64bits(fresh.PriceCI) != math.Float64bits(cached.PriceCI) ||
		math.Float64bits(fresh.Delta) != math.Float64bits(cached.Delta) {
		t.Fatalf("cached result differs: %+v vs %+v", cached, fresh)
	}
	// Sanity: the MC price is in the Black–Scholes ballpark.
	if fresh.Price < 5 || fresh.Price > 15 {
		t.Fatalf("implausible MC price %v", fresh.Price)
	}
}

func TestRequestDeadline(t *testing.T) {
	price := func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		time.Sleep(200 * time.Millisecond)
		return make([]risk.PriceOutcome, len(problems)), nil
	}
	s := New(Config{Price: price, RequestTimeout: 20 * time.Millisecond, MaxBatch: 1, MaxDelay: time.Millisecond})
	defer s.Close()
	if w := postJSON(s, "/price", cfBody(90)); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", w.Code)
	}
}

func TestBatchEndpointDedupes(t *testing.T) {
	var evals atomic.Int64
	s := New(Config{Price: countingEngine(&evals), MaxDelay: time.Millisecond})
	defer s.Close()
	var sb strings.Builder
	sb.WriteString(`{"problems":[`)
	for i := 0; i < 12; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(cfBody(float64(90 + i%4))) // 4 unique strikes, 3× each
	}
	sb.WriteString(`]}`)
	w := postJSON(s, "/batch", sb.String())
	if w.Code != http.StatusOK {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	var resp struct {
		Results []resultJSON `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 12 {
		t.Fatalf("got %d results, want 12", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
		if math.Float64bits(r.Price) != math.Float64bits(resp.Results[i%4].Price) {
			t.Fatalf("duplicate problem %d priced differently", i)
		}
	}
	if got := evals.Load(); got != 4 {
		t.Fatalf("kernel evaluations = %d, want 4 unique", got)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{Price: func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		return make([]risk.PriceOutcome, len(problems)), nil
	}})
	defer s.Close()
	if w := postJSON(s, "/price", "{not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", w.Code)
	}
	if w := postJSON(s, "/price", `{"model":"x","option":"y","method":"z"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown method: status %d", w.Code)
	}
	if w := postJSON(s, "/batch", `{"problems":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", w.Code)
	}
	if w := getPath(s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	if w := getPath(s, "/metrics"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "# TYPE ") {
		t.Fatalf("metrics: status %d, body %q not Prometheus text", w.Code, w.Body.String())
	}
	if w := getPath(s, "/metrics.json"); w.Code != http.StatusOK || !json.Valid(w.Body.Bytes()) {
		t.Fatalf("metrics.json: status %d, valid JSON %v", w.Code, json.Valid(w.Body.Bytes()))
	}
	if w := getPath(s, "/debug/traces"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "trace(s) retained") {
		t.Fatalf("debug/traces: status %d, body %q", w.Code, w.Body.String())
	}
}
