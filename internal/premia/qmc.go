package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// MethodQMCBasket prices European basket puts by randomised quasi-Monte
// Carlo: rotated Halton points mapped through the inverse normal CDF and
// the correlation Cholesky factor. Several independent rotations provide
// the confidence interval. Each rotation's point set is partitioned into
// leapfrogged Halton streams consumed by the multicore pricing kernel, so
// the evaluated point set is identical to a serial scan regardless of the
// thread count. Parameters: "paths" (total points), "rotations"
// (default 8), "threads".
const MethodQMCBasket = "QMC_Basket"

func qmcBasket(p *Problem) (Result, error) {
	m, err := mbsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	rotations := p.Params.Int("rotations", 8)
	if paths < 2 || rotations < 2 {
		return Result{}, fmt.Errorf("premia: QMC_Basket needs paths >= 2 and rotations >= 2")
	}
	if m.Dim > mathutil.MaxHaltonDim {
		return Result{}, fmt.Errorf("premia: QMC_Basket supports dim <= %d, got %d", mathutil.MaxHaltonDim, m.Dim)
	}
	d := m.Dim
	chol := make([]float64, d*d)
	if err := mathutil.Cholesky(mathutil.CorrelationMatrix(d, m.Rho), d, chol); err != nil {
		return Result{}, fmt.Errorf("premia: QMC basket correlation: %w", err)
	}
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
	vol := m.Sigma * math.Sqrt(o.T)
	df := math.Exp(-m.R * o.T)
	perRot := paths / rotations
	if perRot < 1 {
		perRot = 1
	}
	seed := mcSeed(p)
	isCall := p.Option == OptCallBasketEuro
	threads, err := kernelThreads(p)
	if err != nil {
		return Result{}, err
	}
	// Each rotation is cut into leapfrogged Halton streams (stream j of L
	// takes sequence positions j, j+L, …), one kernel shard per
	// (rotation, stream) pair. The streams share the rotation's random
	// shift, so their union is exactly the serial point set; per-rotation
	// partial sums are reduced in stream order, keeping the estimate
	// thread-invariant.
	streams := kernelShards / rotations
	if streams < 1 {
		streams = 1
	}
	if streams > perRot {
		streams = perRot
	}
	sums := make([]float64, rotations*streams)
	a := getArena(rotations * streams)
	defer putArena(a)
	kernelRun(threads, rotations*streams, func(shard int) {
		rot := shard / streams
		j := shard % streams
		h := mathutil.NewHaltonLeap(d, seed+uint64(rot)*0x9e3779b9, uint64(1+j), uint64(streams))
		count := (perRot - j + streams - 1) / streams
		sc := &a.shards[shard]
		u := sc.floats(d)
		z := sc.floats(d)
		cz := sc.floats(d)
		st := sc.floats(d)
		sum := 0.0
		for i := 0; i < count; i++ {
			h.Next(u)
			mathutil.InvNormCDFBatch(z, u)
			mathutil.MatVecLower(chol, d, z, cz)
			for k := 0; k < d; k++ {
				st[k] = m.S0 * math.Exp(drift+vol*cz[k])
			}
			if isCall {
				sum += df * payoffCall(basketValue(st), o.K)
			} else {
				sum += df * payoffPut(basketValue(st), o.K)
			}
		}
		sums[shard] = sum
	})
	// Across-rotation statistics give an unbiased error estimate for the
	// randomised QMC estimator.
	var across mathutil.Welford
	for rot := 0; rot < rotations; rot++ {
		sum := 0.0
		for j := 0; j < streams; j++ {
			sum += sums[rot*streams+j]
		}
		across.Add(sum / float64(perRot))
	}
	return Result{
		Price: across.Mean(), PriceCI: across.HalfWidth95(),
		Work: float64(perRot) * float64(rotations) * float64(d),
	}, nil
}
