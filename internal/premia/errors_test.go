package premia

import (
	"errors"
	"testing"
)

// TestSentinelErrors checks that validation failures surfaced through
// Problem.Compute classify with errors.Is despite the wrapping chains.
func TestSentinelErrors(t *testing.T) {
	base := func() *Problem {
		return New().
			SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
			Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("K", 100).Set("T", 1)
	}

	if _, err := base().Compute(); err != nil {
		t.Fatalf("baseline problem failed: %v", err)
	}

	cases := []struct {
		name string
		mod  func(*Problem) *Problem
		want error
	}{
		{"unknown method", func(p *Problem) *Problem { return p.SetMethod("no_such_method") }, ErrUnknownMethod},
		{"unsupported model", func(p *Problem) *Problem { return p.SetModel(ModelHeston) }, ErrUnknownModel},
		{"asset mismatch", func(p *Problem) *Problem { return p.SetAsset(AssetRate) }, ErrUnknownModel},
		{"unsupported option", func(p *Problem) *Problem { return p.SetOption(OptPutAmer) }, ErrUnknownOption},
	}
	for _, tc := range cases {
		_, err := tc.mod(base()).Compute()
		if err == nil {
			t.Errorf("%s: Compute succeeded, want error", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: errors.Is(%v, %v) = false", tc.name, err, tc.want)
		}
	}
}

// TestMissingParamSentinel checks that a required parameter absent from
// the table surfaces as ErrMissingParam through the method body.
func TestMissingParamSentinel(t *testing.T) {
	p := New().
		SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).Set("T", 1) // no strike K
	_, err := p.Compute()
	if err == nil {
		t.Fatal("Compute without K succeeded, want error")
	}
	if !errors.Is(err, ErrMissingParam) {
		t.Fatalf("errors.Is(%v, ErrMissingParam) = false", err)
	}
}
