module riskbench

go 1.22
