package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"riskbench/internal/portfolio"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
	varisk "riskbench/internal/var"
)

// The /risk endpoint family turns the pricing service into a
// risk-management service: on-demand VaR/CVaR reports over a position
// book (POST /risk/report) and a streaming watch mode that re-estimates
// the book's risk every round and emits limit breaches with risk
// levels and recommended actions (POST /risk/watch, NDJSON). Reports
// price through the server's risk engine as one bulk farm batch — the
// outer×inner nested workload — not through the micro-batcher: a
// thousand-scenario revaluation is a sweep, not a thousand point
// lookups.

// Caps on what one /risk request may ask for; bigger studies should use
// the varisk library (or riskbench -var) directly.
const (
	maxRiskClaims    = 4096
	maxRiskScenarios = 65536
	maxRiskTasks     = 1 << 20 // claims × (scenarios+1) for full revaluation
	maxWatchRounds   = 1000
	maxWatchInterval = 60 * time.Second
	// riskWarnFrac is the limit utilization at which a watch round turns
	// from normal to warning (the breach threshold itself is 1).
	riskWarnFrac = 0.75
	// riskScenThreads shards Monte Carlo scenario generation; the draws
	// are bit-identical at any thread count, so this is free throughput.
	riskScenThreads = 4
)

// riskBookJSON selects the position book: a named generator with a
// size, or an inline list of problems.
type riskBookJSON struct {
	Name     string        `json:"name,omitempty"` // toy | mixed | regression
	N        int           `json:"n,omitempty"`
	Problems []problemJSON `json:"problems,omitempty"`
}

func (j riskBookJSON) build() (*portfolio.Portfolio, error) {
	if len(j.Problems) > 0 {
		if j.Name != "" {
			return nil, fmt.Errorf("give a portfolio name or inline problems, not both")
		}
		if len(j.Problems) > maxRiskClaims {
			return nil, fmt.Errorf("want at most %d inline problems, got %d", maxRiskClaims, len(j.Problems))
		}
		pf := &portfolio.Portfolio{Name: "inline"}
		for i, pj := range j.Problems {
			p := pj.toProblem()
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("problem %d: %w", i, err)
			}
			pf.Items = append(pf.Items, portfolio.Item{Name: fmt.Sprintf("p%05d", i+1), Problem: p, Cost: 1})
		}
		return pf, nil
	}
	n := j.N
	if n <= 0 {
		n = 100
	}
	if n > maxRiskClaims {
		return nil, fmt.Errorf("book size %d exceeds the %d-claim request cap", n, maxRiskClaims)
	}
	switch j.Name {
	case "", "toy":
		return portfolio.Toy(n), nil
	case "mixed":
		return portfolio.Mixed(n), nil
	case "regression":
		return portfolio.Regression(), nil
	default:
		return nil, fmt.Errorf("unknown portfolio %q (want toy, mixed or regression, or inline problems)", j.Name)
	}
}

// riskScenariosJSON selects the scenario set.
type riskScenariosJSON struct {
	// Mode is "mc" (default: Monte Carlo market scenarios), "grid" (the
	// fixed historical-style shock grid) or "stress" (the regulatory
	// stress set).
	Mode string `json:"mode,omitempty"`
	// N is the Monte Carlo sample size (default 256).
	N int `json:"n,omitempty"`
	// Seed fixes the scenario stream (default 1); /risk/watch advances
	// it by one per round.
	Seed uint64 `json:"seed,omitempty"`
	// HorizonDays and the factor-vol/correlation overrides tune the
	// market model; absent fields keep the DefaultMarket calibration.
	HorizonDays float64  `json:"horizon_days,omitempty"`
	SpotVol     *float64 `json:"spot_vol,omitempty"`
	VolVol      *float64 `json:"vol_vol,omitempty"`
	RateVol     *float64 `json:"rate_vol,omitempty"`
	RhoSV       *float64 `json:"rho_sv,omitempty"`
}

func (j riskScenariosJSON) model() varisk.MarketModel {
	m := varisk.DefaultMarket()
	if j.HorizonDays > 0 {
		m.HorizonDays = j.HorizonDays
	}
	if j.SpotVol != nil {
		m.SpotVol = *j.SpotVol
	}
	if j.VolVol != nil {
		m.VolVol = *j.VolVol
	}
	if j.RateVol != nil {
		m.RateVol = *j.RateVol
	}
	if j.RhoSV != nil {
		m.RhoSV = *j.RhoSV
	}
	return m
}

// generate builds the round's scenario set; round shifts the Monte
// Carlo seed for /risk/watch (round 0 = the /risk/report set).
func (j riskScenariosJSON) generate(ctx context.Context, round uint64) ([]risk.Scenario, error) {
	switch j.Mode {
	case "", "mc":
		n := j.N
		if n <= 0 {
			n = 256
		}
		if n > maxRiskScenarios {
			return nil, fmt.Errorf("scenario count %d exceeds the %d cap", n, maxRiskScenarios)
		}
		seed := j.Seed
		if seed == 0 {
			seed = 1
		}
		return j.model().GenerateParallel(ctx, n, seed+round, riskScenThreads)
	case "grid":
		return varisk.HistoricalGrid(), nil
	case "stress":
		return risk.StressScenarios(), nil
	default:
		return nil, fmt.Errorf("unknown scenario mode %q (want mc, grid or stress)", j.Mode)
	}
}

// riskReportRequest is the wire form of POST /risk/report.
type riskReportRequest struct {
	Portfolio riskBookJSON      `json:"portfolio"`
	Scenarios riskScenariosJSON `json:"scenarios"`
	// Alphas are the confidence levels (default {0.99}); attribution
	// runs at Alphas[0].
	Alphas []float64 `json:"alphas,omitempty"`
	// Method is "deltagamma" (default: one six-scenario sensitivity
	// revaluation, then Taylor evaluation) or "full" (every scenario
	// reprices the book through the farm).
	Method string `json:"method,omitempty"`
	// ScaleDays rescales the reported numbers to another horizon by the
	// square-root-of-time rule. It needs a horizon to anchor on: mc mode
	// defaults to the market calibration's, grid/stress require an
	// explicit horizon_days (the request is rejected otherwise).
	ScaleDays float64 `json:"scale_days,omitempty"`
	// Top bounds the component-attribution rows (default 10).
	Top int `json:"top,omitempty"`
}

func (q riskReportRequest) config() varisk.Config {
	horizon := q.Scenarios.HorizonDays
	if horizon <= 0 && (q.Scenarios.Mode == "" || q.Scenarios.Mode == "mc") {
		horizon = varisk.DefaultMarket().HorizonDays
	}
	return varisk.Config{
		Alphas:        q.Alphas,
		HorizonDays:   horizon,
		ScaleDays:     q.ScaleDays,
		TopComponents: q.Top,
	}
}

type riskEstimateJSON struct {
	Alpha float64 `json:"alpha"`
	VaR   float64 `json:"var"`
	CVaR  float64 `json:"cvar"`
}

type riskComponentJSON struct {
	Name         string  `json:"name"`
	Contribution float64 `json:"contribution"`
}

type riskReportJSON struct {
	Method         string              `json:"method"`
	BaseValue      float64             `json:"base_value"`
	Scenarios      int                 `json:"scenarios"`
	HorizonDays    float64             `json:"horizon_days,omitempty"`
	ScaleDays      float64             `json:"scale_days,omitempty"`
	Estimates      []riskEstimateJSON  `json:"estimates"`
	Alpha          float64             `json:"attribution_alpha"`
	Components     []riskComponentJSON `json:"components,omitempty"`
	ComponentTotal float64             `json:"component_total"`
	WireDeltas     int                 `json:"wire_deltas,omitempty"`
	ElapsedSeconds float64             `json:"elapsed_seconds"`
}

func toRiskReportJSON(rep *varisk.Report, elapsed float64) riskReportJSON {
	out := riskReportJSON{
		Method:         rep.Method,
		BaseValue:      rep.BaseValue,
		Scenarios:      rep.Scenarios,
		HorizonDays:    rep.HorizonDays,
		ScaleDays:      rep.ScaleDays,
		Alpha:          rep.AttributionAlpha,
		ComponentTotal: rep.ComponentTotal,
		WireDeltas:     rep.WireDeltas,
		ElapsedSeconds: elapsed,
	}
	for _, e := range rep.Estimates {
		out.Estimates = append(out.Estimates, riskEstimateJSON{Alpha: e.Alpha, VaR: e.VaR, CVaR: e.CVaR})
	}
	for _, c := range rep.Components {
		out.Components = append(out.Components, riskComponentJSON{Name: c.Name, Contribution: c.Contribution})
	}
	return out
}

// estimate runs one estimation round. For the delta–gamma method the
// sensitivities are collected on first use and reused across rounds
// (pass the previous return back in); full revaluation ignores sens.
func (s *Server) estimate(ctx context.Context, method string, pf *portfolio.Portfolio, scens []risk.Scenario, cfg varisk.Config, sens *varisk.Sensitivities) (*varisk.Report, *varisk.Sensitivities, error) {
	switch method {
	case "", "deltagamma":
		if sens == nil {
			var err error
			sens, err = varisk.CollectSensitivities(ctx, *s.engine, pf)
			if err != nil {
				return nil, nil, err
			}
		}
		rep, err := varisk.DeltaGamma(sens, scens, cfg)
		return rep, sens, err
	case "full":
		if tasks := len(pf.Items) * (len(scens) + 1); tasks > maxRiskTasks {
			return nil, nil, fmt.Errorf("full revaluation of %d claims × %d scenarios is %d tasks, over the %d cap — use method deltagamma or shrink the request", len(pf.Items), len(scens), tasks, maxRiskTasks)
		}
		rep, err := varisk.FullReval(ctx, *s.engine, pf, scens, cfg)
		return rep, sens, err
	default:
		return nil, nil, fmt.Errorf("unknown method %q (want full or deltagamma)", method)
	}
}

// handleRiskIndex describes the endpoint family, so GET /risk is a
// cheap liveness probe for the risk surface (the smoke test asserts it).
func (s *Server) handleRiskIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"endpoints": map[string]string{
			"POST /risk/report": "one VaR/CVaR report over a position book",
			"POST /risk/watch":  "streaming NDJSON limit-breach watch over a position book",
		},
		"methods":    []string{"deltagamma", "full"},
		"portfolios": []string{"toy", "mixed", "regression", "inline problems"},
		"scenarios":  []string{"mc", "grid", "stress"},
	})
}

func (s *Server) handleRiskReport(w http.ResponseWriter, r *http.Request) {
	if err := s.admit(); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()
	s.reg.Counter("serve.risk.reports").Add(1)
	start := s.reg.Now()
	defer func() { s.reg.Observe("serve.risk.report_seconds", s.reg.Now()-start) }()
	var q riskReportRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	cfg := q.config()
	if err := cfg.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var span *telemetry.Span
	if !s.cfg.DisableTracing {
		// The report roots one trace; the estimator's var.* spans and the
		// farm tree below them parent onto it, so /debug/traces shows the
		// outer estimation over the inner revaluation.
		span = s.reg.StartTrace("serve.risk.report")
		defer span.End()
		ctx = telemetry.ContextWithTrace(ctx, span.Context())
	}
	pf, err := q.Portfolio.build()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	scens, err := q.Scenarios.generate(ctx, 0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s.reg.Counter("serve.risk.scenarios").Add(int64(len(scens)))
	rep, _, err := s.estimate(ctx, q.Method, pf, scens, cfg, nil)
	if err != nil {
		if ctx.Err() != nil || r.Context().Err() != nil {
			s.writeError(w, ctx.Err())
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, toRiskReportJSON(rep, s.reg.Now()-start))
}

// riskWatchRequest is the wire form of POST /risk/watch.
type riskWatchRequest struct {
	riskReportRequest
	// Limits are the compliance limits the watch checks each round
	// (zero = unchecked). Values are in book-currency loss units, like
	// the report's VaR/CVaR numbers.
	Limits struct {
		VaR  float64 `json:"var,omitempty"`
		CVaR float64 `json:"cvar,omitempty"`
	} `json:"limits"`
	// Rounds bounds the stream length (default 3, max 1000).
	Rounds int `json:"rounds,omitempty"`
	// IntervalMS sleeps between rounds (default 0, max 60000). Drain
	// waits for the round in flight, so keep watches short-lived; this
	// is a monitoring stream, not a subscription bus.
	IntervalMS int `json:"interval_ms,omitempty"`
}

type riskBreachJSON struct {
	Metric      string  `json:"metric"`
	Value       float64 `json:"value"`
	Limit       float64 `json:"limit"`
	Utilization float64 `json:"utilization"`
	Level       string  `json:"level"`
	Action      string  `json:"action"`
}

// riskWatchEventJSON is one NDJSON line of the watch stream: the
// round's risk estimate at the first confidence level, the overall risk
// level/action (the worst across checked limits, in the shape of the
// Heston-trading compliance engine), and the individual breaches.
type riskWatchEventJSON struct {
	Round     int              `json:"round"`
	BaseValue float64          `json:"base_value"`
	Alpha     float64          `json:"alpha"`
	VaR       float64          `json:"var"`
	CVaR      float64          `json:"cvar"`
	Level     string           `json:"level"`
	Action    string           `json:"action"`
	Breaches  []riskBreachJSON `json:"breaches,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// riskLevel grades a limit utilization: breached limits demand a halt,
// approaching ones (≥ riskWarnFrac) a position reduction.
func riskLevel(utilization float64) (level, action string) {
	switch {
	case utilization >= 1:
		return "critical", "halt"
	case utilization >= riskWarnFrac:
		return "warning", "reduce"
	default:
		return "normal", "none"
	}
}

// levelRank orders risk levels for the round-wide maximum.
func levelRank(level string) int {
	switch level {
	case "critical":
		return 2
	case "warning":
		return 1
	default:
		return 0
	}
}

func (s *Server) handleRiskWatch(w http.ResponseWriter, r *http.Request) {
	if err := s.admit(); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()
	s.reg.Counter("serve.risk.watches").Add(1)
	var q riskWatchRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	rounds := q.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	if rounds > maxWatchRounds {
		rounds = maxWatchRounds
	}
	interval := time.Duration(q.IntervalMS) * time.Millisecond
	if interval > maxWatchInterval {
		interval = maxWatchInterval
	}
	pf, err := q.Portfolio.build()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	cfg := q.config()
	if err := cfg.Validate(); err != nil {
		// Reject before the 200 header commits the NDJSON stream.
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// The stream lives on the client's context (a watch may legitimately
	// outlast the per-request pricing timeout); each round's pricing
	// still runs under the configured timeout.
	streamCtx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var sens *varisk.Sensitivities
	var timer *time.Timer
	for round := 1; round <= rounds; round++ {
		if streamCtx.Err() != nil {
			return
		}
		if s.drainingNow() {
			// The server is shutting down: emit a final advisory line and
			// end the stream instead of holding Drain hostage.
			_ = enc.Encode(riskWatchEventJSON{Round: round, Level: "critical", Action: "halt", Error: ErrDraining.Error()})
			return
		}
		event := s.watchRound(streamCtx, &q, pf, cfg, round, &sens)
		if err := enc.Encode(event); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.reg.Counter("serve.risk.watch.rounds").Add(1)
		if event.Error != "" {
			return
		}
		if round < rounds && interval > 0 {
			if timer == nil {
				timer = time.NewTimer(interval)
				defer timer.Stop()
			} else {
				timer.Reset(interval)
			}
			select {
			case <-timer.C:
			case <-streamCtx.Done():
				return
			}
		}
	}
}

// watchRound estimates one round and grades it against the limits.
func (s *Server) watchRound(streamCtx context.Context, q *riskWatchRequest, pf *portfolio.Portfolio, cfg varisk.Config, round int, sens **varisk.Sensitivities) riskWatchEventJSON {
	ctx, cancel := context.WithTimeout(streamCtx, s.cfg.RequestTimeout)
	defer cancel()
	var span *telemetry.Span
	if !s.cfg.DisableTracing {
		span = s.reg.StartTrace("serve.risk.watch_round")
		defer span.End()
		ctx = telemetry.ContextWithTrace(ctx, span.Context())
	}
	// Each round draws a fresh deterministic scenario set: seed+round,
	// so the stream is reproducible end to end.
	scens, err := q.Scenarios.generate(ctx, uint64(round))
	if err != nil {
		return riskWatchEventJSON{Round: round, Level: "normal", Action: "none", Error: err.Error()}
	}
	s.reg.Counter("serve.risk.scenarios").Add(int64(len(scens)))
	rep, newSens, err := s.estimate(ctx, q.Method, pf, scens, cfg, *sens)
	if err != nil {
		return riskWatchEventJSON{Round: round, Level: "normal", Action: "none", Error: err.Error()}
	}
	*sens = newSens
	est := rep.Estimates[0]
	event := riskWatchEventJSON{
		Round:     round,
		BaseValue: rep.BaseValue,
		Alpha:     est.Alpha,
		VaR:       est.VaR,
		CVaR:      est.CVaR,
		Level:     "normal",
		Action:    "none",
	}
	check := func(metric string, value, limit float64) {
		if limit <= 0 {
			return
		}
		u := value / limit
		level, action := riskLevel(u)
		if level == "normal" {
			return
		}
		// A limit breach lands in the flight recorder under the round's
		// trace, so /debug/events?trace=<id> jumps straight to the
		// revaluation tree that produced the breaching number. A breached
		// limit is an error, an approached one a warning.
		evLevel := telemetry.LevelWarn
		if level == "critical" {
			evLevel = telemetry.LevelError
		}
		s.emit(evLevel, "serve.risk.limit_breach", span.Context(),
			telemetry.Str("metric", metric),
			telemetry.Num("value", value),
			telemetry.Num("limit", limit),
			telemetry.Num("utilization", u),
			telemetry.Num("round", float64(round)))
		event.Breaches = append(event.Breaches, riskBreachJSON{
			Metric: metric, Value: value, Limit: limit, Utilization: u, Level: level, Action: action,
		})
		if levelRank(level) > levelRank(event.Level) {
			event.Level, event.Action = level, action
		}
	}
	check("var", est.VaR, q.Limits.VaR)
	check("cvar", est.CVaR, q.Limits.CVaR)
	s.reg.Counter("serve.risk.watch.breaches").Add(int64(len(event.Breaches)))
	return event
}

// drainingNow reports whether Drain has begun.
func (s *Server) drainingNow() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}
