package portfolio

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// shrinkable are the numerical-effort parameters that scale task cost
// roughly linearly.
var shrinkable = []string{"paths", "steps", "mcsteps"}

// CalibrateCosts replaces the portfolio's virtual costs with estimates
// measured on this machine: one representative claim per class is
// repriced at numerical effort scaled down by shrink (0 < shrink <= 1),
// wall time is measured, and the full-effort cost is extrapolated
// linearly. Relative within-class jitter is preserved. This turns the
// paper-calibrated cost model into a locally measured one, so simulated
// sweeps predict this hardware instead of the paper's Xeons.
func (pf *Portfolio) CalibrateCosts(shrink float64) error {
	if shrink <= 0 || shrink > 1 {
		return fmt.Errorf("portfolio: shrink must be in (0,1], got %v", shrink)
	}
	// Group items per class (name prefix before the dash). Classes are
	// measured in sorted order so calibration runs are reproducible
	// run to run (cache warming aside), not map-order shuffled.
	classIdx := map[string][]int{}
	var classes []string
	for i, it := range pf.Items {
		class := strings.SplitN(it.Name, "-", 2)[0]
		if _, ok := classIdx[class]; !ok {
			classes = append(classes, class)
		}
		classIdx[class] = append(classIdx[class], i)
	}
	sort.Strings(classes)
	for _, class := range classes {
		idxs := classIdx[class]
		rep := pf.Items[idxs[0]].Problem.Clone()
		// Shrink the dominant effort axes; remember the combined factor.
		factor := 1.0
		for _, key := range shrinkable {
			v, ok := rep.Params[key]
			if !ok {
				continue
			}
			nv := v * shrink
			if nv < 8 {
				nv = 8
			}
			if nv < v {
				factor *= nv / v
				rep.Set(key, float64(int(nv)))
			}
		}
		// Calibration's entire purpose is measuring this machine's real
		// speed, so these are deliberate wall reads: a virtual clock
		// would calibrate the simulator against itself.
		//lint:allow wallclock calibration measures real hardware speed by design
		start := time.Now()
		if _, err := rep.Compute(); err != nil {
			return fmt.Errorf("portfolio: calibrate class %s: %w", class, err)
		}
		//lint:allow wallclock calibration measures real hardware speed by design
		measured := time.Since(start).Seconds() / factor
		if measured <= 0 {
			measured = 1e-6
		}
		// Rescale the class, preserving relative jitter.
		avg := 0.0
		for _, i := range idxs {
			avg += pf.Items[i].Cost
		}
		avg /= float64(len(idxs))
		if avg <= 0 {
			continue
		}
		for _, i := range idxs {
			pf.Items[i].Cost = measured * pf.Items[i].Cost / avg
		}
	}
	return nil
}
