// Package riskbench is a risk-management benchmark for parallel
// architectures, reproducing Chancelier, Lapeyre and Lelong, "Using Premia
// and Nsp for Constructing a Risk Management Benchmark for Testing
// Parallel Architecture" (IPPS 2009 / CCPE 2014).
//
// The package is a façade over the implementation packages:
//
//   - a from-scratch option-pricing library (closed formulas, trees,
//     Crank–Nicolson finite differences, Monte Carlo, Longstaff–Schwartz
//     American Monte Carlo, Heston, local volatility);
//   - an Nsp-style object system with binary serialization, compression,
//     direct file→serial loading (SLoad) and XDR persistence;
//   - an MPI-flavoured message-passing layer over in-process and TCP
//     transports, plus a discrete-event cluster simulator with NFS and
//     Gigabit-Ethernet models;
//   - the paper's Robin-Hood task farm with its three communication
//     strategies (full load, NFS, serialized load), task batching and
//     hierarchical sub-masters;
//   - portfolio generators and a sweep harness that regenerate the
//     paper's Tables I–III.
//
// Quick start:
//
//	p := riskbench.NewProblem().
//		SetModel(riskbench.ModelBS1D).
//		SetOption(riskbench.OptCallEuro).
//		SetMethod(riskbench.MethodCFCall).
//		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
//		Set("K", 100).Set("T", 1)
//	res, err := p.Compute()
//
// Reproduce a table from the paper:
//
//	tbl, err := riskbench.RunTable(riskbench.TableIII())
//	fmt.Println(tbl.Format())
package riskbench

import (
	"riskbench/internal/bench"
	"riskbench/internal/farm"
	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
)

// Problem is a pricing problem: the (model, option, method) triple plus
// its parameters, Premia's PremiaModel.
type Problem = premia.Problem

// PricingResult is the output of Problem.Compute.
type PricingResult = premia.Result

// Model names accepted by Problem.SetModel.
const (
	ModelBS1D        = premia.ModelBS1D
	ModelBSND        = premia.ModelBSND
	ModelLocVol      = premia.ModelLocVol
	ModelHeston      = premia.ModelHeston
	ModelMerton      = premia.ModelMerton
	ModelVasicek     = premia.ModelVasicek
	ModelConstHazard = premia.ModelConstHazard
)

// Asset class names accepted by Problem.SetAsset ("equity" is the
// default).
const (
	AssetRate   = premia.AssetRate
	AssetCredit = premia.AssetCredit
)

// Option names accepted by Problem.SetOption.
const (
	OptCallEuro          = premia.OptCallEuro
	OptPutEuro           = premia.OptPutEuro
	OptCallDownOut       = premia.OptCallDownOut
	OptPutAmer           = premia.OptPutAmer
	OptPutBasketEuro     = premia.OptPutBasketEuro
	OptPutBasketAmer     = premia.OptPutBasketAmer
	OptDigitalCall       = premia.OptDigitalCall
	OptDigitalPut        = premia.OptDigitalPut
	OptAsianCallFix      = premia.OptAsianCallFix
	OptAsianPutFix       = premia.OptAsianPutFix
	OptLookbackCallFloat = premia.OptLookbackCallFloat
	OptCallBasketEuro    = premia.OptCallBasketEuro
	OptCallUpOut         = premia.OptCallUpOut
	OptZCBond            = premia.OptZCBond
	OptZCCall            = premia.OptZCCall
	OptDefaultableBond   = premia.OptDefaultableBond
	OptCDS               = premia.OptCDS
)

// Method names accepted by Problem.SetMethod.
const (
	MethodCFCall        = premia.MethodCFCall
	MethodCFPut         = premia.MethodCFPut
	MethodCFCallDownOut = premia.MethodCFCallDownOut
	MethodCFCallUpOut   = premia.MethodCFCallUpOut
	MethodCFHeston      = premia.MethodCFHeston
	MethodCFMerton      = premia.MethodCFMerton
	MethodCFDigital     = premia.MethodCFDigital
	MethodCFLookback    = premia.MethodCFLookback
	MethodTreeCRR       = premia.MethodTreeCRR
	MethodTreeTrinomial = premia.MethodTreeTrinomial
	MethodFDCrank       = premia.MethodFDCrank
	MethodFDBS          = premia.MethodFDBS
	MethodFDPSOR        = premia.MethodFDPSOR
	MethodMCEuro        = premia.MethodMCEuro
	MethodMCHeston      = premia.MethodMCHeston
	MethodMCMerton      = premia.MethodMCMerton
	MethodMCBasket      = premia.MethodMCBasket
	MethodQMCBasket     = premia.MethodQMCBasket
	MethodMCLocalVol    = premia.MethodMCLocalVol
	MethodMCAsianCV     = premia.MethodMCAsianCV
	MethodMCLookback    = premia.MethodMCLookback
	MethodMCAmerLSM     = premia.MethodMCAmerLSM
	MethodMCAmerAlfonsi = premia.MethodMCAmerAlfonsi
	MethodCFVasicek     = premia.MethodCFVasicek
	MethodMCVasicek     = premia.MethodMCVasicek
	MethodCFCredit      = premia.MethodCFCredit
	MethodMCCredit      = premia.MethodMCCredit
)

// NewProblem returns an empty equity pricing problem.
func NewProblem() *Problem { return premia.New() }

// LoadProblem reads a problem from an nsp save file written by
// Problem.Save.
func LoadProblem(path string) (*Problem, error) { return premia.Load(path) }

// Methods lists every registered pricing method.
func Methods() []string { return premia.Methods() }

// Portfolio is a named collection of pricing problems with virtual costs.
type Portfolio = portfolio.Portfolio

// RealisticPortfolio generates the paper's §4.3 7931-claim bank
// portfolio.
func RealisticPortfolio() *Portfolio { return portfolio.Realistic() }

// ToyPortfolio generates the §4.2 portfolio of n closed-form vanillas
// (the paper uses 10,000).
func ToyPortfolio(n int) *Portfolio { return portfolio.Toy(n) }

// RegressionPortfolio generates the §4.1 non-regression test suite.
func RegressionPortfolio() *Portfolio { return portfolio.Regression() }

// MixedPortfolio generates a multi-asset book of ~n claims (equity,
// rates, credit) — an extension beyond the paper's equity-only study.
func MixedPortfolio(n int) *Portfolio { return portfolio.Mixed(n) }

// Strategy is a master→worker communication strategy.
type Strategy = farm.Strategy

// The paper's three communication strategies.
const (
	FullLoad       = farm.FullLoad
	NFSLoad        = farm.NFSLoad
	SerializedLoad = farm.SerializedLoad
)

// TableSpec describes one of the paper's evaluation tables.
type TableSpec = bench.TableSpec

// Table is a completed sweep.
type Table = bench.Table

// TableI returns the spec reproducing the paper's Table I (non-regression
// test speedups, 2–256 CPUs).
func TableI() TableSpec { return bench.TableI() }

// TableII returns the spec reproducing Table II (toy portfolio strategy
// comparison, 2–50 CPUs).
func TableII() TableSpec { return bench.TableII() }

// TableIII returns the spec reproducing Table III (realistic portfolio,
// 2–512 CPUs).
func TableIII() TableSpec { return bench.TableIII() }

// RunTable executes a table sweep on the simulated cluster.
func RunTable(spec TableSpec) (*Table, error) { return bench.RunTable(spec) }

// Greeks is the full sensitivity set of one claim.
type Greeks = premia.Greeks

// ComputeGreeks returns delta, gamma, vega, theta and rho for any
// registered problem (analytic where available, bump-and-reprice with
// common random numbers otherwise). The zero GreekBumps value selects
// sensible defaults.
func ComputeGreeks(p *Problem) (Greeks, error) {
	return premia.ComputeGreeks(p, premia.GreekBumps{})
}

// Scenario is a named joint market move used by the risk engine.
type Scenario = risk.Scenario

// RiskEngine revalues portfolios under scenarios on a live local farm.
type RiskEngine = risk.Engine

// Valuation is a revaluation surface (base + per-scenario values).
type Valuation = risk.Valuation

// SpotLadder, VolLadder, RateShifts and StressScenarios are the standard
// scenario sets of the risk engine.
func SpotLadder() []Scenario      { return risk.SpotLadder() }
func VolLadder() []Scenario       { return risk.VolLadder() }
func RateShifts() []Scenario      { return risk.RateShifts() }
func StressScenarios() []Scenario { return risk.StressScenarios() }

// VaR returns the empirical value-at-risk of a P&L sample at the given
// confidence level.
func VaR(pnls []float64, alpha float64) float64 { return risk.VaR(pnls, alpha) }

// ImpliedVol inverts a vanilla problem's Black–Scholes price: it returns
// the volatility at which the problem's option is worth the given market
// price.
func ImpliedVol(p *Problem, price float64) (float64, error) {
	return premia.ImpliedVolFromProblem(p, price)
}
