package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"riskbench/internal/lint"
)

// golden runs one analyzer over a testdata package and matches its
// diagnostics against the package's `// want `regexp`` comments: every
// want must be satisfied by a diagnostic on its line, and every
// surviving diagnostic must be expected. //lint:allow directives are
// applied first, so an exemption that fails to suppress shows up as an
// unexpected diagnostic.
func golden(t *testing.T, loader *lint.Loader, analyzer *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), "fixture/"+dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	unscoped := *analyzer
	unscoped.Match = nil // fixtures live outside the production package scope
	diags := lint.Run(pkg, []*lint.Analyzer{&unscoped})

	wants := map[string][]*regexp.Regexp{} // "file:line" -> patterns
	matched := map[string]int{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want `")
				if !ok {
					continue
				}
				text, ok = strings.CutSuffix(text, "`")
				if !ok {
					t.Fatalf("%s: unterminated want comment %q", pkg.Fset.Position(c.Pos()), c.Text)
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("%s: bad want pattern: %v", pkg.Fset.Position(c.Pos()), err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey(pos.Filename, pos.Line)
				wants[key] = append(wants[key], re)
			}
		}
	}
	for _, d := range diags {
		key := lineKey(d.Pos.Filename, d.Pos.Line)
		ok := false
		for _, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched[key]++
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		if matched[key] < len(res) {
			t.Errorf("%s: expected %d diagnostic(s), matched %d", key, len(res), matched[key])
		}
	}
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

func TestAnalyzersGolden(t *testing.T) {
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer *lint.Analyzer
		dirs     []string
	}{
		{lint.Detrand, []string{"detrand"}},
		{lint.Maporder, []string{"maporder"}},
		{lint.Wallclock, []string{"wallclock"}},
		{lint.Ctxflow, []string{"ctxflow"}},
		{lint.Wireshape, []string{"wireshape", "wireshape_stale"}},
		{lint.Metricnames, []string{"metricnames"}},
	}
	for _, c := range cases {
		for _, dir := range c.dirs {
			t.Run(c.analyzer.Name+"/"+dir, func(t *testing.T) {
				golden(t, loader, c.analyzer, dir)
			})
		}
	}
}

// TestRepoClean is the self-hosting gate: the production tree must
// lint clean, including its //lint:allow annotations being live. This
// is what makes "deleting a violation fix breaks the build" true in CI
// even before make lint runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAll(loader, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDirectiveHygiene proves the checked-exemption rules: a stale
// allow, an unknown analyzer name and a reasonless directive are all
// diagnostics themselves.
func TestDirectiveHygiene(t *testing.T) {
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "directives"), "fixture/directives")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkg, lint.All())
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	for _, want := range []string{
		"suppresses nothing here",
		"unknown analyzer",
		"needs a reason",
	} {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %v", want, got)
		}
	}
	if len(diags) != 3 {
		t.Errorf("want exactly 3 directive diagnostics, got %d: %v", len(diags), got)
	}
}
