package mathutil

import (
	"math"
	"testing"
)

// applyTridiag computes y = M x for M = tridiag(a, b, c).
func applyTridiag(a, b, c, x []float64) []float64 {
	n := len(b)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[i] * x[i]
		if i > 0 {
			y[i] += a[i] * x[i-1]
		}
		if i < n-1 {
			y[i] += c[i] * x[i+1]
		}
	}
	return y
}

func randomDominantSystem(r *RNG, n int) (a, b, c, x []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	x = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() - 0.5
		c[i] = r.Float64() - 0.5
		b[i] = 2 + r.Float64() // diagonally dominant
		x[i] = 2*r.Float64() - 1
	}
	return
}

func TestSolveTridiagRecoversSolution(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{1, 2, 3, 10, 100, 999} {
		a, b, c, want := randomDominantSystem(r, n)
		d := applyTridiag(a, b, c, want)
		got := make([]float64, n)
		scratch := make([]float64, n)
		if err := SolveTridiag(a, b, c, d, got, scratch); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestSolveTridiagEmpty(t *testing.T) {
	if err := SolveTridiag(nil, nil, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTridiagSingular(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{0, 1}
	c := []float64{0, 0}
	d := []float64{1, 1}
	x := make([]float64, 2)
	if err := SolveTridiag(a, b, c, d, x, make([]float64, 2)); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveTridiagAliasD(t *testing.T) {
	r := NewRNG(2)
	n := 50
	a, b, c, want := randomDominantSystem(r, n)
	d := applyTridiag(a, b, c, want)
	if err := SolveTridiag(a, b, c, d, d, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-10 {
			t.Fatalf("aliased solve wrong at %d", i)
		}
	}
}

func TestBrennanSchwartzMatchesUnconstrainedWhenObstacleInactive(t *testing.T) {
	r := NewRNG(3)
	n := 80
	a, b, c, want := randomDominantSystem(r, n)
	d := applyTridiag(a, b, c, want)
	psi := make([]float64, n)
	for i := range psi {
		psi[i] = -1e9 // never binds
	}
	got := make([]float64, n)
	if err := SolveTridiagBS(a, b, c, d, psi, got, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBrennanSchwartzRespectsObstacle(t *testing.T) {
	r := NewRNG(4)
	n := 60
	a, b, c, sol := randomDominantSystem(r, n)
	d := applyTridiag(a, b, c, sol)
	psi := make([]float64, n)
	for i := range psi {
		psi[i] = sol[i] + 0.5 // obstacle strictly above the free solution
	}
	got := make([]float64, n)
	if err := SolveTridiagBS(a, b, c, d, psi, got, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] < psi[i]-1e-12 {
			t.Fatalf("obstacle violated at %d: %v < %v", i, got[i], psi[i])
		}
	}
}

func TestPSORSolvesLCP(t *testing.T) {
	r := NewRNG(5)
	n := 60
	a, b, c, sol := randomDominantSystem(r, n)
	// Make the matrix an M-matrix-like system (negative off-diagonals) as
	// produced by implicit finite differences, for PSOR convergence.
	for i := range a {
		a[i] = -math.Abs(a[i])
		c[i] = -math.Abs(c[i])
	}
	d := applyTridiag(a, b, c, sol)
	psi := make([]float64, n)
	for i := range psi {
		psi[i] = sol[i] - 1 // inactive obstacle: PSOR must reproduce sol
	}
	x := make([]float64, n)
	iters, err := PSOR(a, b, c, d, psi, x, 1.2, 1e-12, 10000)
	if err != nil {
		t.Fatalf("PSOR: %v after %d iters", err, iters)
	}
	for i := range sol {
		if math.Abs(x[i]-sol[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], sol[i])
		}
	}
}

func TestPSORAgainstBrennanSchwartz(t *testing.T) {
	// With an active obstacle on an M-matrix with connected contact set the
	// two methods must agree.
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	psi := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i], c[i] = -1, -1
		b[i] = 2.5
		d[i] = 0.1
		// Decreasing obstacle: binds at the left end (like a put payoff).
		psi[i] = 1 - float64(i)/float64(n)
	}
	xbs := make([]float64, n)
	if err := SolveTridiagBS(a, b, c, d, psi, xbs, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	xp := make([]float64, n)
	copy(xp, psi)
	if _, err := PSOR(a, b, c, d, psi, xp, 1.3, 1e-13, 20000); err != nil {
		t.Fatal(err)
	}
	for i := range xbs {
		if math.Abs(xbs[i]-xp[i]) > 1e-7 {
			t.Fatalf("mismatch at %d: BS=%v PSOR=%v", i, xbs[i], xp[i])
		}
	}
}
