package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// sloClock builds a registry on a settable virtual clock.
func sloClock(t *testing.T) (*Registry, *float64) {
	t.Helper()
	r := New()
	clk := new(float64)
	r.SetClock(func() float64 { return *clk })
	return r, clk
}

// TestSLOLatencyBreachCycle forces a p99 breach under the virtual
// clock and walks the full transition: burn gauges rise, the breached
// gauge flips, slo.breach.begin carries the worst offender's trace,
// recovery flips everything back and logs slo.breach.end.
func TestSLOLatencyBreachCycle(t *testing.T) {
	r, clk := sloClock(t)
	mon, err := NewSLOMonitor(r, Objective{
		Name: "lat", Histogram: "lat.req", Threshold: 0.05,
		Target: 0.99, ShortWindow: 60, LongWindow: 300, MaxBurn: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Histogram("lat.req")

	mon.Tick() // t=0 baseline: nothing observed, burn 0
	if g := r.Gauge("slo.lat.breached").Value(); g != 0 {
		t.Fatalf("breached gauge = %v before any traffic", g)
	}

	// One second later every request is slow: instant 100× burn in both
	// (clipped) windows.
	*clk = 1
	for i := 0; i < 20; i++ {
		h.ObserveExemplar(0.5, uint64(0xbad0+i), *clk)
	}
	mon.Tick()
	if bs := r.Gauge("slo.lat.burn_short").Value(); bs < 2 {
		t.Errorf("burn_short = %v, want ≥ MaxBurn", bs)
	}
	if g := r.Gauge("slo.lat.breached").Value(); g != 1 {
		t.Fatalf("breached gauge = %v, want 1", g)
	}
	begins := r.Events(EventFilter{Prefix: "slo.breach.begin"})
	if len(begins) != 1 {
		t.Fatalf("got %d slo.breach.begin events, want 1", len(begins))
	}
	if begins[0].Level != LevelError {
		t.Errorf("breach level = %v, want error", begins[0].Level)
	}
	if begins[0].TraceID == 0 {
		t.Error("breach event carries no exemplar trace")
	}
	// The trace must belong to one of the slow observations.
	if begins[0].TraceID < 0xbad0 || begins[0].TraceID >= 0xbad0+20 {
		t.Errorf("breach trace %x is not an above-threshold exemplar", begins[0].TraceID)
	}

	// Recovery: long window's worth of healthy traffic later, both
	// burns drop below MaxBurn and the breach ends.
	*clk = 400
	for i := 0; i < 10000; i++ {
		h.Observe(0.001)
	}
	mon.Tick()
	*clk = 800
	mon.Tick()
	if g := r.Gauge("slo.lat.breached").Value(); g != 0 {
		t.Fatalf("breached gauge = %v after recovery, want 0", g)
	}
	ends := r.Events(EventFilter{Prefix: "slo.breach.end"})
	if len(ends) != 1 {
		t.Fatalf("got %d slo.breach.end events, want 1", len(ends))
	}
	if len(r.Events(EventFilter{Prefix: "slo.breach.begin"})) != 1 {
		t.Error("extra begin events: transitions must fire once per edge")
	}
}

// TestSLOBurnRateMath pins the burn arithmetic: a 2% bad fraction
// against a 99% target is exactly burn 2.
func TestSLOBurnRateMath(t *testing.T) {
	r, clk := sloClock(t)
	mon, err := NewSLOMonitor(r, Objective{
		Name: "err", ErrorCounter: "svc.errors", TotalCounter: "svc.total",
		Target: 0.99, ShortWindow: 10, LongWindow: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Tick() // baseline at t=0: 0/0
	*clk = 50
	r.Counter("svc.total").Add(1000)
	r.Counter("svc.errors").Add(20) // 2% bad
	mon.Tick()
	if got := r.Gauge("slo.err.burn_short").Value(); math.Abs(got-2) > 1e-9 {
		t.Errorf("burn_short = %v, want 2 (2%% bad / 1%% budget)", got)
	}
	if got := r.Gauge("slo.err.burn_long").Value(); math.Abs(got-2) > 1e-9 {
		t.Errorf("burn_long = %v, want 2", got)
	}
	// Push clearly past MaxBurn (default 2) and expect the breach.
	*clk = 55
	r.Counter("svc.total").Add(100)
	r.Counter("svc.errors").Add(100)
	mon.Tick()
	if g := r.Gauge("slo.err.breached").Value(); g != 1 {
		t.Errorf("breached = %v, want 1 past MaxBurn", g)
	}
}

// TestSLOShortWindowAlone checks the two-window AND: a short burst that
// the long window has already absorbed must not breach.
func TestSLOShortWindowAlone(t *testing.T) {
	r, clk := sloClock(t)
	mon, err := NewSLOMonitor(r, Objective{
		Name: "and", ErrorCounter: "a.errors", TotalCounter: "a.total",
		Target: 0.9, ShortWindow: 10, LongWindow: 1000, MaxBurn: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Long history of good traffic.
	tot := r.Counter("a.total")
	for i := 0; i < 20; i++ {
		*clk = float64(i * 60)
		tot.Add(10000)
		mon.Tick()
	}
	// A burst: 100% bad over the short window, a drop in the long one.
	*clk = 20 * 60
	tot.Add(10)
	r.Counter("a.errors").Add(10)
	mon.Tick()
	if bs := r.Gauge("slo.and.burn_short").Value(); bs < 2 {
		t.Fatalf("burn_short = %v, want ≥ 2 (the burst is current)", bs)
	}
	if bl := r.Gauge("slo.and.burn_long").Value(); bl >= 2 {
		t.Fatalf("burn_long = %v, want < 2 (long window absorbs the blip)", bl)
	}
	if g := r.Gauge("slo.and.breached").Value(); g != 0 {
		t.Errorf("breached = %v: a blip must not breach without the long window", g)
	}
}

// TestSLOValidation rejects the misdeclarations NewSLOMonitor guards.
func TestSLOValidation(t *testing.T) {
	r := New()
	bad := []Objective{
		{Name: "Bad-Name", Histogram: "h.x", Threshold: 1, Target: 0.9},
		{Name: "nokind", Target: 0.9},
		{Name: "both", Histogram: "h.x", Threshold: 1, ErrorCounter: "e.c", TotalCounter: "t.c", Target: 0.9},
		{Name: "target", Histogram: "h.x", Threshold: 1, Target: 1.5},
		{Name: "windows", Histogram: "h.x", Threshold: 1, Target: 0.9, ShortWindow: 100, LongWindow: 10},
		{Name: "noth", Histogram: "h.x", Target: 0.9},
	}
	for _, o := range bad {
		if _, err := NewSLOMonitor(r, o); err == nil {
			t.Errorf("objective %+v validated, want error", o)
		}
	}
	dup := Objective{Name: "same", Histogram: "h.x", Threshold: 1, Target: 0.9}
	if _, err := NewSLOMonitor(r, dup, dup); err == nil {
		t.Error("duplicate objective names validated, want error")
	}
	if _, err := NewSLOMonitor(nil, dup); err == nil {
		t.Error("nil registry accepted")
	}
}

// TestSLOHandler checks the /debug/slo payload shape and the nil-monitor
// degradation.
func TestSLOHandler(t *testing.T) {
	r, clk := sloClock(t)
	mon, err := NewSLOMonitor(r,
		Objective{Name: "lat", Histogram: "lat.req", Threshold: 0.05, Target: 0.99},
		Objective{Name: "err", ErrorCounter: "e.c", TotalCounter: "t.c", Target: 0.999},
	)
	if err != nil {
		t.Fatal(err)
	}
	r.Histogram("lat.req").ObserveExemplar(0.2, 0xcafe, 1)
	*clk = 1
	mon.Tick()
	srv := httptest.NewServer(SLOHandler(mon))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Objectives []SLOStatus `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Objectives) != 2 {
		t.Fatalf("got %d objectives, want 2", len(body.Objectives))
	}
	lat := body.Objectives[0]
	if lat.Name != "lat" || lat.Kind != "latency" || lat.Threshold != 0.05 {
		t.Errorf("latency status = %+v", lat)
	}
	if lat.WorstExample != "000000000000cafe" {
		t.Errorf("worst exemplar trace = %q, want the slow observation's", lat.WorstExample)
	}
	if body.Objectives[1].Kind != "errors" {
		t.Errorf("second objective kind = %q, want errors", body.Objectives[1].Kind)
	}

	// A nil monitor (SLOs disabled) serves an empty list, not a panic.
	nilSrv := httptest.NewServer(SLOHandler(nil))
	defer nilSrv.Close()
	nresp, err := nilSrv.Client().Get(nilSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	var raw strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := nresp.Body.Read(buf)
		raw.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(raw.String(), `"objectives": []`) {
		t.Errorf("nil monitor payload = %s, want empty objectives array", raw.String())
	}
}
