package mpi

import "sync"

// mailbox is an ordered store of received messages with blocking matched
// retrieval. It preserves arrival order per (source, tag) pair, which is
// all MPI guarantees, and in fact preserves global arrival order.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// put appends a message and wakes all waiters.
func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.msgs = append(mb.msgs, m)
	mb.cond.Broadcast()
}

// close unblocks every waiter with ErrClosed.
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// find returns the index of the first matching message, or -1.
func (mb *mailbox) find(source, tag int) int {
	for i, m := range mb.msgs {
		if matches(m, source, tag) {
			return i
		}
	}
	return -1
}

// probe blocks until a matching message exists and returns its status
// without consuming it.
func (mb *mailbox) probe(source, tag int) (Status, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if i := mb.find(source, tag); i >= 0 {
			m := mb.msgs[i]
			return Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
		}
		if mb.closed {
			return Status{}, ErrClosed
		}
		mb.cond.Wait()
	}
}

// recv blocks until a matching message exists and removes it.
func (mb *mailbox) recv(source, tag int) (message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if i := mb.find(source, tag); i >= 0 {
			m := mb.msgs[i]
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return m, nil
		}
		if mb.closed {
			return message{}, ErrClosed
		}
		mb.cond.Wait()
	}
}
