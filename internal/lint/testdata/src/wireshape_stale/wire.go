// Package stalewire seeds the stale-lock case: the protocol constant
// was bumped but the lock still records the old version, so the lock
// no longer proves anything about the current protocol.
package stalewire

// ProtoLatest was bumped to 3; the lock still says 2.
const ProtoLatest = 3 // want `still records proto 2`

// Frame's shape is unchanged; only the recorded proto is stale.
type Frame struct {
	Dest, Src, Tag int32
}
