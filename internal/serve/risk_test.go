package serve

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

func riskServer() *Server {
	return New(Config{Engine: &risk.Engine{Workers: 4}, MaxDelay: time.Millisecond, Telemetry: telemetry.New()})
}

func TestRiskIndex(t *testing.T) {
	s := riskServer()
	defer s.Close()
	w := getPath(s, "/risk")
	if w.Code != 200 {
		t.Fatalf("GET /risk = %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "/risk/report") || !strings.Contains(w.Body.String(), "/risk/watch") {
		t.Errorf("index does not describe the endpoint family: %s", w.Body)
	}
}

func TestRiskReportDeltaGamma(t *testing.T) {
	s := riskServer()
	defer s.Close()
	w := postJSON(s, "/risk/report", `{"portfolio":{"name":"toy","n":16},
		"scenarios":{"mode":"mc","n":128,"seed":7},"alphas":[0.95,0.99]}`)
	if w.Code != 200 {
		t.Fatalf("report = %d: %s", w.Code, w.Body)
	}
	var rep struct {
		Method    string  `json:"method"`
		BaseValue float64 `json:"base_value"`
		Scenarios int     `json:"scenarios"`
		Estimates []struct {
			Alpha, VaR, CVaR float64
		} `json:"estimates"`
		Components []struct {
			Name         string
			Contribution float64
		} `json:"components"`
		WireDeltas int `json:"wire_deltas"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Method != "deltagamma" || rep.Scenarios != 128 || rep.BaseValue <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Estimates) != 2 || rep.Estimates[0].Alpha != 0.95 {
		t.Fatalf("estimates %+v", rep.Estimates)
	}
	for _, e := range rep.Estimates {
		if e.CVaR < e.VaR {
			t.Errorf("CVaR %v below VaR %v at %v", e.CVaR, e.VaR, e.Alpha)
		}
	}
	if len(rep.Components) == 0 {
		t.Error("no component attribution")
	}

	// Determinism through the wire: the same request reports the same
	// numbers bit for bit.
	w2 := postJSON(s, "/risk/report", `{"portfolio":{"name":"toy","n":16},
		"scenarios":{"mode":"mc","n":128,"seed":7},"alphas":[0.95,0.99]}`)
	var rep2 struct {
		Estimates []struct{ Alpha, VaR, CVaR float64 } `json:"estimates"`
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &rep2); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Estimates {
		if rep.Estimates[i].VaR != rep2.Estimates[i].VaR {
			t.Errorf("repeat request changed VaR: %v vs %v", rep.Estimates[i].VaR, rep2.Estimates[i].VaR)
		}
	}
}

func TestRiskReportFullRevaluation(t *testing.T) {
	s := riskServer()
	defer s.Close()
	w := postJSON(s, "/risk/report", `{"portfolio":{"name":"toy","n":8},
		"scenarios":{"mode":"grid"},"method":"full","alphas":[0.9]}`)
	if w.Code != 200 {
		t.Fatalf("full report = %d: %s", w.Code, w.Body)
	}
	var rep struct {
		Method    string `json:"method"`
		Scenarios int    `json:"scenarios"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Method != "full" || rep.Scenarios != 46 {
		t.Fatalf("report %+v, want full over the 46-scenario grid", rep)
	}
}

func TestRiskReportBadRequests(t *testing.T) {
	s := riskServer()
	defer s.Close()
	for name, body := range map[string]string{
		"bad json":       `{`,
		"bad portfolio":  `{"portfolio":{"name":"nope"}}`,
		"bad method":     `{"method":"quantum"}`,
		"bad mode":       `{"scenarios":{"mode":"astrology"}}`,
		"over task cap":  `{"portfolio":{"name":"toy","n":4096},"scenarios":{"n":4096},"method":"full"}`,
		"over scen cap":  `{"scenarios":{"n":100000}}`,
		"over claim cap": `{"portfolio":{"n":100000}}`,
		// Confidence levels must be strictly in (0,1) — these used to panic
		// the handler inside risk.VaR instead of 400ing.
		"alpha above 1":  `{"alphas":[1.5]}`,
		"alpha at 1":     `{"alphas":[0.95,1]}`,
		"alpha zero":     `{"alphas":[0]}`,
		"alpha negative": `{"alphas":[-1]}`,
		// scale_days needs a horizon to anchor on; grid mode has none
		// unless horizon_days is set explicitly.
		"scale sans horizon": `{"scenarios":{"mode":"grid"},"scale_days":10}`,
	} {
		if w := postJSON(s, "/risk/report", body); w.Code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
		}
	}
}

// TestRiskWatchRejectsBadConfigBeforeStreaming: an invalid confidence
// level must 400 up front, not abort the NDJSON stream after a 200.
func TestRiskWatchRejectsBadConfigBeforeStreaming(t *testing.T) {
	s := riskServer()
	defer s.Close()
	for name, body := range map[string]string{
		"alpha above 1":      `{"portfolio":{"n":4},"scenarios":{"n":16},"alphas":[1.5]}`,
		"scale sans horizon": `{"portfolio":{"n":4},"scenarios":{"mode":"stress"},"scale_days":5}`,
	} {
		if w := postJSON(s, "/risk/watch", body); w.Code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
		}
	}
}

// TestRiskWatchStreamsBreaches drives the streaming watch with a limit
// the book is guaranteed to breach and checks the NDJSON stream: one
// event per round, graded critical/halt, with the VaR breach itemized.
func TestRiskWatchStreamsBreaches(t *testing.T) {
	s := riskServer()
	defer s.Close()
	w := postJSON(s, "/risk/watch", `{"portfolio":{"name":"toy","n":8},
		"scenarios":{"mode":"mc","n":64,"seed":3},"alphas":[0.99],
		"limits":{"var":1e-9},"rounds":3}`)
	if w.Code != 200 {
		t.Fatalf("watch = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("Content-Type %q, want NDJSON", ct)
	}
	type watchBreach struct {
		Metric      string  `json:"metric"`
		Utilization float64 `json:"utilization"`
		Action      string  `json:"action"`
	}
	type watchEvent struct {
		Round    int           `json:"round"`
		VaR      float64       `json:"var"`
		Level    string        `json:"level"`
		Action   string        `json:"action"`
		Breaches []watchBreach `json:"breaches"`
		Error    string        `json:"error"`
	}
	var events []watchEvent
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var ev watchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3 rounds", len(events))
	}
	for i, ev := range events {
		if ev.Error != "" {
			t.Fatalf("round %d errored: %s", ev.Round, ev.Error)
		}
		if ev.Round != i+1 || ev.VaR <= 0 {
			t.Fatalf("event %d ill-formed: %+v", i, ev)
		}
		if ev.Level != "critical" || ev.Action != "halt" {
			t.Errorf("round %d level/action = %s/%s, want critical/halt", ev.Round, ev.Level, ev.Action)
		}
		if len(ev.Breaches) != 1 || ev.Breaches[0].Metric != "var" || ev.Breaches[0].Utilization < 1 {
			t.Errorf("round %d breaches %+v, want one var breach", ev.Round, ev.Breaches)
		}
	}
	// Each round draws at seed+round, so consecutive rounds see different
	// scenario sets and (almost surely) different VaR numbers.
	if events[0].VaR == events[1].VaR {
		t.Error("rounds 1 and 2 report identical VaR; seed does not advance")
	}
}

// TestRiskWatchNoLimits: an unlimited watch still streams estimates,
// all graded normal.
func TestRiskWatchNoLimits(t *testing.T) {
	s := riskServer()
	defer s.Close()
	w := postJSON(s, "/risk/watch", `{"portfolio":{"name":"toy","n":4},
		"scenarios":{"n":32},"rounds":2}`)
	if w.Code != 200 {
		t.Fatalf("watch = %d: %s", w.Code, w.Body)
	}
	lines := strings.Count(strings.TrimSpace(w.Body.String()), "\n") + 1
	if lines != 2 {
		t.Fatalf("%d lines, want 2", lines)
	}
	if strings.Contains(w.Body.String(), "critical") {
		t.Error("unlimited watch reported a breach")
	}
}

// TestRiskMetrics: the serve.risk.* counters move when reports run.
func TestRiskMetrics(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Engine: &risk.Engine{Workers: 2}, MaxDelay: time.Millisecond, Telemetry: reg})
	defer s.Close()
	if w := postJSON(s, "/risk/report", `{"portfolio":{"n":4},"scenarios":{"n":16}}`); w.Code != 200 {
		t.Fatalf("report = %d: %s", w.Code, w.Body)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.risk.reports"] != 1 {
		t.Errorf("serve.risk.reports = %d, want 1", snap.Counters["serve.risk.reports"])
	}
	if snap.Counters["serve.risk.scenarios"] != 16 {
		t.Errorf("serve.risk.scenarios = %d, want 16", snap.Counters["serve.risk.scenarios"])
	}
}
