package risk

import (
	"context"
	"errors"
	"testing"

	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// TestPriceBatchTCPBackend prices a batch over the TCP backend with a
// FRESH registry per worker and checks (a) the prices match the local
// backend bit-for-bit and (b) the master reassembles one trace whose
// worker-side farm.compute spans parent onto its farm.task spans — the
// spans could only have arrived over the wire.
func TestPriceBatchTCPBackend(t *testing.T) {
	reg := telemetry.New()
	e := Engine{
		Workers:   2,
		BatchSize: 2,
		Telemetry: reg,
		Backend:   &TCPBackend{Spawn: GoTCPWorkers(func(int) *telemetry.Registry { return telemetry.New() })},
	}
	probs := []*premia.Problem{callProblem(90), callProblem(100), callProblem(110)}
	root := reg.StartTrace("test.request")
	ctx := telemetry.ContextWithTrace(context.Background(), root.Context())
	out, err := e.PriceBatch(ctx, probs)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	local := Engine{Workers: 2, BatchSize: 2}
	want, err := local.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probs {
		if out[i].Err != nil {
			t.Fatalf("problem %d: %v", i, out[i].Err)
		}
		if out[i].Result.Price != want[i].Result.Price {
			t.Errorf("problem %d: TCP price %v, local %v", i, out[i].Result.Price, want[i].Result.Price)
		}
	}

	traces := reg.Traces()
	if len(traces) != 1 {
		t.Fatalf("master retains %d traces, want 1", len(traces))
	}
	tr := traces[0]
	byID := make(map[uint64]telemetry.SpanRecord, len(tr.Spans))
	count := map[string]int{}
	for _, s := range tr.Spans {
		byID[s.ID] = s
		count[s.Name]++
	}
	if count["farm.compute"] != len(probs) || count["farm.task"] != len(probs) {
		t.Fatalf("span counts %v, want %d farm.task and %d farm.compute", count, len(probs), len(probs))
	}
	for _, s := range tr.Spans {
		if s.Name != "farm.compute" {
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok || parent.Name != "farm.task" {
			t.Fatalf("farm.compute parent = %+v, want a farm.task span", parent)
		}
	}
	chain := []string{"farm.run", "risk.price_batch", "test.request"}
	span, _ := tr.Find("farm.run")
	for _, wantParent := range chain[1:] {
		parent, ok := byID[span.ParentID]
		if !ok || parent.Name != wantParent {
			t.Fatalf("%s parent = %+v, want %s", span.Name, parent, wantParent)
		}
		span = parent
	}
}

// TestTCPBackendNeedsSpawn checks the configuration error.
func TestTCPBackendNeedsSpawn(t *testing.T) {
	e := Engine{Backend: &TCPBackend{}}
	_, err := e.PriceBatch(context.Background(), []*premia.Problem{callProblem(100)})
	if err == nil {
		t.Fatal("TCPBackend without Spawn priced a batch")
	}
}

// TestPriceBatchTCPBackendCancelled checks that cancellation surfaces
// context.Canceled through the TCP backend without hanging.
func TestPriceBatchTCPBackendCancelled(t *testing.T) {
	e := Engine{
		Workers: 2,
		Backend: &TCPBackend{Spawn: GoTCPWorkers(nil)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.PriceBatch(ctx, []*premia.Problem{callProblem(90), callProblem(100)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TCP batch returned %v, want context.Canceled", err)
	}
}
