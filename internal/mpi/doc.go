// Package mpi provides the message-passing layer of the benchmark: a small
// MPI-2-flavoured API (ranked communicators, tagged sends, blocking
// probe/receive, packed buffers, object transmission) implemented from
// scratch on two transports, since Go has no MPI ecosystem:
//
//   - an in-process transport where every rank is a goroutine and messages
//     move through mailboxes (the moral equivalent of MPI_Comm_spawn-ing
//     Nsp slaves on one node, paper Fig. 1);
//   - a TCP transport with a hub topology: rank 0 listens, workers dial
//     in, and frames are routed through the hub so any rank can message
//     any other rank with a single connection per worker.
//
// On top of raw byte messages the package offers the paper's object
// primitives: SendObj/RecvObj transmit any nsp.Object by transparent
// serialization (and, as in Nsp, RecvObj "unseals" a received Serial
// object back into the value it wraps), while Pack/Unpack expose the
// MPI_Pack/MPI_Unpack buffer path used by the Fig. 4–5 scripts.
//
// The third implementation of Comm lives in package simnet: a
// discrete-event simulated cluster with the same semantics but virtual
// time, used to reproduce the paper's 2–512 CPU sweeps on one machine.
package mpi
