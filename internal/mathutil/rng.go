package mathutil

import "math"

// pcgMult is the multiplier of the 128-bit linear congruential step used by
// PCG64 (PCG XSL RR 128/64), from O'Neill's reference implementation.
const (
	pcgMultHi = 2549297995355413924
	pcgMultLo = 4865540595714422341
	pcgIncHi  = 6364136223846793005
	pcgIncLo  = 1442695040888963407
)

// RNG is a deterministic PCG64 (XSL RR 128/64) pseudo random number
// generator. The zero value is not valid; construct one with NewRNG.
//
// RNG is deliberately not safe for concurrent use: each worker goroutine in
// the pricers owns its own stream, derived with Split so that parallel runs
// remain reproducible regardless of scheduling.
type RNG struct {
	stateHi, stateLo uint64
	// cached Gaussian variate for the polar method.
	gauss    float64
	hasGauss bool
}

// NewRNG returns a generator seeded from the given value. Two generators
// with the same seed produce identical streams on every platform.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets r to exactly the state NewRNG(seed) would construct,
// reusing the allocation — the tool for arenas that keep one RNG per
// shard alive across kernel runs.
func (r *RNG) Reseed(seed uint64) {
	r.stateHi, r.stateLo = 0, 0
	r.gauss, r.hasGauss = 0, false
	r.step()
	r.stateLo += seed
	r.stateHi += splitmix64(seed + 0x9e3779b97f4a7c15)
	r.step()
}

// splitmix64 is used to spread user seeds over the 128-bit PCG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// step advances the 128-bit LCG state.
func (r *RNG) step() {
	// 128-bit multiply of state by pcgMult, plus increment.
	hi, lo := mul128(r.stateHi, r.stateLo, pcgMultHi, pcgMultLo)
	lo, carry := add64(lo, pcgIncLo)
	hi = hi + pcgIncHi + carry
	r.stateHi, r.stateLo = hi, lo
}

// mul128 returns the low 128 bits of (aHi:aLo)*(bHi:bLo).
func mul128(aHi, aLo, bHi, bLo uint64) (hi, lo uint64) {
	hi, lo = mul64(aLo, bLo)
	hi += aHi*bLo + aLo*bHi
	return hi, lo
}

// mul64 returns the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// add64 returns a+b and the carry out.
func add64(a, b uint64) (sum, carry uint64) {
	sum = a + b
	if sum < a {
		carry = 1
	}
	return sum, carry
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.step()
	// XSL RR output function: xor-fold the state and rotate.
	xored := r.stateHi ^ r.stateLo
	rot := uint(r.stateHi >> 58)
	return xored>>rot | xored<<((64-rot)&63)
}

// Float64 returns a uniform variate in [0,1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in the open interval (0,1),
// suitable as an argument to InvNormCDF.
func (r *RNG) Float64Open() float64 {
	for {
		u := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if u > 0 && u < 1 {
			return u
		}
	}
}

// Intn returns a uniform variate in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathutil: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Norm returns a standard normal variate using the Marsaglia polar method
// with one-variate caching.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// NormVec fills dst with independent standard normal variates.
func (r *RNG) NormVec(dst []float64) {
	for i := range dst {
		dst[i] = r.Norm()
	}
}

// Split returns a new generator whose stream is decorrelated from r's,
// derived deterministically from r's state and the index i. It is the tool
// for giving each Monte Carlo worker its own reproducible stream. Split
// only reads r, so concurrent Split calls on a shared base generator are
// safe as long as no goroutine advances it.
func (r *RNG) Split(i uint64) *RNG {
	dst := &RNG{}
	r.SplitInto(dst, i)
	return dst
}

// SplitInto reseeds dst to the stream Split(i) would return, without
// allocating. dst must not be in concurrent use.
func (r *RNG) SplitInto(dst *RNG, i uint64) {
	dst.Reseed(splitmix64(r.stateLo^splitmix64(i)) + splitmix64(r.stateHi+i))
}
