package farm

import (
	"fmt"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
)

// Loader abstracts the master-side preparation of a task's payload bytes
// under a payload-shipping strategy. Live loaders really decode/re-encode
// (FullLoad) or pass the sload bytes through (SerializedLoad); simulated
// loaders charge modelled CPU time instead.
type Loader interface {
	// Load returns the payload for one task. It is not called under
	// NFSLoad.
	Load(t Task, s Strategy) ([]byte, error)
}

// RunMaster drives the Robin-Hood farm over the given communicator (the
// paper's Fig. 4 master part): seed every worker with one batch, then feed
// whichever worker answers first, and finally send each worker the empty
// stop message. Workers are ranks 1..size-1. Results come back in
// completion order.
func RunMaster(c mpi.Comm, tasks []Task, loader Loader, opts Options) ([]Result, error) {
	nw := c.Size() - 1
	if nw < 1 {
		return nil, fmt.Errorf("farm: world of size %d has no workers", c.Size())
	}
	// Task names key the retry bookkeeping and the results; duplicates
	// would silently conflate distinct claims.
	seen := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if seen[t.Name] {
			return nil, fmt.Errorf("farm: duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
	}
	workers := make([]int, nw)
	for i := range workers {
		workers[i] = i + 1
	}
	results, err := runBatches(c, workers, splitBatches(tasks, opts.batchSize()), loader, opts)
	if err != nil {
		return nil, err
	}
	if err := sendStop(c, workers); err != nil {
		return nil, err
	}
	return results, nil
}

// splitBatches groups tasks into batches of at most bs.
func splitBatches(tasks []Task, bs int) [][]Task {
	var batches [][]Task
	for i := 0; i < len(tasks); i += bs {
		end := i + bs
		if end > len(tasks) {
			end = len(tasks)
		}
		batches = append(batches, tasks[i:end])
	}
	return batches
}

// sendBatch ships one batch (descriptor, then payload list if the
// strategy carries payloads) to a worker.
func sendBatch(c mpi.Comm, worker int, b []Task, loader Loader, strat Strategy) error {
	if err := mpi.SendObj(c, encodeBatch(b), worker, TagTask); err != nil {
		return fmt.Errorf("farm: send descriptor to %d: %w", worker, err)
	}
	if !strat.NeedsPayload() {
		return nil
	}
	payload := nsp.NewList()
	for _, t := range b {
		data, err := loader.Load(t, strat)
		if err != nil {
			return fmt.Errorf("farm: load %q: %w", t.Name, err)
		}
		payload.Add(&nsp.Serial{Data: data})
	}
	if err := mpi.SendObj(c, payload, worker, TagPayload); err != nil {
		return fmt.Errorf("farm: send payload to %d: %w", worker, err)
	}
	return nil
}

// recvResults receives one result list and appends its items, converting
// worker-reported pricing failures into Results with Err set.
func recvResults(c mpi.Comm, results []Result) ([]Result, int, error) {
	st, err := c.Probe(mpi.AnySource, TagResult)
	if err != nil {
		return results, 0, fmt.Errorf("farm: probe results: %w", err)
	}
	obj, _, err := mpi.RecvObj(c, st.Source, TagResult)
	if err != nil {
		return results, 0, fmt.Errorf("farm: recv result from %d: %w", st.Source, err)
	}
	list, ok := obj.(*nsp.List)
	if !ok {
		return results, 0, fmt.Errorf("farm: result from %d is %v, want list", st.Source, obj.Kind())
	}
	for _, item := range list.Items {
		name, err := resultName(item)
		if err != nil {
			return results, 0, err
		}
		r := Result{Name: name, Worker: st.Source, Value: item}
		if msg, failed := resultError(item); failed {
			// Value keeps the error hash so hierarchies can forward it.
			r.Err = fmt.Errorf("farm: task %q failed on worker %d: %s", name, st.Source, msg)
		}
		results = append(results, r)
	}
	return results, st.Source, nil
}

// runBatches Robin-Hoods the batches over the given worker ranks without
// sending the final stop message, so callers can reuse the workers for
// further rounds (the sub-master case). Failed tasks are re-queued as
// single-task batches up to opts.MaxRetries attempts beyond the first;
// tasks that exhaust their budget are reported with Err set.
func runBatches(c mpi.Comm, workers []int, batches [][]Task, loader Loader, opts Options) ([]Result, error) {
	queue := make([][]Task, len(batches))
	copy(queue, batches)
	// assigned remembers which batch each worker is busy with, so failed
	// task names can be matched back to their Task values for retry.
	assigned := make(map[int][]Task, len(workers))
	attempts := make(map[string]int)
	var results []Result
	inflight := 0
	send := func(w int) error {
		b := queue[0]
		queue = queue[1:]
		if err := sendBatch(c, w, b, loader, opts.Strategy); err != nil {
			return err
		}
		assigned[w] = b
		inflight++
		return nil
	}
	for _, w := range workers {
		if len(queue) == 0 {
			break
		}
		if err := send(w); err != nil {
			return nil, err
		}
	}
	for inflight > 0 {
		batch, from, err := recvResults(c, nil)
		if err != nil {
			return nil, err
		}
		was := assigned[from]
		delete(assigned, from)
		inflight--
		for _, r := range batch {
			if r.Err == nil {
				results = append(results, r)
				continue
			}
			attempts[r.Name]++
			if attempts[r.Name] > opts.MaxRetries {
				results = append(results, r)
				continue
			}
			retried := false
			for _, t := range was {
				if t.Name == r.Name {
					queue = append(queue, []Task{t})
					retried = true
					break
				}
			}
			if !retried {
				// The batch no longer carries the task (should not
				// happen); report the failure rather than lose it.
				results = append(results, r)
			}
		}
		if len(queue) > 0 {
			if err := send(from); err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// sendStop sends the empty batch to each listed worker.
func sendStop(c mpi.Comm, workers []int) error {
	stop := encodeBatch(nil)
	for _, w := range workers {
		if err := mpi.SendObj(c, stop, w, TagTask); err != nil {
			return fmt.Errorf("farm: send stop to %d: %w", w, err)
		}
	}
	return nil
}
