package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Counter("c").Add(4)
	if got := r.Counter("c").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Add(1)
	r.Observe("h", 1)
	r.SetClock(func() float64 { return 1 })
	sp := r.StartSpan("s")
	sp.StartChild("t").End()
	sp.End()
	if n := r.SpanCount("s"); n != 0 {
		t.Errorf("nil registry counted %d spans", n)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestHistogramQuantilesConcurrent drives many writers into one
// histogram and checks the quantile estimates against the exact values
// of the written distribution, within the bucket scheme's relative
// error. Run with -race, per the telemetry test plan.
func TestHistogramQuantilesConcurrent(t *testing.T) {
	h := new(Histogram)
	const writers = 8
	const perWriter = 5000
	// Deterministic values: v(i) spread log-uniformly over ~4 decades.
	value := func(i int) float64 {
		return 1e-6 * math.Pow(10, 4*float64(i)/float64(perWriter))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(value(i))
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), int64(writers*perWriter); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// Every writer wrote the same values, so the q-quantile of the
	// histogram is the q-quantile of value(0..perWriter-1).
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := value(int(q * (perWriter - 1)))
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.10 {
			t.Errorf("q%.0f = %g, want ≈%g (rel err %.3f)", q*100, got, exact, rel)
		}
	}
	if h.Min() > h.Quantile(0.5) || h.Max() < h.Quantile(0.99) {
		t.Errorf("min %g / max %g inconsistent with quantiles", h.Min(), h.Max())
	}
	sumExact := 0.0
	for i := 0; i < perWriter; i++ {
		sumExact += value(i)
	}
	sumExact *= writers
	if rel := math.Abs(h.Sum()-sumExact) / sumExact; rel > 1e-6 {
		t.Errorf("sum = %g, want %g", h.Sum(), sumExact)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := new(Histogram)
	h.Observe(0)
	h.Observe(-1) // clamped into the underflow bucket
	h.Observe(1e9)
	h.Observe(math.NaN()) // dropped
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Min() != -1 {
		t.Errorf("min = %v, want -1", h.Min())
	}
	if h.Max() != 1e9 {
		t.Errorf("max = %v, want 1e9", h.Max())
	}
	if q := h.Quantile(0.0); q > histLo {
		t.Errorf("q0 = %g, want underflow bucket", q)
	}
}

func TestSpanNesting(t *testing.T) {
	r := New()
	now := 0.0
	r.SetClock(func() float64 { now += 1; return now })
	root := r.StartSpan("sweep")
	child := root.StartChild("task")
	grand := child.StartChild("compute")
	grand.End()
	child.End()
	root.End()
	recs := r.FinishedSpans()
	if len(recs) != 3 {
		t.Fatalf("%d finished spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	if byName["task"].ParentID != byName["sweep"].ID {
		t.Errorf("task parent = %d, want sweep ID %d", byName["task"].ParentID, byName["sweep"].ID)
	}
	if byName["compute"].ParentID != byName["task"].ID {
		t.Errorf("compute parent = %d, want task ID %d", byName["compute"].ParentID, byName["task"].ID)
	}
	if byName["sweep"].ParentID != 0 {
		t.Errorf("sweep parent = %d, want 0 (root)", byName["sweep"].ParentID)
	}
	for _, rec := range recs {
		if rec.End <= rec.Start {
			t.Errorf("span %s has End %v <= Start %v", rec.Name, rec.End, rec.Start)
		}
	}
	if n := r.SpanCount("task"); n != 1 {
		t.Errorf("task span count = %d, want 1", n)
	}
	// Durations land in the span histogram too.
	if c := r.Histogram("span.compute").Count(); c != 1 {
		t.Errorf("span.compute histogram count = %d, want 1", c)
	}
	// Double End is a no-op.
	root.End()
	if n := r.SpanCount("sweep"); n != 1 {
		t.Errorf("sweep counted %d after double End", n)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b, sink := New(), New(), New()
	a.Counter("tasks").Add(2)
	a.Observe("lat", 0.5)
	a.Gauge("util").Set(0.9)
	a.StartSpan("run").End()
	b.Counter("tasks").Add(3)
	b.Observe("lat", 1.5)
	sink.Merge(a, "s1.")
	sink.Merge(b, "s1.")
	if got := sink.Counter("s1.tasks").Value(); got != 5 {
		t.Errorf("merged counter = %d, want 5", got)
	}
	h := sink.Histogram("s1.lat")
	if h.Count() != 2 || h.Min() != 0.5 || h.Max() != 1.5 {
		t.Errorf("merged hist count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if got := sink.Gauge("s1.util").Value(); got != 0.9 {
		t.Errorf("merged gauge = %v", got)
	}
	if got := sink.SpanCount("s1.run"); got != 1 {
		t.Errorf("merged span count = %d", got)
	}
}

func TestVirtualClock(t *testing.T) {
	r := New()
	vt := 10.0
	r.SetClock(func() float64 { return vt })
	sp := r.StartSpan("virt")
	vt = 12.5
	sp.End()
	recs := r.FinishedSpans()
	if len(recs) != 1 || recs[0].End-recs[0].Start != 2.5 {
		t.Errorf("virtual span = %+v, want 2.5s duration", recs)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := New()
	r.Counter("requests").Add(42)
	r.Observe("latency", 0.25)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["requests"] != 42 {
		t.Errorf("decoded counters = %v", snap.Counters)
	}
	if snap.Histograms["latency"].Count != 1 {
		t.Errorf("decoded histograms = %v", snap.Histograms)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := new(Histogram)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	h.Observe(0.125)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if rel := math.Abs(got-0.125) / 0.125; rel > 0.10 {
			t.Errorf("q%v = %g, want ≈0.125", q, got)
		}
	}
}
