package nsp

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// XDREncoder writes values in the eXternal Data Representation style used
// by the PremiaModel save/load methods: big-endian, every item padded to a
// multiple of four bytes, so files are architecture independent.
type XDREncoder struct {
	w   io.Writer
	err error
}

// NewXDREncoder returns an encoder writing to w.
func NewXDREncoder(w io.Writer) *XDREncoder { return &XDREncoder{w: w} }

// Err returns the first error encountered, if any.
func (e *XDREncoder) Err() error { return e.err }

func (e *XDREncoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

// PutUint32 writes a 32-bit unsigned integer.
func (e *XDREncoder) PutUint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.write(b[:])
}

// PutInt writes a signed integer as a 32-bit two's-complement value. It
// records an error if v does not fit.
func (e *XDREncoder) PutInt(v int) {
	if v > math.MaxInt32 || v < math.MinInt32 {
		if e.err == nil {
			e.err = fmt.Errorf("nsp: xdr int overflow: %d", v)
		}
		return
	}
	e.PutUint32(uint32(int32(v)))
}

// PutBool writes a boolean as the XDR canonical 0/1 word.
func (e *XDREncoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat64 writes an IEEE-754 double (XDR "double", 8 bytes, already a
// multiple of 4).
func (e *XDREncoder) PutFloat64(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	e.write(b[:])
}

// PutString writes a length-prefixed string padded with zero bytes to a
// four-byte boundary, per the XDR spec.
func (e *XDREncoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.write([]byte(s))
	if pad := (4 - len(s)%4) % 4; pad > 0 {
		e.write(make([]byte, pad))
	}
}

// PutFloat64s writes a counted array of doubles.
func (e *XDREncoder) PutFloat64s(vs []float64) {
	e.PutUint32(uint32(len(vs)))
	for _, v := range vs {
		e.PutFloat64(v)
	}
}

// XDRDecoder reads values written by XDREncoder.
type XDRDecoder struct {
	r   io.Reader
	err error
}

// NewXDRDecoder returns a decoder reading from r.
func NewXDRDecoder(r io.Reader) *XDRDecoder { return &XDRDecoder{r: r} }

// Err returns the first error encountered, if any.
func (d *XDRDecoder) Err() error { return d.err }

func (d *XDRDecoder) read(b []byte) bool {
	if d.err != nil {
		return false
	}
	_, d.err = io.ReadFull(d.r, b)
	return d.err == nil
}

// Uint32 reads a 32-bit unsigned integer (0 on error).
func (d *XDRDecoder) Uint32() uint32 {
	var b [4]byte
	if !d.read(b[:]) {
		return 0
	}
	return binary.BigEndian.Uint32(b[:])
}

// Int reads a signed 32-bit integer (0 on error).
func (d *XDRDecoder) Int() int { return int(int32(d.Uint32())) }

// Bool reads a boolean (false on error).
func (d *XDRDecoder) Bool() bool { return d.Uint32() != 0 }

// Float64 reads a double (0 on error).
func (d *XDRDecoder) Float64() float64 {
	var b [8]byte
	if !d.read(b[:]) {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b[:]))
}

// String reads a padded, length-prefixed string ("" on error).
func (d *XDRDecoder) String() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	if n > maxDim {
		d.err = badStream("xdr string too large: %d", n)
		return ""
	}
	b := make([]byte, int(n)+(4-int(n)%4)%4)
	if !d.read(b) {
		return ""
	}
	return string(b[:n])
}

// Float64s reads a counted array of doubles (nil on error).
func (d *XDRDecoder) Float64s() []float64 {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxDim {
		d.err = badStream("xdr array too large: %d", n)
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.Float64()
	}
	if d.err != nil {
		return nil
	}
	return vs
}
