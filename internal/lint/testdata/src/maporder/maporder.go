// Package maportest seeds the order-sensitive map-range shapes the
// maporder analyzer must flag, next to the canonical idioms it must
// accept.
package maportest

import "sort"

// floatReduction accumulates floats in map order: non-associative
// addition makes the result bits depend on the iteration shuffle.
func floatReduction(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float64 reduction inside range over map`
	}
	return sum
}

// stringReduction concatenates in map order — nondeterministic even
// over keys alone.
func stringReduction(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string reduction inside range over map`
	}
	return s
}

// valueAppend builds a wire-bound slice whose element order is the map
// shuffle.
func valueAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `append of value-dependent elements`
	}
	return out
}

// derivedAppend launders the value through a local before appending;
// still ordered by iteration.
func derivedAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		scaled := v * 2
		out = append(out, scaled) // want `append of value-dependent elements`
	}
	return out
}

// sortedKeys is the canonical fix: collecting keys is order-safe
// because the caller sorts before using them.
func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// intCounter is exactly commutative: integer adds do not care about
// order.
func intCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perKeySlot writes through the range key: each key's slot is
// independent, so order cannot leak.
func perKeySlot(m map[string]float64, acc map[string]float64) {
	for k, v := range m {
		acc[k] += v
	}
}

// perIterationLocal resets its accumulator every iteration; nothing
// escapes in map order.
func perIterationLocal(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		total := 0.0
		for _, v := range vs {
			total += v
		}
		out[k] = total
	}
}

// allowedReduction documents a deliberate exception: the result is
// order-insensitive by construction (max of an unordered set), which
// the analyzer's reduction rule cannot see.
func allowedReduction(m map[string]float64) float64 {
	prod := 1.0
	for _, v := range m {
		if v == 0 {
			continue
		}
		//lint:allow maporder fixture: order-insensitive by construction
		prod *= v
	}
	return prod
}
