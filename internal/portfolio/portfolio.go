package portfolio

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"riskbench/internal/farm"
	"riskbench/internal/mathutil"
	"riskbench/internal/nsp"
	"riskbench/internal/premia"
)

// Item is one claim of a portfolio: a real pricing problem plus the
// virtual compute cost the cluster simulator replays for it.
type Item struct {
	// Name identifies the claim; it doubles as its "file name" in the
	// communication strategies.
	Name string
	// Problem is the fully-parameterised pricing problem.
	Problem *premia.Problem
	// Cost is the claim's virtual pricing time in seconds.
	Cost float64
}

// Portfolio is a named collection of claims.
type Portfolio struct {
	// Name labels the workload ("regression", "toy", "realistic").
	Name string
	// Items are the claims in generation order.
	Items []Item
}

// Size returns the number of claims.
func (pf *Portfolio) Size() int { return len(pf.Items) }

// TotalCost returns the sum of virtual costs — the total work a 1-worker
// run performs, the paper's 2-CPU baseline.
func (pf *Portfolio) TotalCost() float64 {
	sum := 0.0
	for _, it := range pf.Items {
		sum += it.Cost
	}
	return sum
}

// MaxCost returns the most expensive claim's virtual cost, the lower
// bound on any parallel makespan.
func (pf *Portfolio) MaxCost() float64 {
	m := 0.0
	for _, it := range pf.Items {
		if it.Cost > m {
			m = it.Cost
		}
	}
	return m
}

// Tasks serializes every claim into a farm task (the save-file bytes plus
// the virtual cost).
func (pf *Portfolio) Tasks() ([]farm.Task, error) {
	tasks := make([]farm.Task, len(pf.Items))
	for i, it := range pf.Items {
		h, err := it.Problem.ToNsp()
		if err != nil {
			return nil, fmt.Errorf("portfolio: %s: %w", it.Name, err)
		}
		s, err := nsp.Serialize(h)
		if err != nil {
			return nil, fmt.Errorf("portfolio: %s: %w", it.Name, err)
		}
		tasks[i] = farm.Task{Name: it.Name, Data: s.Data, Cost: it.Cost}
	}
	return tasks, nil
}

// SaveDir writes every claim to dir as an nsp save file named after the
// claim, the on-disk portfolio representation the paper uses ("a
// portfolio will be a collection of files"). It returns the file paths.
func (pf *Portfolio) SaveDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("portfolio: %w", err)
	}
	paths := make([]string, len(pf.Items))
	for i, it := range pf.Items {
		p := filepath.Join(dir, it.Name+".bin")
		if err := it.Problem.Save(p); err != nil {
			return nil, err
		}
		paths[i] = p
	}
	return paths, nil
}

// jitter returns a deterministic lognormal factor with unit mean and the
// given log-volatility, so equal-class tasks spread realistically without
// breaking reproducibility.
func jitter(rng *mathutil.RNG, sigma float64) float64 {
	return math.Exp(sigma*rng.Norm() - 0.5*sigma*sigma)
}
