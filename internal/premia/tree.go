package premia

import (
	"fmt"
	"math"
)

// treeCRR implements the Cox–Ross–Rubinstein binomial tree for European
// calls/puts and American puts in the one-dimensional Black–Scholes model.
// Method parameter: "steps" (default 512).
func treeCRR(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	n := p.Params.Int("steps", 512)
	if n < 1 {
		return Result{}, fmt.Errorf("premia: TR_CRR needs steps >= 1, got %d", n)
	}
	dt := o.T / float64(n)
	u := math.Exp(m.Sigma * math.Sqrt(dt))
	d := 1 / u
	growth := math.Exp((m.R - m.Div) * dt)
	q := (growth - d) / (u - d)
	if q <= 0 || q >= 1 {
		return Result{}, fmt.Errorf("premia: TR_CRR risk-neutral probability %v out of (0,1); increase steps", q)
	}
	disc := math.Exp(-m.R * dt)

	var payoff func(s float64) float64
	american := false
	switch p.Option {
	case OptCallEuro:
		payoff = func(s float64) float64 { return payoffCall(s, o.K) }
	case OptPutEuro:
		payoff = func(s float64) float64 { return payoffPut(s, o.K) }
	case OptPutAmer:
		payoff = func(s float64) float64 { return payoffPut(s, o.K) }
		american = true
	case OptCallAmer:
		payoff = func(s float64) float64 { return payoffCall(s, o.K) }
		american = true
	default:
		return Result{}, fmt.Errorf("premia: TR_CRR does not price %q", p.Option)
	}

	// Terminal layer. Node j has j up-moves: S = S0 u^j d^(n-j).
	v := make([]float64, n+1)
	s := m.S0 * math.Pow(d, float64(n))
	uu := u * u
	for j := 0; j <= n; j++ {
		v[j] = payoff(s)
		s *= uu
	}
	// Backward induction, keeping the two first-step values for the delta.
	var v1u, v1d float64
	for step := n - 1; step >= 0; step-- {
		s = m.S0 * math.Pow(d, float64(step))
		for j := 0; j <= step; j++ {
			cont := disc * ((1-q)*v[j] + q*v[j+1])
			if american {
				if ex := payoff(s); ex > cont {
					cont = ex
				}
			}
			v[j] = cont
			s *= uu
		}
		if step == 1 {
			v1d, v1u = v[0], v[1]
		}
	}
	res := Result{Price: v[0], Work: float64(n) * float64(n) / 2}
	if n >= 2 {
		res.Delta = (v1u - v1d) / (m.S0*u - m.S0*d)
		res.HasDelta = true
	}
	return res, nil
}
