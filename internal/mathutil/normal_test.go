package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
		{-6, 9.865876450376946e-10},
	}
	for _, c := range cases {
		got := NormCDF(c.x)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)) && math.Abs(got-c.want) > 1e-15 {
			t.Errorf("NormCDF(%v) = %.17g, want %.17g", c.x, got, c.want)
		}
	}
}

func TestNormPDFKnownValues(t *testing.T) {
	if got := NormPDF(0); math.Abs(got-invSqrt2Pi) > 1e-16 {
		t.Errorf("NormPDF(0) = %v", got)
	}
	if got := NormPDF(1); math.Abs(got-0.24197072451914337) > 1e-15 {
		t.Errorf("NormPDF(1) = %v", got)
	}
}

func TestInvNormCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-8, 0.001, 0.02425, 0.1, 0.25, 0.5, 0.75, 0.9, 0.97575, 0.999, 1 - 1e-8} {
		x := InvNormCDF(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-11*math.Max(p, 1e-3) && math.Abs(back-p) > 1e-14 {
			t.Errorf("NormCDF(InvNormCDF(%g)) = %g", p, back)
		}
	}
}

func TestInvNormCDFEdges(t *testing.T) {
	if !math.IsInf(InvNormCDF(0), -1) {
		t.Error("InvNormCDF(0) should be -Inf")
	}
	if !math.IsInf(InvNormCDF(1), 1) {
		t.Error("InvNormCDF(1) should be +Inf")
	}
	if !math.IsNaN(InvNormCDF(math.NaN())) {
		t.Error("InvNormCDF(NaN) should be NaN")
	}
	if InvNormCDF(0.5) != 0 {
		// Acklam central branch at exactly 0.5 gives 0 before refinement;
		// refinement keeps it 0 up to floating error.
		if math.Abs(InvNormCDF(0.5)) > 1e-15 {
			t.Errorf("InvNormCDF(0.5) = %v", InvNormCDF(0.5))
		}
	}
}

func TestInvNormCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return InvNormCDF(pa) <= InvNormCDF(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 10)
		return math.Abs(NormCDF(x)+NormCDF(-x)-1) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
