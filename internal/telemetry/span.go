package telemetry

// Span is one timed region of work. Spans form trees via StartChild;
// finishing a span records its duration under "span.<name>" and files a
// SpanRecord carrying the parent link. A nil *Span is a valid no-op, so
// instrumented code can start spans unconditionally.
type Span struct {
	reg      *Registry
	id       uint64
	parentID uint64
	name     string
	start    float64
	ended    bool
}

// SpanRecord is a finished span as retained by the registry ring.
type SpanRecord struct {
	// ID is unique within the registry; ParentID is 0 for roots.
	ID, ParentID uint64
	// Name is the span name given to StartSpan/StartChild.
	Name string
	// Start and End are registry-clock readings in seconds.
	Start, End float64
}

// StartSpan opens a root span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, id: r.spanID.Add(1), name: name, start: r.Now()}
}

// StartChild opens a child span under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	r := s.reg
	return &Span{reg: r, id: r.spanID.Add(1), parentID: s.id, name: name, start: r.Now()}
}

// ID returns the span's registry-unique ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End finishes the span and records it; extra calls are ignored. Spans
// are not goroutine-safe: one goroutine owns a span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.reg.recordSpan(SpanRecord{ID: s.id, ParentID: s.parentID, Name: s.name, Start: s.start, End: s.reg.Now()})
}
