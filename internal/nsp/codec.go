package nsp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary stream format (all integers big-endian):
//
//	stream  := magic version object
//	magic   := "NSPB" (4 bytes)
//	version := uint16
//	object  := kind(uint8) payload
//
//	Mat     payload := rows(uint32) cols(uint32) rows*cols × float64
//	BMat    payload := rows(uint32) cols(uint32) rows*cols × uint8
//	SMat    payload := rows(uint32) cols(uint32) rows*cols × string
//	List    payload := n(uint32) n × object (without magic/version)
//	Hash    payload := n(uint32) n × (string object), keys sorted
//	Serial  payload := compressed(uint8) len(uint32) bytes
//	string  := len(uint32) bytes
const (
	codecMagic   = "NSPB"
	codecVersion = 1
	// maxDim guards decode against hostile or corrupt headers.
	maxDim = 1 << 28
)

// ErrBadStream is wrapped by all decode errors caused by malformed input.
var ErrBadStream = errors.New("nsp: malformed stream")

func badStream(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadStream, fmt.Sprintf(format, args...))
}

// encodeStream writes the full framed stream (magic + version + object).
func encodeStream(w io.Writer, o Object) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint16(codecVersion)); err != nil {
		return err
	}
	if err := encodeObject(bw, o); err != nil {
		return err
	}
	return bw.Flush()
}

// decodeStream reads a full framed stream.
func decodeStream(r io.Reader) (Object, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, badStream("short magic: %v", err)
	}
	if string(magic[:]) != codecMagic {
		return nil, badStream("bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, badStream("short version: %v", err)
	}
	if version != codecVersion {
		return nil, badStream("unsupported version %d", version)
	}
	return decodeObject(br)
}

func encodeObject(w *bufio.Writer, o Object) error {
	if o == nil {
		return errors.New("nsp: cannot encode nil object")
	}
	if err := w.WriteByte(byte(o.Kind())); err != nil {
		return err
	}
	switch v := o.(type) {
	case *Mat:
		if err := writeDims(w, v.Rows, v.Cols); err != nil {
			return err
		}
		var b [8]byte
		for _, x := range v.Data {
			binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		}
	case *BMat:
		if err := writeDims(w, v.Rows, v.Cols); err != nil {
			return err
		}
		for _, x := range v.Data {
			b := byte(0)
			if x {
				b = 1
			}
			if err := w.WriteByte(b); err != nil {
				return err
			}
		}
	case *SMat:
		if err := writeDims(w, v.Rows, v.Cols); err != nil {
			return err
		}
		for _, s := range v.Data {
			if err := writeString(w, s); err != nil {
				return err
			}
		}
	case *List:
		if err := writeU32(w, uint32(len(v.Items))); err != nil {
			return err
		}
		for _, it := range v.Items {
			if err := encodeObject(w, it); err != nil {
				return err
			}
		}
	case *Hash:
		if err := writeU32(w, uint32(v.Len())); err != nil {
			return err
		}
		for _, k := range v.Keys() {
			if err := writeString(w, k); err != nil {
				return err
			}
			item, _ := v.Get(k)
			if err := encodeObject(w, item); err != nil {
				return err
			}
		}
	case *Serial:
		b := byte(0)
		if v.Compressed {
			b = 1
		}
		if err := w.WriteByte(b); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(v.Data))); err != nil {
			return err
		}
		if _, err := w.Write(v.Data); err != nil {
			return err
		}
	case *IMat:
		if err := writeDims(w, v.Rows, v.Cols); err != nil {
			return err
		}
		var b [8]byte
		for _, x := range v.Data {
			binary.BigEndian.PutUint64(b[:], uint64(x))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		}
	case *Cells:
		if err := writeDims(w, v.Rows, v.Cols); err != nil {
			return err
		}
		for _, item := range v.Data {
			if item == nil {
				if err := w.WriteByte(0); err != nil {
					return err
				}
				continue
			}
			if err := w.WriteByte(1); err != nil {
				return err
			}
			if err := encodeObject(w, item); err != nil {
				return err
			}
		}
	case *SpMat:
		if err := writeDims(w, v.Rows, v.Cols); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(v.Val))); err != nil {
			return err
		}
		var b [8]byte
		for k := range v.Val {
			binary.BigEndian.PutUint32(b[:4], uint32(v.RowIdx[k]))
			if _, err := w.Write(b[:4]); err != nil {
				return err
			}
			binary.BigEndian.PutUint32(b[:4], uint32(v.ColIdx[k]))
			if _, err := w.Write(b[:4]); err != nil {
				return err
			}
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Val[k]))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("nsp: cannot encode object of kind %v", o.Kind())
	}
	return nil
}

func decodeObject(r *bufio.Reader) (Object, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return nil, badStream("missing kind byte: %v", err)
	}
	switch Kind(kb) {
	case KindMat:
		rows, cols, err := readDims(r)
		if err != nil {
			return nil, err
		}
		m := &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
		var b [8]byte
		for i := range m.Data {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, badStream("short matrix data: %v", err)
			}
			m.Data[i] = math.Float64frombits(binary.BigEndian.Uint64(b[:]))
		}
		return m, nil
	case KindBMat:
		rows, cols, err := readDims(r)
		if err != nil {
			return nil, err
		}
		m := &BMat{Rows: rows, Cols: cols, Data: make([]bool, rows*cols)}
		for i := range m.Data {
			b, err := r.ReadByte()
			if err != nil {
				return nil, badStream("short bool data: %v", err)
			}
			m.Data[i] = b != 0
		}
		return m, nil
	case KindSMat:
		rows, cols, err := readDims(r)
		if err != nil {
			return nil, err
		}
		m := &SMat{Rows: rows, Cols: cols, Data: make([]string, rows*cols)}
		for i := range m.Data {
			s, err := readString(r)
			if err != nil {
				return nil, err
			}
			m.Data[i] = s
		}
		return m, nil
	case KindList:
		n, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if n > maxDim {
			return nil, badStream("list too large: %d", n)
		}
		l := &List{Items: make([]Object, 0, n)}
		for i := uint32(0); i < n; i++ {
			it, err := decodeObject(r)
			if err != nil {
				return nil, err
			}
			l.Items = append(l.Items, it)
		}
		return l, nil
	case KindHash:
		n, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if n > maxDim {
			return nil, badStream("hash too large: %d", n)
		}
		h := NewHash()
		for i := uint32(0); i < n; i++ {
			k, err := readString(r)
			if err != nil {
				return nil, err
			}
			v, err := decodeObject(r)
			if err != nil {
				return nil, err
			}
			h.Set(k, v)
		}
		return h, nil
	case KindSerial:
		cb, err := r.ReadByte()
		if err != nil {
			return nil, badStream("short serial flag: %v", err)
		}
		n, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if n > maxDim {
			return nil, badStream("serial too large: %d", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, badStream("short serial data: %v", err)
		}
		return &Serial{Compressed: cb != 0, Data: data}, nil
	case KindIMat:
		rows, cols, err := readDims(r)
		if err != nil {
			return nil, err
		}
		m := &IMat{Rows: rows, Cols: cols, Data: make([]int64, rows*cols)}
		var b [8]byte
		for i := range m.Data {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, badStream("short int matrix data: %v", err)
			}
			m.Data[i] = int64(binary.BigEndian.Uint64(b[:]))
		}
		return m, nil
	case KindCells:
		rows, cols, err := readDims(r)
		if err != nil {
			return nil, err
		}
		c := &Cells{Rows: rows, Cols: cols, Data: make([]Object, rows*cols)}
		for i := range c.Data {
			present, err := r.ReadByte()
			if err != nil {
				return nil, badStream("short cells data: %v", err)
			}
			if present == 0 {
				continue
			}
			item, err := decodeObject(r)
			if err != nil {
				return nil, err
			}
			c.Data[i] = item
		}
		return c, nil
	case KindSpMat:
		rows, cols, err := readDims(r)
		if err != nil {
			return nil, err
		}
		nnz, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if nnz > maxDim || uint64(nnz) > uint64(rows)*uint64(cols) {
			return nil, badStream("sparse nnz %d too large for %dx%d", nnz, rows, cols)
		}
		s := &SpMat{
			Rows: rows, Cols: cols,
			RowIdx: make([]int32, nnz), ColIdx: make([]int32, nnz), Val: make([]float64, nnz),
		}
		var b [8]byte
		for k := uint32(0); k < nnz; k++ {
			if _, err := io.ReadFull(r, b[:4]); err != nil {
				return nil, badStream("short sparse row: %v", err)
			}
			s.RowIdx[k] = int32(binary.BigEndian.Uint32(b[:4]))
			if _, err := io.ReadFull(r, b[:4]); err != nil {
				return nil, badStream("short sparse col: %v", err)
			}
			s.ColIdx[k] = int32(binary.BigEndian.Uint32(b[:4]))
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, badStream("short sparse val: %v", err)
			}
			s.Val[k] = math.Float64frombits(binary.BigEndian.Uint64(b[:]))
			if int(s.RowIdx[k]) >= rows || int(s.ColIdx[k]) >= cols || s.RowIdx[k] < 0 || s.ColIdx[k] < 0 {
				return nil, badStream("sparse index (%d,%d) outside %dx%d", s.RowIdx[k], s.ColIdx[k], rows, cols)
			}
		}
		return s, nil
	default:
		return nil, badStream("unknown kind %d", kb)
	}
}

func writeDims(w *bufio.Writer, rows, cols int) error {
	if err := writeU32(w, uint32(rows)); err != nil {
		return err
	}
	return writeU32(w, uint32(cols))
}

func readDims(r *bufio.Reader) (rows, cols int, err error) {
	ur, err := readU32(r)
	if err != nil {
		return 0, 0, err
	}
	uc, err := readU32(r)
	if err != nil {
		return 0, 0, err
	}
	if ur > maxDim || uc > maxDim || uint64(ur)*uint64(uc) > maxDim {
		return 0, 0, badStream("matrix dims %dx%d too large", ur, uc)
	}
	return int(ur), int(uc), nil
}

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, badStream("short u32: %v", err)
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxDim {
		return "", badStream("string too large: %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", badStream("short string: %v", err)
	}
	return string(b), nil
}
