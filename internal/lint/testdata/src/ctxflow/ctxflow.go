// Package ctxtest seeds the context-plumbing shapes the ctxflow
// analyzer checks on exported concurrency-bearing functions.
package ctxtest

import (
	"context"
	"sync"
)

// Fire spawns a goroutine with no way for a caller to cancel it.
func Fire(work func()) { // want `spawns goroutines but takes no context`
	go work()
}

// Drain blocks on a channel receive without a deadline path.
func Drain(ch chan int) int { // want `blocks on channel receives`
	return <-ch
}

// Forgetful accepts a context and then ignores it.
func Forgetful(ctx context.Context, ch chan int) int { // want `never propagates it`
	return <-ch
}

// Run threads its context into the select — the required shape.
func Run(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// worker is unexported; internal helpers may rely on their exported
// callers' plumbing.
func worker(ch chan int) int {
	return <-ch
}

// Server carries its lifecycle context in a field, the long-lived
// object pattern.
type Server struct {
	ctx context.Context
	wg  sync.WaitGroup
}

// Stop may block on Wait; cancellation reaches it through the
// receiver's bound context.
func (s *Server) Stop() {
	s.wg.Wait()
}

// Detach is a deliberate fire-and-forget exception, annotated.
//
//lint:allow ctxflow fixture: fire-and-forget by design, joined elsewhere
func Detach(work func()) {
	go work()
}

var _ = worker
