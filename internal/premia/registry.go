package premia

import "sort"

// Registered method names.
const (
	MethodCFCall        = "CF_Call"
	MethodCFPut         = "CF_Put"
	MethodCFCallDownOut = "CF_CallDownOut"
	MethodCFHeston      = "CF_Heston"
	MethodTreeCRR       = "TR_CRR"
	MethodFDCrank       = "FD_CrankNicolson"
	MethodFDBS          = "FD_BrennanSchwartz"
	MethodFDPSOR        = "FD_PSOR"
	MethodMCEuro        = "MC_Euro"
	MethodMCHeston      = "MC_Heston"
	MethodMCBasket      = "MC_Basket"
	MethodMCLocalVol    = "MC_LocalVol"
	MethodMCAmerLSM     = "MC_AM_LongstaffSchwartz"
	MethodMCAmerAlfonsi = "MC_AM_Alfonsi_LongstaffSchwartz"
)

// methodSpec records a numerical method's compatibility sets and its
// implementation, the Go analogue of Premia's pricing-method table.
type methodSpec struct {
	asset   string
	models  map[string]bool
	options map[string]bool
	fn      func(*Problem) (Result, error)
}

// methods is the global registry, populated by init in this file so the
// whole catalogue is visible in one place.
var methods = map[string]methodSpec{}

// register adds an equity-asset method (the default asset class).
func register(name string, models, options []string, fn func(*Problem) (Result, error)) {
	registerAsset("equity", name, models, options, fn)
}

// registerAsset adds a method under an explicit asset class.
func registerAsset(asset, name string, models, options []string, fn func(*Problem) (Result, error)) {
	ms := make(map[string]bool, len(models))
	for _, m := range models {
		ms[m] = true
	}
	os := make(map[string]bool, len(options))
	for _, o := range options {
		os[o] = true
	}
	methods[name] = methodSpec{asset: asset, models: ms, options: os, fn: fn}
}

func init() {
	register(MethodCFCall,
		[]string{ModelBS1D},
		[]string{OptCallEuro},
		cfCall)
	register(MethodCFPut,
		[]string{ModelBS1D},
		[]string{OptPutEuro},
		cfPut)
	register(MethodCFCallDownOut,
		[]string{ModelBS1D},
		[]string{OptCallDownOut},
		cfCallDownOut)
	register(MethodCFCallUpOut,
		[]string{ModelBS1D},
		[]string{OptCallUpOut},
		cfCallUpOut)
	register(MethodCFHeston,
		[]string{ModelHeston},
		[]string{OptCallEuro, OptPutEuro},
		cfHeston)
	register(MethodTreeCRR,
		[]string{ModelBS1D},
		[]string{OptCallEuro, OptPutEuro, OptPutAmer, OptCallAmer},
		treeCRR)
	register(MethodTreeTrinomial,
		[]string{ModelBS1D},
		[]string{OptCallEuro, OptPutEuro, OptPutAmer, OptCallAmer},
		treeTrinomial)
	register(MethodFDCrank,
		[]string{ModelBS1D},
		[]string{OptCallEuro, OptPutEuro, OptCallDownOut, OptCallUpOut},
		fdCrankNicolson)
	register(MethodFDBS,
		[]string{ModelBS1D},
		[]string{OptPutAmer},
		fdBrennanSchwartz)
	register(MethodFDPSOR,
		[]string{ModelBS1D},
		[]string{OptPutAmer},
		fdPSOR)
	register(MethodMCEuro,
		[]string{ModelBS1D},
		[]string{OptCallEuro, OptPutEuro, OptCallDownOut, OptCallUpOut},
		mcEuro)
	register(MethodMCHeston,
		[]string{ModelHeston},
		[]string{OptCallEuro, OptPutEuro},
		mcHestonEuro)
	register(MethodMCBasket,
		[]string{ModelBSND},
		[]string{OptPutBasketEuro, OptCallBasketEuro},
		mcBasket)
	register(MethodMCLocalVol,
		[]string{ModelLocVol},
		[]string{OptCallEuro, OptPutEuro},
		mcLocalVol)
	register(MethodMCAmerLSM,
		[]string{ModelBS1D, ModelBSND},
		[]string{OptPutAmer, OptPutBasketAmer},
		mcAmerLSM)
	register(MethodMCAmerAlfonsi,
		[]string{ModelHeston},
		[]string{OptPutAmer},
		mcAmerAlfonsi)
	register(MethodCFMerton,
		[]string{ModelMerton},
		[]string{OptCallEuro, OptPutEuro},
		cfMerton)
	register(MethodMCMerton,
		[]string{ModelMerton},
		[]string{OptCallEuro, OptPutEuro},
		mcMerton)
	register(MethodCFDigital,
		[]string{ModelBS1D},
		[]string{OptDigitalCall, OptDigitalPut},
		cfDigital)
	register(MethodMCAsianCV,
		[]string{ModelBS1D},
		[]string{OptAsianCallFix, OptAsianPutFix},
		mcAsianCV)
	register(MethodQMCBasket,
		[]string{ModelBSND},
		[]string{OptPutBasketEuro, OptCallBasketEuro},
		qmcBasket)
	register(MethodCFLookback,
		[]string{ModelBS1D},
		[]string{OptLookbackCallFloat},
		cfLookback)
	register(MethodMCLookback,
		[]string{ModelBS1D},
		[]string{OptLookbackCallFloat},
		mcLookback)
	registerAsset(AssetRate, MethodCFVasicek,
		[]string{ModelVasicek},
		[]string{OptZCBond, OptZCCall},
		cfVasicek)
	registerAsset(AssetRate, MethodMCVasicek,
		[]string{ModelVasicek},
		[]string{OptZCBond, OptZCCall},
		mcVasicek)
	registerAsset(AssetCredit, MethodCFCredit,
		[]string{ModelConstHazard},
		[]string{OptDefaultableBond, OptCDS},
		cfCredit)
	registerAsset(AssetCredit, MethodMCCredit,
		[]string{ModelConstHazard},
		[]string{OptDefaultableBond, OptCDS},
		mcCredit)
}

// Methods returns the names of all registered methods, sorted.
func Methods() []string {
	names := make([]string, 0, len(methods))
	for n := range methods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MethodAsset returns the asset class of a registered method ("" if
// unknown).
func MethodAsset(method string) string {
	return methods[method].asset
}

// MethodSupports reports whether the named method accepts the given model
// and option.
func MethodSupports(method, model, option string) bool {
	spec, ok := methods[method]
	return ok && spec.models[model] && spec.options[option]
}

// Compatibles returns every (model, option) pair the named method accepts,
// sorted; it drives the generation of the non-regression test suite
// (paper §4.1, one instance of every registered pricing problem).
func Compatibles(method string) (models, options []string) {
	spec, ok := methods[method]
	if !ok {
		return nil, nil
	}
	for m := range spec.models {
		models = append(models, m)
	}
	for o := range spec.options {
		options = append(options, o)
	}
	sort.Strings(models)
	sort.Strings(options)
	return models, options
}
