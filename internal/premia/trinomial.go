package premia

import (
	"fmt"
	"math"
)

// MethodTreeTrinomial is the Kamrad–Ritchken trinomial lattice, a second
// tree method (Premia ships several): three branches per node with a
// stretch parameter λ, typically converging more smoothly than CRR.
const MethodTreeTrinomial = "TR_Trinomial"

// treeTrinomial prices European calls/puts and American puts on a
// trinomial lattice. Method parameters: "steps" (default 256), "lambda"
// (stretch, default √1.5).
func treeTrinomial(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	n := p.Params.Int("steps", 256)
	if n < 1 {
		return Result{}, fmt.Errorf("premia: TR_Trinomial needs steps >= 1, got %d", n)
	}
	lambda := p.Params.Get("lambda", math.Sqrt(1.5))
	if lambda < 1 {
		return Result{}, fmt.Errorf("premia: TR_Trinomial needs lambda >= 1, got %v", lambda)
	}
	dt := o.T / float64(n)
	dx := lambda * m.Sigma * math.Sqrt(dt)
	mu := m.R - m.Div - 0.5*m.Sigma*m.Sigma
	// Kamrad–Ritchken branch probabilities.
	inv2l2 := 1 / (2 * lambda * lambda)
	tilt := mu * math.Sqrt(dt) / (2 * lambda * m.Sigma)
	pu := inv2l2 + tilt
	pd := inv2l2 - tilt
	pm := 1 - 2*inv2l2
	if pu <= 0 || pd <= 0 || pm < 0 {
		return Result{}, fmt.Errorf("premia: TR_Trinomial probabilities out of range (pu=%v pm=%v pd=%v); increase steps or lambda", pu, pm, pd)
	}
	disc := math.Exp(-m.R * dt)

	var payoff func(s float64) float64
	american := false
	switch p.Option {
	case OptCallEuro:
		payoff = func(s float64) float64 { return payoffCall(s, o.K) }
	case OptPutEuro:
		payoff = func(s float64) float64 { return payoffPut(s, o.K) }
	case OptPutAmer:
		payoff = func(s float64) float64 { return payoffPut(s, o.K) }
		american = true
	case OptCallAmer:
		payoff = func(s float64) float64 { return payoffCall(s, o.K) }
		american = true
	default:
		return Result{}, fmt.Errorf("premia: TR_Trinomial does not price %q", p.Option)
	}

	// Node j at depth t ranges over [-t, t]; index j+t in the slice.
	width := 2*n + 1
	v := make([]float64, width)
	edx := math.Exp(dx)
	s := m.S0 * math.Exp(-float64(n)*dx)
	for j := 0; j < width; j++ {
		v[j] = payoff(s)
		s *= edx
	}
	var v1u, v1d float64
	for step := n - 1; step >= 0; step-- {
		w := 2*step + 1
		s = m.S0 * math.Exp(-float64(step)*dx)
		for j := 0; j < w; j++ {
			cont := disc * (pd*v[j] + pm*v[j+1] + pu*v[j+2])
			if american {
				if ex := payoff(s); ex > cont {
					cont = ex
				}
			}
			v[j] = cont
			s *= edx
		}
		if step == 1 {
			v1d, v1u = v[0], v[2]
		}
	}
	res := Result{Price: v[0], Work: float64(n) * float64(n)}
	if n >= 2 {
		res.Delta = (v1u - v1d) / (m.S0*edx - m.S0/edx)
		res.HasDelta = true
	} else {
		// One-step tree: use the immediate branches.
		res.Delta = 0
	}
	return res, nil
}
