# Developer entry points. `make check` is the recommended pre-commit
# gate: tier-1 build+test, vet, and a race pass over the packages with
# real concurrency (the farm's goroutine ranks, the message transports,
# the lock-free telemetry primitives, the multicore pricing kernel, the
# risk engine's batch pricer, and the serving layer's batcher, cache,
# singleflight and admission control).

GO ?= go

.PHONY: build test vet lint race check bench benchguard smoke compat wireshape

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs riskvet, the project's own static analysis suite
# (internal/lint): detrand, maporder, wallclock, ctxflow, wireshape and
# metricnames machine-check the determinism, clock, context and
# wire-format invariants. Exceptions live in the source as checked
# //lint:allow directives; a violation is a positioned diagnostic and a
# non-zero exit.
lint:
	$(GO) run ./cmd/riskvet

# wireshape regenerates the golden wire-struct shape hashes after a
# deliberate protocol change. It refuses to bless a shape change unless
# the protocol version constant was bumped first.
wireshape:
	$(GO) run ./cmd/riskvet -write-wireshape

# race covers the packages with real concurrency, including the
# telemetry span-reassembly and trace-table tests, the farm's
# cross-process span shipping, the serve-over-TCP trace integration
# test, and the simulated scheduler (simnet) plus the portfolio
# calibrator that drives it.
race:
	$(GO) test -race ./internal/farm ./internal/mpi ./internal/telemetry ./internal/premia ./internal/risk ./internal/serve ./internal/simnet ./internal/portfolio ./internal/var

check: build vet lint test race

# compat runs the wire-protocol version matrix: every pairing of v1/v2
# masters and workers over the tcp and unix transports must negotiate
# down to the common subset and price bit-identically (spans and other
# optional payloads silently unship across version boundaries). This is
# the rolling-upgrade gate: it proves an old worker can serve a new
# master and vice versa.
compat:
	$(GO) test -run TestCompat -v ./internal/mpi ./internal/risk

# smoke boots riskserver, prices one request, and asserts /healthz,
# /metrics, /metrics.json, /debug/traces and /debug/pprof all respond.
smoke:
	sh scripts/smoke.sh

# benchguard re-measures the allocation-critical benchmarks with
# -benchmem and fails if bytes/op or allocs/op regress past the budgets
# recorded in BENCH_alloc.json (the wire codec must stay at 0 allocs/op;
# the hub round trip at its two mailbox retain copies).
benchguard:
	sh scripts/bench_guard.sh

# bench is a single-iteration smoke pass over the sweep and kernel
# benchmarks; drop -benchtime to measure (the kernel speedup comparison
# needs a multicore machine).
bench:
	$(GO) test -bench 'BenchmarkTable|BenchmarkAblation' -benchtime 1x .
	$(GO) test -bench 'BenchmarkKernel' -benchtime 1x ./internal/premia
	$(GO) test -bench 'BenchmarkServeBatching' -benchtime 1x ./internal/serve
	$(GO) test -bench 'BenchmarkVaRDeltaGamma' -benchtime 1x ./internal/var
