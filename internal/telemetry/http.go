package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry's snapshot as indented JSON, in the
// spirit of expvar's /debug/vars. Wire it wherever convenient:
//
//	http.ListenAndServe(addr, telemetry.Handler(reg))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding a fresh snapshot never fails; ignore client aborts.
		_ = enc.Encode(r.Snapshot())
	})
}
