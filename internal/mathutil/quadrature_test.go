package mathutil

import (
	"math"
	"testing"
)

func TestGaussLegendrePolynomialExactness(t *testing.T) {
	// An n-point rule integrates polynomials up to degree 2n-1 exactly.
	nodes, weights := GaussLegendre(5)
	for deg := 0; deg <= 9; deg++ {
		got := Integrate(func(x float64) float64 { return math.Pow(x, float64(deg)) }, -1, 1, nodes, weights)
		want := 0.0
		if deg%2 == 0 {
			want = 2 / float64(deg+1)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("degree %d: got %v, want %v", deg, got, want)
		}
	}
}

func TestGaussLegendreWeightsSumToTwo(t *testing.T) {
	for _, n := range []int{1, 2, 8, 33, 128} {
		_, w := GaussLegendre(n)
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Errorf("n=%d: weights sum to %v", n, sum)
		}
	}
}

func TestIntegrateTranscendental(t *testing.T) {
	nodes, weights := GaussLegendre(64)
	got := Integrate(math.Exp, 0, 1, nodes, weights)
	want := math.E - 1
	if math.Abs(got-want) > 1e-13 {
		t.Errorf("∫exp = %v, want %v", got, want)
	}
	got = Integrate(func(x float64) float64 { return math.Sin(x) * math.Sin(x) }, 0, math.Pi, nodes, weights)
	if math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("∫sin² = %v, want %v", got, math.Pi/2)
	}
}

func TestGaussLegendrePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GaussLegendre(0)
}
