package mpi

import (
	"fmt"
	"sync"

	"riskbench/internal/nsp"
)

// LocalWorld is an in-process communicator universe: n ranks sharing one
// address space, each rank owning a mailbox. It is the Go analogue of
// spawning Nsp slaves on the local node and merging communicators
// (paper Fig. 1).
type LocalWorld struct {
	comms []*LocalComm
	once  sync.Once
}

// NewLocalWorld creates a world of size ranks and returns it; fetch each
// rank's communicator with Comm.
func NewLocalWorld(size int) *LocalWorld {
	if size < 1 {
		panic("mpi: NewLocalWorld with size < 1")
	}
	w := &LocalWorld{comms: make([]*LocalComm, size)}
	for i := range w.comms {
		w.comms[i] = &LocalComm{world: w, rank: i, mbox: newMailbox()}
	}
	return w
}

// Comm returns the communicator of the given rank.
func (w *LocalWorld) Comm(rank int) *LocalComm {
	return w.comms[rank]
}

// Size returns the number of ranks in the world.
func (w *LocalWorld) Size() int { return len(w.comms) }

// Close shuts down every rank's mailbox.
func (w *LocalWorld) Close() {
	w.once.Do(func() {
		for _, c := range w.comms {
			c.mbox.close()
		}
	})
}

// LocalComm is one rank's endpoint in a LocalWorld.
type LocalComm struct {
	world *LocalWorld
	rank  int
	mbox  *mailbox
}

var _ Comm = (*LocalComm)(nil)

// Rank implements Comm.
func (c *LocalComm) Rank() int { return c.rank }

// Size implements Comm.
func (c *LocalComm) Size() int { return len(c.world.comms) }

// Send implements Comm. The payload is copied so callers can reuse their
// buffers, matching the value semantics of a real network send.
func (c *LocalComm) Send(data []byte, dest, tag int) error {
	if dest < 0 || dest >= len(c.world.comms) {
		return fmt.Errorf("mpi: send to invalid rank %d (world size %d)", dest, c.Size())
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.comms[dest].mbox.put(message{source: c.rank, tag: tag, data: cp})
	return nil
}

// SendObjRef implements ObjRefComm: ranks of a LocalWorld share one
// address space, so the object is delivered by reference with no
// serialization. The caller must not mutate o after the send.
func (c *LocalComm) SendObjRef(o nsp.Object, dest, tag int) error {
	if dest < 0 || dest >= len(c.world.comms) {
		return fmt.Errorf("mpi: send to invalid rank %d (world size %d)", dest, c.Size())
	}
	c.world.comms[dest].mbox.put(message{source: c.rank, tag: tag, obj: o})
	return nil
}

// RecvObjRef implements ObjRefComm. Messages sent by reference come back
// as-is (one top-level Serial unsealed, matching RecvObj); byte messages
// from plain Send are decoded the usual way.
func (c *LocalComm) RecvObjRef(source, tag int) (nsp.Object, Status, error) {
	m, err := c.mbox.recv(source, tag)
	if err != nil {
		return nil, Status{}, err
	}
	st := Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}
	if m.obj != nil {
		o := m.obj
		if s, ok := o.(*nsp.Serial); ok {
			inner, err := s.Unserialize()
			if err != nil {
				return nil, st, fmt.Errorf("mpi: recv obj unseal: %w", err)
			}
			o = inner
		}
		return o, st, nil
	}
	o, err := decodeObjStream(m.data)
	if err != nil {
		return nil, st, err
	}
	return o, st, nil
}

// Probe implements Comm.
func (c *LocalComm) Probe(source, tag int) (Status, error) {
	return c.mbox.probe(source, tag)
}

// Recv implements Comm.
func (c *LocalComm) Recv(source, tag int) ([]byte, Status, error) {
	m, err := c.mbox.recv(source, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Close implements Comm; it closes only this rank's mailbox.
func (c *LocalComm) Close() error {
	c.mbox.close()
	return nil
}

// Spawn creates a local world of n+1 ranks, runs worker in a goroutine for
// each rank 1..n, and returns the master communicator (rank 0) plus a
// wait function that blocks until every worker has returned and then
// closes the world. It mirrors the paper's NSP_spawn(n) helper.
func Spawn(n int, worker func(c Comm)) (master Comm, wait func()) {
	w := NewLocalWorld(n + 1)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			worker(w.Comm(rank))
		}(i)
	}
	return w.Comm(0), func() {
		wg.Wait()
		w.Close()
	}
}
