package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Wire-protocol versions of the hub/worker transport. The version is
// negotiated per connection: each side announces what it speaks and the
// pair settles on the minimum, so a fleet can run mixed builds during a
// rolling upgrade.
//
//   - ProtoV1 is the original format: magic, rank/size reply, raw frames.
//     A v1 endpoint announces nothing and understands no control frames;
//     it is what every pre-versioning build speaks.
//   - ProtoV2 adds a capability handshake over in-band control frames
//     (helloDest-addressed, invisible to v1 peers) and gates optional
//     payload features — span shipping, hasdelta markers — on the
//     negotiated capability set.
const (
	ProtoV1 = 1
	ProtoV2 = 2
	// ProtoLatest is what newly built endpoints speak by default.
	ProtoLatest = ProtoV2
)

// ErrProtocol marks wire-level protocol violations: oversized frames,
// malformed hello payloads, corrupt headers. A connection that surfaces
// ErrProtocol is unsynchronized and must be closed, not retried; hubs
// drop the offending peer and keep serving the rest.
var ErrProtocol = errors.New("mpi: protocol error")

// CapSet is a negotiated capability bitmask. On the wire capabilities
// travel as strings, so unknown future names pass through older builds
// unharmed; in memory the known ones fold into bits.
type CapSet uint32

// The negotiable capabilities.
const (
	// CapSpans: the peer understands span payloads — the master packs
	// trace IDs into batch descriptors and the worker ships its finished
	// SpanRecords back with the results.
	CapSpans CapSet = 1 << iota
	// CapHasDelta: the peer understands the "hasdelta" result-hash
	// marker distinguishing "delta is 0" from "method computes no delta".
	CapHasDelta
	// CapEvents: the peer understands flight-recorder event payloads —
	// the worker ships its warning+ events back with the results and the
	// master folds them into its own log with rank attribution.
	CapEvents
)

// AllCaps is every capability this build implements, and the implicit
// assumption v1 endpoints make about each other (v1 had no way to say
// otherwise — exactly the fragility versioning fixes).
const AllCaps = CapSpans | CapHasDelta | CapEvents

// capNames maps wire names to bits. Names, not bit positions, are the
// wire contract: two builds can disagree on bit layout and still
// negotiate correctly.
var capNames = map[string]CapSet{
	"spans":    CapSpans,
	"hasdelta": CapHasDelta,
	"events":   CapEvents,
}

// Has reports whether every capability in want is present.
func (s CapSet) Has(want CapSet) bool { return s&want == want }

// String renders the set as its sorted wire names.
func (s CapSet) String() string {
	var names []string
	for _, name := range []string{"events", "hasdelta", "spans"} {
		if s.Has(capNames[name]) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ",")
}

// peerInfo is one connection's negotiated view of its peer.
type peerInfo struct {
	proto int
	caps  CapSet
}

// negotiate settles a connection on the common subset: the lower
// version and the capability intersection.
func negotiate(local peerInfo, peer peerInfo) peerInfo {
	p := local.proto
	if peer.proto < p {
		p = peer.proto
	}
	return peerInfo{proto: p, caps: local.caps & peer.caps}
}

// legacyPeer is the assumed identity of a silent (v1) peer: protocol 1
// and no negotiable capabilities, so v2 endpoints conservatively
// withhold every optional feature from peers that never said hello.
var legacyPeer = peerInfo{proto: ProtoV1, caps: 0}

// Control-frame addressing. Hello frames travel inside the ordinary
// frame stream but are addressed to helloDest, a rank that cannot
// exist: a v1 hub's router drops such frames silently (dest is neither
// 0 nor a worker rank) and a v1 worker's mailbox holds them without
// ever matching a receive (every real receive names a source >= 0 or
// the AnySource/AnyTag wildcards, which are -1, not -2). That is what
// makes the v2 handshake invisible to v1 peers.
const (
	helloDest = -2
	helloSrc  = -2
	helloTag  = -2
)

// helloMagic opens a hello payload, guarding against an application
// frame that happens to be addressed to helloDest.
var helloMagic = [4]byte{'H', 'E', 'L', 'O'}

// encodeHello builds a hello payload: magic, version, and the
// capability names.
//
//	"HELO" | version u16 | ncaps u16 | ncaps × (len u8, name)
func encodeHello(info peerInfo) []byte {
	var names []string
	for name, bit := range capNames {
		if info.caps.Has(bit) {
			names = append(names, name)
		}
	}
	n := 8
	for _, name := range names {
		n += 1 + len(name)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, helloMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(info.proto))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(names)))
	for _, name := range names {
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
	}
	return buf
}

// decodeHello parses a hello payload. Unknown capability names are
// skipped, so a newer peer's extra capabilities degrade to "not
// negotiated" instead of failing the handshake.
func decodeHello(payload []byte) (peerInfo, error) {
	if len(payload) < 8 || [4]byte(payload[:4]) != helloMagic {
		return peerInfo{}, fmt.Errorf("%w: malformed hello", ErrProtocol)
	}
	info := peerInfo{proto: int(binary.BigEndian.Uint16(payload[4:6]))}
	if info.proto < ProtoV1 {
		return peerInfo{}, fmt.Errorf("%w: hello announces version %d", ErrProtocol, info.proto)
	}
	ncaps := int(binary.BigEndian.Uint16(payload[6:8]))
	rest := payload[8:]
	for i := 0; i < ncaps; i++ {
		if len(rest) < 1 {
			return peerInfo{}, fmt.Errorf("%w: truncated hello capability list", ErrProtocol)
		}
		n := int(rest[0])
		if len(rest) < 1+n {
			return peerInfo{}, fmt.Errorf("%w: truncated hello capability name", ErrProtocol)
		}
		info.caps |= capNames[string(rest[1:1+n])] // unknown names fold to 0
		rest = rest[1+n:]
	}
	return info, nil
}

// isHello reports whether a frame is a hello control frame.
func isHello(dest, src, tag int, payload []byte) bool {
	return dest == helloDest && src == helloSrc && tag == helloTag &&
		len(payload) >= 4 && [4]byte(payload[:4]) == helloMagic
}

// Negotiator is the optional Comm interface exposing the outcome of the
// version handshake. Transports that predate negotiation (and the
// in-process world, where both ends are by construction the same build)
// simply don't implement it.
type Negotiator interface {
	// PeerProto returns the negotiated protocol version with the given
	// rank.
	PeerProto(rank int) int
	// PeerCaps returns the negotiated capability set with the given
	// rank.
	PeerCaps(rank int) CapSet
}

// PeerCaps reports the capabilities negotiated between c and rank. For
// communicators without a handshake (in-process worlds) both ends are
// the same build, so the answer is AllCaps.
func PeerCaps(c Comm, rank int) CapSet {
	if n, ok := c.(Negotiator); ok {
		return n.PeerCaps(rank)
	}
	return AllCaps
}

// PeerProto reports the protocol version negotiated between c and rank,
// ProtoLatest for communicators without a handshake.
func PeerProto(c Comm, rank int) int {
	if n, ok := c.(Negotiator); ok {
		return n.PeerProto(rank)
	}
	return ProtoLatest
}
