package premia

import (
	"fmt"
	"math"
	"sync"

	"riskbench/internal/mathutil"
)

// Default Monte Carlo sizes. The paper uses 10⁶ samples for the realistic
// portfolio; unit tests override "paths" downward for speed.
const (
	mcDefaultPaths = 100000
	mcDefaultSteps = 64
	mcSeedKey      = "seed"
)

func mcSeed(p *Problem) uint64 {
	return uint64(p.Params.Get(mcSeedKey, 20090101))
}

// mcEuro implements MC_Euro: Monte Carlo under one-dimensional
// Black–Scholes with exact lognormal terminal sampling for vanilla
// payoffs, and a Brownian-bridge-corrected Euler path for the
// down-and-out barrier call. Parameters: "paths", "mcsteps" (barrier only).
func mcEuro(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Euro needs paths >= 2, got %d", paths)
	}
	rng := mathutil.NewRNG(mcSeed(p))

	switch p.Option {
	case OptCallEuro, OptPutEuro:
		o, err := vanillaFrom(p)
		if err != nil {
			return Result{}, err
		}
		isCall := p.Option == OptCallEuro
		antithetic := p.Params.Get("antithetic", 0) != 0
		drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
		vol := m.Sigma * math.Sqrt(o.T)
		df := math.Exp(-m.R * o.T)
		eval := func(g float64) (pay, dpay float64) {
			st := m.S0 * math.Exp(drift+vol*g)
			if isCall {
				pay = payoffCall(st, o.K)
				if st > o.K {
					dpay = st / m.S0 // pathwise delta of a call
				}
			} else {
				pay = payoffPut(st, o.K)
				if st < o.K {
					dpay = -st / m.S0
				}
			}
			return pay, dpay
		}
		var w, wd mathutil.Welford
		if antithetic {
			// Pair each draw with its mirror: the averaged pair is one
			// sample with strictly smaller variance for monotone payoffs.
			for i := 0; i < paths/2; i++ {
				g := rng.Norm()
				p1, d1 := eval(g)
				p2, d2 := eval(-g)
				w.Add(df * (p1 + p2) / 2)
				wd.Add(df * (d1 + d2) / 2)
			}
		} else {
			for i := 0; i < paths; i++ {
				pay, dpay := eval(rng.Norm())
				w.Add(df * pay)
				wd.Add(df * dpay)
			}
		}
		return Result{
			Price: w.Mean(), PriceCI: w.HalfWidth95(),
			Delta: wd.Mean(), HasDelta: true,
			Work: float64(paths),
		}, nil

	case OptCallUpOut:
		return mcCallUpOut(p)

	case OptCallDownOut:
		o, err := barrierFrom(p)
		if err != nil {
			return Result{}, err
		}
		if m.S0 <= o.L {
			return Result{Price: o.Rebate * math.Exp(-m.R*o.T), HasDelta: false, Work: 1}, nil
		}
		steps := p.Params.Int("mcsteps", mcDefaultSteps)
		if steps < 1 {
			return Result{}, fmt.Errorf("premia: MC_Euro barrier needs mcsteps >= 1")
		}
		dt := o.T / float64(steps)
		drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * dt
		vol := m.Sigma * math.Sqrt(dt)
		df := math.Exp(-m.R * o.T)
		lnL := math.Log(o.L)
		sig2dt := m.Sigma * m.Sigma * dt
		var w mathutil.Welford
		for i := 0; i < paths; i++ {
			x := math.Log(m.S0)
			alive := true
			// Survival probability of the Brownian bridge between the
			// discrete monitoring dates removes the discretisation bias.
			survival := 1.0
			for k := 0; k < steps && alive; k++ {
				xNext := x + drift + vol*rng.Norm()
				if xNext <= lnL {
					alive = false
					break
				}
				// P(bridge from x to xNext dips below lnL).
				pHit := math.Exp(-2 * (x - lnL) * (xNext - lnL) / sig2dt)
				survival *= 1 - pHit
				x = xNext
			}
			pay := o.Rebate
			if alive {
				st := math.Exp(x)
				pay = survival*payoffCall(st, o.K) + (1-survival)*o.Rebate
			}
			w.Add(df * pay)
		}
		return Result{
			Price: w.Mean(), PriceCI: w.HalfWidth95(),
			Work: float64(paths) * float64(steps),
		}, nil
	}
	return Result{}, fmt.Errorf("premia: MC_Euro does not price %q", p.Option)
}

// mcBasket implements MC_Basket: a European put on the equally-weighted
// average of dim correlated Black–Scholes assets, sampled exactly at
// maturity through the Cholesky factor of the correlation matrix. This is
// the paper's "40-dimensional basket put, 10⁶ samples" workload.
//
// The optional "threads" parameter splits the paths over goroutines, each
// with its own RNG stream derived by Split and its own Welford
// accumulator merged deterministically at the end — so the result depends
// only on (seed, paths, threads), never on scheduling. (The paper prices
// each option on a single processor; this knob is the natural extension
// once nodes are multi-core, like the unused second core of the paper's
// Xeons.)
func mcBasket(p *Problem) (Result, error) {
	m, err := mbsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Basket needs paths >= 2, got %d", paths)
	}
	threads := p.Params.Int("threads", 1)
	if threads < 1 {
		return Result{}, fmt.Errorf("premia: MC_Basket needs threads >= 1, got %d", threads)
	}
	if threads > paths {
		threads = paths
	}
	d := m.Dim
	chol := make([]float64, d*d)
	if err := mathutil.Cholesky(mathutil.CorrelationMatrix(d, m.Rho), d, chol); err != nil {
		return Result{}, fmt.Errorf("premia: basket correlation: %w", err)
	}
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
	vol := m.Sigma * math.Sqrt(o.T)
	df := math.Exp(-m.R * o.T)
	base := mathutil.NewRNG(mcSeed(p))

	isCall := p.Option == OptCallBasketEuro
	worker := func(rng *mathutil.RNG, n int, out *mathutil.Welford) {
		z := make([]float64, d)
		cz := make([]float64, d)
		st := make([]float64, d)
		for i := 0; i < n; i++ {
			rng.NormVec(z)
			mathutil.MatVecLower(chol, d, z, cz)
			for j := 0; j < d; j++ {
				st[j] = m.S0 * math.Exp(drift+vol*cz[j])
			}
			if isCall {
				out.Add(df * payoffCall(basketValue(st), o.K))
			} else {
				out.Add(df * payoffPut(basketValue(st), o.K))
			}
		}
	}
	accs := make([]mathutil.Welford, threads)
	if threads == 1 {
		worker(base, paths, &accs[0])
	} else {
		var wg sync.WaitGroup
		for tID := 0; tID < threads; tID++ {
			n := paths / threads
			if tID < paths%threads {
				n++
			}
			wg.Add(1)
			go func(id, count int) {
				defer wg.Done()
				worker(base.Split(uint64(id)), count, &accs[id])
			}(tID, n)
		}
		wg.Wait()
	}
	var w mathutil.Welford
	for i := range accs {
		w.Merge(accs[i])
	}
	return Result{
		Price: w.Mean(), PriceCI: w.HalfWidth95(),
		Work: float64(paths) * float64(d),
	}, nil
}

// mcLocalVol implements MC_LocalVol: log-Euler simulation under the
// parametric local-volatility surface. Parameters: "paths", "mcsteps".
func mcLocalVol(p *Problem) (Result, error) {
	m, err := lvFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC_LocalVol needs paths >= 2 and mcsteps >= 1")
	}
	isCall := p.Option == OptCallEuro
	rng := mathutil.NewRNG(mcSeed(p))
	dt := o.T / float64(steps)
	sqdt := math.Sqrt(dt)
	df := math.Exp(-m.R * o.T)
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		s := m.S0
		t := 0.0
		for k := 0; k < steps; k++ {
			sig := m.Vol(t, s)
			s *= math.Exp((m.R-m.Div-0.5*sig*sig)*dt + sig*sqdt*rng.Norm())
			t += dt
		}
		var pay float64
		if isCall {
			pay = payoffCall(s, o.K)
		} else {
			pay = payoffPut(s, o.K)
		}
		w.Add(df * pay)
	}
	return Result{
		Price: w.Mean(), PriceCI: w.HalfWidth95(),
		Work: float64(paths) * float64(steps),
	}, nil
}
