package premia

import (
	"fmt"
	"sort"
)

// Params is a flat name→value table holding every numeric parameter of a
// pricing problem (model, option and method parameters share one
// namespace, as in Premia's flattened parameter lists).
type Params map[string]float64

// Clone returns a deep copy.
func (p Params) Clone() Params {
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Get returns the value for key, or the fallback if absent.
func (p Params) Get(key string, fallback float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return fallback
}

// Need returns the value for key or an error naming the missing
// parameter, wrapping ErrMissingParam for errors.Is.
func (p Params) Need(key string) (float64, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrMissingParam, key)
	}
	return v, nil
}

// NeedPositive returns the value for key, requiring it to be > 0.
func (p Params) NeedPositive(key string) (float64, error) {
	v, err := p.Need(key)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("premia: parameter %q must be positive, got %v", key, v)
	}
	return v, nil
}

// Int returns the value for key rounded to int, or fallback if absent.
func (p Params) Int(key string, fallback int) int {
	if v, ok := p[key]; ok {
		return int(v + 0.5)
	}
	return fallback
}

// Keys returns the parameter names in sorted order for deterministic
// encoding.
func (p Params) Keys() []string {
	ks := make([]string, 0, len(p))
	for k := range p {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
