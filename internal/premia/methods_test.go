package premia

import (
	"math"
	"testing"
)

func TestCRRConvergesToBS(t *testing.T) {
	want, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, steps := range []int{64, 256, 1024} {
		res, err := bsProblem(OptCallEuro, MethodTreeCRR, 100, 1).Set("steps", float64(steps)).Compute()
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(res.Price - want.Price)
		if e > prevErr*1.2 { // allow CRR oscillation but demand overall decay
			t.Errorf("steps=%d: error %v did not shrink (prev %v)", steps, e, prevErr)
		}
		prevErr = e
	}
	res, err := bsProblem(OptCallEuro, MethodTreeCRR, 100, 1).Set("steps", 2048).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-want.Price) > 0.01 {
		t.Errorf("CRR(2048) = %v, BS = %v", res.Price, want.Price)
	}
	if math.Abs(res.Delta-want.Delta) > 0.005 {
		t.Errorf("CRR delta = %v, BS delta = %v", res.Delta, want.Delta)
	}
}

func TestCRRPutEuro(t *testing.T) {
	want, err := bsProblem(OptPutEuro, MethodCFPut, 110, 0.5).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsProblem(OptPutEuro, MethodTreeCRR, 110, 0.5).Set("steps", 2048).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-want.Price) > 0.01 {
		t.Errorf("CRR put = %v, BS = %v", res.Price, want.Price)
	}
}

func TestCRRAmericanAboveEuropean(t *testing.T) {
	euro, err := bsProblem(OptPutEuro, MethodTreeCRR, 100, 1).Set("steps", 500).Compute()
	if err != nil {
		t.Fatal(err)
	}
	amer, err := bsProblem(OptPutAmer, MethodTreeCRR, 100, 1).Set("steps", 500).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if amer.Price < euro.Price-1e-10 {
		t.Errorf("American put %v below European %v", amer.Price, euro.Price)
	}
	// With r > 0 the early-exercise premium is strictly positive for ITM puts.
	euroITM, _ := bsProblem(OptPutEuro, MethodTreeCRR, 130, 1).Set("steps", 500).Compute()
	amerITM, _ := bsProblem(OptPutAmer, MethodTreeCRR, 130, 1).Set("steps", 500).Compute()
	if amerITM.Price <= euroITM.Price {
		t.Errorf("ITM American put %v not above European %v", amerITM.Price, euroITM.Price)
	}
	// American put dominates immediate exercise.
	if amerITM.Price < 30 {
		t.Errorf("American put %v below intrinsic 30", amerITM.Price)
	}
}

func TestFDCrankNicolsonEuroMatchesCF(t *testing.T) {
	for _, tc := range []struct {
		option, method string
		k              float64
	}{
		{OptCallEuro, MethodCFCall, 100},
		{OptCallEuro, MethodCFCall, 120},
		{OptPutEuro, MethodCFPut, 100},
		{OptPutEuro, MethodCFPut, 80},
	} {
		want, err := bsProblem(tc.option, tc.method, tc.k, 1).Compute()
		if err != nil {
			t.Fatal(err)
		}
		res, err := bsProblem(tc.option, MethodFDCrank, tc.k, 1).
			Set("nodes", 600).Set("steps", 400).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Price-want.Price) > 0.01 {
			t.Errorf("%s K=%v: FD = %v, CF = %v", tc.option, tc.k, res.Price, want.Price)
		}
		if math.Abs(res.Delta-want.Delta) > 0.005 {
			t.Errorf("%s K=%v: FD delta = %v, CF delta = %v", tc.option, tc.k, res.Delta, want.Delta)
		}
	}
}

func TestFDBarrierMatchesCF(t *testing.T) {
	for _, l := range []float64{80, 90, 95} {
		want, err := barrierProblem(MethodCFCallDownOut, 100, 1, l).Compute()
		if err != nil {
			t.Fatal(err)
		}
		res, err := barrierProblem(MethodFDCrank, 100, 1, l).
			Set("nodes", 800).Set("steps", 400).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Price-want.Price) > 0.02*math.Max(want.Price, 1) {
			t.Errorf("L=%v: FD barrier = %v, CF = %v", l, res.Price, want.Price)
		}
	}
}

func TestFDAmericanMethodsAgree(t *testing.T) {
	bs, err := bsProblem(OptPutAmer, MethodFDBS, 100, 1).
		Set("nodes", 400).Set("steps", 200).Compute()
	if err != nil {
		t.Fatal(err)
	}
	psor, err := bsProblem(OptPutAmer, MethodFDPSOR, 100, 1).
		Set("nodes", 400).Set("steps", 200).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bs.Price-psor.Price) > 5e-3 {
		t.Errorf("Brennan–Schwartz %v vs PSOR %v", bs.Price, psor.Price)
	}
	crr, err := bsProblem(OptPutAmer, MethodTreeCRR, 100, 1).Set("steps", 2000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bs.Price-crr.Price) > 0.02 {
		t.Errorf("FD American %v vs CRR %v", bs.Price, crr.Price)
	}
}

func TestFDAmericanDominatesEuropeanAndIntrinsic(t *testing.T) {
	for _, k := range []float64{80.0, 100, 120, 140} {
		euro, err := bsProblem(OptPutEuro, MethodCFPut, k, 1).Compute()
		if err != nil {
			t.Fatal(err)
		}
		amer, err := bsProblem(OptPutAmer, MethodFDBS, k, 1).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if amer.Price < euro.Price-0.01 {
			t.Errorf("K=%v: American %v below European %v", k, amer.Price, euro.Price)
		}
		if intrinsic := math.Max(k-100, 0); amer.Price < intrinsic-1e-6 {
			t.Errorf("K=%v: American %v below intrinsic %v", k, amer.Price, intrinsic)
		}
	}
}

func TestMCEuroWithinCI(t *testing.T) {
	want, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 200000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if res.PriceCI <= 0 {
		t.Fatal("MC did not report a confidence interval")
	}
	if diff := math.Abs(res.Price - want.Price); diff > 3*res.PriceCI {
		t.Errorf("MC %v ± %v vs CF %v (off by %v)", res.Price, res.PriceCI, want.Price, diff)
	}
	if math.Abs(res.Delta-want.Delta) > 0.01 {
		t.Errorf("MC pathwise delta %v vs CF %v", res.Delta, want.Delta)
	}
}

func TestMCEuroPutWithinCI(t *testing.T) {
	want, err := bsProblem(OptPutEuro, MethodCFPut, 110, 2).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsProblem(OptPutEuro, MethodMCEuro, 110, 2).Set("paths", 200000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Price - want.Price); diff > 3*res.PriceCI {
		t.Errorf("MC put %v ± %v vs CF %v", res.Price, res.PriceCI, want.Price)
	}
}

func TestMCBarrierMatchesCF(t *testing.T) {
	want, err := barrierProblem(MethodCFCallDownOut, 100, 1, 90).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := barrierProblem(MethodMCEuro, 100, 1, 90).
		Set("paths", 100000).Set("mcsteps", 50).Compute()
	if err != nil {
		t.Fatal(err)
	}
	// The Brownian-bridge correction removes most discretisation bias.
	if diff := math.Abs(res.Price - want.Price); diff > 4*res.PriceCI+0.03 {
		t.Errorf("MC barrier %v ± %v vs CF %v", res.Price, res.PriceCI, want.Price)
	}
}

func TestMCDeterministicAcrossRuns(t *testing.T) {
	p := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 10000)
	a, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price {
		t.Errorf("same seed produced different prices: %v vs %v", a.Price, b.Price)
	}
	c, err := p.Clone().Set("seed", 999).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Price == c.Price {
		t.Error("different seeds produced identical prices")
	}
}

func basketProblem(dim int) *Problem {
	return New().
		SetModel(ModelBSND).SetOption(OptPutBasketEuro).SetMethod(MethodMCBasket).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0).Set("sigma", 0.25).
		Set("dim", float64(dim)).Set("rho", 0.3).
		Set("K", 100).Set("T", 1)
}

func TestMCBasketDim1MatchesBSPut(t *testing.T) {
	want, err := New().SetModel(ModelBS1D).SetOption(OptPutEuro).SetMethod(MethodCFPut).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).Set("K", 100).Set("T", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := basketProblem(1).Set("paths", 200000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Price - want.Price); diff > 3*res.PriceCI {
		t.Errorf("basket dim=1 %v ± %v vs BS put %v", res.Price, res.PriceCI, want.Price)
	}
}

func TestMCBasketDiversification(t *testing.T) {
	// With ρ<1 the basket is less volatile than a single asset, so the
	// basket put is worth less than the one-dimensional put.
	single, err := basketProblem(1).Set("paths", 50000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	basket, err := basketProblem(40).Set("paths", 50000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if basket.Price >= single.Price {
		t.Errorf("40-asset basket put %v not below single-asset put %v", basket.Price, single.Price)
	}
	if basket.Price <= 0 {
		t.Errorf("basket put price %v not positive", basket.Price)
	}
}

func TestMCLocalVolFlatSurfaceMatchesBS(t *testing.T) {
	want, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().SetModel(ModelLocVol).SetOption(OptCallEuro).SetMethod(MethodMCLocalVol).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0.02).
		Set("sigma0", 0.25).Set("skew", 0).Set("termslope", 0).
		Set("K", 100).Set("T", 1).
		Set("paths", 100000).Set("mcsteps", 64).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Price - want.Price); diff > 3*res.PriceCI+0.05 {
		t.Errorf("flat local vol %v ± %v vs BS %v", res.Price, res.PriceCI, want.Price)
	}
}

func TestMCLocalVolSkewEffect(t *testing.T) {
	// Negative skew fattens the left tail, raising OTM put prices relative
	// to the flat surface with the same at-the-money vol.
	base := func(skew float64) float64 {
		res, err := New().SetModel(ModelLocVol).SetOption(OptPutEuro).SetMethod(MethodMCLocalVol).
			Set("S0", 100).Set("r", 0.03).Set("sigma0", 0.25).Set("skew", skew).
			Set("K", 70).Set("T", 1).Set("paths", 150000).Set("mcsteps", 64).Compute()
		if err != nil {
			t.Fatal(err)
		}
		return res.Price
	}
	flat := base(0)
	skewed := base(-0.3)
	if skewed <= flat {
		t.Errorf("negative skew did not raise OTM put: flat %v, skewed %v", flat, skewed)
	}
}

func TestLSMAmericanPutMatchesFD(t *testing.T) {
	want, err := bsProblem(OptPutAmer, MethodFDBS, 100, 1).
		Set("nodes", 600).Set("steps", 300).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsProblem(OptPutAmer, MethodMCAmerLSM, 100, 1).
		Set("paths", 50000).Set("exdates", 50).Compute()
	if err != nil {
		t.Fatal(err)
	}
	// LSM is biased low but must land within ~1.5% of the PDE value.
	if math.Abs(res.Price-want.Price) > 0.015*want.Price {
		t.Errorf("LSM %v vs FD %v", res.Price, want.Price)
	}
}

func TestLSMAmericanBounds(t *testing.T) {
	euro, err := bsProblem(OptPutEuro, MethodCFPut, 110, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsProblem(OptPutAmer, MethodMCAmerLSM, 110, 1).
		Set("paths", 20000).Set("exdates", 25).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Price < euro.Price-3*res.PriceCI-0.05 {
		t.Errorf("LSM American %v below European %v", res.Price, euro.Price)
	}
	if res.Price < 10-1e-9 { // intrinsic K-S = 10
		t.Errorf("LSM American %v below intrinsic 10", res.Price)
	}
}

func TestLSMBasketAmerican(t *testing.T) {
	// 7-dimensional American basket put (the paper's hardest product).
	p := New().SetModel(ModelBSND).SetOption(OptPutBasketAmer).SetMethod(MethodMCAmerLSM).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).
		Set("dim", 7).Set("rho", 0.3).
		Set("K", 100).Set("T", 1).
		Set("paths", 20000).Set("exdates", 25)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	// The American basket put must dominate its European counterpart.
	euro, err := New().SetModel(ModelBSND).SetOption(OptPutBasketEuro).SetMethod(MethodMCBasket).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.25).
		Set("dim", 7).Set("rho", 0.3).
		Set("K", 100).Set("T", 1).Set("paths", 50000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Price < euro.Price-3*(res.PriceCI+euro.PriceCI) {
		t.Errorf("American basket %v below European basket %v", res.Price, euro.Price)
	}
	if res.Price <= 0 || res.Price >= 100 {
		t.Errorf("basket American price out of bounds: %v", res.Price)
	}
}

func TestAlfonsiLSMHestonAmerican(t *testing.T) {
	// The paper's Nsp example: PutAmer in Heston via
	// MC_AM_Alfonsi_LongstaffSchwartz. Must dominate the European put.
	euro, err := hestonProblem(OptPutEuro, MethodCFHeston).Compute()
	if err != nil {
		t.Fatal(err)
	}
	amer, err := hestonProblem(OptPutAmer, MethodMCAmerAlfonsi).
		Set("paths", 30000).Set("exdates", 50).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if amer.Price < euro.Price-3*amer.PriceCI-0.05 {
		t.Errorf("Heston American %v below European %v", amer.Price, euro.Price)
	}
	if amer.Price <= 0 || amer.Price >= 100 {
		t.Errorf("Heston American price out of bounds: %v", amer.Price)
	}
}

func TestAlfonsiStepPositivity(t *testing.T) {
	// The Alfonsi scheme must keep the variance non-negative under the
	// Feller-satisfying parameters for arbitrary shocks.
	kappa, theta, sigma := 2.0, 0.04, 0.3 // 4κθ = 0.32 ≥ σ² = 0.09
	v := 0.04
	for _, dw := range []float64{-3, -1, -0.1, 0, 0.1, 1, 3} {
		vn := alfonsiStep(v, kappa, theta, sigma, 0.01, dw*0.1)
		if vn < 0 || math.IsNaN(vn) {
			t.Fatalf("alfonsiStep(%v, dw=%v) = %v", v, dw, vn)
		}
	}
	// Mean reversion: from far above theta the drift pulls down.
	far := alfonsiStep(1.0, kappa, theta, sigma, 0.05, 0)
	if far >= 1.0 {
		t.Errorf("no mean reversion from above: %v", far)
	}
}

func TestHestonMCFellerViolatedFallback(t *testing.T) {
	// 4κθ < σᵥ² forces the full-truncation Euler fallback; the price must
	// still be finite, positive and parity-consistent with CF_Heston.
	p := hestonProblem(OptCallEuro, MethodMCHeston).
		Set("kappa", 0.5).Set("theta", 0.02).Set("sigmaV", 1.0).
		Set("paths", 20000).Set("mcsteps", 100)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Price) || res.Price <= 0 || res.Price >= 100 {
		t.Fatalf("fallback price out of bounds: %v", res.Price)
	}
	cf, err := hestonProblem(OptCallEuro, MethodCFHeston).
		Set("kappa", 0.5).Set("theta", 0.02).Set("sigmaV", 1.0).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-cf.Price) > 4*res.PriceCI/1.96+0.25 {
		t.Errorf("fallback MC %v ± %v far from CF %v", res.Price, res.PriceCI, cf.Price)
	}
}

func TestWorkFieldsPopulated(t *testing.T) {
	// Every method must report a positive abstract work figure; the
	// cluster simulator depends on it.
	cases := []*Problem{
		bsProblem(OptCallEuro, MethodCFCall, 100, 1),
		bsProblem(OptPutAmer, MethodFDBS, 100, 1).Set("nodes", 50).Set("steps", 20),
		bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 100),
		basketProblem(3).Set("paths", 100),
	}
	for _, p := range cases {
		res, err := p.Compute()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Work <= 0 {
			t.Errorf("%s: Work = %v", p, res.Work)
		}
	}
}

func TestTrinomialConvergesToBS(t *testing.T) {
	want, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsProblem(OptCallEuro, MethodTreeTrinomial, 100, 1).Set("steps", 1000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-want.Price) > 0.01 {
		t.Errorf("trinomial = %v, BS = %v", res.Price, want.Price)
	}
	if math.Abs(res.Delta-want.Delta) > 0.005 {
		t.Errorf("trinomial delta = %v, BS = %v", res.Delta, want.Delta)
	}
}

func TestTrinomialMatchesCRRAmerican(t *testing.T) {
	crr, err := bsProblem(OptPutAmer, MethodTreeCRR, 110, 1).Set("steps", 2000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	tri, err := bsProblem(OptPutAmer, MethodTreeTrinomial, 110, 1).Set("steps", 1000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(crr.Price-tri.Price) > 0.02 {
		t.Errorf("CRR %v vs trinomial %v", crr.Price, tri.Price)
	}
}

func TestTrinomialAmericanDominatesEuropean(t *testing.T) {
	euro, err := bsProblem(OptPutEuro, MethodTreeTrinomial, 120, 1).Set("steps", 400).Compute()
	if err != nil {
		t.Fatal(err)
	}
	amer, err := bsProblem(OptPutAmer, MethodTreeTrinomial, 120, 1).Set("steps", 400).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if amer.Price < euro.Price {
		t.Errorf("American %v below European %v", amer.Price, euro.Price)
	}
}

func TestTrinomialRejectsBadParams(t *testing.T) {
	if _, err := bsProblem(OptCallEuro, MethodTreeTrinomial, 100, 1).Set("steps", 0).Compute(); err == nil {
		t.Error("steps=0 accepted")
	}
	if _, err := bsProblem(OptCallEuro, MethodTreeTrinomial, 100, 1).Set("lambda", 0.5).Compute(); err == nil {
		t.Error("lambda<1 accepted")
	}
	// Huge drift with one step pushes probabilities out of range.
	p := bsProblem(OptCallEuro, MethodTreeTrinomial, 100, 10).Set("steps", 1).Set("r", 3.0)
	if _, err := p.Compute(); err == nil {
		t.Error("degenerate probabilities accepted")
	}
}

func TestMCAntitheticReducesVariance(t *testing.T) {
	plain, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).Set("paths", 100000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	anti, err := bsProblem(OptCallEuro, MethodMCEuro, 100, 1).
		Set("paths", 100000).Set("antithetic", 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	// Same total path budget (the antithetic run draws half as many
	// normals); the CI must shrink for the monotone call payoff.
	if anti.PriceCI >= plain.PriceCI {
		t.Errorf("antithetic CI %v not below plain CI %v", anti.PriceCI, plain.PriceCI)
	}
	want, err := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(anti.Price - want.Price); diff > 4*anti.PriceCI {
		t.Errorf("antithetic price %v ± %v vs CF %v", anti.Price, anti.PriceCI, want.Price)
	}
	if math.Abs(anti.Delta-want.Delta) > 0.01 {
		t.Errorf("antithetic delta %v vs CF %v", anti.Delta, want.Delta)
	}
}

func TestMCBasketThreadsDeterministicAndCorrect(t *testing.T) {
	p := basketProblem(8).Set("paths", 50000).Set("threads", 4)
	a, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price || a.PriceCI != b.PriceCI {
		t.Fatalf("threaded MC not deterministic: %v vs %v", a.Price, b.Price)
	}
	single, err := basketProblem(8).Set("paths", 50000).Compute()
	if err != nil {
		t.Fatal(err)
	}
	// Different stream partitioning: not identical, but both estimates of
	// the same value within joint CI.
	if diff := math.Abs(a.Price - single.Price); diff > 3*(a.PriceCI+single.PriceCI) {
		t.Errorf("threaded %v ± %v vs single %v ± %v", a.Price, a.PriceCI, single.Price, single.PriceCI)
	}
}

func TestMCBasketThreadsEdgeCases(t *testing.T) {
	// More threads than paths clamps; zero threads is an error.
	if _, err := basketProblem(2).Set("paths", 10).Set("threads", 64).Compute(); err != nil {
		t.Fatalf("threads > paths: %v", err)
	}
	if _, err := basketProblem(2).Set("paths", 10).Set("threads", -1).Compute(); err == nil {
		t.Fatal("negative threads accepted")
	}
}

func TestBasketPutCallParity(t *testing.T) {
	// European basket: C − P = e^{-rT}(E[B] − K) with
	// E[B] = S0·e^{(r−q)T} for identical marginals, method-independent.
	base := func(option, method string) *Problem {
		return New().SetModel(ModelBSND).SetOption(option).SetMethod(method).
			Set("S0", 100).Set("r", 0.05).Set("divid", 0.01).Set("sigma", 0.25).
			Set("dim", 10).Set("rho", 0.3).Set("K", 100).Set("T", 1).
			Set("paths", 200000)
	}
	want := math.Exp(-0.05) * (100*math.Exp(0.04) - 100)
	for _, method := range []string{MethodMCBasket, MethodQMCBasket} {
		call, err := base(OptCallBasketEuro, method).Compute()
		if err != nil {
			t.Fatalf("%s call: %v", method, err)
		}
		put, err := base(OptPutBasketEuro, method).Compute()
		if err != nil {
			t.Fatalf("%s put: %v", method, err)
		}
		tol := 3*(call.PriceCI+put.PriceCI) + 0.02
		if diff := math.Abs(call.Price - put.Price - want); diff > tol {
			t.Errorf("%s parity: C-P = %v, want %v (tol %v)", method, call.Price-put.Price, want, tol)
		}
	}
}

func TestFDBarrierRebateMatchesCF(t *testing.T) {
	// The PDE carries the rebate through its knock-out boundary condition;
	// it must agree with the closed formula including the rebate leg.
	cf, err := barrierProblem(MethodCFCallDownOut, 100, 1, 90).Set("rebate", 4).Compute()
	if err != nil {
		t.Fatal(err)
	}
	fd, err := barrierProblem(MethodFDCrank, 100, 1, 90).Set("rebate", 4).
		Set("nodes", 800).Set("steps", 400).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf.Price-fd.Price) > 0.03*cf.Price {
		t.Errorf("rebate barrier: CF %v vs FD %v", cf.Price, fd.Price)
	}
}

func TestAmericanCallNoDividendEqualsEuropean(t *testing.T) {
	// Merton's classic result: without dividends, early exercise of a call
	// is never optimal.
	base := func(option string) *Problem {
		return New().SetModel(ModelBS1D).SetOption(option).SetMethod(MethodTreeCRR).
			Set("S0", 100).Set("r", 0.05).Set("divid", 0).Set("sigma", 0.25).
			Set("K", 100).Set("T", 1).Set("steps", 600)
	}
	euro, err := base(OptCallEuro).Compute()
	if err != nil {
		t.Fatal(err)
	}
	amer, err := base(OptCallAmer).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(amer.Price-euro.Price) > 1e-9 {
		t.Errorf("no-dividend American call %v != European %v", amer.Price, euro.Price)
	}
}

func TestAmericanCallDividendPremium(t *testing.T) {
	// With a fat dividend yield the early-exercise premium is strictly
	// positive for ITM calls, on both lattices.
	for _, method := range []string{MethodTreeCRR, MethodTreeTrinomial} {
		base := func(option string) *Problem {
			return New().SetModel(ModelBS1D).SetOption(option).SetMethod(method).
				Set("S0", 100).Set("r", 0.03).Set("divid", 0.08).Set("sigma", 0.25).
				Set("K", 70).Set("T", 2).Set("steps", 600)
		}
		euro, err := base(OptCallEuro).Compute()
		if err != nil {
			t.Fatal(err)
		}
		amer, err := base(OptCallAmer).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if amer.Price <= euro.Price+1e-6 {
			t.Errorf("%s: ITM American call %v not above European %v under dividends",
				method, amer.Price, euro.Price)
		}
		if amer.Price < 30-1e-9 {
			t.Errorf("%s: American call %v below intrinsic 30", method, amer.Price)
		}
	}
}

func TestFDUpOutMatchesCF(t *testing.T) {
	for _, u := range []float64{115.0, 130, 160} {
		cf, err := upBarrierProblem(MethodCFCallUpOut, 100, 1, u).Compute()
		if err != nil {
			t.Fatal(err)
		}
		fd, err := upBarrierProblem(MethodFDCrank, 100, 1, u).
			Set("nodes", 800).Set("steps", 400).Compute()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cf.Price-fd.Price) > 0.02*math.Max(cf.Price, 0.5) {
			t.Errorf("U=%v: FD up-out %v vs CF %v", u, fd.Price, cf.Price)
		}
	}
}

func TestFDUpOutRebate(t *testing.T) {
	cf, err := upBarrierProblem(MethodCFCallUpOut, 100, 1, 130).Set("rebate", 4).Compute()
	if err != nil {
		t.Fatal(err)
	}
	fd, err := upBarrierProblem(MethodFDCrank, 100, 1, 130).Set("rebate", 4).
		Set("nodes", 800).Set("steps", 400).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf.Price-fd.Price) > 0.03*cf.Price {
		t.Errorf("rebate up-out: CF %v vs FD %v", cf.Price, fd.Price)
	}
}

func TestLSMDegreeConvergence(t *testing.T) {
	// The LSM continuation-value fit improves with the polynomial degree
	// and stabilises: degree 3 must be within tolerance of degree 5, and
	// both within 2% of the PDE value (LSM's low bias).
	fd, err := bsProblem(OptPutAmer, MethodFDBS, 110, 1).
		Set("nodes", 600).Set("steps", 300).Compute()
	if err != nil {
		t.Fatal(err)
	}
	price := func(degree int) float64 {
		res, err := bsProblem(OptPutAmer, MethodMCAmerLSM, 110, 1).
			Set("paths", 50000).Set("exdates", 50).Set("degree", float64(degree)).Compute()
		if err != nil {
			t.Fatal(err)
		}
		return res.Price
	}
	d1 := price(1)
	d3 := price(3)
	d5 := price(5)
	if math.Abs(d3-d5) > 0.01*fd.Price {
		t.Errorf("LSM degree 3 (%v) vs 5 (%v) not stabilised", d3, d5)
	}
	if math.Abs(d3-fd.Price) > 0.02*fd.Price {
		t.Errorf("LSM degree 3 %v far from PDE %v", d3, fd.Price)
	}
	// A linear continuation fit underprices (coarser exercise rule).
	if d1 > d3+0.02 {
		t.Errorf("degree-1 LSM %v above degree-3 %v", d1, d3)
	}
}
