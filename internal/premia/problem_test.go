package premia

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"riskbench/internal/nsp"
)

func sampleProblem() *Problem {
	// The paper's own example: an American put in Heston priced by the
	// Alfonsi Longstaff–Schwartz method.
	return New().
		SetModel(ModelHeston).SetOption(OptPutAmer).SetMethod(MethodMCAmerAlfonsi).
		Set("S0", 100).Set("r", 0.03).Set("V0", 0.04).Set("kappa", 2).
		Set("theta", 0.04).Set("sigmaV", 0.3).Set("rhoSV", -0.7).
		Set("K", 100).Set("T", 1).Set("paths", 1000).Set("exdates", 10)
}

func TestProblemNspRoundTrip(t *testing.T) {
	p := sampleProblem()
	h, err := p.ToNsp()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromNsp(h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, back)
	}
}

func TestProblemNspThroughSerialization(t *testing.T) {
	// Full wire path: problem → hash → serialize → unserialize → problem.
	p := sampleProblem()
	h, err := p.ToNsp()
	if err != nil {
		t.Fatal(err)
	}
	s, err := nsp.Serialize(h)
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Unserialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromNsp(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("problem lost through serialization")
	}
}

func TestProblemXDRRoundTrip(t *testing.T) {
	p := sampleProblem()
	data, err := p.MarshalXDR()
	if err != nil {
		t.Fatal(err)
	}
	if len(data)%4 != 0 {
		t.Errorf("XDR blob not word-aligned: %d bytes", len(data))
	}
	back, err := UnmarshalXDR(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("XDR round trip mismatch")
	}
}

func TestProblemXDRRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalXDR(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalXDR([]byte("garbage!")); err == nil {
		t.Error("garbage accepted")
	}
	good, _ := sampleProblem().MarshalXDR()
	if _, err := UnmarshalXDR(good[:len(good)-3]); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestProblemSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fic")
	p := sampleProblem()
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("Save/Load mismatch")
	}
}

func TestProblemSLoadPath(t *testing.T) {
	// The serialized-load strategy: sload the file, ship the serial,
	// unserialize remotely, rebuild and compute.
	path := filepath.Join(t.TempDir(), "fic")
	p := bsProblem(OptCallEuro, MethodCFCall, 100, 1)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := nsp.SLoad(path)
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Unserialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromNsp(o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if got.Price != want.Price {
		t.Fatalf("sload path changed the price: %v vs %v", got.Price, want.Price)
	}
}

func TestPropertyProblemRoundTrips(t *testing.T) {
	models := []string{ModelBS1D, ModelBSND, ModelLocVol, ModelHeston}
	options := []string{OptCallEuro, OptPutEuro, OptCallDownOut, OptPutAmer, OptPutBasketEuro, OptPutBasketAmer}
	methodNames := Methods()
	keys := []string{"S0", "r", "sigma", "K", "T", "dim", "rho", "paths", "steps", "V0"}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			p := New()
			p.SetModel(models[r.Intn(len(models))])
			p.SetOption(options[r.Intn(len(options))])
			p.SetMethod(methodNames[r.Intn(len(methodNames))])
			for i := r.Intn(len(keys)); i > 0; i-- {
				p.Set(keys[r.Intn(len(keys))], r.NormFloat64()*100)
			}
			vals[0] = reflect.ValueOf(p)
		},
	}
	f := func(p *Problem) bool {
		h, err := p.ToNsp()
		if err != nil {
			return false
		}
		b1, err := FromNsp(h)
		if err != nil || !reflect.DeepEqual(p, b1) {
			return false
		}
		data, err := p.MarshalXDR()
		if err != nil {
			return false
		}
		b2, err := UnmarshalXDR(data)
		return err == nil && reflect.DeepEqual(p, b2)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnknownTriples(t *testing.T) {
	cases := []*Problem{
		New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod("NoSuchMethod"),
		New().SetModel("NoSuchModel").SetOption(OptCallEuro).SetMethod(MethodCFCall),
		New().SetModel(ModelBS1D).SetOption(OptPutEuro).SetMethod(MethodCFCall), // incompatible option
		New().SetModel(ModelHeston).SetOption(OptCallEuro).SetMethod(MethodCFCall),
		func() *Problem { p := sampleProblem(); p.Asset = "commodity"; return p }(),
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%s): Validate accepted an invalid triple", i, p)
		}
		if _, err := p.Compute(); err == nil {
			t.Errorf("case %d (%s): Compute accepted an invalid triple", i, p)
		}
	}
}

func TestComputeMissingParams(t *testing.T) {
	p := New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall)
	if _, err := p.Compute(); err == nil {
		t.Fatal("Compute succeeded without parameters")
	}
	p.Set("S0", 100).Set("sigma", 0.2)
	if _, err := p.Compute(); err == nil {
		t.Fatal("Compute succeeded without strike/maturity")
	}
	p.Set("K", 100).Set("T", 1)
	if _, err := p.Compute(); err != nil {
		t.Fatalf("Compute failed with full parameters: %v", err)
	}
}

func TestComputeRejectsNonPositive(t *testing.T) {
	p := bsProblem(OptCallEuro, MethodCFCall, 100, 1).Set("sigma", -0.2)
	if _, err := p.Compute(); err == nil {
		t.Fatal("negative volatility accepted")
	}
	p = bsProblem(OptCallEuro, MethodCFCall, 100, 1).Set("S0", 0)
	if _, err := p.Compute(); err == nil {
		t.Fatal("zero spot accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sampleProblem()
	q := p.Clone()
	q.Set("S0", 1)
	if p.Params["S0"] == 1 {
		t.Fatal("Clone shares the parameter map")
	}
}

func TestRegistryQueries(t *testing.T) {
	ms := Methods()
	if len(ms) < 10 {
		t.Fatalf("only %d methods registered", len(ms))
	}
	if !MethodSupports(MethodCFCall, ModelBS1D, OptCallEuro) {
		t.Error("CF_Call should support BS/CallEuro")
	}
	if MethodSupports(MethodCFCall, ModelHeston, OptCallEuro) {
		t.Error("CF_Call should not support Heston")
	}
	if MethodSupports("nope", ModelBS1D, OptCallEuro) {
		t.Error("unknown method reported as supported")
	}
	models, options := Compatibles(MethodTreeCRR)
	if len(models) != 1 || models[0] != ModelBS1D {
		t.Errorf("CRR models = %v", models)
	}
	if len(options) != 4 {
		t.Errorf("CRR options = %v", options)
	}
	if m, o := Compatibles("nope"); m != nil || o != nil {
		t.Error("unknown method returned compatibles")
	}
}

func TestFromNspRejectsMalformed(t *testing.T) {
	if _, err := FromNsp(nsp.Scalar(1)); err == nil {
		t.Error("non-hash accepted")
	}
	h := nsp.NewHash()
	h.Set("asset", nsp.Str("equity"))
	if _, err := FromNsp(h); err == nil {
		t.Error("hash missing fields accepted")
	}
	p := sampleProblem()
	good, _ := p.ToNsp()
	good.Set("params", nsp.Scalar(3))
	if _, err := FromNsp(good); err == nil {
		t.Error("non-hash params accepted")
	}
	good2, _ := p.ToNsp()
	ph, _ := good2.Get("params")
	ph.(*nsp.Hash).Set("bad", nsp.Str("not a number"))
	if _, err := FromNsp(good2); err == nil {
		t.Error("non-scalar parameter accepted")
	}
}

func TestProblemString(t *testing.T) {
	p := bsProblem(OptCallEuro, MethodCFCall, 100, 1)
	if got := p.String(); got != "equity/BlackScholes1dim/CallEuro/CF_Call" {
		t.Errorf("String() = %q", got)
	}
}
