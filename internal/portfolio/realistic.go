package portfolio

import (
	"fmt"

	"riskbench/internal/mathutil"
	"riskbench/internal/premia"
)

// Virtual base costs (seconds) per product class of the realistic
// portfolio, calibrated so the total work ≈ 5750 s, matching the paper's
// Table III 2-CPU run (5770 s), while respecting the stated ordering:
// vanillas are effectively instantaneous, European PDE/MC products sit in
// the middle, American products are the most expensive per unit of
// numerical effort.
const (
	costVanilla    = 0.0005
	costBarrierPDE = 0.55
	costBasketMC   = 1.6
	costLocalVolMC = 1.0
	costAmerPDE    = 0.95
	costAmerLSM    = 1.8
	// jitterSigma spreads same-class costs lognormally (PDE grids and MC
	// path counts scale with maturity in practice).
	jitterSigma = 0.25
)

// realisticSeed makes the generated cost jitter reproducible.
const realisticSeed = 7931

// Spot level shared by every claim.
const spot = 100.0

// Realistic generates the paper's §4.3 portfolio of 7931 equity claims.
func Realistic() *Portfolio {
	rng := mathutil.NewRNG(realisticSeed)
	pf := &Portfolio{Name: "realistic"}

	// 1952 plain-vanilla calls: strikes 70%..130% step 1% (61), maturities
	// quarterly from 4 months over 32 quarters (61×32 = 1952).
	for ki := 0; ki < 61; ki++ {
		for ti := 0; ti < 32; ti++ {
			k := spot * (0.70 + 0.01*float64(ki))
			t := 1.0/3 + 0.25*float64(ti)
			p := premia.New().
				SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
				Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).Set("sigma", 0.22).
				Set("K", k).Set("T", t)
			pf.add("vanilla", p, costVanilla*jitter(rng, jitterSigma))
		}
	}

	// 1952 down-and-out barrier calls on the same grid, priced by PDE with
	// one time step every 2 days (the paper's thin-step requirement).
	for ki := 0; ki < 61; ki++ {
		for ti := 0; ti < 32; ti++ {
			k := spot * (0.70 + 0.01*float64(ki))
			t := 1.0/3 + 0.25*float64(ti)
			steps := int(t*182) + 1
			p := premia.New().
				SetModel(premia.ModelBS1D).SetOption(premia.OptCallDownOut).SetMethod(premia.MethodFDCrank).
				Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).Set("sigma", 0.22).
				Set("K", k).Set("T", t).Set("L", 0.75*spot).
				Set("steps", float64(steps)).Set("nodes", 400)
			// PDE cost grows with the number of time steps; normalise by
			// the grid's mean maturity (≈4.2 years) so the class average
			// stays at the base cost.
			scale := float64(steps) / (4.21 * 182)
			pf.add("barrier", p, costBarrierPDE*scale*jitter(rng, jitterSigma))
		}
	}

	// 525 40-dimensional basket puts: strikes 90%..110% (21), maturities
	// 0.2..5 step 0.2 (25), 10⁶ Monte Carlo samples.
	for ki := 0; ki < 21; ki++ {
		for ti := 0; ti < 25; ti++ {
			k := spot * (0.90 + 0.01*float64(ki))
			t := 0.2 + 0.2*float64(ti)
			p := premia.New().
				SetModel(premia.ModelBSND).SetOption(premia.OptPutBasketEuro).SetMethod(premia.MethodMCBasket).
				Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).Set("sigma", 0.22).
				Set("dim", 40).Set("rho", 0.3).
				Set("K", k).Set("T", t).Set("paths", 1e6)
			pf.add("basket", p, costBasketMC*jitter(rng, jitterSigma))
		}
	}

	// 1025 local-volatility calls: strikes 80%..120% (41), maturities
	// 0.2..5 step 0.2 (25), Monte Carlo.
	for ki := 0; ki < 41; ki++ {
		for ti := 0; ti < 25; ti++ {
			k := spot * (0.80 + 0.01*float64(ki))
			t := 0.2 + 0.2*float64(ti)
			p := premia.New().
				SetModel(premia.ModelLocVol).SetOption(premia.OptCallEuro).SetMethod(premia.MethodMCLocalVol).
				Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).
				Set("sigma0", 0.22).Set("skew", -0.15).Set("termslope", 0.02).
				Set("K", k).Set("T", t).Set("paths", 1e6).Set("mcsteps", 100)
			pf.add("locvol", p, costLocalVolMC*jitter(rng, jitterSigma))
		}
	}

	// 1952 American puts by PDE with the vanilla grid's parameters.
	for ki := 0; ki < 61; ki++ {
		for ti := 0; ti < 32; ti++ {
			k := spot * (0.70 + 0.01*float64(ki))
			t := 1.0/3 + 0.25*float64(ti)
			steps := int(t*182) + 1
			p := premia.New().
				SetModel(premia.ModelBS1D).SetOption(premia.OptPutAmer).SetMethod(premia.MethodFDBS).
				Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).Set("sigma", 0.22).
				Set("K", k).Set("T", t).
				Set("steps", float64(steps)).Set("nodes", 400)
			scale := float64(steps) / (4.21 * 182)
			pf.add("amerpde", p, costAmerPDE*scale*jitter(rng, jitterSigma))
		}
	}

	// 525 7-dimensional American basket puts by American Monte Carlo:
	// strikes 90%..110% (21), maturities 0.2..5 step 0.2 (25).
	for ki := 0; ki < 21; ki++ {
		for ti := 0; ti < 25; ti++ {
			k := spot * (0.90 + 0.01*float64(ki))
			t := 0.2 + 0.2*float64(ti)
			p := premia.New().
				SetModel(premia.ModelBSND).SetOption(premia.OptPutBasketAmer).SetMethod(premia.MethodMCAmerLSM).
				Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).Set("sigma", 0.22).
				Set("dim", 7).Set("rho", 0.3).
				Set("K", k).Set("T", t).Set("paths", 1e5).Set("exdates", 50)
			pf.add("amermc", p, costAmerLSM*jitter(rng, jitterSigma*1.5))
		}
	}
	return pf
}

// add appends a claim with an auto-generated name.
func (pf *Portfolio) add(class string, p *premia.Problem, cost float64) {
	pf.Items = append(pf.Items, Item{
		Name:    fmt.Sprintf("%s-%05d", class, len(pf.Items)),
		Problem: p,
		Cost:    cost,
	})
}

// Toy generates the §4.2 portfolio: n plain-vanilla calls priced by
// closed formula (the paper uses n = 10,000). Pricing is near-free; the
// workload isolates the cost of shipping problems around.
func Toy(n int) *Portfolio {
	rng := mathutil.NewRNG(10000)
	pf := &Portfolio{Name: "toy"}
	for i := 0; i < n; i++ {
		k := spot * (0.70 + 0.01*float64(i%61))
		t := 0.25 + 0.25*float64((i/61)%32)
		p := premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
			Set("S0", spot).Set("r", 0.045).Set("divid", 0.01).Set("sigma", 0.22).
			Set("K", k).Set("T", t)
		// ~0.2 ms per pricing: interpreter-and-formula cost of a vanilla.
		pf.add("toy", p, 0.0002*jitter(rng, 0.2))
	}
	return pf
}
