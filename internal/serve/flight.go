package serve

import (
	"sync"

	"riskbench/internal/risk"
)

// flightResult is what a completed flight hands to its waiters.
type flightResult struct {
	outcome risk.PriceOutcome
	err     error
}

// flightCall is one in-flight computation of a content key. The leader
// closes done exactly once, after res is set.
type flightCall struct {
	done chan struct{}
	res  flightResult
}

// flightGroup suppresses duplicate in-flight computations: for each
// content key, the first caller becomes the leader and actually prices;
// concurrent callers of the same key wait for the leader's result. This
// is the "singleflight" contract — N concurrent identical requests
// produce exactly one kernel evaluation — without the cache having to
// hold placeholder entries.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// begin registers interest in key. It returns the call and whether the
// caller is the leader (and therefore responsible for calling finish).
func (g *flightGroup) begin(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result to every waiter and retires the
// key, so later requests start a fresh flight (or hit the cache).
func (g *flightGroup) finish(key string, c *flightCall, res flightResult) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.res = res
	close(c.done)
}
