package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"riskbench/internal/farm"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// Sentinel errors of the serving layer.
var (
	// ErrOverloaded reports that admission control shed the request:
	// either the inflight limit or the batcher queue is full. HTTP
	// callers see it as 429 + Retry-After.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDraining reports that the server is shutting down and admits no
	// new work. HTTP callers see it as 503.
	ErrDraining = errors.New("serve: draining")
)

// Config assembles a Server. The zero value is usable: it prices on a
// default risk.Engine with default batching, caching and admission
// settings.
type Config struct {
	// Engine prices flushed batches via Engine.PriceBatch. Nil means a
	// default engine (4 workers, batch 16, no cache of its own).
	Engine *risk.Engine
	// Price overrides Engine when non-nil — the test seam that lets load
	// tests count kernel evaluations.
	Price PriceFunc
	// MaxBatch is the micro-batcher's flush size (default 16, the same
	// bunching the paper's conclusion recommends for the farm).
	MaxBatch int
	// MaxDelay is how long the first request of a batch may wait for
	// company before the batch flushes anyway (default 2ms).
	MaxDelay time.Duration
	// CacheSize is the result cache's total entry capacity; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// MaxInflight bounds concurrently admitted HTTP requests; beyond it
	// requests get 429 + Retry-After (default 256).
	MaxInflight int
	// MaxQueue bounds the batcher's request queue (default 4×MaxBatch,
	// at least MaxInflight).
	MaxQueue int
	// RequestTimeout caps each request's pricing deadline; the effective
	// deadline is the tighter of this and the client's context
	// (default 30s).
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Telemetry receives the serve.* metrics; it is also what /metrics
	// serves. Nil creates a private registry so /metrics always works.
	Telemetry *telemetry.Registry
	// DisableTracing turns off the per-request distributed traces (the
	// span trees behind /debug/traces) without touching metrics. The
	// tracing overhead benchmark flips it; production setups normally
	// leave tracing on.
	DisableTracing bool
	// SLOs are the objectives the server's burn-rate monitor watches
	// (served at /debug/slo, gauged as slo.<name>.*). Nil installs
	// DefaultSLOs; pass an empty non-nil slice to monitor nothing.
	SLOs []telemetry.Objective
	// DisableEvents turns off the flight recorder's serve-side surface:
	// no serve.* events are emitted and the SLO ticker never starts.
	// The /debug/events, /debug/slo and /debug/farm routes stay mounted
	// (farm and mpi events still flow into the shared registry). The
	// events overhead benchmark flips it.
	DisableEvents bool
}

// DefaultSLOs is the serving layer's out-of-the-box objective set: 99%
// of requests priced under 50ms (measured on the span.serve.request
// histogram, whose buckets carry trace-linked exemplars), and a 99.9%
// infrastructure success rate (serve.request_errors over
// serve.requests). Windows are short — 60s/300s — because this service
// is a benchmark harness: breaches should be demonstrable in a demo,
// not after half an hour of sustained load.
func DefaultSLOs() []telemetry.Objective {
	return []telemetry.Objective{
		{Name: "price_latency", Histogram: "span.serve.request", Threshold: 0.050,
			Target: 0.99, ShortWindow: 60, LongWindow: 300, MaxBurn: 2},
		{Name: "error_rate", ErrorCounter: "serve.request_errors", TotalCounter: "serve.requests",
			Target: 0.999, ShortWindow: 60, LongWindow: 300, MaxBurn: 2},
	}
}

// Server is the pricing service: micro-batcher + content-addressed
// cache + singleflight + admission control over a risk.Engine. Create
// with New, expose with Handler, stop with Drain/Close.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	cache  *Cache // nil when disabled
	flight flightGroup
	batch  *batcher
	engine *risk.Engine // the /risk endpoints' bulk revaluation engine
	fleet  *farm.Fleet  // per-worker health behind /debug/farm
	slo    *telemetry.SLOMonitor
	mux    *http.ServeMux
	cancel context.CancelFunc

	inflight atomic.Int64

	// drainMu orders admission against drain: requests join the reqs
	// WaitGroup under the read lock, Drain flips draining under the
	// write lock, so after Drain acquires the lock no new request can
	// register.
	drainMu  sync.RWMutex
	draining bool
	reqs     sync.WaitGroup
	stopped  sync.Once
}

// New builds and starts a Server (its batcher goroutine runs until
// Drain or Close).
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxBatch
		if cfg.MaxQueue < cfg.MaxInflight {
			cfg.MaxQueue = cfg.MaxInflight
		}
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	s := &Server{cfg: cfg, reg: cfg.Telemetry}
	if cfg.CacheSize >= 0 {
		s.cache = NewCache(cfg.CacheSize, s.reg)
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &risk.Engine{}
	}
	if eng.Telemetry == nil {
		eng.Telemetry = s.reg
	}
	if eng.Cache == nil && s.cache != nil {
		// The /risk revaluations read base-scenario prices through the
		// serving cache (and warm it), so a report over a book the /price
		// path has already touched skips the whole base column.
		eng.Cache = s.cache
	}
	if eng.Fleet == nil {
		// One fleet spans every farm run the server dispatches, so
		// /debug/farm accumulates per-worker health across batches.
		eng.Fleet = farm.NewFleet()
	}
	s.fleet = eng.Fleet
	s.engine = eng
	price := cfg.Price
	if price == nil {
		price = eng.PriceBatch
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.batch = newBatcher(ctx, price, cfg.MaxBatch, cfg.MaxDelay, cfg.MaxQueue, s.reg)
	s.startSLO(ctx)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /price", s.handlePrice)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /risk", s.handleRiskIndex)
	s.mux.HandleFunc("POST /risk/report", s.handleRiskReport)
	s.mux.HandleFunc("POST /risk/watch", s.handleRiskWatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", telemetry.PrometheusHandler(s.reg))
	s.mux.Handle("GET /metrics.json", telemetry.Handler(s.reg))
	s.mux.Handle("GET /debug/traces", telemetry.TraceHandler(s.reg, telemetry.DefaultTraceCount))
	s.mux.Handle("GET /debug/events", telemetry.EventsHandler(s.reg))
	s.mux.Handle("GET /debug/slo", telemetry.SLOHandler(s.slo))
	s.mux.HandleFunc("GET /debug/farm", s.handleFarm)
	return s
}

// startSLO builds the burn-rate monitor from the configured (or
// default) objectives and starts its ticker goroutine, bound to the
// server's lifecycle context.
func (s *Server) startSLO(ctx context.Context) {
	if s.cfg.DisableEvents {
		return
	}
	objs := s.cfg.SLOs
	if objs == nil {
		objs = DefaultSLOs()
	}
	if len(objs) == 0 {
		return
	}
	mon, err := telemetry.NewSLOMonitor(s.reg, objs...)
	if err != nil {
		// A misdeclared objective is an operator error, not a reason to
		// refuse to serve prices: record it and run unmonitored.
		s.reg.Emit(telemetry.LevelError, "serve.slo.invalid", telemetry.TraceContext{},
			telemetry.Str("err", err.Error()))
		return
	}
	s.slo = mon
	go s.sloLoop(ctx)
}

// sloLoop drives the burn-rate monitor at a 1s cadence until the server
// stops. The ticker only paces evaluation; the samples themselves are
// stamped from the registry clock, which is why tests drive Tick
// directly under SetClock instead of racing this goroutine.
func (s *Server) sloLoop(ctx context.Context) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.slo.Tick()
		}
	}
}

// emit records one serve-side flight-recorder event unless the
// config disabled them.
func (s *Server) emit(level telemetry.Level, name string, tc telemetry.TraceContext, fields ...telemetry.Field) {
	if s.cfg.DisableEvents {
		return
	}
	s.reg.Emit(level, name, tc, fields...)
}

// handleFarm serves per-worker fleet health — the /debug/farm endpoint.
func (s *Server) handleFarm(w http.ResponseWriter, r *http.Request) {
	workers := s.fleet.Snapshot()
	if workers == nil {
		workers = []farm.WorkerHealth{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Workers []farm.WorkerHealth `json:"workers"`
	}{workers})
}

// Handler returns the server's HTTP surface: POST /price, POST /batch,
// GET /healthz, GET /metrics (Prometheus text format), GET /metrics.json
// (the JSON snapshot), GET /debug/traces (slowest reassembled request
// traces), GET /debug/events (the structured event log as NDJSON),
// GET /debug/slo (burn-rate monitor status) and GET /debug/farm
// (per-worker fleet health).
func (s *Server) Handler() http.Handler { return s.mux }

// PriceProblem prices one problem through the full serving path —
// cache, singleflight, micro-batcher, farm — waiting for queue space
// rather than shedding load. Infrastructure failures (drain, deadline)
// come back as the error; per-problem validation and pricing failures
// ride in the outcome's Err field.
func (s *Server) PriceProblem(ctx context.Context, p *premia.Problem) (risk.PriceOutcome, error) {
	return s.priceProblem(ctx, p, true)
}

// priceProblem implements PriceProblem. wait selects the queue-full
// behaviour: block (in-process callers, /batch fan-out — backpressure)
// or fail with ErrOverloaded (the /price endpoint — load shedding).
func (s *Server) priceProblem(ctx context.Context, p *premia.Problem, wait bool) (risk.PriceOutcome, error) {
	if err := p.Validate(); err != nil {
		return risk.PriceOutcome{Err: err}, nil
	}
	key := p.ContentKey()
	if s.cache != nil {
		if res, ok := s.cache.Get(key); ok {
			return risk.PriceOutcome{Result: res, Cached: true}, nil
		}
	}
	call, leader := s.flight.begin(key)
	if leader && s.cache != nil {
		// Double-check after winning leadership: the previous leader may
		// have settled (and cached) between our miss and our begin, and
		// pricing again would break the one-evaluation-per-key contract.
		if res, ok := s.cache.Get(key); ok {
			out := risk.PriceOutcome{Result: res, Cached: true}
			s.flight.finish(key, call, flightResult{outcome: out})
			return out, nil
		}
	}
	if !leader {
		s.reg.Counter("serve.singleflight.shared").Add(1)
		select {
		case <-call.done:
			return call.res.outcome, call.res.err
		case <-ctx.Done():
			return risk.PriceOutcome{}, ctx.Err()
		}
	}
	req := newPriceRequest(p)
	if !s.cfg.DisableTracing {
		// Each flight leader roots one distributed trace; the batcher ends
		// the queue span at flush and prices the whole batch under the
		// first request's trace, so /debug/traces shows queue wait, batch
		// delay, dispatch and worker compute per request.
		req.span = s.reg.StartTrace("serve.request")
		req.queue = req.span.StartChild("serve.queue")
	}
	if wait {
		if err := s.batch.submitWait(ctx, req); err != nil {
			req.queue.End()
			req.span.End()
			req.release() // never enqueued: no response will arrive
			s.flight.finish(key, call, flightResult{err: err})
			return risk.PriceOutcome{}, err
		}
	} else if !s.batch.submit(req) {
		req.queue.End()
		req.span.End()
		req.release() // never enqueued: no response will arrive
		s.reg.Counter("serve.rejected.queue").Add(1)
		s.emit(telemetry.LevelWarn, "serve.reject.queue", req.span.Context(),
			telemetry.Num("queue_cap", float64(s.cfg.MaxQueue)))
		s.flight.finish(key, call, flightResult{err: ErrOverloaded})
		return risk.PriceOutcome{}, ErrOverloaded
	}
	select {
	case resp := <-req.done:
		req.release()
		return s.settle(key, call, resp)
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.emit(telemetry.LevelWarn, "serve.request.deadline", req.span.Context(),
				telemetry.Num("timeout_seconds", s.cfg.RequestTimeout.Seconds()))
		}
		// The leader's deadline expired but the batch is still pricing.
		// Hand completion to a goroutine so waiters unblock and the
		// result still lands in the cache — the work is not wasted.
		go func() {
			resp := <-req.done
			req.release()
			s.settle(key, call, resp)
		}()
		return risk.PriceOutcome{}, ctx.Err()
	}
}

// settle publishes a batch response to the cache and the flight group.
func (s *Server) settle(key string, call *flightCall, resp priceResponse) (risk.PriceOutcome, error) {
	if resp.err == nil && resp.outcome.Err == nil && s.cache != nil {
		s.cache.Put(key, resp.outcome.Result)
	}
	s.flight.finish(key, call, flightResult{outcome: resp.outcome, err: resp.err})
	return resp.outcome, resp.err
}

// admit registers one request against the inflight limit; release must
// be called iff it returns nil.
func (s *Server) admit() error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	if n := s.inflight.Add(1); n > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.reg.Counter("serve.rejected.inflight").Add(1)
		s.emit(telemetry.LevelWarn, "serve.reject.inflight", telemetry.TraceContext{},
			telemetry.Num("inflight", float64(n)),
			telemetry.Num("limit", float64(s.cfg.MaxInflight)))
		return ErrOverloaded
	}
	s.reqs.Add(1)
	s.reg.Gauge("serve.inflight").Set(float64(s.inflight.Load()))
	return nil
}

func (s *Server) release() {
	s.reg.Gauge("serve.inflight").Set(float64(s.inflight.Add(-1)))
	s.reqs.Done()
}

// Drain gracefully shuts the server down: stop admitting, let every
// admitted request (and the farm batches under it) finish, then stop
// the batcher. It returns ctx's error if the wait is cut short, leaving
// the batcher running so in-flight responses are still delivered.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		s.emit(telemetry.LevelInfo, "serve.drain.begin", telemetry.TraceContext{},
			telemetry.Num("inflight", float64(s.inflight.Load())))
	}
	drainStart := s.reg.Now()
	done := make(chan struct{})
	go func() {
		s.reqs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if !already {
		s.emit(telemetry.LevelInfo, "serve.drain.end", telemetry.TraceContext{},
			telemetry.Num("waited_seconds", s.reg.Now()-drainStart))
	}
	s.stopped.Do(func() {
		s.batch.close()
		s.cancel()
	})
	return nil
}

// Close force-stops the server: cancel in-flight farm batches, then
// drain. Requests caught mid-batch complete with a cancellation error
// rather than being dropped silently.
func (s *Server) Close() error {
	s.cancel()
	return s.Drain(context.Background())
}

// problemJSON is the wire form of a pricing problem.
type problemJSON struct {
	Asset  string             `json:"asset,omitempty"`
	Model  string             `json:"model"`
	Option string             `json:"option"`
	Method string             `json:"method"`
	Params map[string]float64 `json:"params,omitempty"`
	// Seed, when set, installs a full-width 64-bit Monte Carlo seed via
	// Problem.SetSeed (the split "seed"/"seedhi" halves).
	Seed *uint64 `json:"seed,omitempty"`
}

func (j problemJSON) toProblem() *premia.Problem {
	p := premia.New()
	if j.Asset != "" {
		p.SetAsset(j.Asset)
	}
	p.SetModel(j.Model).SetOption(j.Option).SetMethod(j.Method)
	for k, v := range j.Params {
		p.Set(k, v)
	}
	if j.Seed != nil {
		p.SetSeed(*j.Seed)
	}
	return p
}

// resultJSON is the wire form of one pricing outcome.
type resultJSON struct {
	Price    float64 `json:"price"`
	PriceCI  float64 `json:"price_ci,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	HasDelta bool    `json:"has_delta,omitempty"`
	Work     float64 `json:"work,omitempty"`
	Cached   bool    `json:"cached"`
	Error    string  `json:"error,omitempty"`
}

func toResultJSON(o risk.PriceOutcome) resultJSON {
	if o.Err != nil {
		return resultJSON{Error: o.Err.Error()}
	}
	r := o.Result
	return resultJSON{Price: r.Price, PriceCI: r.PriceCI, Delta: r.Delta, HasDelta: r.HasDelta, Work: r.Work, Cached: o.Cached}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps serving errors onto HTTP statuses. Every error it
// writes is an infrastructure failure (shed, drain, deadline, internal),
// so it also feeds the error-rate SLO's bad-request counter — client
// mistakes (400s) go through writeJSON directly and do not burn budget.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.reg.Counter("serve.request_errors").Add(1)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// requestContext derives the pricing deadline: the client context
// capped by the configured per-request timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	if err := s.admit(); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()
	s.reg.Counter("serve.requests").Add(1)
	start := s.reg.Now()
	defer func() { s.reg.Observe("serve.request_seconds", s.reg.Now()-start) }()
	var pj problemJSON
	if err := json.NewDecoder(r.Body).Decode(&pj); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	out, err := s.priceProblem(ctx, pj.toProblem(), false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if out.Err != nil {
		writeJSON(w, http.StatusBadRequest, toResultJSON(out))
		return
	}
	writeJSON(w, http.StatusOK, toResultJSON(out))
}

// maxBatchRequest bounds how many problems one /batch request may
// carry; bigger books should page or use the engine library directly.
const maxBatchRequest = 65536

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if err := s.admit(); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()
	s.reg.Counter("serve.requests").Add(1)
	start := s.reg.Now()
	defer func() { s.reg.Observe("serve.request_seconds", s.reg.Now()-start) }()
	var body struct {
		Problems []problemJSON `json:"problems"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(body.Problems) == 0 || len(body.Problems) > maxBatchRequest {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("want 1..%d problems, got %d", maxBatchRequest, len(body.Problems))})
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// Fan every problem through the single-problem path concurrently:
	// distinct problems fill micro-batches, duplicates coalesce in the
	// flight group, warm ones hit the cache.
	results := make([]resultJSON, len(body.Problems))
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for i, pj := range body.Problems {
		wg.Add(1)
		go func(i int, pj problemJSON) {
			defer wg.Done()
			out, err := s.PriceProblem(ctx, pj.toProblem())
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			results[i] = toResultJSON(out)
		}(i, pj)
	}
	wg.Wait()
	if firstErr != nil {
		s.writeError(w, firstErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
