package mathutil

import "errors"

// ErrSingular is returned by the linear solvers when a pivot vanishes.
var ErrSingular = errors.New("mathutil: singular system")

// SolveTridiag solves the tridiagonal system with sub-diagonal a[1..n-1],
// diagonal b[0..n-1], super-diagonal c[0..n-2] and right-hand side d,
// writing the solution into x (which may alias d). a[0] and c[n-1] are
// ignored. scratch must have length >= n; it is overwritten.
//
// This is the Thomas algorithm, O(n), stable for the diagonally dominant
// systems produced by the Crank–Nicolson pricers.
func SolveTridiag(a, b, c, d, x, scratch []float64) error {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n || len(x) < n || len(scratch) < n {
		panic("mathutil: SolveTridiag length mismatch")
	}
	if n == 0 {
		return nil
	}
	cp := scratch
	beta := b[0]
	if beta == 0 {
		return ErrSingular
	}
	x[0] = d[0] / beta
	for i := 1; i < n; i++ {
		cp[i] = c[i-1] / beta
		beta = b[i] - a[i]*cp[i]
		if beta == 0 {
			return ErrSingular
		}
		x[i] = (d[i] - a[i]*x[i-1]) / beta
	}
	for i := n - 2; i >= 0; i-- {
		x[i] -= cp[i+1] * x[i+1]
	}
	return nil
}

// SolveTridiagBS solves the same tridiagonal system as SolveTridiag but
// applies the Brennan–Schwartz projection against the obstacle psi during
// the backward substitution: the result satisfies x[i] >= psi[i] for all i.
// This is the standard direct method for American option PDEs when the
// exercise region is connected (true for vanilla puts). The sweep runs
// upward so that the projection propagates from the deep-in-the-money end
// (low asset prices for a put).
func SolveTridiagBS(a, b, c, d, psi, x, scratch []float64) error {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n || len(psi) != n || len(x) < n || len(scratch) < n {
		panic("mathutil: SolveTridiagBS length mismatch")
	}
	if n == 0 {
		return nil
	}
	// Eliminate the super-diagonal from the top (i = n-1 downward) so the
	// back substitution proceeds from i = 0 upward, where the put obstacle
	// binds first.
	bp := scratch
	dp := x // reuse x as the transformed rhs
	bp[n-1] = b[n-1]
	dp[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		if bp[i+1] == 0 {
			return ErrSingular
		}
		m := c[i] / bp[i+1]
		bp[i] = b[i] - m*a[i+1]
		dp[i] = d[i] - m*dp[i+1]
	}
	if bp[0] == 0 {
		return ErrSingular
	}
	x[0] = dp[0] / bp[0]
	if x[0] < psi[0] {
		x[0] = psi[0]
	}
	for i := 1; i < n; i++ {
		if bp[i] == 0 {
			return ErrSingular
		}
		x[i] = (dp[i] - a[i]*x[i-1]) / bp[i]
		if x[i] < psi[i] {
			x[i] = psi[i]
		}
	}
	return nil
}

// PSOR solves the linear complementarity problem
//
//	M x >= d,  x >= psi,  (Mx - d)'(x - psi) = 0
//
// for the tridiagonal matrix M = tridiag(a, b, c) using projected SOR with
// relaxation factor omega, starting from the initial guess already in x.
// It returns the number of iterations performed, or an error if tol is not
// reached within maxIter sweeps.
func PSOR(a, b, c, d, psi, x []float64, omega, tol float64, maxIter int) (int, error) {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n || len(psi) != n || len(x) != n {
		panic("mathutil: PSOR length mismatch")
	}
	for iter := 1; iter <= maxIter; iter++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			sum := d[i]
			if i > 0 {
				sum -= a[i] * x[i-1]
			}
			if i < n-1 {
				sum -= c[i] * x[i+1]
			}
			if b[i] == 0 {
				return iter, ErrSingular
			}
			gs := sum / b[i]
			xn := x[i] + omega*(gs-x[i])
			if xn < psi[i] {
				xn = psi[i]
			}
			delta := xn - x[i]
			if delta < 0 {
				delta = -delta
			}
			if delta > maxDelta {
				maxDelta = delta
			}
			x[i] = xn
		}
		if maxDelta < tol {
			return iter, nil
		}
	}
	return maxIter, errors.New("mathutil: PSOR did not converge")
}
