package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sync"
)

// SLO burn-rate monitoring, SRE style. An Objective declares a target
// good-fraction for a signal (a latency histogram against a threshold,
// or an error counter against a total counter). The monitor samples the
// cumulative good/total counts on every Tick and evaluates the *burn
// rate* over two trailing windows:
//
//	burn(W) = badFraction(W) / (1 - Target)
//
// burn = 1 means the error budget is being spent exactly at the
// sustainable rate; burn = 2 spends a 30-day budget in 15 days. A
// breach requires BOTH windows to exceed MaxBurn: the short window
// proves the problem is current, the long window proves it is not a
// blip. Time comes from the registry clock, so the whole engine runs
// under SetClock in tests — advance the virtual clock, call Tick, and
// breaches are deterministic.
//
// Windows shorter than the monitor's history are clipped to the oldest
// retained sample, so a cold monitor converges onto its windows instead
// of staying blind for LongWindow seconds after boot.

// Objective declares one service-level objective. Exactly one of
// Histogram or ErrorCounter/TotalCounter must be set.
type Objective struct {
	// Name is one lowercase identifier segment ("price_latency"); it
	// becomes the middle segment of the slo.<name>.* gauges.
	Name string
	// Histogram + Threshold declare a latency objective: a request is
	// good when its observed value is ≤ Threshold seconds.
	Histogram string
	Threshold float64
	// ErrorCounter / TotalCounter declare an error-rate objective: good
	// = total - errors.
	ErrorCounter string
	TotalCounter string
	// Target is the objective's good fraction, in (0, 1): 0.999 allows
	// one bad request per thousand.
	Target float64
	// ShortWindow and LongWindow are the burn-rate windows in seconds
	// (default 60 and 1800).
	ShortWindow float64
	LongWindow  float64
	// MaxBurn is the burn rate both windows must exceed to breach
	// (default 2).
	MaxBurn float64
}

var sloNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func (o *Objective) fillDefaults() {
	if o.ShortWindow == 0 {
		o.ShortWindow = 60
	}
	if o.LongWindow == 0 {
		o.LongWindow = 1800
	}
	if o.MaxBurn == 0 {
		o.MaxBurn = 2
	}
}

func (o Objective) validate() error {
	if !sloNameRE.MatchString(o.Name) {
		return fmt.Errorf("slo: objective name %q is not a lowercase identifier segment", o.Name)
	}
	latency := o.Histogram != ""
	errs := o.ErrorCounter != "" || o.TotalCounter != ""
	switch {
	case latency && errs:
		return fmt.Errorf("slo %s: set Histogram or ErrorCounter/TotalCounter, not both", o.Name)
	case latency && o.Threshold <= 0:
		return fmt.Errorf("slo %s: latency objective needs Threshold > 0", o.Name)
	case !latency && (o.ErrorCounter == "" || o.TotalCounter == ""):
		return fmt.Errorf("slo %s: error objective needs both ErrorCounter and TotalCounter", o.Name)
	}
	if !(o.Target > 0 && o.Target < 1) {
		return fmt.Errorf("slo %s: Target must be in (0, 1), got %v", o.Name, o.Target)
	}
	if o.ShortWindow <= 0 || o.LongWindow <= 0 || o.ShortWindow > o.LongWindow {
		return fmt.Errorf("slo %s: want 0 < ShortWindow ≤ LongWindow, got %v/%v", o.Name, o.ShortWindow, o.LongWindow)
	}
	if o.MaxBurn <= 0 {
		return fmt.Errorf("slo %s: MaxBurn must be > 0, got %v", o.Name, o.MaxBurn)
	}
	return nil
}

// kind returns "latency" or "errors".
func (o Objective) kind() string {
	if o.Histogram != "" {
		return "latency"
	}
	return "errors"
}

// sloSample is one Tick's cumulative reading.
type sloSample struct {
	when  float64
	good  int64
	total int64
}

// sloRingCap bounds retained samples per objective; at a 1s tick cadence
// it covers windows up to ~68 minutes, and sparser ticks extend that
// proportionally.
const sloRingCap = 4096

// sloState is one objective's monitor state.
type sloState struct {
	obj        Objective
	ring       [sloRingCap]sloSample
	n          int // samples stored (≤ sloRingCap)
	next       int // ring write position
	breached   bool
	breachedAt float64

	burnShortG *Gauge
	burnLongG  *Gauge
	breachedG  *Gauge
}

// latest returns the newest stored sample.
func (s *sloState) latest() sloSample {
	return s.ring[(s.next+sloRingCap-1)%sloRingCap]
}

// baseline returns the newest sample at least window seconds older than
// now, or the oldest retained sample when history is shorter than the
// window (clipped-window startup behavior).
func (s *sloState) baseline(now, window float64) sloSample {
	oldestIdx := (s.next + sloRingCap - s.n) % sloRingCap
	base := s.ring[oldestIdx]
	for i := 1; i < s.n; i++ {
		smp := s.ring[(oldestIdx+i)%sloRingCap]
		if now-smp.when < window {
			break
		}
		base = smp
	}
	return base
}

// burn computes the burn rate between base and cur.
func (s *sloState) burn(base, cur sloSample) float64 {
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := dTotal - (cur.good - base.good)
	if dBad <= 0 {
		return 0
	}
	badFrac := float64(dBad) / float64(dTotal)
	return badFrac / (1 - s.obj.Target)
}

// SLOWindow reports one burn window in a status snapshot.
type SLOWindow struct {
	Seconds float64 `json:"seconds"`
	Burn    float64 `json:"burn"`
}

// SLOStatus is one objective's state in the /debug/slo payload.
type SLOStatus struct {
	Name         string    `json:"name"`
	Kind         string    `json:"kind"`
	Target       float64   `json:"target"`
	Threshold    float64   `json:"threshold_seconds,omitempty"`
	MaxBurn      float64   `json:"max_burn"`
	Short        SLOWindow `json:"short"`
	Long         SLOWindow `json:"long"`
	GoodTotal    int64     `json:"good_total"`
	SampleTotal  int64     `json:"sample_total"`
	Breached     bool      `json:"breached"`
	BreachedAt   float64   `json:"breached_at,omitempty"`
	WorstExample string    `json:"worst_exemplar_trace,omitempty"`
}

// SLOMonitor evaluates a set of objectives against one registry. Create
// with NewSLOMonitor, drive with Tick (a ticker goroutine in servers,
// direct calls under a virtual clock in tests), read with Status or the
// /debug/slo handler. Burn rates surface as gauges
// (slo.<name>.burn_short, slo.<name>.burn_long, slo.<name>.breached)
// and breach transitions emit slo.breach.begin / slo.breach.end events
// carrying the worst above-threshold exemplar's trace ID.
type SLOMonitor struct {
	reg  *Registry
	mu   sync.Mutex
	objs []*sloState
}

// NewSLOMonitor builds a monitor for the given objectives, validating
// and defaulting each.
func NewSLOMonitor(reg *Registry, objs ...Objective) (*SLOMonitor, error) {
	if reg == nil {
		return nil, fmt.Errorf("slo: nil registry")
	}
	m := &SLOMonitor{reg: reg}
	seen := map[string]bool{}
	for _, o := range objs {
		o.fillDefaults()
		if err := o.validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		m.objs = append(m.objs, &sloState{
			obj:        o,
			burnShortG: reg.Gauge(fmt.Sprintf("slo.%s.burn_short", o.Name)),
			burnLongG:  reg.Gauge(fmt.Sprintf("slo.%s.burn_long", o.Name)),
			breachedG:  reg.Gauge(fmt.Sprintf("slo.%s.breached", o.Name)),
		})
	}
	return m, nil
}

// measure reads the objective's cumulative good/total counts.
func (m *SLOMonitor) measure(o Objective) (good, total int64) {
	if o.Histogram != "" {
		h := m.reg.Histogram(o.Histogram)
		return h.CountAtOrBelow(o.Threshold), h.Count()
	}
	total = m.reg.Counter(o.TotalCounter).Value()
	bad := m.reg.Counter(o.ErrorCounter).Value()
	return total - bad, total
}

// Tick samples every objective at the current registry clock, updates
// the burn gauges, and emits breach-transition events.
func (m *SLOMonitor) Tick() {
	now := m.reg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.objs {
		good, total := m.measure(s.obj)
		s.ring[s.next] = sloSample{when: now, good: good, total: total}
		s.next = (s.next + 1) % sloRingCap
		if s.n < sloRingCap {
			s.n++
		}
		cur := s.latest()
		burnShort := s.burn(s.baseline(now, s.obj.ShortWindow), cur)
		burnLong := s.burn(s.baseline(now, s.obj.LongWindow), cur)
		s.burnShortG.Set(burnShort)
		s.burnLongG.Set(burnLong)

		breached := burnShort >= s.obj.MaxBurn && burnLong >= s.obj.MaxBurn
		if breached != s.breached {
			s.breached = breached
			if breached {
				s.breachedAt = now
				s.breachedG.Set(1)
				tc := TraceContext{}
				if ex, ok := m.worstExemplar(s.obj); ok {
					tc.TraceID = ex.TraceID
				}
				m.reg.Emit(LevelError, "slo.breach.begin", tc,
					Str("objective", s.obj.Name),
					Num("burn_short", burnShort),
					Num("burn_long", burnLong))
			} else {
				s.breachedG.Set(0)
				m.reg.Emit(LevelInfo, "slo.breach.end", TraceContext{},
					Str("objective", s.obj.Name),
					Num("breached_for", now-s.breachedAt))
			}
		}
	}
}

// worstExemplar finds the trace of the worst retained above-threshold
// observation for a latency objective (error objectives carry none).
func (m *SLOMonitor) worstExemplar(o Objective) (Exemplar, bool) {
	if o.Histogram == "" {
		return Exemplar{}, false
	}
	return m.reg.Histogram(o.Histogram).WorstExemplarAbove(o.Threshold)
}

// Status snapshots every objective, in declaration order. A nil
// monitor (SLOs disabled) reports no objectives.
func (m *SLOMonitor) Status() []SLOStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SLOStatus, 0, len(m.objs))
	for _, s := range m.objs {
		st := SLOStatus{
			Name:    s.obj.Name,
			Kind:    s.obj.kind(),
			Target:  s.obj.Target,
			MaxBurn: s.obj.MaxBurn,
			Short:   SLOWindow{Seconds: s.obj.ShortWindow, Burn: s.burnShortG.Value()},
			Long:    SLOWindow{Seconds: s.obj.LongWindow, Burn: s.burnLongG.Value()},
		}
		if s.obj.kind() == "latency" {
			st.Threshold = s.obj.Threshold
		}
		if s.n > 0 {
			cur := s.latest()
			st.GoodTotal, st.SampleTotal = cur.good, cur.total
		}
		st.Breached = s.breached
		if s.breached {
			st.BreachedAt = s.breachedAt
		}
		if ex, ok := m.worstExemplar(s.obj); ok {
			st.WorstExample = fmt.Sprintf("%016x", ex.TraceID)
		}
		out = append(out, st)
	}
	return out
}

// SLOHandler serves the monitor's status as indented JSON — the
// /debug/slo endpoint. A nil monitor serves an empty objective list,
// so the route stays probeable when SLO monitoring is disabled.
func SLOHandler(m *SLOMonitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		sts := m.Status()
		if sts == nil {
			sts = []SLOStatus{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Objectives []SLOStatus `json:"objectives"`
		}{sts})
	})
}
