// Command farmworker runs a live distributed farm, one process per rank
// — the deployment shape of the paper's cluster runs, with the hub
// replacing mpirun.
//
// Start the master (it waits for size-1 workers, then farms the chosen
// portfolio):
//
//	farmworker -listen :7777 -size 5 -portfolio toy -n 2000
//
// Start each worker (possibly on other machines):
//
//	farmworker -connect master:7777
//
// -transport selects the wire (tcp by default; unix for same-host
// worker pools, e.g. -transport unix -listen /tmp/farm.sock). Every
// connection runs the versioned handshake, so a fleet mixing old and
// new farmworker binaries negotiates each link down to the common
// protocol subset — rolling upgrades never stop the farm. -proto pins
// an older wire protocol for staging such upgrades.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", "", "master mode: address to listen on")
		size      = flag.Int("size", 2, "master mode: world size (master + workers)")
		connect   = flag.String("connect", "", "worker mode: master address to dial")
		pfName    = flag.String("portfolio", "toy", "master mode: toy | regression")
		n         = flag.Int("n", 1000, "master mode: toy portfolio size")
		stratName = flag.String("strategy", "serialized", "full | serialized (NFS needs a real shared mount)")
		batch     = flag.Int("batch", 1, "tasks per message batch")
		transport = flag.String("transport", "tcp", "mpi transport the world runs on (tcp | unix | inproc)")
		proto     = flag.Int("proto", 0, "pin the wire-protocol version (0 = latest) for staged rolling upgrades")
		telAddr   = flag.String("telemetry", "", "serve metrics (Prometheus /metrics, JSON /metrics.json) and /debug/traces on this address (e.g. :9090)")
	)
	flag.Parse()
	if _, err := mpi.LookupTransport(*transport); err != nil {
		fmt.Fprintf(os.Stderr, "farmworker: %v\n", err)
		os.Exit(2)
	}
	wopts := mpi.WorldOptions{Transport: *transport, Proto: *proto}

	// SIGINT and SIGTERM (what orchestrators send first) both trigger the
	// cooperative drain: masters stop dispatching and workers finish the
	// batch in hand before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *telemetry.Registry
	if *telAddr != "" {
		reg = telemetry.Default
		premia.SetTelemetry(reg)
		mpi.SetTelemetry(reg)
		go func() {
			if err := http.ListenAndServe(*telAddr, telemetry.Mux(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "farmworker: telemetry server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/ (/metrics, /metrics.json, /debug/traces)\n", *telAddr)
	}

	switch {
	case *connect != "":
		runWorker(*connect, wopts, reg)
	case *listen != "":
		runMaster(ctx, *listen, *size, *pfName, *n, *stratName, *batch, wopts, reg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "farmworker: "+format+"\n", args...)
	os.Exit(1)
}

func runWorker(addr string, wopts mpi.WorldOptions, reg *telemetry.Registry) {
	// Workers always carry a registry, even without -telemetry: a traced
	// batch from the master needs worker-side spans to exist before they
	// can ship back for reassembly.
	if reg == nil {
		reg = telemetry.New()
	}
	c, err := mpi.DialHubWith(addr, wopts)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	fmt.Printf("joined world of %d as rank %d\n", c.Size(), c.Rank())
	// The strategy only matters to the master protocol-wise; workers infer
	// payload presence from it, so it travels out of band: the worker uses
	// the same default as the master unless overridden by the descriptor
	// exchange. Full and serialized load share the worker code path.
	if err := farm.RunWorker(c, farm.LiveExecutor{}, farm.FileStore{}, farm.Options{Strategy: farm.SerializedLoad, Telemetry: reg}); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("worker done")
}

func runMaster(ctx context.Context, addr string, size int, pfName string, n int, stratName string, batch int, wopts mpi.WorldOptions, reg *telemetry.Registry) {
	var strat farm.Strategy
	switch stratName {
	case "full":
		strat = farm.FullLoad
	case "serialized":
		strat = farm.SerializedLoad
	default:
		fatalf("unsupported strategy %q for hub mode", stratName)
	}
	var pf *portfolio.Portfolio
	switch pfName {
	case "toy":
		pf = portfolio.Toy(n)
	case "regression":
		pf = portfolio.Regression()
	default:
		fatalf("unknown portfolio %q", pfName)
	}
	tasks, err := pf.Tasks()
	if err != nil {
		fatalf("%v", err)
	}
	hub, err := mpi.ListenHubWith(addr, size, wopts)
	if err != nil {
		fatalf("%v", err)
	}
	defer hub.Close()
	fmt.Printf("listening on %s for %d workers...\n", hub.Addr(), size-1)
	if err := hub.WaitWorkers(); err != nil {
		fatalf("%v", err)
	}
	root := reg.StartTrace("bench.run")
	start := time.Now()
	results, err := farm.RunMaster(telemetry.ContextWithTrace(ctx, root.Context()), hub, tasks, farm.LiveLoader{}, farm.Options{Strategy: strat, BatchSize: batch, Telemetry: reg})
	if err != nil {
		fatalf("master: %v", err)
	}
	root.End()
	sum := 0.0
	for _, r := range results {
		price, _ := farm.ResultField(r, "price")
		sum += price
	}
	fmt.Printf("priced %d claims in %v over %d %s workers; aggregate value %.4f\n",
		len(results), time.Since(start).Round(time.Millisecond), size-1, wopts.Transport, sum)
}
