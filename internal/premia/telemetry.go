package premia

import (
	"sync/atomic"

	"riskbench/internal/telemetry"
)

// sink is the package-level telemetry registry. Compute takes no registry
// parameter (it mirrors Premia's P.compute[]), so instrumentation is wired
// through this process-wide sink instead; nil (the default) disables it.
var sink atomic.Pointer[telemetry.Registry]

// SetTelemetry installs the registry receiving per-method compute timings
// and throughput. Pass nil to disable. Typically wired through the
// riskbench façade's SetTelemetry.
func SetTelemetry(r *telemetry.Registry) {
	sink.Store(r)
}

// countError increments the pricing-error counter (no-op without a sink).
func countError() {
	sink.Load().Counter("premia.errors").Add(1)
}

// instrument runs fn under the sink's per-method metrics:
// "premia.compute_seconds.<method>" latency histogram, "premia.computes"
// counter, and "premia.work_units.<method>" cumulative work gauge (the
// method's abstract operation count, the simulator's cost currency).
func instrument(method string, fn func(*Problem) (Result, error), p *Problem) (Result, error) {
	reg := sink.Load()
	if reg == nil {
		return fn(p)
	}
	start := reg.Now()
	res, err := fn(p)
	reg.Observe("premia.compute_seconds."+method, reg.Now()-start)
	reg.Counter("premia.computes").Add(1)
	if err == nil {
		reg.Gauge("premia.work_units." + method).Add(res.Work)
	}
	return res, err
}
