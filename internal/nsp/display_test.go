package nsp

import (
	"strings"
	"testing"
)

func TestDisplayPaperListing(t *testing.T) {
	// The paper's Fig.: A=list('string',%t,rand(4,4)); the display opens
	// with "B = l (3)" and shows the three element headers.
	mat := NewMat(4, 4)
	for i := range mat.Data {
		mat.Data[i] = float64(i) / 16
	}
	l := NewList(Str("string"), Bool(true), mat)
	out := Display("B", l)
	for _, want := range []string{
		"B = l (3)",
		"(1) = s (1x1)",
		"string",
		"(2) = b (1x1)",
		"| T |",
		"(3) = r (4x4)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("display missing %q:\n%s", want, out)
		}
	}
}

func TestDisplayHash(t *testing.T) {
	h := NewHash()
	h.Set("A", RowVec(1, 2))
	h.Set("B", Str("x"))
	out := Display("H", h)
	for _, want := range []string{"H = h (2)", "A = r (1x2)", "B = s (1x1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDisplayIMatBMat(t *testing.T) {
	m := NewIMat(1, 3)
	m.Data = []int64{1, -2, 3}
	out := Display("M", m)
	if !strings.Contains(out, "M = i (1x3)") || !strings.Contains(out, "| 1 -2 3 |") {
		t.Errorf("int display wrong:\n%s", out)
	}
	bm := NewBMat(1, 2)
	bm.Data[1] = true
	if out := Display("F", bm); !strings.Contains(out, "| F T |") {
		t.Errorf("bool display wrong:\n%s", out)
	}
}

func TestDisplayCellsAndSerial(t *testing.T) {
	c := NewCells(1, 2)
	c.Set(0, 0, Scalar(5))
	out := Display("C", c)
	for _, want := range []string{"C = ce (1x2)", "(1,1) = r (1x1)", "(1,2) = {}"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	s, err := Serialize(Scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	if out := Display("S", s); !strings.Contains(out, "serial") {
		t.Errorf("serial display wrong:\n%s", out)
	}
}

func TestDisplayNil(t *testing.T) {
	if out := Display("X", nil); !strings.Contains(out, "<nil>") {
		t.Errorf("nil display wrong: %q", out)
	}
}
