// Cluster simulation: reproduce selected rows of the paper's Table III —
// the 7931-claim realistic portfolio on a simulated 2–512-CPU cluster —
// in a few seconds of wall time, plus the hierarchical sub-master variant
// the paper's conclusion proposes.
package main

import (
	"context"
	"fmt"
	"log"

	"riskbench/internal/bench"
	"riskbench/internal/farm"
	"riskbench/internal/portfolio"
)

func main() {
	pf := portfolio.Realistic()
	tasks, err := pf.Tasks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realistic portfolio: %d claims, %.0f s total work, %.1f s max claim\n\n",
		pf.Size(), pf.TotalCost(), pf.MaxCost())

	fmt.Println("Table III rows (serialized load):")
	fmt.Printf("%8s %12s %10s\n", "CPUs", "Time (s)", "Speedup")
	var t2 float64
	for _, cpus := range []int{2, 16, 64, 256, 512} {
		t, err := bench.Run(context.Background(), bench.RunConfig{Tasks: tasks, CPUs: cpus, Strategy: farm.SerializedLoad})
		if err != nil {
			log.Fatal(err)
		}
		if cpus == 2 {
			t2 = t
		}
		fmt.Printf("%8d %12.2f %10.4f\n", cpus, t, t2/(float64(cpus-1)*t))
	}

	fmt.Println("\nFlat vs hierarchical master at 512 CPUs (8 sub-masters):")
	flat, err := bench.Run(context.Background(), bench.RunConfig{Tasks: tasks, CPUs: 512, Strategy: farm.SerializedLoad})
	if err != nil {
		log.Fatal(err)
	}
	// Each sub-master owns ~62 workers and works one chunk at a time, so
	// the chunk must exceed the group size to keep everyone busy.
	hier, err := bench.Run(context.Background(), bench.RunConfig{
		Tasks: tasks, CPUs: 512, Strategy: farm.SerializedLoad,
		Scheduler: bench.Hierarchical, Groups: 8, Chunk: 192,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  flat:         %8.2f s\n", flat)
	fmt.Printf("  hierarchical: %8.2f s\n", hier)
}
