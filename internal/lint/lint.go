package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named rule. Run inspects a loaded package and
// reports diagnostics through the pass; Match scopes the rule to the
// packages whose invariant it guards (the golden-file harness bypasses
// Match, so testdata packages exercise every rule).
type Analyzer struct {
	Name  string
	Doc   string
	Match func(importPath string) bool
	Run   func(*Pass)
}

// A Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	*Package
	Analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Wallclock, Ctxflow, Wireshape, Metricnames}
}

// Run applies each analyzer whose Match accepts the package, then
// folds in the //lint:allow directives: suppressed diagnostics drop
// out, and malformed or unused directives become diagnostics of their
// own. The returned slice is sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		a.Run(&Pass{Package: pkg, Analyzer: a, diags: &diags})
	}
	diags = applyDirectives(pkg, analyzers, ran, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags
}

// RunAll loads every package of the module and lints it, returning all
// surviving diagnostics.
func RunAll(l *Loader, analyzers []*Analyzer) ([]Diagnostic, error) {
	paths, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, Run(pkg, analyzers)...)
	}
	return diags, nil
}

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const directivePrefix = "//lint:allow"

// parseDirectives collects the allow directives of every file in pkg.
// Malformed directives (unknown analyzer, missing reason) are reported
// immediately under the pseudo-analyzer name "lint".
func parseDirectives(pkg *Package, analyzers []*Analyzer, diags *[]Diagnostic) []*directive {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: "malformed directive: want //lint:allow <analyzer> <reason>"})
					continue
				}
				name := fields[0]
				if !known[name] {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: fmt.Sprintf("directive names unknown analyzer %q", name)})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: fmt.Sprintf("//lint:allow %s needs a reason", name)})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, analyzer: name, reason: reason})
			}
		}
	}
	return dirs
}

// applyDirectives drops diagnostics covered by an allow directive on
// the same line or the line above, and reports directives that
// suppressed nothing (only for analyzers that actually ran, so a
// scoped-out rule does not invalidate its annotations).
func applyDirectives(pkg *Package, analyzers []*Analyzer, ran map[string]bool, diags []Diagnostic) []Diagnostic {
	dirs := parseDirectives(pkg, analyzers, &diags)
	if len(dirs) == 0 {
		return diags
	}
	byLine := map[string][]*directive{}
	lineKey := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, d := range dirs {
		byLine[lineKey(d.pos.Filename, d.pos.Line)] = append(byLine[lineKey(d.pos.Filename, d.pos.Line)], d)
	}
	kept := diags[:0]
	for _, dg := range diags {
		suppressed := false
		if dg.Analyzer != "lint" {
			for _, line := range []int{dg.Pos.Line, dg.Pos.Line - 1} {
				for _, d := range byLine[lineKey(dg.Pos.Filename, line)] {
					if d.analyzer == dg.Analyzer {
						d.used = true
						suppressed = true
					}
				}
			}
		}
		if !suppressed {
			kept = append(kept, dg)
		}
	}
	for _, d := range dirs {
		if !d.used && ran[d.analyzer] {
			kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: "lint",
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing here (stale exemption)", d.analyzer)})
		}
	}
	return kept
}
