package farm

import (
	"fmt"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
)

// Executor abstracts the worker-side pricing of one task. Live executors
// rebuild the premia problem from the payload and really compute;
// simulated executors advance virtual time by the task's cost.
type Executor interface {
	// Execute prices one task and returns its result object (conventionally
	// the hash built by resultHash). payload holds the problem bytes
	// (possibly fetched from the store under NFSLoad); size is the payload
	// size declared by the descriptor, which simulated NFS reads need.
	Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error)
}

// Store abstracts the shared file system used by the NFSLoad strategy.
type Store interface {
	// Read fetches a problem file's bytes by name. size is the byte count
	// declared by the descriptor (simulated stores charge it as transfer
	// volume; live stores may ignore it).
	Read(name string, size int) ([]byte, error)
}

// RunWorker runs the Fig. 4 slave loop: receive a batch, fetch or unpack
// its payloads, price every task, send the result list back, repeat until
// the empty stop message arrives. With opts.Telemetry set, payload
// fetches and per-task computations are timed into the
// "farm.fetch_seconds" and "farm.compute_seconds" histograms, each
// computation under a "farm.compute" span.
func RunWorker(c mpi.Comm, exec Executor, store Store, opts Options) error {
	master := opts.MasterRank
	reg := opts.Telemetry
	for {
		obj, _, err := mpi.RecvObj(c, master, TagTask)
		if err != nil {
			return fmt.Errorf("farm: worker %d recv descriptor: %w", c.Rank(), err)
		}
		names, costs, sizes, err := decodeBatch(obj)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil // stop message
		}
		payloads := make([][]byte, len(names))
		fetchStart := reg.Now()
		if opts.Strategy.NeedsPayload() {
			pobj, _, err := mpi.RecvObj(c, master, TagPayload)
			if err != nil {
				return fmt.Errorf("farm: worker %d recv payload: %w", c.Rank(), err)
			}
			list, ok := pobj.(*nsp.List)
			if !ok || list.Len() != len(names) {
				return fmt.Errorf("farm: worker %d: malformed payload list", c.Rank())
			}
			for i, item := range list.Items {
				s, ok := item.(*nsp.Serial)
				if !ok {
					return fmt.Errorf("farm: worker %d: payload %d is %v, want serial", c.Rank(), i, item.Kind())
				}
				payloads[i] = s.Data
			}
		} else {
			if store == nil {
				return fmt.Errorf("farm: worker %d: NFS strategy without a store", c.Rank())
			}
			for i, name := range names {
				data, err := store.Read(name, int(sizes[i]))
				if err != nil {
					return fmt.Errorf("farm: worker %d read %q: %w", c.Rank(), name, err)
				}
				payloads[i] = data
			}
		}
		reg.Observe("farm.fetch_seconds", reg.Now()-fetchStart)
		out := nsp.NewList()
		for i, name := range names {
			span := reg.StartSpan("farm.compute")
			start := reg.Now()
			res, err := exec.Execute(name, payloads[i], costs[i], int(sizes[i]))
			reg.Observe("farm.compute_seconds", reg.Now()-start)
			span.End()
			if err != nil {
				// A pricing failure is the task's problem, not the
				// worker's: report it and keep serving (the master decides
				// whether to retry).
				res = errorResultHash(name, err.Error())
			}
			out.Add(res)
		}
		if err := mpi.SendObj(c, out, master, TagResult); err != nil {
			return fmt.Errorf("farm: worker %d send results: %w", c.Rank(), err)
		}
	}
}
