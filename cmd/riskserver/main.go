// Command riskserver runs the production pricing service: an HTTP/JSON
// front end over the live local farm, with dynamic micro-batching, a
// content-addressed result cache and admission control.
//
// Start it:
//
//	riskserver -addr :8080 -workers 8 -batch 16 -cache 65536
//
// Price an option:
//
//	curl -s localhost:8080/price -d '{"model":"BlackScholes1dim",
//	  "option":"CallEuro","method":"CF_Call",
//	  "params":{"S0":100,"r":0.05,"sigma":0.2,"K":100,"T":1}}'
//
// Price a book in one request (problems coalesce into farm batches and
// duplicates are priced once):
//
//	curl -s localhost:8080/batch -d '{"problems":[...]}'
//
// Risk analytics (VaR/CVaR over a scenario set; see GET /risk for the
// request shapes):
//
//	curl -s localhost:8080/risk/report -d '{"portfolio":{"name":"toy"},
//	  "scenarios":{"mode":"mc","n":256},"alphas":[0.95,0.99]}'
//
//	# streaming watch mode: one NDJSON line per round, with limit
//	# utilization graded into normal/warning/critical levels
//	curl -sN localhost:8080/risk/watch -d '{"portfolio":{"name":"toy"},
//	  "scenarios":{"mode":"mc","n":256},"limits":{"var":50},"rounds":5}'
//
// Health, metrics and the flight recorder:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics        # Prometheus text format (with exemplars)
//	curl -s localhost:8080/metrics.json   # JSON snapshot
//	curl -s localhost:8080/debug/traces   # slowest requests as span trees
//	curl -s 'localhost:8080/debug/events?level=warn'  # structured event log, NDJSON
//	curl -s localhost:8080/debug/slo      # SLO burn-rate monitor status
//	curl -s localhost:8080/debug/farm     # per-worker fleet health
//
// With -pprof, the standard net/http/pprof profiling handlers are
// additionally mounted under /debug/pprof/.
//
// -transport selects where the farm workers live: "local" (default)
// prices on in-process goroutine ranks; "tcp", "unix" or "inproc" run a
// framed hub world on that mpi transport with the versioned wire
// handshake — "unix" is the recommended same-host worker-pool shape.
//
// SIGINT/SIGTERM drains gracefully: admission stops (healthz flips to
// 503 so load balancers rotate the instance out), in-flight farm
// batches finish, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"riskbench/internal/mpi"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/serve"
	"riskbench/internal/telemetry"
)

// withPprof mounts the net/http/pprof handlers in front of h. The
// pprof package's side-effect registration targets http.DefaultServeMux,
// which this server never serves, so the handlers are reachable only
// through this explicit mount.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "address to serve HTTP on")
		workers     = flag.Int("workers", runtime.NumCPU(), "pricing goroutines per farm batch")
		batch       = flag.Int("batch", 16, "micro-batch flush size and tasks per farm message")
		maxDelay    = flag.Duration("maxdelay", 2*time.Millisecond, "max wait for a micro-batch to fill before flushing")
		cacheSize   = flag.Int("cache", serve.DefaultCacheSize, "result cache capacity in entries (negative disables)")
		maxInflight = flag.Int("maxinflight", 256, "admitted concurrent requests before shedding with 429")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request pricing deadline")
		kernel      = flag.Int("kernelthreads", 0, "multicore kernel threads per pricing task (0 = serial)")
		transport   = flag.String("transport", "local", "farm worker transport: local (in-process goroutines) or a framed mpi transport (tcp | unix | inproc)")
		drainWait   = flag.Duration("drain", 30*time.Second, "max time to drain in-flight work on shutdown")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		noTrace     = flag.Bool("notrace", false, "disable per-request distributed tracing")
		noEvents    = flag.Bool("noevents", false, "disable serve-side flight-recorder events and SLO monitoring")
	)
	flag.Parse()

	// SIGINT/SIGTERM start the cooperative drain instead of killing the
	// process mid-batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.Default
	premia.SetTelemetry(reg)
	mpi.SetTelemetry(reg)

	// The transport decides where farm workers live: "local" is the
	// in-process goroutine world; anything else is a framed hub world
	// with per-connection protocol negotiation, so mixed-version fleets
	// keep serving through rolling upgrades.
	var backend risk.FarmBackend
	if *transport != "local" {
		if _, err := mpi.LookupTransport(*transport); err != nil {
			fmt.Fprintf(os.Stderr, "riskserver: %v (or \"local\")\n", err)
			os.Exit(2)
		}
		backend = &risk.NetBackend{
			Transport: *transport,
			Spawn:     risk.GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, 0),
		}
	}

	srv := serve.New(serve.Config{
		Engine:         &risk.Engine{Workers: *workers, BatchSize: *batch, KernelThreads: *kernel, Telemetry: reg, Backend: backend},
		MaxBatch:       *batch,
		MaxDelay:       *maxDelay,
		CacheSize:      *cacheSize,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		Telemetry:      reg,
		DisableTracing: *noTrace,
		DisableEvents:  *noEvents,
	})

	handler := srv.Handler()
	if *pprofOn {
		handler = withPprof(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "riskserver: serving on %s (workers=%d batch=%d cache=%d maxinflight=%d transport=%s)\n",
		*addr, *workers, *batch, *cacheSize, *maxInflight, *transport)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "riskserver: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintln(os.Stderr, "riskserver: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "riskserver: drain: %v (forcing)\n", err)
		_ = srv.Close()
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "riskserver: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "riskserver: drained, bye")
}
