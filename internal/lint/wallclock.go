package lint

import (
	"go/ast"
)

// Wallclock bans raw wall-clock reads in the packages whose timing
// must be virtualizable. The telemetry registry's clock (Registry.Now,
// with telemetry.Wall and telemetry.Deadline as the two sanctioned
// wall-time escapes) is the only time source in production code: that
// is what lets simnet replay a 512-core cluster on one laptop with
// durations that mean virtual seconds, and what keeps span trees from
// mixing clock domains when worker records are shifted onto the
// master's clock. A stray time.Now() in a span or a result hash is
// invisible in tests on real hardware and wrong everywhere else.
//
// Tests are exempt (they are not loaded); deliberate wall reads — the
// definition of the clock itself, entropy fallbacks, network I/O
// deadlines — carry //lint:allow wallclock annotations.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "production code reads time only through the telemetry clock",
	Match: scope(
		"internal/telemetry",
		"internal/farm",
		"internal/mpi",
		"internal/serve",
		"internal/portfolio",
		"internal/var",
	),
	Run: runWallclock,
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Package, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFuncCall(pass.Info, call, "time", "Now", "Since", "Until"); ok {
				pass.Reportf(call.Pos(),
					"raw time.%s; read the telemetry clock (Registry.Now, telemetry.Wall, telemetry.Deadline) so timing stays virtualizable", name)
			}
			return true
		})
	}
}
