package nsp

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Serial is an opaque buffer holding the serialized form of an object,
// optionally flate-compressed — Nsp's `serial` class. A Serial is itself an
// Object, so serials can be nested inside lists/hashes and shipped over the
// message-passing layer like any other value.
type Serial struct {
	// Compressed reports whether Data holds a flate stream.
	Compressed bool
	// Data is the (possibly compressed) serialized byte stream.
	Data []byte
}

// Kind implements Object.
func (s *Serial) Kind() Kind { return KindSerial }

// Len returns the byte length of the buffer.
func (s *Serial) Len() int { return len(s.Data) }

// String mimics Nsp's "<302-bytes> serial" display.
func (s *Serial) String() string {
	if s.Compressed {
		return fmt.Sprintf("<%d-bytes> serial (compressed)", len(s.Data))
	}
	return fmt.Sprintf("<%d-bytes> serial", len(s.Data))
}

// Equal implements Object.
func (s *Serial) Equal(o Object) bool {
	t, ok := o.(*Serial)
	if !ok || s.Compressed != t.Compressed || len(s.Data) != len(t.Data) {
		return false
	}
	return bytes.Equal(s.Data, t.Data)
}

// Serialize converts any object into a Serial buffer using the binary
// format shared with Save. It is Nsp's `serialize` primitive.
func Serialize(o Object) (*Serial, error) {
	var buf bytes.Buffer
	if err := encodeStream(&buf, o); err != nil {
		return nil, err
	}
	return &Serial{Data: buf.Bytes()}, nil
}

// Unserialize decodes the buffer back into an object, transparently
// handling compressed serials as Nsp's `unserialize` method does.
func (s *Serial) Unserialize() (Object, error) {
	data := s.Data
	if s.Compressed {
		r := flate.NewReader(bytes.NewReader(s.Data))
		raw, err := io.ReadAll(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("nsp: decompress serial: %w", err)
		}
		data = raw
	}
	return decodeStream(bytes.NewReader(data))
}

// Compress returns a compressed copy of the serial (no-op if already
// compressed), mirroring the `compress` method added to Nsp.
func (s *Serial) Compress() (*Serial, error) {
	if s.Compressed {
		return s, nil
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(s.Data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Serial{Compressed: true, Data: buf.Bytes()}, nil
}

// Uncompress returns an uncompressed copy of the serial (no-op if already
// raw).
func (s *Serial) Uncompress() (*Serial, error) {
	if !s.Compressed {
		return s, nil
	}
	r := flate.NewReader(bytes.NewReader(s.Data))
	raw, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("nsp: decompress serial: %w", err)
	}
	return &Serial{Data: raw}, nil
}
