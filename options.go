package riskbench

import (
	"context"
	"net/http"
	"sync/atomic"

	"riskbench/internal/bench"
	"riskbench/internal/mpi"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// Telemetry is a metrics registry: counters, gauges, latency histograms
// and spans. A nil *Telemetry is a valid no-op sink.
type Telemetry = telemetry.Registry

// Metrics is a frozen JSON-serializable snapshot of a Telemetry registry.
type Metrics = telemetry.Snapshot

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// MetricsHandler serves reg's snapshot as indented JSON, the endpoint the
// CLI tools expose behind their -telemetry flag.
func MetricsHandler(reg *Telemetry) http.Handler { return telemetry.Handler(reg) }

// processSink is the registry last installed by SetTelemetry; Snapshot
// falls back to the package default when none was installed.
var processSink atomic.Pointer[telemetry.Registry]

// SetTelemetry installs reg as the process-wide sink of the layers whose
// hot functions take no registry parameter: the pricing library
// (per-method compute time and work-unit throughput) and the message
// layer (messages/bytes per rank, pack/unpack time). Farm- and
// engine-level metrics are wired per call instead, through WithTelemetry
// or RiskEngine.Telemetry. Pass nil to disable the process-wide layers.
func SetTelemetry(reg *Telemetry) {
	premia.SetTelemetry(reg)
	mpi.SetTelemetry(reg)
	processSink.Store(reg)
}

// Snapshot freezes the process-wide telemetry: the registry installed by
// SetTelemetry, or the shared default registry when none was installed.
func Snapshot() Metrics {
	if reg := processSink.Load(); reg != nil {
		return reg.Snapshot()
	}
	return telemetry.Default.Snapshot()
}

// Sentinel errors of the pricing layer, for errors.Is classification
// through wrapped chains (including errors surfaced by farm results and
// the risk engine).
var (
	ErrUnknownMethod = premia.ErrUnknownMethod
	ErrUnknownModel  = premia.ErrUnknownModel
	ErrUnknownOption = premia.ErrUnknownOption
	ErrMissingParam  = premia.ErrMissingParam
)

// SetKernelThreads installs the process-wide default worker count of the
// multicore pricing kernel: every Problem.Compute whose problem carries
// no explicit "threads" parameter shards its path loop over this many
// goroutines. n < 1 (the initial state) means serial pricing. The result
// of a Monte Carlo method depends only on (seed, paths) — never on the
// thread count — so flipping this knob changes speed, not prices.
func SetKernelThreads(n int) { premia.SetKernelThreads(n) }

// config collects the knobs the functional options set; each consumer
// reads the subset that applies to it.
type config struct {
	workers       int
	batchSize     int
	maxCPUs       int
	kernelThreads int
	strategy      Strategy
	hasStrat      bool
	telemetry     *Telemetry
}

// Option configures RunTableWith and NewEngine. Options not meaningful
// for a consumer are ignored: worker count and batch size configure the
// live risk engine, CPU truncation and the strategy override configure
// table sweeps, and the telemetry sink configures both.
type Option func(*config)

// WithWorkers sets the live engine's pricing-goroutine count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithBatchSize sets how many tasks travel per farm message.
func WithBatchSize(n int) Option {
	return func(c *config) { c.batchSize = n }
}

// WithKernelThreads sets the multicore pricing kernel's goroutine count
// for the claims an engine prices: the live risk engine stamps the value
// onto every task whose problem does not already carry a "threads"
// parameter, so each worker rank shards its Monte Carlo path loops over
// n cores. Prices are unaffected — the kernel's shard decomposition is
// thread-invariant. See also SetKernelThreads for the process-wide
// default.
func WithKernelThreads(n int) Option {
	return func(c *config) { c.kernelThreads = n }
}

// WithMaxCPUs truncates a table sweep's CPU counts, so quick benchmarks
// run a prefix of the paper's row set.
func WithMaxCPUs(n int) Option {
	return func(c *config) { c.maxCPUs = n }
}

// WithStrategy restricts a table sweep to one communication strategy,
// replacing the spec's strategy list.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s; c.hasStrat = true }
}

// WithTelemetry directs metrics into reg: table sweeps collect the
// per-row telemetry report rendered by Table.Format and merge per-run
// metrics into reg; the engine records its farm and phase metrics there.
func WithTelemetry(reg *Telemetry) Option {
	return func(c *config) { c.telemetry = reg }
}

// RunTableWith executes a table sweep under a context with options.
// RunTable(spec) is shorthand for RunTableWith(context.Background(),
// spec) with no options.
func RunTableWith(ctx context.Context, spec TableSpec, opts ...Option) (*Table, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.maxCPUs > 0 {
		spec.MaxCPUs = c.maxCPUs
	}
	if c.hasStrat {
		spec.Strategies = []Strategy{c.strategy}
	}
	return bench.RunTableContext(ctx, spec, c.telemetry)
}

// NewEngine returns a live-farm risk engine configured by the options
// (worker count, batch size, telemetry sink).
func NewEngine(opts ...Option) *RiskEngine {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return &risk.Engine{Workers: c.workers, BatchSize: c.batchSize, KernelThreads: c.kernelThreads, Telemetry: c.telemetry}
}
