package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// Additional exotic option names.
const (
	// OptDigitalCall is a cash-or-nothing call paying 1 if S_T > K.
	OptDigitalCall = "DigitalCall"
	// OptDigitalPut is a cash-or-nothing put paying 1 if S_T < K.
	OptDigitalPut = "DigitalPut"
	// OptAsianCallFix is an arithmetic-average-price call,
	// payoff (Ā − K)⁺ with Ā the average of discrete fixings.
	OptAsianCallFix = "AsianCallFix"
	// OptAsianPutFix is the arithmetic-average-price put (K − Ā)⁺.
	OptAsianPutFix = "AsianPutFix"
	// OptLookbackCallFloat is a floating-strike lookback call paying
	// S_T − min_{t≤T} S_t.
	OptLookbackCallFloat = "LookbackCallFloat"
)

// Exotic method names.
const (
	// MethodCFDigital prices digitals by the closed formula.
	MethodCFDigital = "CF_Digital"
	// MethodMCAsianCV prices arithmetic Asians by Monte Carlo with the
	// closed-form geometric Asian as control variate (Kemna–Vorst).
	MethodMCAsianCV = "MC_Asian_ControlVariate"
	// MethodCFLookback prices the floating-strike lookback call by the
	// Goldman–Sosin–Gatto formula.
	MethodCFLookback = "CF_Lookback"
	// MethodMCLookback prices it by Monte Carlo with exact
	// Brownian-bridge sampling of the continuous minimum.
	MethodMCLookback = "MC_Lookback"
)

// cfDigital implements CF_Digital: the cash-or-nothing price
// e^{-rT}·N(±d2) and its delta.
func cfDigital(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	_, d2 := bsD1D2(m, o.K, o.T)
	df := math.Exp(-m.R * o.T)
	st := m.Sigma * math.Sqrt(o.T)
	var price, delta float64
	switch p.Option {
	case OptDigitalCall:
		price = df * mathutil.NormCDF(d2)
		delta = df * mathutil.NormPDF(d2) / (m.S0 * st)
	case OptDigitalPut:
		price = df * mathutil.NormCDF(-d2)
		delta = -df * mathutil.NormPDF(d2) / (m.S0 * st)
	default:
		return Result{}, fmt.Errorf("premia: CF_Digital does not price %q", p.Option)
	}
	return Result{Price: price, Delta: delta, HasDelta: true, Work: 1}, nil
}

// geomAsianCF prices the *geometric*-average Asian call/put over n
// equally spaced fixings t_i = iT/n in closed form: the geometric mean is
// lognormal with adjusted drift and volatility.
func geomAsianCF(m bsParams, k, t float64, n int, call bool) float64 {
	fn := float64(n)
	// Mean and variance of (1/n)Σ ln S_{t_i}.
	mu := math.Log(m.S0) + (m.R-m.Div-0.5*m.Sigma*m.Sigma)*t*(fn+1)/(2*fn)
	v := m.Sigma * m.Sigma * t * (fn + 1) * (2*fn + 1) / (6 * fn * fn)
	sv := math.Sqrt(v)
	df := math.Exp(-m.R * t)
	d1 := (mu - math.Log(k) + v) / sv
	d2 := d1 - sv
	fwd := math.Exp(mu + 0.5*v)
	if call {
		return df * (fwd*mathutil.NormCDF(d1) - k*mathutil.NormCDF(d2))
	}
	return df * (k*mathutil.NormCDF(-d2) - fwd*mathutil.NormCDF(-d1))
}

// mcAsianCV implements MC_Asian_ControlVariate: arithmetic-average Asian
// options under Black–Scholes via Monte Carlo over discrete fixings, with
// the geometric-average payoff (whose expectation is known in closed
// form) as control variate — the Kemna–Vorst construction. Parameters:
// "paths", "fixings" (default 12).
func mcAsianCV(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	fixings := p.Params.Int("fixings", 12)
	if paths < 2 || fixings < 1 {
		return Result{}, fmt.Errorf("premia: MC_Asian needs paths >= 2 and fixings >= 1")
	}
	isCall := p.Option == OptAsianCallFix
	rng := mathutil.NewRNG(mcSeed(p))
	dt := o.T / float64(fixings)
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * dt
	vol := m.Sigma * math.Sqrt(dt)
	df := math.Exp(-m.R * o.T)
	geomPrice := geomAsianCF(m, o.K, o.T, fixings, isCall)

	// First pass accumulates both payoffs to estimate the optimal control
	// coefficient; a fixed pilot fraction keeps it single-pass in effect.
	var wArith, wGeom, wAdj mathutil.Welford
	cov, varG := 0.0, 0.0
	pilot := paths / 10
	if pilot < 100 {
		pilot = paths
	}
	type sample struct{ a, g float64 }
	pilotSamples := make([]sample, 0, pilot)
	beta := 1.0
	betaSet := false
	for i := 0; i < paths; i++ {
		x := math.Log(m.S0)
		sum := 0.0
		logSum := 0.0
		for k := 0; k < fixings; k++ {
			x += drift + vol*rng.Norm()
			sum += math.Exp(x)
			logSum += x
		}
		arith := sum / float64(fixings)
		geom := math.Exp(logSum / float64(fixings))
		var pa, pg float64
		if isCall {
			pa, pg = payoffCall(arith, o.K), payoffCall(geom, o.K)
		} else {
			pa, pg = payoffPut(arith, o.K), payoffPut(geom, o.K)
		}
		pa *= df
		pg *= df
		wArith.Add(pa)
		wGeom.Add(pg)
		if !betaSet {
			pilotSamples = append(pilotSamples, sample{pa, pg})
			if len(pilotSamples) >= pilot {
				ma, mg := 0.0, 0.0
				for _, s := range pilotSamples {
					ma += s.a
					mg += s.g
				}
				ma /= float64(len(pilotSamples))
				mg /= float64(len(pilotSamples))
				for _, s := range pilotSamples {
					cov += (s.a - ma) * (s.g - mg)
					varG += (s.g - mg) * (s.g - mg)
				}
				if varG > 0 {
					beta = cov / varG
				}
				betaSet = true
				for _, s := range pilotSamples {
					wAdj.Add(s.a - beta*(s.g-geomPrice))
				}
			}
			continue
		}
		wAdj.Add(pa - beta*(pg-geomPrice))
	}
	if !betaSet {
		// Degenerate (paths < pilot threshold unreachable, but be safe).
		for _, s := range pilotSamples {
			wAdj.Add(s.a - (s.g - geomPrice))
		}
	}
	return Result{
		Price: wAdj.Mean(), PriceCI: wAdj.HalfWidth95(),
		Work: float64(paths) * float64(fixings),
	}, nil
}

// cfLookback implements CF_Lookback: the Goldman–Sosin–Gatto price of a
// floating-strike lookback call, S_T − min S_t, for a continuously
// monitored minimum starting at S0.
func cfLookback(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Result{}, err
	}
	if m.R == m.Div {
		return Result{}, fmt.Errorf("premia: CF_Lookback needs r != divid (zero carry degenerates the formula)")
	}
	sig2 := m.Sigma * m.Sigma
	b := m.R - m.Div
	st := m.Sigma * math.Sqrt(t)
	// Minimum observed so far = S0 at inception.
	a1 := (b + 0.5*sig2) * t / st
	a2 := a1 - st
	dq := math.Exp(-m.Div * t)
	df := math.Exp(-m.R * t)
	// Goldman–Sosin–Gatto with the running minimum at inception (M = S0),
	// using −a1 + 2b√T/σ = a2:
	//   S0·e^{-qT}·N(a1) − S0·e^{-rT}·N(a2)
	//   + S0·(σ²/2b)·( e^{-rT}·N(a2) − e^{-qT}·N(−a1) ).
	price := m.S0*dq*mathutil.NormCDF(a1) - m.S0*df*mathutil.NormCDF(a2) +
		m.S0*sig2/(2*b)*(df*mathutil.NormCDF(a2)-dq*mathutil.NormCDF(-a1))
	return Result{Price: price, HasDelta: false, Work: 1}, nil
}

// mcLookback implements MC_Lookback: Monte Carlo for the floating-strike
// lookback call with the running minimum sampled *exactly* between grid
// points through the Brownian-bridge minimum law, removing the
// discrete-monitoring bias. Parameters: "paths", "mcsteps".
func mcLookback(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC_Lookback needs paths >= 2 and mcsteps >= 1")
	}
	rng := mathutil.NewRNG(mcSeed(p))
	dt := t / float64(steps)
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * dt
	vol := m.Sigma * math.Sqrt(dt)
	sig2dt := m.Sigma * m.Sigma * dt
	df := math.Exp(-m.R * t)
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		x := math.Log(m.S0)
		minX := x
		for k := 0; k < steps; k++ {
			xNext := x + drift + vol*rng.Norm()
			// Exact minimum of the bridge between x and xNext:
			// m = (x + x' − sqrt((x'−x)² − 2σ²dt·lnU)) / 2.
			u := rng.Float64Open()
			diff := xNext - x
			bridgeMin := 0.5 * (x + xNext - math.Sqrt(diff*diff-2*sig2dt*math.Log(u)))
			if bridgeMin < minX {
				minX = bridgeMin
			}
			x = xNext
		}
		w.Add(df * (math.Exp(x) - math.Exp(minX)))
	}
	return Result{
		Price: w.Mean(), PriceCI: w.HalfWidth95(),
		Work: float64(paths) * float64(steps),
	}, nil
}
