package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit an analyzer
// runs over. Only non-test files are loaded: the invariants guard
// production code, and several rules (wallclock, detrand) explicitly
// exempt tests.
type Package struct {
	Path  string // import path ("riskbench/internal/farm")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module. It
// resolves intra-module imports from the module tree itself and
// delegates everything else (the standard library) to the compiler
// source importer, so the suite needs no pre-built export data and no
// third-party loader.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path, fully loaded
	loading map[string]bool     // cycle guard
}

// NewLoader roots a loader at dir, which must contain go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: loader needs a module root: %w", err)
	}
	path := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: path,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Fset exposes the loader's shared file set for position rendering.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// inModule reports whether path belongs to the loader's module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps an intra-module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
}

// Import implements types.Importer, routing module-internal paths
// through the loader and the rest to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	pkg, err := l.load(path, l.dirFor(path))
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// LoadDir loads the package in dir under an explicit import path,
// used by the golden-file test harness for testdata packages that live
// outside the module's import space.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir)
}

// Load loads one module package by import path.
func (l *Loader) Load(path string) (*Package, error) {
	if !l.inModule(path) {
		return nil, fmt.Errorf("lint: %s is not in module %s", path, l.ModulePath)
	}
	return l.load(path, l.dirFor(path))
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goSources lists the non-test Go files of dir, sorted, so package
// loads and struct hashes are deterministic.
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages walks the module tree and returns the import paths of
// every buildable package, sorted. testdata, hidden and underscore
// directories are skipped, as go tooling does.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil || len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
