package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags range-over-map loops whose bodies are sensitive to
// iteration order. Go randomizes map order per run on purpose; float
// addition is not associative; and anything appended to a slice that
// later crosses the wire or feeds a report is ordered by construction.
// So a map-range body that accumulates floats into an outer variable,
// concatenates strings, or appends value-derived elements to an outer
// slice produces results that differ run to run — the exact
// "bit-identical at any thread count" killer the multicore kernel's
// shard-order merges exist to prevent, reintroduced one innocent loop
// at a time.
//
// The rule distinguishes the idioms:
//
//   - collecting only keys (`for k := range m { keys = append(keys, k) }`)
//     is the canonical fix — you sort afterwards — and is allowed;
//   - writes indexed by the key (`out[k] = f(v)`, `acc[k] += v`) are
//     per-key independent and allowed;
//   - integer counters are exactly commutative and allowed;
//   - float/complex/string reductions into outer state, and appends
//     whose elements depend on the ranged value (or any loop-body
//     local), are flagged: iterate sorted keys instead.
var Maporder = &Analyzer{
	Name:  "maporder",
	Doc:   "no order-sensitive reduction or append may range over a map",
	Match: func(string) bool { return true },
	Run:   runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Package, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := exprType(pass.Info, rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRange(pass, rs)
			return true
		})
	}
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	valObj := rangeVarObj(pass, rs.Value)
	body := rs.Body

	// bodyLocal: declared inside the loop body (per-iteration state,
	// reset each time around — accumulating into it is fine).
	bodyLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}
	// tainted: the expression's value depends on which element this
	// iteration drew — it mentions the ranged value or a loop-body
	// local (keys alone are fine: the caller sorts them).
	tainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return !found
			}
			obj := pass.Info.Uses[id]
			if obj != nil && ((valObj != nil && obj == valObj) || bodyLocal(obj)) {
				found = true
			}
			return !found
		})
		return found
	}
	mentionsKey := func(e ast.Expr) bool {
		if keyObj == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
				found = true
			}
			return !found
		})
		return found
	}

	ast.Inspect(body, func(n ast.Node) bool {
		// Do not descend into nested map ranges; they get their own check.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs {
			if t := exprType(pass.Info, inner.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				checkReduction(pass, rs, lhs, bodyLocal, mentionsKey)
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				checkAppend(pass, rs, as.Lhs[i], rhs, bodyLocal, tainted)
			}
		}
		return true
	})
}

// checkReduction flags `outer op= ...` for order-sensitive element
// types, unless the target is indexed by the range key.
func checkReduction(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr,
	bodyLocal func(types.Object) bool, mentionsKey func(ast.Expr) bool) {
	// acc[k] += v: per-key slot, order-independent.
	if ix, ok := lhs.(*ast.IndexExpr); ok && mentionsKey(ix.Index) {
		return
	}
	t := exprType(pass.Info, lhs)
	if t == nil || !orderSensitiveType(t) {
		return
	}
	if root := rootObj(pass, lhs); root == nil || bodyLocal(root) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"%s reduction inside range over map depends on iteration order; iterate sorted keys (bit-reproducibility)", t.Underlying())
}

// checkAppend flags `outer = append(outer, taintedElem)`.
func checkAppend(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr, rhs ast.Expr,
	bodyLocal func(types.Object) bool, tainted func(ast.Expr) bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if obj, ok := pass.Info.Uses[fun]; ok {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return
		}
	}
	root := rootObj(pass, lhs)
	if root == nil || bodyLocal(root) {
		return
	}
	for _, arg := range call.Args[1:] {
		if tainted(arg) {
			pass.Reportf(lhs.Pos(),
				"append of value-dependent elements inside range over map is ordered by iteration; iterate sorted keys (wire/report determinism)")
			return
		}
	}
}

// orderSensitiveType: accumulation in these types does not commute
// exactly, so iteration order leaks into the result bits.
func orderSensitiveType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.Complex64, types.Complex128,
		types.String, types.UntypedFloat, types.UntypedComplex, types.UntypedString:
		return true
	}
	return false
}

// rootObj finds the object at the root of an lvalue chain
// (x, x.f, x[i].f → x).
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rangeVarObj resolves the object of a range key/value identifier.
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
