package mathutil

// Quasi-Monte Carlo: a Halton low-discrepancy sequence with a
// Cranley–Patterson random rotation. Halton is chosen over Sobol because
// it is constructible from first principles (no direction-number tables
// to get subtly wrong); the rotation both randomises the estimator (so
// confidence intervals exist across independent rotations) and breaks the
// notorious correlation between high-dimensional Halton coordinates.

// haltonPrimes are the bases of the first 64 coordinates.
var haltonPrimes = [64]uint64{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
	59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
	137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
	227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
}

// MaxHaltonDim is the largest supported dimension.
const MaxHaltonDim = len(haltonPrimes)

// Halton generates rotated Halton points in [0,1)^dim.
type Halton struct {
	dim    int
	index  uint64
	stride uint64
	shift  []float64
}

// NewHalton returns a generator of the given dimension whose rotation is
// drawn deterministically from seed. It panics if dim is out of range.
func NewHalton(dim int, seed uint64) *Halton {
	if dim < 1 || dim > MaxHaltonDim {
		panic("mathutil: Halton dimension out of range")
	}
	rng := NewRNG(seed)
	shift := make([]float64, dim)
	for i := range shift {
		shift[i] = rng.Float64()
	}
	// Skip the first point (all zeros before rotation) by starting at 1;
	// low indices of Halton are its worst-distributed region anyway.
	return &Halton{dim: dim, index: 1, stride: 1, shift: shift}
}

// NewHaltonLeap returns a leapfrogged generator: the same rotation as
// NewHalton(dim, seed), but emitting only the points with sequence index
// start, start+stride, start+2·stride, …. The generators with starts
// 1..stride (for a common seed and stride) partition NewHalton's sequence
// exactly, so sharded consumers draw from the same point set as a serial
// one — this is how the QMC pricer splits work across kernel shards
// without changing its estimate's support. It panics if stride is zero or
// dim is out of range.
func NewHaltonLeap(dim int, seed uint64, start, stride uint64) *Halton {
	if stride < 1 {
		panic("mathutil: Halton stride must be >= 1")
	}
	h := NewHalton(dim, seed)
	h.index = start
	h.stride = stride
	return h
}

// Dim returns the point dimension.
func (h *Halton) Dim() int { return h.dim }

// Next writes the next point into dst (length >= dim). Coordinates lie in
// (0,1) after the rotation, so they can feed InvNormCDF directly.
func (h *Halton) Next(dst []float64) {
	if len(dst) < h.dim {
		panic("mathutil: Halton destination too short")
	}
	for d := 0; d < h.dim; d++ {
		v := radicalInverse(h.index, haltonPrimes[d]) + h.shift[d]
		if v >= 1 {
			v -= 1
		}
		// Guard the open interval for inverse-CDF consumers.
		if v <= 0 {
			v = 0.5 / (1 << 30)
		}
		dst[d] = v
	}
	h.index += h.stride
}

// radicalInverse reflects the base-b digits of n around the radix point.
func radicalInverse(n, b uint64) float64 {
	inv := 1.0 / float64(b)
	f := inv
	r := 0.0
	for n > 0 {
		r += float64(n%b) * f
		n /= b
		f *= inv
	}
	return r
}
