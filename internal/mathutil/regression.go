package mathutil

// PolyBasis evaluates the monomial basis {1, x, x², …, x^(deg)} at x into
// dst, which must have length deg+1. Monomials up to degree 3 are what the
// Longstaff–Schwartz pricer uses for one-dimensional regressions.
func PolyBasis(x float64, dst []float64) {
	dst[0] = 1
	for i := 1; i < len(dst); i++ {
		dst[i] = dst[i-1] * x
	}
}

// LeastSquares fits coefficients beta minimising ‖X beta − y‖² where X is
// the design matrix with rows basis(x_i). rows is the number of samples,
// cols the number of basis functions; x is row-major rows×cols. The normal
// equations are solved by Cholesky with a tiny ridge term for numerical
// safety on degenerate designs. beta must have length cols.
func LeastSquares(x []float64, rows, cols int, y, beta []float64) error {
	if len(x) < rows*cols || len(y) < rows || len(beta) < cols {
		panic("mathutil: LeastSquares length mismatch")
	}
	xtx := make([]float64, cols*cols)
	xty := make([]float64, cols)
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		yr := y[r]
		for i := 0; i < cols; i++ {
			xi := row[i]
			xty[i] += xi * yr
			base := i * cols
			for j := i; j < cols; j++ {
				xtx[base+j] += xi * row[j]
			}
		}
	}
	// Symmetrise and regularise.
	const ridge = 1e-12
	for i := 0; i < cols; i++ {
		xtx[i*cols+i] += ridge * (1 + xtx[i*cols+i])
		for j := 0; j < i; j++ {
			xtx[i*cols+j] = xtx[j*cols+i]
		}
	}
	return SolveSPD(xtx, cols, xty, beta)
}

// DotBasis returns the inner product of coefficients beta with the basis
// evaluated at x (monomials), i.e. the fitted continuation value in the
// Longstaff–Schwartz regression. Horner's scheme keeps it branch-free.
func DotBasis(beta []float64, x float64) float64 {
	sum := 0.0
	for i := len(beta) - 1; i >= 0; i-- {
		sum = sum*x + beta[i]
	}
	return sum
}
